package gpm_test

import (
	"testing"

	"gpm"
)

func TestFacadeColoredMatching(t *testing.T) {
	g := gpm.NewGraph()
	a := g.AddNode(gpm.NewTuple("label", `"a"`))
	x := g.AddNode(gpm.NewTuple("label", `"x"`))
	b := g.AddNode(gpm.NewTuple("label", `"b"`))
	if _, err := g.AddLabeledEdge(a, x, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLabeledEdge(x, b, "cites"); err != nil {
		t.Fatal(err)
	}

	p := gpm.NewPattern()
	pa := p.AddNode(gpm.Label("a"))
	pb := p.AddNode(gpm.Label("b"))
	if err := p.AddColoredEdge(pa, pb, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	if r := gpm.MatchColored(p, g); !r.Empty() {
		t.Fatalf("mixed-label chain must not match: %v", r)
	}
	// A plain bounded edge ignores labels.
	plain := gpm.NewPattern()
	qa := plain.AddNode(gpm.Label("a"))
	qb := plain.AddNode(gpm.Label("b"))
	plain.AddEdge(qa, qb, 2)
	if r := gpm.MatchColored(plain, g); r.Empty() {
		t.Fatal("plain pattern should match the 2-hop chain")
	}
}

func TestFacadeColoredRejectedByEngines(t *testing.T) {
	g := gpm.NewGraph()
	g.AddNode(gpm.NewTuple("label", `"a"`))
	g.AddNode(gpm.NewTuple("label", `"b"`))
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("a"))
	b := p.AddNode(gpm.Label("b"))
	if err := p.AddColoredEdge(a, b, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := gpm.NewIncSimEngine(p, g.Clone()); err == nil {
		t.Fatal("incsim must reject colored patterns")
	}
	if _, err := gpm.NewIncBSimEngine(p, g.Clone()); err == nil {
		t.Fatal("incbsim must reject colored patterns")
	}
}

func TestFacadeDualSimulation(t *testing.T) {
	g := gpm.NewGraph()
	a0 := g.AddNode(gpm.NewTuple("label", `"a"`))
	b0 := g.AddNode(gpm.NewTuple("label", `"b"`))
	c0 := g.AddNode(gpm.NewTuple("label", `"c"`))
	b1 := g.AddNode(gpm.NewTuple("label", `"b"`))
	g.AddEdge(a0, b0)
	g.AddEdge(c0, b1) // b1 has no a-parent

	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("a"))
	b := p.AddNode(gpm.Label("b"))
	p.AddEdge(a, b, 1)

	plain := gpm.MatchSimulation(p, g)
	dual := gpm.MatchDualSimulation(p, g)
	if !plain[b].Has(b1) {
		t.Fatal("plain simulation should admit b1")
	}
	if dual[b].Has(b1) {
		t.Fatal("dual simulation must prune b1")
	}
	if !dual[a].Has(a0) || !dual[b].Has(b0) {
		t.Fatalf("dual lost the witness: %v", dual)
	}
}

func TestFacadeWeightedMatrixOracle(t *testing.T) {
	// The weighted Floyd–Warshall oracle plugged into Match (the remark
	// after Theorem 3.1): with unit weights it agrees with plain Match.
	g := gpm.NewGraph()
	a := g.AddNode(gpm.NewTuple("label", `"a"`))
	x := g.AddNode(gpm.NewTuple("label", `"x"`))
	b := g.AddNode(gpm.NewTuple("label", `"b"`))
	g.AddEdge(a, x)
	g.AddEdge(x, b)

	p := gpm.NewPattern()
	pa := p.AddNode(gpm.Label("a"))
	pb := p.AddNode(gpm.Label("b"))
	p.AddEdge(pa, pb, 2)

	want := gpm.Match(p, g)
	got := gpm.MatchWithOracle(p, g, gpm.NewWeightedMatrix(g, func(u, v gpm.NodeID) float64 { return 1 }))
	if !got.Equal(want) {
		t.Fatalf("weighted(1) = %v, plain = %v", got, want)
	}
}
