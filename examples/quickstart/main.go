// Quickstart: build a small attributed graph, match a bounded-simulation
// pattern against it, then keep the match fresh under edge updates with an
// incremental engine — the minimal end-to-end tour of the gpm API.
package main

import (
	"fmt"
	"log"

	"gpm"
)

func main() {
	// A toy collaboration network: managers (M), engineers (E), designers (D).
	g := gpm.NewGraph()
	mia := g.AddNode(gpm.NewTuple("label", `"M"`, "name", `"Mia"`))
	eve := g.AddNode(gpm.NewTuple("label", `"E"`, "name", `"Eve"`, "years", "7"))
	eli := g.AddNode(gpm.NewTuple("label", `"E"`, "name", `"Eli"`, "years", "2"))
	dan := g.AddNode(gpm.NewTuple("label", `"D"`, "name", `"Dan"`))
	g.AddEdge(mia, eve) // Mia works with Eve
	g.AddEdge(eve, eli) // Eve mentors Eli
	g.AddEdge(eli, dan) // Eli pairs with Dan

	// Pattern: a manager within 2 hops of a senior engineer (>= 5 years),
	// who reaches a designer through any chain.
	p := gpm.NewPattern()
	m := p.AddNode(gpm.Label("M"))
	e := p.AddNode(gpm.Label("E").Where("years", gpm.OpGE, gpm.Int(5)))
	d := p.AddNode(gpm.Label("D"))
	must(p.AddEdge(m, e, 2))
	must(p.AddEdge(e, d, gpm.Unbounded))

	rel := gpm.Match(p, g)
	fmt.Println("initial match:")
	printMatch(rel, []string{"manager", "senior eng", "designer"}, g)

	// Incremental maintenance: the engine owns the graph from here on.
	eng, err := gpm.NewIncBSimEngine(p, g)
	if err != nil {
		log.Fatal(err)
	}

	// Eve leaves the designer chain: Eli's pairing with Dan ends.
	eng.Delete(eli, dan)
	fmt.Println("\nafter deleting Eli→Dan (chain to the designer broken):")
	printMatch(eng.Result(), []string{"manager", "senior eng", "designer"}, g)

	// Eve starts working with Dan directly: the match is repaired, not
	// recomputed.
	eng.Insert(eve, dan)
	fmt.Println("\nafter inserting Eve→Dan:")
	printMatch(eng.Result(), []string{"manager", "senior eng", "designer"}, g)
	fmt.Printf("\naffected-area stats: %+v\n", eng.Stats())
}

func printMatch(rel gpm.Relation, roles []string, g *gpm.Graph) {
	if rel.Empty() {
		fmt.Println("  (no match)")
		return
	}
	for u, set := range rel {
		fmt.Printf("  %-11s →", roles[u])
		for _, v := range set.Sorted() {
			name, _ := g.Attrs(v).Get("name")
			fmt.Printf(" %s", name.Str())
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
