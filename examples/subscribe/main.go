// Subscribe: the continuous-query subsystem end to end through the typed
// client SDK, over real HTTP, across a server crash.
//
// The program starts a journaled gpserve instance in-process on a
// loopback port, loads a small social graph, registers a standing
// pattern, and opens a client.Stream subscription. It applies update
// batches and prints each pushed match delta ΔM; then it kills the
// server mid-stream, restarts it from the journal on the same port, and
// applies more batches — the stream's auto-reconnect resumes with
// Last-Event-ID, and the program verifies the delta sequence stayed
// contiguous (nothing missed, nothing duplicated) and that snapshot ⊕
// all deltas equals the live result. Exits non-zero on any violation,
// so CI can run it as the kill+resume smoke test.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/journal"
	"gpm/internal/serve"
)

// server is one in-process gpserve instance over the durable journal in
// dir, listening on addr ("" picks a port).
type server struct {
	hs  *http.Server
	srv *serve.Server
	j   *journal.Journal
}

func start(dir, addr string) (*server, string, error) {
	j, err := journal.Open(dir)
	if err != nil {
		return nil, "", err
	}
	srv, err := serve.NewWithJournal(j)
	if err != nil {
		return nil, "", err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for i := 0; i < 50; i++ { // the OS may briefly hold a restarted port
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln) //nolint:errcheck // closed on stop
	return &server{hs: hs, srv: srv, j: j}, ln.Addr().String(), nil
}

// stop tears the instance down the way gpserve's signal handler does:
// listener, registry (ends the SSE streams, fsyncs), then the journal.
func (s *server) stop() error {
	s.hs.Close() //nolint:errcheck // dropping live connections is the point
	s.srv.Close()
	return s.j.Close()
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "gpserve-journal-*")
	must(err)
	defer os.RemoveAll(dir)

	// A review graph: bosses, account managers and their contacts, the
	// shape of the paper's Example 1.1.
	g := gpm.NewGraph()
	add := func(label string) gpm.NodeID {
		return g.AddNode(gpm.NewTuple("label", `"`+label+`"`))
	}
	boss := add("B")
	am1, am2 := add("AM"), add("AM")
	c1, c2 := add("C"), add("C")
	g.AddEdge(boss, am1)
	g.AddEdge(am1, c1)

	// Pattern: a boss with an account manager who has a contact.
	p := gpm.NewPattern()
	p.AddNode(gpm.Label("B"))
	p.AddNode(gpm.Label("AM"))
	p.AddNode(gpm.Label("C"))
	must(p.AddEdge(0, 1, 1))
	must(p.AddEdge(1, 2, 1))

	// Start a journaled gpserve and set the world up through the SDK.
	first, addr, err := start(dir, "")
	must(err)
	fmt.Printf("gpserve listening on http://%s (journal %s)\n", addr, dir)
	c := client.New("http://"+addr, client.WithBackoff(50*time.Millisecond, time.Second))
	_, err = c.LoadGraph(ctx, g)
	must(err)
	_, err = c.Register(ctx, "ring", p, gpm.KindAuto)
	must(err)

	// One typed stream, consumed across the crash below.
	st, err := c.Stream(ctx, "ring")
	must(err)
	defer st.Close()
	acc := map[gpm.Pair]bool{}
	lastSeq := next(st, acc, 0) // the snapshot

	// Stream updates: wire a second account-manager chain in, then break
	// the first one. Each commit pushes one delta frame.
	for _, b := range [][]gpm.Update{
		{gpm.Insert(boss, am2), gpm.Insert(am2, c2)}, // (boss→am2→c2) joins
		{gpm.Delete(am1, c1)},                        // am1 loses its contact
	} {
		_, err = c.Apply(ctx, b)
		must(err)
		lastSeq = next(st, acc, lastSeq)
	}

	// Crash: kill the server mid-stream, restart from the journal on the
	// same port. The client's auto-reconnect rides through it.
	fmt.Println("--- killing gpserve mid-stream ---")
	must(first.stop())
	second, _, err := start(dir, addr)
	must(err)
	defer second.stop() //nolint:errcheck // process exit follows
	info, err := c.GraphInfo(ctx)
	must(err)
	fmt.Printf("--- restarted from journal: %d nodes, seq %d, %d pattern(s) ---\n",
		info.Nodes, info.Seq, info.Patterns)

	for _, b := range [][]gpm.Update{
		{gpm.Delete(am2, c2)}, // no chain left: match collapses
		{gpm.Insert(am1, c2)}, // am1 re-wired: match returns
	} {
		_, err = c.Apply(ctx, b)
		must(err)
		lastSeq = next(st, acc, lastSeq)
	}

	// The invariant of the whole subsystem: snapshot ⊕ deltas — across a
	// process death — equals the live result.
	res, err := c.Result(ctx, "ring")
	must(err)
	if res.Seq != lastSeq {
		log.Fatalf("live result at seq %d, stream at %d", res.Seq, lastSeq)
	}
	if len(res.Pairs) != len(acc) {
		log.Fatalf("accumulated %d pairs, live result has %d", len(acc), len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if !acc[pr] {
			log.Fatalf("pair %+v in live result but not in accumulated stream", pr)
		}
	}
	fmt.Printf("final    seq=%d pairs=%d (stream ⊕ deltas == live result across restart)\n",
		lastSeq, len(acc))
}

// next receives one stream event, folds it into acc, checks sequence
// contiguity, and prints it.
func next(st *client.Stream, acc map[gpm.Pair]bool, lastSeq uint64) uint64 {
	select {
	case ev, ok := <-st.C:
		if !ok {
			log.Fatalf("stream closed unexpectedly: %v", st.Err())
		}
		switch ev.Type {
		case client.EventSnapshot:
			for k := range acc {
				delete(acc, k)
			}
			for _, pr := range ev.Pairs {
				acc[pr] = true
			}
			fmt.Printf("%-8s seq=%d pairs=%d\n", ev.Type, ev.Seq, len(ev.Pairs))
		case client.EventDelta:
			if ev.Seq != lastSeq+1 {
				log.Fatalf("delta seq %d after %d: a delta was missed or duplicated", ev.Seq, lastSeq)
			}
			for _, pr := range ev.Removed {
				delete(acc, pr)
			}
			for _, pr := range ev.Added {
				acc[pr] = true
			}
			fmt.Printf("%-8s seq=%d added=%d removed=%d\n", ev.Type, ev.Seq, len(ev.Added), len(ev.Removed))
		}
		return ev.Seq
	case <-time.After(30 * time.Second):
		log.Fatal("no stream event within 30s")
		return 0
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
