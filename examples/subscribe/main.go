// Subscribe: the continuous-query subsystem end to end, over real HTTP.
// The program starts a gpserve instance in-process on a loopback port,
// loads a small social graph, registers a standing pattern, opens a
// Server-Sent-Events subscription, and then streams edge updates at the
// server — printing each pushed match delta ΔM and checking that the
// snapshot plus the accumulated deltas always equals the live result.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"gpm"
	"gpm/internal/serve"
)

func main() {
	// A review graph: bosses, account managers and their contacts, the
	// shape of the paper's Example 1.1.
	g := gpm.NewGraph()
	add := func(label string) gpm.NodeID {
		return g.AddNode(gpm.NewTuple("label", `"`+label+`"`))
	}
	boss := add("B")
	am1, am2 := add("AM"), add("AM")
	c1, c2 := add("C"), add("C")
	g.AddEdge(boss, am1)
	g.AddEdge(am1, c1)

	// Pattern: a boss with an account manager who has a contact.
	p := gpm.NewPattern()
	pb := p.AddNode(gpm.Label("B"))
	pa := p.AddNode(gpm.Label("AM"))
	pc := p.AddNode(gpm.Label("C"))
	must(p.AddEdge(pb, pa, 1))
	must(p.AddEdge(pa, pc, 1))

	// Start gpserve on a loopback port.
	srv := serve.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // shut down with the process
	base := "http://" + ln.Addr().String()
	fmt.Printf("gpserve listening on %s\n", base)

	// Load the graph and register the standing pattern, exactly as curl
	// would.
	var gbuf, pbuf bytes.Buffer
	must(g.Write(&gbuf))
	must(p.Write(&pbuf))
	post("POST", base+"/graph", gbuf.String())
	post("PUT", base+"/patterns/ring?kind=auto", pbuf.String())

	// Open the SSE stream and read the snapshot frame.
	resp, err := http.Get(base + "/patterns/ring/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	event, data := readFrame(sc)
	fmt.Printf("%-8s seq=%v pairs=%v\n", event, data["seq"], data["size"])

	// Stream updates: wire a second account-manager chain in, then break
	// the first one. Each commit pushes one delta frame.
	batches := []string{
		fmt.Sprintf("insert %d %d\ninsert %d %d\n", boss, am2, am2, c2), // (boss→am2→c2) joins
		fmt.Sprintf("delete %d %d\n", am1, c1),                          // am1 loses its contact
		fmt.Sprintf("delete %d %d\n", am2, c2),                          // no chain left: match collapses
		fmt.Sprintf("insert %d %d\n", am1, c2),                          // am1 re-wired: match returns
	}
	for _, b := range batches {
		post("POST", base+"/updates", b)
		event, data = readFrame(sc)
		fmt.Printf("%-8s seq=%v added=%v removed=%v\n",
			event, data["seq"], data["added"], data["removed"])
	}

	// The live result after all deltas.
	r, err := http.Get(base + "/patterns/ring/result")
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	var res map[string]any
	must(json.NewDecoder(r.Body).Decode(&res))
	fmt.Printf("final    seq=%v pairs=%v\n", res["seq"], res["size"])
}

// post sends a text body and fails loudly on a non-2xx response.
func post(method, url, body string) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body) //nolint:errcheck // best-effort error text
		log.Fatalf("%s %s: %s: %s", method, url, resp.Status, msg.String())
	}
}

// readFrame reads one SSE frame (event + JSON data).
func readFrame(sc *bufio.Scanner) (string, map[string]any) {
	var event string
	var data map[string]any
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &data); err != nil {
				log.Fatal(err)
			}
		case line == "" && event != "":
			return event, data
		}
	}
	log.Fatal("SSE stream ended unexpectedly")
	return "", nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
