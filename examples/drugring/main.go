// Drug ring: the motivating Example 1.1 / Fig. 1 of the paper. A
// drug-trafficking organization — a boss (B) over assistant managers (AM)
// over 3-level field-worker hierarchies (FW), with a secretary (S) role —
// is invisible to subgraph isomorphism (AM and S share a person; AM
// supervises FWs across up to 3 hops) but falls out directly from bounded
// simulation.
package main

import (
	"fmt"
	"log"

	"gpm"
)

func main() {
	const numAMs = 3

	// Pattern P0 (Fig. 1): edge labels are hop bounds.
	p := gpm.NewPattern()
	b := p.AddNode(gpm.Label("B"))
	am := p.AddNode(gpm.Label("AM"))
	s := p.AddNode(gpm.Predicate{}.Where("s", gpm.OpEQ, gpm.Int(1)))
	fw := p.AddNode(gpm.Label("FW"))
	must(p.AddEdge(b, am, 1))  // boss oversees AMs directly
	must(p.AddEdge(am, b, 1))  // AMs report directly to the boss
	must(p.AddEdge(am, fw, 3)) // an AM supervises FWs within 3 hops
	must(p.AddEdge(fw, am, 3)) // FWs report back within 3 hops
	must(p.AddEdge(b, s, 1))   // the boss reaches the secretary directly
	must(p.AddEdge(s, fw, 1))  // the secretary conveys to top-level FWs

	// Data graph G0: the ring, with Am doubling as the secretary.
	g := gpm.NewGraph()
	boss := g.AddNode(gpm.NewTuple("label", `"B"`, "name", `"boss"`))
	names := map[gpm.NodeID]string{boss: "boss"}
	for i := 0; i < numAMs; i++ {
		t := gpm.NewTuple("label", `"AM"`)
		if i == numAMs-1 {
			t["s"] = gpm.Int(1) // Am is both AM and S
		}
		a := g.AddNode(t)
		names[a] = fmt.Sprintf("A%d", i+1)
		g.AddEdge(boss, a)
		g.AddEdge(a, boss)
		prev := a
		var last gpm.NodeID
		for d := 0; d < 3; d++ {
			w := g.AddNode(gpm.NewTuple("label", `"FW"`))
			names[w] = fmt.Sprintf("W%d.%d", i+1, d+1)
			g.AddEdge(prev, w)
			prev, last = w, w
		}
		g.AddEdge(last, a) // the chain tail reports back
	}

	// Subgraph isomorphism cannot see the ring…
	if ems := gpm.EnumerateIsomorphic(p.Normalized(), g, 1); len(ems) == 0 {
		fmt.Println("VF2 (subgraph isomorphism): no match — as Example 1.1 predicts")
	} else {
		fmt.Println("VF2 unexpectedly found a match!")
	}

	// …bounded simulation identifies every suspect.
	rel := gpm.Match(p, g)
	if rel.Empty() {
		log.Fatal("bounded simulation should match the ring")
	}
	fmt.Println("\nbounded simulation (suspects per role):")
	for u, role := range []string{"B ", "AM", "S ", "FW"} {
		fmt.Printf("  %s →", role)
		for _, v := range rel[u].Sorted() {
			fmt.Printf(" %s", names[v])
		}
		fmt.Println()
	}

	// The result graph projects pattern edges onto bounded paths.
	rg := gpm.BoundedResultGraph(p, g, rel)
	fmt.Printf("\nresult graph: %d suspects, %d projected connections\n",
		rg.NumNodes(), rg.NumEdges())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
