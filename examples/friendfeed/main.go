// FriendFeed: the incremental-matching walkthrough of Fig. 4 / Examples
// 4.1-4.2. A b-pattern (CTOs near DB researchers and biologists) is
// matched once; as the five edges e1..e5 land one at a time, the
// incremental engine repairs the match and we watch ΔM and the affected
// area instead of recomputing from scratch.
package main

import (
	"fmt"
	"log"

	"gpm"
)

func main() {
	// Pattern P3: a CTO with a DB researcher within 2 hops and a biologist
	// within 1; the DB researcher reaches a biologist in 1 hop and a CTO
	// through any chain.
	p := gpm.NewPattern()
	cto := p.AddNode(gpm.Label("CTO"))
	db := p.AddNode(gpm.Label("DB"))
	bio := p.AddNode(gpm.Label("Bio"))
	must(p.AddEdge(cto, db, 2))
	must(p.AddEdge(cto, bio, 1))
	must(p.AddEdge(db, bio, 1))
	must(p.AddEdge(db, cto, gpm.Unbounded))

	// The FriendFeed fragment G3.
	g := gpm.NewGraph()
	names := map[gpm.NodeID]string{}
	add := func(name, job string) gpm.NodeID {
		id := g.AddNode(gpm.NewTuple("name", `"`+name+`"`, "label", `"`+job+`"`))
		names[id] = name
		return id
	}
	ann := add("Ann", "CTO")
	pat := add("Pat", "DB")
	dan := add("Dan", "DB")
	bill := add("Bill", "Bio")
	mat := add("Mat", "Bio")
	don := add("Don", "CTO")
	tom := add("Tom", "Bio")
	ross := add("Ross", "Med")
	for _, e := range [][2]gpm.NodeID{
		{ann, pat}, {ann, bill}, {pat, bill}, {pat, dan},
		{dan, mat}, {dan, ann}, {don, tom}, {tom, ross}, {ross, don},
	} {
		g.AddEdge(e[0], e[1])
	}

	// The engine maintains the match and a landmark-backed distance index.
	eng, err := gpm.NewIncBSimEngineWithLandmarks(p, g)
	if err != nil {
		log.Fatal(err)
	}
	show := func(stage string) {
		fmt.Printf("%s:\n", stage)
		roles := []string{"CTO", "DB ", "Bio"}
		for u, set := range eng.Result() {
			fmt.Printf("  %s →", roles[u])
			for _, v := range set.Sorted() {
				fmt.Printf(" %s", names[v])
			}
			fmt.Println()
		}
	}
	show("initial match (Fig. 5 Gr1)")

	updates := []struct {
		label    string
		from, to gpm.NodeID
	}{
		{"e1: Ross→Dan", ross, dan},
		{"e2: Don→Pat (Example 4.2: Don becomes a CTO match)", don, pat},
		{"e3: Pat→Don", pat, don},
		{"e4: Dan→Tom", dan, tom},
		{"e5: Mat→Ross", mat, ross},
	}
	for _, up := range updates {
		before := eng.Result()
		eng.Insert(up.from, up.to)
		removed, added := before.Diff(eng.Result())
		fmt.Printf("\ninsert %s\n", up.label)
		fmt.Printf("  ΔM: +%d −%d pairs\n", len(added), len(removed))
		for _, pr := range added {
			fmt.Printf("    + (%s, %s)\n", []string{"CTO", "DB", "Bio"}[pr.U], names[pr.V])
		}
	}
	show("\nfinal match (Fig. 5 Gr3)")
	fmt.Printf("\ncumulative affected-area stats: %+v\n", eng.Stats())
	fmt.Println("note: a batch matcher would have recomputed everything five times;")
	fmt.Println("the engine touched only the affected area each time (Theorem 6.1).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
