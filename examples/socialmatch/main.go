// Social matching: the two Fig. 2 scenarios. P1/G1 — a founder assembling
// a start-up team (software engineer and HR expert within 2 hops, golfing
// sales managers connected back through any chain); P2/G2 — a computer
// scientist looking for cross-disciplinary collaborators. Both matches
// need relations (not bijections), shared roles and edge-to-path mappings,
// so bounded simulation finds them where subgraph isomorphism cannot.
package main

import (
	"fmt"
	"log"

	"gpm"
)

func main() {
	teamFormation()
	fmt.Println()
	collaboration()
}

func teamFormation() {
	fmt.Println("— P1/G1: start-up team formation —")
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	se := p.AddNode(gpm.Predicate{}.Where("se", gpm.OpEQ, gpm.Int(1)))
	hr := p.AddNode(gpm.Predicate{}.Where("hr", gpm.OpEQ, gpm.Int(1)))
	dm := p.AddNode(gpm.Predicate{}.
		Where("dm", gpm.OpEQ, gpm.Int(1)).
		Where("hobby", gpm.OpEQ, gpm.String("golf")))
	must(p.AddEdge(a, se, 2))             // an SE within 2 hops
	must(p.AddEdge(a, hr, 2))             // an HR expert within 2 hops
	must(p.AddEdge(se, dm, 1))            // DM within 1 hop of the SE
	must(p.AddEdge(hr, dm, 2))            // DM within 2 hops of the HR
	must(p.AddEdge(dm, a, gpm.Unbounded)) // DM linked back through friends

	g := gpm.NewGraph()
	name := map[gpm.NodeID]string{}
	add := func(label string, t gpm.Tuple) gpm.NodeID {
		id := g.AddNode(t)
		name[id] = label
		return id
	}
	founder := add("founder", gpm.NewTuple("label", `"A"`))
	eng := add("engineer", gpm.NewTuple("se", "1"))
	hrX := add("hr-expert", gpm.NewTuple("hr", "1"))
	both := add("hr+se", gpm.NewTuple("hr", "1", "se", "1")) // dual role
	dmL := add("golfer-dm-1", gpm.NewTuple("dm", "1", "hobby", `"golf"`))
	dmR := add("golfer-dm-2", gpm.NewTuple("dm", "1", "hobby", `"golf"`))
	g.AddEdge(founder, hrX)
	g.AddEdge(hrX, both)
	g.AddEdge(founder, eng)
	g.AddEdge(eng, dmR)
	g.AddEdge(both, dmL)
	g.AddEdge(hrX, dmL)
	g.AddEdge(dmL, founder)
	g.AddEdge(dmR, dmL)

	rel := gpm.Match(p, g)
	roles := []string{"A", "SE", "HR", "DM"}
	for u := range rel {
		fmt.Printf("  %-2s →", roles[u])
		for _, v := range rel[u].Sorted() {
			fmt.Printf(" %s", name[v])
		}
		fmt.Println()
	}
	fmt.Println("  note: 'hr+se' matches both SE and HR — impossible for a bijection;")
	fmt.Printf("  VF2 embeddings of the same (normalized) pattern: %d\n",
		len(gpm.EnumerateIsomorphic(p.Normalized(), g, 0)))
	_ = a
	_ = dm
}

func collaboration() {
	fmt.Println("— P2/G2: cross-disciplinary collaboration —")
	p := gpm.NewPattern()
	cs := p.AddNode(gpm.Predicate{}.Where("dept", gpm.OpEQ, gpm.String("CS")))
	bio := p.AddNode(gpm.Predicate{}.Where("dept", gpm.OpEQ, gpm.String("Bio")))
	med := p.AddNode(gpm.Label("Med"))
	soc := p.AddNode(gpm.Label("Soc"))
	must(p.AddEdge(cs, bio, 2))
	must(p.AddEdge(cs, soc, 3))
	must(p.AddEdge(cs, med, gpm.Unbounded))
	must(p.AddEdge(med, cs, gpm.Unbounded))
	must(p.AddEdge(bio, soc, 2))
	must(p.AddEdge(bio, med, 3))

	g := gpm.NewGraph()
	name := map[gpm.NodeID]string{}
	add := func(label string, t gpm.Tuple) gpm.NodeID {
		id := g.AddNode(t)
		name[id] = label
		return id
	}
	db := add("DB", gpm.NewTuple("label", `"DB"`, "dept", `"CS"`))
	ai := add("AI", gpm.NewTuple("label", `"AI"`, "dept", `"CS"`))
	gen := add("Gen", gpm.NewTuple("label", `"Gen"`, "dept", `"Bio"`))
	eco := add("Eco", gpm.NewTuple("label", `"Eco"`, "dept", `"Bio"`))
	chem := add("Chem", gpm.NewTuple("label", `"Chem"`))
	medN := add("Med", gpm.NewTuple("label", `"Med"`))
	socN := add("Soc", gpm.NewTuple("label", `"Soc"`))
	g.AddEdge(db, gen)
	g.AddEdge(gen, eco)
	g.AddEdge(eco, socN)
	g.AddEdge(socN, medN)
	g.AddEdge(medN, db)
	g.AddEdge(ai, chem)
	g.AddEdge(chem, ai)

	rel := gpm.Match(p, g)
	roles := []string{"CS", "Bio", "Med", "Soc"}
	for u := range rel {
		fmt.Printf("  %-3s →", roles[u])
		for _, v := range rel[u].Sorted() {
			fmt.Printf(" %s", name[v])
		}
		fmt.Println()
	}
	fmt.Println("  note: AI is excluded — no path to Soc within 3 hops (Example 2.2)")

	// Example 2.2(3): drop (DB, Gen) and the match collapses entirely.
	eng, err := gpm.NewIncBSimEngine(p, g)
	if err != nil {
		log.Fatal(err)
	}
	eng.Delete(db, gen)
	if eng.Result().Empty() {
		fmt.Println("  after deleting DB→Gen: no match at all (CS has no valid candidate)")
	}
	_ = bio
	_ = med
	_ = soc
	_ = cs
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
