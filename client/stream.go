package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"gpm"
)

// EventType discriminates stream events.
type EventType string

const (
	// EventSnapshot carries a pattern's full match relation at Seq — the
	// stream's starting state, and the rebase signal after a resume the
	// server could no longer backfill (journal compacted): discard the
	// accumulated state and start over from Pairs.
	EventSnapshot EventType = "snapshot"
	// EventDelta carries one commit's match change ΔM.
	EventDelta EventType = "delta"
)

// MatchEvent is one typed stream event. For EventSnapshot, Pairs is the
// full relation at Seq; for EventDelta, Added and Removed are the
// commit's ΔM (either may be empty — every commit produces an event, so
// Seq advances by exactly one per delta).
type MatchEvent struct {
	Type    EventType
	Pattern string
	Seq     uint64
	Pairs   []gpm.Pair // snapshot only
	Added   []gpm.Pair // delta only
	Removed []gpm.Pair // delta only
	// Trace is the producing commit span's W3C traceparent and At its
	// publish timestamp; both are zero for snapshots, unsampled commits,
	// and backfilled (resumed) deltas.
	Trace string
	At    time.Time
}

// StreamOption configures a Stream call.
type StreamOption func(*streamOpts)

type streamOpts struct {
	fromSeq uint64
	hasFrom bool
}

// FromSeq resumes the stream from commit sequence n: the caller already
// holds the relation as of n, so no snapshot is sent and delivery starts
// at n+1 (backfilled from the server's journal). If the server no longer
// retains the range it falls back to a snapshot event — handle
// EventSnapshot by rebasing.
func FromSeq(n uint64) StreamOption {
	return func(o *streamOpts) { o.fromSeq = n; o.hasFrom = true }
}

// Stream is a live match-delta subscription. Events arrive on C in
// commit order with consecutive sequence numbers. The stream survives
// disconnects and server restarts: it reconnects with exponential
// backoff, resuming from the last delivered sequence via the SSE
// Last-Event-ID contract, and deduplicates any overlap — consumers never
// see a sequence twice or a gap without an interleaved EventSnapshot.
//
// C closes when the stream ends: context canceled, Close called, or a
// terminal server answer (pattern unregistered → "not_found", resume
// unresumable, or any other non-retryable APIError). Err reports the
// cause (nil after a plain Close or context cancellation).
type Stream struct {
	C <-chan MatchEvent

	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	err   error
	stats StreamStats
}

// StreamStats is a point-in-time view of the stream's reconnect machinery
// — how hard the stream is working to stay connected, invisible on C by
// design. Read it via Stats.
type StreamStats struct {
	// Attempts counts connection attempts, including the initial connect
	// and every reconnect try; Connects counts the ones that reached an
	// open SSE stream.
	Attempts uint64 `json:"attempts"`
	Connects uint64 `json:"connects"`
	// Disconnects counts open connections that later dropped (server
	// restart, network). Attempts - Connects is the failed-try count.
	Disconnects uint64 `json:"disconnects"`
	// EventsDelivered counts events delivered on C (after dedup);
	// LastSeq is the newest delivered sequence.
	EventsDelivered uint64 `json:"events_delivered"`
	LastSeq         uint64 `json:"last_seq"`
	// Connected reports whether an SSE connection is open right now.
	Connected bool `json:"connected"`
	// CurrentBackoff is the delay before the next reconnect attempt while
	// disconnected (the floor once a connection delivers again).
	CurrentBackoff time.Duration `json:"current_backoff"`
	// LastDisconnect is the cause of the most recent drop or failed
	// attempt ("" while none has happened); LastDisconnectAt stamps it.
	LastDisconnect   string    `json:"last_disconnect,omitempty"`
	LastDisconnectAt time.Time `json:"last_disconnect_at,omitzero"`
}

// Stats returns a snapshot of the stream's reconnect/delivery counters.
// Safe to call concurrently with delivery, before and after C closes.
func (s *Stream) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Stream) recordAttempt() {
	s.mu.Lock()
	s.stats.Attempts++
	s.mu.Unlock()
}

func (s *Stream) recordConnect() {
	s.mu.Lock()
	s.stats.Connects++
	s.stats.Connected = true
	s.mu.Unlock()
}

func (s *Stream) recordDisconnect(wasOpen bool, cause string) {
	s.mu.Lock()
	if wasOpen {
		s.stats.Disconnects++
	}
	s.stats.Connected = false
	s.stats.LastDisconnect = cause
	s.stats.LastDisconnectAt = time.Now()
	s.mu.Unlock()
}

func (s *Stream) recordEvent(seq uint64) {
	s.mu.Lock()
	s.stats.EventsDelivered++
	s.stats.LastSeq = seq
	s.mu.Unlock()
}

func (s *Stream) recordBackoff(d time.Duration) {
	s.mu.Lock()
	s.stats.CurrentBackoff = d
	s.mu.Unlock()
}

// Close tears the stream down: the connection drops, the goroutine
// exits and C closes. Safe to call more than once.
func (s *Stream) Close() {
	s.cancel()
	<-s.done
}

// Err returns the terminal error after C closed (nil for a clean close
// or cancellation).
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Stream) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Stream opens a match-delta subscription for pattern id. The first
// connection is established synchronously, so an immediately-broken
// subscription (unknown pattern, unreachable server) fails here rather
// than on C. Events then flow on the returned stream's C until ctx is
// canceled, Close is called, or a terminal server condition ends it.
func (c *Client) Stream(ctx context.Context, id string, options ...StreamOption) (*Stream, error) {
	var o streamOpts
	for _, opt := range options {
		opt(&o)
	}
	sctx, cancel := context.WithCancel(ctx)
	st := &Stream{cancel: cancel, done: make(chan struct{})}
	ch := make(chan MatchEvent)
	st.C = ch

	cs := &streamConn{
		c:       c,
		id:      id,
		st:      st,
		lastSeq: o.fromSeq,
		haveSeq: o.hasFrom,
	}
	st.stats.CurrentBackoff = c.backoffMin
	// Synchronous first connect: fail fast on anything that backoff-and-
	// retry cannot fix.
	resp, err := cs.connect(sctx)
	if err != nil && cs.retryable(err) {
		// A down server is not a setup error — the whole point of the
		// reconnecting stream is to ride through it. Enter the retry loop.
		resp = nil
	} else if err != nil {
		cancel()
		close(st.done)
		return nil, terminalErr(err)
	}
	go cs.run(sctx, st, ch, resp)
	return st, nil
}

// streamConn is the reconnect state machine behind one Stream.
type streamConn struct {
	c       *Client
	id      string
	st      *Stream // owner, for the Stats counters
	lastSeq uint64  // newest delivered (or resumed-from) sequence
	haveSeq bool    // lastSeq is meaningful: resume instead of snapshotting
}

// retryable reports whether an error is worth a backoff-and-reconnect:
// transport failures and explicitly transient server states are; typed
// client errors (pattern gone, bad resume) are terminal.
func (cs *streamConn) retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		// "closed" is a server shutting down — the restart we are designed
		// to ride through. Everything else typed is terminal.
		return apiErr.Code == CodeClosed || apiErr.Status >= 500
	}
	// Transport-level failure (connection refused/reset, EOF): retry.
	return true
}

// connect opens one SSE request, resuming via Last-Event-ID when a
// sequence is held.
func (cs *streamConn) connect(ctx context.Context) (*http.Response, error) {
	cs.st.recordAttempt()
	u := cs.c.base + "/v1/patterns/" + url.PathEscape(cs.id) + "/stream"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if cs.haveSeq {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", cs.lastSeq))
	}
	resp, err := cs.c.hc.Do(req)
	if err != nil {
		cs.st.recordDisconnect(false, err.Error())
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		err := apiError(resp)
		cs.st.recordDisconnect(false, err.Error())
		return nil, err
	}
	cs.st.recordConnect()
	return resp, nil
}

// run is the delivery loop: read frames, deliver deduplicated events,
// reconnect with exponential backoff on drops, stop on ctx or terminal
// errors.
func (cs *streamConn) run(ctx context.Context, st *Stream, ch chan<- MatchEvent, resp *http.Response) {
	defer close(st.done)
	defer close(ch)
	backoff := cs.c.backoffMin
	for {
		if resp == nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			var err error
			resp, err = cs.connect(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				if !cs.retryable(err) {
					// Typed so consumers can switch on the cause — notably
					// ErrCompacted, the re-sync-from-snapshot signal when no
					// rebase is possible.
					st.setErr(terminalErr(err))
					return
				}
				resp = nil
				if backoff *= 2; backoff > cs.c.backoffMax {
					backoff = cs.c.backoffMax
				}
				st.recordBackoff(backoff)
				continue
			}
		}
		delivered, err := cs.consume(ctx, ch, resp)
		resp.Body.Close()
		resp = nil
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			// consume only errors on protocol violations (unparseable
			// frames); reconnecting would hit the same wire. Terminal.
			st.recordDisconnect(true, err.Error())
			st.setErr(err)
			return
		}
		st.recordDisconnect(true, "connection dropped")
		// The connection dropped (server restart, network): reconnect,
		// resuming after the last delivered sequence. A connection that
		// delivered something resets the backoff.
		if delivered {
			backoff = cs.c.backoffMin
		} else if backoff *= 2; backoff > cs.c.backoffMax {
			backoff = cs.c.backoffMax
		}
		st.recordBackoff(backoff)
	}
}

// snapshotFrame and deltaFrame mirror the server's SSE data documents.
type snapshotFrame struct {
	ID    string     `json:"id"`
	Seq   uint64     `json:"seq"`
	Pairs []gpm.Pair `json:"pairs"`
}

type deltaFrame struct {
	ID      string     `json:"id"`
	Seq     uint64     `json:"seq"`
	Added   []gpm.Pair `json:"added"`
	Removed []gpm.Pair `json:"removed"`
	Trace   string     `json:"trace"`
	At      int64      `json:"at"` // publish time, UnixNano; 0 when absent
}

// consume reads SSE frames off one connection until it drops, delivering
// typed events. It reports whether anything was delivered (for backoff
// reset). A nil error is a plain connection drop.
func (cs *streamConn) consume(ctx context.Context, ch chan<- MatchEvent, resp *http.Response) (delivered bool, err error) {
	// A dropped connection must unblock the scanner even between frames:
	// closing the body on ctx cancellation does that.
	stop := context.AfterFunc(ctx, func() { resp.Body.Close() })
	defer stop()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" {
				continue
			}
			ev, ok, perr := cs.parse(event, data)
			event, data = "", ""
			if perr != nil {
				return delivered, perr
			}
			if !ok {
				continue // duplicate of an already-delivered sequence
			}
			// Counted before the handoff so a consumer that just received
			// the event already sees it in Stats; at most one in-flight
			// event is over-counted if the stream closes mid-send.
			cs.st.recordEvent(ev.Seq)
			// The delivery span ends once the consumer has the event, so
			// its duration is the end-to-end event age at this client.
			ds := cs.c.deliverSpan(ev.Trace, ev.At, "pattern", ev.Pattern)
			select {
			case ch <- ev:
				ds.End()
				delivered = true
			case <-ctx.Done():
				return delivered, nil
			}
		}
	}
	if err := sc.Err(); err != nil && errors.Is(err, bufio.ErrTooLong) {
		// Deterministic: the server would resend the same oversized frame
		// on every reconnect, so retrying loops forever. Terminal.
		return delivered, fmt.Errorf("client: SSE frame exceeds the stream buffer: %w", err)
	}
	return delivered, nil // drop (EOF or close); the caller decides retry
}

// parse turns one SSE frame into a MatchEvent, updating the resume
// cursor. ok is false for frames the consumer already saw (the dedup
// that makes reconnect overlap invisible).
func (cs *streamConn) parse(event, data string) (ev MatchEvent, ok bool, err error) {
	switch EventType(event) {
	case EventSnapshot:
		var f snapshotFrame
		if err := json.Unmarshal([]byte(data), &f); err != nil {
			return ev, false, fmt.Errorf("client: bad snapshot frame: %w", err)
		}
		// A snapshot is always delivered: on first connect it is the
		// starting state, on reconnect it is the server's rebase signal
		// (journal compacted past our cursor).
		cs.lastSeq, cs.haveSeq = f.Seq, true
		return MatchEvent{Type: EventSnapshot, Pattern: f.ID, Seq: f.Seq, Pairs: f.Pairs}, true, nil
	case EventDelta:
		var f deltaFrame
		if err := json.Unmarshal([]byte(data), &f); err != nil {
			return ev, false, fmt.Errorf("client: bad delta frame: %w", err)
		}
		if cs.haveSeq && f.Seq <= cs.lastSeq {
			return ev, false, nil // replayed overlap: drop
		}
		cs.lastSeq, cs.haveSeq = f.Seq, true
		ev = MatchEvent{Type: EventDelta, Pattern: f.ID, Seq: f.Seq, Added: f.Added, Removed: f.Removed, Trace: f.Trace}
		if f.At != 0 {
			ev.At = time.Unix(0, f.At)
		}
		return ev, true, nil
	default:
		return ev, false, nil // unknown event types are ignored (forward compat)
	}
}
