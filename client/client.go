// Package client is the typed Go SDK for gpserve's v1 wire API: the
// continuous-query server behind cmd/gpserve (and any embedding of
// internal/serve). It covers every endpoint — graph loading, standing
// pattern registration, update ingestion, results, raw commit tails,
// stats, health — plus Stream, a match-delta subscription that delivers
// typed events on a channel and transparently survives disconnects and
// server restarts by resuming with the SSE Last-Event-ID contract.
//
// Every method takes a context.Context and returns promptly when it is
// canceled. Server-side failures are returned as *APIError carrying the
// wire envelope's stable machine-readable code.
//
// A minimal session:
//
//	c := client.New("http://localhost:8080")
//	c.LoadGraph(ctx, g)
//	c.Register(ctx, "watch", p, gpm.KindAuto)
//	st, _ := c.Stream(ctx, "watch")
//	go func() {
//		for ev := range st.C {
//			fmt.Println(ev.Type, ev.Seq, ev.Added, ev.Removed)
//		}
//	}()
//	c.Apply(ctx, []gpm.Update{gpm.Insert(3, 7)})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"gpm"
	"gpm/internal/obs/trace"
)

// Client talks to one gpserve instance. Construct with New; the zero
// value is not usable. Clients are safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	tracer     *trace.Tracer // client-side spans (off by default)
	backoffMin time.Duration // Stream reconnect backoff floor
	backoffMax time.Duration // ... and ceiling
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is a dedicated client with no
// global timeout — streams are long-lived; bound individual calls with
// their contexts.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTracer records client-side spans into t: Apply opens a root span
// when its context carries none (so a bare Apply still starts a trace the
// server continues), and Stream/CommitStream close each event's delivery
// span — its duration is the event's age when the consumer receives it.
// The default tracer is off: the client then only forwards traceparents
// it finds in call contexts, recording nothing itself.
func WithTracer(t *trace.Tracer) Option {
	return func(c *Client) {
		if t != nil {
			c.tracer = t
		}
	}
}

// Tracer returns the client's tracer (never nil; off unless WithTracer).
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// WithBackoff bounds Stream's reconnect backoff (default 100ms..5s,
// doubling per consecutive failure, reset by a successful connection).
func WithBackoff(min, max time.Duration) Option {
	return func(c *Client) {
		if min > 0 {
			c.backoffMin = min
		}
		if max >= c.backoffMin {
			c.backoffMax = max
		}
	}
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(baseURL string, options ...Option) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{
		base:       baseURL,
		hc:         &http.Client{},
		tracer:     trace.Default(),
		backoffMin: 100 * time.Millisecond,
		backoffMax: 5 * time.Second,
	}
	for _, o := range options {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server: the HTTP status plus
// the v1 error envelope {code, message, seq?}. Code is the stable
// machine-readable contract — switch on it, not on Message. Seq is
// nonzero only for code "journal_failed": the batch WAS committed at that
// sequence but is not durable.
type APIError struct {
	Status  int
	Code    string
	Message string
	Seq     uint64
	// Leader is set on code "read_only": the base URL of the instance
	// that accepts writes (this one is a follower).
	Leader string
	// TraceID joins the failure to its server-side trace (/v1/tracez)
	// when the request was sampled; "" otherwise.
	TraceID string
}

func (e *APIError) Error() string {
	if e.Seq != 0 {
		return fmt.Sprintf("gpserve: %s (http %d, seq %d): %s", e.Code, e.Status, e.Seq, e.Message)
	}
	return fmt.Sprintf("gpserve: %s (http %d): %s", e.Code, e.Status, e.Message)
}

// The envelope codes of the v1 wire contract, mirrored for callers that
// switch on APIError.Code without importing the server.
const (
	CodeInvalidGraph      = "invalid_graph"
	CodeInvalidPattern    = "invalid_pattern"
	CodeInvalidUpdates    = "invalid_updates"
	CodeInvalidKind       = "invalid_kind"
	CodeInvalidSeq        = "invalid_seq"
	CodeNotFound          = "not_found"
	CodeAlreadyRegistered = "already_registered"
	CodeClosed            = "closed"
	CodeCompacted         = "compacted"
	CodeSeqFuture         = "seq_future"
	CodeMethodNotAllowed  = "method_not_allowed"
	CodeNotReady          = "not_ready"
	CodeReadOnly          = "read_only"
	CodeJournalFailed     = "journal_failed"
	CodeInternal          = "internal"
)

// ErrCompacted is the typed terminal condition behind code "compacted":
// the server's journal no longer retains the commit range the caller
// needs, and no snapshot rebase is possible on this endpoint. Streams end
// with an error wrapping it (errors.Is(st.Err(), ErrCompacted)), the
// signal to re-sync from GET /v1/snapshot instead of reconnecting.
var ErrCompacted = errors.New("client: commit history compacted; re-sync from a snapshot")

// terminalErr types a terminal stream error: a compacted envelope is
// wrapped in ErrCompacted so callers can switch on it with errors.Is.
func terminalErr(err error) error {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Code == CodeCompacted {
		return fmt.Errorf("%w: %w", ErrCompacted, err)
	}
	return err
}

// apiError decodes the error envelope of a non-2xx response.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	e := &APIError{Status: resp.StatusCode}
	var env struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Seq     uint64 `json:"seq"`
		Leader  string `json:"leader"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		e.Code, e.Message, e.Seq, e.Leader, e.TraceID = env.Code, env.Message, env.Seq, env.Leader, env.TraceID
	} else {
		e.Code, e.Message = CodeInternal, string(bytes.TrimSpace(body))
	}
	return e
}

// do runs one JSON round trip: marshal in (when non-nil) as the request
// body, decode the response into out (when non-nil). Errors are ctx
// errors, transport errors, or *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// A span context in the call context rides along as the W3C
	// traceparent header — the single injection point for every endpoint.
	if sc := trace.FromContext(ctx); sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// GraphInfo describes the server's canonical graph and commit head.
type GraphInfo struct {
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Seq      uint64 `json:"seq"`
	Patterns int    `json:"patterns"`
}

// PatternInfo describes one registered standing pattern.
type PatternInfo struct {
	ID          string         `json:"id"`
	Kind        gpm.EngineKind `json:"kind"`
	Nodes       int            `json:"nodes"`
	Edges       int            `json:"edges"`
	Subscribers int            `json:"subscribers"`
	ResultSize  int            `json:"result_size"`
}

// Result is one pattern's current match relation at a commit sequence.
type Result struct {
	ID    string     `json:"id"`
	Seq   uint64     `json:"seq"`
	Size  int        `json:"size"`
	Pairs []gpm.Pair `json:"pairs"`
}

// Commit is one committed net update batch of the raw ΔG tail. Trace is
// the commit span's W3C traceparent ("" when the commit was unsampled) —
// what a follower hands to ApplyReplicatedTrace so one trace spans nodes.
type Commit struct {
	Seq     uint64       `json:"seq"`
	Updates []gpm.Update `json:"updates"`
	Trace   string       `json:"trace,omitempty"`
}

// deliverSpan opens the client-side delivery span for one streamed event:
// parented on the commit span named by tp, starting at the server-side
// publish timestamp, so its duration is the event's age when the consumer
// receives it. Nil (a no-op) for unsampled or backfilled events.
func (c *Client) deliverSpan(tp string, at time.Time, key, val string) *trace.Span {
	if at.IsZero() {
		return nil
	}
	sc, ok := trace.Parse(tp)
	if !ok {
		return nil
	}
	sp := c.tracer.StartSpanAt(sc, "client.deliver", at)
	sp.SetAttr(key, val)
	return sp
}

// CommitTail is GET /v1/commits' response: the committed batches with
// sequence in (From, Head].
type CommitTail struct {
	From    uint64   `json:"from"`
	Head    uint64   `json:"head"`
	Commits []Commit `json:"commits"`
}

// LoadGraph installs g as the server's canonical graph — a new world: all
// standing patterns and streams are dropped and the commit sequence
// restarts at 0.
func (c *Client) LoadGraph(ctx context.Context, g *gpm.Graph) (GraphInfo, error) {
	var out GraphInfo
	err := c.do(ctx, http.MethodPost, "/v1/graph", g, &out)
	return out, err
}

// GraphInfo reports the canonical graph's size, commit head and pattern
// count.
func (c *Client) GraphInfo(ctx context.Context) (GraphInfo, error) {
	var out GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graph", nil, &out)
	return out, err
}

// Register installs p as a standing pattern under id, backed by the
// engine for kind (gpm.KindAuto picks one from the pattern's shape).
// The returned PatternInfo carries the kind the server resolved — never
// "auto".
func (c *Client) Register(ctx context.Context, id string, p *gpm.Pattern, kind gpm.EngineKind) (PatternInfo, error) {
	out := PatternInfo{ID: id, Kind: kind} // overwritten by the response's resolved kind
	path := "/v1/patterns/" + url.PathEscape(id)
	if kind != "" {
		path += "?kind=" + url.QueryEscape(string(kind))
	}
	err := c.do(ctx, http.MethodPut, path, p, &out)
	return out, err
}

// Unregister removes a standing pattern, closing its streams.
func (c *Client) Unregister(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/patterns/"+url.PathEscape(id), nil, nil)
}

// Patterns lists the registered standing patterns.
func (c *Client) Patterns(ctx context.Context) ([]PatternInfo, error) {
	var out struct {
		Patterns []PatternInfo `json:"patterns"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/patterns", nil, &out)
	return out.Patterns, err
}

// Result fetches pattern id's current match relation.
func (c *Client) Result(ctx context.Context, id string) (Result, error) {
	var out Result
	err := c.do(ctx, http.MethodGet, "/v1/patterns/"+url.PathEscape(id)+"/result", nil, &out)
	return out, err
}

// Apply commits one batch of edge updates and returns the commit's
// sequence number. An *APIError with code "journal_failed" means the
// batch WAS committed (at the error's Seq) but is not durable.
//
// When the context carries no span and the client's tracer samples (see
// WithTracer), Apply opens a root span — the trace the server's ingest,
// commit pipeline, SSE delivery and any follower's replicated apply all
// hang off. A span already in ctx is forwarded instead, untouched.
func (c *Client) Apply(ctx context.Context, ups []gpm.Update) (uint64, error) {
	if ups == nil {
		ups = []gpm.Update{} // an empty batch is valid; null is not a batch
	}
	var sp *trace.Span
	if !trace.FromContext(ctx).Valid() {
		if sp = c.tracer.StartRoot("client.apply"); sp != nil {
			sp.SetAttr("updates", len(ups))
			ctx = trace.NewContext(ctx, sp.Context())
			defer sp.End()
		}
	}
	var out struct {
		Seq uint64 `json:"seq"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/updates", ups, &out)
	if err == nil {
		sp.SetSeq(out.Seq)
	}
	return out.Seq, err
}

// Commits fetches the raw ΔG tail after sequence from — every committed
// net batch a consumer at from has missed. Code "compacted" (HTTP 410)
// means the journal no longer retains the range: resync from a snapshot.
func (c *Client) Commits(ctx context.Context, from uint64) (CommitTail, error) {
	var out CommitTail
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/commits?from=%d", from), nil, &out)
	return out, err
}

// Stats fetches the registry, journal and shared-network statistics. The
// Network field (non-nil unless the server disabled the shared evaluation
// network) reports how much state structurally-overlapping standing
// patterns share and how many per-pattern repairs that sharing saved.
func (c *Client) Stats(ctx context.Context) (gpm.RegistryStats, error) {
	var out gpm.RegistryStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// PatternDef is one standing pattern's portable definition: its id, the
// resolved engine kind, the pattern source in the text wire format, and
// the commit sequence it was registered at.
type PatternDef struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Def    string `json:"def"`
	RegSeq uint64 `json:"reg_seq"`
}

// Snapshot is GET /v1/snapshot's response: a consistent full-state export
// — the canonical graph, the commit sequence it reflects, and every
// registered pattern's definition. A follower bootstraps from it when the
// commit tail it needs is compacted.
type Snapshot struct {
	Seq      uint64       `json:"seq"`
	Graph    *gpm.Graph   `json:"graph"`
	Patterns []PatternDef `json:"patterns"`
}

// Snapshot fetches a consistent full-state export of the server.
func (c *Client) Snapshot(ctx context.Context) (Snapshot, error) {
	out := Snapshot{Graph: gpm.NewGraph()}
	err := c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// PatternDef fetches one standing pattern's portable definition.
func (c *Client) PatternDef(ctx context.Context, id string) (PatternDef, error) {
	var out PatternDef
	err := c.do(ctx, http.MethodGet, "/v1/patterns/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Healthz probes liveness; nil means the server is up.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Readyz probes readiness; nil means the registry accepts writes and the
// journal accepts appends (an *APIError with code "not_ready" otherwise).
func (c *Client) Readyz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/readyz", nil, nil)
}
