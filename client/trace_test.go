package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gpm"
	"gpm/internal/obs/trace"
)

// traceCapture is a stub server recording the traceparent header of each
// request and answering POST /v1/updates with a fixed seq.
type traceCapture struct {
	mu      sync.Mutex
	headers []string
}

func (tc *traceCapture) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc.mu.Lock()
		tc.headers = append(tc.headers, r.Header.Get("traceparent"))
		tc.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"seq": 7}) //nolint:errcheck // test stub
	})
}

func (tc *traceCapture) last(t *testing.T) string {
	t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.headers) == 0 {
		t.Fatal("server saw no request")
	}
	return tc.headers[len(tc.headers)-1]
}

// TestApplyInjectsContextTraceparent: a span context in the call context
// rides to the server as the W3C traceparent header, untouched.
func TestApplyInjectsContextTraceparent(t *testing.T) {
	tc := &traceCapture{}
	ts := httptest.NewServer(tc.handler())
	defer ts.Close()
	c := New(ts.URL)

	sc, ok := trace.Parse("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("bad test traceparent")
	}
	ctx := trace.NewContext(context.Background(), sc)
	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if got := tc.last(t); got != sc.Traceparent() {
		t.Fatalf("server saw traceparent %q, want %q", got, sc.Traceparent())
	}
}

// TestApplyOpensRootSpanWhenSampling: with a sampling tracer and an
// untraced context, Apply starts the trace itself — the header reaches
// the server and the client's ring retains the span with the commit seq.
func TestApplyOpensRootSpanWhenSampling(t *testing.T) {
	tc := &traceCapture{}
	ts := httptest.NewServer(tc.handler())
	defer ts.Close()
	tr := trace.New(trace.Config{Mode: trace.ModeAlways})
	c := New(ts.URL, WithTracer(tr))

	seq, err := c.Apply(context.Background(), []gpm.Update{gpm.Insert(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	sent, ok := trace.Parse(tc.last(t))
	if !ok {
		t.Fatalf("server saw no valid traceparent: %q", tc.last(t))
	}
	snap, ok := tr.BySeq(seq)
	if !ok {
		t.Fatalf("client tracer retained nothing for seq %d", seq)
	}
	if snap.TraceID != sent.TraceID.String() {
		t.Fatalf("retained trace %s, sent %s", snap.TraceID, sent.TraceID)
	}
	if len(snap.Spans) == 0 || snap.Spans[0].Name != "client.apply" {
		t.Fatalf("retained spans %v, want a client.apply root", snap.Spans)
	}

	// Default client (tracer off): no header is invented.
	c2 := New(ts.URL)
	if _, err := c2.Apply(context.Background(), []gpm.Update{gpm.Insert(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if got := tc.last(t); got != "" {
		t.Fatalf("untraced client sent traceparent %q", got)
	}
}
