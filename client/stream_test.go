package client

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"gpm"
	"gpm/internal/journal"
	"gpm/internal/serve"
)

// runningServer is one live gpserve instance over a durable journal.
type runningServer struct {
	srv *serve.Server
	hs  *http.Server
	j   *journal.Journal
}

// startServer opens the journal in dir and serves on addr ("" picks a
// port; the chosen address is returned).
func startServer(t *testing.T, dir, addr string) (*runningServer, string) {
	t.Helper()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewWithJournal(j)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// The restart races the OS releasing the old listener; retry briefly.
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed on shutdown
	return &runningServer{srv: srv, hs: hs, j: j}, ln.Addr().String()
}

// stop kills the instance the way gpserve's SIGTERM path does: listener
// first, then the registry, then the journal.
func (rs *runningServer) stop(t *testing.T) {
	t.Helper()
	rs.hs.Close() //nolint:errcheck // dropping connections is the point
	rs.srv.Close()
	if err := rs.j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamResumesAcrossRestart is the SDK's resume acceptance: a
// stream opened before a server restart keeps delivering afterwards with
// no missed and no duplicated deltas — consecutive sequence numbers
// across the kill — and the accumulated state matches the live result.
func TestStreamResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	first, addr := startServer(t, dir, "")
	c := New("http://"+addr, WithBackoff(20*time.Millisecond, 200*time.Millisecond))

	g, p, ids := testWorld()
	boss, am1, am2, c1, c2 := ids[0], ids[1], ids[2], ids[3], ids[4]
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "chain", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stream(ctx, "chain")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	acc := map[gpm.Pair]bool{}
	ev := <-st.C
	if ev.Type != EventSnapshot {
		t.Fatalf("first event %+v", ev)
	}
	accumulate(acc, ev)
	lastSeq := ev.Seq

	// Two commits delivered live.
	preBatches := [][]gpm.Update{
		{gpm.Insert(boss, am2), gpm.Insert(am2, c2)},
		{gpm.Delete(am1, c1)},
	}
	for _, b := range preBatches {
		if _, err := c.Apply(ctx, b); err != nil {
			t.Fatal(err)
		}
		ev := <-st.C
		if ev.Type != EventDelta || ev.Seq != lastSeq+1 {
			t.Fatalf("pre-restart delta %+v after seq %d", ev, lastSeq)
		}
		lastSeq = ev.Seq
		accumulate(acc, ev)
	}

	// Kill the server mid-stream and restart it from the journal on the
	// same address. The stream's connection drops; its auto-reconnect
	// must ride through the refused connections while the server is down.
	first.stop(t)
	second, _ := startServer(t, dir, addr)
	defer second.stop(t)

	// The restarted instance recovered the world.
	info, err := c.GraphInfo(ctx)
	if err != nil || info.Seq != 2 || info.Patterns != 1 {
		t.Fatalf("recovered info %+v err %v", info, err)
	}

	// Post-restart commits flow into the same stream — seq-contiguous
	// with the pre-restart deltas, nothing missed, nothing duplicated,
	// and no snapshot rebase (the journal retained the whole range).
	postBatches := [][]gpm.Update{
		{gpm.Insert(am1, c2)},
		{gpm.Delete(boss, am2)},
		{gpm.Insert(am1, c1)},
	}
	for _, b := range postBatches {
		if _, err := c.Apply(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(postBatches); i++ {
		select {
		case ev := <-st.C:
			if ev.Type != EventDelta {
				t.Fatalf("post-restart event %d is %+v, want delta (journal retained the range)", i, ev)
			}
			if ev.Seq != lastSeq+1 {
				t.Fatalf("seq %d after %d: resume missed or duplicated a delta", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			accumulate(acc, ev)
		case <-time.After(10 * time.Second):
			t.Fatalf("no post-restart delta %d within 10s", i)
		}
	}
	if lastSeq != 5 {
		t.Fatalf("final seq %d, want 5", lastSeq)
	}

	// Snapshot ⊕ all deltas (across the restart) equals the live result.
	res, err := c.Result(ctx, "chain")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != len(acc) {
		t.Fatalf("accumulated %d pairs, live %d", len(acc), len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if !acc[pr] {
			t.Fatalf("pair %+v live but not accumulated", pr)
		}
	}
}

// TestStreamFromSeq: a consumer that already holds the relation at seq n
// resumes without a snapshot and receives exactly (n, head] then live
// deltas.
func TestStreamFromSeq(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	rs, addr := startServer(t, dir, "")
	defer rs.stop(t)
	c := New("http://" + addr)

	g, p, ids := testWorld()
	boss, am1, am2, c2 := ids[0], ids[1], ids[2], ids[4]
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "chain", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	for i, b := range [][]gpm.Update{
		{gpm.Insert(boss, am2)},
		{gpm.Insert(am2, c2)},
		{gpm.Delete(am1, ids[3])},
	} {
		if seq, err := c.Apply(ctx, b); err != nil || seq != uint64(i+1) {
			t.Fatalf("apply %d: seq=%d err=%v", i, seq, err)
		}
	}

	st, err := c.Stream(ctx, "chain", FromSeq(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for want := uint64(2); want <= 3; want++ {
		ev := <-st.C
		if ev.Type != EventDelta || ev.Seq != want {
			t.Fatalf("backfilled event %+v, want delta seq %d", ev, want)
		}
	}
	// Live continuation after the backfill.
	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(am1, c2)}); err != nil {
		t.Fatal(err)
	}
	if ev := <-st.C; ev.Type != EventDelta || ev.Seq != 4 {
		t.Fatalf("live event after backfill: %+v", ev)
	}
}

// TestStreamRebasesAfterCompaction: when the resume point predates what
// the journal retains, the server falls back to a snapshot and the
// client surfaces it as an EventSnapshot rebase instead of erroring.
func TestStreamRebasesAfterCompaction(t *testing.T) {
	ctx := context.Background()
	// A tiny memory ring: only the 2 newest commits stay replayable.
	j := journal.New(journal.WithRing(2))
	srv, err := serve.NewWithJournal(j)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed below
	defer hs.Close()
	defer srv.Close()
	c := New("http://" + ln.Addr().String())

	g, p, ids := testWorld()
	boss, am2 := ids[0], ids[2]
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "chain", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	edges := [][2]gpm.NodeID{{boss, am2}, {am2, ids[4]}, {am2, ids[3]}, {boss, ids[3]}}
	for _, e := range edges {
		if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(e[0], e[1])}); err != nil {
			t.Fatal(err)
		}
	}
	// Resume from seq 1: commits 2..4 exist but the ring only holds 3..4,
	// so the server must fall back to a snapshot at head.
	st, err := c.Stream(ctx, "chain", FromSeq(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ev := <-st.C
	if ev.Type != EventSnapshot || ev.Seq != 4 {
		t.Fatalf("compacted resume delivered %+v, want snapshot at head 4", ev)
	}
}

// TestStreamSurvivesServerDownAtOpen: Stream() against a down server
// enters the retry loop rather than failing, and connects once the
// server comes up — here a restart that recovers the pattern from its
// journal before the stream's next attempt succeeds.
func TestStreamSurvivesServerDownAtOpen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Seed the journal with a world (graph + pattern), then go down.
	first, addr := startServer(t, dir, "")
	c := New("http://"+addr, WithBackoff(20*time.Millisecond, 100*time.Millisecond))
	g, p, _ := testWorld()
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "late", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	first.stop(t)

	// Open the stream while nothing listens: it must not fail, only retry.
	st, err := c.Stream(ctx, "late")
	if err != nil {
		t.Fatalf("Stream against a down server must retry, got %v", err)
	}
	defer st.Close()

	second, _ := startServer(t, dir, addr)
	defer second.stop(t)
	select {
	case ev := <-st.C:
		if ev.Type != EventSnapshot {
			t.Fatalf("first event %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never connected after the server came up")
	}
}
