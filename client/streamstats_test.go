package client

import (
	"context"
	"testing"
	"time"

	"gpm"
)

// TestStreamStats exercises Stream.Stats across the stream's whole
// lifecycle: a healthy connection, a server restart (disconnect + failed
// retries with growing backoff + successful resume), and close.
func TestStreamStats(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	first, addr := startServer(t, dir, "")
	c := New("http://"+addr, WithBackoff(20*time.Millisecond, 200*time.Millisecond))

	g, p, ids := testWorld()
	boss, am2, c2 := ids[0], ids[2], ids[4]
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "chain", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stream(ctx, "chain")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	<-st.C // snapshot

	s := st.Stats()
	if s.Attempts != 1 || s.Connects != 1 || s.Disconnects != 0 || !s.Connected {
		t.Fatalf("after connect: %+v", s)
	}
	if s.EventsDelivered != 1 {
		t.Fatalf("snapshot not counted: %+v", s)
	}

	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(boss, am2)}); err != nil {
		t.Fatal(err)
	}
	ev := <-st.C
	s = st.Stats()
	if s.EventsDelivered != 2 || s.LastSeq != ev.Seq {
		t.Fatalf("after delta: %+v (delta seq %d)", s, ev.Seq)
	}

	// Kill the server: the stream sees a disconnect ("connection dropped"),
	// then failed dials against the dead address while we hold it down.
	// Wait until one failed dial has fully completed — its cause (a dial
	// error, not the drop message) is on record — before restarting, so
	// the failed-attempt assertion below cannot race an in-flight dial
	// that would succeed against the restarted listener.
	first.stop(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s = st.Stats()
		if s.Disconnects >= 1 && !s.Connected &&
			s.Attempts > s.Connects && s.LastDisconnect != "connection dropped" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no completed failed attempt observed: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.LastDisconnect == "" || s.LastDisconnectAt.IsZero() {
		t.Fatalf("disconnect cause not recorded: %+v", s)
	}
	if s.CurrentBackoff < 20*time.Millisecond || s.CurrentBackoff > 200*time.Millisecond {
		t.Fatalf("backoff %v outside configured [20ms, 200ms]", s.CurrentBackoff)
	}

	// Restart on the same address: the stream reconnects and resumes.
	second, _ := startServer(t, dir, addr)
	defer second.stop(t)
	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(am2, c2)}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev = <-st.C:
	case <-time.After(10 * time.Second):
		t.Fatal("no post-restart delta")
	}
	s = st.Stats()
	if !s.Connected || s.Connects < 2 {
		t.Fatalf("resume not reflected: %+v", s)
	}
	if s.Attempts <= s.Connects {
		t.Fatalf("failed attempts against the dead server not counted: %+v", s)
	}
	if s.LastSeq != ev.Seq || s.EventsDelivered != 3 {
		t.Fatalf("post-resume delivery: %+v (seq %d)", s, ev.Seq)
	}

	// Stats stay readable after Close.
	st.Close()
	if got := st.Stats(); got.EventsDelivered != 3 {
		t.Fatalf("stats after close: %+v", got)
	}
}

// TestStreamStatsTerminal checks a terminal server answer is recorded as
// the last disconnect cause.
func TestStreamStatsTerminal(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	rs, addr := startServer(t, dir, "")
	defer rs.stop(t)
	c := New("http://"+addr, WithBackoff(10*time.Millisecond, 50*time.Millisecond))

	g, p, _ := testWorld()
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "chain", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stream(ctx, "chain")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	<-st.C

	// Unregistering ends the stream server-side; the reconnect attempt
	// gets a terminal 404 and the stream dies with it on record.
	if err := c.Unregister(ctx, "chain"); err != nil {
		t.Fatal(err)
	}
	for range st.C {
	}
	s := st.Stats()
	if st.Err() == nil {
		t.Fatal("terminal stream has nil Err")
	}
	if s.LastDisconnect == "" {
		t.Fatalf("terminal cause not recorded: %+v", s)
	}
}
