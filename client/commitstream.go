package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"gpm"
)

// CommitEventType discriminates commit-stream events.
type CommitEventType string

const (
	// EventHead is the stream's opening frame: Seq names the sequence the
	// stream starts after (no updates ride on it).
	EventHead CommitEventType = "head"
	// EventCommit carries one committed net update batch ΔG. Every commit
	// produces a frame — empty batches included — so Seq advances by
	// exactly one per event.
	EventCommit CommitEventType = "commit"
)

// CommitStreamEvent is one typed commit-stream event. Trace is the
// commit span's W3C traceparent and At its publish timestamp (both zero
// for head frames, unsampled commits, and backfilled events) — a
// follower passes Trace to ApplyReplicatedTrace so the leader's trace
// continues across the topology.
type CommitStreamEvent struct {
	Type    CommitEventType
	Seq     uint64
	Updates []gpm.Update // commit only
	Trace   string
	At      time.Time
}

// CommitStream is a live raw-ΔG subscription to GET /v1/commits/stream —
// the feed a follower replica applies. Events arrive on C in commit order
// with consecutive sequence numbers. Like Stream, it survives disconnects
// and server restarts by reconnecting with exponential backoff and
// resuming via Last-Event-ID, deduplicating any overlap.
//
// C closes when the stream ends: context canceled, Close called, or a
// terminal server answer. Err reports the cause; an error wrapping
// ErrCompacted means the server's journal no longer retains the range
// after our cursor — re-bootstrap from Snapshot, there is no rebase on
// this endpoint.
type CommitStream struct {
	C <-chan CommitStreamEvent

	cancel context.CancelFunc
	done   chan struct{}

	st *Stream // stats/err carrier shared with the Stream machinery
}

// Stats returns a snapshot of the stream's reconnect/delivery counters.
func (s *CommitStream) Stats() StreamStats { return s.st.Stats() }

// Err returns the terminal error after C closed (nil for a clean close
// or cancellation).
func (s *CommitStream) Err() error { return s.st.Err() }

// Close tears the stream down: the connection drops, the goroutine exits
// and C closes. Safe to call more than once.
func (s *CommitStream) Close() {
	s.cancel()
	<-s.done
}

// CommitStream opens a raw-ΔG subscription. With FromSeq(n) the commits
// in (n, head] are backfilled first; without it the stream starts at the
// current head. The first connection is established synchronously, so an
// immediately-terminal condition (compacted resume point, future seq)
// fails here — check errors.Is(err, ErrCompacted) to distinguish the
// re-bootstrap case.
func (c *Client) CommitStream(ctx context.Context, options ...StreamOption) (*CommitStream, error) {
	var o streamOpts
	for _, opt := range options {
		opt(&o)
	}
	sctx, cancel := context.WithCancel(ctx)
	st := &Stream{cancel: cancel, done: make(chan struct{})}
	cs := &CommitStream{cancel: cancel, done: st.done, st: st}
	ch := make(chan CommitStreamEvent)
	cs.C = ch

	cc := &commitConn{
		c:       c,
		st:      st,
		lastSeq: o.fromSeq,
		haveSeq: o.hasFrom,
	}
	st.stats.CurrentBackoff = c.backoffMin
	resp, err := cc.connect(sctx)
	if err != nil && cc.retryable(err) {
		resp = nil // down server: ride through it in the retry loop
	} else if err != nil {
		cancel()
		close(st.done)
		return nil, terminalErr(err)
	}
	go cc.run(sctx, ch, resp)
	return cs, nil
}

// commitConn is the reconnect state machine behind one CommitStream.
type commitConn struct {
	c        *Client
	st       *Stream
	lastSeq  uint64 // newest delivered (or resumed-from) sequence
	haveSeq  bool   // lastSeq is meaningful: resume instead of tailing head
	headSeen bool   // the opening head frame was delivered to the consumer
}

// retryable mirrors streamConn.retryable: transport failures and
// transient server states reconnect; typed conditions — compacted above
// all — are terminal, because reconnecting would hit the same answer.
func (cc *commitConn) retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Code == CodeClosed || apiErr.Status >= 500
	}
	return true
}

// connect opens one SSE request, resuming via Last-Event-ID when a
// sequence is held.
func (cc *commitConn) connect(ctx context.Context) (*http.Response, error) {
	cc.st.recordAttempt()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cc.c.base+"/v1/commits/stream", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if cc.haveSeq {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", cc.lastSeq))
	}
	resp, err := cc.c.hc.Do(req)
	if err != nil {
		cc.st.recordDisconnect(false, err.Error())
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		err := apiError(resp)
		cc.st.recordDisconnect(false, err.Error())
		return nil, err
	}
	cc.st.recordConnect()
	return resp, nil
}

// run is the delivery loop: read frames, deliver deduplicated events,
// reconnect with exponential backoff on drops, stop on ctx or terminal
// errors.
func (cc *commitConn) run(ctx context.Context, ch chan<- CommitStreamEvent, resp *http.Response) {
	defer close(cc.st.done)
	defer close(ch)
	backoff := cc.c.backoffMin
	for {
		if resp == nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			var err error
			resp, err = cc.connect(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				if !cc.retryable(err) {
					cc.st.setErr(terminalErr(err))
					return
				}
				resp = nil
				if backoff *= 2; backoff > cc.c.backoffMax {
					backoff = cc.c.backoffMax
				}
				cc.st.recordBackoff(backoff)
				continue
			}
		}
		delivered, err := cc.consume(ctx, ch, resp)
		resp.Body.Close()
		resp = nil
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			cc.st.recordDisconnect(true, err.Error())
			cc.st.setErr(err)
			return
		}
		cc.st.recordDisconnect(true, "connection dropped")
		if delivered {
			backoff = cc.c.backoffMin
		} else if backoff *= 2; backoff > cc.c.backoffMax {
			backoff = cc.c.backoffMax
		}
		cc.st.recordBackoff(backoff)
	}
}

// commitFrame mirrors the server's SSE data documents — head frames carry
// only seq.
type commitFrame struct {
	Seq     uint64       `json:"seq"`
	Updates []gpm.Update `json:"updates"`
	Trace   string       `json:"trace"`
	At      int64        `json:"at"` // publish time, UnixNano; 0 when absent
}

// consume reads SSE frames off one connection until it drops, delivering
// typed events. A nil error is a plain connection drop.
func (cc *commitConn) consume(ctx context.Context, ch chan<- CommitStreamEvent, resp *http.Response) (delivered bool, err error) {
	stop := context.AfterFunc(ctx, func() { resp.Body.Close() })
	defer stop()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" {
				continue
			}
			ev, ok, perr := cc.parse(event, data)
			event, data = "", ""
			if perr != nil {
				return delivered, perr
			}
			if !ok {
				continue
			}
			cc.st.recordEvent(ev.Seq)
			ds := cc.c.deliverSpan(ev.Trace, ev.At, "stream", "commits")
			select {
			case ch <- ev:
				ds.End()
				delivered = true
			case <-ctx.Done():
				return delivered, nil
			}
		}
	}
	if err := sc.Err(); err != nil && errors.Is(err, bufio.ErrTooLong) {
		return delivered, fmt.Errorf("client: SSE frame exceeds the stream buffer: %w", err)
	}
	return delivered, nil
}

// parse turns one SSE frame into a CommitStreamEvent, updating the resume
// cursor. The opening head frame is delivered once; the ones later
// reconnects produce are cursor echoes and are dropped, like replayed
// commit overlap.
func (cc *commitConn) parse(event, data string) (ev CommitStreamEvent, ok bool, err error) {
	switch CommitEventType(event) {
	case EventHead:
		var f commitFrame
		if err := json.Unmarshal([]byte(data), &f); err != nil {
			return ev, false, fmt.Errorf("client: bad head frame: %w", err)
		}
		if !cc.haveSeq {
			cc.lastSeq, cc.haveSeq = f.Seq, true
		}
		if cc.headSeen {
			return ev, false, nil
		}
		cc.headSeen = true
		return CommitStreamEvent{Type: EventHead, Seq: f.Seq}, true, nil
	case EventCommit:
		var f commitFrame
		if err := json.Unmarshal([]byte(data), &f); err != nil {
			return ev, false, fmt.Errorf("client: bad commit frame: %w", err)
		}
		if cc.haveSeq && f.Seq <= cc.lastSeq {
			return ev, false, nil // replayed overlap: drop
		}
		cc.lastSeq, cc.haveSeq = f.Seq, true
		ev = CommitStreamEvent{Type: EventCommit, Seq: f.Seq, Updates: f.Updates, Trace: f.Trace}
		if f.At != 0 {
			ev.At = time.Unix(0, f.At)
		}
		return ev, true, nil
	default:
		return ev, false, nil // unknown event types are ignored (forward compat)
	}
}
