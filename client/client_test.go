package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpm"
	"gpm/internal/serve"
)

// testWorld builds a small social graph and a matching chain pattern.
func testWorld() (*gpm.Graph, *gpm.Pattern, []gpm.NodeID) {
	g := gpm.NewGraph()
	add := func(label string) gpm.NodeID {
		return g.AddNode(gpm.NewTuple("label", `"`+label+`"`))
	}
	boss := add("B")
	am1, am2 := add("AM"), add("AM")
	c1, c2 := add("C"), add("C")
	g.AddEdge(boss, am1)
	g.AddEdge(am1, c1)

	p := gpm.NewPattern()
	p.AddNode(gpm.Label("B"))
	p.AddNode(gpm.Label("AM"))
	p.AddNode(gpm.Label("C"))
	p.AddEdge(0, 1, 1) //nolint:errcheck // fresh nodes
	p.AddEdge(1, 2, 1) //nolint:errcheck // fresh nodes
	return g, p, []gpm.NodeID{boss, am1, am2, c1, c2}
}

// accumulate applies a delta event to a running pair-set.
func accumulate(acc map[gpm.Pair]bool, ev MatchEvent) {
	switch ev.Type {
	case EventSnapshot:
		for k := range acc {
			delete(acc, k)
		}
		for _, p := range ev.Pairs {
			acc[p] = true
		}
	case EventDelta:
		for _, p := range ev.Removed {
			delete(acc, p)
		}
		for _, p := range ev.Added {
			acc[p] = true
		}
	}
}

// TestClientEndToEnd drives every SDK method against a live server:
// graph load/info, register/list/result, typed apply, commits tail,
// stats, health, stream, unregister — and the typed error mapping.
func TestClientEndToEnd(t *testing.T) {
	srv := serve.New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	ctx := context.Background()

	g, p, ids := testWorld()
	boss, am1, am2, c1, c2 := ids[0], ids[1], ids[2], ids[3], ids[4]

	// Health first: both probes green on a fresh server.
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Readyz(ctx); err != nil {
		t.Fatal(err)
	}

	// LoadGraph + GraphInfo.
	info, err := c.LoadGraph(ctx, g)
	if err != nil || info.Nodes != 5 || info.Edges != 2 {
		t.Fatalf("LoadGraph: %+v err %v", info, err)
	}
	info, err = c.GraphInfo(ctx)
	if err != nil || info.Nodes != 5 || info.Seq != 0 {
		t.Fatalf("GraphInfo: %+v err %v", info, err)
	}

	// Register + typed error mapping for the failure paths.
	pi, err := c.Register(ctx, "chain", p, gpm.KindAuto)
	if err != nil || pi.Nodes != 3 || pi.Edges != 2 {
		t.Fatalf("Register: %+v err %v", pi, err)
	}
	if pi.Kind != gpm.KindSim {
		t.Fatalf("Register resolved kind %q, want %q (auto over a normal pattern)", pi.Kind, gpm.KindSim)
	}
	var apiErr *APIError
	if _, err = c.Register(ctx, "chain", p, gpm.KindSim); !errors.As(err, &apiErr) ||
		apiErr.Code != CodeAlreadyRegistered || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate register: %v", err)
	}
	if _, err = c.Register(ctx, "bogus", p, gpm.EngineKind("nope")); !errors.As(err, &apiErr) ||
		apiErr.Code != CodeInvalidKind {
		t.Fatalf("bad kind: %v", err)
	}
	if _, err = c.Result(ctx, "missing"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("missing result: %v", err)
	}

	pats, err := c.Patterns(ctx)
	if err != nil || len(pats) != 1 || pats[0].ID != "chain" {
		t.Fatalf("Patterns: %+v err %v", pats, err)
	}

	// Stream from scratch: snapshot, then one delta per commit.
	st, err := c.Stream(ctx, "chain")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	acc := map[gpm.Pair]bool{}
	ev := <-st.C
	if ev.Type != EventSnapshot || ev.Seq != 0 {
		t.Fatalf("first event: %+v", ev)
	}
	accumulate(acc, ev)

	// Typed applies: join a second chain, break the first.
	batches := [][]gpm.Update{
		{gpm.Insert(boss, am2), gpm.Insert(am2, c2)},
		{gpm.Delete(am1, c1)},
	}
	var lastSeq uint64
	for i, b := range batches {
		seq, err := c.Apply(ctx, b)
		if err != nil || seq != uint64(i+1) {
			t.Fatalf("Apply %d: seq=%d err=%v", i, seq, err)
		}
		lastSeq = seq
		ev := <-st.C
		if ev.Type != EventDelta || ev.Seq != seq {
			t.Fatalf("delta %d: %+v", i, ev)
		}
		accumulate(acc, ev)
	}

	// Snapshot ⊕ deltas equals the live result.
	res, err := c.Result(ctx, "chain")
	if err != nil || res.Seq != lastSeq {
		t.Fatalf("Result: %+v err %v", res, err)
	}
	if len(res.Pairs) != len(acc) {
		t.Fatalf("accumulated %d pairs, live %d", len(acc), len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if !acc[pr] {
			t.Fatalf("pair %+v live but not accumulated", pr)
		}
	}

	// Commits: the raw ΔG tail round trips through the typed codec.
	tail, err := c.Commits(ctx, 0)
	if err != nil || tail.Head != lastSeq || len(tail.Commits) != 2 {
		t.Fatalf("Commits: %+v err %v", tail, err)
	}
	if got := tail.Commits[0].Updates; len(got) != 2 || got[0] != gpm.Insert(boss, am2) {
		t.Fatalf("commit 1 updates: %+v", got)
	}
	if _, err = c.Commits(ctx, lastSeq+10); !errors.As(err, &apiErr) || apiErr.Code != CodeSeqFuture {
		t.Fatalf("future commits: %v", err)
	}

	// Stats reflect the session.
	stats, err := c.Stats(ctx)
	if err != nil || stats.Seq != lastSeq || stats.Patterns != 1 {
		t.Fatalf("Stats: %+v err %v", stats, err)
	}
	if stats.Journal == nil || stats.Journal.HeadSeq != lastSeq {
		t.Fatalf("Stats journal: %+v", stats.Journal)
	}
	if stats.Network == nil || stats.Network.Patterns != 1 || stats.Network.JoinNodes != 1 {
		t.Fatalf("Stats network: %+v", stats.Network)
	}

	// Unregister closes the stream.
	if err := c.Unregister(ctx, "chain"); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-st.C:
		if ok {
			t.Fatal("stream event after unregister")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after unregister")
	}
	if err := c.Unregister(ctx, "chain"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("double unregister: %v", err)
	}
}

// TestClientContextCancellation: every unary method returns promptly when
// its context dies mid-request, even against a server that never answers.
func TestClientContextCancellation(t *testing.T) {
	release := make(chan struct{})
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hold every request until the client gives up. The release
		// channel lets Server.Close reclaim handlers whose disconnect the
		// server never notices (unread POST bodies suppress the
		// background connection watcher).
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer stuck.Close()
	defer close(release)
	c := New(stuck.URL, WithHTTPClient(stuck.Client()))

	g, p, _ := testWorld()
	calls := map[string]func(ctx context.Context) error{
		"LoadGraph":  func(ctx context.Context) error { _, err := c.LoadGraph(ctx, g); return err },
		"GraphInfo":  func(ctx context.Context) error { _, err := c.GraphInfo(ctx); return err },
		"Register":   func(ctx context.Context) error { _, err := c.Register(ctx, "x", p, gpm.KindAuto); return err },
		"Unregister": func(ctx context.Context) error { return c.Unregister(ctx, "x") },
		"Patterns":   func(ctx context.Context) error { _, err := c.Patterns(ctx); return err },
		"Result":     func(ctx context.Context) error { _, err := c.Result(ctx, "x"); return err },
		"Apply":      func(ctx context.Context) error { _, err := c.Apply(ctx, nil); return err },
		"Commits":    func(ctx context.Context) error { _, err := c.Commits(ctx, 0); return err },
		"Stats":      func(ctx context.Context) error { _, err := c.Stats(ctx); return err },
		"Healthz":    c.Healthz,
		"Readyz":     c.Readyz,
	}
	for name, call := range calls {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := call(ctx)
			if err == nil {
				t.Fatal("call succeeded against a hung server")
			}
			if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
				t.Fatalf("error %v is not the context's", err)
			}
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Fatalf("took %v to honor cancellation", elapsed)
			}
		})
	}

	// Stream cancellation: a stream over a live server ends promptly too.
	srv := serve.New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	live := New(ts.URL, WithHTTPClient(ts.Client()))
	ctx := context.Background()
	if _, err := live.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Register(ctx, "q", p, gpm.KindAuto); err != nil {
		t.Fatal(err)
	}
	sctx, scancel := context.WithCancel(ctx)
	st, err := live.Stream(sctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	<-st.C // snapshot
	scancel()
	select {
	case _, ok := <-st.C:
		if ok {
			t.Fatal("event after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after context cancellation")
	}
	if st.Err() != nil {
		t.Fatalf("cancellation is not an error: %v", st.Err())
	}
}

// TestStreamTerminalOnUnknownPattern: a stream for a pattern that does
// not exist fails at Stream() with the typed 404 — no silent retry loop.
func TestStreamTerminalOnUnknownPattern(t *testing.T) {
	srv := serve.New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	var apiErr *APIError
	if _, err := c.Stream(context.Background(), "ghost"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("stream of unknown pattern: %v", err)
	}
}
