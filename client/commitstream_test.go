package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"gpm"
	"gpm/internal/journal"
	"gpm/internal/serve"
)

// commitWorld spins up a server with a loaded graph, returning the client
// and the node ids of testWorld.
func commitWorld(t *testing.T, srv *serve.Server) (*Client, []gpm.NodeID) {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := New(ts.URL, WithHTTPClient(ts.Client()), WithBackoff(10*time.Millisecond, 100*time.Millisecond))
	g, _, ids := testWorld()
	if _, err := c.LoadGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	return c, ids
}

// nextCommitEvent reads one event off the stream with a deadline.
func nextCommitEvent(t *testing.T, st *CommitStream) CommitStreamEvent {
	t.Helper()
	select {
	case ev, ok := <-st.C:
		if !ok {
			t.Fatalf("commit stream closed early: %v", st.Err())
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a commit event")
	}
	panic("unreachable")
}

// TestSnapshotAndPatternDef: the snapshot export round-trips the graph
// and pattern definitions through the typed client.
func TestSnapshotAndPatternDef(t *testing.T) {
	c, ids := commitWorld(t, serve.New())
	ctx := context.Background()
	_, p, _ := testWorld()
	if _, err := c.Register(ctx, "chain", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(ids[0], ids[2])}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 {
		t.Fatalf("snapshot seq = %d, want 1", snap.Seq)
	}
	if snap.Graph.NumNodes() != 5 || snap.Graph.NumEdges() != 3 {
		t.Fatalf("snapshot graph = %d nodes %d edges, want 5/3", snap.Graph.NumNodes(), snap.Graph.NumEdges())
	}
	if len(snap.Patterns) != 1 || snap.Patterns[0].ID != "chain" || snap.Patterns[0].Def == "" {
		t.Fatalf("snapshot patterns = %+v", snap.Patterns)
	}

	pd, err := c.PatternDef(ctx, "chain")
	if err != nil || pd.Kind != "sim" || pd.Def != snap.Patterns[0].Def {
		t.Fatalf("PatternDef: %+v err %v", pd, err)
	}
	var apiErr *APIError
	if _, err := c.PatternDef(ctx, "missing"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("missing PatternDef: %v", err)
	}
}

// TestCommitStreamDelivery: head frame first, then every commit in order
// — including batches that cancelled to nothing — with FromSeq backfill.
func TestCommitStreamDelivery(t *testing.T) {
	c, ids := commitWorld(t, serve.New())
	ctx := context.Background()
	boss, am2 := ids[0], ids[2]

	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(boss, am2)}); err != nil {
		t.Fatal(err)
	}
	st, err := c.CommitStream(ctx, FromSeq(0))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if ev := nextCommitEvent(t, st); ev.Type != EventHead || ev.Seq != 0 {
		t.Fatalf("first event = %+v, want head at 0", ev)
	}
	if ev := nextCommitEvent(t, st); ev.Type != EventCommit || ev.Seq != 1 || len(ev.Updates) != 1 {
		t.Fatalf("backfilled commit = %+v, want seq 1 with 1 update", ev)
	}
	// A self-cancelling batch still advances the stream.
	if _, err := c.Apply(ctx, []gpm.Update{gpm.Delete(boss, am2), gpm.Insert(boss, am2)}); err != nil {
		t.Fatal(err)
	}
	if ev := nextCommitEvent(t, st); ev.Type != EventCommit || ev.Seq != 2 || len(ev.Updates) != 0 {
		t.Fatalf("empty commit = %+v, want seq 2 with 0 updates", ev)
	}
}

// TestCommitStreamCompactedTerminal is the satellite regression: a resume
// point the journal no longer retains must end the stream with a typed
// error wrapping ErrCompacted — the re-bootstrap signal — not a silent
// channel close or an endless reconnect loop.
func TestCommitStreamCompactedTerminal(t *testing.T) {
	srv, err := serve.NewWithJournal(journal.New(journal.WithRing(1)))
	if err != nil {
		t.Fatal(err)
	}
	c, ids := commitWorld(t, srv)
	ctx := context.Background()
	boss, am2 := ids[0], ids[2]
	for i := 0; i < 4; i++ {
		if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(boss, am2)}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Apply(ctx, []gpm.Update{gpm.Delete(boss, am2)}); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous connect: the compacted answer surfaces typed right here.
	if _, err := c.CommitStream(ctx, FromSeq(1)); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted CommitStream connect: %v, want ErrCompacted", err)
	}
	var apiErr *APIError
	if _, err := c.CommitStream(ctx, FromSeq(1)); !errors.As(err, &apiErr) || apiErr.Code != CodeCompacted {
		t.Fatalf("compacted CommitStream must keep the APIError in the chain: %v", err)
	}
}

// TestCommitStreamResume: a stream that loses its connection reconnects
// and resumes seq-contiguously with no duplicates.
func TestCommitStreamResume(t *testing.T) {
	srv := serve.New()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := New(ts.URL, WithBackoff(10*time.Millisecond, 50*time.Millisecond))
	ctx := context.Background()
	g, _, ids := testWorld()
	if _, err := c.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	boss, am2 := ids[0], ids[2]

	st, err := c.CommitStream(ctx, FromSeq(0))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if ev := nextCommitEvent(t, st); ev.Type != EventHead {
		t.Fatalf("first event = %+v, want head", ev)
	}
	if _, err := c.Apply(ctx, []gpm.Update{gpm.Insert(boss, am2)}); err != nil {
		t.Fatal(err)
	}
	if ev := nextCommitEvent(t, st); ev.Seq != 1 {
		t.Fatalf("commit = %+v, want seq 1", ev)
	}

	// Sever every open connection; the server itself stays up. The first
	// Apply may ride a just-severed keep-alive connection — retry it.
	ts.CloseClientConnections()
	for i := 0; ; i++ {
		if _, err := c.Apply(ctx, []gpm.Update{gpm.Delete(boss, am2)}); err == nil {
			break
		} else if i == 5 {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ev := nextCommitEvent(t, st); ev.Type != EventCommit || ev.Seq != 2 {
		t.Fatalf("post-reconnect commit = %+v, want seq 2 (no duplicates, no gaps)", ev)
	}
	if st.Stats().Connects < 2 {
		t.Fatalf("stats show %d connects, want a reconnect", st.Stats().Connects)
	}
}

// TestStreamCompactedTerminal is the match-delta side of the satellite
// fix: when the resume fallback path itself cannot rebase (the registry is
// gone mid-resume), Stream must end typed rather than silently. The
// common compacted case rebases via a snapshot frame, so here we assert
// the wrapper on the synchronous path using the commit-stream's server
// answer as the canonical 410 shape.
func TestStreamCompactedTerminal(t *testing.T) {
	err := terminalErr(&APIError{Status: 410, Code: CodeCompacted, Message: "gone"})
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("terminalErr must wrap compacted envelopes: %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 410 {
		t.Fatalf("terminalErr must keep the APIError: %v", err)
	}
	if other := terminalErr(&APIError{Status: 404, Code: CodeNotFound}); errors.Is(other, ErrCompacted) {
		t.Fatalf("non-compacted errors must pass through unwrapped: %v", other)
	}
}
