// Race-detector coverage for the concurrency guarantees of the incremental
// engines: Result() and the other read accessors may be called from any
// number of goroutines while a writer applies updates. Run with
// `go test -race` (the CI default) to make the guarantees meaningful.
package gpm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"gpm"
	"gpm/internal/generator"
	"gpm/internal/graph"
)

// spawnReaders starts nReaders goroutines hammering the engine's read
// surface until stop flips, and returns a join function.
func spawnReaders(nReaders int, stop *atomic.Bool, read func()) func() {
	var wg sync.WaitGroup
	wg.Add(nReaders)
	for r := 0; r < nReaders; r++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				read()
			}
		}()
	}
	return wg.Wait
}

func TestIncSimEngineConcurrentReaders(t *testing.T) {
	g := generator.Synthetic(80, 320, generator.DefaultSchema(3), 1)
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, 1)
	eng, err := gpm.NewIncSimEngine(p, g)
	if err != nil {
		t.Fatal(err)
	}
	ups := generator.Updates(g, 60, 60, 7)

	var stop atomic.Bool
	join := spawnReaders(4, &stop, func() {
		r := eng.Result()
		_ = r.Size()
		_ = eng.IsMatch(0, 0)
		_ = eng.IsCandidate(1, 1)
		_ = eng.Stats()
	})

	for i, up := range ups {
		switch {
		case i%10 == 9:
			eng.Batch(ups[i : i+1])
		case up.Op == graph.InsertEdge:
			eng.Insert(up.From, up.To)
		default:
			eng.Delete(up.From, up.To)
		}
	}
	stop.Store(true)
	join()
}

func TestIncBSimEngineConcurrentReaders(t *testing.T) {
	g := generator.Synthetic(80, 320, generator.DefaultSchema(3), 2)
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, 2)
	eng, err := gpm.NewIncBSimEngine(p, g)
	if err != nil {
		t.Fatal(err)
	}
	ups := generator.Updates(g, 60, 60, 8)

	var stop atomic.Bool
	join := spawnReaders(4, &stop, func() {
		r := eng.Result()
		_ = r.Size()
		_ = eng.IsMatch(0, 0)
		_ = eng.IsCandidate(1, 1)
		_ = eng.Stats()
		_ = eng.ResultGraph()
	})

	for i, up := range ups {
		switch {
		case i%10 == 9:
			eng.Batch(ups[i : i+1])
		case up.Op == graph.InsertEdge:
			eng.Insert(up.From, up.To)
		default:
			eng.Delete(up.From, up.To)
		}
	}
	stop.Store(true)
	join()
}

// TestIncBSimEngineConcurrentReadersWithLandmarks exercises the same
// read/write interleaving when distance queries go through a maintained
// landmark index.
func TestIncBSimEngineConcurrentReadersWithLandmarks(t *testing.T) {
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), 3)
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, 3)
	eng, err := gpm.NewIncBSimEngineWithLandmarks(p, g)
	if err != nil {
		t.Fatal(err)
	}
	ups := generator.Updates(g, 40, 40, 9)

	var stop atomic.Bool
	join := spawnReaders(3, &stop, func() {
		_ = eng.Result().Size()
		_ = eng.Stats()
	})

	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			eng.Insert(up.From, up.To)
		} else {
			eng.Delete(up.From, up.To)
		}
	}
	stop.Store(true)
	join()
}
