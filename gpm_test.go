package gpm_test

import (
	"testing"

	"gpm"
)

// buildExample constructs the doc-comment example: a boss overseeing an
// assistant manager.
func buildExample() (*gpm.Pattern, *gpm.Graph, gpm.NodeID, gpm.NodeID) {
	g := gpm.NewGraph()
	boss := g.AddNode(gpm.NewTuple("label", `"B"`))
	am := g.AddNode(gpm.NewTuple("label", `"AM"`))
	g.AddEdge(boss, am)

	p := gpm.NewPattern()
	b := p.AddNode(gpm.Label("B"))
	a := p.AddNode(gpm.Label("AM"))
	p.AddEdge(b, a, 1)
	return p, g, boss, am
}

func TestFacadeMatch(t *testing.T) {
	p, g, boss, am := buildExample()
	r := gpm.Match(p, g)
	if !r.Has(0, boss) || !r.Has(1, am) {
		t.Fatalf("match = %v", r)
	}
	if !gpm.MatchSimulation(p, g).Equal(r) {
		t.Fatal("simulation should agree on a normal pattern")
	}
}

func TestFacadeOracles(t *testing.T) {
	p, g, _, _ := buildExample()
	want := gpm.Match(p, g)
	for name, o := range map[string]gpm.DistanceOracle{
		"matrix":    gpm.NewDistanceMatrix(g),
		"twohop":    gpm.NewTwoHop(g),
		"landmarks": gpm.NewLandmarkIndex(g),
	} {
		if got := gpm.MatchWithOracle(p, g, o); !got.Equal(want) {
			t.Fatalf("%s oracle: %v != %v", name, got, want)
		}
	}
}

func TestFacadeIncrementalEngines(t *testing.T) {
	p, g, boss, am := buildExample()
	eng, err := gpm.NewIncSimEngine(p, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Result().Empty() {
		t.Fatal("initial incremental match empty")
	}
	eng.Delete(boss, am)
	if !eng.Result().Empty() {
		t.Fatal("match should collapse after deleting the only edge")
	}

	beng, err := gpm.NewIncBSimEngineWithLandmarks(p, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if beng.Result().Empty() {
		t.Fatal("initial bounded incremental match empty")
	}
}

func TestFacadeIsomorphism(t *testing.T) {
	p, g, _, _ := buildExample()
	ems := gpm.EnumerateIsomorphic(p, g, 0)
	if len(ems) != 1 {
		t.Fatalf("embeddings = %d, want 1", len(ems))
	}
	eng := gpm.NewIncIsoEngine(p, g)
	if eng.Count() != 1 {
		t.Fatalf("incremental count = %d, want 1", eng.Count())
	}
}

func TestFacadeResultGraphs(t *testing.T) {
	p, g, boss, am := buildExample()
	r := gpm.Match(p, g)
	rg := gpm.BoundedResultGraph(p, g, r)
	if !rg.HasEdge(boss, am) {
		t.Fatal("result graph missing projected edge")
	}
	rg2 := gpm.SimulationResultGraph(p, g, r)
	if !rg2.HasEdge(boss, am) {
		t.Fatal("simulation result graph missing edge")
	}
}

func TestFacadeUpdates(t *testing.T) {
	up := gpm.Insert(1, 2)
	if up.Inverse() != gpm.Delete(1, 2) {
		t.Fatal("Inverse broken")
	}
}
