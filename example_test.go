package gpm_test

import (
	"fmt"

	"gpm"
)

// Example reproduces the paper's Fig. 4 walkthrough in miniature: match a
// b-pattern, apply an edge insertion incrementally, and observe ΔM.
func Example() {
	g := gpm.NewGraph()
	ann := g.AddNode(gpm.NewTuple("label", `"CTO"`))
	pat := g.AddNode(gpm.NewTuple("label", `"DB"`))
	bill := g.AddNode(gpm.NewTuple("label", `"Bio"`))
	don := g.AddNode(gpm.NewTuple("label", `"CTO"`))
	g.AddEdge(ann, pat)
	g.AddEdge(pat, bill)
	g.AddEdge(pat, ann)

	p := gpm.NewPattern()
	cto := p.AddNode(gpm.Label("CTO"))
	db := p.AddNode(gpm.Label("DB"))
	bio := p.AddNode(gpm.Label("Bio"))
	p.AddEdge(cto, db, 2)
	p.AddEdge(db, bio, 1)
	p.AddEdge(db, cto, gpm.Unbounded)
	_ = bio

	eng, err := gpm.NewIncBSimEngine(p, g)
	if err != nil {
		panic(err)
	}
	fmt.Println("Don matches CTO:", eng.IsMatch(cto, don))

	before := eng.Result()
	eng.Insert(don, pat) // Don gains a DB researcher within 2 hops
	_, added := before.Diff(eng.Result())
	fmt.Println("new pairs:", len(added))
	fmt.Println("Don matches CTO:", eng.IsMatch(cto, don))
	// Output:
	// Don matches CTO: false
	// new pairs: 1
	// Don matches CTO: true
}
