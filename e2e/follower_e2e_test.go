//go:build e2e

// Package e2e runs gpserve as real processes — a journaled leader and
// read-only followers — and proves follower mode under chaos: bootstrap,
// live tailing, leader kill, leader restart from its journal, follower
// catch-up. Build-tagged so `go test ./...` stays hermetic; CI runs it as
// its own lane with `go test -tags e2e -race ./e2e/`.
//
// Set E2E_LOG_DIR to keep the per-process JSON logs (CI uploads them as
// an artifact on failure); set GPSERVE_BIN to skip the in-test build.
package e2e

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/generator"
)

var gpserveBin string

func TestMain(m *testing.M) {
	gpserveBin = os.Getenv("GPSERVE_BIN")
	if gpserveBin == "" {
		tmp, err := os.MkdirTemp("", "gpserve-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		gpserveBin = filepath.Join(tmp, "gpserve")
		build := exec.Command("go", "build", "-race", "-o", gpserveBin, "gpm/cmd/gpserve")
		build.Stdout, build.Stderr = os.Stderr, os.Stderr
		if err := build.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "building gpserve:", err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// logDir is where process logs land: E2E_LOG_DIR when set (the CI
// artifact path), a test temp dir otherwise.
func logDir(t *testing.T) string {
	if dir := os.Getenv("E2E_LOG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// freePort grabs an ephemeral port. The tiny close-to-bind window is an
// accepted e2e tradeoff.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// proc is one running gpserve process with its log capture.
type proc struct {
	name string
	url  string
	port int
	cmd  *exec.Cmd
	log  *os.File
}

// startServer launches gpserve on port with JSON logs appended to
// <logdir>/<name>.log (append mode so a restarted leader extends the same
// file).
func startServer(t *testing.T, dir, name string, port int, args ...string) *proc {
	t.Helper()
	lf, err := os.OpenFile(filepath.Join(dir, name+".log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	full := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-log-format", "json",
	}, args...)
	cmd := exec.Command(gpserveBin, full...)
	cmd.Stdout, cmd.Stderr = lf, lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		t.Fatalf("starting %s: %v", name, err)
	}
	p := &proc{name: name, url: fmt.Sprintf("http://127.0.0.1:%d", port), port: port, cmd: cmd, log: lf}
	t.Cleanup(func() { p.kill() })
	return p
}

// kill hard-stops the process (idempotent) and reaps it.
func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //nolint:errcheck // may already be dead
		p.cmd.Wait()         //nolint:errcheck // exit status is irrelevant
	}
	p.log.Close()
}

// readyStatus polls /v1/readyz once: the HTTP status, or 0 while the
// process is not accepting connections at all.
func readyStatus(url string) int {
	resp, err := http.Get(url + "/v1/readyz")
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	return resp.StatusCode
}

// waitReady polls /v1/readyz until it answers want, failing after 30s.
func waitReady(t *testing.T, p *proc, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if readyStatus(p.url) == want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s: readyz never reached %d (last: %d)", p.name, want, readyStatus(p.url))
}

// waitSeq polls the follower until its commit head reaches seq.
func waitSeq(t *testing.T, c *client.Client, name string, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if info, err := c.GraphInfo(context.Background()); err == nil && info.Seq >= seq {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s: never reached seq %d", name, seq)
}

// contiguity tails one follower's raw commit stream for the whole chaos
// run and records any sequence gap or duplicate.
type contiguity struct {
	st         *client.CommitStream
	violations chan string
	commits    chan uint64 // newest commit seq seen, capacity 1
}

func tailContiguity(t *testing.T, c *client.Client) *contiguity {
	t.Helper()
	st, err := c.CommitStream(context.Background(), client.FromSeq(0))
	if err != nil {
		t.Fatalf("opening follower commit stream: %v", err)
	}
	ct := &contiguity{st: st, violations: make(chan string, 16), commits: make(chan uint64, 1)}
	go func() {
		var last uint64
		for ev := range st.C {
			switch ev.Type {
			case client.EventHead:
				last = ev.Seq
			case client.EventCommit:
				if ev.Seq != last+1 {
					select {
					case ct.violations <- fmt.Sprintf("commit %d after %d", ev.Seq, last):
					default:
					}
				}
				last = ev.Seq
				select {
				case <-ct.commits:
				default:
				}
				ct.commits <- last
			}
		}
	}()
	return ct
}

// check closes the stream and fails the test on any recorded violation.
func (ct *contiguity) check(t *testing.T, wantHead uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var newest uint64
	for newest < wantHead && time.Now().Before(deadline) {
		select {
		case newest = <-ct.commits:
		case <-time.After(100 * time.Millisecond):
		}
	}
	ct.st.Close()
	select {
	case v := <-ct.violations:
		t.Fatalf("follower commit stream broke contiguity: %s", v)
	default:
	}
	if newest < wantHead {
		t.Fatalf("follower commit stream delivered up to %d, want %d", newest, wantHead)
	}
}

// storm applies n generated single-update batches and returns the new head.
func storm(t *testing.T, lc *client.Client, nIns, nDel int, seed int64) uint64 {
	t.Helper()
	ctx := context.Background()
	snap, err := lc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	head := snap.Seq
	for _, u := range generator.Updates(snap.Graph, nIns, nDel, seed) {
		seq, err := lc.Apply(ctx, []gpm.Update{u})
		if err != nil {
			t.Fatalf("storm apply: %v", err)
		}
		head = seq
	}
	return head
}

// assertReadsServed proves the follower answers reads right now: graph
// info and every pattern result return without error.
func assertReadsServed(t *testing.T, c *client.Client, name string, ids []string) {
	t.Helper()
	ctx := context.Background()
	if _, err := c.GraphInfo(ctx); err != nil {
		t.Fatalf("%s: graph read failed: %v", name, err)
	}
	for _, id := range ids {
		if _, err := c.Result(ctx, id); err != nil {
			t.Fatalf("%s: result %q failed: %v", name, id, err)
		}
	}
}

// statsState fetches the follower block's state off /v1/stats (raw, so
// the assertion also covers the wire shape).
func statsState(t *testing.T, p *proc) string {
	t.Helper()
	resp, err := http.Get(p.url + "/v1/stats")
	if err != nil {
		t.Fatalf("%s: stats: %v", p.name, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, state := range []string{"following", "disconnected", "bootstrapping"} {
		if strings.Contains(string(body), `"state":"`+state+`"`) {
			return state
		}
	}
	return ""
}

// TestFollowerChaos is the acceptance lane: journaled leader + two
// follower processes; register patterns, apply updates, kill the leader,
// restart it from its journal — asserting follower readyz flips
// 503→200→503→200 across bootstrap and outage, reads are answered
// throughout, the follower's own commit stream stays seq-contiguous, and
// both followers converge to the leader's exact results.
func TestFollowerChaos(t *testing.T) {
	dir := logDir(t)
	t.Logf("process logs: %s", dir)
	jdir := t.TempDir()
	seed := int64(61)

	// A follower pointed at a dead address listens immediately but must
	// gate readiness: 503 while bootstrapping, deterministically.
	deadPort := freePort(t)
	stuck := startServer(t, dir, "follower-stuck", freePort(t),
		"-follow", fmt.Sprintf("http://127.0.0.1:%d", deadPort))
	deadline := time.Now().Add(30 * time.Second)
	for readyStatus(stuck.url) != 503 {
		if time.Now().After(deadline) {
			t.Fatalf("bootstrapping follower readyz = %d, want 503", readyStatus(stuck.url))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := statsState(t, stuck); got != "bootstrapping" {
		t.Fatalf("stuck follower state = %q, want bootstrapping", got)
	}
	stuck.kill()

	// The real topology: journaled leader, two followers.
	leaderPort := freePort(t)
	leader := startServer(t, dir, "leader", leaderPort, "-journal", jdir)
	waitReady(t, leader, 200)
	lc := client.New(leader.url)
	ctx := context.Background()

	g := generator.Synthetic(60, 200, generator.DefaultSchema(3), seed)
	if _, err := lc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]gpm.EngineKind{"p-sim": gpm.KindSim, "p-bsim": gpm.KindBSim, "p-iso": gpm.KindIso}
	ids := make([]string, 0, len(kinds))
	for id, k := range kinds {
		nodes, edges, kb := 3, 3, 1
		if k == gpm.KindBSim {
			kb = 2
		}
		if k == gpm.KindIso {
			edges = 2
		}
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: nodes, Edges: edges, Preds: 1, K: kb}, seed)
		if _, err := lc.Register(ctx, id, p, k); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
		ids = append(ids, id)
	}

	f1 := startServer(t, dir, "follower1", freePort(t),
		"-follow", leader.url, "-follow-reconcile", "100ms", "-follow-lag-max", "100000")
	f2 := startServer(t, dir, "follower2", freePort(t),
		"-follow", leader.url, "-follow-reconcile", "100ms", "-follow-lag-max", "100000")
	waitReady(t, f1, 200) // 503→200: bootstrap complete
	waitReady(t, f2, 200)
	fc1, fc2 := client.New(f1.url), client.New(f2.url)

	// Tail follower1's own commit stream for the whole run: it must stay
	// seq-contiguous through the leader outage.
	tail := tailContiguity(t, fc1)

	head := storm(t, lc, 15, 10, seed+1)
	waitSeq(t, fc1, "follower1", head)
	waitSeq(t, fc2, "follower2", head)
	assertReadsServed(t, fc1, "follower1", ids)
	assertReadsServed(t, fc2, "follower2", ids)

	// Chaos: kill the leader outright (SIGKILL — no graceful journal close).
	leader.kill()
	waitReady(t, f1, 503) // 200→503: disconnected from the leader
	waitReady(t, f2, 503)
	if got := statsState(t, f1); got != "disconnected" {
		t.Fatalf("follower1 state during outage = %q, want disconnected", got)
	}
	// Reads keep being answered from local state during the outage...
	assertReadsServed(t, fc1, "follower1 (outage)", ids)
	assertReadsServed(t, fc2, "follower2 (outage)", ids)
	// ...and writes are refused with the typed envelope naming the leader.
	var apiErr *client.APIError
	if _, err := fc1.Apply(ctx, []gpm.Update{gpm.Insert(1, 2)}); err == nil {
		t.Fatal("follower accepted a write")
	} else if !errors.As(err, &apiErr) || apiErr.Code != client.CodeReadOnly || apiErr.Leader != leader.url {
		t.Fatalf("follower write during outage: %v, want read_only naming %s", err, leader.url)
	}

	// Recovery: restart the leader from its journal on the same port.
	leader = startServer(t, dir, "leader", leaderPort, "-journal", jdir)
	waitReady(t, leader, 200)
	waitReady(t, f1, 200) // 503→200: reconnected and caught up
	waitReady(t, f2, 200)

	head = storm(t, lc, 12, 8, seed+2)
	waitSeq(t, fc1, "follower1", head)
	waitSeq(t, fc2, "follower2", head)
	tail.check(t, head)

	// Convergence: both followers serve the leader's exact relation for
	// every pattern kind, at the same commit sequence.
	for _, id := range ids {
		lr, err := lc.Result(ctx, id)
		if err != nil {
			t.Fatalf("leader result %q: %v", id, err)
		}
		for name, fc := range map[string]*client.Client{"follower1": fc1, "follower2": fc2} {
			fr, err := fc.Result(ctx, id)
			if err != nil {
				t.Fatalf("%s result %q: %v", name, id, err)
			}
			if fr.Seq != lr.Seq || fr.Size != lr.Size {
				t.Fatalf("%s %q: (seq %d, size %d) diverged from leader (seq %d, size %d)",
					name, id, fr.Seq, fr.Size, lr.Seq, lr.Size)
			}
			if !samePairs(lr.Pairs, fr.Pairs) {
				t.Fatalf("%s %q: relation differs from leader at seq %d", name, id, lr.Seq)
			}
		}
	}
}

// samePairs compares two match relations as sets.
func samePairs(a, b []gpm.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[gpm.Pair]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if !set[p] {
			return false
		}
	}
	return true
}
