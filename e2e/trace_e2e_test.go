//go:build e2e

package e2e

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/generator"
	"gpm/internal/obs/trace"
)

// tracezSpans polls a node's /v1/tracez for traceID until it appears (or
// the deadline passes) and returns the set of span names it holds. Spans
// are recorded when they End, which can trail the commit response by a
// beat (SSE delivery, replica apply), hence the poll.
func tracezSpans(t *testing.T, p *proc, traceID string) map[string]bool {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(p.url + "/v1/tracez?trace=" + traceID)
		if err != nil {
			t.Fatalf("%s: tracez: %v", p.name, err)
		}
		var doc struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err == nil && doc.TraceID == traceID {
			names := make(map[string]bool, len(doc.Spans))
			for _, s := range doc.Spans {
				names[s.Name] = true
			}
			return names
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: trace %s never appeared in tracez (last status %d)", p.name, traceID, resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// requireSpans fails unless every wanted span name is present.
func requireSpans(t *testing.T, node string, names map[string]bool, want ...string) {
	t.Helper()
	for _, n := range want {
		if !names[n] {
			t.Fatalf("%s: trace missing span %q (have %v)", node, n, names)
		}
	}
}

// TestTraceSpansReplicationTopology is the tracing acceptance run: one
// traced client.Apply against a real leader process, and the SAME trace
// ID must link the client root span, the leader's HTTP ingest + commit
// stage + SSE delivery spans, and the follower's replica apply — each
// half retrievable from the respective node's /v1/tracez.
func TestTraceSpansReplicationTopology(t *testing.T) {
	dir := logDir(t)
	seed := int64(71)
	leader := startServer(t, dir, "trace-leader", freePort(t)) // -trace-sample defaults to always
	waitReady(t, leader, http.StatusOK)

	ctr := trace.New(trace.Config{Mode: trace.ModeAlways})
	lc := client.New(leader.url, client.WithTracer(ctr))
	ctx := context.Background()
	g := generator.Synthetic(40, 120, generator.DefaultSchema(3), seed)
	if _, err := lc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
	if _, err := lc.Register(ctx, "p", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}

	follower := startServer(t, dir, "trace-follower", freePort(t),
		"-follow", leader.url, "-follow-reconcile", "100ms", "-follow-lag-max", "100000")
	fc := client.New(follower.url)
	waitReady(t, follower, http.StatusOK)

	// A live subscriber on the leader, through the traced SDK, so the
	// commit produces sse.deliver (server) and client.deliver (client)
	// spans on the same trace.
	st, err := lc.Stream(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if ev := <-st.C; ev.Type != client.EventSnapshot {
		t.Fatalf("first stream event %q, want snapshot", ev.Type)
	}

	seq, err := lc.Apply(ctx, generator.Updates(g, 1, 0, seed+1))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := ctr.BySeq(seq)
	if !ok {
		t.Fatalf("client tracer retained nothing for seq %d", seq)
	}
	want := snap.TraceID

	// The delta frame must carry the commit's traceparent.
	select {
	case ev := <-st.C:
		sc, ok := trace.Parse(ev.Trace)
		if !ok || sc.TraceID.String() != want {
			t.Fatalf("delta trace %q, want traceparent of %s", ev.Trace, want)
		}
		if ev.At.IsZero() {
			t.Fatal("delta carries no publish timestamp")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delta delivered")
	}

	// Leader: ingest, commit pipeline, and SSE delivery on one trace.
	requireSpans(t, "leader", tracezSpans(t, leader, want),
		"http.ingest", "commit", "stage.validate", "stage.journal", "stage.publish", "sse.deliver")

	// Follower: the replicated apply continues the same trace.
	waitSeq(t, fc, "trace-follower", seq)
	requireSpans(t, "follower", tracezSpans(t, follower, want),
		"replica.apply", "stage.publish")

	// Client: root span plus the delivery span closed on receipt.
	deadline := time.Now().Add(5 * time.Second)
	for {
		csnap, ok := ctr.Lookup(want)
		if ok {
			names := make(map[string]bool, len(csnap.Spans))
			for _, s := range csnap.Spans {
				names[s.Name] = true
			}
			if names["client.apply"] && names["client.deliver"] {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("client trace never completed: %+v", csnap)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// metricValue scrapes /v1/metricz and returns the value of the first
// sample whose name matches (with or without labels), and whether it was
// present at all.
func metricValue(t *testing.T, p *proc, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(p.url + "/v1/metricz")
	if err != nil {
		t.Fatalf("%s: metricz: %v", p.name, err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // longer metric sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("%s: parsing %q: %v", p.name, line, err)
		}
		return v, true
	}
	return 0, false
}

// TestFollowerMetricsMove asserts the follower gauges are live on a real
// follower process: connected flips to 1, applied_seq tracks the
// leader's head as commits replicate, and the lag gauge is exported.
func TestFollowerMetricsMove(t *testing.T) {
	dir := logDir(t)
	seed := int64(83)
	leader := startServer(t, dir, "metrics-leader", freePort(t))
	waitReady(t, leader, http.StatusOK)
	lc := client.New(leader.url)
	ctx := context.Background()
	g := generator.Synthetic(40, 120, generator.DefaultSchema(3), seed)
	if _, err := lc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}

	follower := startServer(t, dir, "metrics-follower", freePort(t),
		"-follow", leader.url, "-follow-reconcile", "100ms", "-follow-lag-max", "100000")
	fc := client.New(follower.url)
	waitReady(t, follower, http.StatusOK)

	if v, ok := metricValue(t, follower, "gpm_follower_connected"); !ok || v != 1 {
		t.Fatalf("gpm_follower_connected = %v (present %v), want 1", v, ok)
	}
	if _, ok := metricValue(t, follower, "gpm_follower_replication_lag"); !ok {
		t.Fatal("gpm_follower_replication_lag not exported")
	}
	before, ok := metricValue(t, follower, "gpm_follower_applied_seq")
	if !ok {
		t.Fatal("gpm_follower_applied_seq not exported")
	}

	head := storm(t, lc, 5, 3, seed+1)
	waitSeq(t, fc, "metrics-follower", head)

	deadline := time.Now().Add(10 * time.Second)
	for {
		after, _ := metricValue(t, follower, "gpm_follower_applied_seq")
		if after > before && after == float64(head) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gpm_follower_applied_seq stuck: before %v, now %v, head %d", before, after, head)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The leader, for contrast, exports no follower gauges.
	if _, ok := metricValue(t, leader, "gpm_follower_connected"); ok {
		t.Fatal("leader exports follower gauges")
	}
}
