package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix is the escape hatch: a comment of the form
//
//	//gpmvet:ignore <reason>
//
// suppresses every gpmvet finding on its own line and on the line below
// it (so it works both as a trailing comment and as a directive above
// the offending statement). The reason is mandatory — an ignore without
// one is reported as a finding in its own right — and every suppression
// is counted in the driver's summary, so the escape hatch stays visible
// instead of silently accumulating.
const IgnorePrefix = "gpmvet:ignore"

// ignoreSet maps file → line → reason for every well-formed ignore.
type ignoreSet map[string]map[int]string

func (s ignoreSet) match(file string, line int) (reason string, ok bool) {
	reason, ok = s[file][line]
	return reason, ok
}

// ignoreLines scans the files' comments for ignore directives. It
// returns the suppression set and a diagnostic per reason-less ignore.
func ignoreLines(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				pos := fset.Position(c.Pos())
				if reason == "" {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Message: "gpmvet:ignore needs a reason (//gpmvet:ignore <why this is safe>)"})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = reason
				if _, taken := lines[pos.Line+1]; !taken {
					lines[pos.Line+1] = reason
				}
			}
		}
	}
	return set, bad
}
