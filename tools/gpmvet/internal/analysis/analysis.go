// Package analysis is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis Analyzer/Pass contract, sized for
// gpmvet's needs. The main gpm module is deliberately dependency-free
// and the tools module follows suit: every gpmvet analyzer works on
// syntax alone (go/ast + go/token), so no type-checker, export data, or
// external module is required. The API mirrors go/analysis closely
// enough that an analyzer written here ports to the real framework by
// changing one import.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position inside Pass.Fset and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named check. Flags are registered by the driver under
// the "<name>." prefix (e.g. -lockcheck.allow) and may also be set
// directly in tests.
type Analyzer struct {
	Name  string
	Doc   string
	Flags flag.FlagSet
	Run   func(*Pass) error
}

// Package identifies the package under analysis. ImportPath is what
// path-scoped analyzers (stdlibonly, envelopecheck, ctxflow) match
// their package lists against; Module is the containing module path, so
// module-internal imports can be told apart from the standard library.
type Package struct {
	Name       string
	ImportPath string
	Module     string
	Dir        string
}

// Pass carries one package's syntax through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic resolved against the file set, ready to
// print, serialize, or match against test expectations.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"` // file:line:col
	File     string `json:"-"`
	Line     int    `json:"-"`
	Message  string `json:"message"`
	// Suppressed carries the //gpmvet:ignore reason when the finding was
	// silenced by the escape hatch ("" for live findings).
	Suppressed string `json:"suppressed_reason,omitempty"`
}

// ParseDir parses every non-test .go file in dir (with comments — the
// ignore hatch and the stdlib-only marker live in comments).
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return ParseFiles(fset, dir, names)
}

// ParseFiles parses the named files (relative to dir when not absolute).
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, n := range names {
		path := n
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, n)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Run applies the analyzers to one parsed package and resolves their
// raw diagnostics into findings, splitting off those suppressed by a
// //gpmvet:ignore comment. An ignore comment with no reason is itself a
// finding: silent suppressions are how invariants rot.
func Run(fset *token.FileSet, pkg Package, files []*ast.File, analyzers []*Analyzer) (live, suppressed []Finding, err error) {
	ignores, bad := ignoreLines(fset, files)
	for _, d := range bad {
		live = append(live, resolve(fset, "gpmvet", d, ""))
	}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range pass.diags {
			pos := fset.Position(d.Pos)
			if reason, ok := ignores.match(pos.Filename, pos.Line); ok {
				suppressed = append(suppressed, resolve(fset, a.Name, d, reason))
			} else {
				live = append(live, resolve(fset, a.Name, d, ""))
			}
		}
	}
	sortFindings(live)
	sortFindings(suppressed)
	return live, suppressed, nil
}

func resolve(fset *token.FileSet, analyzer string, d Diagnostic, reason string) Finding {
	pos := fset.Position(d.Pos)
	return Finding{
		Analyzer:   analyzer,
		Pos:        pos.String(),
		File:       pos.Filename,
		Line:       pos.Line,
		Message:    d.Message,
		Suppressed: reason,
	}
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}
