// Package lockcheck enforces the repo's ...Locked naming convention:
// a function whose name ends in "Locked" documents that its caller must
// hold the mutex guarding the receiver's state. The analyzer flags any
// call to a *Locked function from a caller that (a) is not itself
// *Locked, (b) has not lexically acquired a mutex rooted at the same
// receiver before the call (and still holds it — a non-deferred Unlock
// clears the held state), and (c) is not on the allowlist of
// commit-path internals that run under a lock taken by their caller
// (contq.commitEffective and friends, configured via -lockcheck.allow
// or the repo's .gpmvet.json).
//
// The check is lexical, not interprocedural: a closure that captures a
// *Locked call and escapes the critical section will not be caught.
// That is the accepted precision/complexity trade for a zero-dependency
// analyzer; the convention plus -race carries the rest.
package lockcheck

import (
	"go/ast"
	"strings"

	"gpmvet/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "calls to *Locked functions must come from holders of the corresponding mutex",
	Run:  run,
}

func init() {
	Analyzer.Flags.String("allow", "",
		"comma-separated pkg.func names allowed to call *Locked functions without a visible lock (they run under a lock taken by their caller)")
}

func allowed(pass *analysis.Pass, fn string) bool {
	raw := pass.Analyzer.Flags.Lookup("allow").Value.String()
	if raw == "" {
		return false
	}
	for _, entry := range strings.Split(raw, ",") {
		entry = strings.TrimSpace(entry)
		if entry == fn || entry == pass.Pkg.Name+"."+fn {
			return true
		}
	}
	return false
}

// lockEvent is one mutex acquisition or release, in source order.
type lockEvent struct {
	pos     int    // byte offset, for lexical ordering
	path    string // rendered selector path of the mutex, e.g. "r.writeMu"
	acquire bool
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || allowed(pass, fd.Name.Name) {
				continue // the caller's own contract covers its callees
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	type lockedCall struct {
		call *ast.CallExpr
		name string
		base string // receiver base identifier ("" for a direct call)
	}
	var calls []lockedCall

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			// A deferred Unlock releases at return, after every call in
			// the body — it neither acquires nor clears held state here.
			// A deferred *Locked call is still a *Locked call, judged at
			// the defer site.
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && strings.HasSuffix(sel.Sel.Name, "Locked") {
				calls = append(calls, lockedCall{call: d.Call, name: sel.Sel.Name, base: baseIdent(sel.X)})
			} else if id, ok := d.Call.Fun.(*ast.Ident); ok && strings.HasSuffix(id.Name, "Locked") {
				calls = append(calls, lockedCall{call: d.Call, name: id.Name, base: ""})
			}
			walk(d.Call.Fun, true)
			for _, a := range d.Call.Args {
				walk(a, true)
			}
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if p := path(sel.X); p != "" && !inDefer {
						events = append(events, lockEvent{pos: int(call.Pos()), path: p, acquire: true})
					}
				case "Unlock", "RUnlock":
					if p := path(sel.X); p != "" && !inDefer {
						events = append(events, lockEvent{pos: int(call.Pos()), path: p, acquire: false})
					}
				}
				if strings.HasSuffix(sel.Sel.Name, "Locked") {
					calls = append(calls, lockedCall{call: call, name: sel.Sel.Name, base: baseIdent(sel.X)})
				}
			} else if id, ok := call.Fun.(*ast.Ident); ok && strings.HasSuffix(id.Name, "Locked") {
				calls = append(calls, lockedCall{call: call, name: id.Name, base: ""})
			}
		}
		for _, c := range children(n) {
			walk(c, inDefer)
		}
	}
	walk(fd.Body, false)

	for _, lc := range calls {
		if allowed(pass, lc.name) {
			continue
		}
		if holdsAt(events, int(lc.call.Pos()), lc.base) {
			continue
		}
		who := lc.base
		if who == "" {
			who = "the receiver"
		}
		pass.Reportf(lc.call.Pos(),
			"call to %s without holding %s's mutex: Lock/RLock before the call, give the caller a ...Locked suffix, or allowlist it (lockcheck.allow)",
			lc.name, who)
	}
}

// holdsAt reports whether, lexically before pos, some mutex rooted at
// base was acquired and not since released. The naming convention does
// not say which mutex guards which method, so any mutex under the same
// receiver qualifies; base "" (a direct call) accepts any held mutex.
func holdsAt(events []lockEvent, pos int, base string) bool {
	held := map[string]bool{}
	for _, ev := range events {
		if ev.pos >= pos {
			break
		}
		held[ev.path] = ev.acquire
	}
	for p, h := range held {
		if !h {
			continue
		}
		if base == "" || baseOf(p) == base {
			return true
		}
	}
	return false
}

// path renders a selector chain like r.writeMu ("" when it is not a
// plain ident/selector chain).
func path(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if p := path(e.X); p != "" {
			return p + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return path(e.X)
	}
	return ""
}

func baseIdent(e ast.Expr) string {
	p := path(e)
	if p == "" {
		return ""
	}
	return baseOf(p)
}

func baseOf(p string) string {
	if i := strings.Index(p, "."); i >= 0 {
		return p[:i]
	}
	return p
}

// children returns a node's direct AST children (ast.Inspect without
// the callback plumbing, so walk can thread the defer flag).
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
