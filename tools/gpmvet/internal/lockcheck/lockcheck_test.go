package lockcheck_test

import (
	"strings"
	"testing"

	"gpmvet/internal/analysistest"
	"gpmvet/internal/lockcheck"
)

// TestLockcheck runs the main fixture with the allowlist configured
// the way .gpmvet.json configures it for the real tree: commitInner
// stands in for contq.commitEffective.
func TestLockcheck(t *testing.T) {
	if err := lockcheck.Analyzer.Flags.Set("allow", "a.commitInner"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := lockcheck.Analyzer.Flags.Set("allow", ""); err != nil {
			t.Fatal(err)
		}
	}()

	_, suppressed := analysistest.Run(t, "testdata", lockcheck.Analyzer, "a")

	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %d findings, want exactly the BumpIgnored escape hatch: %+v", len(suppressed), suppressed)
	}
	if got := suppressed[0].Suppressed; !strings.Contains(got, "held transitively") {
		t.Errorf("suppression reason = %q, want the fixture's ignore reason", got)
	}
}

// TestNoAllowlist proves the allowlist is load-bearing: with none
// configured, the same commitInner shape is a violation.
func TestNoAllowlist(t *testing.T) {
	live, suppressed := analysistest.Run(t, "testdata", lockcheck.Analyzer, "b")
	if len(live) != 1 {
		t.Fatalf("live = %d findings, want 1: %+v", len(live), live)
	}
	if len(suppressed) != 0 {
		t.Fatalf("suppressed = %+v, want none", suppressed)
	}
}
