package a

import "sync"

type R struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (r *R) bumpLocked() { r.n++ }

func (r *R) snapshotLocked() int { return r.n }

// Held via Lock + deferred Unlock: the canonical shape.
func (r *R) Bump() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpLocked()
}

// Held via RLock: read locks satisfy the convention too.
func (r *R) Snapshot() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.snapshotLocked()
}

// A *Locked caller may call further *Locked functions freely.
func (r *R) doubleLocked() {
	r.bumpLocked()
	r.bumpLocked()
}

// Inline Lock/Unlock around the call is fine.
func (r *R) BumpInline() {
	r.mu.Lock()
	r.bumpLocked()
	r.mu.Unlock()
}

// No lock anywhere in sight.
func (r *R) BumpUnsafe() {
	r.bumpLocked() // want "call to bumpLocked without holding r's mutex"
}

// The lock was already released when the call runs.
func (r *R) BumpAfterUnlock() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	r.bumpLocked() // want "call to bumpLocked without holding r's mutex"
}

// A deferred *Locked call with no lock held is still judged.
func (r *R) BumpDeferred() {
	defer r.bumpLocked() // want "call to bumpLocked without holding r's mutex"
}

// commitInner mirrors contq.commitEffective: it runs under a lock its
// caller takes, and is allowlisted by the test via -lockcheck.allow.
func (r *R) commitInner() {
	r.bumpLocked()
	r.snapshotLocked()
}

// Calls covered by the escape hatch are suppressed and counted.
func (r *R) BumpIgnored() {
	r.bumpLocked() //gpmvet:ignore held transitively via Drain's writeMu
}

// A different receiver's lock does not cover this receiver.
func (r *R) BumpOther(other *R) {
	other.mu.Lock()
	defer other.mu.Unlock()
	r.bumpLocked() // want "call to bumpLocked without holding r's mutex"
}
