package b

import "sync"

type R struct {
	mu sync.Mutex
	n  int
}

func (r *R) bumpLocked() { r.n++ }

// commitInner is only safe when the allowlist says so; this package is
// analyzed with no allowlist, so the call is a violation.
func (r *R) commitInner() {
	r.bumpLocked() // want "call to bumpLocked without holding r's mutex"
}
