// Package envelopecheck keeps {code,message,seq?,trace_id} the only
// error shape on the v1 wire. Inside the HTTP layer every failure must
// flow through classify()/writeError so clients can switch on stable
// codes; one http.Error call or hand-rolled 4xx/5xx WriteHeader ships a
// second, envelope-less error dialect. In the guarded packages
// (-envelopecheck.packages, default internal/serve) the analyzer
// forbids:
//
//   - http.Error and http.NotFound calls (plain-text error bodies)
//   - WriteHeader with a literal or http.Status* constant >= 400
//
// WriteHeader with a computed status stays legal — that is exactly how
// the central envelope writer works — and the writer functions named in
// -envelopecheck.writers are exempt wholesale.
package envelopecheck

import (
	"go/ast"
	"strconv"
	"strings"

	"gpmvet/internal/analysis"
)

// Analyzer is the envelopecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "envelopecheck",
	Doc:  "error responses in the HTTP layer must go through the classify()/writeError envelope",
	Run:  run,
}

func init() {
	Analyzer.Flags.String("packages", "internal/serve",
		"comma-separated import paths (exact or path-suffix match) where the error-envelope contract is enforced")
	Analyzer.Flags.String("writers", "writeJSON,writeError",
		"comma-separated function names exempt from the check (the envelope writers themselves)")
}

// errorStatus maps the net/http 4xx/5xx constant names to their codes.
var errorStatus = map[string]bool{
	"StatusBadRequest": true, "StatusUnauthorized": true, "StatusPaymentRequired": true,
	"StatusForbidden": true, "StatusNotFound": true, "StatusMethodNotAllowed": true,
	"StatusNotAcceptable": true, "StatusProxyAuthRequired": true, "StatusRequestTimeout": true,
	"StatusConflict": true, "StatusGone": true, "StatusLengthRequired": true,
	"StatusPreconditionFailed": true, "StatusRequestEntityTooLarge": true,
	"StatusRequestURITooLong": true, "StatusUnsupportedMediaType": true,
	"StatusRequestedRangeNotSatisfiable": true, "StatusExpectationFailed": true,
	"StatusTeapot": true, "StatusMisdirectedRequest": true, "StatusUnprocessableEntity": true,
	"StatusLocked": true, "StatusFailedDependency": true, "StatusTooEarly": true,
	"StatusUpgradeRequired": true, "StatusPreconditionRequired": true,
	"StatusTooManyRequests": true, "StatusRequestHeaderFieldsTooLarge": true,
	"StatusUnavailableForLegalReasons": true, "StatusInternalServerError": true,
	"StatusNotImplemented": true, "StatusBadGateway": true, "StatusServiceUnavailable": true,
	"StatusGatewayTimeout": true, "StatusHTTPVersionNotSupported": true,
	"StatusVariantAlsoNegotiates": true, "StatusInsufficientStorage": true,
	"StatusLoopDetected": true, "StatusNotExtended": true,
	"StatusNetworkAuthenticationRequired": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	writers := map[string]bool{}
	for _, w := range strings.Split(pass.Analyzer.Flags.Lookup("writers").Value.String(), ",") {
		if w = strings.TrimSpace(w); w != "" {
			writers[w] = true
		}
	}
	for _, f := range pass.Files {
		httpName := importName(f, "net/http", "http")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || writers[fd.Name.Name] {
				continue
			}
			checkFunc(pass, fd, httpName)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, httpName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == httpName {
			switch sel.Sel.Name {
			case "Error", "NotFound":
				pass.Reportf(call.Pos(),
					"direct %s.%s writes an envelope-less error body: route the failure through classify()/writeError so {code,message} stays the only error shape on the wire",
					httpName, sel.Sel.Name)
			}
			return true
		}
		if sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
			if status, name, ok := literalStatus(call.Args[0], httpName); ok && status >= 400 {
				pass.Reportf(call.Pos(),
					"WriteHeader(%s) hand-rolls an error response: route the failure through classify()/writeError so {code,message} stays the only error shape on the wire",
					name)
			}
		}
		return true
	})
}

// literalStatus resolves an int literal or http.StatusXxx selector.
func literalStatus(e ast.Expr, httpName string) (status int, name string, ok bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		n, err := strconv.Atoi(e.Value)
		if err != nil {
			return 0, "", false
		}
		return n, e.Value, true
	case *ast.SelectorExpr:
		if id, k := e.X.(*ast.Ident); k && id.Name == httpName {
			if errorStatus[e.Sel.Name] {
				return 400, httpName + "." + e.Sel.Name, true // exact code irrelevant: all entries are >= 400
			}
			return 200, httpName + "." + e.Sel.Name, true
		}
	}
	return 0, "", false
}

func inScope(pass *analysis.Pass) bool {
	for _, p := range strings.Split(pass.Analyzer.Flags.Lookup("packages").Value.String(), ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if pass.Pkg.ImportPath == p || strings.HasSuffix(pass.Pkg.ImportPath, "/"+p) {
			return true
		}
	}
	return false
}

// importName returns the local name of the import with the given path
// (def when imported without rename, "" when absent).
func importName(f *ast.File, path, def string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return def
	}
	return ""
}
