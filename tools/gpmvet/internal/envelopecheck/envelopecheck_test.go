package envelopecheck_test

import (
	"strings"
	"testing"

	"gpmvet/internal/analysistest"
	"gpmvet/internal/envelopecheck"
)

func TestServePackage(t *testing.T) {
	_, suppressed := analysistest.Run(t, "testdata", envelopecheck.Analyzer, "gpm/internal/serve")
	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %d findings, want exactly the health-probe escape hatch: %+v", len(suppressed), suppressed)
	}
	if got := suppressed[0].Suppressed; !strings.Contains(got, "health probe") {
		t.Errorf("suppression reason = %q, want the fixture's ignore reason", got)
	}
}

func TestOutsideScope(t *testing.T) {
	live, _ := analysistest.Run(t, "testdata", envelopecheck.Analyzer, "other")
	if len(live) != 0 {
		t.Fatalf("live = %+v, want none outside internal/serve", live)
	}
}
