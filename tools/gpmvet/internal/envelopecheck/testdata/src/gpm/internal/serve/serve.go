package serve

import (
	"errors"
	"net/http"
)

// handler collects the shapes the analyzer must and must not flag.
func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)  // want `direct http\.Error writes an envelope-less error body`
	http.NotFound(w, r)                           // want `direct http\.NotFound writes an envelope-less error body`
	w.WriteHeader(404)                            // want `WriteHeader\(404\) hand-rolls an error response`
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader\(http\.StatusInternalServerError\) hand-rolls an error response`

	w.WriteHeader(http.StatusOK)        // success statuses are fine
	w.WriteHeader(204)                  // so are literal 2xx
	w.WriteHeader(http.StatusNoContent) // and named 2xx

	writeError(w, r, http.StatusBadRequest, "invalid_graph", errors.New("x")) // the envelope path
}

// ignored shows the escape hatch for a deliberate raw write.
func ignored(w http.ResponseWriter) {
	w.WriteHeader(http.StatusServiceUnavailable) //gpmvet:ignore pre-envelope health probe contract
}

// writeJSON and writeError are the exempt envelope writers: computed
// statuses and the terminal WriteHeader live here by design.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = v
}

func writeError(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"code": code, "message": err.Error()})
}
