// Package other is outside the guarded HTTP layer: examples and tests
// may write whatever status lines they like.
package other

import "net/http"

func raw(w http.ResponseWriter) {
	http.Error(w, "fine here", http.StatusTeapot)
	w.WriteHeader(500)
}
