// Package nilspan guards the tracer's unsampled fast path: a nil *Span
// is the "tracing off" value, and every exported method on Span is
// documented to be a safe no-op on it. That only holds if each method
// that touches a receiver field opens with a nil-receiver guard — one
// missing guard turns every untraced commit into a panic. The analyzer
// requires exported pointer-receiver methods on the configured types
// (default: Span) that access receiver fields to begin with
//
//	if s == nil { ... return ... }
//
// (compound guards like `if s == nil || s.rec == nil` count). Methods
// that only delegate to other methods need no guard — the callee's
// guard is the contract.
package nilspan

import (
	"go/ast"
	"go/token"
	"strings"

	"gpmvet/internal/analysis"
)

// Analyzer is the nilspan pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilspan",
	Doc:  "exported methods on *Span must nil-guard the receiver before touching fields",
	Run:  run,
}

func init() {
	Analyzer.Flags.String("types", "Span",
		"comma-separated type names whose exported pointer-receiver methods must open with a nil-receiver guard")
}

func run(pass *analysis.Pass) error {
	types := map[string]bool{}
	for _, t := range strings.Split(pass.Analyzer.Flags.Lookup("types").Value.String(), ",") {
		if t = strings.TrimSpace(t); t != "" {
			types[t] = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			tname, recv := recvInfo(fd.Recv.List[0])
			if !types[tname] || recv == "" {
				continue
			}
			if !touchesFields(fd.Body, recv) {
				continue // pure delegation rides on the callees' guards
			}
			if startsWithNilGuard(fd.Body, recv) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported method (*%s).%s touches receiver fields without an opening nil-receiver guard (nil is the unsampled fast path: `if %s == nil { return ... }` must come first)",
				tname, fd.Name.Name, recv)
		}
	}
	return nil
}

// recvInfo extracts the pointer receiver's type and variable names
// ("", "" for value receivers or unnamed ones).
func recvInfo(field *ast.Field) (typeName, varName string) {
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", ""
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		typeName = t.Name
	case *ast.IndexExpr: // generic receiver *Span[T]
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	if len(field.Names) == 1 {
		varName = field.Names[0].Name
	}
	return typeName, varName
}

// touchesFields reports whether the body selects a field on recv — a
// selector recv.x that is not immediately invoked as a method.
func touchesFields(body *ast.BlockStmt, recv string) bool {
	found := false
	methodFuns := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				methodFuns[sel] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || methodFuns[sel] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			found = true
		}
		return true
	})
	return found
}

// startsWithNilGuard reports whether the body's first statement is an
// if whose condition checks recv == nil (alone or in an || chain) and
// whose branch returns.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifst, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifst.Init != nil {
		return false
	}
	if !condChecksNil(ifst.Cond, recv) {
		return false
	}
	return branchReturns(ifst.Body)
}

// condChecksNil looks for `recv == nil` among ||-joined operands.
func condChecksNil(cond ast.Expr, recv string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(e.X, recv)
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condChecksNil(e.X, recv) || condChecksNil(e.Y, recv)
		}
		if e.Op == token.EQL {
			return isIdent(e.X, recv) && isNil(e.Y) || isNil(e.X) && isIdent(e.Y, recv)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool { return isIdent(e, "nil") }

// branchReturns requires the guard branch to leave the method: a
// return anywhere in the branch (the usual shapes are a bare return or
// a zero-value return).
func branchReturns(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
