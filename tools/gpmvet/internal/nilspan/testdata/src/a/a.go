package a

type rec struct{ n int }

type Span struct {
	rec *rec
	n   int
}

// Guarded field access: the canonical shape.
func (s *Span) SetN(n int) {
	if s == nil {
		return
	}
	s.n = n
}

// Compound guard counts.
func (s *Span) Bump() int {
	if s == nil || s.rec == nil {
		return 0
	}
	s.rec.n++
	return s.rec.n
}

// Pure delegation needs no guard: the callee's guard is the contract.
func (s *Span) BumpTwice() {
	s.Bump()
	s.Bump()
}

// Field access with no guard at all.
func (s *Span) Leak() int { // want `exported method \(\*Span\)\.Leak touches receiver fields without an opening nil-receiver guard`
	return s.n
}

// The guard must be the first statement, not buried later.
func (s *Span) LateGuard() int { // want "opening nil-receiver guard"
	x := s.n
	if s == nil {
		return 0
	}
	return x
}

// A guard that does not return does not protect the dereference.
func (s *Span) NoReturnGuard() int { // want "opening nil-receiver guard"
	if s == nil {
		_ = 0
	}
	return s.n
}

// Unexported methods are internal helpers; callers guarantee non-nil.
func (s *Span) leak() int { return s.n }

// The escape hatch suppresses (and counts) a deliberate exception.
func (s *Span) Unsafe() int { //gpmvet:ignore benchmark-only accessor, never reached unsampled
	return s.n
}

// Other types are out of scope.
type NotSpan struct{ n int }

func (s *NotSpan) Leak() int { return s.n }
