package nilspan_test

import (
	"testing"

	"gpmvet/internal/analysistest"
	"gpmvet/internal/nilspan"
)

func TestNilspan(t *testing.T) {
	_, suppressed := analysistest.Run(t, "testdata", nilspan.Analyzer, "a")
	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %d findings, want exactly the Unsafe escape hatch: %+v", len(suppressed), suppressed)
	}
}
