// Package ctxflow enforces context discipline on the serving path. In
// the guarded packages (-ctxflow.packages: the registry, HTTP layer,
// SDK and follower by default) it requires:
//
//   - exported functions and methods that take a context.Context take
//     it as the first parameter (the Go API convention the whole repo
//     follows, and what makes ctx threading mechanical to audit);
//   - no context.Background()/context.TODO() calls: these packages sit
//     on request paths, where minting a fresh root context detaches the
//     work from its caller's cancellation and trace. The deliberate
//     exceptions — the non-ctx legacy wrappers Subscribe and
//     SubscribeCommits — carry //gpmvet:ignore with the reason, so every
//     detachment is visible and counted.
//
// The analyzer is syntactic: it cannot prove a received ctx reaches
// every blocking callee. It closes the common leak (a fresh Background
// where a ctx was in scope) and leaves deep propagation to review and
// the cancellation tests.
package ctxflow

import (
	"go/ast"
	"strconv"
	"strings"

	"gpmvet/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "request-path packages: ctx-first exported APIs, no context.Background/TODO",
	Run:  run,
}

func init() {
	Analyzer.Flags.String("packages", "gpm/internal/contq,gpm/internal/follow,gpm/internal/serve,gpm/client",
		"comma-separated import paths (exact or path-suffix match) where context discipline is enforced")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ctxName := importName(f, "context", "context")
		if ctxName == "" {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Name.IsExported() {
				checkCtxFirst(pass, fd, ctxName)
			}
			if fd.Body != nil {
				checkNoFreshRoots(pass, fd, ctxName)
			}
		}
	}
	return nil
}

// checkCtxFirst flags exported signatures whose context.Context
// parameter is not the first.
func checkCtxFirst(pass *analysis.Pass, fd *ast.FuncDecl, ctxName string) {
	params := fd.Type.Params
	if params == nil {
		return
	}
	pos := 0 // parameter index, counting each name in grouped params
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(field.Type, ctxName) && pos != 0 {
			pass.Reportf(field.Pos(),
				"%s takes a %s.Context that is not the first parameter: blocking APIs on the request path are ctx-first",
				fd.Name.Name, ctxName)
		}
		pos += n
	}
}

// checkNoFreshRoots flags context.Background()/context.TODO() calls.
func checkNoFreshRoots(pass *analysis.Pass, fd *ast.FuncDecl, ctxName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName {
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				pass.Reportf(call.Pos(),
					"%s.%s() mints a fresh root context on a request path: propagate the caller's ctx (or gpmvet:ignore with the reason the work is deliberately detached)",
					ctxName, sel.Sel.Name)
			}
		}
		return true
	})
}

func isCtxType(e ast.Expr, ctxName string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == ctxName && sel.Sel.Name == "Context"
}

func inScope(pass *analysis.Pass) bool {
	for _, p := range strings.Split(pass.Analyzer.Flags.Lookup("packages").Value.String(), ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if pass.Pkg.ImportPath == p || strings.HasSuffix(pass.Pkg.ImportPath, "/"+p) {
			return true
		}
	}
	return false
}

func importName(f *ast.File, path, def string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return def
	}
	return ""
}
