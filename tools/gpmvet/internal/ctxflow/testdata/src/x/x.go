// Package x is outside the guarded request-path packages: CLIs and
// examples mint root contexts legitimately.
package x

import "context"

func Main() {
	run(context.Background())
}

func Misordered(n int, ctx context.Context) {}

func run(ctx context.Context) {}
