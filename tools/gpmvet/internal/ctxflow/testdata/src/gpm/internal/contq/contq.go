package contq

import "context"

type Registry struct{}

// Ctx-first exported APIs: the convention.
func (r *Registry) ApplyContext(ctx context.Context, n int) error { return nil }

func Connect(ctx context.Context, addr string) error { return nil }

// Exported with ctx buried after other params.
func (r *Registry) Replay(from uint64, ctx context.Context) error { // want "Replay takes a context.Context that is not the first parameter"
	return nil
}

func Dial(addr string, ctx context.Context) error { // want "Dial takes a context.Context that is not the first parameter"
	return nil
}

// Unexported helpers choose their own order.
func drain(n int, ctx context.Context) {}

// A fresh root context on the request path drops the caller's
// cancellation and trace.
func (r *Registry) Apply(n int) error {
	return r.ApplyContext(context.Background(), n) // want `context\.Background\(\) mints a fresh root context on a request path`
}

func (r *Registry) Todo(n int) error {
	return r.ApplyContext(context.TODO(), n) // want `context\.TODO\(\) mints a fresh root context on a request path`
}

// The legacy non-ctx wrapper keeps its Background under the escape
// hatch, visible and counted.
func (r *Registry) Subscribe(n int) error {
	return r.ApplyContext(context.Background(), n) //gpmvet:ignore legacy non-ctx API: wrapper is the documented detachment point
}
