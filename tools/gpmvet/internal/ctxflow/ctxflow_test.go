package ctxflow_test

import (
	"strings"
	"testing"

	"gpmvet/internal/analysistest"
	"gpmvet/internal/ctxflow"
)

func TestGuardedPackage(t *testing.T) {
	_, suppressed := analysistest.Run(t, "testdata", ctxflow.Analyzer, "gpm/internal/contq")
	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %d findings, want exactly the legacy-wrapper escape hatch: %+v", len(suppressed), suppressed)
	}
	if got := suppressed[0].Suppressed; !strings.Contains(got, "legacy non-ctx API") {
		t.Errorf("suppression reason = %q, want the fixture's ignore reason", got)
	}
}

func TestOutsideScope(t *testing.T) {
	live, _ := analysistest.Run(t, "testdata", ctxflow.Analyzer, "x")
	if len(live) != 0 {
		t.Fatalf("live = %+v, want none outside the request-path packages", live)
	}
}
