// Package analysistest is the fixture harness for gpmvet analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixtures live
// under testdata/src/<pkgpath>, and every line expecting a finding
// carries a trailing comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// The harness fails the test on any unmatched expectation and any
// unexpected finding, so each fixture proves both directions: the
// analyzer fires where it must and stays quiet where it must not.
// Findings silenced by //gpmvet:ignore are returned for the test to
// assert on, since proving the escape hatch works is part of the
// contract.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gpmvet/internal/analysis"
)

// Run analyzes testdata/src/<pkgpath> with a and checks // want
// expectations, returning the live and suppressed findings.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) (live, suppressed []analysis.Finding) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	fset := token.NewFileSet()
	files, err := analysis.ParseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	module := pkgpath
	if i := strings.Index(pkgpath, "/"); i >= 0 {
		module = pkgpath[:i]
	}
	pkg := analysis.Package{
		Name:       files[0].Name.Name,
		ImportPath: pkgpath,
		Module:     module,
		Dir:        dir,
	}
	live, suppressed, err = analysis.Run(fset, pkg, files, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, fset, files, live)
	return live, suppressed
}

type expectation struct {
	pos     string // file:line, for error messages
	re      *regexp.Regexp
	matched bool
}

// check compares live findings against the fixtures' want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, live []analysis.Finding) {
	t.Helper()
	// wants maps file:line to that line's unmatched expectations.
	wants := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range parseWants(t, key, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{pos: key, re: re})
				}
			}
		}
	}
	for _, f := range live {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s]: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no finding matching %q", exp.pos, exp.re)
			}
		}
	}
}

// parseWants splits `"re1" "re2"` into its quoted patterns; both
// double-quoted and backquoted patterns are accepted.
func parseWants(t *testing.T, pos, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q (expected quoted regexp)", pos, s)
		}
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want pattern in %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return pats
}
