// Package stdlibonly pins the telemetry layer to the standard library.
// internal/obs and internal/obs/trace sit on the commit hot path of
// every registry and are imported by nearly every package; they must
// never pull in client_golang, an OTel SDK, or any other external
// weight. This analyzer replaces the CI grep that used to enforce the
// rule with a per-import diagnostic: in a guarded package, every import
// must be standard library (or another package in the guarded set —
// the layer may reference itself, nothing else).
//
// A package is guarded when its import path matches -stdlibonly.packages
// or when any of its files carries a
//
//	//gpmvet:stdlib-only
//
// marker comment, so new dependency-free packages opt in with one line
// instead of a config change.
package stdlibonly

import (
	"go/ast"
	"strconv"
	"strings"

	"gpmvet/internal/analysis"
)

// Analyzer is the stdlibonly pass.
var Analyzer = &analysis.Analyzer{
	Name: "stdlibonly",
	Doc:  "guarded packages (telemetry layer) may import only the standard library",
	Run:  run,
}

// Marker is the opt-in comment that guards the containing package.
const Marker = "gpmvet:stdlib-only"

func init() {
	Analyzer.Flags.String("packages", "gpm/internal/obs,gpm/internal/obs/trace",
		"comma-separated import paths (exact or path-suffix match) of packages restricted to stdlib imports")
}

func run(pass *analysis.Pass) error {
	guarded := guardedSet(pass)
	if !matches(pass.Pkg.ImportPath, guarded) && !hasMarker(pass.Files) {
		return nil
	}
	module := pass.Pkg.Module
	if module == "" {
		module = firstSegment(pass.Pkg.ImportPath)
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case p == module || strings.HasPrefix(p, module+"/"):
				if !matches(p, guarded) {
					pass.Reportf(imp.Pos(),
						"stdlib-only package %s imports module package %s (the telemetry layer may depend only on the standard library and itself)",
						pass.Pkg.ImportPath, p)
				}
			case p == "C" || strings.Contains(firstSegment(p), "."):
				pass.Reportf(imp.Pos(),
					"stdlib-only package %s imports non-stdlib package %s",
					pass.Pkg.ImportPath, p)
			}
		}
	}
	return nil
}

func guardedSet(pass *analysis.Pass) []string {
	var out []string
	for _, p := range strings.Split(pass.Analyzer.Flags.Lookup("packages").Value.String(), ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// matches reports whether path equals an entry or ends with "/"+entry
// (so configs work both with and without the module prefix).
func matches(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasSuffix(path, "/"+e) {
			return true
		}
	}
	return false
}

func hasMarker(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), Marker) {
					return true
				}
			}
		}
	}
	return false
}

func firstSegment(p string) string {
	if i := strings.Index(p, "/"); i >= 0 {
		return p[:i]
	}
	return p
}
