// Package u is neither configured nor marked: it may import anything.
package u

import (
	"github.com/anything/goes"

	"u/sibling"
)

var _ = goes.Fine
var _ = sibling.Fine
