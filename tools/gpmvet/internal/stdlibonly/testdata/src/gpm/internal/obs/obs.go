package obs

import (
	"fmt"

	"github.com/prometheus/client_golang/prometheus" // want "non-stdlib package github.com/prometheus/client_golang/prometheus"

	"gpm/internal/graph" // want "imports module package gpm/internal/graph"

	"gpm/internal/obs/trace"
)

// The telemetry layer may use the stdlib and itself, nothing else.
var _ = fmt.Sprintf
var _ = prometheus.NewRegistry
var _ = graph.New
var _ = trace.Parse
