// Package marked opts into the stdlib-only contract by marker comment
// rather than configuration.
//
//gpmvet:stdlib-only
package marked

import (
	"strings"

	"m/other" // want "imports module package m/other"

	"rsc.io/quote" // want "non-stdlib package rsc.io/quote"
)

var _ = strings.TrimSpace
var _ = other.Thing
var _ = quote.Hello
