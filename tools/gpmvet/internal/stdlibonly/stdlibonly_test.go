package stdlibonly_test

import (
	"testing"

	"gpmvet/internal/analysistest"
	"gpmvet/internal/stdlibonly"
)

// TestConfiguredPackage covers the default -stdlibonly.packages entry:
// the seeded prometheus and gpm/internal/graph imports must fail, the
// stdlib and guarded-set imports must not. This is the analyzer that
// replaced the CI grep, so this fixture is the seeded-violation proof
// that the lint lane still fails when obs grows a dependency.
func TestConfiguredPackage(t *testing.T) {
	live, suppressed := analysistest.Run(t, "testdata", stdlibonly.Analyzer, "gpm/internal/obs")
	if len(live) != 2 {
		t.Fatalf("live = %d findings, want 2 (prometheus + graph): %+v", len(live), live)
	}
	if len(suppressed) != 0 {
		t.Fatalf("suppressed = %+v, want none", suppressed)
	}
}

// TestMarkerPackage covers the //gpmvet:stdlib-only opt-in marker.
func TestMarkerPackage(t *testing.T) {
	analysistest.Run(t, "testdata", stdlibonly.Analyzer, "m/marked")
}

// TestUnguardedPackage proves the analyzer stays quiet off-scope.
func TestUnguardedPackage(t *testing.T) {
	live, _ := analysistest.Run(t, "testdata", stdlibonly.Analyzer, "u")
	if len(live) != 0 {
		t.Fatalf("live = %+v, want none in an unguarded package", live)
	}
}
