module gpmvet

go 1.24
