package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a file tree under t.TempDir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestSeededViolationFails is the lane's demonstration requirement: a
// violation seeded into a guarded package makes the whole run fail.
// The module mirrors the real tree (module gpm, internal/obs guarded
// by stdlibonly's default package list, internal/serve by
// envelopecheck's), exercising the same go-list loading path the CI
// lane uses.
func TestSeededViolationFails(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module gpm\n\ngo 1.24\n",
		"internal/obs/obs.go": `package obs

import "github.com/prometheus/client_golang/prometheus"

var _ = prometheus.NewRegistry
`,
		"internal/serve/serve.go": `package serve

import "net/http"

func h(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)
}
`,
	})
	live, suppressed, err := analyzePatterns(root, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(suppressed) != 0 {
		t.Fatalf("suppressed = %+v, want none", suppressed)
	}
	byAnalyzer := map[string]int{}
	for _, f := range live {
		byAnalyzer[f.Analyzer]++
	}
	if byAnalyzer["stdlibonly"] != 1 || byAnalyzer["envelopecheck"] != 1 {
		t.Fatalf("findings by analyzer = %v, want one stdlibonly and one envelopecheck", byAnalyzer)
	}
	if code := report(live, suppressed, true); code != 1 {
		t.Fatalf("report exit code = %d, want 1 on findings", code)
	}
}

// TestCleanTreePasses is the inverse: a guarded package using only the
// stdlib analyzes clean and exits 0.
func TestCleanTreePasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module gpm\n\ngo 1.24\n",
		"internal/obs/obs.go": `package obs

import "fmt"

var _ = fmt.Sprintf
`,
	})
	live, suppressed, err := analyzePatterns(root, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("live = %+v, want none", live)
	}
	if code := report(live, suppressed, false); code != 0 {
		t.Fatalf("report exit code = %d, want 0 on a clean tree", code)
	}
}

// TestIgnoreEscapeHatch proves the end-to-end suppression contract:
// the ignored violation does not fail the run but is counted, and a
// reason-less ignore is itself a finding.
func TestIgnoreEscapeHatch(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module gpm\n\ngo 1.24\n",
		"internal/obs/obs.go": `package obs

import "github.com/acme/dep" //gpmvet:ignore vendored shim, audited 2026-08

var _ = dep.Thing
`,
		"internal/obs/trace/trace.go": `package trace

//gpmvet:ignore
import "strings"

var _ = strings.TrimSpace
`,
	})
	live, suppressed, err := analyzePatterns(root, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(suppressed) != 1 || !strings.Contains(suppressed[0].Suppressed, "vendored shim") {
		t.Fatalf("suppressed = %+v, want the audited vendored-shim entry", suppressed)
	}
	if len(live) != 1 || !strings.Contains(live[0].Message, "needs a reason") {
		t.Fatalf("live = %+v, want exactly the reason-less ignore finding", live)
	}
}

// TestConfigPrecedence: .gpmvet.json supplies flag values, the command
// line overrides them.
func TestConfigPrecedence(t *testing.T) {
	root := writeTree(t, map[string]string{
		".gpmvet.json": `{"lockcheck": {"allow": "contq.commitEffective"}}`,
	})
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cliAllow string
	fs.StringVar(&cliAllow, "lockcheck.allow", "", "")

	reset := func() {
		for _, a := range analyzers {
			if a.Name == "lockcheck" {
				if err := a.Flags.Set("allow", ""); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	defer reset()

	applyConfig(fs, "", root)
	got := lookupAnalyzerFlag(t, "lockcheck", "allow")
	if got != "contq.commitEffective" {
		t.Fatalf("allow after config = %q, want the config value", got)
	}

	reset()
	if err := fs.Parse([]string{"-lockcheck.allow", "x.y"}); err != nil {
		t.Fatal(err)
	}
	// Simulate the CLI having set the prefixed flag: applyConfig must
	// not clobber it. The real driver shares flag.Values between the
	// command set and the analyzer set; here only precedence matters.
	applyConfig(fs, "", root)
	if got := lookupAnalyzerFlag(t, "lockcheck", "allow"); got != "" {
		t.Fatalf("allow after CLI override = %q, want config skipped (CLI wins)", got)
	}
}

func lookupAnalyzerFlag(t *testing.T, analyzer, name string) string {
	t.Helper()
	for _, a := range analyzers {
		if a.Name == analyzer {
			return a.Flags.Lookup(name).Value.String()
		}
	}
	t.Fatalf("no analyzer %q", analyzer)
	return ""
}

// TestVersionHandshake covers the cmd/go -V=full probe.
func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
}
