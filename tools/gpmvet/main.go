// Command gpmvet is the repo's invariant checker: a multichecker over
// the five project-specific analyzers (lockcheck, nilspan, stdlibonly,
// envelopecheck, ctxflow) that fails the build the moment a call site
// violates the engine's concurrency, tracing, or wire contracts.
//
// Two invocation modes:
//
//	gpmvet ./...                     # standalone, from the repo root
//	go vet -vettool=$(which gpmvet) ./...   # as a vet tool
//
// Standalone mode shells out to `go list` for package discovery, so
// build tags and module boundaries behave exactly like the build. The
// vettool mode speaks the cmd/go unitchecker protocol (-V=full,
// -flags, one *.cfg argument per package).
//
// -json emits a machine-readable findings summary (live findings,
// suppressed //gpmvet:ignore escape hatches with their reasons, and
// per-analyzer counts) — the CI lint lane archives it so lint trends
// ride the same artifact pattern as the bench history.
//
// Per-analyzer flags are exposed as -<analyzer>.<flag> and may also be
// set in a .gpmvet.json at the repo root:
//
//	{"lockcheck": {"allow": "contq.commitEffective"}}
//
// Command-line flags win over the config file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"gpmvet/internal/analysis"
	"gpmvet/internal/ctxflow"
	"gpmvet/internal/envelopecheck"
	"gpmvet/internal/lockcheck"
	"gpmvet/internal/nilspan"
	"gpmvet/internal/stdlibonly"
)

const version = "v0.1.0"

// analyzers is the suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	envelopecheck.Analyzer,
	lockcheck.Analyzer,
	nilspan.Analyzer,
	stdlibonly.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("gpmvet", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (the cmd/go vettool handshake passes -V=full)")
	listFlags := fs.Bool("flags", false, "print the analyzer flags as JSON (cmd/go vettool protocol)")
	jsonOut := fs.Bool("json", false, "emit findings as a machine-readable JSON summary")
	configPath := fs.String("config", "", "path to a .gpmvet.json flag config (default: nearest .gpmvet.json up from the working directory)")
	for _, a := range analyzers {
		a := a
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		fmt.Printf("gpmvet version %s\n", version)
		return 0
	}
	if *listFlags {
		printFlagDefs(fs)
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVettool(fs, *configPath, *jsonOut, rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	applyConfig(fs, *configPath, ".")
	live, suppressed, err := analyzePatterns(".", rest, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: %v\n", err)
		return 2
	}
	return report(live, suppressed, *jsonOut)
}

// report prints the findings and returns the process exit code.
func report(live, suppressed []analysis.Finding, jsonOut bool) int {
	if jsonOut {
		doc := summary{
			Version:    version,
			Analyzers:  analyzerNames(),
			Findings:   orEmpty(live),
			Suppressed: orEmpty(suppressed),
		}
		doc.Counts.Findings = len(live)
		doc.Counts.Suppressed = len(suppressed)
		doc.Counts.ByAnalyzer = map[string]int{}
		for _, f := range live {
			doc.Counts.ByAnalyzer[f.Analyzer]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck // stdout write failure has no recovery
	} else {
		for _, f := range live {
			fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
		}
		fmt.Fprintf(os.Stderr, "gpmvet: %d finding(s), %d suppressed by gpmvet:ignore\n", len(live), len(suppressed))
	}
	if len(live) > 0 {
		return 1
	}
	return 0
}

// summary is the -json document.
type summary struct {
	Version    string             `json:"gpmvet"`
	Analyzers  []string           `json:"analyzers"`
	Findings   []analysis.Finding `json:"findings"`
	Suppressed []analysis.Finding `json:"suppressed"`
	Counts     struct {
		Findings   int            `json:"findings"`
		Suppressed int            `json:"suppressed"`
		ByAnalyzer map[string]int `json:"by_analyzer"`
	} `json:"counts"`
}

func analyzerNames() []string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return names
}

func orEmpty(fs []analysis.Finding) []analysis.Finding {
	if fs == nil {
		return []analysis.Finding{}
	}
	return fs
}

// listedPackage is the slice of `go list -json` output gpmvet needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Module     *struct{ Path string }
}

// analyzePatterns loads the packages matching patterns (resolved in
// dir) via `go list` and runs the suite over each.
func analyzePatterns(dir string, patterns []string, suite []*analysis.Analyzer) (live, suppressed []analysis.Finding, err error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg := analysis.Package{Name: p.Name, ImportPath: p.ImportPath, Dir: p.Dir}
		if p.Module != nil {
			pkg.Module = p.Module.Path
		}
		fset := token.NewFileSet()
		files, err := analysis.ParseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %s: %v", p.ImportPath, err)
		}
		l, s, err := analysis.Run(fset, pkg, files, suite)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzing %s: %v", p.ImportPath, err)
		}
		live = append(live, l...)
		suppressed = append(suppressed, s...)
	}
	return live, suppressed, nil
}

// vetConfig is the subset of the cmd/go unitchecker *.cfg document the
// suite needs (the rest configures type-checking, which gpmvet's
// syntax-only analyzers skip).
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	ModulePath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runVettool handles one `go vet -vettool=gpmvet` package invocation.
func runVettool(fs *flag.FlagSet, configPath string, jsonOut bool, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: reading %s: %v\n", cfgPath, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go expects the facts file regardless; gpmvet keeps no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "gpmvet: writing %s: %v\n", cfg.VetxOutput, err)
			return 2
		}
	}
	// Dependency packages run facts-only; gpmvet keeps no facts, so
	// there is nothing further to do for them.
	if cfg.VetxOnly {
		return 0
	}
	applyConfig(fs, configPath, cfg.Dir)
	pkg := analysis.Package{ImportPath: cfg.ImportPath, Module: cfg.ModulePath, Dir: cfg.Dir}
	// The invariants bind production code; tests violate them
	// deliberately (root contexts, raw status writes). Standalone mode
	// never sees test files (go list GoFiles excludes them) — drop them
	// here too so both modes agree.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, goFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: parsing %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	// The *.cfg document carries no package name, and allowlists match
	// on it ("contq.commitEffective") — take it from the source itself
	// so both invocation modes agree.
	if len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	live, _, err := analysis.Run(fset, pkg, files, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: analyzing %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if len(live) == 0 {
		return 0
	}
	if jsonOut {
		// The unitchecker JSON shape: {"pkg": {"analyzer": [{posn, message}]}}.
		byAnalyzer := map[string][]map[string]string{}
		for _, f := range live {
			byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], map[string]string{"posn": f.Pos, "message": f.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{cfg.ImportPath: byAnalyzer}) //nolint:errcheck // stdout write failure has no recovery
		return 0
	}
	for _, f := range live {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return 2
}

// printFlagDefs answers the cmd/go -flags query: the JSON flag list a
// vet driver may pass through.
func printFlagDefs(fs *flag.FlagSet) {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{}
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, flagDef{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	json.NewEncoder(os.Stdout).Encode(defs) //nolint:errcheck // stdout write failure has no recovery
}

// applyConfig loads the nearest .gpmvet.json (or the -config one) and
// sets analyzer flags not already set on the command line.
func applyConfig(fs *flag.FlagSet, explicit, startDir string) {
	path := explicit
	if path == "" {
		path = findConfig(startDir)
		if path == "" {
			return
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: reading config %s: %v\n", path, err)
		return
	}
	var cfg map[string]map[string]string
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gpmvet: parsing config %s: %v\n", path, err)
		return
	}
	setOnCLI := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setOnCLI[f.Name] = true })
	for _, a := range analyzers {
		vals, ok := cfg[a.Name]
		if !ok {
			continue
		}
		for key, val := range vals {
			if setOnCLI[a.Name+"."+key] {
				continue // command line wins
			}
			if err := a.Flags.Set(key, val); err != nil {
				fmt.Fprintf(os.Stderr, "gpmvet: config %s: %s.%s: %v\n", path, a.Name, key, err)
			}
		}
	}
}

// findConfig walks up from dir looking for .gpmvet.json.
func findConfig(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		p := filepath.Join(dir, ".gpmvet.json")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
