// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 8). Each benchmark runs the corresponding experiment driver at
// the quick scale; `go test -bench=. -benchmem` therefore reproduces the
// whole study, and cmd/gpbench prints the same rows at any scale. Key
// series values are attached as custom metrics so regressions in the
// *shape* (who wins, by what factor) are visible, not just wall time.
package gpm_test

import (
	"io"
	"sync"
	"testing"

	"gpm/internal/distance"
	"gpm/internal/exp"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/incbsim"
	"gpm/internal/landmark"
)

func benchCfg() exp.Config {
	cfg := exp.Default()
	cfg.Scale = 0.02 // keep every figure regeneration in the seconds range
	return cfg
}

func benchFigure(b *testing.B, driver func(exp.Config) exp.Table) {
	b.Helper()
	cfg := benchCfg()
	var rows int
	for i := 0; i < b.N; i++ {
		t := driver(cfg)
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// --- Exp-1/Exp-2 of Section 8.1: matching (Figs. 16-17) ---

func BenchmarkFig16a_Effectiveness(b *testing.B)      { benchFigure(b, exp.Fig16a) }
func BenchmarkFig16b_MatchVsVF2(b *testing.B)         { benchFigure(b, exp.Fig16b) }
func BenchmarkFig16c_MatchCounts(b *testing.B)        { benchFigure(b, exp.Fig16c) }
func BenchmarkFig17a_OraclesYouTube(b *testing.B)     { benchFigure(b, exp.Fig17a) }
func BenchmarkFig17b_OraclesCitation(b *testing.B)    { benchFigure(b, exp.Fig17b) }
func BenchmarkFig17c_PatternScalability(b *testing.B) { benchFigure(b, exp.Fig17c) }
func BenchmarkFig17d_GraphScalability(b *testing.B)   { benchFigure(b, exp.Fig17d) }

// --- Exp-1 of Section 8.2: incremental simulation (Fig. 18) ---

func BenchmarkFig18a_IncSimInsert(b *testing.B)   { benchFigure(b, exp.Fig18a) }
func BenchmarkFig18b_IncSimDelete(b *testing.B)   { benchFigure(b, exp.Fig18b) }
func BenchmarkFig18c_IncSimYouTube(b *testing.B)  { benchFigure(b, exp.Fig18c) }
func BenchmarkFig18d_IncSimCitation(b *testing.B) { benchFigure(b, exp.Fig18d) }

// --- Exp-2 of Section 8.2: incremental bounded simulation (Fig. 19) ---

func BenchmarkFig19a_IncBSimInsert(b *testing.B)   { benchFigure(b, exp.Fig19a) }
func BenchmarkFig19b_IncBSimDelete(b *testing.B)   { benchFigure(b, exp.Fig19b) }
func BenchmarkFig19c_IncBSimYouTube(b *testing.B)  { benchFigure(b, exp.Fig19c) }
func BenchmarkFig19d_IncBSimCitation(b *testing.B) { benchFigure(b, exp.Fig19d) }

// --- Exp-3 of Section 8.2: optimizations (Fig. 20) ---

func BenchmarkFig20a_MinDelta(b *testing.B)      { benchFigure(b, exp.Fig20a) }
func BenchmarkFig20b_LandmarkSpace(b *testing.B) { benchFigure(b, exp.Fig20b) }
func BenchmarkFig20c_UnitLMvsBatch(b *testing.B) { benchFigure(b, exp.Fig20c) }
func BenchmarkFig20d_IncLMvsBatch(b *testing.B)  { benchFigure(b, exp.Fig20d) }
func BenchmarkFig20e_IncLMBoundK(b *testing.B)   { benchFigure(b, exp.Fig20e) }
func BenchmarkFig20f_IncLMvsNaive(b *testing.B)  { benchFigure(b, exp.Fig20f) }

// --- Section 1 summary table: boundedness witnesses ---

func BenchmarkTable1_UnboundednessWitnesses(b *testing.B) { benchFigure(b, exp.Table1Witnesses) }

// BenchmarkAllFigures regenerates the entire evaluation in one go — the
// `gpbench -all` path.
func BenchmarkAllFigures(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		exp.All(cfg, io.Discard)
	}
}

// --- Parallel vs serial hot paths (the internal/par subsystem) ---
//
// The oracle builds are one independent BFS per source, so the parallel
// builds should scale near-linearly with workers. Compare e.g.:
//
//	go test -bench 'NewMatrix' -benchtime 3x

var benchGraphOnce struct {
	sync.Once
	g *graph.Graph
}

// benchGraph returns a shared ≥10k-node generator graph (built once).
func benchGraph() *graph.Graph {
	benchGraphOnce.Do(func() {
		benchGraphOnce.g = generator.Synthetic(10000, 40000, generator.DefaultSchema(4), 42)
	})
	return benchGraphOnce.g
}

func benchNewMatrix(b *testing.B, workers int) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distance.NewMatrixWorkers(g, workers)
	}
}

func BenchmarkNewMatrixSerial(b *testing.B)     { benchNewMatrix(b, 1) }
func BenchmarkNewMatrixWorkers2(b *testing.B)   { benchNewMatrix(b, 2) }
func BenchmarkNewMatrixWorkers4(b *testing.B)   { benchNewMatrix(b, 4) }
func BenchmarkNewMatrixWorkersMax(b *testing.B) { benchNewMatrix(b, 0) }

func benchLandmarkNew(b *testing.B, workers int) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		landmark.NewWorkers(g, workers)
	}
}

func BenchmarkLandmarkNewSerial(b *testing.B)   { benchLandmarkNew(b, 1) }
func BenchmarkLandmarkNewWorkers4(b *testing.B) { benchLandmarkNew(b, 4) }

func benchIncBSimDeletes(b *testing.B, workers int) {
	base := generator.Synthetic(3000, 12000, generator.DefaultSchema(4), 42)
	p := generator.EmbeddedPattern(base, generator.PatternParams{Nodes: 4, Edges: 4, Preds: 1, K: 2}, 42)
	dels := generator.Updates(base, 0, 200, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := base.Clone()
		eng, err := incbsim.New(p, g, incbsim.WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, up := range dels {
			eng.Delete(up.From, up.To)
		}
	}
}

func BenchmarkIncBSimDeleteSerial(b *testing.B)   { benchIncBSimDeletes(b, 1) }
func BenchmarkIncBSimDeleteWorkers4(b *testing.B) { benchIncBSimDeletes(b, 4) }
