package generator

import (
	"testing"
	"testing/quick"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func TestSyntheticShape(t *testing.T) {
	g := Synthetic(500, 2000, DefaultSchema(8), 1)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Every node has the schema's attributes.
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range []string{"label", "age", "rating"} {
			if _, ok := g.Attrs(v).Get(a); !ok {
				t.Fatalf("node %d missing %q", v, a)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(200, 600, DefaultSchema(4), 7)
	b := Synthetic(200, 600, DefaultSchema(4), 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	a.Edges(func(u, v graph.NodeID) bool {
		if !b.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) differs across same-seed runs", u, v)
		}
		return true
	})
}

func TestSyntheticAlphaDensification(t *testing.T) {
	g1 := SyntheticAlpha(300, 1.0, DefaultSchema(4), 1)
	g2 := SyntheticAlpha(300, 1.2, DefaultSchema(4), 1)
	if g2.NumEdges() <= g1.NumEdges() {
		t.Fatalf("α=1.2 should be denser: %d vs %d", g2.NumEdges(), g1.NumEdges())
	}
}

func TestUpdatesAreApplicable(t *testing.T) {
	g := Synthetic(300, 900, DefaultSchema(4), 3)
	ups := Updates(g, 50, 50, 4)
	nIns, nDel := 0, 0
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			if g.HasEdge(up.From, up.To) {
				t.Fatalf("insertion %v already present", up)
			}
			nIns++
		} else {
			nDel++
		}
	}
	if nIns != 50 || nDel != 50 {
		t.Fatalf("got %d inserts, %d deletes", nIns, nDel)
	}
	eff, err := g.ApplyAll(ups)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff) != 100 {
		t.Fatalf("only %d/100 updates effective", len(eff))
	}
}

func TestUpdatesNoDuplicateEdits(t *testing.T) {
	g := Synthetic(100, 300, DefaultSchema(4), 5)
	ups := Updates(g, 40, 40, 6)
	seen := map[[2]graph.NodeID]bool{}
	for _, up := range ups {
		key := [2]graph.NodeID{up.From, up.To}
		if seen[key] {
			t.Fatalf("edge %v updated twice", key)
		}
		seen[key] = true
	}
}

func TestYouTubeAndCitationSchemas(t *testing.T) {
	yt := YouTube(0.01, 1)
	if yt.NumNodes() == 0 || yt.NumEdges() == 0 {
		t.Fatal("empty YouTube graph")
	}
	if _, ok := yt.Attrs(0).Get("category"); !ok {
		t.Fatal("YouTube node missing category")
	}
	ci := Citation(0.01, 1)
	if _, ok := ci.Attrs(0).Get("year"); !ok {
		t.Fatal("Citation node missing year")
	}
	// Citation years are monotone in node id (layered generation).
	y0, _ := ci.Attrs(0).Get("year")
	yn, _ := ci.Attrs(ci.NumNodes() - 1).Get("year")
	if y0.IntVal() > yn.IntVal() {
		t.Fatal("citation years not layered")
	}
}

func TestCitationMostlyBackward(t *testing.T) {
	g := Citation(0.02, 2)
	backward := 0
	total := 0
	g.Edges(func(u, v graph.NodeID) bool {
		total++
		if v < u {
			backward++
		}
		return true
	})
	if total == 0 || float64(backward)/float64(total) < 0.8 {
		t.Fatalf("citations should be mostly backward: %d/%d", backward, total)
	}
}

func TestPatternGeneratorProducesValidPatterns(t *testing.T) {
	g := YouTube(0.01, 3)
	for seed := int64(0); seed < 20; seed++ {
		p := Pattern(g, PatternParams{Nodes: 5, Edges: 7, Preds: 2, K: 3, StarFraction: 20}, seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.NumNodes() != 5 {
			t.Fatalf("seed %d: %d nodes", seed, p.NumNodes())
		}
		if p.NumEdges() < 4 { // at least the spanning edges
			t.Fatalf("seed %d: %d edges", seed, p.NumEdges())
		}
		// Every predicate is anchored: at least one node satisfies it.
		for u := 0; u < p.NumNodes(); u++ {
			found := false
			for v := 0; v < g.NumNodes() && !found; v++ {
				found = p.Pred(u).Eval(g.Attrs(v))
			}
			if !found {
				t.Fatalf("seed %d: pattern node %d unsatisfiable", seed, u)
			}
		}
	}
}

func TestDAGPatternIsAcyclic(t *testing.T) {
	g := YouTube(0.01, 3)
	f := func(seed int64) bool {
		p := DAGPattern(g, PatternParams{Nodes: 5, Edges: 7, Preds: 2, K: 3}, seed)
		return p.IsDAG()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPatternBounds(t *testing.T) {
	f := func(seed int64) bool {
		p := RandomPattern(4, 6, 3, 3, seed)
		for _, e := range p.Edges() {
			if e.Bound != pattern.Unbounded && (e.Bound < 1 || e.Bound > 3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGraphRespectsSize(t *testing.T) {
	g := RandomGraph(30, 80, 3, 9)
	if g.NumNodes() != 30 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
}
