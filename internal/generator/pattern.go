package generator

import (
	"math/rand"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// PatternParams are the paper's four pattern-generator parameters: the
// number of nodes |Vp|, edges |Ep|, the average number of predicates per
// node |pred|, and the bound k (each edge draws a bound from [k-c, k] for a
// small c; k = 1 yields a normal pattern; Unbounded sprinkles * edges).
type PatternParams struct {
	Nodes, Edges int
	Preds        int
	K            int
	// StarFraction is the probability (percent) that an edge is unbounded
	// when K > 1. The paper's b-patterns mix bounded and * edges.
	StarFraction int
}

// Pattern generates a random connected pattern whose predicates are sampled
// from the attribute tuples of g, so that candidate sets are nonempty and
// matches plausibly exist (the paper's generator "produces meaningful
// pattern graphs" the same way).
func Pattern(g *graph.Graph, params PatternParams, seed int64) *pattern.Pattern {
	rng := rand.New(rand.NewSource(seed))
	p := pattern.New()
	n := g.NumNodes()
	for i := 0; i < params.Nodes; i++ {
		// Anchor each pattern node's predicate on a random data node: pick
		// |pred| attributes and constrain them to that node's values (with
		// equality for strings, and a >=/<= split for numerics).
		t := g.Attrs(rng.Intn(n))
		keys := t.Keys()
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		np := params.Preds
		if np > len(keys) {
			np = len(keys)
		}
		var pred pattern.Predicate
		for _, k := range keys[:np] {
			v := t[k]
			if v.Kind() == graph.KindString {
				pred = pred.Where(k, pattern.OpEQ, v)
			} else if rng.Intn(2) == 0 {
				pred = pred.Where(k, pattern.OpLE, v)
			} else {
				pred = pred.Where(k, pattern.OpGE, v)
			}
		}
		p.AddNode(pred)
	}
	bound := func() int {
		if params.K <= 1 {
			return 1
		}
		if params.StarFraction > 0 && rng.Intn(100) < params.StarFraction {
			return pattern.Unbounded
		}
		c := params.K / 2
		if c < 1 {
			c = 1
		}
		return params.K - rng.Intn(c)
	}
	// Spanning edges first so the pattern is weakly connected, then extras.
	for i := 1; i < params.Nodes; i++ {
		j := rng.Intn(i)
		if rng.Intn(2) == 0 {
			mustAddPatternEdge(p, j, i, bound())
		} else {
			mustAddPatternEdge(p, i, j, bound())
		}
	}
	for p.NumEdges() < params.Edges && p.NumEdges() < params.Nodes*(params.Nodes-1) {
		u, v := rng.Intn(params.Nodes), rng.Intn(params.Nodes)
		if u == v {
			continue
		}
		if _, ok := p.Bound(u, v); ok {
			continue
		}
		mustAddPatternEdge(p, u, v, bound())
	}
	return p
}

// DAGPattern generates a random acyclic pattern (edges only from lower to
// higher node id), used by the IncMatch+dag experiments.
func DAGPattern(g *graph.Graph, params PatternParams, seed int64) *pattern.Pattern {
	p := Pattern(g, params, seed)
	q := pattern.New()
	for u := 0; u < p.NumNodes(); u++ {
		q.AddNode(p.Pred(u))
	}
	for _, e := range p.Edges() {
		u, v := e.From, e.To
		if u > v {
			u, v = v, u
		}
		if u == v {
			continue
		}
		if _, ok := q.Bound(u, v); !ok {
			mustAddPatternEdge(q, u, v, e.Bound)
		}
	}
	return q
}

func mustAddPatternEdge(p *pattern.Pattern, u, v, bound int) {
	if err := p.AddEdge(u, v, bound); err != nil {
		panic("generator: " + err.Error())
	}
}

// RandomGraph is a small-alphabet uniform random graph for property tests:
// n nodes labeled from `labels` letters, m random edges.
func RandomGraph(n, m, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n, m)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Tuple{"label": graph.String(string(rune('a' + rng.Intn(labels))))})
	}
	for tries := 0; g.NumEdges() < m && tries < 20*m+100; tries++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n)) //nolint:errcheck // in-range by construction
	}
	return g
}

// RandomPattern is a small-alphabet random pattern for property tests, with
// nodes labeled from the same alphabet as RandomGraph and bounds in
// [1, maxBound] (0 bound slots become * with probability 1/6 when maxBound
// > 1). Patterns may be cyclic.
func RandomPattern(nodes, edges, labels, maxBound int, seed int64) *pattern.Pattern {
	rng := rand.New(rand.NewSource(seed))
	p := pattern.New()
	for i := 0; i < nodes; i++ {
		p.AddNode(pattern.Label(string(rune('a' + rng.Intn(labels)))))
	}
	for tries := 0; p.NumEdges() < edges && tries < 20*edges+100; tries++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if _, ok := p.Bound(u, v); ok {
			continue
		}
		b := 1
		if maxBound > 1 {
			if rng.Intn(6) == 0 {
				b = pattern.Unbounded
			} else {
				b = 1 + rng.Intn(maxBound)
			}
		}
		mustAddPatternEdge(p, u, v, b)
	}
	return p
}
