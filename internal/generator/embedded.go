package generator

import (
	"math/rand"
	"sort"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// EmbeddedPattern generates a pattern that is guaranteed to occur in g: it
// samples a connected subgraph of |Vp| nodes by walking real edges, derives
// each pattern node's predicate from its anchor node's attributes, and only
// emits pattern edges whose anchors are joined by a real edge (bound 1
// edges) or a real path within the bound. This mirrors the paper's
// "manually constructed patterns to find popular videos": subgraph
// isomorphism has at least one witness, and bounded simulation at least the
// anchors.
//
// Returns nil if g has no suitable connected region (pathological inputs).
func EmbeddedPattern(g *graph.Graph, params PatternParams, seed int64) *pattern.Pattern {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	if n == 0 || params.Nodes < 1 {
		return nil
	}
	// Sample anchors: grow from a random start along out-edges (falling
	// back to in-edges), collecting distinct nodes.
	var anchors []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for attempt := 0; attempt < 30 && len(anchors) < params.Nodes; attempt++ {
		anchors = anchors[:0]
		for k := range seen {
			delete(seen, k)
		}
		cur := rng.Intn(n)
		anchors = append(anchors, cur)
		seen[cur] = true
		for len(anchors) < params.Nodes {
			next := graph.NodeID(-1)
			// Prefer a fresh out-neighbour of a random chosen anchor.
			from := anchors[rng.Intn(len(anchors))]
			if outs := g.Out(from); len(outs) > 0 {
				for t := 0; t < len(outs) && next < 0; t++ {
					if w := outs[rng.Intn(len(outs))]; !seen[w] {
						next = w
					}
				}
			}
			if next < 0 {
				for _, w := range g.In(from) {
					if !seen[w] {
						next = w
						break
					}
				}
			}
			if next < 0 {
				break // stuck; retry with another start
			}
			anchors = append(anchors, next)
			seen[next] = true
		}
	}
	if len(anchors) == 0 {
		return nil
	}
	params.Nodes = len(anchors)

	p := pattern.New()
	for _, v := range anchors {
		p.AddNode(predicateFromTuple(g.Attrs(v), params.Preds, rng))
	}
	// Edges between anchors that are really connected: direct edges first
	// (valid at any bound), then, when k > 1, pairs within k hops.
	k := params.K
	if k < 1 {
		k = 1
	}
	type cand struct {
		i, j, bound int
	}
	var cands []cand
	for i, vi := range anchors {
		for j, vj := range anchors {
			if i == j {
				continue
			}
			if g.HasEdge(vi, vj) {
				cands = append(cands, cand{i, j, 1})
			} else if k > 1 {
				if d := boundedDist(g, vi, vj, k); d <= k {
					cands = append(cands, cand{i, j, d})
				}
			}
		}
	}
	// Direct edges first (they give subgraph isomorphism a witness, as the
	// paper's hand-built patterns do), path edges after; shuffled within
	// each group.
	rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].bound < cands[b].bound })
	for _, c := range cands {
		if p.NumEdges() >= params.Edges {
			break
		}
		bound := c.bound
		if k > 1 && bound < k {
			bound = c.bound + rng.Intn(k-c.bound+1) // any bound ≥ the real distance
		}
		if k == 1 {
			bound = 1
		}
		mustAddPatternEdge(p, c.i, c.j, bound)
	}
	if p.NumEdges() == 0 && len(cands) > 0 {
		mustAddPatternEdge(p, cands[0].i, cands[0].j, cands[0].bound)
	}
	return p
}

// predicateFromTuple derives a predicate satisfied by the tuple: equality
// on strings, one-sided comparisons on numerics.
func predicateFromTuple(t graph.Tuple, nPreds int, rng *rand.Rand) pattern.Predicate {
	keys := t.Keys()
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	if nPreds > len(keys) {
		nPreds = len(keys)
	}
	var pred pattern.Predicate
	for _, k := range keys[:nPreds] {
		v := t[k]
		if v.Kind() == graph.KindString {
			pred = pred.Where(k, pattern.OpEQ, v)
		} else if rng.Intn(2) == 0 {
			pred = pred.Where(k, pattern.OpLE, v)
		} else {
			pred = pred.Where(k, pattern.OpGE, v)
		}
	}
	return pred
}

// boundedDist returns the hop distance from u to v if within bound, else
// bound+1.
func boundedDist(g *graph.Graph, u, v graph.NodeID, bound int) int {
	found := bound + 1
	g.BFSWithin(u, graph.Forward, bound, func(w graph.NodeID, d int) bool {
		if w == v && d >= 1 {
			found = d
			return false
		}
		return true
	})
	return found
}
