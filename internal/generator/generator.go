// Package generator produces the synthetic workloads of Section 8: random
// attributed digraphs (with densification-law evolution and degree-biased
// update streams), the YouTube-like and Citation-like datasets standing in
// for the paper's crawled real-life data, and random b-patterns controlled
// by the paper's four parameters (|Vp|, |Ep|, |pred|, k).
//
// Everything is deterministic given a seed, so experiments and tests are
// reproducible.
package generator

import (
	"fmt"
	"math"
	"math/rand"

	"gpm/internal/graph"
)

// Synthetic generates a random digraph with n nodes and m edges whose nodes
// draw attribute values from schema. Edge endpoints are degree-biased
// (preferential attachment flavoured), which reproduces the skew of the
// linkage-generation models the paper cites.
func Synthetic(n, m int, schema Schema, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n, m)
	for i := 0; i < n; i++ {
		g.AddNode(schema.Sample(rng))
	}
	addPreferentialEdges(g, m, rng)
	return g
}

// SyntheticAlpha generates a densification-law graph: |E| = ⌈|V|^alpha⌉,
// the parameterization of Fig. 20(a).
func SyntheticAlpha(n int, alpha float64, schema Schema, seed int64) *graph.Graph {
	m := int(math.Ceil(math.Pow(float64(n), alpha)))
	return Synthetic(n, m, schema, seed)
}

// addPreferentialEdges inserts m distinct edges, biasing both endpoints
// towards nodes that already have edges (each endpoint is the better-degree
// of two uniform draws — a cheap preferential-attachment approximation).
func addPreferentialEdges(g *graph.Graph, m int, rng *rand.Rand) {
	n := g.NumNodes()
	if n < 2 {
		return
	}
	pick := func() graph.NodeID {
		a, b := rng.Intn(n), rng.Intn(n)
		if g.Degree(a) >= g.Degree(b) {
			return a
		}
		return b
	}
	for added := 0; added < m; {
		u, v := pick(), pick()
		if u == v {
			continue
		}
		ok, _ := g.AddEdge(u, v)
		if ok {
			added++
		} else if g.NumEdges() >= n*(n-1) {
			return // graph is complete; cannot place more edges
		}
	}
}

// Updates generates nIns insertions and nDel deletions against g, selecting
// endpoints with the degree bias of the paper's protocol: prefer
// high-degree nodes, inserting edges between unconnected pairs and deleting
// existing edges. The updates are returned unapplied, shuffled together.
func Updates(g *graph.Graph, nIns, nDel int, seed int64) []graph.Update {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	var ups []graph.Update
	pick := func() graph.NodeID {
		a, b := rng.Intn(n), rng.Intn(n)
		if g.Degree(a) >= g.Degree(b) {
			return a
		}
		return b
	}
	pending := make(map[[2]graph.NodeID]bool) // true: will exist, false: will not
	exists := func(u, v graph.NodeID) bool {
		if st, ok := pending[[2]graph.NodeID{u, v}]; ok {
			return st
		}
		return g.HasEdge(u, v)
	}
	for tries := 0; len(ups) < nIns && tries < 50*nIns+100; tries++ {
		u, v := pick(), pick()
		if u == v || exists(u, v) {
			continue
		}
		pending[[2]graph.NodeID{u, v}] = true
		ups = append(ups, graph.Insert(u, v))
	}
	edges := g.EdgeList()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if nDel == 0 {
			break
		}
		if !exists(e[0], e[1]) {
			continue
		}
		pending[[2]graph.NodeID{e[0], e[1]}] = false
		ups = append(ups, graph.Delete(e[0], e[1]))
		nDel--
	}
	rng.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
	return ups
}

// Schema describes how node attribute tuples are sampled.
type Schema []AttrSpec

// AttrSpec describes one attribute: either a categorical choice among
// Values, or a numeric range [Lo, Hi] when Values is empty.
type AttrSpec struct {
	Name   string
	Values []string // categorical labels; sampled uniformly
	Lo, Hi int64    // numeric range when Values is empty
}

// Sample draws one attribute tuple.
func (s Schema) Sample(rng *rand.Rand) graph.Tuple {
	t := make(graph.Tuple, len(s))
	for _, a := range s {
		if len(a.Values) > 0 {
			t[a.Name] = graph.String(a.Values[rng.Intn(len(a.Values))])
		} else {
			t[a.Name] = graph.Int(a.Lo + rng.Int63n(a.Hi-a.Lo+1))
		}
	}
	return t
}

// DefaultSchema is the schema used by the synthetic experiments: a small
// label alphabet plus two numeric attributes, mirroring the paper's "set of
// node attributes" generator parameter.
func DefaultSchema(labels int) Schema {
	vals := make([]string, labels)
	for i := range vals {
		vals[i] = fmt.Sprintf("L%d", i)
	}
	return Schema{
		{Name: "label", Values: vals},
		{Name: "age", Lo: 0, Hi: 1000},
		{Name: "rating", Lo: 0, Hi: 5},
	}
}

// YouTube generates the stand-in for the paper's crawled YouTube graph
// (14,829 nodes, 58,901 edges): a preferential-attachment digraph at the
// given scale (scale 1.0 reproduces the full size) whose nodes carry the
// video attributes the paper's patterns predicate over: category, age
// (days), rating, length (seconds) and uploader.
func YouTube(scale float64, seed int64) *graph.Graph {
	n := int(float64(14829) * scale)
	m := int(float64(58901) * scale)
	if n < 10 {
		n = 10
	}
	if m < 20 {
		m = 20
	}
	rng := rand.New(rand.NewSource(seed))
	categories := []string{"Music", "Comedy", "Politics", "Science", "People", "Sports", "Film", "News"}
	uploaders := make([]string, 64)
	for i := range uploaders {
		uploaders[i] = fmt.Sprintf("user%02d", i)
	}
	// A handful of named uploaders appear in the paper's sample patterns.
	uploaders[0], uploaders[1], uploaders[2] = "FWPB", "Ascrodin", "Gisburgh"
	g := graph.NewWithCapacity(n, m)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Tuple{
			"category": graph.String(categories[rng.Intn(len(categories))]),
			"age":      graph.Int(rng.Int63n(2000)),
			"rating":   graph.Float(float64(rng.Intn(50)) / 10),
			"length":   graph.Int(10 + rng.Int63n(600)),
			"uploader": graph.String(uploaders[rng.Intn(len(uploaders))]),
		})
	}
	addPreferentialEdges(g, m, rng)
	return g
}

// Citation generates the stand-in for the paper's citation network (17,292
// nodes, 61,351 edges): papers are layered by year and cite mostly earlier
// years (a near-DAG with in-degree skew), with attributes field, year and
// venue.
func Citation(scale float64, seed int64) *graph.Graph {
	n := int(float64(17292) * scale)
	m := int(float64(61351) * scale)
	if n < 10 {
		n = 10
	}
	if m < 20 {
		m = 20
	}
	rng := rand.New(rand.NewSource(seed))
	fields := []string{"DB", "AI", "OS", "Net", "Arch", "Theory", "Bio", "Med"}
	venues := []string{"SIGMOD", "VLDB", "ICDE", "KDD", "NIPS", "SOSP"}
	g := graph.NewWithCapacity(n, m)
	years := make([]int64, n)
	for i := 0; i < n; i++ {
		years[i] = 1980 + int64(i*30/n) // publication years increase with id
		g.AddNode(graph.Tuple{
			"field": graph.String(fields[rng.Intn(len(fields))]),
			"year":  graph.Int(years[i]),
			"venue": graph.String(venues[rng.Intn(len(venues))]),
		})
	}
	// Citations point from newer papers to older ones with degree bias; a
	// few percent of edges are "noise" (same-year or forward references),
	// which keeps the graph from being a pure DAG, as in real data.
	for added := 0; added < m; {
		u := rng.Intn(n)
		var v int
		if rng.Intn(100) < 95 {
			if u == 0 {
				continue
			}
			a, b := rng.Intn(u), rng.Intn(u)
			if g.InDegree(a) >= g.InDegree(b) {
				v = a
			} else {
				v = b
			}
		} else {
			v = rng.Intn(n)
		}
		if u == v {
			continue
		}
		if ok, _ := g.AddEdge(u, v); ok {
			added++
		}
	}
	return g
}
