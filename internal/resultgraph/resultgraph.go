// Package resultgraph implements the result graphs Gr of Section 4: the
// graph representation of a match relation M(P, G), whose nodes are the
// matched data nodes and whose edges are the projections of pattern edges
// (edge-to-edge for simulation, edge-to-path for bounded simulation). The
// changes ΔM of the incremental matching problem are reported as diffs
// between result graphs.
package resultgraph

import (
	"fmt"

	"gpm/internal/distance"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Graph is a result graph Gr = (Vr, Er).
type Graph struct {
	Nodes rel.Set
	Edges map[[2]graph.NodeID]struct{}
}

// NewGraph returns an empty result graph.
func NewGraph() *Graph {
	return &Graph{Nodes: rel.NewSet(), Edges: make(map[[2]graph.NodeID]struct{})}
}

// NumNodes returns |Vr|.
func (rg *Graph) NumNodes() int { return rg.Nodes.Len() }

// NumEdges returns |Er|.
func (rg *Graph) NumEdges() int { return len(rg.Edges) }

// HasEdge reports whether (u, v) ∈ Er.
func (rg *Graph) HasEdge(u, v graph.NodeID) bool {
	_, ok := rg.Edges[[2]graph.NodeID{u, v}]
	return ok
}

// FromSimulation builds the result graph of a simulation match: (v1, v2) is
// an edge iff some pattern edge (u1, u2) has v1 ∈ r[u1], v2 ∈ r[u2] and
// (v1, v2) ∈ E.
func FromSimulation(p *pattern.Pattern, g graph.View, r rel.Relation) *Graph {
	rg := NewGraph()
	if len(r) < p.NumNodes() {
		return rg // nil or truncated relation: empty result graph
	}
	for u := range r {
		for v := range r[u] {
			rg.Nodes.Add(v)
		}
	}
	for _, pe := range p.Edges() {
		for v1 := range r[pe.From] {
			for _, v2 := range g.Out(v1) {
				if r[pe.To].Has(v2) {
					rg.Edges[[2]graph.NodeID{v1, v2}] = struct{}{}
				}
			}
		}
	}
	return rg
}

// FromBounded builds the result graph of a bounded-simulation match:
// (v1, v2) is an edge iff some pattern edge (u1, u2) has v1 ∈ r[u1],
// v2 ∈ r[u2] and a nonempty path from v1 to v2 within the edge's bound.
func FromBounded(p *pattern.Pattern, g graph.View, r rel.Relation, oracle distance.Oracle) *Graph {
	rg := NewGraph()
	if len(r) < p.NumNodes() {
		return rg // nil or truncated relation: empty result graph
	}
	if oracle == nil {
		oracle = distance.NewBFS(g)
	}
	for u := range r {
		for v := range r[u] {
			rg.Nodes.Add(v)
		}
	}
	for _, pe := range p.Edges() {
		for v1 := range r[pe.From] {
			for v2 := range r[pe.To] {
				if pattern.WithinBound(distance.NonemptyDist(oracle, g, v1, v2), pe.Bound) {
					rg.Edges[[2]graph.NodeID{v1, v2}] = struct{}{}
				}
			}
		}
	}
	return rg
}

// Delta is the difference between two result graphs — the ΔM a user
// observes, measured in nodes and edges as in Example 4.2.
type Delta struct {
	RemovedNodes, AddedNodes []graph.NodeID
	RemovedEdges, AddedEdges [][2]graph.NodeID
}

// Size returns |ΔM|: the total number of changed nodes and edges.
func (d Delta) Size() int {
	return len(d.RemovedNodes) + len(d.AddedNodes) + len(d.RemovedEdges) + len(d.AddedEdges)
}

// Diff computes the delta that turns rg into next.
func (rg *Graph) Diff(next *Graph) Delta {
	var d Delta
	for v := range rg.Nodes {
		if !next.Nodes.Has(v) {
			d.RemovedNodes = append(d.RemovedNodes, v)
		}
	}
	for v := range next.Nodes {
		if !rg.Nodes.Has(v) {
			d.AddedNodes = append(d.AddedNodes, v)
		}
	}
	for e := range rg.Edges {
		if _, ok := next.Edges[e]; !ok {
			d.RemovedEdges = append(d.RemovedEdges, e)
		}
	}
	for e := range next.Edges {
		if _, ok := rg.Edges[e]; !ok {
			d.AddedEdges = append(d.AddedEdges, e)
		}
	}
	return d
}

// Equal reports whether two result graphs are identical.
func (rg *Graph) Equal(other *Graph) bool {
	if !rg.Nodes.Equal(other.Nodes) || len(rg.Edges) != len(other.Edges) {
		return false
	}
	for e := range rg.Edges {
		if _, ok := other.Edges[e]; !ok {
			return false
		}
	}
	return true
}

func (rg *Graph) String() string {
	return fmt.Sprintf("resultgraph{|Vr|=%d |Er|=%d}", rg.NumNodes(), rg.NumEdges())
}
