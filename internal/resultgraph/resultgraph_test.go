package resultgraph

import (
	"testing"

	"gpm/internal/core"
	"gpm/internal/fixtures"
	"gpm/internal/graph"
	"gpm/internal/simulation"
)

func TestFromBoundedFriendFeed(t *testing.T) {
	// Fig. 5 Gr1: result-graph edges are projections of pattern edges onto
	// bounded paths — Ann reaches Dan in 2 hops, so (Ann, Dan) is an edge
	// although G has no such edge.
	p, g, ids, _ := fixtures.FriendFeed()
	r := core.Match(p, g)
	rg := FromBounded(p, g, r, nil)
	if !rg.Nodes.Has(ids["Ann"]) || rg.Nodes.Has(ids["Ross"]) {
		t.Fatalf("nodes wrong: %v", rg.Nodes)
	}
	if !rg.HasEdge(ids["Ann"], ids["Pat"]) {
		t.Fatal("missing 1-hop projection (Ann, Pat)")
	}
	if !rg.HasEdge(ids["Ann"], ids["Dan"]) {
		t.Fatal("missing 2-hop projection (Ann, Dan)")
	}
	// DB→CTO is unbounded: Pat reaches Ann via Dan.
	if !rg.HasEdge(ids["Pat"], ids["Ann"]) {
		t.Fatal("missing unbounded projection (Pat, Ann)")
	}
}

func TestFromSimulationEdgesAreGraphEdges(t *testing.T) {
	p, g, ids := fixtures.TeamFormation()
	np := p.Normalized()
	r := simulation.Maximum(np, g)
	rg := FromSimulation(np, g, r)
	for e := range rg.Edges {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("simulation result edge %v not a graph edge", e)
		}
	}
	_ = ids
}

func TestDiffAndDelta(t *testing.T) {
	p, g, _, ups := fixtures.FriendFeed()
	before := FromBounded(p, g, core.Match(p, g), nil)
	if _, err := g.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	after := FromBounded(p, g, core.Match(p, g), nil)
	d := before.Diff(after)
	if len(d.AddedNodes) == 0 {
		t.Fatal("ΔM should add nodes (Don)")
	}
	if len(d.RemovedNodes) != 0 {
		t.Fatalf("insertions should not remove nodes: %v", d.RemovedNodes)
	}
	if d.Size() != len(d.AddedNodes)+len(d.AddedEdges) {
		t.Fatal("Size accounting wrong")
	}
	if before.Equal(after) {
		t.Fatal("Equal should detect the change")
	}
	if !before.Equal(before) {
		t.Fatal("Equal not reflexive")
	}
}

func TestEmptyRelationEmptyGraph(t *testing.T) {
	p, g, _, _ := fixtures.FriendFeed()
	rg := FromBounded(p, g, nil, nil)
	if rg.NumNodes() != 0 || rg.NumEdges() != 0 {
		t.Fatalf("empty relation should give empty result graph: %v", rg)
	}
}

func TestDeltaOnDeletion(t *testing.T) {
	p, g, ids, _ := fixtures.FriendFeed()
	before := FromBounded(p, g, core.Match(p, g), nil)
	g.RemoveEdge(ids["Pat"], ids["Bill"])
	after := FromBounded(p, g, core.Match(p, g), nil)
	d := before.Diff(after)
	found := false
	for _, v := range d.RemovedNodes {
		if v == graph.NodeID(ids["Pat"]) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Pat should drop out of the result graph: %+v", d)
	}
}
