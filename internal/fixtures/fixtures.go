// Package fixtures constructs the paper's running examples as in-memory
// graphs and patterns: the drug-trafficking ring of Fig. 1, the social
// matching patterns of Fig. 2, the FriendFeed fragment of Fig. 4, and the
// adversarial unboundedness witnesses of Figs. 6, 11 and 15. Tests assert
// the paper's stated matches on them; the example programs walk through
// them; benchmarks use the witnesses for the boundedness table.
package fixtures

import (
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// DrugRing builds pattern P0 and data graph G0 of Fig. 1 with m assistant
// managers, each supervising a 3-level chain of field workers. The last AM
// (Am) doubles as the secretary S. Expected maximum match: B→{boss},
// AM→{A1..Am}, S→{Am}, FW→all W nodes.
//
// Pattern nodes are returned in order B=0, AM=1, S=2, FW=3.
func DrugRing(m int) (*pattern.Pattern, *graph.Graph) {
	p := pattern.New()
	b := p.AddNode(pattern.Label("B"))
	am := p.AddNode(pattern.Label("AM"))
	s := p.AddNode(pattern.Predicate{}.Where("s", pattern.OpEQ, graph.Int(1)))
	fw := p.AddNode(pattern.Label("FW"))
	mustEdge(p, b, am, 1)  // boss oversees AMs directly
	mustEdge(p, am, b, 1)  // AMs report directly to the boss
	mustEdge(p, am, fw, 3) // AM supervises FWs within 3 hops
	mustEdge(p, fw, am, 3) // FWs report back within 3 hops
	mustEdge(p, b, s, 1)   // boss reaches the secretary directly
	mustEdge(p, s, fw, 1)  // secretary conveys to top-level FWs

	g := graph.New()
	boss := g.AddNode(graph.NewTuple("label", `"B"`))
	for i := 0; i < m; i++ {
		t := graph.NewTuple("label", `"AM"`)
		if i == m-1 {
			t["s"] = graph.Int(1) // Am is both AM and S
		}
		a := g.AddNode(t)
		mustAdd(g, boss, a)
		mustAdd(g, a, boss)
		// A 3-deep worker chain w1→w2→w3 with the tail reporting back, so
		// every worker is within 3 hops of its AM and vice versa.
		prev := a
		var chain []graph.NodeID
		for d := 0; d < 3; d++ {
			w := g.AddNode(graph.NewTuple("label", `"FW"`))
			mustAdd(g, prev, w)
			chain = append(chain, w)
			prev = w
		}
		mustAdd(g, chain[2], a)
	}
	return p, g
}

// TeamFormation builds pattern P1 and data graph G1 of Fig. 2 (the start-up
// team example). Pattern nodes: A=0, SE=1, HR=2, DM=3 with edges A→SE(2),
// A→HR(2), SE→DM(1), HR→DM(2), DM→A(*). Expected match: A→{a},
// SE→{se, hrse}, HR→{hr, hrse}, DM→{dml, dmr}.
//
// It returns the pattern, graph, and the ids of the named G1 nodes.
func TeamFormation() (*pattern.Pattern, *graph.Graph, map[string]graph.NodeID) {
	p := pattern.New()
	// Job titles are boolean role attributes so the dual-role node (HR, SE)
	// can satisfy both the SE and the HR predicate with plain conjunctions.
	a := p.AddNode(pattern.Label("A"))
	se := p.AddNode(pattern.Predicate{}.Where("se", pattern.OpEQ, graph.Int(1)))
	hr := p.AddNode(pattern.Predicate{}.Where("hr", pattern.OpEQ, graph.Int(1)))
	dm := p.AddNode(pattern.Predicate{}.
		Where("dm", pattern.OpEQ, graph.Int(1)).
		Where("hobby", pattern.OpEQ, graph.String("golf")))
	mustEdge(p, a, se, 2)
	mustEdge(p, a, hr, 2)
	mustEdge(p, se, dm, 1)
	mustEdge(p, hr, dm, 2)
	mustEdge(p, dm, a, pattern.Unbounded)

	g := graph.New()
	ids := map[string]graph.NodeID{}
	ids["a"] = g.AddNode(graph.NewTuple("label", `"A"`))
	ids["se"] = g.AddNode(graph.NewTuple("se", "1"))
	ids["hr"] = g.AddNode(graph.NewTuple("hr", "1"))
	ids["hrse"] = g.AddNode(graph.NewTuple("hr", "1", "se", "1"))
	ids["dml"] = g.AddNode(graph.NewTuple("dm", "1", "hobby", `"golf"`))
	ids["dmr"] = g.AddNode(graph.NewTuple("dm", "1", "hobby", `"golf"`))

	mustAdd(g, ids["a"], ids["hr"])     // A→HR (1 ≤ 2)
	mustAdd(g, ids["hr"], ids["hrse"])  // A→HR→(HR,SE): SE within 2
	mustAdd(g, ids["a"], ids["se"])     // A→SE (1 ≤ 2)
	mustAdd(g, ids["se"], ids["dmr"])   // SE→DM (1)
	mustAdd(g, ids["hrse"], ids["dml"]) // (HR,SE)→DM (1)
	mustAdd(g, ids["hr"], ids["dml"])   // HR reaches a DM within 2
	mustAdd(g, ids["dml"], ids["a"])    // DM→A (*)
	mustAdd(g, ids["dmr"], ids["dml"])  // dmr reaches A via dml
	return p, g, ids
}

// Collaboration builds pattern P2 and data graph G2 of Fig. 2 (the Twitter
// collaboration example). Pattern nodes: CS=0, Bio=1, Med=2, Soc=3 with
// edges CS→Bio(2), CS→Soc(3), CS→Med(*), Med→CS(*), Bio→Soc(2), Bio→Med(3).
// Expected match: CS→{DB}, Bio→{Gen, Eco}, Med→{Med}, Soc→{Soc}; AI is
// excluded because it cannot reach Soc within 3 hops. Dropping edge
// (DB, Gen) (returned as cut) makes the match empty (Example 2.2(3)).
func Collaboration() (*pattern.Pattern, *graph.Graph, map[string]graph.NodeID, graph.Update) {
	p := pattern.New()
	cs := p.AddNode(pattern.Predicate{}.Where("dept", pattern.OpEQ, graph.String("CS")))
	bio := p.AddNode(pattern.Predicate{}.Where("dept", pattern.OpEQ, graph.String("Bio")))
	med := p.AddNode(pattern.Label("Med"))
	soc := p.AddNode(pattern.Label("Soc"))
	mustEdge(p, cs, bio, 2)
	mustEdge(p, cs, soc, 3)
	mustEdge(p, cs, med, pattern.Unbounded)
	mustEdge(p, med, cs, pattern.Unbounded)
	mustEdge(p, bio, soc, 2)
	mustEdge(p, bio, med, 3)

	g := graph.New()
	ids := map[string]graph.NodeID{}
	ids["DB"] = g.AddNode(graph.NewTuple("label", `"DB"`, "dept", `"CS"`))
	ids["AI"] = g.AddNode(graph.NewTuple("label", `"AI"`, "dept", `"CS"`))
	ids["Gen"] = g.AddNode(graph.NewTuple("label", `"Gen"`, "dept", `"Bio"`))
	ids["Eco"] = g.AddNode(graph.NewTuple("label", `"Eco"`, "dept", `"Bio"`))
	ids["Chem"] = g.AddNode(graph.NewTuple("label", `"Chem"`, "dept", `"Chem"`))
	ids["Med"] = g.AddNode(graph.NewTuple("label", `"Med"`))
	ids["Soc"] = g.AddNode(graph.NewTuple("label", `"Soc"`))

	mustAdd(g, ids["DB"], ids["Gen"])  // CS→Bio in 1
	mustAdd(g, ids["Gen"], ids["Eco"]) // Bio chain
	mustAdd(g, ids["Eco"], ids["Soc"]) // Bio→Soc in ≤2 for both Gen and Eco
	mustAdd(g, ids["Soc"], ids["Med"]) // Bio→Med in ≤3
	mustAdd(g, ids["Med"], ids["DB"])  // Med→CS (*)
	mustAdd(g, ids["AI"], ids["Chem"]) // AI's only outlet: cannot reach Soc in 3
	mustAdd(g, ids["Chem"], ids["AI"])
	return p, g, ids, graph.Delete(ids["DB"], ids["Gen"])
}

// FriendFeed builds pattern P3 and data graph G3 of Fig. 4, plus the edge
// insertions e1..e5. Pattern nodes: CTO=0, DB=1, Bio=2 with edges CTO→DB(2),
// CTO→Bio(1), DB→Bio(1), DB→CTO(*).
//
// The initial maximum match is CTO→{Ann}, DB→{Pat, Dan}, Bio→{Bill, Mat,
// Tom} (Bio is a leaf pattern node, so every biologist matches — the
// paper's Fig. 5 result graph shows only the nodes connected to other
// matches). Applying e2 = insert(Don→Pat) makes Don a new CTO match; the
// remaining insertions only add result-graph edges, mirroring Example 4.2.
func FriendFeed() (*pattern.Pattern, *graph.Graph, map[string]graph.NodeID, []graph.Update) {
	p := pattern.New()
	cto := p.AddNode(pattern.Label("CTO"))
	db := p.AddNode(pattern.Label("DB"))
	bio := p.AddNode(pattern.Label("Bio"))
	mustEdge(p, cto, db, 2)
	mustEdge(p, cto, bio, 1)
	mustEdge(p, db, bio, 1)
	mustEdge(p, db, cto, pattern.Unbounded)

	g := graph.New()
	ids := map[string]graph.NodeID{}
	add := func(name, job string) graph.NodeID {
		id := g.AddNode(graph.NewTuple("name", `"`+name+`"`, "label", `"`+job+`"`))
		ids[name] = id
		return id
	}
	ann := add("Ann", "CTO")
	pat := add("Pat", "DB")
	dan := add("Dan", "DB")
	bill := add("Bill", "Bio")
	mat := add("Mat", "Bio")
	don := add("Don", "CTO")
	tom := add("Tom", "Bio")
	ross := add("Ross", "Med")

	mustAdd(g, ann, pat)  // CTO→DB in 1
	mustAdd(g, ann, bill) // CTO→Bio in 1
	mustAdd(g, pat, bill) // DB→Bio in 1
	mustAdd(g, pat, dan)
	mustAdd(g, dan, mat) // DB→Bio in 1
	mustAdd(g, dan, ann) // DB→CTO (*)
	mustAdd(g, don, tom) // Don already sees a biologist...
	mustAdd(g, tom, ross)
	mustAdd(g, ross, don)

	// Don lacks a DB researcher within 2 hops until e2 lands.
	updates := []graph.Update{
		graph.Insert(ross, dan), // e1
		graph.Insert(don, pat),  // e2: the insertion Example 4.2 walks through
		graph.Insert(pat, don),  // e3
		graph.Insert(dan, tom),  // e4
		graph.Insert(mat, ross), // e5
	}
	return p, g, ids, updates
}

// SimWitness builds the unboundedness witness of Fig. 6 (Theorem 5.1(1)):
// a single-node pattern with a self-loop over label a, and a graph of two
// disjoint n-node chains. Inserting e1 = (v_n, v_{n+1}) keeps the match
// empty; also inserting e2 = (v_{2n}, v_1) closes a cycle and makes all 2n
// nodes match at once — |ΔM| jumps from 0 to 2n on a unit update.
func SimWitness(n int) (*pattern.Pattern, *graph.Graph, e1e2) {
	p := pattern.New()
	v := p.AddNode(pattern.Label("a"))
	mustEdge(p, v, v, 1)

	g := graph.New()
	nodes := make([]graph.NodeID, 2*n)
	for i := range nodes {
		nodes[i] = g.AddNode(graph.NewTuple("label", `"a"`))
	}
	for i := 0; i+1 < n; i++ {
		mustAdd(g, nodes[i], nodes[i+1])
		mustAdd(g, nodes[n+i], nodes[n+i+1])
	}
	return p, g, e1e2{
		E1: graph.Insert(nodes[n-1], nodes[n]),
		E2: graph.Insert(nodes[2*n-1], nodes[0]),
	}
}

// e1e2 carries the two adversarial unit insertions of a witness family.
type e1e2 struct{ E1, E2 graph.Update }

// BSimWitness builds the unboundedness witness of Fig. 11 (Theorem 6.1(1)):
// pattern u→t labeled *, and a graph of three chains — u-labeled u1..ul,
// bridge nodes v1..vm, t-labeled t1..tn — plus edge (tn, u1). E1 and E2
// splice the chains together; only after both do all u-nodes match.
func BSimWitness(l, m, n int) (*pattern.Pattern, *graph.Graph, e1e2) {
	p := pattern.New()
	u := p.AddNode(pattern.Label("u"))
	t := p.AddNode(pattern.Label("t"))
	mustEdge(p, u, t, pattern.Unbounded)

	g := graph.New()
	us := addChain(g, l, "u")
	vs := addChain(g, m, "v")
	ts := addChain(g, n, "t")
	mustAdd(g, ts[n-1], us[0])
	return p, g, e1e2{
		E1: graph.Insert(us[l-1], vs[0]),
		E2: graph.Insert(vs[m-1], ts[0]),
	}
}

// IsoWitness builds the unboundedness witness of Fig. 15 (Theorem 7.1(2)):
// a tree pattern rooted at a0 with an m-chain and an n-chain of a-labeled
// nodes, and a forest of an isolated a0 plus a 2m-chain and a 2n-chain.
// Only after both E1 = (a0, a1) and E2 = (a0, a_{2m+1}) are inserted does
// the graph contain a subgraph isomorphic to the pattern.
func IsoWitness(m, n int) (*pattern.Pattern, *graph.Graph, e1e2) {
	p := pattern.New()
	root := p.AddNode(pattern.Label("a"))
	prev := root
	for i := 0; i < m; i++ {
		w := p.AddNode(pattern.Label("a"))
		mustEdge(p, prev, w, 1)
		prev = w
	}
	prev = root
	for i := 0; i < n; i++ {
		w := p.AddNode(pattern.Label("a"))
		mustEdge(p, prev, w, 1)
		prev = w
	}

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	left := addChain(g, 2*m, "a")
	right := addChain(g, 2*n, "a")
	return p, g, e1e2{
		E1: graph.Insert(a0, left[0]),
		E2: graph.Insert(a0, right[0]),
	}
}

func addChain(g *graph.Graph, n int, label string) []graph.NodeID {
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(graph.NewTuple("label", `"`+label+`"`))
		if i > 0 {
			mustAdd(g, nodes[i-1], nodes[i])
		}
	}
	return nodes
}

func mustEdge(p *pattern.Pattern, u, v pattern.NodeID, bound int) {
	if err := p.AddEdge(u, v, bound); err != nil {
		panic(fmt.Sprintf("fixtures: %v", err))
	}
}

func mustAdd(g *graph.Graph, u, v graph.NodeID) {
	if _, err := g.AddEdge(u, v); err != nil {
		panic(fmt.Sprintf("fixtures: %v", err))
	}
}
