package fixtures

import (
	"testing"

	"gpm/internal/graph"
)

func TestDrugRingShape(t *testing.T) {
	p, g := DrugRing(4)
	if p.NumNodes() != 4 || p.NumEdges() != 6 {
		t.Fatalf("pattern shape: %v", p)
	}
	// 1 boss + 4 AMs + 4 chains of 3 workers.
	if g.NumNodes() != 1+4+12 {
		t.Fatalf("graph nodes = %d", g.NumNodes())
	}
	// Am (the last AM) carries the secretary attribute.
	s := 0
	for v := 0; v < g.NumNodes(); v++ {
		if _, ok := g.Attrs(v).Get("s"); ok {
			s++
		}
	}
	if s != 1 {
		t.Fatalf("%d secretary nodes, want 1", s)
	}
}

func TestTeamFormationIDs(t *testing.T) {
	_, g, ids := TeamFormation()
	for _, name := range []string{"a", "se", "hr", "hrse", "dml", "dmr"} {
		if _, ok := ids[name]; !ok {
			t.Fatalf("missing id %q", name)
		}
	}
	if g.NumNodes() != len(ids) {
		t.Fatalf("nodes = %d, ids = %d", g.NumNodes(), len(ids))
	}
}

func TestCollaborationCutIsEdge(t *testing.T) {
	_, g, ids, cut := Collaboration()
	if cut.Op != graph.DeleteEdge {
		t.Fatal("cut should be a deletion")
	}
	if !g.HasEdge(cut.From, cut.To) {
		t.Fatal("cut edge missing from graph")
	}
	if cut.From != ids["DB"] || cut.To != ids["Gen"] {
		t.Fatal("cut should be (DB, Gen)")
	}
}

func TestFriendFeedUpdatesAreNew(t *testing.T) {
	_, g, _, ups := FriendFeed()
	if len(ups) != 5 {
		t.Fatalf("want e1..e5, got %d", len(ups))
	}
	for _, up := range ups {
		if up.Op != graph.InsertEdge {
			t.Fatalf("update %v should be an insertion", up)
		}
		if g.HasEdge(up.From, up.To) {
			t.Fatalf("update %v already present", up)
		}
	}
}

func TestWitnessShapes(t *testing.T) {
	p, g, ups := SimWitness(5)
	if p.NumNodes() != 1 || g.NumNodes() != 10 {
		t.Fatal("SimWitness shape wrong")
	}
	if g.HasEdge(ups.E1.From, ups.E1.To) || g.HasEdge(ups.E2.From, ups.E2.To) {
		t.Fatal("witness edges should not pre-exist")
	}

	p2, g2, _ := BSimWitness(3, 4, 5)
	if p2.NumEdges() != 1 || g2.NumNodes() != 12 {
		t.Fatal("BSimWitness shape wrong")
	}

	p3, g3, _ := IsoWitness(2, 3)
	if p3.NumNodes() != 1+2+3 {
		t.Fatalf("IsoWitness pattern nodes = %d", p3.NumNodes())
	}
	if g3.NumNodes() != 1+4+6 {
		t.Fatalf("IsoWitness graph nodes = %d", g3.NumNodes())
	}
	if !p3.IsDAG() {
		t.Fatal("IsoWitness pattern should be a tree")
	}
}
