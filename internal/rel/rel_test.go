package rel

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 2)
	if s.Len() != 3 || !s.Has(1) || s.Has(9) {
		t.Fatalf("set = %v", s)
	}
	if s.Add(1) {
		t.Fatal("re-adding should report false")
	}
	if !s.Add(9) || !s.Has(9) {
		t.Fatal("Add(9) failed")
	}
	if !s.Remove(9) || s.Remove(9) {
		t.Fatal("Remove semantics broken")
	}
	want := []int{1, 2, 3}
	if got := s.Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet(1, 2)
	c := s.Clone()
	c.Add(3)
	if s.Has(3) {
		t.Fatal("clone shares storage")
	}
	if !s.Equal(NewSet(2, 1)) {
		t.Fatal("Equal broken")
	}
	if s.Equal(c) {
		t.Fatal("Equal false negative expected")
	}
}

// Property: for arbitrary membership vectors, union-style Add/Remove
// sequences keep Has consistent with a reference map (testing/quick).
func TestSetQuickAgainstReference(t *testing.T) {
	f := func(ops []uint8, keys []uint8) bool {
		s := NewSet()
		ref := map[int]bool{}
		n := len(ops)
		if len(keys) < n {
			n = len(keys)
		}
		for i := 0; i < n; i++ {
			k := int(keys[i] % 16)
			if ops[i]%2 == 0 {
				s.Add(k)
				ref[k] = true
			} else {
				s.Remove(k)
				delete(ref, k)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if !s.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if !r.Empty() || r.Total() {
		t.Fatal("fresh relation should be empty and not total")
	}
	r[0].Add(5)
	if r.Empty() || r.Total() || r.Size() != 1 {
		t.Fatalf("relation state wrong: %v", r)
	}
	r[1].Add(6)
	if !r.Total() {
		t.Fatal("should be total now")
	}
	if !r.Has(0, 5) || r.Has(0, 6) {
		t.Fatal("Has broken")
	}
	r.Clear()
	if !r.Empty() {
		t.Fatal("Clear failed")
	}
}

func TestRelationDiff(t *testing.T) {
	a := NewRelation(2)
	a[0].Add(1)
	a[1].Add(2)
	b := a.Clone()
	b[0].Remove(1)
	b[0].Add(3)
	removed, added := a.Diff(b)
	if len(removed) != 1 || removed[0] != (Pair{0, 1}) {
		t.Fatalf("removed = %v", removed)
	}
	if len(added) != 1 || added[0] != (Pair{0, 3}) {
		t.Fatalf("added = %v", added)
	}
}

func TestRelationPairsSorted(t *testing.T) {
	r := NewRelation(2)
	r[1].Add(9)
	r[0].Add(7)
	r[0].Add(3)
	ps := r.Pairs()
	want := []Pair{{0, 3}, {0, 7}, {1, 9}}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("Pairs = %v, want %v", ps, want)
	}
}

// Property: Diff(r, r2) and reapplying the delta reconstructs r2
// (testing/quick over random relations).
func TestRelationDiffRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		a := NewRelation(3)
		b := NewRelation(3)
		for u := 0; u < 3; u++ {
			for v := 0; v < 8; v++ {
				if rng.Intn(2) == 0 {
					a[u].Add(v)
				}
				if rng.Intn(2) == 0 {
					b[u].Add(v)
				}
			}
		}
		removed, added := a.Diff(b)
		c := a.Clone()
		for _, p := range removed {
			c[p.U].Remove(p.V)
		}
		for _, p := range added {
			c[p.U].Add(p.V)
		}
		if !c.Equal(b) {
			t.Fatalf("trial %d: delta does not reconstruct: a=%v b=%v c=%v", trial, a, b, c)
		}
	}
}

func TestStringRepresentations(t *testing.T) {
	s := NewSet(2, 1)
	if s.String() != "{1 2}" {
		t.Fatalf("Set.String = %q", s.String())
	}
	r := NewRelation(1)
	r[0].Add(4)
	if r.String() != "{0->{4}}" {
		t.Fatalf("Relation.String = %q", r.String())
	}
}

func TestDeltaApplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		np := 1 + rng.Intn(4)
		old := NewRelation(np)
		new_ := NewRelation(np)
		for u := 0; u < np; u++ {
			for v := 0; v < 12; v++ {
				if rng.Intn(2) == 0 {
					old[u].Add(v)
				}
				if rng.Intn(2) == 0 {
					new_[u].Add(v)
				}
			}
		}
		d := DeltaOf(old, new_)
		got := old.Clone()
		d.Apply(got)
		if !got.Equal(new_) {
			t.Fatalf("trial %d: old ⊕ DeltaOf(old,new) != new\nold=%v\nnew=%v\nΔ=%+v", trial, old, new_, d)
		}
		if d.Size() != len(d.Removed)+len(d.Added) {
			t.Fatal("Size mismatch")
		}
		if d.Empty() != (len(d.Removed) == 0 && len(d.Added) == 0) {
			t.Fatal("Empty mismatch")
		}
	}
}

func TestDeltaSortDeterministic(t *testing.T) {
	d := Delta{
		Removed: []Pair{{2, 5}, {0, 9}, {2, 1}},
		Added:   []Pair{{1, 4}, {1, 0}},
	}
	d.Sort()
	if !reflect.DeepEqual(d.Removed, []Pair{{0, 9}, {2, 1}, {2, 5}}) {
		t.Fatalf("Removed = %v", d.Removed)
	}
	if !reflect.DeepEqual(d.Added, []Pair{{1, 0}, {1, 4}}) {
		t.Fatalf("Added = %v", d.Added)
	}
}
