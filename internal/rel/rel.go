// Package rel provides node sets and match relations — the S ⊆ Vp × V
// binary relations that (bounded) simulation computes, represented as one
// set of data-graph nodes per pattern node.
package rel

import (
	"fmt"
	"sort"
	"strings"

	"gpm/internal/graph"
)

// Set is a set of data-graph nodes. The zero value is not usable; construct
// with NewSet.
type Set map[graph.NodeID]struct{}

// NewSet returns an empty set with optional initial members.
func NewSet(members ...graph.NodeID) Set {
	s := make(Set, len(members))
	for _, v := range members {
		s[v] = struct{}{}
	}
	return s
}

// Add inserts v, reporting whether it was absent.
func (s Set) Add(v graph.NodeID) bool {
	if _, ok := s[v]; ok {
		return false
	}
	s[v] = struct{}{}
	return true
}

// Remove deletes v, reporting whether it was present.
func (s Set) Remove(v graph.NodeID) bool {
	if _, ok := s[v]; !ok {
		return false
	}
	delete(s, v)
	return true
}

// Has reports membership.
func (s Set) Has(v graph.NodeID) bool {
	_, ok := s[v]
	return ok
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for v := range s {
		c[v] = struct{}{}
	}
	return c
}

// Sorted returns the members in ascending order.
func (s Set) Sorted() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Equal reports whether two sets have the same members.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for v := range s {
		if _, ok := t[v]; !ok {
			return false
		}
	}
	return true
}

func (s Set) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, v := range ids {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Relation is a match relation S ⊆ Vp × V, stored as the set of data nodes
// matching each pattern node: Relation[u] = {v : (u, v) ∈ S}.
type Relation []Set

// NewRelation returns a relation over np pattern nodes with empty sets.
func NewRelation(np int) Relation {
	r := make(Relation, np)
	for i := range r {
		r[i] = NewSet()
	}
	return r
}

// Has reports whether (u, v) ∈ S.
func (r Relation) Has(u int, v graph.NodeID) bool { return r[u].Has(v) }

// Size returns |S|, the number of pairs.
func (r Relation) Size() int {
	n := 0
	for _, s := range r {
		n += len(s)
	}
	return n
}

// Empty reports whether the relation has no pairs.
func (r Relation) Empty() bool { return r.Size() == 0 }

// Total reports whether every pattern node has at least one match — the
// condition (1) of the bounded-simulation definition. A maximum match that
// is not total is the empty relation by the paper's convention.
func (r Relation) Total() bool {
	for _, s := range r {
		if len(s) == 0 {
			return false
		}
	}
	return true
}

// Clear empties every set in place (the "P does not match G" outcome).
func (r Relation) Clear() {
	for i := range r {
		r[i] = NewSet()
	}
}

// Clone returns a deep copy.
func (r Relation) Clone() Relation {
	c := make(Relation, len(r))
	for i, s := range r {
		c[i] = s.Clone()
	}
	return c
}

// Equal reports whether two relations contain the same pairs.
func (r Relation) Equal(t Relation) bool {
	if len(r) != len(t) {
		return false
	}
	for i := range r {
		if !r[i].Equal(t[i]) {
			return false
		}
	}
	return true
}

// Pair is a single (pattern node, data node) match. The JSON names are
// the v1 wire format's: {"u": <pattern node>, "v": <data node>}.
type Pair struct {
	U int          `json:"u"` // pattern node
	V graph.NodeID `json:"v"` // data node
}

// Pairs returns the relation as a sorted list of pairs.
func (r Relation) Pairs() []Pair {
	ps := make([]Pair, 0, r.Size())
	for u, s := range r {
		for _, v := range s.Sorted() {
			ps = append(ps, Pair{U: u, V: v})
		}
	}
	return ps
}

// Diff returns the pairs in r but not in t (removed) and in t but not in r
// (added) — the ΔM of the incremental matching problem.
func (r Relation) Diff(t Relation) (removed, added []Pair) {
	for u := range r {
		for v := range r[u] {
			if !t[u].Has(v) {
				removed = append(removed, Pair{u, v})
			}
		}
	}
	for u := range t {
		for v := range t[u] {
			if u >= len(r) || !r[u].Has(v) {
				added = append(added, Pair{u, v})
			}
		}
	}
	sortPairs(removed)
	sortPairs(added)
	return removed, added
}

// Delta is the change ΔM between two match relations: the pairs removed
// from and added to the old relation. It is the unit the incremental
// engines report per update and the continuous-query layer delivers to
// subscribers — applying a Delta to the old relation yields the new one.
type Delta struct {
	Removed []Pair
	Added   []Pair
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// Size returns |ΔM|, the number of changed pairs.
func (d Delta) Size() int { return len(d.Removed) + len(d.Added) }

// Apply mutates r to the post-delta relation: removals first, then
// additions. r must be the relation the delta was computed against (or an
// accumulation of all prior deltas since a snapshot).
func (d Delta) Apply(r Relation) {
	for _, p := range d.Removed {
		r[p.U].Remove(p.V)
	}
	for _, p := range d.Added {
		r[p.U].Add(p.V)
	}
}

// Sort orders both pair lists canonically (by pattern node, then data
// node), so deltas compare and serialize deterministically.
func (d Delta) Sort() {
	sortPairs(d.Removed)
	sortPairs(d.Added)
}

// DeltaOf computes the delta from old to new: old ⊕ DeltaOf(old, new) = new.
func DeltaOf(old, new Relation) Delta {
	removed, added := old.Diff(new)
	return Delta{Removed: removed, Added: added}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].U != ps[j].U {
			return ps[i].U < ps[j].U
		}
		return ps[i].V < ps[j].V
	})
}

func (r Relation) String() string {
	var b strings.Builder
	b.WriteString("{")
	for u, s := range r {
		if u > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d->%s", u, s)
	}
	b.WriteString("}")
	return b.String()
}
