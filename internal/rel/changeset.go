package rel

import "gpm/internal/graph"

// ChangeSet accumulates the internal match() mutations of one engine
// write, with add/remove cancellation, so the write can report its visible
// ΔM without diffing full relations. Both incremental engines share it:
// arm one with NewChangeSet before mutating, record every removal and
// promotion, and convert to the user-visible delta with End.
//
// All methods are nil-receiver safe, so recording sites need no guard for
// the unarmed case (e.g. the engines' initial rebuild).
type ChangeSet struct {
	removed  map[Pair]struct{}
	added    map[Pair]struct{}
	wasTotal bool
}

// NewChangeSet arms a change-set against the pre-write relation (whose
// totality decides how End interprets the accumulated changes).
func NewChangeSet(current Relation) *ChangeSet {
	return &ChangeSet{
		removed:  make(map[Pair]struct{}),
		added:    make(map[Pair]struct{}),
		wasTotal: current.Total(),
	}
}

// NoteRemoved records a match removal (cancelling a prior addition of the
// same pair).
func (c *ChangeSet) NoteRemoved(u int, v graph.NodeID) {
	if c == nil {
		return
	}
	p := Pair{U: u, V: v}
	if _, ok := c.added[p]; ok {
		delete(c.added, p)
		return
	}
	c.removed[p] = struct{}{}
}

// NoteAdded records a match promotion (cancelling a prior removal of the
// same pair).
func (c *ChangeSet) NoteAdded(u int, v graph.NodeID) {
	if c == nil {
		return
	}
	p := Pair{U: u, V: v}
	if _, ok := c.removed[p]; ok {
		delete(c.removed, p)
		return
	}
	c.added[p] = struct{}{}
}

// End converts the accumulated changes to the user-visible delta under the
// totality convention: the visible result is match when every pattern node
// has a match and ∅ otherwise, so a totality flip emits the whole old (or
// new) relation. match must be the post-write relation. The returned delta
// is sorted; it is empty exactly when the visible result did not change,
// which is the caller's cue to keep any cached result snapshot.
func (c *ChangeSet) End(match Relation) Delta {
	if c == nil || (len(c.removed) == 0 && len(c.added) == 0) {
		return Delta{}
	}
	isTotal := match.Total()
	var d Delta
	switch {
	case c.wasTotal && isTotal:
		for p := range c.removed {
			d.Removed = append(d.Removed, p)
		}
		for p := range c.added {
			d.Added = append(d.Added, p)
		}
	case c.wasTotal && !isTotal:
		// Visible result collapsed to ∅: emit the entire old match,
		// reconstructed as (current ∪ removed) \ added.
		for u := range match {
			for v := range match[u] {
				if _, ok := c.added[Pair{U: u, V: v}]; !ok {
					d.Removed = append(d.Removed, Pair{U: u, V: v})
				}
			}
		}
		for p := range c.removed {
			d.Removed = append(d.Removed, p)
		}
	case !c.wasTotal && isTotal:
		// ∅ → total: the entire new match becomes visible.
		for u := range match {
			for v := range match[u] {
				d.Added = append(d.Added, Pair{U: u, V: v})
			}
		}
	}
	d.Sort()
	return d
}
