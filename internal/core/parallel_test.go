package core

import (
	"testing"

	"gpm/internal/generator"
)

// TestMatchWorkersEquivalence checks that Match with a parallel
// candidate-set construction returns exactly the serial relation.
func TestMatchWorkersEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := generator.Synthetic(300, 1200, generator.DefaultSchema(3), seed)
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 1, K: 3}, seed)
		serial := Match(p, g, WithWorkers(1))
		for _, workers := range []int{2, 4, 0} {
			got := Match(p, g, WithWorkers(workers))
			if !got.Equal(serial) {
				t.Fatalf("seed %d workers %d: parallel match differs from serial\nparallel: %v\nserial:   %v",
					seed, workers, got, serial)
			}
		}
	}
}
