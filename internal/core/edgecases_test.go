package core

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func TestMatchEdgelessPattern(t *testing.T) {
	// A pattern with no edges matches every predicate-satisfying node.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	g := graph.New()
	g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddNode(graph.NewTuple("label", `"b"`))
	r := Match(p, g)
	if r[a].Len() != 2 {
		t.Fatalf("match = %v, want both a-nodes", r[a])
	}
}

func TestMatchDisconnectedPattern(t *testing.T) {
	// Two disconnected pattern components: both must be matched or the
	// whole result is empty (totality).
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	c := p.AddNode(pattern.Label("zzz")) // matches nothing
	p.AddEdge(a, b, 1)
	_ = c
	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(ga, gb)
	if r := Match(p, g); !r.Empty() {
		t.Fatalf("unmatched isolated pattern node must empty the match: %v", r)
	}
}

func TestMatchPredicateOperators(t *testing.T) {
	// Numeric range predicates behave like the paper's search conditions.
	p := pattern.New()
	u := p.AddNode(pattern.Predicate{}.
		Where("age", pattern.OpGT, graph.Int(20)).
		Where("age", pattern.OpLE, graph.Int(30)))
	g := graph.New()
	in := g.AddNode(graph.NewTuple("age", "25"))
	low := g.AddNode(graph.NewTuple("age", "20"))
	high := g.AddNode(graph.NewTuple("age", "31"))
	edge := g.AddNode(graph.NewTuple("age", "30"))
	r := Match(p, g)
	if !r[u].Has(in) || !r[u].Has(edge) {
		t.Fatalf("range endpoints wrong: %v", r[u])
	}
	if r[u].Has(low) || r[u].Has(high) {
		t.Fatalf("out-of-range nodes matched: %v", r[u])
	}
}

func TestMatchLargeBoundEqualsUnbounded(t *testing.T) {
	// On a graph of diameter d, any bound >= d behaves like *.
	for seed := int64(0); seed < 10; seed++ {
		g := generator.RandomGraph(12, 25, 2, seed)
		pStar := generator.RandomPattern(3, 4, 2, 1, seed+50)
		// Copy topology with * bounds and with bound = |V| (≥ any distance).
		pBig := pStar.Clone()
		star := pStar.Clone()
		for _, e := range pStar.Edges() {
			star.AddEdge(e.From, e.To, pattern.Unbounded)
			pBig.AddEdge(e.From, e.To, g.NumNodes())
		}
		if !Match(star, g).Equal(Match(pBig, g)) {
			t.Fatalf("seed %d: bound |V| differs from *", seed)
		}
	}
}

func TestHoldsDetectsBrokenTotality(t *testing.T) {
	p := pattern.New()
	p.AddNode(pattern.Label("a"))
	p.AddNode(pattern.Label("b"))
	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	r := Match(p, g)
	if !r.Empty() {
		t.Fatal("expected empty")
	}
	bogus := r.Clone()
	bogus[0].Add(ga) // partial relation: not total, not empty
	if Holds(p, g, bogus) {
		t.Fatal("Holds accepted a non-total nonempty relation")
	}
}
