package core

// Edge-colored bounded simulation — the extension sketched in the remark of
// Section 2.2: data-graph edges carry relationship labels ("colors") and a
// colored pattern edge maps only to paths whose every edge carries that
// color, so a relationship chain in the pattern is matched by the same
// relationship in the data graph. Plain (uncolored) pattern edges behave
// exactly as in Match.
//
// Colored distances cannot come from a generic distance oracle (they depend
// on the color), so MatchColored walks color-restricted BFS for colored
// edges and uses the standard machinery for plain ones. Incremental engines
// do not support colored patterns; they reject them at construction.

import (
	"gpm/internal/distance"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// MatchColored computes the maximum bounded-simulation match of a pattern
// that may contain colored edges. For patterns without colors it is
// equivalent to Match.
func MatchColored(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	if !p.HasColors() {
		return Match(p, g)
	}
	np, n := p.NumNodes(), g.NumNodes()
	mat := rel.NewRelation(np)
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		needChild := p.OutDegree(u) > 0
		for v := 0; v < n; v++ {
			if needChild && g.OutDegree(v) == 0 {
				continue
			}
			if pred.Eval(g.Attrs(v)) {
				mat[u].Add(v)
			}
		}
		if mat[u].Len() == 0 {
			return rel.NewRelation(np)
		}
	}

	edges := p.Edges()
	bfs := distance.NewBFS(g)
	// descVisit/ancVisit dispatch per edge: color-restricted walk for
	// colored edges, plain nonempty walk otherwise.
	descVisit := func(pe pattern.Edge, v graph.NodeID, fn func(w graph.NodeID) bool) {
		if pe.Color == "" {
			bfs.DescNonempty(v, pe.Bound, func(w graph.NodeID, d int) bool { return fn(w) })
			return
		}
		colorWalk(g, v, graph.Forward, pe.Bound, pe.Color, fn)
	}
	ancVisit := func(pe pattern.Edge, v graph.NodeID, fn func(w graph.NodeID) bool) {
		if pe.Color == "" {
			bfs.AncNonempty(v, pe.Bound, func(w graph.NodeID, d int) bool { return fn(w) })
			return
		}
		colorWalk(g, v, graph.Reverse, pe.Bound, pe.Color, fn)
	}

	cnt := make([]map[graph.NodeID]int32, len(edges))
	type removal struct {
		u int
		v graph.NodeID
	}
	var queue []removal
	removeMatch := func(u int, v graph.NodeID) {
		if mat[u].Remove(v) {
			queue = append(queue, removal{u, v})
		}
	}
	for e, pe := range edges {
		cnt[e] = make(map[graph.NodeID]int32, mat[pe.From].Len())
		tgt := mat[pe.To]
		for v := range mat[pe.From] {
			c := int32(0)
			descVisit(pe, v, func(w graph.NodeID) bool {
				if tgt.Has(w) {
					c++
				}
				return true
			})
			cnt[e][v] = c
		}
	}
	for e, pe := range edges {
		for v, c := range cnt[e] {
			if c == 0 {
				removeMatch(pe.From, v)
			}
		}
	}

	inEdges := make([][]int, np)
	for e, pe := range edges {
		inEdges[pe.To] = append(inEdges[pe.To], e)
	}
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range inEdges[rm.u] {
			pe := edges[e]
			src := mat[pe.From]
			ancVisit(pe, rm.v, func(w graph.NodeID) bool {
				if src.Has(w) {
					cnt[e][w]--
					if cnt[e][w] == 0 {
						removeMatch(pe.From, w)
					}
				}
				return true
			})
		}
		if mat[rm.u].Len() == 0 {
			return rel.NewRelation(np)
		}
	}
	if !mat.Total() {
		return rel.NewRelation(np)
	}
	return mat
}

// colorWalk visits every node connected to v by a nonempty path of length
// <= bound whose edges all carry the given label, in direction dir.
// Returning false from fn stops the walk.
func colorWalk(g *graph.Graph, v graph.NodeID, dir graph.Dir, bound int, color string, fn func(w graph.NodeID) bool) {
	if bound < 1 {
		return
	}
	labeled := func(from, to graph.NodeID) bool { return g.EdgeLabel(from, to) == color }
	adj := g.Out
	if dir == graph.Reverse {
		adj = g.In
	}
	edgeOK := func(x, w graph.NodeID) bool {
		if dir == graph.Forward {
			return labeled(x, w)
		}
		return labeled(w, x)
	}
	type qe struct {
		v graph.NodeID
		d int
	}
	seen := map[graph.NodeID]bool{}
	var queue []qe
	for _, w := range adj(v) {
		if edgeOK(v, w) && !seen[w] {
			seen[w] = true
			if !fn(w) {
				return
			}
			queue = append(queue, qe{w, 1})
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		if x.d >= bound {
			continue
		}
		for _, w := range adj(x.v) {
			if edgeOK(x.v, w) && !seen[w] {
				seen[w] = true
				if !fn(w) {
					return
				}
				queue = append(queue, qe{w, x.d + 1})
			}
		}
	}
}

// HoldsColored verifies a colored bounded simulation.
func HoldsColored(p *pattern.Pattern, g *graph.Graph, r rel.Relation) bool {
	if r.Empty() {
		return true
	}
	if !r.Total() {
		return false
	}
	bfs := distance.NewBFS(g)
	for u := range r {
		for v := range r[u] {
			if !p.Pred(u).Eval(g.Attrs(v)) {
				return false
			}
			for _, u2 := range p.Out(u) {
				bound, _ := p.Bound(u, u2)
				color := p.Color(u, u2)
				found := false
				if color == "" {
					for w := range r[u2] {
						if pattern.WithinBound(distance.NonemptyDist(bfs, g, v, w), bound) {
							found = true
							break
						}
					}
				} else {
					colorWalk(g, v, graph.Forward, bound, color, func(w graph.NodeID) bool {
						if r[u2].Has(w) {
							found = true
							return false
						}
						return true
					})
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}
