package core

import (
	"testing"

	"gpm/internal/distance"
	"gpm/internal/generator"
)

// Ablation: the three distance oracles behind Match (the design choice of
// Fig. 17(a,b)), measured with the oracle build amortized out so the
// per-match cost is visible.

func benchOracle(b *testing.B, build func() distance.Oracle) {
	g := generator.YouTube(0.02, 1)
	p := generator.Pattern(g, generator.PatternParams{Nodes: 4, Edges: 6, Preds: 2, K: 3}, 7)
	oracle := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Match(p, g, WithOracle(oracle))
	}
}

func BenchmarkMatchOracleMatrix(b *testing.B) {
	g := generator.YouTube(0.02, 1)
	benchOracle(b, func() distance.Oracle { return distance.NewMatrix(g) })
}

func BenchmarkMatchOracleTwoHop(b *testing.B) {
	g := generator.YouTube(0.02, 1)
	benchOracle(b, func() distance.Oracle { return distance.NewTwoHop(g) })
}

func BenchmarkMatchOracleBFS(b *testing.B) {
	g := generator.YouTube(0.02, 1)
	benchOracle(b, func() distance.Oracle { return distance.NewBFS(g) })
}

// Ablation: bound size. Larger k widens every desc/anc search.
func BenchmarkMatchBoundK(b *testing.B) {
	g := generator.YouTube(0.02, 1)
	for _, k := range []int{1, 2, 4} {
		p := generator.Pattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 2, K: k}, 7)
		b.Run(map[int]string{1: "k=1", 2: "k=2", 4: "k=4"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatchBFS(p, g)
			}
		})
	}
}

// Baseline sanity: Match against the naive definitional fixpoint.
func BenchmarkMatchVsNaive(b *testing.B) {
	g := generator.RandomGraph(60, 150, 3, 1)
	p := generator.RandomPattern(4, 5, 3, 3, 2)
	b.Run("Match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatchBFS(p, g)
		}
	})
	b.Run("NaiveBounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NaiveBounded(p, g)
		}
	})
}
