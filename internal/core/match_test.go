package core

import (
	"testing"

	"gpm/internal/fixtures"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
)

func TestMatchDrugRing(t *testing.T) {
	// Example 2.2(1): B→boss, AM→all Ai, S→Am, FW→all W nodes.
	p, g := fixtures.DrugRing(4)
	r := Match(p, g)
	const b, am, s, fw = 0, 1, 2, 3
	if r.Empty() {
		t.Fatal("P0 should match G0")
	}
	if r[b].Len() != 1 || !r[b].Has(0) {
		t.Fatalf("match(B) = %v, want {boss}", r[b])
	}
	if r[am].Len() != 4 {
		t.Fatalf("match(AM) = %v, want all 4 AMs", r[am])
	}
	if r[s].Len() != 1 {
		t.Fatalf("match(S) = %v, want only Am", r[s])
	}
	if r[fw].Len() != 12 {
		t.Fatalf("match(FW) = %v, want all 12 workers", r[fw])
	}
}

func TestMatchDrugRingNotIsomorphic(t *testing.T) {
	// The drug ring is found by bounded simulation although AM maps to many
	// nodes and S shares its match with AM — impossible for a bijection.
	p, g := fixtures.DrugRing(3)
	r := Match(p, g)
	const am, s = 1, 2
	for v := range r[s] {
		if !r[am].Has(v) {
			t.Fatalf("S match %d should also match AM", v)
		}
	}
}

func TestMatchTeamFormation(t *testing.T) {
	// Example 2.2(1): the P1/G1 match with the dual-role (HR,SE) node.
	p, g, ids := fixtures.TeamFormation()
	r := Match(p, g)
	const a, se, hr, dm = 0, 1, 2, 3
	check := func(u int, want ...graph.NodeID) {
		t.Helper()
		if r[u].Len() != len(want) {
			t.Fatalf("match(%d) = %v, want %v", u, r[u], want)
		}
		for _, w := range want {
			if !r[u].Has(w) {
				t.Fatalf("match(%d) = %v, missing %d", u, r[u], w)
			}
		}
	}
	check(a, ids["a"])
	check(se, ids["se"], ids["hrse"])
	check(hr, ids["hr"], ids["hrse"])
	check(dm, ids["dml"], ids["dmr"])
}

func TestMatchCollaboration(t *testing.T) {
	// Example 2.2(2): CS→DB only (AI cannot reach Soc within 3 hops).
	p, g, ids, cut := fixtures.Collaboration()
	r := Match(p, g)
	const cs, bio, med, soc = 0, 1, 2, 3
	if !r[cs].Has(ids["DB"]) || r[cs].Has(ids["AI"]) {
		t.Fatalf("match(CS) = %v, want {DB} without AI", r[cs])
	}
	if !r[bio].Has(ids["Gen"]) || !r[bio].Has(ids["Eco"]) {
		t.Fatalf("match(Bio) = %v", r[bio])
	}
	if !r[med].Has(ids["Med"]) || !r[soc].Has(ids["Soc"]) {
		t.Fatalf("match(Med/Soc) = %v / %v", r[med], r[soc])
	}

	// Example 2.2(3): dropping (DB, Gen) kills the only CS match, so the
	// maximum match collapses to the empty relation.
	g.Apply(cut)
	if r2 := Match(p, g); !r2.Empty() {
		t.Fatalf("after cut, match = %v, want empty", r2)
	}
}

func TestMatchFriendFeed(t *testing.T) {
	p, g, ids, _ := fixtures.FriendFeed()
	r := Match(p, g)
	const cto, db = 0, 1
	if !r[cto].Has(ids["Ann"]) || r[cto].Has(ids["Don"]) {
		t.Fatalf("match(CTO) = %v, want Ann but not Don", r[cto])
	}
	if !r[db].Has(ids["Pat"]) || !r[db].Has(ids["Dan"]) {
		t.Fatalf("match(DB) = %v", r[db])
	}
}

func TestMatchFriendFeedAfterInsertions(t *testing.T) {
	// Example 4.1: after ΔG3, Don becomes a CTO match.
	p, g, ids, ups := fixtures.FriendFeed()
	if _, err := g.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	r := Match(p, g)
	if !r[0].Has(ids["Don"]) {
		t.Fatalf("match(CTO) = %v, want Don added", r[0])
	}
	if r[0].Has(ids["Ross"]) {
		t.Fatal("Ross (Med) must never match CTO")
	}
}

func TestMatchOraclesAgree(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := generator.RandomGraph(16, 32, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 3, seed+500)
		bfs := MatchBFS(p, g)
		mtx := MatchMatrix(p, g)
		hop := MatchTwoHop(p, g)
		if !bfs.Equal(mtx) {
			t.Fatalf("seed %d: BFS=%v matrix=%v", seed, bfs, mtx)
		}
		if !bfs.Equal(hop) {
			t.Fatalf("seed %d: BFS=%v 2-hop=%v", seed, bfs, hop)
		}
	}
}

func TestMatchAgainstNaiveBounded(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		g := generator.RandomGraph(12, 26, 3, seed)
		p := generator.RandomPattern(4, 6, 3, 3, seed+500)
		got := Match(p, g)
		want := NaiveBounded(p, g)
		if !got.Equal(want) {
			t.Fatalf("seed %d: Match=%v naive=%v", seed, got, want)
		}
		if !Holds(p, g, got) {
			t.Fatalf("seed %d: result violates bounded simulation", seed)
		}
	}
}

func TestMatchReducesToSimulationOnNormalPatterns(t *testing.T) {
	// Remark (2) of Section 2.2: simulation is bounded simulation on normal
	// patterns.
	for seed := int64(200); seed < 240; seed++ {
		g := generator.RandomGraph(15, 32, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 1, seed+500)
		got := Match(p, g)
		want := simulation.Maximum(p, g)
		if !got.Equal(want) {
			t.Fatalf("seed %d: bounded=%v simulation=%v", seed, got, want)
		}
	}
}

func TestMatchUnboundedEdgeIsReachability(t *testing.T) {
	// u →* t over chains: before splicing, no u-node reaches a t-node.
	p, g, ups := fixtures.BSimWitness(4, 3, 4)
	if r := Match(p, g); !r.Empty() {
		t.Fatalf("before splicing: %v, want empty", r)
	}
	g.Apply(ups.E1)
	if r := Match(p, g); !r.Empty() {
		t.Fatalf("after e1 only: %v, want empty", r)
	}
	g.Apply(ups.E2)
	r := Match(p, g)
	if r[0].Len() != 4 || r[1].Len() != 4 {
		t.Fatalf("after both: u:%v t:%v, want all 4 u-nodes and 4 t-nodes", r[0], r[1])
	}
}

func TestMatchSelfDistanceNeedsCycle(t *testing.T) {
	// When a node can only support a pattern self-edge with itself, the
	// nonempty-path semantics require a cycle within the bound: an empty
	// path never satisfies len(π) >= 1.
	selfEdge := func(bound int) *pattern.Pattern {
		p := pattern.New()
		a := p.AddNode(pattern.Label("a"))
		p.AddEdge(a, a, bound)
		return p
	}
	// n0 (label a) sits on a 2-cycle through n1 (label c, never a match).
	g := graph.New()
	n0 := g.AddNode(graph.NewTuple("label", `"a"`))
	n1 := g.AddNode(graph.NewTuple("label", `"c"`))
	g.AddEdge(n0, n1)
	g.AddEdge(n1, n0)

	if r := Match(selfEdge(2), g); !r[0].Has(n0) {
		t.Fatalf("bound 2: match = %v, want n0 (cycle length 2)", r[0])
	}
	if r := Match(selfEdge(1), g); !r.Empty() {
		t.Fatalf("bound 1: match = %v, want empty (cycle too long)", r)
	}

	// A self-loop satisfies bound 1.
	g2 := graph.New()
	s := g2.AddNode(graph.NewTuple("label", `"a"`))
	g2.AddEdge(s, s)
	if r := Match(selfEdge(1), g2); !r[0].Has(s) {
		t.Fatalf("self-loop: match = %v, want {s}", r[0])
	}
}

func TestMatchOutDegreeGuard(t *testing.T) {
	// A pattern node with children cannot match a sink node even if a
	// distance oracle would allow an unbounded wander (line 6 of Fig. 3).
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, pattern.Unbounded)

	g := graph.New()
	sink := g.AddNode(graph.NewTuple("label", `"a"`)) // sink: no out-edges
	src := g.AddNode(graph.NewTuple("label", `"a"`))
	tgt := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(src, tgt)

	r := Match(p, g)
	if r[a].Has(sink) {
		t.Fatalf("sink node matched a parent pattern node: %v", r[a])
	}
	if !r[a].Has(src) || !r[b].Has(tgt) {
		t.Fatalf("expected src/tgt match: %v", r)
	}
}

func TestMatchEmptyGraph(t *testing.T) {
	p := pattern.New()
	p.AddNode(pattern.Label("a"))
	g := graph.New()
	if r := Match(p, g); !r.Empty() {
		t.Fatalf("empty graph: %v", r)
	}
}

func TestMatchWorstCaseCyclePattern(t *testing.T) {
	// The remark after Theorem 3.1: a 2-node cycle pattern over an a-chain
	// must conclude "no match" (every chain node eventually falls out).
	p := pattern.New()
	u1 := p.AddNode(pattern.Label("a"))
	u2 := p.AddNode(pattern.Label("a"))
	p.AddEdge(u1, u2, 1)
	p.AddEdge(u2, u1, 1)
	g := graph.New()
	const k = 30
	for i := 0; i < k; i++ {
		g.AddNode(graph.NewTuple("label", `"a"`))
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	if r := Match(p, g); !r.Empty() {
		t.Fatalf("chain vs cycle pattern: %v, want empty", r)
	}
}
