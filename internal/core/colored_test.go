package core

import (
	"math/rand"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func TestMatchColoredRequiresUniformChain(t *testing.T) {
	// Pattern a →(friend, ≤2) b. Data: a0 -friend-> x -friend-> b0 matches;
	// a1 -friend-> y -cites-> b1 does not (mixed chain).
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	if err := p.AddColoredEdge(a, b, 2, "friend"); err != nil {
		t.Fatal(err)
	}

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	x := g.AddNode(graph.NewTuple("label", `"x"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	a1 := g.AddNode(graph.NewTuple("label", `"a"`))
	y := g.AddNode(graph.NewTuple("label", `"x"`))
	b1 := g.AddNode(graph.NewTuple("label", `"b"`))
	mustLabeled(t, g, a0, x, "friend")
	mustLabeled(t, g, x, b0, "friend")
	mustLabeled(t, g, a1, y, "friend")
	mustLabeled(t, g, y, b1, "cites")

	r := MatchColored(p, g)
	if !r[a].Has(a0) {
		t.Fatalf("a0 should match via the friend chain: %v", r)
	}
	if r[a].Has(a1) {
		t.Fatalf("a1 must not match via a mixed chain: %v", r)
	}
	if !r[b].Has(b0) || !r[b].Has(b1) {
		// b is a leaf pattern node: both b-nodes satisfy it.
		t.Fatalf("match(b) = %v", r[b])
	}
	if !HoldsColored(p, g, r) {
		t.Fatal("result violates colored bounded simulation")
	}
}

func TestMatchColoredBoundRespected(t *testing.T) {
	// friend-chain of length 3 with bound 2: no match.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	if err := p.AddColoredEdge(a, b, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	x1 := g.AddNode(graph.NewTuple("label", `"x"`))
	x2 := g.AddNode(graph.NewTuple("label", `"x"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	mustLabeled(t, g, a0, x1, "friend")
	mustLabeled(t, g, x1, x2, "friend")
	mustLabeled(t, g, x2, b0, "friend")
	if r := MatchColored(p, g); !r.Empty() {
		t.Fatalf("3-hop chain under bound 2: %v, want empty", r)
	}
	// Raising the bound to 3 matches.
	p2 := pattern.New()
	a2 := p2.AddNode(pattern.Label("a"))
	b2 := p2.AddNode(pattern.Label("b"))
	if err := p2.AddColoredEdge(a2, b2, 3, "friend"); err != nil {
		t.Fatal(err)
	}
	if r := MatchColored(p2, g); r.Empty() {
		t.Fatal("3-hop chain under bound 3 should match")
	}
}

func TestMatchColoredEqualsPlainWhenUncolored(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := generator.RandomGraph(14, 28, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 3, seed+100)
		if !MatchColored(p, g).Equal(Match(p, g)) {
			t.Fatalf("seed %d: MatchColored differs on an uncolored pattern", seed)
		}
	}
}

func TestMatchColoredEqualsPlainWhenAllEdgesOneColor(t *testing.T) {
	// If every data edge carries color c, colored matching with c equals
	// plain matching (the color constraint is vacuous).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := generator.RandomGraph(12, 24, 2, int64(trial))
		g.Edges(func(u, v graph.NodeID) bool {
			if err := g.SetEdgeLabel(u, v, "c"); err != nil {
				t.Fatal(err)
			}
			return true
		})
		plain := generator.RandomPattern(3, 4, 2, 3, int64(trial)+50)
		colored := plain.Clone()
		for _, e := range plain.Edges() {
			if err := colored.AddColoredEdge(e.From, e.To, e.Bound, "c"); err != nil {
				t.Fatal(err)
			}
		}
		if !MatchColored(colored, g).Equal(Match(plain, g)) {
			t.Fatalf("trial %d: uniform coloring changed the match", trial)
		}
		_ = rng
	}
}

func TestMatchColoredCascade(t *testing.T) {
	// A two-level colored pattern: removing support must cascade exactly as
	// in plain matching. a →friend b →friend c over a chain missing the
	// final friend edge.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	c := p.AddNode(pattern.Label("c"))
	if err := p.AddColoredEdge(a, b, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddColoredEdge(b, c, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb := g.AddNode(graph.NewTuple("label", `"b"`))
	gc := g.AddNode(graph.NewTuple("label", `"c"`))
	mustLabeled(t, g, ga, gb, "friend")
	mustLabeled(t, g, gb, gc, "cites") // wrong relationship at the last hop
	if r := MatchColored(p, g); !r.Empty() {
		t.Fatalf("want empty (cascade through b): %v", r)
	}
	if err := g.SetEdgeLabel(gb, gc, "friend"); err != nil {
		t.Fatal(err)
	}
	if r := MatchColored(p, g); r.Empty() {
		t.Fatal("want full match after relabeling")
	}
}

func TestEdgeLabelLifecycle(t *testing.T) {
	g := graph.New()
	u := g.AddNode(nil)
	v := g.AddNode(nil)
	if err := g.SetEdgeLabel(u, v, "x"); err == nil {
		t.Fatal("labeling a missing edge should fail")
	}
	if _, err := g.AddLabeledEdge(u, v, "friend"); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeLabel(u, v); got != "friend" {
		t.Fatalf("EdgeLabel = %q", got)
	}
	c := g.Clone()
	if got := c.EdgeLabel(u, v); got != "friend" {
		t.Fatalf("clone lost label: %q", got)
	}
	g.RemoveEdge(u, v)
	if got := g.EdgeLabel(u, v); got != "" {
		t.Fatalf("label survived edge removal: %q", got)
	}
	if c.EdgeLabel(u, v) != "friend" {
		t.Fatal("removal leaked into clone")
	}
}

func mustLabeled(t *testing.T, g *graph.Graph, u, v graph.NodeID, label string) {
	t.Helper()
	if _, err := g.AddLabeledEdge(u, v, label); err != nil {
		t.Fatal(err)
	}
}
