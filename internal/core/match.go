// Package core implements the paper's primary contribution: graph pattern
// matching via bounded simulation (Section 3). Algorithm Match computes the
// unique maximum match Mksim(P, G) of a b-pattern P in a data graph G in
// O(|V||E| + |Ep||V|² + |Vp||V|) time (Theorem 3.1).
//
// The implementation follows Fig. 3 of the paper: mat() candidate sets are
// initialized from predicates with the out-degree guard, and a premv-style
// worklist removes nodes violating connectivity/distance constraints until a
// fixpoint. The anc/desc candidate sets and the X′ counter matrix of the
// complexity proof appear here as per-pattern-edge support counters, either
// enumerated through a distance Iterator (BFS oracle) or by scanning
// candidate pairs against a Dist oracle (distance matrix, 2-hop, landmarks)
// — the three variants compared in Fig. 17(a,b).
package core

import (
	"gpm/internal/distance"
	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Options configure Match.
type Options struct {
	// Oracle answers distance queries. When nil, Match builds a BFS oracle
	// over g (no preprocessing, no extra memory).
	Oracle distance.Oracle
	// Workers bounds the parallelism of the candidate-set construction
	// (the predicate scan over all data nodes): 0 selects the default
	// (par.DefaultWorkers), 1 runs serially.
	Workers int
}

// Option mutates Options.
type Option func(*Options)

// WithOracle selects the distance oracle used by Match.
func WithOracle(o distance.Oracle) Option {
	return func(opts *Options) { opts.Oracle = o }
}

// WithWorkers bounds the parallelism of the candidate-set construction.
func WithWorkers(n int) Option {
	return func(opts *Options) { opts.Workers = n }
}

// Match computes the maximum bounded-simulation match Mksim(P, G). The
// result is empty iff P does not match G (no total match exists).
func Match(p *pattern.Pattern, g *graph.Graph, options ...Option) rel.Relation {
	var opts Options
	for _, o := range options {
		o(&opts)
	}
	if opts.Oracle == nil {
		opts.Oracle = distance.NewBFS(g)
	}
	return match(p, g, opts.Oracle, opts.Workers)
}

// candidates computes mat(u) — the predicate-satisfying nodes with the
// out-degree guard (lines 5-6 of Fig. 3) — scanning the data nodes in
// parallel. Workers collect hits into private slices that are merged
// serially, so the scan itself is contention-free.
func candidates(p *pattern.Pattern, g *graph.Graph, u, workers int) rel.Set {
	n := g.NumNodes()
	pred := p.Pred(u)
	needChild := p.OutDegree(u) > 0
	w := par.Resolve(workers, n)
	if w == 1 {
		set := rel.NewSet()
		for v := 0; v < n; v++ {
			if needChild && g.OutDegree(v) == 0 {
				continue
			}
			if pred.Eval(g.Attrs(v)) {
				set.Add(v)
			}
		}
		return set
	}
	parts := make([][]graph.NodeID, w)
	par.For(n, w, func(worker, v int) {
		if needChild && g.OutDegree(v) == 0 {
			return
		}
		if pred.Eval(g.Attrs(v)) {
			parts[worker] = append(parts[worker], v)
		}
	})
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	set := make(rel.Set, total)
	for _, part := range parts {
		for _, v := range part {
			set.Add(v)
		}
	}
	return set
}

func match(p *pattern.Pattern, g *graph.Graph, oracle distance.Oracle, workers int) rel.Relation {
	np := p.NumNodes()
	mat := rel.NewRelation(np)

	// Lines 5-6 of Fig. 3: mat(u) = predicate-satisfying nodes, with the
	// out-degree guard.
	for u := 0; u < np; u++ {
		mat[u] = candidates(p, g, u, workers)
		if mat[u].Len() == 0 {
			return rel.NewRelation(np) // line 12: some pattern node unmatched
		}
	}

	edges := p.Edges()
	iter, hasIter := oracle.(distance.Iterator)

	// The X′ matrix of the complexity proof: cnt[e][v'] counts candidates v
	// of edge e's target within e's bound of v'. A zero count is exactly the
	// premv condition (line 7).
	cnt := make([]map[graph.NodeID]int32, len(edges))
	type removal struct {
		u int
		v graph.NodeID
	}
	var queue []removal
	removeMatch := func(u int, v graph.NodeID) {
		if mat[u].Remove(v) {
			queue = append(queue, removal{u, v})
		}
	}

	// All counters are initialized from the same snapshot of the candidate
	// sets before any removal is applied; otherwise a removal during
	// initialization would be double-counted (once by the shrunken set, once
	// by the worklist cascade).
	for e, pe := range edges {
		cnt[e] = make(map[graph.NodeID]int32, mat[pe.From].Len())
		tgt := mat[pe.To]
		if hasIter {
			for v := range mat[pe.From] {
				c := int32(0)
				iter.DescNonempty(v, pe.Bound, func(w graph.NodeID, d int) bool {
					if tgt.Has(w) {
						c++
					}
					return true
				})
				cnt[e][v] = c
			}
		} else {
			for v := range mat[pe.From] {
				c := int32(0)
				for w := range tgt {
					if pattern.WithinBound(distance.NonemptyDist(oracle, g, v, w), pe.Bound) {
						c++
					}
				}
				cnt[e][v] = c
			}
		}
	}
	for e, pe := range edges {
		for v, c := range cnt[e] {
			if c == 0 {
				removeMatch(pe.From, v)
			}
		}
	}

	// Lines 8-17: propagate removals. Removing v from mat(u) decrements the
	// support counter of every candidate ancestor v'' (within the bound of a
	// pattern edge (u'', u)) and cascades when a counter reaches zero.
	inEdges := make([][]int, np)
	for e, pe := range edges {
		inEdges[pe.To] = append(inEdges[pe.To], e)
	}
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range inEdges[rm.u] {
			pe := edges[e]
			src := mat[pe.From]
			if hasIter {
				iter.AncNonempty(rm.v, pe.Bound, func(w graph.NodeID, d int) bool {
					if src.Has(w) {
						cnt[e][w]--
						if cnt[e][w] == 0 {
							removeMatch(pe.From, w)
						}
					}
					return true
				})
			} else {
				for w := range src {
					if pattern.WithinBound(distance.NonemptyDist(oracle, g, w, rm.v), pe.Bound) {
						cnt[e][w]--
						if cnt[e][w] == 0 {
							removeMatch(pe.From, w)
						}
					}
				}
			}
		}
		if mat[rm.u].Len() == 0 {
			return rel.NewRelation(np) // line 12
		}
	}

	if !mat.Total() {
		return rel.NewRelation(np)
	}
	return mat
}

// MatchBFS runs Match with the on-demand BFS oracle ("Match with BFS").
func MatchBFS(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	return Match(p, g, WithOracle(distance.NewBFS(g)))
}

// MatchMatrix runs Match after building the all-pairs distance matrix
// ("Matrix+Match"). The matrix build is included in the call.
func MatchMatrix(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	return Match(p, g, WithOracle(distance.NewMatrix(g)))
}

// MatchTwoHop runs Match over a 2-hop cover labeling ("2-hop+Match"). The
// labeling build is included in the call.
func MatchTwoHop(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	return Match(p, g, WithOracle(distance.NewTwoHop(g)))
}

// NaiveBounded computes the maximum bounded simulation by iterating the
// definition to a fixpoint over an all-pairs matrix. Reference
// implementation for tests.
func NaiveBounded(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	oracle := distance.NewMatrix(g)
	np, n := p.NumNodes(), g.NumNodes()
	mat := rel.NewRelation(np)
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		for v := 0; v < n; v++ {
			if pred.Eval(g.Attrs(v)) {
				mat[u].Add(v)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < np; u++ {
			for _, v := range mat[u].Sorted() {
				ok := true
				for _, u2 := range p.Out(u) {
					bound, _ := p.Bound(u, u2)
					found := false
					for w := range mat[u2] {
						if pattern.WithinBound(distance.NonemptyDist(oracle, g, v, w), bound) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					mat[u].Remove(v)
					changed = true
				}
			}
		}
	}
	if !mat.Total() {
		return rel.NewRelation(np)
	}
	return mat
}

// Holds verifies that r is a bounded simulation of P in G (conditions (1)-(3)
// of Section 2.2). The empty relation trivially holds.
func Holds(p *pattern.Pattern, g *graph.Graph, r rel.Relation) bool {
	if r.Empty() {
		return true
	}
	if !r.Total() {
		return false
	}
	oracle := distance.NewBFS(g)
	for u := range r {
		for v := range r[u] {
			if !p.Pred(u).Eval(g.Attrs(v)) {
				return false
			}
			for _, u2 := range p.Out(u) {
				bound, _ := p.Bound(u, u2)
				found := false
				for w := range r[u2] {
					if pattern.WithinBound(distance.NonemptyDist(oracle, g, v, w), bound) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}
