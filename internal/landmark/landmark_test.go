package landmark

import (
	"math/rand"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

func TestNewIsExactOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := generator.RandomGraph(20, 40, 3, seed)
		ix := New(g)
		if err := ix.verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDistMatchesBFS(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := generator.RandomGraph(18, 36, 3, seed)
		ix := New(g)
		dist := make([]int, g.NumNodes())
		for u := 0; u < g.NumNodes(); u++ {
			g.BFSFrom(u, graph.Forward, dist)
			for v := 0; v < g.NumNodes(); v++ {
				want := dist[v]
				if want >= graph.Unreachable {
					want = graph.Unreachable
				}
				if got := ix.Dist(u, v); got != want {
					t.Fatalf("seed %d: Dist(%d,%d) = %d, want %d", seed, u, v, got, want)
				}
			}
		}
	}
}

func TestInsertMaintainsExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := generator.RandomGraph(15, 20, 2, int64(trial))
		ix := New(g)
		for step := 0; step < 25; step++ {
			u, v := rng.Intn(15), rng.Intn(15)
			if u == v {
				continue
			}
			ix.Insert(u, v)
			if err := ix.verify(); err != nil {
				t.Fatalf("trial %d step %d after Insert(%d,%d): %v", trial, step, u, v, err)
			}
		}
	}
}

func TestDeleteMaintainsExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := generator.RandomGraph(15, 40, 2, int64(trial)+100)
		ix := New(g)
		for step := 0; step < 25; step++ {
			edges := g.EdgeList()
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			ix.Delete(e[0], e[1])
			if err := ix.verify(); err != nil {
				t.Fatalf("trial %d step %d after Delete(%v): %v", trial, step, e, err)
			}
		}
	}
}

func TestMixedUpdatesMaintainExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		g := generator.RandomGraph(14, 25, 2, int64(trial)+200)
		ix := New(g)
		for step := 0; step < 40; step++ {
			u, v := rng.Intn(14), rng.Intn(14)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				ix.Insert(u, v)
			} else {
				ix.Delete(u, v)
			}
			if err := ix.verify(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

func TestBatchMaintainsExactness(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		g := generator.RandomGraph(20, 40, 2, trial+300)
		ix := New(g)
		ups := generator.Updates(g, 8, 8, trial+400)
		ix.Batch(ups)
		if err := ix.verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBatchCancelsSameEdge(t *testing.T) {
	g := generator.RandomGraph(10, 15, 2, 7)
	ix := New(g)
	var u, v graph.NodeID = -1, -1
	for i := 0; i < 10 && u < 0; i++ {
		for j := 0; j < 10; j++ {
			if i != j && !g.HasEdge(i, j) {
				u, v = i, j
				break
			}
		}
	}
	applied := ix.Batch([]graph.Update{graph.Insert(u, v), graph.Delete(u, v)})
	if applied != 0 {
		t.Fatalf("applied = %d, want 0 (cancelled)", applied)
	}
	if err := ix.verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionCoversNewEdge(t *testing.T) {
	// Two isolated nodes: the vertex cover is empty; inserting an edge must
	// add a landmark so the query stays exact.
	g := graph.New()
	a := g.AddNode(nil)
	b := g.AddNode(nil)
	ix := New(g)
	if len(ix.Landmarks()) != 0 {
		t.Fatalf("empty graph cover = %v", ix.Landmarks())
	}
	ix.Insert(a, b)
	if len(ix.Landmarks()) != 1 {
		t.Fatalf("landmarks after insert = %v, want 1", ix.Landmarks())
	}
	if d := ix.Dist(a, b); d != 1 {
		t.Fatalf("Dist(a,b) = %d, want 1", d)
	}
	if err := ix.verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteKeepsLandmarks(t *testing.T) {
	// Proposition 6.2: deletions never force landmark changes.
	g := generator.RandomGraph(12, 24, 2, 21)
	ix := New(g)
	before := len(ix.Landmarks())
	for _, e := range g.EdgeList()[:5] {
		ix.Delete(e[0], e[1])
	}
	if len(ix.Landmarks()) != before {
		t.Fatalf("landmarks changed on deletion: %d → %d", before, len(ix.Landmarks()))
	}
}

func TestDeleteDisconnects(t *testing.T) {
	// 0→1→2 chain: deleting 1→2 makes 2 unreachable from 0 and 1.
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddNode(nil)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	ix := New(g)
	if d := ix.Dist(0, 2); d != 2 {
		t.Fatalf("Dist(0,2) = %d, want 2", d)
	}
	ix.Delete(1, 2)
	if d := ix.Dist(0, 2); d != graph.Unreachable {
		t.Fatalf("Dist(0,2) after cut = %d, want Unreachable", d)
	}
	if err := ix.verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteWithAlternativePath(t *testing.T) {
	// Diamond: 0→1→3, 0→2→3. Deleting 1→3 leaves dist(0,3) = 2.
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode(nil)
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	ix := New(g)
	ix.Delete(1, 3)
	if d := ix.Dist(0, 3); d != 2 {
		t.Fatalf("Dist(0,3) = %d, want 2 via the surviving branch", d)
	}
	if err := ix.verify(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndBytes(t *testing.T) {
	g := generator.RandomGraph(10, 20, 2, 31)
	ix := New(g)
	if ix.Bytes() <= 0 {
		t.Fatal("Bytes should be positive with landmarks present")
	}
	s := ix.Stats()
	if s.LandmarksAdded == 0 || s.EntriesUpdated == 0 {
		t.Fatalf("build stats empty: %+v", s)
	}
	ix.ResetStats()
	if ix.Stats() != (Stats{}) {
		t.Fatal("ResetStats failed")
	}
}

func TestVertexCoverProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := generator.RandomGraph(25, 60, 2, seed)
		cover := vertexCover(g)
		in := make(map[graph.NodeID]bool, len(cover))
		for _, v := range cover {
			in[v] = true
		}
		g.Edges(func(u, v graph.NodeID) bool {
			if !in[u] && !in[v] {
				t.Fatalf("seed %d: edge (%d,%d) uncovered", seed, u, v)
			}
			return true
		})
	}
}

func TestRebuildEquivalentDistances(t *testing.T) {
	g := generator.RandomGraph(15, 30, 2, 41)
	ix := New(g)
	ups := generator.Updates(g, 6, 6, 42)
	ix.Batch(ups)
	fresh := Rebuild(g)
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if ix.Dist(u, v) != fresh.Dist(u, v) {
				t.Fatalf("maintained Dist(%d,%d)=%d, rebuilt=%d", u, v, ix.Dist(u, v), fresh.Dist(u, v))
			}
		}
	}
}
