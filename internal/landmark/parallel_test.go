package landmark

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

// TestNewWorkersEquivalence checks that the parallel batch build produces
// exactly the serial index: same landmark vector, same distance vectors.
func TestNewWorkersEquivalence(t *testing.T) {
	graphs := []*graph.Graph{
		generator.Synthetic(150, 600, generator.DefaultSchema(4), 5),
		generator.YouTube(0.01, 9),
		graph.New(), // empty graph
	}
	for gi, g := range graphs {
		serial := NewWorkers(g, 1)
		for _, workers := range []int{2, 4} {
			parallel := NewWorkers(g, workers)
			if len(parallel.lms) != len(serial.lms) {
				t.Fatalf("graph %d workers %d: %d landmarks, serial %d", gi, workers, len(parallel.lms), len(serial.lms))
			}
			for i, lm := range serial.lms {
				if parallel.lms[i] != lm {
					t.Fatalf("graph %d workers %d: landmark %d = %d, serial %d", gi, workers, i, parallel.lms[i], lm)
				}
				for v := 0; v < g.NumNodes(); v++ {
					if parallel.distTo[i][v] != serial.distTo[i][v] {
						t.Fatalf("graph %d workers %d: distTo[%d][%d] = %d, serial %d",
							gi, workers, i, v, parallel.distTo[i][v], serial.distTo[i][v])
					}
					if parallel.distFrom[i][v] != serial.distFrom[i][v] {
						t.Fatalf("graph %d workers %d: distFrom[%d][%d] = %d, serial %d",
							gi, workers, i, v, parallel.distFrom[i][v], serial.distFrom[i][v])
					}
				}
			}
			if err := parallel.verify(); err != nil {
				t.Fatalf("graph %d workers %d: %v", gi, workers, err)
			}
		}
	}
}

// TestNewWorkersThenMaintain checks that an index built in parallel
// maintains correctly through the incremental unit algorithms.
func TestNewWorkersThenMaintain(t *testing.T) {
	g := generator.Synthetic(120, 480, generator.DefaultSchema(3), 13)
	ix := NewWorkers(g, 4)
	for _, up := range generator.Updates(g, 30, 30, 17) {
		if up.Op == graph.InsertEdge {
			ix.Insert(up.From, up.To)
		} else {
			ix.Delete(up.From, up.To)
		}
		if err := ix.verify(); err != nil {
			t.Fatalf("after %v: %v", up, err)
		}
	}
}
