package landmark

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

// Ablation: landmark maintenance versus rebuild, and landmark queries
// versus plain BFS — the design trade-off of Section 6.2/6.4.

func benchGraph() *graph.Graph {
	return generator.Synthetic(1500, 6000, generator.DefaultSchema(8), 1)
}

func BenchmarkBuild(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(g)
	}
}

func BenchmarkInsLMUnit(b *testing.B) {
	g := benchGraph()
	ix := New(g)
	ups := generator.Updates(g, 1, 0, 2)
	up := ups[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(up.From, up.To)
		ix.Delete(up.From, up.To)
	}
}

func BenchmarkIncLMBatch(b *testing.B) {
	g := benchGraph()
	ix := New(g)
	ups := generator.Updates(g, 50, 50, 3)
	inv := make([]graph.Update, len(ups))
	for i, u := range ups {
		inv[len(ups)-1-i] = u.Inverse()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Batch(ups)
		ix.Batch(inv)
	}
}

func BenchmarkQueryLandmark(b *testing.B) {
	g := benchGraph()
	ix := New(g)
	n := g.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Dist(i%n, (i*31)%n)
	}
}

func BenchmarkQueryBFSBaseline(b *testing.B) {
	g := benchGraph()
	n := g.NumNodes()
	dist := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSFrom(i%n, graph.Forward, dist)
		_ = dist[(i*31)%n]
	}
}
