// Package landmark implements the landmark vectors and distance vectors of
// Section 6.2, and their incremental maintenance (Section 6.4): InsLM,
// DelLM, IncLM and the BatchLM rebuild baseline.
//
// A landmark vector lm is a set of nodes such that every pair of distinct
// connected nodes has a landmark on some shortest path between them; any
// vertex cover qualifies, and like the paper's experiments we seed lm with
// a greedy minimum vertex cover (the maximal-matching 2-approximation).
// Each node conceptually carries two distance vectors — distances to every
// landmark (distvf) and from every landmark (distvt); we store them
// transposed as one array per landmark for locality. A distance query is
// min over landmarks of distvf[u][i] + distvt[v][i], exact by the cover
// property, making the index a distance.Oracle for the bounded-simulation
// matcher.
package landmark

import (
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/par"
)

const unreachable32 = int32(1) << 30

// Index is a maintained landmark + distance-vector structure over a graph.
// All graph mutations must go through Insert/Delete/Batch so the vectors
// stay exact.
type Index struct {
	g    *graph.Graph
	lms  []graph.NodeID // the landmark vector
	isLM []bool
	// distTo[i][v] = dist(lm_i → v); distFrom[i][v] = dist(v → lm_i).
	distTo   [][]int32
	distFrom [][]int32

	stats Stats
	// scratch
	buf []int
}

// Stats counts maintenance work — the AFF measure of Propositions 6.2/6.3.
type Stats struct {
	LandmarksAdded int64
	EntriesUpdated int64 // distance-vector entries rewritten
	NodesVisited   int64 // nodes touched by affected-area searches
}

// New builds an index over g: a greedy vertex-cover landmark vector plus
// one forward and one backward BFS per landmark (the BatchLM computation),
// with the per-landmark BFS runs distributed over the default number of
// workers (par.DefaultWorkers).
func New(g *graph.Graph) *Index {
	return NewWorkers(g, 0)
}

// NewWorkers builds an index over g using the given number of workers for
// the per-landmark BFS runs: 0 selects the default, 1 runs serially. The
// vertex-cover selection stays sequential (it is inherently greedy and
// cheap next to the BFS phase).
func NewWorkers(g *graph.Graph, workers int) *Index {
	n := g.NumNodes()
	ix := &Index{g: g, isLM: make([]bool, n)}
	cover := vertexCover(g)
	k := len(cover)
	ix.lms = make([]graph.NodeID, k)
	copy(ix.lms, cover)
	for _, v := range cover {
		ix.isLM[v] = true
	}
	ix.distTo = make([][]int32, k)
	ix.distFrom = make([][]int32, k)
	w := par.Resolve(workers, k)
	bufs := make([][]int, w) // one BFS scratch buffer per worker
	par.For(k, w, func(worker, i int) {
		buf := bufs[worker]
		if buf == nil {
			buf = make([]int, n)
			bufs[worker] = buf
		}
		lm := ix.lms[i]
		to := make([]int32, n)
		g.BFSFrom(lm, graph.Forward, buf)
		for j, d := range buf {
			to[j] = clamp32(d)
		}
		from := make([]int32, n)
		g.BFSFrom(lm, graph.Reverse, buf)
		for j, d := range buf {
			from[j] = clamp32(d)
		}
		ix.distTo[i] = to
		ix.distFrom[i] = from
	})
	ix.stats.LandmarksAdded = int64(k)
	ix.stats.EntriesUpdated = 2 * int64(n) * int64(k)
	return ix
}

// vertexCover returns a greedy minimum vertex cover (the paper's heuristic
// choice): repeatedly take the node covering the most uncovered edges. On
// degree-skewed graphs this yields far smaller covers — and therefore far
// smaller distance vectors — than the matching-based 2-approximation.
func vertexCover(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	// Remaining uncovered degree per node, bucketed for O(E) total work.
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if g.HasEdge(v, v) {
			deg[v]-- // a self-loop counts once
		}
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]graph.NodeID, maxDeg+1)
	for v := 0; v < n; v++ {
		if deg[v] > 0 {
			buckets[deg[v]] = append(buckets[deg[v]], v)
		}
	}
	inCover := make([]bool, n)
	covered := func(u, v graph.NodeID) bool { return inCover[u] || inCover[v] }
	uncovered := g.NumEdges()
	var cover []graph.NodeID
	for d := maxDeg; d > 0 && uncovered > 0; {
		if len(buckets[d]) == 0 {
			d--
			continue
		}
		v := buckets[d][len(buckets[d])-1]
		buckets[d] = buckets[d][:len(buckets[d])-1]
		if inCover[v] {
			continue
		}
		// Recompute v's current uncovered degree; re-bucket if stale.
		cur := 0
		for _, w := range g.Out(v) {
			if !covered(v, w) {
				cur++
			}
		}
		for _, w := range g.In(v) {
			if w != v && !covered(w, v) {
				cur++
			}
		}
		if cur == 0 {
			continue
		}
		if cur < d {
			buckets[cur] = append(buckets[cur], v)
			continue
		}
		inCover[v] = true
		cover = append(cover, v)
		uncovered -= cur
	}
	return cover
}

// addLandmark appends v to the landmark vector and computes its two
// distance arrays with BFS.
func (ix *Index) addLandmark(v graph.NodeID) {
	if ix.isLM[v] {
		return
	}
	ix.isLM[v] = true
	ix.lms = append(ix.lms, v)
	n := ix.g.NumNodes()
	if cap(ix.buf) < n {
		ix.buf = make([]int, n)
	}
	to := make([]int32, n)
	ix.g.BFSFrom(v, graph.Forward, ix.buf[:n])
	for i, d := range ix.buf[:n] {
		to[i] = clamp32(d)
	}
	from := make([]int32, n)
	ix.g.BFSFrom(v, graph.Reverse, ix.buf[:n])
	for i, d := range ix.buf[:n] {
		from[i] = clamp32(d)
	}
	ix.distTo = append(ix.distTo, to)
	ix.distFrom = append(ix.distFrom, from)
	ix.stats.LandmarksAdded++
	ix.stats.EntriesUpdated += int64(2 * n)
}

func clamp32(d int) int32 {
	if d >= graph.Unreachable {
		return unreachable32
	}
	return int32(d)
}

// Graph returns the underlying graph. Callers must not mutate it directly.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Landmarks returns the landmark vector (not to be mutated).
func (ix *Index) Landmarks() []graph.NodeID { return ix.lms }

// Stats returns cumulative maintenance statistics.
func (ix *Index) Stats() Stats { return ix.stats }

// ResetStats clears the statistics.
func (ix *Index) ResetStats() { ix.stats = Stats{} }

// Bytes reports the memory footprint of the distance vectors — the space
// statistic of Fig. 20(b).
func (ix *Index) Bytes() int64 {
	return int64(len(ix.lms)) * int64(ix.g.NumNodes()) * 8
}

// Dist implements distance.Oracle: the exact hop distance from u to v.
func (ix *Index) Dist(u, v graph.NodeID) int {
	if u == v {
		return 0
	}
	best := unreachable32
	for i := range ix.lms {
		df, dt := ix.distFrom[i][u], ix.distTo[i][v]
		if df == unreachable32 || dt == unreachable32 {
			continue
		}
		if s := df + dt; s < best {
			best = s
		}
	}
	if best >= unreachable32 {
		return graph.Unreachable
	}
	return int(best)
}

// verify checks exactness of every vector entry against fresh BFS runs
// (test hook).
func (ix *Index) verify() error {
	n := ix.g.NumNodes()
	dist := make([]int, n)
	for i, lm := range ix.lms {
		ix.g.BFSFrom(lm, graph.Forward, dist)
		for v := 0; v < n; v++ {
			if clamp32(dist[v]) != ix.distTo[i][v] {
				return fmt.Errorf("distTo[%d (lm %d)][%d] = %d, want %d", i, lm, v, ix.distTo[i][v], clamp32(dist[v]))
			}
		}
		ix.g.BFSFrom(lm, graph.Reverse, dist)
		for v := 0; v < n; v++ {
			if clamp32(dist[v]) != ix.distFrom[i][v] {
				return fmt.Errorf("distFrom[%d (lm %d)][%d] = %d, want %d", i, lm, v, ix.distFrom[i][v], clamp32(dist[v]))
			}
		}
	}
	// Cover property: every edge must have a landmark endpoint.
	ok := true
	ix.g.Edges(func(u, v graph.NodeID) bool {
		if !ix.isLM[u] && !ix.isLM[v] {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return fmt.Errorf("landmark set is not a vertex cover")
	}
	return nil
}
