package landmark

// Incremental maintenance (Section 6.4). Edge insertions can only shorten
// distances: per landmark, a bounded relaxation BFS updates exactly the
// entries that improve (InsLM); at most one new landmark is added per
// insertion to keep the cover property (Proposition 6.2). Edge deletions
// can only lengthen distances: per landmark, the two-phase
// Ramalingam–Reps decremental SSSP first isolates the affected set (nodes
// whose every tight parent is affected) and then re-settles it with a
// priority queue seeded from unaffected neighbours (DelLM,
// Proposition 6.3). IncLM nets out a batch and replays it through the unit
// algorithms.

import (
	"container/heap"

	"gpm/internal/graph"
)

// Insert applies the edge insertion (v0, v1) to the graph and incrementally
// maintains the landmark and distance vectors (InsLM). It reports whether
// the edge was new.
func (ix *Index) Insert(v0, v1 graph.NodeID) bool {
	added, err := ix.g.AddEdge(v0, v1)
	if err != nil || !added {
		return false
	}
	// Cover maintenance: a new edge must be covered. Adding either endpoint
	// keeps lm a vertex cover; pick the busier endpoint (it is likelier to
	// cover future edges too).
	if !ix.isLM[v0] && !ix.isLM[v1] {
		if ix.g.Degree(v0) >= ix.g.Degree(v1) {
			ix.addLandmark(v0)
		} else {
			ix.addLandmark(v1)
		}
	}
	for i := range ix.lms {
		// dist(lm_i → x) may drop for descendants of v1.
		ix.relaxForward(ix.distTo[i], v0, v1)
		// dist(x → lm_i) may drop for ancestors of v0.
		ix.relaxBackward(ix.distFrom[i], v0, v1)
	}
	return true
}

// relaxForward lowers entries of dist (distances from a fixed source) after
// inserting (v0, v1), walking only improved nodes.
func (ix *Index) relaxForward(dist []int32, v0, v1 graph.NodeID) {
	if dist[v0] == unreachable32 || dist[v0]+1 >= dist[v1] {
		return
	}
	dist[v1] = dist[v0] + 1
	ix.stats.EntriesUpdated++
	queue := []graph.NodeID{v1}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		ix.stats.NodesVisited++
		nd := dist[x] + 1
		for _, w := range ix.g.Out(x) {
			if nd < dist[w] {
				dist[w] = nd
				ix.stats.EntriesUpdated++
				queue = append(queue, w)
			}
		}
	}
}

// relaxBackward lowers entries of dist (distances to a fixed target) after
// inserting (v0, v1).
func (ix *Index) relaxBackward(dist []int32, v0, v1 graph.NodeID) {
	if dist[v1] == unreachable32 || dist[v1]+1 >= dist[v0] {
		return
	}
	dist[v0] = dist[v1] + 1
	ix.stats.EntriesUpdated++
	queue := []graph.NodeID{v0}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		ix.stats.NodesVisited++
		nd := dist[x] + 1
		for _, w := range ix.g.In(x) {
			if nd < dist[w] {
				dist[w] = nd
				ix.stats.EntriesUpdated++
				queue = append(queue, w)
			}
		}
	}
}

// Delete applies the edge deletion (v0, v1) to the graph and incrementally
// maintains the distance vectors (DelLM). The landmark vector itself never
// shrinks on deletion — a vertex cover of G is a cover of G minus an edge.
// It reports whether the edge existed.
func (ix *Index) Delete(v0, v1 graph.NodeID) bool {
	if !ix.g.RemoveEdge(v0, v1) {
		return false
	}
	for i := range ix.lms {
		ix.repair(ix.distTo[i], graph.Forward, v0, v1)
		ix.repair(ix.distFrom[i], graph.Reverse, v1, v0)
	}
	return true
}

// repair runs the two-phase decremental update on dist, a single-source
// (dir == Forward) or single-target (dir == Reverse) distance array, after
// the deletion of the edge whose tail is `tail` and head is `head` in the
// traversal direction (for Reverse they arrive pre-swapped: distances to
// the target grow along In edges).
func (ix *Index) repair(dist []int32, dir graph.Dir, tail, head graph.NodeID) {
	if dist[head] == unreachable32 || dist[tail] == unreachable32 || dist[head] != dist[tail]+1 {
		return // the deleted edge was not tight: nothing can change
	}
	down, up := ix.g.Out, ix.g.In // down: edges leaving the source side
	if dir == graph.Reverse {
		down, up = ix.g.In, ix.g.Out
	}
	hasTightParent := func(x graph.NodeID, affected map[graph.NodeID]bool) bool {
		dx := dist[x]
		for _, p := range up(x) {
			if dist[p] != unreachable32 && dist[p]+1 == dx && !affected[p] {
				return true
			}
		}
		return false
	}
	// Phase A: the affected set — nodes whose every tight parent is
	// affected. Grown from head; a node with a surviving tight parent stops
	// the propagation.
	// The walk must be breadth-first: tight parents sit exactly one level
	// below a node, and FIFO order guarantees that by the time a level-d
	// node is expanded, every affected level-d node has been discovered —
	// so the hasTightParent test never sees a stale affected set.
	affected := make(map[graph.NodeID]bool)
	if hasTightParent(head, affected) {
		return
	}
	affected[head] = true
	frontier := []graph.NodeID{head}
	for qi := 0; qi < len(frontier); qi++ {
		x := frontier[qi]
		ix.stats.NodesVisited++
		for _, c := range down(x) {
			if affected[c] || dist[c] == unreachable32 || dist[c] != dist[x]+1 {
				continue
			}
			if !hasTightParent(c, affected) {
				affected[c] = true
				frontier = append(frontier, c)
			}
		}
	}
	// Phase B: re-settle the affected set, Dijkstra-style, seeded with each
	// node's best unaffected parent.
	pq := &nodeHeap{}
	heap.Init(pq)
	best := make(map[graph.NodeID]int32, len(affected))
	for x := range affected {
		nd := unreachable32
		for _, p := range up(x) {
			if !affected[p] && dist[p] != unreachable32 && dist[p]+1 < nd {
				nd = dist[p] + 1
			}
		}
		best[x] = nd
		if nd != unreachable32 {
			heap.Push(pq, nodeDist{x, nd})
		}
		// Provisionally unreachable; settled below if reachable.
		dist[x] = unreachable32
		ix.stats.EntriesUpdated++
	}
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(nodeDist)
		if dist[nd.v] != unreachable32 || nd.d != best[nd.v] {
			continue // stale entry
		}
		dist[nd.v] = nd.d
		ix.stats.EntriesUpdated++
		for _, c := range down(nd.v) {
			if _, ok := best[c]; !ok {
				continue // not affected
			}
			if dist[c] == unreachable32 && nd.d+1 < best[c] {
				best[c] = nd.d + 1
				heap.Push(pq, nodeDist{c, nd.d + 1})
			}
		}
	}
}

// Batch applies a mixed list of updates (IncLM): same-edge cancellation
// first, then deletions and insertions through the unit algorithms. It
// returns the number of updates that survived cancellation.
func (ix *Index) Batch(ups []graph.Update) int {
	final := make(map[[2]graph.NodeID]graph.Op, len(ups))
	order := make([][2]graph.NodeID, 0, len(ups))
	for _, up := range ups {
		key := [2]graph.NodeID{up.From, up.To}
		if _, seen := final[key]; !seen {
			order = append(order, key)
		}
		final[key] = up.Op
	}
	applied := 0
	// Deletions first: they can only lengthen distances, so the insertion
	// relaxations that follow start from conservative values and remain
	// exact.
	for _, key := range order {
		if final[key] == graph.DeleteEdge && ix.g.HasEdge(key[0], key[1]) {
			ix.Delete(key[0], key[1])
			applied++
		}
	}
	for _, key := range order {
		if final[key] == graph.InsertEdge && !ix.g.HasEdge(key[0], key[1]) {
			ix.Insert(key[0], key[1])
			applied++
		}
	}
	return applied
}

// Rebuild recomputes the landmark vector and all distance vectors from
// scratch (the BatchLM baseline) and returns the fresh index.
func Rebuild(g *graph.Graph) *Index { return New(g) }

// nodeDist is a priority-queue entry.
type nodeDist struct {
	v graph.NodeID
	d int32
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
