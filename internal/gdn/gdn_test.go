package gdn

import (
	"math/rand"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/incbsim"
	"gpm/internal/incsim"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// randomUpdates builds a mixed batch of inserts and deletes over g's nodes,
// biased toward deleting existing edges so both repair paths exercise.
func randomUpdates(g *graph.Graph, k int, rng *rand.Rand) []graph.Update {
	n := g.NumNodes()
	ups := make([]graph.Update, 0, k)
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 0 && g.NumEdges() > 0 {
			var es [][2]graph.NodeID
			g.Edges(func(u, v graph.NodeID) bool {
				es = append(es, [2]graph.NodeID{u, v})
				return true
			})
			e := es[rng.Intn(len(es))]
			ups = append(ups, graph.Delete(e[0], e[1]))
		} else {
			ups = append(ups, graph.Insert(rng.Intn(n), rng.Intn(n)))
		}
	}
	return ups
}

func deltasEqual(a, b rel.Delta) bool {
	a.Sort()
	b.Sort()
	if len(a.Removed) != len(b.Removed) || len(a.Added) != len(b.Added) {
		return false
	}
	for i := range a.Removed {
		if a.Removed[i] != b.Removed[i] {
			return false
		}
	}
	for i := range a.Added {
		if a.Added[i] != b.Added[i] {
			return false
		}
	}
	return true
}

// renumber relabels p by the permutation m (m[orig] = new id).
func renumber(p *pattern.Pattern, m []int) *pattern.Pattern {
	inv := make([]int, len(m))
	for u, c := range m {
		inv[c] = u
	}
	q := pattern.New()
	for c := range inv {
		q.AddNode(p.Pred(inv[c]))
	}
	for _, e := range p.Edges() {
		if err := q.AddColoredEdge(m[e.From], m[e.To], e.Bound, e.Color); err != nil {
			panic(err)
		}
	}
	return q
}

// TestEquivalenceAgainstPrivateEngines is the network's core correctness
// property: for every registered pattern, the handle's Result and
// per-commit Delta are identical to a private one-engine-per-pattern
// layout fed the same effective update stream.
func TestEquivalenceAgainstPrivateEngines(t *testing.T) {
	for _, kind := range []string{KindSim, KindBSim} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := generator.RandomGraph(60, 150, 3, 7)
			net := New(g, 1)

			type pat struct {
				p      *pattern.Pattern
				h      *Handle
				sim    *incsim.Engine
				bsim   *incbsim.Engine
				labelD rel.Delta
			}
			var pats []pat
			addPat := func(p *pattern.Pattern) {
				h, err := net.Register(kind, p)
				if err != nil {
					t.Fatalf("Register: %v", err)
				}
				pp := pat{p: p, h: h}
				if kind == KindSim {
					pp.sim, err = incsim.NewShared(p, g)
				} else {
					pp.bsim, err = incbsim.NewShared(p, g)
				}
				if err != nil {
					t.Fatalf("private engine: %v", err)
				}
				pats = append(pats, pp)
			}

			maxBound := 1
			if kind == KindBSim {
				maxBound = 3
			}
			base := generator.RandomPattern(3, 3, 3, maxBound, 21)
			addPat(base)
			addPat(renumber(base, []int{2, 0, 1})) // renumbered twin: shares the join
			addPat(generator.RandomPattern(2, 2, 3, maxBound, 22))
			addPat(generator.RandomPattern(4, 4, 3, maxBound, 23))
			single := pattern.New() // zero-edge pattern: joins always skip
			single.AddNode(pattern.Label("a"))
			addPat(single)

			if s := net.Stats(); s.JoinNodes >= s.Patterns {
				t.Fatalf("renumbered twin did not share its join: %+v", s)
			}

			for round := 0; round < 25; round++ {
				effective := graph.NetUpdates(g, randomUpdates(g, 1+rng.Intn(6), rng))
				if len(effective) == 0 {
					continue
				}
				net.Apply(effective)
				for i := range pats {
					var want rel.Delta
					if pats[i].sim != nil {
						_, want = pats[i].sim.BatchDelta(effective)
					} else {
						want = pats[i].bsim.BatchDelta(effective)
					}
					got := pats[i].h.Delta()
					if !deltasEqual(got, want) {
						t.Fatalf("round %d pattern %d: delta mismatch\n got  %+v\n want %+v", round, i, got, want)
					}
				}
				if _, err := g.ApplyAll(effective); err != nil {
					t.Fatal(err)
				}
				for i := range pats {
					var want rel.Relation
					if pats[i].sim != nil {
						want = pats[i].sim.Result()
					} else {
						want = pats[i].bsim.Result()
					}
					if got := pats[i].h.Result(); !got.Equal(want) {
						t.Fatalf("round %d pattern %d: result mismatch\n got  %v\n want %v", round, i, got, want)
					}
				}
			}
			s := net.Stats()
			if s.RepairsSaved == 0 {
				t.Fatalf("no repairs saved over 25 commits with a shared join + zero-edge pattern: %+v", s)
			}
			for i := range pats {
				pats[i].h.Release()
			}
			if s := net.Stats(); s.Patterns != 0 || s.JoinNodes != 0 || s.EdgeNodes != 0 || s.PredNodes != 0 {
				t.Fatalf("release did not tear the network down: %+v", s)
			}
		})
	}
}

func TestSharingAndRefcounts(t *testing.T) {
	g := generator.RandomGraph(30, 60, 2, 3)
	net := New(g, 1)
	// a->b and its renumbered twin share everything; b->a shares the
	// predicate leaves but needs its own edge node and join.
	ab := pattern.New()
	ab.AddNode(pattern.Label("a"))
	ab.AddNode(pattern.Label("b"))
	if err := ab.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	ba := pattern.New()
	ba.AddNode(pattern.Label("b"))
	ba.AddNode(pattern.Label("a"))
	if err := ba.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}

	h1, err := net.Register(KindSim, ab)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := net.Register(KindSim, renumber(ab, []int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	h3, err := net.Register(KindSim, ba)
	if err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.PredNodes != 2 || s.EdgeNodes != 2 || s.JoinNodes != 2 || s.Patterns != 3 {
		t.Fatalf("unexpected shape: %+v", s)
	}
	if s.RegisterReused != 1 {
		t.Fatalf("want 1 reused register, got %d", s.RegisterReused)
	}

	h2.Release()
	h2.Release() // double release is a no-op
	if s := net.Stats(); s.JoinNodes != 2 || s.Patterns != 2 {
		t.Fatalf("after twin release: %+v", s)
	}
	h1.Release()
	if s := net.Stats(); s.JoinNodes != 1 || s.EdgeNodes != 1 || s.PredNodes != 2 {
		t.Fatalf("after ab release: %+v", s)
	}
	h3.Release()
	if s := net.Stats(); s.JoinNodes != 0 || s.EdgeNodes != 0 || s.PredNodes != 0 || s.Patterns != 0 {
		t.Fatalf("network not empty: %+v", s)
	}
}

func TestRelevanceSkip(t *testing.T) {
	// Graph with labels a..c; the pattern only involves a and b, so updates
	// between c-labeled nodes must be skipped without any join repair.
	g := graph.New()
	var a, b, c []int
	for i := 0; i < 12; i++ {
		lbl := string(rune('a' + i%3))
		id := g.AddNode(graph.Tuple{"label": graph.String(lbl)})
		switch i % 3 {
		case 0:
			a = append(a, id)
		case 1:
			b = append(b, id)
		default:
			c = append(c, id)
		}
	}
	p := pattern.New()
	p.AddNode(pattern.Label("a"))
	p.AddNode(pattern.Label("b"))
	if err := p.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	net := New(g, 1)
	h, err := net.Register(KindSim, p)
	if err != nil {
		t.Fatal(err)
	}

	// Irrelevant commit: c->c edges only.
	ups := []graph.Update{graph.Insert(c[0], c[1]), graph.Insert(c[1], c[2])}
	net.Apply(ups)
	if d := h.Delta(); !d.Empty() {
		t.Fatalf("irrelevant commit moved the match: %+v", d)
	}
	if _, err := g.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.JoinRepairs != 0 || s.EdgeRepairs != 0 {
		t.Fatalf("irrelevant commit repaired nodes: %+v", s)
	}
	if s.RepairsSaved != 1 {
		t.Fatalf("want 1 repair saved, got %+v", s)
	}

	// Relevant commit: an a->b edge appears; the join must repair and the
	// delta must show the new match.
	ups = []graph.Update{graph.Insert(a[0], b[0])}
	net.Apply(ups)
	d := h.Delta()
	if len(d.Added) == 0 {
		t.Fatalf("relevant insert produced no delta")
	}
	if _, err := g.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	if s := net.Stats(); s.JoinRepairs != 1 || s.EdgeRepairs != 1 {
		t.Fatalf("relevant commit should repair 1 edge node + 1 join: %+v", s)
	}

	// Deleting an edge no current match touches is also skipped — the
	// deletion filter reads the edge node's match state, not just sat.
	ups = []graph.Update{graph.Delete(c[0], c[1])}
	net.Apply(ups)
	if d := h.Delta(); !d.Empty() {
		t.Fatalf("irrelevant delete moved the match: %+v", d)
	}
	if _, err := g.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	if s := net.Stats(); s.JoinRepairs != 1 {
		t.Fatalf("irrelevant delete repaired the join: %+v", s)
	}
}

func TestRegisterRejectsBadKinds(t *testing.T) {
	g := generator.RandomGraph(10, 20, 2, 3)
	net := New(g, 1)
	bounded := pattern.New()
	bounded.AddNode(pattern.Label("a"))
	bounded.AddNode(pattern.Label("b"))
	if err := bounded.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Register(KindSim, bounded); err == nil {
		t.Fatal("sim accepted a non-normal pattern")
	}
	if _, err := net.Register("iso", bounded); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// A failed registration must leave nothing acquired behind.
	if s := net.Stats(); s.PredNodes != 0 || s.EdgeNodes != 0 || s.JoinNodes != 0 || s.Patterns != 0 {
		t.Fatalf("failed register leaked nodes: %+v", s)
	}
	// The same pattern registers fine as bsim.
	h, err := net.Register(KindBSim, bounded)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
}
