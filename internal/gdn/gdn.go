// Package gdn implements a shared sub-pattern evaluation network — a
// RETE-style discrimination network for standing graph patterns. Each
// registered pattern is decomposed (internal/pattern's canonicalization
// layer) into vertex-predicate leaves, single-edge bounded-path nodes, and
// one join tip per distinct canonical pattern; structurally identical
// sub-patterns hash to the same node, so N standing patterns that overlap
// structurally share predicate satisfaction sets, single-edge match state,
// and — for patterns equal up to node renumbering — the whole incremental
// engine. The network maintains every shared node's match state once per
// commit instead of once per pattern, which is where the sublinear
// per-pattern marginal cost comes from.
//
// Node roles:
//
//   - predicate leaves hold sat(pred) = {v : pred holds on v's attributes}.
//     Only edge updates exist (node ids and attributes are append-only
//     elsewhere and immutable here), so these sets are computed once and
//     shared read-only by every engine via incsim/incbsim WithSat.
//   - single-edge nodes run a 2-node (or self-loop) incremental engine for
//     the sub-pattern src --bound--> dst. Their match state doubles as the
//     network's update-relevance filter (see Apply).
//   - join tips run the full incremental engine over the canonically
//     relabeled pattern. Handles remap results and deltas back through each
//     pattern's relabeling permutation, so two renumbered twins share one
//     join but report in their own node numbering.
//
// Lifecycle: Register/Release refcount every node; a node is torn down when
// the last pattern using it goes. Apply repairs the network for one commit.
// The caller must serialize Register, Release and Apply with each other
// (contq's Registry runs all three under its writer lock); Stats and the
// handle read paths are safe concurrently with everything.
package gdn

import (
	"fmt"

	"sync"

	"gpm/internal/graph"
	"gpm/internal/incbsim"
	"gpm/internal/incsim"
	"gpm/internal/par"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Engine kinds the network can back. These mirror contq's sim/bsim kinds;
// iso is intentionally absent (embedding enumeration does not decompose
// into shared per-edge match state).
const (
	KindSim  = "sim"
	KindBSim = "bsim"
)

// Stats is a point-in-time snapshot of the network: its shape and the
// cumulative sharing counters that make the sublinearity measurable.
type Stats struct {
	// PredNodes/EdgeNodes/JoinNodes count the live shared nodes; Patterns
	// counts the live handles. JoinNodes < Patterns means whole-engine
	// sharing is happening.
	PredNodes int `json:"pred_nodes"`
	EdgeNodes int `json:"edge_nodes"`
	JoinNodes int `json:"join_nodes"`
	Patterns  int `json:"patterns"`
	// RegisterReused counts Register calls that found their join tip
	// already in the network and paid no engine construction at all.
	RegisterReused int64 `json:"register_reused"`
	// JoinRepairs and EdgeRepairs count per-commit node repairs actually
	// executed. RepairsSaved counts the per-pattern repairs a one-engine-
	// per-pattern registry would have executed but the network did not:
	// each commit adds (live patterns − join repairs run), covering both
	// patterns that share a repaired join and patterns whose join the
	// relevance filter skipped outright.
	JoinRepairs  int64 `json:"join_repairs"`
	EdgeRepairs  int64 `json:"edge_repairs"`
	RepairsSaved int64 `json:"repairs_saved"`
}

// engine adapts incsim/incbsim to the network's needs.
type engine interface {
	batch(ups []graph.Update) rel.Delta
	result() rel.Relation
	matchSets() rel.Relation
}

type simEng struct{ e *incsim.Engine }

func (s simEng) batch(ups []graph.Update) rel.Delta {
	_, d := s.e.BatchDelta(ups)
	return d
}
func (s simEng) result() rel.Relation    { return s.e.Result() }
func (s simEng) matchSets() rel.Relation { return s.e.MatchSets() }

type bsimEng struct{ e *incbsim.Engine }

func (b bsimEng) batch(ups []graph.Update) rel.Delta { return b.e.BatchDelta(ups) }
func (b bsimEng) result() rel.Relation               { return b.e.Result() }
func (b bsimEng) matchSets() rel.Relation            { return b.e.MatchSets() }

// predNode is a shared vertex-predicate leaf.
type predNode struct {
	key string
	ref int
	sat rel.Set // read-only once built; shared into engines via WithSat
}

// edgeNode is a shared single-edge sub-pattern node.
type edgeNode struct {
	key      string
	ref      int
	bound    int
	selfLoop bool
	src, dst *predNode
	eng      engine
	// broken marks an edge node whose repair panicked: its match state is
	// unusable for relevance filtering, so it reports every later update
	// as relevant (the sound over-approximation) and is never repaired
	// again.
	broken bool
	// relevant is Apply's per-commit scratch: whether any update in the
	// current batch can change this node's (or any dependent join's) state.
	relevant bool
}

// relevantTo reports whether any update in ups can change the state of
// this edge node or of any join evaluated over it. Must run BEFORE any
// repair of this commit: the deletion filter reads pre-state match sets.
//
// Soundness, for bound-1 nodes: an insert (v,w) can only create matches
// when v satisfies the source predicate and w the target one — exactly the
// filter the sim engine's own batch path applies before touching state. A
// delete (v,w) can only destroy matches when v currently matches the
// node's source role and w its target role; any join's whole-pattern match
// for the corresponding pattern edge is a subset of this node's 2-node
// match (the single-edge sub-pattern is strictly less constrained), so an
// update failing the filter here cannot touch counter or match state in
// the node itself or in any join over it. Nodes with bound > 1 (or *) are
// distance-sensitive — a remote edge can reroute a bounded path — so every
// update is relevant to them.
func (e *edgeNode) relevantTo(ups []graph.Update) bool {
	if len(ups) == 0 {
		return false
	}
	if e.broken || e.bound != 1 {
		return true
	}
	m := e.eng.matchSets()
	mSrc, mDst := m[0], m[len(m)-1]
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			if e.src.sat.Has(up.From) && e.dst.sat.Has(up.To) {
				return true
			}
		} else if mSrc.Has(up.From) && mDst.Has(up.To) {
			return true
		}
	}
	return false
}

// joinNode is the tip evaluating one canonical pattern for one engine kind.
type joinNode struct {
	kind  string
	key   string
	ref   int
	preds []*predNode // distinct predicate leaves (refcounted once each)
	edges []*edgeNode // distinct single-edge nodes (refcounted once each)
	eng   engine
	// lastDelta is the canonical-space ΔM of the most recent Apply; each
	// handle remaps it into its own pattern's node numbering.
	lastDelta rel.Delta
	// broken marks a join whose repair panicked: its match state is
	// undefined, every handle's Delta() panics (the registry evicts those
	// patterns), and the node is removed from the network map so a fresh
	// registration rebuilds from scratch.
	broken  bool
	removed bool
}

// relevantNow reports whether the current batch can move this join, given
// the relevance pass already ran over the edge nodes. A pattern with no
// edges can never change under edge updates.
func (j *joinNode) relevantNow() bool {
	for _, e := range j.edges {
		if e.relevant {
			return true
		}
	}
	return false
}

// Network is the shared evaluation network over one base graph view.
type Network struct {
	base    graph.View
	workers int

	// mu guards the node maps and counters against concurrent Stats
	// readers. Register, Release and Apply are additionally serialized by
	// the caller; Apply's repair fan-out runs outside mu so stats reads
	// never block behind an engine repair.
	mu    sync.Mutex
	preds map[string]*predNode
	edges map[string]*edgeNode
	joins map[[2]string]*joinNode // keyed by {kind, canonical pattern key}

	patterns     int
	reused       int64
	joinRepairs  int64
	edgeRepairs  int64
	repairsSaved int64
}

// New builds an empty network over base. workers bounds the parallelism of
// each commit's node-repair fan-out (0 = par.DefaultWorkers).
func New(base graph.View, workers int) *Network {
	return &Network{
		base:    base,
		workers: workers,
		preds:   make(map[string]*predNode),
		edges:   make(map[string]*edgeNode),
		joins:   make(map[[2]string]*joinNode),
	}
}

// Handle is one registered pattern's view of its (possibly shared) join
// tip: it remaps canonical-space results and deltas back into the
// pattern's own node numbering.
type Handle struct {
	net      *Network
	join     *joinNode
	perm     []pattern.NodeID // original node id -> canonical node id
	inv      []pattern.NodeID // canonical node id -> original node id
	identity bool
	released bool
}

// Register installs a standing pattern of the given kind (KindSim or
// KindBSim) and returns its handle. Patterns whose canonical form is
// already in the network share its join tip — no engine is built at all;
// otherwise the join's engine computes its initial match over the current
// base state, reusing every predicate leaf and single-edge node the
// network already maintains. Errors mirror the underlying engines'
// kind-fit rejections (non-normal pattern for sim, colored patterns,...).
func (n *Network) Register(kind string, p *pattern.Pattern) (*Handle, error) {
	if kind != KindSim && kind != KindBSim {
		return nil, fmt.Errorf("gdn: unknown engine kind %q", kind)
	}
	d := pattern.Decompose(p)
	n.mu.Lock()
	defer n.mu.Unlock()
	jk := [2]string{kind, d.Key}
	j, ok := n.joins[jk]
	if ok {
		n.reused++
	} else {
		var err error
		j, err = n.buildJoin(kind, d)
		if err != nil {
			return nil, err
		}
		n.joins[jk] = j
	}
	j.ref++
	n.patterns++
	h := &Handle{net: n, join: j, perm: d.Perm, identity: d.Identity()}
	h.inv = make([]pattern.NodeID, len(d.Perm))
	for u, c := range d.Perm {
		h.inv[c] = u
	}
	return h, nil
}

// buildJoin constructs a join tip and acquires (or creates) the predicate
// leaves and single-edge nodes under it. Called with n.mu held.
func (n *Network) buildJoin(kind string, d *pattern.Decomposition) (*joinNode, error) {
	j := &joinNode{kind: kind, key: d.Key}
	// Predicate leaves first: their sat sets seed every engine below.
	predByKey := make(map[string]*predNode, len(d.Preds))
	for _, pd := range d.Preds {
		pn, ok := n.preds[pd.Key]
		if !ok {
			pn = &predNode{key: pd.Key, sat: rel.NewSet()}
			for v := 0; v < n.base.NumNodes(); v++ {
				if pd.Pred.Eval(n.base.Attrs(v)) {
					pn.sat.Add(v)
				}
			}
			n.preds[pd.Key] = pn
		}
		pn.ref++
		predByKey[pd.Key] = pn
		j.preds = append(j.preds, pn)
	}
	rollback := func() {
		for _, pn := range j.preds {
			if pn.ref--; pn.ref == 0 {
				delete(n.preds, pn.key)
			}
		}
		for _, e := range j.edges {
			if e.ref--; e.ref == 0 {
				delete(n.edges, e.key)
			}
		}
	}

	// The join engine next: it is also the kind-fit validator (a pattern it
	// rejects must not leave partially acquired nodes behind). Its sat sets
	// are the shared predicate leaves, one reference per canonical node.
	sat := make(rel.Relation, d.Canon.NumNodes())
	for _, pd := range d.Preds {
		for _, c := range pd.Nodes {
			sat[c] = predByKey[pd.Key].sat
		}
	}
	eng, err := n.newEngine(kind, d.Canon, sat)
	if err != nil {
		rollback()
		return nil, err
	}
	j.eng = eng

	// Single-edge nodes last: the join engine accepted the pattern, so each
	// (uncolored, bound-checked) single-edge sub-pattern is acceptable too.
	for _, ed := range d.Edges {
		e, ok := n.edges[ed.Key]
		if !ok {
			var err error
			e, err = n.buildEdgeNode(ed, predByKey)
			if err != nil {
				rollback()
				return nil, err
			}
			n.edges[ed.Key] = e
		}
		e.ref++
		j.edges = append(j.edges, e)
	}
	return j, nil
}

// buildEdgeNode constructs the 2-node (or self-loop) sub-pattern engine
// for one single-edge node. Bound-1 nodes use the sim engine; bounded-path
// nodes need distance maintenance and use the bsim engine. Either way the
// node is shared across both join kinds: on a single edge with bound 1,
// bounded simulation and plain simulation coincide.
func (n *Network) buildEdgeNode(ed pattern.EdgeNode, predByKey map[string]*predNode) (*edgeNode, error) {
	src := predByKey[ed.SrcPred]
	dst := predByKey[ed.DstPred]
	sub := pattern.New()
	var sat rel.Relation
	if ed.SelfLoop {
		sub.AddNode(src.pred())
		if err := sub.AddColoredEdge(0, 0, ed.Bound, ed.Color); err != nil {
			return nil, fmt.Errorf("gdn: edge node %q: %w", ed.Key, err)
		}
		sat = rel.Relation{src.sat}
	} else {
		sub.AddNode(src.pred())
		sub.AddNode(dst.pred())
		if err := sub.AddColoredEdge(0, 1, ed.Bound, ed.Color); err != nil {
			return nil, fmt.Errorf("gdn: edge node %q: %w", ed.Key, err)
		}
		sat = rel.Relation{src.sat, dst.sat}
	}
	kind := KindBSim
	if ed.Bound == 1 {
		kind = KindSim
	}
	eng, err := n.newEngine(kind, sub, sat)
	if err != nil {
		return nil, fmt.Errorf("gdn: edge node %q: %w", ed.Key, err)
	}
	return &edgeNode{key: ed.Key, bound: ed.Bound, selfLoop: ed.SelfLoop, src: src, dst: dst, eng: eng}, nil
}

// pred re-parses the leaf's canonical predicate text. The parser
// round-trips predicates byte-identically (the decomposition fuzzing
// enforces it), so the parsed predicate is semantically the one every
// pattern carrying this key declared.
func (p *predNode) pred() pattern.Predicate {
	pred, err := pattern.ParsePredicate(p.key)
	if err != nil {
		panic("gdn: predicate key does not re-parse: " + p.key)
	}
	return pred
}

func (n *Network) newEngine(kind string, p *pattern.Pattern, sat rel.Relation) (engine, error) {
	switch kind {
	case KindSim:
		e, err := incsim.NewShared(p, n.base, incsim.WithWorkers(n.workers), incsim.WithSat(sat))
		if err != nil {
			return nil, err
		}
		return simEng{e}, nil
	default:
		e, err := incbsim.NewShared(p, n.base, incbsim.WithWorkers(n.workers), incbsim.WithSat(sat))
		if err != nil {
			return nil, err
		}
		return bsimEng{e}, nil
	}
}

// Apply repairs the network for one commit: ups is the commit's effective
// ΔG against the base graph, which the caller mutates only after Apply
// returns (every engine reads base ⊕ ups through its private overlay — the
// same NewShared contract contq's private engines follow). After Apply,
// each handle's Delta() reports its pattern's ΔM for this commit.
//
// The repair is relevance-filtered: the edge nodes' pre-commit state
// classifies each update (see relevantTo), edge nodes and join tips with
// no relevant update are skipped wholesale — their state provably cannot
// change — and each skipped join's patterns cost nothing this commit.
//
// Apply must be serialized with Register/Release by the caller. A node
// whose repair panics is contained: the panic is swallowed here, the node
// is marked broken, and for a join tip every dependent handle's next
// Delta() call panics instead — inside contq's per-pattern fan-out, where
// the registry's recover path evicts exactly the affected patterns.
func (n *Network) Apply(ups []graph.Update) {
	// Snapshot the node sets under mu; the repairs run outside it so Stats
	// readers never block behind an engine. Register/Release cannot run
	// concurrently (caller contract), so the snapshot is the node set.
	n.mu.Lock()
	edges := make([]*edgeNode, 0, len(n.edges))
	for _, e := range n.edges {
		edges = append(edges, e)
	}
	joins := make([]*joinNode, 0, len(n.joins))
	for _, j := range n.joins {
		joins = append(joins, j)
	}
	n.mu.Unlock()

	// Pass 1 — relevance, against pre-commit state, before ANY repair.
	repairEdges := edges[:0:0]
	for _, e := range edges {
		e.relevant = e.relevantTo(ups)
		if e.relevant && !e.broken {
			repairEdges = append(repairEdges, e)
		}
	}

	// Pass 2 — repair the relevant single-edge nodes in parallel.
	par.For(len(repairEdges), n.workers, func(_, i int) {
		e := repairEdges[i]
		defer func() {
			if rec := recover(); rec != nil {
				e.broken = true
			}
		}()
		e.eng.batch(ups)
	})

	// Pass 3 — repair the relevant join tips in parallel; skipped joins
	// publish an empty delta for this commit.
	repairJoins := joins[:0:0]
	skippedPatterns := 0
	for _, j := range joins {
		if j.broken {
			continue
		}
		if j.relevantNow() {
			repairJoins = append(repairJoins, j)
		} else {
			j.lastDelta = rel.Delta{}
			skippedPatterns += j.ref
		}
	}
	par.For(len(repairJoins), n.workers, func(_, i int) {
		j := repairJoins[i]
		defer func() {
			if rec := recover(); rec != nil {
				j.broken = true
			}
		}()
		j.lastDelta = j.eng.batch(ups)
	})

	n.mu.Lock()
	defer n.mu.Unlock()
	for _, j := range repairJoins {
		if j.broken && !j.removed {
			// Unusable and unrecoverable: evict from the network so the next
			// registration of this shape rebuilds a fresh engine. Handles
			// still hold the node (their Delta() panics; contq evicts them)
			// and release their references through it as usual.
			delete(n.joins, [2]string{j.kind, j.key})
			j.removed = true
		}
	}
	n.edgeRepairs += int64(len(repairEdges))
	n.joinRepairs += int64(len(repairJoins))
	// Repairs a one-engine-per-pattern layout would have run but the
	// network did not: every pattern on a skipped join, plus all-but-one
	// pattern on each repaired (shared) join.
	n.repairsSaved += int64(skippedPatterns)
	for _, j := range repairJoins {
		n.repairsSaved += int64(j.ref - 1)
	}
}

// Base returns the shared graph view every node in the network reads
// through — the caller's canonical graph; the network owns no replica.
func (n *Network) Base() graph.View { return n.base }

// Stats returns the network's current shape and sharing counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		PredNodes:      len(n.preds),
		EdgeNodes:      len(n.edges),
		JoinNodes:      len(n.joins),
		Patterns:       n.patterns,
		RegisterReused: n.reused,
		JoinRepairs:    n.joinRepairs,
		EdgeRepairs:    n.edgeRepairs,
		RepairsSaved:   n.repairsSaved,
	}
}

// Delta returns this pattern's ΔM for the most recent Apply, in the
// pattern's own node numbering. It panics if the pattern's join tip broke
// during that Apply — deliberately inside the caller's per-pattern
// fan-out, whose recovery path owns evicting the pattern.
func (h *Handle) Delta() rel.Delta {
	j := h.join
	if j.broken {
		panic("gdn: join node repair panicked; pattern state is undefined")
	}
	if h.identity {
		return j.lastDelta
	}
	d := rel.Delta{Removed: h.remapPairs(j.lastDelta.Removed), Added: h.remapPairs(j.lastDelta.Added)}
	d.Sort()
	return d
}

// Result returns the pattern's current match relation in its own node
// numbering. The relation shares its sets with the join engine's snapshot:
// treat it as immutable, exactly like the engines' own Result().
func (h *Handle) Result() rel.Relation {
	r := h.join.eng.result()
	if h.identity {
		return r
	}
	out := make(rel.Relation, len(r))
	for u := range out {
		out[u] = r[h.perm[u]]
	}
	return out
}

func (h *Handle) remapPairs(ps []rel.Pair) []rel.Pair {
	if len(ps) == 0 {
		return nil
	}
	out := make([]rel.Pair, len(ps))
	for i, p := range ps {
		out[i] = rel.Pair{U: h.inv[p.U], V: p.V}
	}
	return out
}

// Release drops the handle's reference; the join tip and every node under
// it are torn down when their last reference goes. Releasing twice is a
// no-op. Must be serialized with Register/Apply by the caller.
func (h *Handle) Release() {
	n := h.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if h.released {
		return
	}
	h.released = true
	n.patterns--
	j := h.join
	if j.ref--; j.ref > 0 {
		return
	}
	if !j.removed {
		delete(n.joins, [2]string{j.kind, j.key})
		j.removed = true
	}
	for _, e := range j.edges {
		if e.ref--; e.ref == 0 {
			delete(n.edges, e.key)
		}
	}
	for _, pn := range j.preds {
		if pn.ref--; pn.ref == 0 {
			delete(n.preds, pn.key)
		}
	}
}
