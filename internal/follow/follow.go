// Package follow is the replication side of follower mode: it keeps a
// read-only gpserve instance (serve.NewReadOnly) in lockstep with a
// leader over the v1 wire API.
//
// The follower bootstraps by trying the cheap path first — a raw commit
// catch-up (GET /v1/commits?from=) over whatever local registry it
// already holds — and falls back to a full-state fetch (GET /v1/snapshot)
// when it holds nothing or the leader has compacted the range. It then
// tails the leader's raw ΔG commit stream (GET /v1/commits/stream via the
// SDK's reconnecting CommitStream) and applies every batch through its
// own registry at the leader's own sequence numbers, so everything keyed
// by sequence — SSE Last-Event-ID resume, Replay tails — works
// identically against leader or follower. Pattern registrations are
// mirrored by periodic reconciliation against GET /v1/patterns: engine
// state is a function of the current graph, so a late-arriving pattern
// still computes the correct match.
//
// Readiness (wired into /v1/readyz through serve.SetReadyCheck) reflects
// replication health: not ready while bootstrapping, while the commit
// stream is disconnected from the leader, or while the applied sequence
// lags the leader's head beyond the configured bound.
package follow

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"gpm/client"
	"gpm/internal/contq"
	"gpm/internal/journal"
	"gpm/internal/obs"
	"gpm/internal/serve"
)

// Metric names of the replication pipeline, exposed on the follower's
// GET /v1/metricz.
const (
	// MetricAppliedSeq is the newest leader commit sequence applied
	// locally.
	MetricAppliedSeq = "gpm_follower_applied_seq"
	// MetricLag is the replication lag in commits: the leader's newest
	// known sequence minus the applied sequence.
	MetricLag = "gpm_follower_replication_lag"
	// MetricConnected is 1 while the commit stream holds an open
	// connection to the leader, 0 otherwise.
	MetricConnected = "gpm_follower_connected"
)

// Config parameterizes a Follower.
type Config struct {
	// Leader is the leader's base URL (e.g. "http://leader:8080").
	Leader string
	// MaxLag bounds readiness: when the applied sequence lags the
	// leader's newest known sequence by more than MaxLag commits, Ready
	// reports an error (and /v1/readyz answers 503). 0 means lag alone
	// never gates readiness — only bootstrap and connectivity do.
	MaxLag uint64
	// Reconcile is the pattern-reconciliation poll interval (default 2s):
	// how often the follower diffs its registered patterns against the
	// leader's and mirrors the difference.
	Reconcile time.Duration
	// Logger receives replication lifecycle events (default slog.Default).
	Logger *slog.Logger
	// Metrics receives the follower gauges (default obs.Default()).
	Metrics *obs.Registry
	// RegistryOptions are applied to every registry a (re)bootstrap
	// builds, alongside the follower's own memory journal.
	RegistryOptions []contq.Option
	// ClientOptions configure the SDK client used against the leader.
	ClientOptions []client.Option
}

// Stats is the follower block attached to the follower's /v1/stats
// document.
type Stats struct {
	Leader     string `json:"leader"`
	State      string `json:"state"` // bootstrapping | following | disconnected
	AppliedSeq uint64 `json:"applied_seq"`
	LeaderSeq  uint64 `json:"leader_seq"`
	Lag        uint64 `json:"lag"`
	Bootstraps uint64 `json:"bootstraps"` // snapshot bootstraps since start
	LastError  string `json:"last_error,omitempty"`
}

// Follower replicates one leader into a read-only server. Construct with
// New, then drive with Run; Ready and Stats serve the readiness and
// stats hooks (New wires both into the server).
type Follower struct {
	cfg Config
	cli *client.Client
	srv *serve.Server

	gApplied   *obs.Gauge
	gLag       *obs.Gauge
	gConnected *obs.Gauge

	mu           sync.Mutex
	reg          *contq.Registry // nil until the first bootstrap installs one
	bootstrapped bool
	connected    bool
	leaderSeq    uint64
	bootstraps   uint64
	lastErr      string
}

// New builds a follower replicating cfg.Leader into srv (a
// serve.NewReadOnly server), wiring its readiness and stats hooks.
// Nothing talks to the leader until Run.
func New(srv *serve.Server, cfg Config) *Follower {
	if cfg.Reconcile <= 0 {
		cfg.Reconcile = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	f := &Follower{
		cfg: cfg,
		cli: client.New(cfg.Leader, cfg.ClientOptions...),
		srv: srv,
		gApplied: cfg.Metrics.Gauge(MetricAppliedSeq,
			"Newest leader commit sequence applied by this follower."),
		gLag: cfg.Metrics.Gauge(MetricLag,
			"Replication lag in commits: leader's newest known sequence minus the applied sequence."),
		gConnected: cfg.Metrics.Gauge(MetricConnected,
			"1 while the commit stream holds an open connection to the leader, 0 otherwise."),
	}
	srv.SetReadyCheck(f.Ready)
	srv.SetStatsExtra(func() any { return f.Stats() })
	return f
}

// Ready reports replication health: nil when bootstrapped, connected to
// the leader, and within the lag bound — the /v1/readyz contract.
func (f *Follower) Ready() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.bootstrapped {
		return fmt.Errorf("follower bootstrapping from %s", f.cfg.Leader)
	}
	if !f.connected {
		return fmt.Errorf("follower disconnected from leader %s", f.cfg.Leader)
	}
	if lag := f.lagLocked(); f.cfg.MaxLag > 0 && lag > f.cfg.MaxLag {
		return fmt.Errorf("follower lagging leader %s by %d commits (bound %d)", f.cfg.Leader, lag, f.cfg.MaxLag)
	}
	return nil
}

// Stats snapshots the replication state.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Leader:     f.cfg.Leader,
		AppliedSeq: f.appliedLocked(),
		LeaderSeq:  f.leaderSeq,
		Lag:        f.lagLocked(),
		Bootstraps: f.bootstraps,
		LastError:  f.lastErr,
	}
	switch {
	case !f.bootstrapped:
		st.State = "bootstrapping"
	case !f.connected:
		st.State = "disconnected"
	default:
		st.State = "following"
	}
	return st
}

// appliedLocked is the local registry's head (0 before bootstrap).
func (f *Follower) appliedLocked() uint64 {
	if f.reg == nil {
		return 0
	}
	return f.reg.Seq()
}

// lagLocked is the saturating leader-minus-applied distance.
func (f *Follower) lagLocked() uint64 {
	applied := f.appliedLocked()
	if f.leaderSeq <= applied {
		return 0
	}
	return f.leaderSeq - applied
}

// observeLeaderSeq folds a newly learned leader sequence into the state
// (monotonic) and refreshes the gauges.
func (f *Follower) observeLeaderSeq(seq uint64) {
	f.mu.Lock()
	if seq > f.leaderSeq {
		f.leaderSeq = seq
	}
	f.gApplied.Set(int64(f.appliedLocked()))
	f.gLag.Set(int64(f.lagLocked()))
	f.mu.Unlock()
}

// setConnected tracks the commit stream's connection state.
func (f *Follower) setConnected(up bool) {
	f.mu.Lock()
	f.connected = up
	f.mu.Unlock()
	if up {
		f.gConnected.Set(1)
	} else {
		f.gConnected.Set(0)
	}
}

// setErr records the most recent replication error for Stats.
func (f *Follower) setErr(err error) {
	f.mu.Lock()
	if err != nil {
		f.lastErr = err.Error()
	}
	f.mu.Unlock()
}

// errResync marks a tail failure that invalidates the local replica:
// the leader's history diverged from (or compacted past) ours, so the
// only way forward is a fresh snapshot bootstrap.
var errResync = errors.New("follow: replica must re-sync from a snapshot")

// needsResync classifies terminal tail errors: compacted ranges, resume
// points ahead of the leader's head (the leader restarted with less
// history), and local divergence all demand a snapshot re-bootstrap.
func needsResync(err error) bool {
	if errors.Is(err, client.ErrCompacted) || errors.Is(err, contq.ErrReplicaGap) {
		return true
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Code == client.CodeSeqFuture || apiErr.Code == client.CodeCompacted
	}
	return false
}

// Run drives the replication loop until ctx is canceled: bootstrap (or
// catch up), tail the commit stream, reconcile patterns — re-bootstrapping
// from a snapshot whenever the tail reports the replica can no longer
// follow. Transient leader failures (unreachable, restarting) are retried
// with backoff; Run only returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	backoff := 200 * time.Millisecond
	const backoffMax = 3 * time.Second
	for {
		if err := f.sync(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			f.setErr(err)
			f.cfg.Logger.Warn("follower sync failed; retrying", "leader", f.cfg.Leader, "error", err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = 200 * time.Millisecond
	}
}

// sync is one bootstrap-and-tail cycle. It returns nil when the tail
// ended in a way the next cycle repairs by itself (re-sync scheduled),
// or the error to back off on.
func (f *Follower) sync(ctx context.Context) error {
	if err := f.bootstrap(ctx); err != nil {
		return err
	}
	err := f.tail(ctx)
	f.setConnected(false)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if errors.Is(err, errResync) {
		// Drop the replica: the next bootstrap must take the snapshot
		// path, catch-up over diverged state would corrupt it.
		f.mu.Lock()
		f.reg = nil
		f.bootstrapped = false
		f.mu.Unlock()
		f.cfg.Logger.Warn("follower re-syncing from snapshot", "leader", f.cfg.Leader)
		return nil
	}
	return err
}

// bootstrap brings the local registry to the leader's head: a raw commit
// catch-up when a replica already exists, a full snapshot fetch when none
// does or the catch-up range is compacted.
func (f *Follower) bootstrap(ctx context.Context) error {
	f.mu.Lock()
	reg := f.reg
	f.mu.Unlock()
	if reg != nil {
		err := f.catchUp(ctx, reg)
		if err == nil {
			return nil
		}
		if !needsResync(err) {
			return err
		}
		f.mu.Lock()
		f.reg = nil
		f.bootstrapped = false
		f.mu.Unlock()
	}

	snap, err := f.cli.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("fetching leader snapshot: %w", err)
	}
	defs := make([]journal.PatternDef, 0, len(snap.Patterns))
	for _, pd := range snap.Patterns {
		defs = append(defs, journal.PatternDef{ID: pd.ID, Kind: pd.Kind, Def: []byte(pd.Def), RegSeq: pd.RegSeq})
	}
	jnl := journal.New()
	opts := make([]contq.Option, 0, len(f.cfg.RegistryOptions)+1)
	opts = append(opts, f.cfg.RegistryOptions...)
	opts = append(opts, contq.WithJournal(jnl))
	newReg, err := contq.NewAt(snap.Graph, snap.Seq, defs, opts...)
	if err != nil {
		return fmt.Errorf("building replica from snapshot at seq %d: %w", snap.Seq, err)
	}
	f.srv.SetRegistry(newReg, jnl)
	f.mu.Lock()
	f.reg = newReg
	f.bootstrapped = true
	f.bootstraps++
	f.mu.Unlock()
	f.observeLeaderSeq(snap.Seq)
	f.cfg.Logger.Info("follower bootstrapped from snapshot",
		"leader", f.cfg.Leader, "seq", snap.Seq, "patterns", len(defs),
		"nodes", snap.Graph.NumNodes(), "edges", snap.Graph.NumEdges())
	return nil
}

// catchUp replays the commits the replica missed via GET /v1/commits.
func (f *Follower) catchUp(ctx context.Context, reg *contq.Registry) error {
	from := reg.Seq()
	tail, err := f.cli.Commits(ctx, from)
	if err != nil {
		return fmt.Errorf("catch-up tail from %d: %w", from, err)
	}
	for _, c := range tail.Commits {
		if err := reg.ApplyReplicatedTrace(c.Seq, c.Updates, c.Trace); err != nil {
			return fmt.Errorf("catch-up apply at %d: %w", c.Seq, err)
		}
	}
	f.mu.Lock()
	f.bootstrapped = true
	f.mu.Unlock()
	f.observeLeaderSeq(tail.Head)
	if len(tail.Commits) > 0 {
		f.cfg.Logger.Info("follower caught up",
			"leader", f.cfg.Leader, "from", from, "head", tail.Head, "commits", len(tail.Commits))
	}
	return nil
}

// tail applies the leader's live commit stream until ctx ends or the
// stream reports a terminal condition. Returns errResync when the replica
// must rebuild from a snapshot.
func (f *Follower) tail(ctx context.Context) error {
	f.mu.Lock()
	reg := f.reg
	f.mu.Unlock()
	st, err := f.cli.CommitStream(ctx, client.FromSeq(reg.Seq()))
	if err != nil {
		if needsResync(err) {
			return errResync
		}
		return fmt.Errorf("opening commit stream: %w", err)
	}
	defer st.Close()
	f.setConnected(st.Stats().Connected)

	// The ticker drives pattern reconciliation and keeps the connection
	// gauge honest while no commits flow (an idle leader outage would
	// otherwise go unnoticed until the next event).
	tick := time.NewTicker(f.cfg.Reconcile)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			f.setConnected(st.Stats().Connected)
			if err := f.reconcile(ctx, reg); err != nil && ctx.Err() == nil {
				f.setErr(err)
			}
		case ev, ok := <-st.C:
			if !ok {
				err := st.Err()
				if err == nil {
					err = errors.New("commit stream closed")
				}
				if needsResync(err) {
					return errResync
				}
				return fmt.Errorf("commit stream ended: %w", err)
			}
			f.setConnected(true)
			switch ev.Type {
			case client.EventHead:
				f.observeLeaderSeq(ev.Seq)
			case client.EventCommit:
				// The frame's traceparent continues the leader commit's
				// trace through this replica's apply pipeline.
				if err := reg.ApplyReplicatedTrace(ev.Seq, ev.Updates, ev.Trace); err != nil {
					if needsResync(err) {
						return errResync
					}
					return fmt.Errorf("applying replicated commit %d: %w", ev.Seq, err)
				}
				f.observeLeaderSeq(ev.Seq)
			}
		}
	}
}

// reconcile mirrors the leader's standing patterns into the replica:
// registers the ones the leader has that we lack (by fetching their
// portable definitions) and unregisters the ones the leader dropped.
// Correct regardless of when a pattern arrived: engine state is a
// function of the current graph, which replication keeps identical.
func (f *Follower) reconcile(ctx context.Context, reg *contq.Registry) error {
	leaderPats, err := f.cli.Patterns(ctx)
	if err != nil {
		return fmt.Errorf("listing leader patterns: %w", err)
	}
	want := make(map[string]bool, len(leaderPats))
	for _, pi := range leaderPats {
		want[pi.ID] = true
	}
	have := make(map[string]bool)
	for _, pi := range reg.Patterns() {
		have[pi.ID] = true
	}
	for id := range want {
		if have[id] {
			continue
		}
		pd, err := f.cli.PatternDef(ctx, id)
		if err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Code == client.CodeNotFound {
				continue // unregistered between the list and the fetch
			}
			return fmt.Errorf("fetching pattern %q: %w", id, err)
		}
		if err := reg.RegisterDef(journal.PatternDef{
			ID: pd.ID, Kind: pd.Kind, Def: []byte(pd.Def), RegSeq: pd.RegSeq,
		}); err != nil {
			if errors.Is(err, contq.ErrAlreadyRegistered) {
				continue
			}
			return fmt.Errorf("mirroring pattern %q: %w", id, err)
		}
		f.cfg.Logger.Info("follower mirrored pattern", "id", id, "kind", pd.Kind)
	}
	for id := range have {
		if !want[id] {
			reg.Unregister(id)
			f.cfg.Logger.Info("follower dropped pattern", "id", id)
		}
	}
	// A reconcile doubles as a leader-head poll, so lag stays fresh even
	// when the stream is quiet.
	if info, err := f.cli.GraphInfo(ctx); err == nil {
		f.observeLeaderSeq(info.Seq)
	}
	return nil
}
