package follow

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/contq"
	"gpm/internal/generator"
	"gpm/internal/obs"
	"gpm/internal/obs/trace"
	"gpm/internal/serve"
)

// TestReplicationTraceContinuity drives a traced client.Apply at the
// leader and asserts the SAME trace ID surfaces on the follower: the
// commit event tailed over SSE carries the leader's traceparent, the
// follower's registry records its replica.apply span under that ID, and
// the follower's own /v1/tracez serves it.
func TestReplicationTraceContinuity(t *testing.T) {
	seed := int64(61)
	ltr := trace.New(trace.Config{Mode: trace.ModeAlways})
	lsrv := serve.New(contq.WithTracer(ltr), contq.WithMetrics(obs.NewRegistry()))
	lts := httptest.NewServer(lsrv)
	t.Cleanup(lts.Close)
	t.Cleanup(lsrv.Close)
	ctx := context.Background()

	ctr := trace.New(trace.Config{Mode: trace.ModeAlways})
	lc := client.New(lts.URL, client.WithTracer(ctr))
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), seed)
	if _, err := lc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
	if _, err := lc.Register(ctx, "p", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}

	// Follower whose (re)bootstrapped registries all sample every commit.
	ftr := trace.New(trace.Config{Mode: trace.ModeAlways})
	fsrv := serve.NewReadOnly(lts.URL)
	fts := httptest.NewServer(fsrv)
	t.Cleanup(fts.Close)
	t.Cleanup(fsrv.Close)
	f := New(fsrv, Config{
		Leader:          lts.URL,
		MaxLag:          1 << 20,
		Reconcile:       20 * time.Millisecond,
		Logger:          quietLogger(),
		Metrics:         obs.NewRegistry(),
		RegistryOptions: []contq.Option{contq.WithTracer(ftr)},
		ClientOptions: []client.Option{
			client.WithBackoff(10*time.Millisecond, 100*time.Millisecond),
		},
	})
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go f.Run(runCtx) //nolint:errcheck // canceled at test end
	waitConverged(t, f, lc)

	seq, err := lc.Apply(ctx, generator.Updates(g, 1, 0, seed+1))
	if err != nil {
		t.Fatal(err)
	}
	csnap, ok := ctr.BySeq(seq)
	if !ok {
		t.Fatalf("client retained no trace for seq %d", seq)
	}
	want := csnap.TraceID

	waitConverged(t, f, lc)
	fsnap, ok := ftr.BySeq(seq)
	if !ok {
		t.Fatalf("follower retained no trace for seq %d", seq)
	}
	if fsnap.TraceID != want {
		t.Fatalf("follower trace %s, want the client's %s", fsnap.TraceID, want)
	}
	found := false
	for _, sp := range fsnap.Spans {
		if sp.Name == "replica.apply" {
			found = true
		}
	}
	if !found {
		t.Fatalf("follower trace has no replica.apply span: %+v", fsnap.Spans)
	}

	// The follower's own tracez surface serves the leader-born trace.
	resp, err := http.Get(fts.URL + "/v1/tracez?trace=" + want)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower tracez: status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["trace_id"] != want {
		t.Fatalf("follower tracez trace_id %v, want %s", doc["trace_id"], want)
	}
}
