package follow

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs"
	"gpm/internal/serve"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startFollower wires a read-only server to a leader URL and returns the
// follower plus a client against the follower's own HTTP surface.
func startFollower(t *testing.T, leaderURL string) (*Follower, *client.Client) {
	t.Helper()
	fsrv := serve.NewReadOnly(leaderURL)
	fts := httptest.NewServer(fsrv)
	t.Cleanup(fts.Close)
	t.Cleanup(fsrv.Close)
	f := New(fsrv, Config{
		Leader:    leaderURL,
		MaxLag:    1 << 20, // readiness gates on bootstrap/connectivity here
		Reconcile: 20 * time.Millisecond,
		Logger:    quietLogger(),
		Metrics:   obs.NewRegistry(),
		ClientOptions: []client.Option{
			client.WithBackoff(10*time.Millisecond, 100*time.Millisecond),
		},
	})
	return f, client.New(fts.URL)
}

// storm applies n single-update batches generated against the leader's
// current graph (fetched via its own snapshot endpoint, like a real
// write-side peer would see it).
func storm(t *testing.T, lc *client.Client, nIns, nDel int, seed int64) {
	t.Helper()
	ctx := context.Background()
	snap, err := lc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range generator.Updates(snap.Graph, nIns, nDel, seed) {
		if _, err := lc.Apply(ctx, []gpm.Update{u}); err != nil {
			t.Fatalf("storm apply: %v", err)
		}
	}
}

// waitConverged blocks until the follower is ready, following, and has
// applied the leader's current head.
func waitConverged(t *testing.T, f *Follower, lc *client.Client) uint64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		info, err := lc.GraphInfo(context.Background())
		if err == nil {
			st := f.Stats()
			if st.State == "following" && st.AppliedSeq == info.Seq && f.Ready() == nil {
				return info.Seq
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never converged: %+v", f.Stats())
	return 0
}

func sortPairs(ps []gpm.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].U != ps[j].U {
			return ps[i].U < ps[j].U
		}
		return ps[i].V < ps[j].V
	})
}

// requireSameResult asserts leader and follower agree on one pattern's
// match relation at the same commit sequence.
func requireSameResult(t *testing.T, lc, fc *client.Client, id string, head uint64) {
	t.Helper()
	ctx := context.Background()
	lr, err := lc.Result(ctx, id)
	if err != nil {
		t.Fatalf("leader result %q: %v", id, err)
	}
	fr, err := fc.Result(ctx, id)
	if err != nil {
		t.Fatalf("follower result %q: %v", id, err)
	}
	if lr.Seq != head || fr.Seq != head {
		t.Fatalf("%q: result seqs %d/%d, want both at head %d", id, lr.Seq, fr.Seq, head)
	}
	if lr.Size != fr.Size {
		t.Fatalf("%q: follower relation size %d, leader %d", id, fr.Size, lr.Size)
	}
	sortPairs(lr.Pairs)
	sortPairs(fr.Pairs)
	for i := range lr.Pairs {
		if lr.Pairs[i] != fr.Pairs[i] {
			t.Fatalf("%q: follower pair %d = %+v, leader %+v", id, i, fr.Pairs[i], lr.Pairs[i])
		}
	}
}

// TestFollowerConvergence is the replication acceptance property over the
// wire: after an update storm with a mid-storm follower restart, the
// follower's served Result equals the leader's for every engine kind —
// including a pattern registered only after the follower was already
// tailing, mirrored by reconciliation.
func TestFollowerConvergence(t *testing.T) {
	seed := int64(47)
	lsrv := serve.New()
	lts := httptest.NewServer(lsrv)
	t.Cleanup(lts.Close)
	t.Cleanup(lsrv.Close)
	lc := client.New(lts.URL)
	ctx := context.Background()

	g := generator.Synthetic(50, 160, generator.DefaultSchema(3), seed)
	if _, err := lc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]gpm.EngineKind{
		"p-sim":  gpm.KindSim,
		"p-bsim": gpm.KindBSim,
		"p-iso":  gpm.KindIso,
	}
	for id, k := range kinds {
		nodes, edges, kb := 3, 3, 1
		if k == gpm.KindBSim {
			kb = 2
		}
		if k == gpm.KindIso {
			edges = 2 // keep the embedding search cheap
		}
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: nodes, Edges: edges, Preds: 1, K: kb}, seed)
		if _, err := lc.Register(ctx, id, p, k); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	storm(t, lc, 10, 6, seed+1) // pre-bootstrap history: the snapshot is mid-stream

	f, fc := startFollower(t, lts.URL)
	if err := f.Ready(); err == nil {
		t.Fatal("follower must report not-ready before bootstrapping")
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	done1 := make(chan error, 1)
	go func() { done1 <- f.Run(ctx1) }()
	waitConverged(t, f, lc)

	storm(t, lc, 12, 8, seed+2) // phase 1: follower live-tailing

	// Mid-storm restart: stop the replication loop entirely...
	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	storm(t, lc, 12, 8, seed+3) // phase 2: follower offline, falls behind

	// ...and start it again: the surviving registry catches up over
	// GET /v1/commits rather than re-fetching the snapshot.
	ctx2, cancel2 := context.WithCancel(ctx)
	defer cancel2()
	done2 := make(chan error, 1)
	go func() { done2 <- f.Run(ctx2) }()
	t.Cleanup(func() { cancel2(); <-done2 })
	waitConverged(t, f, lc)
	if f.Stats().Bootstraps != 1 {
		t.Fatalf("restart took %d snapshot bootstraps, want 1 (catch-up path)", f.Stats().Bootstraps)
	}

	// A pattern registered after the follower is already tailing must be
	// mirrored by reconciliation.
	late := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed+9)
	if _, err := lc.Register(ctx, "p-late", late, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	kinds["p-late"] = gpm.KindSim
	storm(t, lc, 8, 4, seed+4) // phase 3: tail through more churn

	head := waitConverged(t, f, lc)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := fc.Result(ctx, "p-late"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late pattern never mirrored: %+v", f.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for id := range kinds {
		requireSameResult(t, lc, fc, id, head)
	}

	// The follower's own wire surface stays read-only throughout.
	var apiErr *client.APIError
	if _, err := fc.Apply(ctx, []gpm.Update{gpm.Insert(graph.NodeID(1), graph.NodeID(2))}); !errors.As(err, &apiErr) || apiErr.Code != client.CodeReadOnly || apiErr.Leader != lts.URL {
		t.Fatalf("follower write: %v, want read_only naming leader", err)
	}
}

// TestFollowerResyncAfterCompaction: when the leader compacts past the
// follower's cursor while it is offline, the restart re-bootstraps from a
// fresh snapshot instead of failing or serving stale state.
func TestFollowerResyncAfterCompaction(t *testing.T) {
	seed := int64(53)
	lsrv, err := serve.NewWithJournal(journal.New(journal.WithRing(2)))
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(lsrv)
	t.Cleanup(lts.Close)
	t.Cleanup(lsrv.Close)
	lc := client.New(lts.URL)
	ctx := context.Background()

	g := generator.Synthetic(30, 90, generator.DefaultSchema(2), seed)
	if _, err := lc.LoadGraph(ctx, g); err != nil {
		t.Fatal(err)
	}
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
	if _, err := lc.Register(ctx, "p", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}

	f, fc := startFollower(t, lts.URL)
	ctx1, cancel1 := context.WithCancel(ctx)
	done1 := make(chan error, 1)
	go func() { done1 <- f.Run(ctx1) }()
	waitConverged(t, f, lc)
	cancel1()
	<-done1

	// Offline churn far past the ring: the catch-up range is compacted.
	storm(t, lc, 12, 8, seed+1)

	ctx2, cancel2 := context.WithCancel(ctx)
	done2 := make(chan error, 1)
	go func() { done2 <- f.Run(ctx2) }()
	t.Cleanup(func() { cancel2(); <-done2 })
	head := waitConverged(t, f, lc)
	if f.Stats().Bootstraps < 2 {
		t.Fatalf("compacted catch-up took %d bootstraps, want a snapshot re-sync", f.Stats().Bootstraps)
	}
	requireSameResult(t, lc, fc, "p", head)
}
