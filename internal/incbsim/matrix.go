package incbsim

// MatrixEngine is IncBMatchᵐ, the incremental bounded-simulation matcher of
// Fan et al. 2010 that the paper uses as a baseline in Fig. 19: it
// maintains a full all-pairs distance matrix (O(|V|²) space) instead of
// landmark vectors or bounded searches. Insertions relax the matrix in
// O(|V|²); deletions force a full matrix rebuild; flipped pairs are found
// by a global scan. It produces the same matches as Engine — only the cost
// profile differs, which is exactly what the figure measures.

import (
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// MatrixEngine maintains bounded simulation with an all-pairs matrix.
type MatrixEngine struct {
	e    *Engine
	g    *graph.Graph // the owned graph (MatrixEngine has no shared mode)
	n    int
	dist []int32 // row-major n×n hop distances
}

const inf32 = int32(1) << 30

// NewMatrix builds the matrix-based engine.
func NewMatrix(p *pattern.Pattern, g *graph.Graph) (*MatrixEngine, error) {
	inner, err := New(p, g)
	if err != nil {
		return nil, err
	}
	m := &MatrixEngine{e: inner, g: g, n: g.NumNodes()}
	m.dist = make([]int32, m.n*m.n)
	m.recompute(m.dist)
	return m, nil
}

// recompute fills dst with fresh all-pairs BFS distances.
func (m *MatrixEngine) recompute(dst []int32) {
	row := make([]int, m.n)
	for u := 0; u < m.n; u++ {
		m.g.BFSFrom(u, graph.Forward, row)
		base := u * m.n
		for v, d := range row {
			if d >= graph.Unreachable {
				dst[base+v] = inf32
			} else {
				dst[base+v] = int32(d)
			}
		}
	}
}

// Result returns the current maximum match.
func (m *MatrixEngine) Result() rel.Relation { return m.e.Result() }

// Stats returns the inner engine's statistics.
func (m *MatrixEngine) Stats() Stats { return m.e.Stats() }

// Graph returns the data graph (do not mutate directly).
func (m *MatrixEngine) Graph() *graph.Graph { return m.g }

// Bytes reports the matrix footprint.
func (m *MatrixEngine) Bytes() int64 { return int64(len(m.dist)) * 4 }

// nonemptyOld returns the old-matrix nonempty distance (cycle-aware).
func nonemptyAt(dist []int32, n int, g graph.View, u, v graph.NodeID) int32 {
	if u != v {
		return dist[u*n+v]
	}
	best := inf32
	for _, c := range g.Out(u) {
		if c == u {
			return 1
		}
		if d := dist[c*n+u]; d != inf32 && d+1 < best {
			best = d + 1
		}
	}
	return best
}

// Batch applies updates: matrix maintenance, global flip scan, then the
// shared cascade/promotion machinery.
func (m *MatrixEngine) Batch(ups []graph.Update) {
	e := m.e
	e.mu.Lock()
	defer e.mu.Unlock()
	// Arm the inner engine's change-set so cascade/promote invalidate its
	// cached Result() snapshot (drainTouched/promote record through it).
	e.beginChanges()
	defer e.endChanges()
	net := graph.NetUpdates(e.g, ups)
	if len(net) == 0 {
		return
	}
	old := m.dist
	// Snapshot the out-adjacency relevant to self-distance before mutating.
	oldGirth := make(map[graph.NodeID]int32)
	for u := range e.sat {
		for v := range e.sat[u] {
			if _, ok := oldGirth[v]; !ok {
				oldGirth[v] = nonemptyAt(old, m.n, e.g, v, v)
			}
		}
	}
	hasDelete := false
	for _, up := range net {
		e.applyEdge(up)
		if up.Op == graph.DeleteEdge {
			hasDelete = true
		}
	}
	fresh := make([]int32, m.n*m.n)
	if hasDelete {
		m.recompute(fresh) // deletions invalidate the matrix wholesale
	} else {
		// Pure insertions: O(|ΔG||V|²) min-plus relaxations.
		copy(fresh, old)
		for _, up := range net {
			a, b := up.From, up.To
			for u := 0; u < m.n; u++ {
				da := fresh[u*m.n+a]
				if u == a {
					da = 0
				}
				if da == inf32 {
					continue
				}
				for v := 0; v < m.n; v++ {
					db := fresh[b*m.n+v]
					if b == v {
						db = 0
					}
					if db == inf32 {
						continue
					}
					if nd := da + 1 + db; nd < fresh[u*m.n+v] {
						fresh[u*m.n+v] = nd
					}
				}
			}
		}
	}
	m.dist = fresh

	newNE := func(u, v graph.NodeID) int32 { return nonemptyAt(fresh, m.n, e.g, u, v) }
	oldNE := func(u, v graph.NodeID) int32 {
		if u != v {
			return old[u*m.n+v]
		}
		return oldGirth[u]
	}

	// Global flip scan over ss pairs (the O(|Ep||V|²) cost that keeps this
	// baseline from scaling).
	touched := make(map[int]map[graph.NodeID]bool)
	for ei, pe := range e.edges {
		bound := int32(inf32)
		if pe.Bound != pattern.Unbounded {
			bound = int32(pe.Bound)
		}
		for v := range e.match[pe.From] {
			for w := range e.match[pe.To] {
				o, nw := oldNE(v, w), newNE(v, w)
				e.stats.PairsExamined++
				oldIn := o >= 1 && o <= bound && o != inf32
				newIn := nw >= 1 && nw <= bound && nw != inf32
				switch {
				case oldIn && !newIn:
					e.cnt[ei][v]--
					e.stats.CounterUpdates++
					markTouched(touched, ei, v)
				case !oldIn && newIn:
					e.cnt[ei][v]++
					e.stats.CounterUpdates++
				}
			}
		}
	}
	e.drainTouched(touched)

	// Seeds: candidates that gained any within-bound satisfying target.
	seeds := make(map[pair]bool)
	for _, pe := range e.edges {
		bound := int32(inf32)
		if pe.Bound != pattern.Unbounded {
			bound = int32(pe.Bound)
		}
		for v := range e.sat[pe.From] {
			if !e.isCandidate(pe.From, v) {
				continue
			}
			for w := range e.sat[pe.To] {
				o, nw := oldNE(v, w), newNE(v, w)
				oldIn := o >= 1 && o <= bound && o != inf32
				newIn := nw >= 1 && nw <= bound && nw != inf32
				if newIn && !oldIn {
					seeds[pair{pe.From, v}] = true
					break
				}
			}
		}
	}
	e.promote(seeds)
}

// Apply processes updates one at a time (each paying a matrix pass).
func (m *MatrixEngine) Apply(ups []graph.Update) {
	for _, up := range ups {
		m.Batch([]graph.Update{up})
	}
}
