package incbsim

import (
	"math/rand"
	"testing"

	"gpm/internal/core"
	"gpm/internal/fixtures"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/landmark"
	"gpm/internal/pattern"
)

func mustEngine(t *testing.T, p *pattern.Pattern, g *graph.Graph, opts ...Option) *Engine {
	t.Helper()
	e, err := New(p, g, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func assertMatchesBatch(t *testing.T, e *Engine, context string) {
	t.Helper()
	want := core.Match(e.Pattern(), e.Graph())
	if got := e.Result(); !got.Equal(want) {
		t.Fatalf("%s: incremental=%v batch=%v", context, got, want)
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatalf("%s: invariant violated: %v", context, err)
	}
}

func TestInitialStateMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := generator.RandomGraph(14, 26, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 3, seed+100)
		e := mustEngine(t, p, g)
		assertMatchesBatch(t, e, "initial")
	}
}

func TestFriendFeedScenario(t *testing.T) {
	// Example 4.1/4.2: applying e1..e5 one at a time; after e2 Don becomes
	// a new CTO match.
	p, g, ids, ups := fixtures.FriendFeed()
	e := mustEngine(t, p, g)
	if e.IsMatch(0, ids["Don"]) {
		t.Fatal("Don must not match CTO initially")
	}
	for i, up := range ups {
		e.Insert(up.From, up.To)
		assertMatchesBatch(t, e, "after update "+string(rune('1'+i)))
		if i >= 1 && !e.IsMatch(0, ids["Don"]) { // e2 is ups[1]
			t.Fatalf("after e%d: Don should match CTO", i+1)
		}
	}
}

func TestCollaborationCutAndRestore(t *testing.T) {
	// Example 2.2(3): cutting (DB, Gen) empties the match; restoring it
	// brings the full match back.
	p, g, ids, cut := fixtures.Collaboration()
	e := mustEngine(t, p, g)
	if e.Result().Empty() {
		t.Fatal("initial match should be nonempty")
	}
	e.Delete(cut.From, cut.To)
	assertMatchesBatch(t, e, "after cut")
	if !e.Result().Empty() {
		t.Fatalf("after cut: %v, want empty", e.Result())
	}
	e.Insert(cut.From, cut.To)
	assertMatchesBatch(t, e, "after restore")
	if !e.IsMatch(0, ids["DB"]) {
		t.Fatal("DB should match CS again after restore")
	}
}

func TestUnitUpdatesMatchBatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		g := generator.RandomGraph(12, 18, 3, int64(trial))
		p := generator.RandomPattern(3, 4, 3, 3, int64(trial)+200)
		e := mustEngine(t, p, g)
		n := g.NumNodes()
		for step := 0; step < 25; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				e.Insert(u, v)
			} else {
				e.Delete(u, v)
			}
			assertMatchesBatch(t, e, "randomized step")
		}
	}
}

func TestUnboundedPatternUpdates(t *testing.T) {
	// * edges: reachability semantics under churn (Fig. 11 witness family).
	p, g, ups := fixtures.BSimWitness(4, 3, 4)
	e := mustEngine(t, p, g)
	if !e.Result().Empty() {
		t.Fatal("initial match should be empty")
	}
	e.Insert(ups.E1.From, ups.E1.To)
	assertMatchesBatch(t, e, "after e1")
	if !e.Result().Empty() {
		t.Fatal("after e1 only: match should still be empty")
	}
	e.Insert(ups.E2.From, ups.E2.To)
	assertMatchesBatch(t, e, "after e2")
	if got := e.Result().Size(); got != 8 {
		t.Fatalf("after e2: %d pairs, want 8", got)
	}
	// Now cut the bridge again: everything must collapse.
	e.Delete(ups.E1.From, ups.E1.To)
	assertMatchesBatch(t, e, "after cutting e1")
	if !e.Result().Empty() {
		t.Fatal("after cutting the bridge: match should be empty")
	}
}

func TestBatchMatchesBatchRecomputation(t *testing.T) {
	for trial := int64(0); trial < 12; trial++ {
		g := generator.RandomGraph(16, 30, 3, trial+50)
		p := generator.RandomPattern(4, 5, 3, 3, trial+300)
		e := mustEngine(t, p, g)
		ups := generator.Updates(g, 6, 6, trial+400)
		e.Batch(ups)
		assertMatchesBatch(t, e, "after batch")
	}
}

func TestApplyNaiveEqualsBatch(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		g := generator.RandomGraph(14, 24, 3, trial+70)
		p := generator.RandomPattern(3, 4, 3, 3, trial+500)
		g2 := g.Clone()
		eN := mustEngine(t, p, g)
		eB := mustEngine(t, p, g2)
		ups := generator.Updates(g, 5, 5, trial+600)
		eN.Apply(ups)
		eB.Batch(ups)
		if !eN.Result().Equal(eB.Result()) {
			t.Fatalf("trial %d: naive=%v batch=%v", trial, eN.Result(), eB.Result())
		}
	}
}

func TestWithLandmarkIndexStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		g := generator.RandomGraph(12, 20, 3, int64(trial)+80)
		ix := landmark.New(g)
		p := generator.RandomPattern(3, 4, 3, 3, int64(trial)+700)
		e := mustEngine(t, p, g, WithLandmarkIndex(ix))
		n := g.NumNodes()
		for step := 0; step < 15; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				e.Insert(u, v)
			} else {
				e.Delete(u, v)
			}
			assertMatchesBatch(t, e, "landmark-backed step")
		}
	}
}

func TestLandmarkIndexGraphMismatch(t *testing.T) {
	g := generator.RandomGraph(8, 12, 2, 1)
	other := generator.RandomGraph(8, 12, 2, 2)
	ix := landmark.New(other)
	p := generator.RandomPattern(3, 3, 2, 2, 3)
	if _, err := New(p, g, WithLandmarkIndex(ix)); err == nil {
		t.Fatal("want error for index over a different graph")
	}
}

func TestMatrixEngineEqualsBatch(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		g := generator.RandomGraph(14, 24, 3, trial+90)
		p := generator.RandomPattern(3, 4, 3, 3, trial+800)
		m, err := NewMatrix(p, g)
		if err != nil {
			t.Fatalf("NewMatrix: %v", err)
		}
		ups := generator.Updates(g, 5, 5, trial+900)
		m.Batch(ups)
		want := core.Match(p, g)
		if got := m.Result(); !got.Equal(want) {
			t.Fatalf("trial %d: matrix=%v batch=%v", trial, got, want)
		}
		if err := m.e.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMatrixEngineUnitUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := generator.RandomGraph(12, 20, 3, 123)
	p := generator.RandomPattern(3, 4, 3, 3, 456)
	m, err := NewMatrix(p, g)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		u, v := rng.Intn(12), rng.Intn(12)
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			m.Apply([]graph.Update{graph.Insert(u, v)})
		} else {
			m.Apply([]graph.Update{graph.Delete(u, v)})
		}
		want := core.Match(p, g)
		if got := m.Result(); !got.Equal(want) {
			t.Fatalf("step %d: matrix=%v batch=%v", step, got, want)
		}
	}
}

func TestNoOpUpdates(t *testing.T) {
	g := generator.RandomGraph(10, 15, 2, 5)
	p := generator.RandomPattern(3, 3, 2, 2, 6)
	e := mustEngine(t, p, g)
	before := e.Result()
	// Deleting a missing edge and inserting an existing one are no-ops.
	var existing [2]graph.NodeID
	g.Edges(func(u, v graph.NodeID) bool { existing = [2]graph.NodeID{u, v}; return false })
	if e.Insert(existing[0], existing[1]) {
		t.Fatal("inserting existing edge should report false")
	}
	var missing [2]graph.NodeID = [2]graph.NodeID{-1, -1}
	for i := 0; i < 10 && missing[0] < 0; i++ {
		for j := 0; j < 10; j++ {
			if i != j && !g.HasEdge(i, j) {
				missing = [2]graph.NodeID{i, j}
				break
			}
		}
	}
	if e.Delete(missing[0], missing[1]) {
		t.Fatal("deleting missing edge should report false")
	}
	if !e.Result().Equal(before) {
		t.Fatal("no-op updates changed the result")
	}
}

func TestStatsAccumulate(t *testing.T) {
	p, g, _, ups := fixtures.FriendFeed()
	e := mustEngine(t, p, g)
	e.ResetStats()
	for _, up := range ups {
		e.Insert(up.From, up.To)
	}
	if e.Stats().Total() == 0 {
		t.Fatal("stats should be nonzero after updates")
	}
	if e.Stats().Promotions == 0 {
		t.Fatal("promotions should have been recorded (Don, Tom edges)")
	}
}

func TestResultGraphProjectsPaths(t *testing.T) {
	p, g, ids, _ := fixtures.FriendFeed()
	e := mustEngine(t, p, g)
	rg := e.ResultGraph()
	// CTO→DB bound 2: Ann reaches Dan via Pat, so (Ann, Dan) is a result
	// edge even though G has no such edge.
	if !rg.HasEdge(ids["Ann"], ids["Dan"]) {
		t.Fatalf("result graph should contain the 2-hop projection (Ann, Dan): %v", rg)
	}
}
