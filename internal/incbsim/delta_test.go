package incbsim

import (
	"reflect"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

// TestDeltaEquivalence replays random update streams and checks, after
// every unit update, that the reported ΔM applied to the old visible
// result reproduces the new visible result exactly.
func TestDeltaEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := generator.Synthetic(100, 400, generator.DefaultSchema(3), seed)
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		e, err := New(p, g)
		if err != nil {
			t.Fatal(err)
		}
		acc := e.Result().Clone()
		for _, up := range generator.Updates(g, 40, 40, seed+10) {
			if up.Op == graph.InsertEdge {
				_, d := e.InsertDelta(up.From, up.To)
				d.Apply(acc)
			} else {
				_, d := e.DeleteDelta(up.From, up.To)
				d.Apply(acc)
			}
			if !acc.Equal(e.Result()) {
				t.Fatalf("seed %d: accumulated deltas diverge from Result() after %v", seed, up)
			}
		}
	}
}

// TestBatchDeltaEquivalence checks the batch path: one ΔM per batch
// applied to the pre-batch result equals the post-batch result.
func TestBatchDeltaEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := generator.Synthetic(100, 400, generator.DefaultSchema(3), seed)
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		e, err := New(p, g)
		if err != nil {
			t.Fatal(err)
		}
		ups := generator.Updates(g, 30, 30, seed+20)
		for i := 0; i < len(ups); i += 10 {
			end := i + 10
			if end > len(ups) {
				end = len(ups)
			}
			before := e.Result().Clone()
			d := e.BatchDelta(ups[i:end])
			d.Apply(before)
			if !before.Equal(e.Result()) {
				t.Fatalf("seed %d: batch delta diverges from Result() at chunk %d", seed, i)
			}
		}
	}
}

// TestResultSnapshotCached verifies Result() returns the same cached
// snapshot between writes and stays correct across them.
func TestResultSnapshotCached(t *testing.T) {
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), 1)
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, 1)
	e, err := New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	r1 := e.Result()
	r2 := e.Result()
	if reflect.ValueOf(r1).Pointer() != reflect.ValueOf(r2).Pointer() {
		t.Fatal("Result() re-allocated between writes")
	}
	e.Batch(generator.Updates(g, 5, 5, 2))
	if !e.Result().Equal(e.Result()) {
		t.Fatal("post-write snapshot unstable")
	}
}

// TestParallelInsertSweepEquivalence replays an insertion-heavy stream
// through a serial and a parallel engine and demands identical matches
// after every unit update, with invariants intact — the insertion-sweep
// mirror of TestParallelDeleteRepairEquivalence.
func TestParallelInsertSweepEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g1 := generator.Synthetic(120, 360, generator.DefaultSchema(3), seed)
		g2 := g1.Clone()
		p := generator.EmbeddedPattern(g1, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		serial, err := New(p, g1, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := New(p, g2, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, up := range generator.Updates(g1, 80, 10, seed+40) {
			if up.Op == graph.InsertEdge {
				serial.Insert(up.From, up.To)
				parallel.Insert(up.From, up.To)
			} else {
				serial.Delete(up.From, up.To)
				parallel.Delete(up.From, up.To)
			}
			if !serial.Result().Equal(parallel.Result()) {
				t.Fatalf("seed %d: after %v parallel result differs from serial", seed, up)
			}
			if err := parallel.checkInvariants(); err != nil {
				t.Fatalf("seed %d: after %v: %v", seed, up, err)
			}
		}
		if s, p2 := serial.Stats(), parallel.Stats(); s != p2 {
			t.Fatalf("seed %d: stats diverge: serial %+v parallel %+v", seed, s, p2)
		}
	}
}

// TestMatrixEngineResultFreshAfterBatch is a regression test: a Result()
// call before Batch primes the cached snapshot, and the batch (which goes
// through MatrixEngine's own repair path, not the Engine wrappers) must
// invalidate it rather than serve pre-batch results.
func TestMatrixEngineResultFreshAfterBatch(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g1 := generator.Synthetic(80, 320, generator.DefaultSchema(3), seed)
		g2 := g1.Clone()
		p := generator.EmbeddedPattern(g1, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		m, err := NewMatrix(p, g1)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(p, g2)
		if err != nil {
			t.Fatal(err)
		}
		_ = m.Result() // prime the cache
		ups := generator.Updates(g1, 25, 25, seed+90)
		m.Batch(ups)
		e.Batch(ups)
		if !m.Result().Equal(e.Result()) {
			t.Fatalf("seed %d: MatrixEngine served a stale cached result after Batch", seed)
		}
	}
}
