package incbsim

// Unit and batch updates. Touching edge (a, b) only changes distances of
// pairs (v, w) whose (new or old) shortest path routes through it, so v
// must reach a within km-1 hops and w must be within km-1 hops of b. The
// sweep therefore needs just two shared bounded BFS runs (ancestors of a,
// descendants of b) plus one old-graph bounded BFS per surviving source —
// the affected-area confinement of Theorem 6.1(2). For insertions the new
// distance is witnessed by d(v,a)+1+d(b,w) directly (no post-update BFS);
// for deletions a post-update BFS runs only for sources that actually had
// a tight pair through the deleted edge.

import (
	"gpm/internal/distance"
	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/rel"
)

// neighborhood captures one side of the affected area: node → nonempty-path
// distance, with the anchor itself at distance 0.
type neighborhood map[graph.NodeID]int

// ancestorsOf returns {v : dist(v, a) <= bound} with a ↦ 0.
func (e *Engine) ancestorsOf(a graph.NodeID, bound int) neighborhood {
	nb := neighborhood{a: 0}
	if bound >= 1 {
		e.bfs.AncNonempty(a, bound, func(w graph.NodeID, d int) bool {
			if _, ok := nb[w]; !ok {
				nb[w] = d
			}
			return true
		})
	}
	return nb
}

// descendantsOf returns {w : dist(b, w) <= bound} with b ↦ 0.
func (e *Engine) descendantsOf(b graph.NodeID, bound int) neighborhood {
	nb := neighborhood{b: 0}
	if bound >= 1 {
		e.bfs.DescNonempty(b, bound, func(w graph.NodeID, d int) bool {
			if _, ok := nb[w]; !ok {
				nb[w] = d
			}
			return true
		})
	}
	return nb
}

// descMapWith captures the nonempty-path distances from v within bound
// over an explicit oracle, so parallel workers can use private scratch
// space.
func descMapWith(b *distance.BFS, v graph.NodeID, bound int) map[graph.NodeID]int {
	m := make(map[graph.NodeID]int)
	if bound >= 1 {
		b.DescNonempty(v, bound, func(w graph.NodeID, d int) bool {
			m[w] = d
			return true
		})
	}
	return m
}

// maxBoundFor returns the largest bound over pattern edges whose source
// predicate v satisfies (0 if none): the radius of v's stake in the sweep.
func (e *Engine) maxBoundFor(v graph.NodeID) int {
	maxK := 0
	for _, ei := range e.edgesBySat(v) {
		if b := e.edges[ei].Bound; b > maxK {
			maxK = b
		}
	}
	return maxK
}

// edgesBySat lists the pattern-edge indices whose source predicate v
// satisfies.
func (e *Engine) edgesBySat(v graph.NodeID) []int {
	var out []int
	for ei, pe := range e.edges {
		if e.sat[pe.From].Has(v) {
			out = append(out, ei)
		}
	}
	return out
}

// applyEdge routes a graph mutation through the landmark index when one is
// attached, keeping it exact.
func (e *Engine) applyEdge(up graph.Update) bool {
	if e.lmIdx != nil {
		if up.Op == graph.InsertEdge {
			return e.lmIdx.Insert(up.From, up.To)
		}
		return e.lmIdx.Delete(up.From, up.To)
	}
	changed, _ := e.g.Apply(up)
	return changed
}

// insFlips collects one source's outcome of an insertion sweep: per-edge
// counter increments and the pattern nodes it newly seeds for promotion.
type insFlips struct {
	v     graph.NodeID
	incs  []eiCount
	seeds []int // pattern nodes u such that (u, v) becomes a promotion seed
}

// eiCount is a per-pattern-edge counter adjustment.
type eiCount struct {
	ei int
	n  int32
}

// insertSweep processes one edge insertion (a, b): it adjusts support
// counters for ss pairs flipping within bound and records promotion seeds
// for candidate sources gaining a target. The graph is mutated inside.
//
// The per-source scan (one lazy old-graph bounded BFS each) only reads
// engine state that is stable during the sweep, so it is embarrassingly
// parallel over sources and runs on the engine's worker pool, mirroring
// the deletion repair; counter and seed mutations stay serial.
func (e *Engine) insertSweep(a, b graph.NodeID, seeds map[pair]bool) bool {
	if e.g.HasEdge(a, b) {
		return false
	}
	// Both neighbourhoods are identical before and after the insertion (the
	// edge leaves a and enters b), so compute them pre-insert.
	km := e.km
	anc := e.ancestorsOf(a, km-1)
	desc := e.descendantsOf(b, km-1)
	// Pre-filter b's neighbourhood per pattern edge: potential new targets
	// for counters (matches of the target) and for seeds (satisfying nodes).
	type wd struct {
		w graph.NodeID
		d int
	}
	descMatch := make([][]wd, len(e.edges))
	descSat := make([][]wd, len(e.edges))
	for ei, pe := range e.edges {
		for w, dbw := range desc {
			if dbw+1 > pe.Bound {
				continue
			}
			if e.match[pe.To].Has(w) {
				descMatch[ei] = append(descMatch[ei], wd{w, dbw})
			}
			if e.sat[pe.To].Has(w) {
				descSat[ei] = append(descSat[ei], wd{w, dbw})
			}
		}
	}

	// collectIns gathers, for one source v at distance dva above a, the
	// counter increments and promotion seeds the insertion causes. It reads
	// seeds but never writes it (writes happen in the serial apply phase).
	collectIns := func(bfs *distance.BFS, v graph.NodeID, dva int) (flips insFlips, examined int64) {
		flips.v = v
		// One old-graph snapshot around v tells which pairs were already
		// within bound — computed lazily, only when v has in-budget targets.
		var oldD map[graph.NodeID]int
		snapshot := func(maxK int) map[graph.NodeID]int {
			if oldD == nil {
				oldD = descMapWith(bfs, v, maxK)
				examined += int64(len(oldD))
			}
			return oldD
		}
		maxK := e.maxBoundFor(v)
		if maxK == 0 || dva+1 > maxK {
			return flips, examined
		}
		for ei, pe := range e.edges {
			budget := pe.Bound - dva - 1
			if budget < 0 {
				continue
			}
			isMatchSrc := e.match[pe.From].Has(v)
			isCand := !isMatchSrc && e.sat[pe.From].Has(v)
			if isMatchSrc {
				n := int32(0)
				for _, t := range descMatch[ei] {
					if t.d > budget {
						continue
					}
					// New distance ≤ dva+1+dbw ≤ bound: the pair is now
					// within bound. It flipped iff it was not before.
					if od, ok := snapshot(maxK)[t.w]; ok && od <= pe.Bound {
						continue
					}
					n++
				}
				if n > 0 {
					flips.incs = append(flips.incs, eiCount{ei, n})
				}
			} else if isCand && seeds != nil {
				if _, seeded := seeds[pair{pe.From, v}]; seeded {
					continue
				}
				for _, t := range descSat[ei] {
					if t.d > budget {
						continue
					}
					if od, ok := snapshot(maxK)[t.w]; ok && od <= pe.Bound {
						continue
					}
					flips.seeds = append(flips.seeds, pe.From)
					break
				}
			}
		}
		return flips, examined
	}

	var all []insFlips
	w := par.Resolve(e.workers, len(anc))
	if w == 1 {
		for v, dva := range anc {
			flips, ex := collectIns(e.bfs, v, dva)
			e.stats.PairsExamined += ex
			if len(flips.incs) > 0 || len(flips.seeds) > 0 {
				all = append(all, flips)
			}
		}
	} else {
		type srcEntry struct {
			v   graph.NodeID
			dva int
		}
		srcs := make([]srcEntry, 0, len(anc))
		for v, dva := range anc {
			srcs = append(srcs, srcEntry{v, dva})
		}
		results := make([]insFlips, len(srcs))
		examined := make([]int64, w)
		oracles := e.workerOracles(w)
		par.For(len(srcs), w, func(worker, i int) {
			flips, ex := collectIns(oracles[worker], srcs[i].v, srcs[i].dva)
			results[i] = flips
			examined[worker] += ex
		})
		for _, ex := range examined {
			e.stats.PairsExamined += ex
		}
		for _, flips := range results {
			if len(flips.incs) > 0 || len(flips.seeds) > 0 {
				all = append(all, flips)
			}
		}
	}
	for _, flips := range all {
		for _, inc := range flips.incs {
			e.cnt[inc.ei][flips.v] += inc.n
			e.stats.CounterUpdates += int64(inc.n)
		}
		for _, u := range flips.seeds {
			seeds[pair{u, flips.v}] = true
		}
	}
	return e.applyEdge(graph.Insert(a, b))
}

// candFlip is one (pattern edge, target node) pair whose within-bound
// status may flip for a given source during a deletion sweep.
type candFlip struct {
	ei int
	w  graph.NodeID
}

// srcFlips pairs a surviving source with its tight candidate flips.
type srcFlips struct {
	v     graph.NodeID
	flips []candFlip
}

// deleteSweep processes one edge deletion (a, b): pairs can only leave the
// bound, and only pairs whose old shortest path was tight through (a, b)
// qualify — everything else is pruned before any post-update BFS runs.
// Both per-source BFS phases (the old-graph tightness probe and the
// post-deletion re-measure) are embarrassingly parallel over sources and
// run on the engine's worker pool; counter mutations stay serial.
func (e *Engine) deleteSweep(a, b graph.NodeID, touched map[int]map[graph.NodeID]bool) bool {
	if !e.g.HasEdge(a, b) {
		return false
	}
	km := e.km
	anc := e.ancestorsOf(a, km-1)
	desc := e.descendantsOf(b, km-1)
	type wd struct {
		w graph.NodeID
		d int
	}
	descMatch := make([][]wd, len(e.edges))
	for ei, pe := range e.edges {
		for w, dbw := range desc {
			if dbw+1 <= pe.Bound && e.match[pe.To].Has(w) {
				descMatch[ei] = append(descMatch[ei], wd{w, dbw})
			}
		}
	}

	// collectTight gathers, for one source v at distance dva above a, the
	// match pairs whose old distance was realized through (a, b). It only
	// reads engine state that is stable during the sweep, so it is safe to
	// run from parallel workers given a private BFS oracle.
	collectTight := func(bfs *distance.BFS, v graph.NodeID, dva int) (flips []candFlip, examined int64) {
		maxK := 0
		for ei, pe := range e.edges {
			if e.match[pe.From].Has(v) && len(descMatch[ei]) > 0 && pe.Bound > maxK {
				maxK = pe.Bound
			}
		}
		if maxK == 0 || dva+1 > maxK {
			return nil, 0
		}
		var oldD map[graph.NodeID]int
		for ei, pe := range e.edges {
			if !e.match[pe.From].Has(v) {
				continue
			}
			budget := pe.Bound - dva - 1
			if budget < 0 {
				continue
			}
			for _, t := range descMatch[ei] {
				if t.d > budget {
					continue
				}
				if oldD == nil {
					oldD = descMapWith(bfs, v, maxK)
					examined += int64(len(oldD))
				}
				// The pair can change only if its old distance was realized
				// through (a, b).
				if od, ok := oldD[t.w]; ok && od == dva+1+t.d && od <= pe.Bound {
					flips = append(flips, candFlip{ei, t.w})
				}
			}
		}
		return flips, examined
	}

	var tight []srcFlips
	w := par.Resolve(e.workers, len(anc))
	if w == 1 {
		for v, dva := range anc {
			flips, ex := collectTight(e.bfs, v, dva)
			e.stats.PairsExamined += ex
			if len(flips) > 0 {
				tight = append(tight, srcFlips{v, flips})
			}
		}
	} else {
		type srcEntry struct {
			v   graph.NodeID
			dva int
		}
		srcs := make([]srcEntry, 0, len(anc))
		for v, dva := range anc {
			srcs = append(srcs, srcEntry{v, dva})
		}
		results := make([][]candFlip, len(srcs))
		examined := make([]int64, w)
		oracles := e.workerOracles(w)
		par.For(len(srcs), w, func(worker, i int) {
			flips, ex := collectTight(oracles[worker], srcs[i].v, srcs[i].dva)
			results[i] = flips
			examined[worker] += ex
		})
		for _, ex := range examined {
			e.stats.PairsExamined += ex
		}
		for i, flips := range results {
			if len(flips) > 0 {
				tight = append(tight, srcFlips{srcs[i].v, flips})
			}
		}
	}

	if !e.applyEdge(graph.Delete(a, b)) {
		return false
	}

	// Post-deletion: re-measure only the sources that had tight pairs. Each
	// source needs one fresh bounded BFS on the new graph — the dominant
	// cost of the repair, also farmed out to the workers.
	remeasure := func(bfs *distance.BFS, sf srcFlips) (drops []candFlip, examined int64) {
		maxK := 0
		for _, f := range sf.flips {
			if bnd := e.edges[f.ei].Bound; bnd > maxK {
				maxK = bnd
			}
		}
		newD := descMapWith(bfs, sf.v, maxK)
		examined = int64(len(newD))
		for _, f := range sf.flips {
			pe := e.edges[f.ei]
			if nd, ok := newD[f.w]; ok && nd <= pe.Bound {
				continue // an alternative path survives
			}
			drops = append(drops, f)
		}
		return drops, examined
	}

	w = par.Resolve(e.workers, len(tight))
	drops := make([][]candFlip, len(tight))
	if w == 1 {
		for i, sf := range tight {
			d, ex := remeasure(e.bfs, sf)
			drops[i] = d
			e.stats.PairsExamined += ex
		}
	} else {
		examined := make([]int64, w)
		oracles := e.workerOracles(w)
		par.For(len(tight), w, func(worker, i int) {
			d, ex := remeasure(oracles[worker], tight[i])
			drops[i] = d
			examined[worker] += ex
		})
		for _, ex := range examined {
			e.stats.PairsExamined += ex
		}
	}
	for i, sf := range tight {
		for _, f := range drops[i] {
			e.cnt[f.ei][sf.v]--
			e.stats.CounterUpdates++
			markTouched(touched, f.ei, sf.v)
		}
	}
	return true
}

func markTouched(touched map[int]map[graph.NodeID]bool, ei int, v graph.NodeID) {
	if touched[ei] == nil {
		touched[ei] = make(map[graph.NodeID]bool)
	}
	touched[ei][v] = true
}

// drainTouched scans the counters recorded in touched and cascades zeros.
func (e *Engine) drainTouched(touched map[int]map[graph.NodeID]bool) {
	var queue []pair
	for ei, nodes := range touched {
		src := e.edges[ei].From
		for v := range nodes {
			if e.cnt[ei][v] == 0 && e.match[src].Has(v) {
				e.match[src].Remove(v)
				queue = append(queue, pair{src, v})
			}
		}
	}
	e.cascade(queue)
}

// Delete removes edge (v0, v1), incrementally repairing the match
// (IncBMatch⁻). It reports whether the edge existed.
func (e *Engine) Delete(v0, v1 graph.NodeID) bool {
	ok, _ := e.DeleteDelta(v0, v1)
	return ok
}

// DeleteDelta is Delete additionally reporting the visible match delta ΔM
// of the update.
func (e *Engine) DeleteDelta(v0, v1 graph.NodeID) (bool, rel.Delta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	ok := e.deleteLocked(v0, v1)
	return ok, e.endChanges()
}

func (e *Engine) deleteLocked(v0, v1 graph.NodeID) bool {
	touched := make(map[int]map[graph.NodeID]bool)
	if !e.deleteSweep(v0, v1, touched) {
		return false
	}
	e.drainTouched(touched)
	return true
}

// Insert adds edge (v0, v1), incrementally repairing the match
// (IncBMatch⁺). It reports whether the edge was new.
func (e *Engine) Insert(v0, v1 graph.NodeID) bool {
	ok, _ := e.InsertDelta(v0, v1)
	return ok
}

// InsertDelta is Insert additionally reporting the visible match delta ΔM
// of the update.
func (e *Engine) InsertDelta(v0, v1 graph.NodeID) (bool, rel.Delta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	ok := e.insertLocked(v0, v1)
	return ok, e.endChanges()
}

func (e *Engine) insertLocked(v0, v1 graph.NodeID) bool {
	seeds := make(map[pair]bool)
	if !e.insertSweep(v0, v1, seeds) {
		return false
	}
	e.promote(seeds)
	return true
}

// Batch applies a mixed update list (IncBMatch): same-edge cancellation,
// then all deletions with a single cascade, then all insertions with a
// single promotion.
func (e *Engine) Batch(ups []graph.Update) {
	e.BatchDelta(ups)
}

// BatchDelta is Batch additionally reporting the visible match delta ΔM of
// the whole batch (with intra-batch remove/add cancellation).
func (e *Engine) BatchDelta(ups []graph.Update) rel.Delta {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	e.batchLocked(ups)
	return e.endChanges()
}

func (e *Engine) batchLocked(ups []graph.Update) {
	net := graph.NetUpdates(e.g, ups)
	touched := make(map[int]map[graph.NodeID]bool)
	for _, up := range net {
		if up.Op == graph.DeleteEdge {
			e.deleteSweep(up.From, up.To, touched)
		}
	}
	e.drainTouched(touched)
	seeds := make(map[pair]bool)
	for _, up := range net {
		if up.Op == graph.InsertEdge {
			e.insertSweep(up.From, up.To, seeds)
		}
	}
	e.promote(seeds)
}

// Apply is the naive baseline: unit updates one at a time.
func (e *Engine) Apply(ups []graph.Update) {
	e.ApplyDelta(ups)
}

// ApplyDelta is Apply additionally reporting the visible match delta ΔM of
// the whole batch.
func (e *Engine) ApplyDelta(ups []graph.Update) rel.Delta {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			e.insertLocked(up.From, up.To)
		} else {
			e.deleteLocked(up.From, up.To)
		}
	}
	return e.endChanges()
}

// promote runs the candidate-closure promotion over the pair graph: the
// bounded-simulation analogue of incsim's propCS/propCC followed by a
// greatest-fixpoint refinement.
func (e *Engine) promote(seeds map[pair]bool) {
	closure := make(map[pair]bool)
	var stack []pair
	push := func(pr pair) {
		if !closure[pr] {
			closure[pr] = true
			stack = append(stack, pr)
		}
	}
	for pr := range seeds {
		if e.isCandidate(pr.u, pr.v) {
			push(pr)
		}
	}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.stats.ClosureSize++
		for _, ei := range e.inEdges[pr.u] {
			pe := e.edges[ei]
			e.bfs.AncNonempty(pr.v, pe.Bound, func(w graph.NodeID, d int) bool {
				if e.isCandidate(pe.From, w) {
					push(pair{pe.From, w})
				}
				return true
			})
		}
	}
	if len(closure) == 0 {
		return
	}

	np := e.p.NumNodes()
	tentative := make([]map[graph.NodeID]bool, np)
	for u := range tentative {
		tentative[u] = make(map[graph.NodeID]bool)
	}
	for pr := range closure {
		tentative[pr.u][pr.v] = true
	}
	tcnt := make(map[int]map[graph.NodeID]int32, len(e.edges))
	for pr := range closure {
		for _, ei := range e.outEdges[pr.u] {
			pe := e.edges[ei]
			c := int32(0)
			e.bfs.DescNonempty(pr.v, pe.Bound, func(w graph.NodeID, d int) bool {
				if e.match[pe.To].Has(w) || tentative[pe.To][w] {
					c++
				}
				return true
			})
			if tcnt[ei] == nil {
				tcnt[ei] = make(map[graph.NodeID]int32)
			}
			tcnt[ei][pr.v] = c
		}
	}
	var queue []pair
	for pr := range closure {
		for _, ei := range e.outEdges[pr.u] {
			if tcnt[ei][pr.v] == 0 && tentative[pr.u][pr.v] {
				delete(tentative[pr.u], pr.v)
				queue = append(queue, pr)
			}
		}
	}
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ei := range e.inEdges[rm.u] {
			pe := e.edges[ei]
			e.bfs.AncNonempty(rm.v, pe.Bound, func(w graph.NodeID, d int) bool {
				if !tentative[pe.From][w] {
					return true
				}
				tcnt[ei][w]--
				if tcnt[ei][w] == 0 {
					delete(tentative[pe.From], w)
					queue = append(queue, pair{pe.From, w})
				}
				return true
			})
		}
	}

	var newPairs []pair
	for u := range tentative {
		for v := range tentative[u] {
			e.match[u].Add(v)
			e.stats.Promotions++
			e.cs.NoteAdded(u, v)
			newPairs = append(newPairs, pair{u, v})
		}
	}
	for _, pr := range newPairs {
		for _, ei := range e.outEdges[pr.u] {
			pe := e.edges[ei]
			c := int32(0)
			e.bfs.DescNonempty(pr.v, pe.Bound, func(w graph.NodeID, d int) bool {
				if e.match[pe.To].Has(w) {
					c++
				}
				return true
			})
			e.cnt[ei][pr.v] = c
			e.stats.CounterUpdates++
		}
		for _, ei := range e.inEdges[pr.u] {
			pe := e.edges[ei]
			e.bfs.AncNonempty(pr.v, pe.Bound, func(w graph.NodeID, d int) bool {
				if e.match[pe.From].Has(w) && !tentative[pe.From][w] {
					e.cnt[ei][w]++
					e.stats.CounterUpdates++
				}
				return true
			})
		}
	}
}
