package incbsim

import (
	"testing"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/graph"
)

// TestParallelDeleteRepairEquivalence replays a degree-biased update stream
// through a serial engine and a parallel engine and demands identical
// matches after every unit update, then cross-checks the final state
// against batch recomputation.
func TestParallelDeleteRepairEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g1 := generator.Synthetic(120, 480, generator.DefaultSchema(3), seed)
		g2 := g1.Clone()
		p := generator.EmbeddedPattern(g1, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)

		serial, err := New(p, g1, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := New(p, g2, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, up := range generator.Updates(g1, 40, 40, seed+100) {
			if up.Op == graph.InsertEdge {
				serial.Insert(up.From, up.To)
				parallel.Insert(up.From, up.To)
			} else {
				serial.Delete(up.From, up.To)
				parallel.Delete(up.From, up.To)
			}
			if !serial.Result().Equal(parallel.Result()) {
				t.Fatalf("seed %d: after %v parallel result differs from serial", seed, up)
			}
			if err := parallel.checkInvariants(); err != nil {
				t.Fatalf("seed %d: after %v: %v", seed, up, err)
			}
		}
		want := core.MatchBFS(p, g2)
		if !parallel.Result().Equal(want) {
			t.Fatalf("seed %d: final parallel result differs from batch recomputation", seed)
		}
	}
}

// TestParallelBatchEquivalence checks the batch path with parallel repair
// against serial batch processing.
func TestParallelBatchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g1 := generator.Synthetic(100, 400, generator.DefaultSchema(3), seed)
		g2 := g1.Clone()
		p := generator.EmbeddedPattern(g1, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		serial, err := New(p, g1, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := New(p, g2, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		ups := generator.Updates(g1, 30, 30, seed+200)
		serial.Batch(ups)
		parallel.Batch(ups)
		if !serial.Result().Equal(parallel.Result()) {
			t.Fatalf("seed %d: parallel batch result differs from serial", seed)
		}
	}
}
