package incbsim

import (
	"testing"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/landmark"
)

// Ablation: incremental bounded matching versus the matrix baseline versus
// batch recomputation, plus the landmark-backed variant — the Fig. 19
// design space at micro scale.

func benchSetup(b *testing.B) (*graph.Graph, []graph.Update) {
	b.Helper()
	g := generator.Synthetic(800, 3600, generator.DefaultSchema(8), 1)
	ups := generator.Updates(g, 25, 25, 2)
	return g, ups
}

func benchPattern(g *graph.Graph) generator.PatternParams {
	return generator.PatternParams{Nodes: 4, Edges: 5, Preds: 2, K: 3}
}

func BenchmarkIncBMatchBatch(b *testing.B) {
	g, ups := benchSetup(b)
	p := generator.DAGPattern(g, benchPattern(g), 3)
	e, err := New(p, g)
	if err != nil {
		b.Fatal(err)
	}
	inv := invert(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Batch(ups)
		e.Batch(inv)
	}
}

func BenchmarkIncBMatchLandmarkBacked(b *testing.B) {
	g, ups := benchSetup(b)
	p := generator.DAGPattern(g, benchPattern(g), 3)
	e, err := New(p, g, WithLandmarkIndex(landmark.New(g)))
	if err != nil {
		b.Fatal(err)
	}
	inv := invert(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Batch(ups)
		e.Batch(inv)
	}
}

func BenchmarkIncBMatchMatrixBaseline(b *testing.B) {
	g, ups := benchSetup(b)
	p := generator.DAGPattern(g, benchPattern(g), 3)
	m, err := NewMatrix(p, g)
	if err != nil {
		b.Fatal(err)
	}
	inv := invert(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Batch(ups)
		m.Batch(inv)
	}
}

func BenchmarkBatchRecomputeMatchbs(b *testing.B) {
	g, ups := benchSetup(b)
	p := generator.DAGPattern(g, benchPattern(g), 3)
	inv := invert(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApplyAll(ups) //nolint:errcheck
		core.MatchMatrix(p, g)
		g.ApplyAll(inv) //nolint:errcheck
		core.MatchMatrix(p, g)
	}
}

func invert(ups []graph.Update) []graph.Update {
	inv := make([]graph.Update, len(ups))
	for i, up := range ups {
		inv[len(ups)-1-i] = up.Inverse()
	}
	return inv
}
