// Package incbsim implements incremental bounded simulation (Section 6.3):
// the unit-update algorithms IncBMatch⁺/IncBMatch⁻ and the batch algorithm
// IncBMatch, plus the distance-matrix baseline IncBMatchᵐ of Fan et
// al. 2010 that the paper compares against in Fig. 19.
//
// Following Proposition 6.1, the engine reduces bounded simulation in G to
// simulation over the pair graph: for every pattern edge (u, u') with bound
// k it tracks, per match v of u, how many matches w of u' lie within k hops
// (the ss pairs of Table III). A graph update flips the within-bound status
// of node pairs only inside the km-hop neighbourhood of the touched edge
// (km = the maximum pattern bound), so the engine re-examines exactly that
// affected area: support counters are adjusted for flipped ss pairs,
// invalidations cascade as in incremental simulation, and new cs/cc pairs
// seed a candidate-closure promotion.
//
// Distance queries run against either a live bounded-BFS view or a
// maintained landmark index (Section 6.2/6.4) — the engine keeps the index
// exact by routing edge updates through it.
package incbsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpm/internal/distance"
	"gpm/internal/graph"
	"gpm/internal/landmark"
	"gpm/internal/pattern"
	"gpm/internal/rel"
	"gpm/internal/resultgraph"
)

// Stats tallies the affected area AFF touched by incremental maintenance.
type Stats struct {
	Removals       int64
	Promotions     int64
	CounterUpdates int64
	ClosureSize    int64
	PairsExamined  int64 // node pairs whose within-bound status was re-checked
}

// Total returns a scalar |AFF| measure.
func (s Stats) Total() int64 {
	return s.Removals + s.Promotions + s.CounterUpdates + s.ClosureSize + s.PairsExamined
}

// Engine maintains the maximum bounded-simulation match of a b-pattern
// over a mutable data graph. The engine owns the graph: all edge updates
// must go through Insert/Delete/Batch.
//
// The engine is safe for concurrent use: writers (Insert/Delete/Batch/
// Apply) are serialized by an internal mutex, and readers (Result,
// ResultGraph, IsMatch, IsCandidate, Stats) may run concurrently with
// each other and block only while a writer is applying an update.
type Engine struct {
	mu sync.RWMutex
	p  *pattern.Pattern
	// g is the graph every algorithm reads and writes. In owned mode it is
	// the *graph.Graph passed to New; in shared mode (NewShared) it is a
	// private overlay over a base View the engine does not own, so the
	// repair's interleaved old-state probes and mutations stay private
	// while the base is untouched.
	g        graph.Mutable
	own      *graph.Graph   // the owned graph (nil in shared mode)
	ov       *graph.Overlay // the private overlay (nil in owned mode)
	edges    []pattern.Edge
	outEdges [][]int
	inEdges  [][]int
	km       int // max pattern bound (Unbounded if any * edge)

	sat   rel.Relation
	match rel.Relation
	// cnt[e][v]: for v ∈ match(src(e)), the number of w ∈ match(tgt(e))
	// within bound(e) of v by a nonempty path.
	cnt []map[graph.NodeID]int32

	bfs   *distance.BFS   // live bounded-BFS view of g (enumeration + fallback Dist)
	lmIdx *landmark.Index // optional maintained landmark index for Dist

	workers int             // parallelism of the insert/delete repair sweeps (0 = default)
	parBFS  []*distance.BFS // per-worker BFS oracles for parallel sweeps
	presat  rel.Relation    // injected sat sets (WithSat), nil to scan the graph

	// Per-write change-set: armed by beginChanges, recorded by cascade and
	// promote, converted to a user-visible ΔM by endChanges. Nil outside a
	// write (and during the initial rebuild).
	cs *rel.ChangeSet

	// snap caches the user-visible Result() snapshot between writes; any
	// write that changes match() invalidates it, so repeated reads are
	// allocation-free and never block behind a writer.
	snap atomic.Pointer[rel.Relation]

	stats Stats
}

// Option configures the engine.
type Option func(*Engine)

// WithLandmarkIndex makes the engine maintain and query a landmark +
// distance-vector index (Section 6.2) instead of answering single-pair
// distance queries by BFS. The index must have been built over the same
// graph passed to New.
func WithLandmarkIndex(ix *landmark.Index) Option {
	return func(e *Engine) { e.lmIdx = ix }
}

// WithWorkers bounds the parallelism of the per-source BFS sweeps in the
// deletion repair: 0 selects the default (par.DefaultWorkers), 1 keeps the
// repair serial.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithSat injects precomputed satisfaction sets instead of scanning the
// graph at build time: sat[u] must equal {v : fV(u) holds on v's attributes}
// over the engine's graph, with len(sat) == the pattern's node count. The
// engine reads the given sets but never mutates them, so one sat relation
// may be shared across many engines — the shared evaluation network injects
// each predicate node's set into every engine that uses the predicate.
func WithSat(sat rel.Relation) Option {
	return func(e *Engine) { e.presat = sat }
}

// workerOracles returns w BFS oracles over the engine's graph, one per
// worker, allocated lazily and reused across sweeps. Distinct from e.bfs so
// parallel sweeps never share scratch with the serial paths.
func (e *Engine) workerOracles(w int) []*distance.BFS {
	for len(e.parBFS) < w {
		e.parBFS = append(e.parBFS, distance.NewBFS(e.g))
	}
	return e.parBFS[:w]
}

// New builds an engine for b-pattern p over graph g, computing the initial
// match with the batch Match algorithm's refinement.
func New(p *pattern.Pattern, g *graph.Graph, options ...Option) (*Engine, error) {
	return build(p, g, g, nil, options)
}

// NewShared builds an engine that reads base through a private update
// overlay instead of owning a graph replica: per-pattern memory is the
// engine's auxiliary structures only, O(pattern-state) instead of O(|G|).
//
// Contract: every write call repairs the match against base ⊕ updates and
// then discards the overlay, so the caller must commit exactly those
// effective updates to the base before the next write. A landmark index
// cannot be attached in shared mode (it maintains owned storage).
func NewShared(p *pattern.Pattern, base graph.View, options ...Option) (*Engine, error) {
	ov := graph.NewOverlay(base)
	return build(p, ov, nil, ov, options)
}

func build(p *pattern.Pattern, g graph.Mutable, own *graph.Graph, ov *graph.Overlay, options []Option) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasColors() {
		return nil, fmt.Errorf("incbsim: colored patterns are batch-only (use core.MatchColored)")
	}
	e := &Engine{p: p, g: g, own: own, ov: ov, edges: p.Edges(), km: p.MaxBound(), bfs: distance.NewBFS(g)}
	for _, o := range options {
		o(e)
	}
	if e.lmIdx != nil && own == nil {
		return nil, fmt.Errorf("incbsim: landmark index requires an owned graph (not NewShared)")
	}
	if e.lmIdx != nil && e.lmIdx.Graph() != own {
		return nil, fmt.Errorf("incbsim: landmark index built over a different graph")
	}
	np := p.NumNodes()
	e.outEdges = make([][]int, np)
	e.inEdges = make([][]int, np)
	for i, pe := range e.edges {
		e.outEdges[pe.From] = append(e.outEdges[pe.From], i)
		e.inEdges[pe.To] = append(e.inEdges[pe.To], i)
	}
	if e.presat != nil {
		if len(e.presat) != np {
			return nil, fmt.Errorf("incbsim: WithSat: %d sets for %d pattern nodes", len(e.presat), np)
		}
		e.sat = e.presat
	} else {
		e.sat = rel.NewRelation(np)
		for u := 0; u < np; u++ {
			pred := p.Pred(u)
			for v := 0; v < g.NumNodes(); v++ {
				if pred.Eval(g.Attrs(v)) {
					e.sat[u].Add(v)
				}
			}
		}
	}
	e.rebuild()
	return e, nil
}

// dist returns the exact nonempty-path distance from u to v on the current
// graph, through the landmark index when present.
func (e *Engine) dist(u, v graph.NodeID) int {
	if e.lmIdx != nil {
		return distance.NonemptyDist(e.lmIdx, e.g, u, v)
	}
	return distance.NonemptyDist(e.bfs, e.g, u, v)
}

// within reports whether w lies within bound of v by a nonempty path.
func (e *Engine) within(v, w graph.NodeID, bound int) bool {
	return pattern.WithinBound(e.dist(v, w), bound)
}

// rebuild recomputes match() and all counters from scratch.
func (e *Engine) rebuild() {
	np := e.p.NumNodes()
	e.match = make(rel.Relation, np)
	for u := 0; u < np; u++ {
		e.match[u] = e.sat[u].Clone()
	}
	e.cnt = make([]map[graph.NodeID]int32, len(e.edges))
	for i, pe := range e.edges {
		e.cnt[i] = make(map[graph.NodeID]int32, e.match[pe.From].Len())
		tgt := e.match[pe.To]
		for v := range e.match[pe.From] {
			c := int32(0)
			e.bfs.DescNonempty(v, pe.Bound, func(w graph.NodeID, d int) bool {
				if tgt.Has(w) {
					c++
				}
				return true
			})
			e.cnt[i][v] = c
		}
	}
	var queue []pair
	for i, pe := range e.edges {
		for v, c := range e.cnt[i] {
			if c == 0 && e.match[pe.From].Has(v) {
				e.match[pe.From].Remove(v)
				queue = append(queue, pair{pe.From, v})
			}
		}
	}
	e.cascade(queue)
}

type pair struct {
	u int
	v graph.NodeID
}

// beginChanges arms the per-write change-set: until endChanges, every
// match() mutation is recorded (with add/remove cancellation) so the write
// can report its visible ΔM. Callers must hold the write lock.
func (e *Engine) beginChanges() { e.cs = rel.NewChangeSet(e.match) }

// endChanges disarms the change-set and converts it to the user-visible
// delta under the totality convention. A visible change invalidates the
// cached Result() snapshot.
func (e *Engine) endChanges() rel.Delta {
	d := e.cs.End(e.match)
	e.cs = nil
	if !d.Empty() {
		e.snap.Store(nil)
	}
	// Shared mode: the repair is done, discard the write's overlay diff
	// (the base owner commits the same updates before the next write).
	if e.ov != nil {
		e.ov.Reset()
	}
	return d
}

// cascade propagates match removals: each removal decrements the support
// counters of match ancestors within the relevant bounds.
func (e *Engine) cascade(queue []pair) {
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		e.stats.Removals++
		e.cs.NoteRemoved(rm.u, rm.v)
		for _, ei := range e.outEdges[rm.u] {
			delete(e.cnt[ei], rm.v)
		}
		for _, ei := range e.inEdges[rm.u] {
			pe := e.edges[ei]
			src := e.match[pe.From]
			e.bfs.AncNonempty(rm.v, pe.Bound, func(w graph.NodeID, d int) bool {
				if !src.Has(w) {
					return true
				}
				e.cnt[ei][w]--
				e.stats.CounterUpdates++
				if e.cnt[ei][w] == 0 {
					src.Remove(w)
					queue = append(queue, pair{pe.From, w})
				}
				return true
			})
		}
	}
}

// Pattern returns the engine's pattern.
func (e *Engine) Pattern() *pattern.Pattern { return e.p }

// Graph returns the engine's owned data graph, nil for a shared engine
// (NewShared). Do not mutate it directly; the returned pointer is live, so
// traversing it while a writer runs is racy — use the engine's methods
// instead.
func (e *Engine) Graph() *graph.Graph { return e.own }

// SharedBase returns the base view a shared engine reads through, nil for
// an owned engine.
func (e *Engine) SharedBase() graph.View {
	if e.ov == nil {
		return nil
	}
	return e.ov.Base()
}

// Stats returns cumulative affected-area statistics.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// ResetStats clears the statistics.
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// MatchSets exposes the per-node greatest bounded simulation (read-only).
// The returned sets are live: do not use them while writers may run.
func (e *Engine) MatchSets() rel.Relation { return e.match }

// IsMatch reports whether (u, v) is in the match structure.
func (e *Engine) IsMatch(u int, v graph.NodeID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.match[u].Has(v)
}

// IsCandidate reports whether v ∈ candt(u).
func (e *Engine) IsCandidate(u int, v graph.NodeID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.isCandidate(u, v)
}

func (e *Engine) isCandidate(u int, v graph.NodeID) bool {
	return e.sat[u].Has(v) && !e.match[u].Has(v)
}

// Result returns Mksim(P, G) under the totality convention.
//
// The returned relation is a shared immutable snapshot: callers must not
// mutate it. The snapshot is cached until the next write invalidates it,
// so repeated reads between updates are allocation-free and the fast path
// takes no lock at all.
func (e *Engine) Result() rel.Relation {
	if p := e.snap.Load(); p != nil {
		return *p
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if p := e.snap.Load(); p != nil {
		return *p
	}
	r := e.result()
	e.snap.Store(&r)
	return r
}

func (e *Engine) result() rel.Relation {
	for _, s := range e.match {
		if s.Len() == 0 {
			return rel.NewRelation(len(e.match))
		}
	}
	return e.match.Clone()
}

// ResultGraph builds the result graph Gr of the current match. It uses a
// private BFS oracle so concurrent readers never share scratch space.
func (e *Engine) ResultGraph() *resultgraph.Graph {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return resultgraph.FromBounded(e.p, e.g, e.result(), distance.NewBFS(e.g))
}

// checkInvariants recounts every support counter (test hook).
func (e *Engine) checkInvariants() error {
	for i, pe := range e.edges {
		for v := range e.match[pe.From] {
			c := int32(0)
			tgt := e.match[pe.To]
			e.bfs.DescNonempty(v, pe.Bound, func(w graph.NodeID, d int) bool {
				if tgt.Has(w) {
					c++
				}
				return true
			})
			if e.cnt[i][v] != c {
				return fmt.Errorf("cnt[%d][%d] = %d, recount = %d", i, v, e.cnt[i][v], c)
			}
			if c == 0 {
				return fmt.Errorf("match pair (%d,%d) unsupported for edge %d", pe.From, v, i)
			}
		}
	}
	if e.lmIdx != nil {
		for u := 0; u < e.g.NumNodes(); u++ {
			for v := 0; v < e.g.NumNodes(); v++ {
				if e.lmIdx.Dist(u, v) != e.bfs.Dist(u, v) {
					return fmt.Errorf("landmark Dist(%d,%d)=%d, BFS=%d", u, v, e.lmIdx.Dist(u, v), e.bfs.Dist(u, v))
				}
			}
		}
	}
	return nil
}
