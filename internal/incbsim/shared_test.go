package incbsim

import (
	"reflect"
	"testing"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/landmark"
)

// TestSharedEngineMatchesOwned drives an owned engine and a shared engine
// (base + overlay) with identical batch streams, committing each batch to
// the shared base after the repair as the NewShared contract requires. The
// bounded repair interleaves old-state BFS probes with its own mutations,
// so this is the overlay's hardest client: all of it must stay private to
// the engine until the owner commits.
func TestSharedEngineMatchesOwned(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
		p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		base := g.Clone()
		owned, err := New(p, g.Clone())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewShared(p, base)
		if err != nil {
			t.Fatal(err)
		}
		if shared.Graph() != nil {
			t.Fatal("shared engine must not own a graph")
		}
		if shared.SharedBase() != graph.View(base) {
			t.Fatal("shared engine must read through the base it was given")
		}
		if !owned.Result().Equal(shared.Result()) {
			t.Fatalf("seed %d: initial results diverge", seed)
		}

		ups := generator.Updates(g, 30, 30, seed+10)
		for i := 0; i < len(ups); i += 6 {
			end := min(i+6, len(ups))
			batch := ups[i:end]
			d1 := owned.BatchDelta(batch)
			d2 := shared.BatchDelta(batch)
			if !reflect.DeepEqual(d1, d2) {
				t.Fatalf("seed %d batch %d: deltas diverge: %v vs %v", seed, i, d1, d2)
			}
			if _, err := base.ApplyAll(batch); err != nil {
				t.Fatal(err)
			}
			if !owned.Result().Equal(shared.Result()) {
				t.Fatalf("seed %d batch %d: results diverge", seed, i)
			}
		}
		if want := core.Match(p, base); !shared.Result().Equal(want) {
			t.Fatalf("seed %d: shared engine diverges from batch recomputation", seed)
		}
	}
}

// TestSharedEngineUnitUpdates exercises the unit Insert/Delete repair in
// shared mode, committing each unit update to the base right after it.
func TestSharedEngineUnitUpdates(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		g := generator.Synthetic(50, 200, generator.DefaultSchema(3), seed)
		p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 2}, seed)
		base := g.Clone()
		shared, err := NewShared(p, base)
		if err != nil {
			t.Fatal(err)
		}
		acc := shared.Result().Clone()
		for _, up := range generator.Updates(g, 20, 20, seed+30) {
			if up.Op == graph.InsertEdge {
				_, delta := shared.InsertDelta(up.From, up.To)
				delta.Apply(acc)
			} else {
				_, delta := shared.DeleteDelta(up.From, up.To)
				delta.Apply(acc)
			}
			if _, err := base.Apply(up); err != nil {
				t.Fatal(err)
			}
			if !acc.Equal(shared.Result()) {
				t.Fatalf("seed %d: accumulated deltas diverge after %v", seed, up)
			}
		}
		if want := core.Match(p, base); !shared.Result().Equal(want) {
			t.Fatalf("seed %d: final result diverges from batch recomputation", seed)
		}
	}
}

// TestSharedRejectsLandmarkIndex: the landmark index maintains owned
// storage, so it cannot back a shared engine.
func TestSharedRejectsLandmarkIndex(t *testing.T) {
	g := generator.Synthetic(20, 60, generator.DefaultSchema(2), 1)
	p := generator.Pattern(g, generator.PatternParams{Nodes: 2, Edges: 1, Preds: 1, K: 2}, 1)
	if _, err := NewShared(p, g, WithLandmarkIndex(landmark.New(g))); err == nil {
		t.Fatal("NewShared must reject a landmark index")
	}
}
