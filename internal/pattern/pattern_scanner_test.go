package pattern

import (
	"strings"
	"testing"
)

// TestParseLongLines checks that pattern files share the 16 MB line limit
// of graph files (the old pattern parser stopped at 1 MB).
func TestParseLongLines(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# ")
	sb.WriteString(strings.Repeat("y", 2<<20)) // a 2 MB comment line
	sb.WriteString("\nnode 0 label=\"A\"\nnode 1 label=\"B\"\nedge 0 1 2\n")
	p, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 2 || p.NumEdges() != 1 {
		t.Fatalf("parsed %d nodes, %d edges", p.NumNodes(), p.NumEdges())
	}
}
