package pattern

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"gpm/internal/graph"
)

// renumber relabels p by m (m[orig] = new id), preserving structure.
func renumber(p *Pattern, m []int) *Pattern {
	inv := make([]int, len(m))
	for u, c := range m {
		inv[c] = u
	}
	q := New()
	for c := range inv {
		q.AddNode(p.Pred(inv[c]))
	}
	for _, e := range p.Edges() {
		if err := q.AddColoredEdge(m[e.From], m[e.To], e.Bound, e.Color); err != nil {
			panic(err)
		}
	}
	return q
}

func chain(preds ...Predicate) *Pattern {
	p := New()
	for _, pr := range preds {
		p.AddNode(pr)
	}
	for i := 0; i+1 < len(preds); i++ {
		if err := p.AddEdge(i, i+1, 1); err != nil {
			panic(err)
		}
	}
	return p
}

func TestCanonicalKeyInvariantUnderRenumbering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		p := New()
		for i := 0; i < n; i++ {
			p.AddNode(Label(string(rune('a' + rng.Intn(3)))))
		}
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			b := 1 + rng.Intn(3)
			if rng.Intn(5) == 0 {
				b = Unbounded
			}
			p.AddEdge(u, v, b) //nolint:errcheck // in-range
		}
		m := rand.New(rand.NewSource(int64(trial))).Perm(n)
		q := renumber(p, m)
		kp, kq := CanonicalKey(p), CanonicalKey(q)
		if kp != kq {
			t.Fatalf("trial %d: renumbered twin got a different key\n p=%s\n q=%s", trial, kp, kq)
		}
	}
}

func TestCanonicalKeySeparatesStructures(t *testing.T) {
	a := chain(Label("a"), Label("b"))
	b := chain(Label("b"), Label("a"))
	if CanonicalKey(a) == CanonicalKey(b) {
		t.Fatalf("a->b and b->a chains share a key")
	}
	c := chain(Label("a"), Label("b"))
	c.AddEdge(0, 1, 2) //nolint:errcheck // overwrite bound
	if CanonicalKey(a) == CanonicalKey(c) {
		t.Fatalf("bound-1 and bound-2 edges share a key")
	}
	d := chain(Label("a"), Label("b"))
	if err := d.AddColoredEdge(0, 1, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	if CanonicalKey(a) == CanonicalKey(d) {
		t.Fatalf("plain and colored edges share a key")
	}
}

func TestDecomposeCanonIsEquivalentRelabeling(t *testing.T) {
	p := New()
	p.AddNode(Label("b"))
	p.AddNode(Label("a"))
	p.AddNode(Label("a"))
	p.AddEdge(0, 1, 1) //nolint:errcheck
	p.AddEdge(1, 2, 3) //nolint:errcheck
	d := Decompose(p)
	if d.Canon.NumNodes() != 3 || d.Canon.NumEdges() != 2 {
		t.Fatalf("canon shape: %d nodes %d edges", d.Canon.NumNodes(), d.Canon.NumEdges())
	}
	// Every original edge must appear, relabeled, with its bound.
	for _, e := range p.Edges() {
		b, ok := d.Canon.Bound(d.Perm[e.From], d.Perm[e.To])
		if !ok || b != e.Bound {
			t.Fatalf("edge (%d,%d) bound %d missing in canon", e.From, e.To, e.Bound)
		}
		if d.Canon.Pred(d.Perm[e.From]).String() != p.Pred(e.From).String() {
			t.Fatalf("predicate moved under relabeling")
		}
	}
	// Decompose(Canon) must be a fixpoint: identity perm, same key.
	d2 := Decompose(d.Canon)
	if !d2.Identity() {
		t.Fatalf("canonical form is not a canonicalization fixpoint: perm %v", d2.Perm)
	}
	if d2.Key != d.Key {
		t.Fatalf("canon key drifted: %q vs %q", d2.Key, d.Key)
	}
}

func TestDecomposeSharedNodes(t *testing.T) {
	// a->a->a chain: one pred node, one edge node evaluated for two edges.
	p := chain(Label("a"), Label("a"), Label("a"))
	d := Decompose(p)
	if len(d.Preds) != 1 {
		t.Fatalf("want 1 pred node, got %d", len(d.Preds))
	}
	if len(d.Preds[0].Nodes) != 3 {
		t.Fatalf("pred node should cover 3 pattern nodes, got %v", d.Preds[0].Nodes)
	}
	if len(d.Edges) != 1 {
		t.Fatalf("want 1 edge node, got %d", len(d.Edges))
	}
	if len(d.Edges[0].Edges) != 2 {
		t.Fatalf("edge node should cover 2 pattern edges, got %v", d.Edges[0].Edges)
	}
	// Self-loop is a distinct sub-pattern from a two-node edge.
	loop := New()
	loop.AddNode(Label("a"))
	loop.AddEdge(0, 0, 1) //nolint:errcheck
	dl := Decompose(loop)
	if !dl.Edges[0].SelfLoop {
		t.Fatalf("self-loop not flagged")
	}
	if dl.Edges[0].Key == d.Edges[0].Key {
		t.Fatalf("self-loop and plain edge share a key")
	}
}

func TestDecomposeDeterministicAcrossRoundTrips(t *testing.T) {
	pats := []*Pattern{
		chain(Label("a"), Label("b"), Label("a")),
		renumber(chain(Label("x"), Label("y"), Label("z")), []int{2, 0, 1}),
	}
	withVal := New()
	withVal.AddNode(Predicate{{Attr: "name", Op: OpEQ, Val: graph.String(`tricky && "x" <= 1`)}})
	withVal.AddNode(Predicate{{Attr: "score", Op: OpGE, Val: graph.Float(5)}})
	withVal.AddEdge(0, 1, 2) //nolint:errcheck
	pats = append(pats, withVal)

	for i, p := range pats {
		want := CanonicalKey(p)

		var text bytes.Buffer
		if err := p.Write(&text); err != nil {
			t.Fatal(err)
		}
		fromText, err := Parse(&text)
		if err != nil {
			t.Fatalf("pattern %d: text round-trip: %v", i, err)
		}
		if got := CanonicalKey(fromText); got != want {
			t.Fatalf("pattern %d: text round-trip changed key\n want %s\n  got %s", i, want, got)
		}

		js, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON := New()
		if err := json.Unmarshal(js, fromJSON); err != nil {
			t.Fatalf("pattern %d: json round-trip: %v", i, err)
		}
		if got := CanonicalKey(fromJSON); got != want {
			t.Fatalf("pattern %d: json round-trip changed key\n want %s\n  got %s", i, want, got)
		}
	}
}

// The canonical-form drift the decomposition fuzzing surfaced: string
// values containing "&&" or comparison operators used to confuse the
// conjunction splitter and the operator scan, quotes and control
// characters broke the quoted form, and NaN floats gained a spurious
// ".0" suffix that demoted them to strings on reparse.
func TestPredicateRoundTripDrift(t *testing.T) {
	cases := []Predicate{
		{{Attr: "name", Op: OpEQ, Val: graph.String("a && b")}},
		{{Attr: "name", Op: OpEQ, Val: graph.String("x<=y")}},
		{{Attr: "name", Op: OpNE, Val: graph.String(`quo"te`)}},
		{{Attr: "name", Op: OpEQ, Val: graph.String("line\nbreak")}},
		{{Attr: "name", Op: OpEQ, Val: graph.String(`back\slash`)}},
		{{Attr: "name", Op: OpEQ, Val: graph.String("bad\x83utf8")}},
		{{Attr: "a", Op: OpLT, Val: graph.Float(1)}, {Attr: "b", Op: OpGT, Val: graph.Int(2)}},
	}
	for i, pred := range cases {
		got, err := ParsePredicate(pred.String())
		if err != nil {
			t.Fatalf("case %d: reparse of %q: %v", i, pred.String(), err)
		}
		if got.String() != pred.String() {
			t.Fatalf("case %d: drift: %q -> %q", i, pred.String(), got.String())
		}
	}
	// The historic mis-parse: an attr containing '=' used to win the scan
	// for a later two-char operator. Position-first scanning parses the
	// first operator instead, and the result round-trips stably.
	p1, err := ParsePredicate(`a=b<=c`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePredicate(p1.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p1.String(), err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("operator-scan drift: %q -> %q", p1.String(), p2.String())
	}
}

func TestValueQuoteNonFinite(t *testing.T) {
	for _, s := range []string{"NaN", "+Inf", "-Inf"} {
		v := graph.ParseValue(s)
		if v.Kind() != graph.KindFloat {
			t.Fatalf("%s did not parse as float", s)
		}
		back := graph.ParseValue(v.Quote())
		if back.Kind() != graph.KindFloat {
			t.Fatalf("%s quoted as %q, reparsed as kind %d", s, v.Quote(), back.Kind())
		}
	}
}

func TestColoredEdgeRejectsUnwritableColor(t *testing.T) {
	p := New()
	p.AddNode(nil)
	p.AddNode(nil)
	for _, color := range []string{"two words", "tab\tbed", "line\nbreak"} {
		if err := p.AddColoredEdge(0, 1, 1, color); err == nil {
			t.Fatalf("color %q accepted but cannot round-trip the text format", color)
		}
	}
	if p.NumEdges() != 0 {
		t.Fatalf("rejected colors left %d edges behind", p.NumEdges())
	}
	if err := p.AddColoredEdge(0, 1, 1, "friend"); err != nil {
		t.Fatalf("plain color rejected: %v", err)
	}
}
