package pattern

import (
	"bytes"
	"strings"
	"testing"
)

func TestColoredEdgeAccessors(t *testing.T) {
	p := New()
	a := p.AddNode(Label("a"))
	b := p.AddNode(Label("b"))
	if err := p.AddColoredEdge(a, b, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	if !p.HasColors() || p.Color(a, b) != "friend" {
		t.Fatalf("color lost: %q", p.Color(a, b))
	}
	es := p.Edges()
	if len(es) != 1 || es[0].Color != "friend" {
		t.Fatalf("Edges() = %+v", es)
	}
	// Re-adding with an empty color clears it.
	if err := p.AddColoredEdge(a, b, 2, ""); err != nil {
		t.Fatal(err)
	}
	if p.HasColors() {
		t.Fatal("color should have been cleared")
	}
}

func TestColoredEdgeCloneIndependence(t *testing.T) {
	p := New()
	a := p.AddNode(Label("a"))
	b := p.AddNode(Label("b"))
	if err := p.AddColoredEdge(a, b, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if c.Color(a, b) != "friend" {
		t.Fatal("clone lost color")
	}
	if err := c.AddColoredEdge(a, b, 2, "cites"); err != nil {
		t.Fatal(err)
	}
	if p.Color(a, b) != "friend" {
		t.Fatal("clone mutation leaked")
	}
}

func TestColoredEdgeDSLRoundTrip(t *testing.T) {
	src := `node 0 label = "a"
node 1 label = "b"
edge 0 1 2 friend
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Color(0, 1) != "friend" {
		t.Fatalf("parsed color = %q", p.Color(0, 1))
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if q.Color(0, 1) != "friend" {
		t.Fatalf("round-trip color = %q", q.Color(0, 1))
	}
	if b, _ := q.Bound(0, 1); b != 2 {
		t.Fatalf("round-trip bound = %d", b)
	}
}

func TestColoredEdgeDSLTooManyFields(t *testing.T) {
	if _, err := Parse(strings.NewReader("node 0 true\nnode 1 true\nedge 0 1 2 friend extra")); err == nil {
		t.Fatal("want error for 6-field edge line")
	}
}
