package pattern

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The JSON wire format of the v1 HTTP API — the text format's information
// as one document:
//
//	{
//	  "nodes": [{"id": 0, "pred": "label = \"AM\" && contacts >= 10"}, ...],
//	  "edges": [{"from": 0, "to": 1, "bound": 3, "color": "friend"}, ...]
//	}
//
// A node's predicate is the text conjunction syntax ("" or "true" is the
// wildcard). An edge bound is a positive integer or the string "*"
// (unbounded); omitting it means 1, a normal edge. Node ids must be dense
// 0..N-1 in any order. Marshaling is deterministic: nodes ascend by id and
// edges sort lexicographically.

// jsonBound carries fE on the wire: a positive integer, or "*" for
// Unbounded. The zero value means "omitted" and defaults to bound 1.
type jsonBound int

// MarshalJSON renders the bound ("*" for Unbounded).
func (b jsonBound) MarshalJSON() ([]byte, error) {
	if int(b) == Unbounded {
		return []byte(`"*"`), nil
	}
	return json.Marshal(int(b))
}

// UnmarshalJSON accepts a positive integer or the string "*".
func (b *jsonBound) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if string(data) == `"*"` {
		*b = jsonBound(Unbounded)
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf(`pattern: edge bound must be a positive integer or "*": %w`, err)
	}
	if n < 1 {
		return fmt.Errorf("pattern: edge bound %d < 1", n)
	}
	*b = jsonBound(n)
	return nil
}

// nodeJSON is one pattern node of the wire document.
type nodeJSON struct {
	ID   int    `json:"id"`
	Pred string `json:"pred,omitempty"`
}

// edgeJSON is one pattern edge of the wire document.
type edgeJSON struct {
	From  int       `json:"from"`
	To    int       `json:"to"`
	Bound jsonBound `json:"bound,omitempty"`
	Color string    `json:"color,omitempty"`
}

// patternJSON is the wire document.
type patternJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

// MarshalJSON renders p as the JSON wire document (deterministically:
// nodes by id, sorted edges), with predicates in the text syntax.
func (p *Pattern) MarshalJSON() ([]byte, error) {
	doc := patternJSON{
		Nodes: make([]nodeJSON, 0, p.NumNodes()),
		Edges: make([]edgeJSON, 0, p.NumEdges()),
	}
	for u := 0; u < p.NumNodes(); u++ {
		n := nodeJSON{ID: u}
		if pred := p.preds[u]; len(pred) > 0 {
			n.Pred = pred.String()
		}
		doc.Nodes = append(doc.Nodes, n)
	}
	for _, e := range p.Edges() {
		doc.Edges = append(doc.Edges, edgeJSON{From: e.From, To: e.To, Bound: jsonBound(e.Bound), Color: e.Color})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON replaces p with the pattern described by the wire
// document, enforcing the text reader's invariants: dense node ids with no
// duplicates, parseable predicates, edges between declared nodes with
// bounds >= 1 (or "*"). A re-declared edge overwrites its bound and color,
// as AddColoredEdge does.
func (p *Pattern) UnmarshalJSON(b []byte) error {
	var doc patternJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("pattern: bad JSON document: %w", err)
	}
	fresh := New()
	preds := make([]Predicate, len(doc.Nodes))
	seen := make([]bool, len(doc.Nodes))
	for _, n := range doc.Nodes {
		if n.ID < 0 || n.ID >= len(doc.Nodes) {
			return fmt.Errorf("pattern: node id %d out of dense range [0,%d)", n.ID, len(doc.Nodes))
		}
		if seen[n.ID] {
			return fmt.Errorf("pattern: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		pred, err := ParsePredicate(n.Pred)
		if err != nil {
			return fmt.Errorf("pattern: node %d: %w", n.ID, err)
		}
		preds[n.ID] = pred
	}
	for _, pr := range preds {
		fresh.AddNode(pr)
	}
	for _, e := range doc.Edges {
		bound := int(e.Bound)
		if bound == 0 {
			bound = 1 // omitted: a normal edge
		}
		if err := fresh.AddColoredEdge(e.From, e.To, bound, e.Color); err != nil {
			return err
		}
	}
	*p = *fresh
	return nil
}
