package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"

	"gpm/internal/graph"
)

// The pattern text format used by the CLI tools:
//
//	# drug ring pattern
//	node 0 label="B"
//	node 1 label="AM" && contacts >= 10
//	edge 0 1 1
//	edge 1 2 3
//	edge 0 3 *
//	edge 2 3 2 friend
//
// A node line is "node <id> <predicate>", where the predicate is a
// &&-separated conjunction of "attr op value" atoms, or the keyword "true".
// An edge line is "edge <from> <to> <bound> [color]", where bound is a
// positive integer or "*". Omitting the bound means 1 (a normal edge); an
// optional trailing color restricts the edge to same-labeled paths.

// Write serializes p in the text format.
func (p *Pattern) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < p.NumNodes(); u++ {
		if _, err := fmt.Fprintf(bw, "node %d %s\n", u, p.preds[u]); err != nil {
			return err
		}
	}
	for _, e := range p.Edges() {
		bound := "*"
		if e.Bound != Unbounded {
			bound = strconv.Itoa(e.Bound)
		}
		line := fmt.Sprintf("edge %d %d %s", e.From, e.To, bound)
		if e.Color != "" {
			line += " " + e.Color
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a pattern in the text format.
func Parse(r io.Reader) (*Pattern, error) {
	sc := graph.NewLineScanner(r)
	type nodeDecl struct {
		id   int
		pred Predicate
	}
	var nodes []nodeDecl
	type edgeDecl struct {
		from, to, bound int
		color           string
	}
	var edges []edgeDecl
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "node "):
			rest := strings.TrimSpace(line[len("node "):])
			sp := strings.IndexByte(rest, ' ')
			idStr, predStr := rest, ""
			if sp >= 0 {
				idStr, predStr = rest[:sp], strings.TrimSpace(rest[sp+1:])
			}
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: bad node id %q", lineNo, idStr)
			}
			pred, err := ParsePredicate(predStr)
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: %v", lineNo, err)
			}
			nodes = append(nodes, nodeDecl{id, pred})
		case strings.HasPrefix(line, "edge "):
			fields := strings.Fields(line)
			if len(fields) < 3 || len(fields) > 5 {
				return nil, fmt.Errorf("pattern: line %d: edge needs 'edge from to [bound] [color]'", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("pattern: line %d: bad edge endpoints", lineNo)
			}
			bound := 1
			if len(fields) >= 4 {
				if fields[3] == "*" {
					bound = Unbounded
				} else {
					bound, err1 = strconv.Atoi(fields[3])
					if err1 != nil || bound < 1 {
						return nil, fmt.Errorf("pattern: line %d: bad bound %q", lineNo, fields[3])
					}
				}
			}
			color := ""
			if len(fields) == 5 {
				color = fields[4]
			}
			edges = append(edges, edgeDecl{from, to, bound, color})
		default:
			return nil, fmt.Errorf("pattern: line %d: unknown directive", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	p := New()
	preds := make([]Predicate, len(nodes))
	seen := make([]bool, len(nodes))
	for _, nd := range nodes {
		if nd.id < 0 || nd.id >= len(nodes) {
			return nil, fmt.Errorf("pattern: node id %d out of dense range [0,%d)", nd.id, len(nodes))
		}
		if seen[nd.id] {
			return nil, fmt.Errorf("pattern: duplicate node id %d", nd.id)
		}
		seen[nd.id] = true
		preds[nd.id] = nd.pred
	}
	for _, pr := range preds {
		p.AddNode(pr)
	}
	for _, e := range edges {
		if err := p.AddColoredEdge(e.from, e.to, e.bound, e.color); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ParsePredicate parses a conjunction "attr op value && attr op value ...".
// The empty string and "true" both denote the wildcard predicate. The
// conjunction splitter and the operator scan are quote-aware: "&&" and
// comparison operators inside a quoted string value are literal content,
// so values like "a && b" or "x<y" round-trip through Predicate.String.
func ParsePredicate(s string) (Predicate, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "true" {
		return nil, nil
	}
	var pred Predicate
	for _, part := range splitConjuncts(s) {
		atom, err := parseAtom(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		pred = append(pred, atom)
	}
	return pred, nil
}

// quoteSpan returns the index just past the quoted region opening at s[i]
// (s[i] must be '"'), honoring backslash escapes. An unterminated quote is
// not a region: the opening quote is a literal character and the span is
// i+1.
func quoteSpan(s string, i int) int {
	for j := i + 1; j < len(s); j++ {
		switch s[j] {
		case '\\':
			j++
		case '"':
			return j + 1
		}
	}
	return i + 1
}

// splitConjuncts splits on "&&" occurring outside quoted string values.
func splitConjuncts(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); {
		switch {
		case s[i] == '"':
			i = quoteSpan(s, i)
		case strings.HasPrefix(s[i:], "&&"):
			parts = append(parts, s[start:i])
			i += 2
			start = i
		default:
			i++
		}
	}
	return append(parts, s[start:])
}

func parseAtom(s string) (Atom, error) {
	// Scan left to right for the first comparison operator outside quotes,
	// longest operator first at each position so "<=" does not parse as "<"
	// followed by "=".
	for i := 0; i < len(s); {
		if s[i] == '"' {
			i = quoteSpan(s, i)
			continue
		}
		for _, opStr := range []string{"<=", ">=", "!=", "<", ">", "="} {
			if !strings.HasPrefix(s[i:], opStr) || i == 0 {
				continue
			}
			attr := strings.TrimSpace(s[:i])
			valStr := strings.TrimSpace(s[i+len(opStr):])
			if attr == "" || valStr == "" {
				return Atom{}, fmt.Errorf("bad atom %q", s)
			}
			if strings.ContainsRune(attr, '"') || graph.HasControl(attr) || !utf8.ValidString(attr) {
				return Atom{}, fmt.Errorf("bad atom %q: attribute name contains a quote, control character or invalid UTF-8", s)
			}
			op, err := ParseOp(opStr)
			if err != nil {
				return Atom{}, err
			}
			return Atom{Attr: attr, Op: op, Val: graph.ParseValue(valStr)}, nil
		}
		i++
	}
	return Atom{}, fmt.Errorf("bad atom %q: no comparison operator", s)
}
