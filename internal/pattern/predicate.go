package pattern

import (
	"fmt"
	"strings"

	"gpm/internal/graph"
)

// CmpOp is a comparison operator in a predicate atom.
type CmpOp uint8

// The comparison operators of the paper: <, <=, =, !=, >, >=.
const (
	OpLT CmpOp = iota
	OpLE
	OpEQ
	OpNE
	OpGT
	OpGE
)

var opNames = [...]string{OpLT: "<", OpLE: "<=", OpEQ: "=", OpNE: "!=", OpGT: ">", OpGE: ">="}

func (o CmpOp) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// ParseOp parses a comparison operator token.
func ParseOp(s string) (CmpOp, error) {
	for op, name := range opNames {
		if s == name {
			return CmpOp(op), nil
		}
	}
	return 0, fmt.Errorf("pattern: unknown comparison operator %q", s)
}

// Atom is an atomic formula "A op a": attribute name, operator, constant.
type Atom struct {
	Attr string
	Op   CmpOp
	Val  graph.Value
}

// Eval reports whether tuple t satisfies the atom: attribute Attr must be
// present and compare true against Val. Atoms over incomparable kinds
// (string vs numeric) evaluate to false for every operator, including != —
// the paper's predicates are typed, so a kind mismatch is a non-match.
func (a Atom) Eval(t graph.Tuple) bool {
	v, ok := t.Get(a.Attr)
	if !ok {
		return false
	}
	c, comparable := v.Compare(a.Val)
	if !comparable {
		return false
	}
	switch a.Op {
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	}
	return false
}

func (a Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Attr, a.Op, a.Val.Quote())
}

// Predicate is fV(u): a conjunction of atoms. The empty predicate is
// satisfied by every node (a wildcard).
type Predicate []Atom

// Eval reports whether tuple t satisfies every atom (v ⊨ u).
func (p Predicate) Eval(t graph.Tuple) bool {
	for _, a := range p {
		if !a.Eval(t) {
			return false
		}
	}
	return true
}

func (p Predicate) String() string {
	if len(p) == 0 {
		return "true"
	}
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = a.String()
	}
	return strings.Join(parts, " && ")
}

// LabelAttr is the conventional attribute name holding a node's label; the
// paper writes fV(u) = A as shorthand for "label = A".
const LabelAttr = "label"

// Label returns the predicate "label = l".
func Label(l string) Predicate {
	return Predicate{{Attr: LabelAttr, Op: OpEQ, Val: graph.String(l)}}
}

// Where appends the atom "attr op val" to a copy of p, for fluent
// construction of multi-condition predicates.
func (p Predicate) Where(attr string, op CmpOp, val graph.Value) Predicate {
	q := make(Predicate, len(p), len(p)+1)
	copy(q, p)
	return append(q, Atom{Attr: attr, Op: op, Val: val})
}
