package pattern

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenPattern builds the pattern serialized in
// testdata/pattern.golden.json: predicates with every operator family, a
// wildcard node, finite and unbounded bounds, and a colored edge.
func goldenPattern(t testing.TB) *Pattern {
	p := New()
	pred := func(s string) Predicate {
		pr, err := ParsePredicate(s)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	p.AddNode(pred(`label = "B"`))
	p.AddNode(pred(`label = "AM" && contacts >= 10`))
	p.AddNode(nil) // wildcard
	if err := p.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(0, 2, Unbounded); err != nil {
		t.Fatal(err)
	}
	if err := p.AddColoredEdge(2, 0, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPatternJSONGolden(t *testing.T) {
	p := goldenPattern(t)
	got, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "pattern.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, append(append([]byte(nil), got...), '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden): %v", err)
		}
		if !bytes.Equal(bytes.TrimRight(want, "\n"), got) {
			t.Fatalf("golden mismatch:\n got %s\nwant %s", got, bytes.TrimRight(want, "\n"))
		}
	}

	back := New()
	if err := json.Unmarshal(got, back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatalf("round trip diverged:\n first %s\nsecond %s", got, again)
	}
	if b, _ := back.Bound(0, 2); b != Unbounded {
		t.Fatalf("unbounded edge read back as %d", b)
	}
	if b, _ := back.Bound(1, 2); b != 3 {
		t.Fatalf("bound(1,2) = %d after round trip", b)
	}
	if back.Color(2, 0) != "friend" {
		t.Fatal("edge color lost in round trip")
	}
	if back.IsNormal() {
		t.Fatal("bounded pattern read back as normal")
	}
}

func TestPatternJSONOmittedBoundIsNormal(t *testing.T) {
	p := New()
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1}]}`), p); err != nil {
		t.Fatal(err)
	}
	if b, ok := p.Bound(0, 1); !ok || b != 1 {
		t.Fatalf("omitted bound read back as %d (ok=%v), want 1", b, ok)
	}
	if !p.IsNormal() {
		t.Fatal("pattern with omitted bounds must be normal")
	}
}

func TestPatternJSONErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"sparse ids":     `{"nodes":[{"id":0},{"id":2}],"edges":[]}`,
		"duplicate id":   `{"nodes":[{"id":0},{"id":0}],"edges":[]}`,
		"bad predicate":  `{"nodes":[{"id":0,"pred":"label ~ 3"}],"edges":[]}`,
		"edge off nodes": `{"nodes":[{"id":0}],"edges":[{"from":0,"to":4}]}`,
		"zero bound":     `{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1,"bound":0}]}`,
		"negative bound": `{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1,"bound":-2}]}`,
		"bad bound kind": `{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1,"bound":"all"}]}`,
		"unknown field":  `{"nodes":[],"edges":[],"extra":true}`,
	} {
		p := New()
		if err := json.Unmarshal([]byte(doc), p); err == nil {
			t.Errorf("%s: unmarshal accepted %s", name, doc)
		}
	}
}

// FuzzPatternJSON checks canonical-form stability for any accepted
// pattern document (see FuzzGraphJSON for the property).
func FuzzPatternJSON(f *testing.F) {
	seed, err := json.Marshal(goldenPattern(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"nodes":[],"edges":[]}`)
	f.Add(`{"nodes":[{"id":0,"pred":"true"}],"edges":[]}`)
	f.Add(`{"nodes":[{"id":1},{"id":0,"pred":"x != 2.5"}],"edges":[{"from":1,"to":0,"bound":"*"},{"from":1,"to":0,"bound":7,"color":"c"}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		p := New()
		if err := json.Unmarshal([]byte(doc), p); err != nil {
			return
		}
		m1, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted pattern failed to marshal: %v", err)
		}
		p2 := New()
		if err := json.Unmarshal(m1, p2); err != nil {
			t.Fatalf("own marshaling rejected: %v\n%s", err, m1)
		}
		m2, err := json.Marshal(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("canonical form unstable:\n m1 %s\n m2 %s", m1, m2)
		}
	})
}
