package pattern

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecomposeCanon checks the property the shared evaluation network
// depends on: the canonical key of a pattern — and every node key of its
// decomposition — is identical for the pattern as parsed, after a text
// Write/Parse round-trip, and after a JSON Marshal/Unmarshal round-trip.
// If any of these drift, structurally identical standing patterns stop
// hashing to the same network nodes depending on how they arrived.
func FuzzDecomposeCanon(f *testing.F) {
	f.Add("node 0 label=\"a\"\nnode 1 label=\"b\"\nedge 0 1 1\n")
	f.Add("node 0 true\nnode 1 x >= 2\nnode 2 x >= 2\nedge 0 1 *\nedge 0 2 *\nedge 1 2 3 friend\n")
	f.Add("node 0 name=\"a && b\"\nnode 1 s=\"x<=y\"\nedge 0 0 2\nedge 1 0 1\n")
	f.Add("node 0 v=NaN && w!=-Inf\nedge 0 0 1\n")
	f.Add("node 2 label=\"c\"\nnode 0 label=\"c\"\nnode 1 label=\"c\"\nedge 1 0 1\nedge 2 1 1\n")
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Parse(bytes.NewReader([]byte(doc)))
		if err != nil || p.NumNodes() == 0 {
			return
		}
		d := Decompose(p)
		if d.Key != CanonicalKey(p) {
			t.Fatalf("Decompose key %q != CanonicalKey %q", d.Key, CanonicalKey(p))
		}

		var text bytes.Buffer
		if err := p.Write(&text); err != nil {
			t.Fatalf("accepted pattern failed to write: %v", err)
		}
		fromText, err := Parse(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatalf("own text format rejected: %v\n%s", err, text.String())
		}

		js, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted pattern failed to marshal: %v", err)
		}
		fromJSON := New()
		if err := json.Unmarshal(js, fromJSON); err != nil {
			t.Fatalf("own JSON rejected: %v\n%s", err, js)
		}

		for _, rt := range []struct {
			via string
			q   *Pattern
		}{{"text", fromText}, {"json", fromJSON}} {
			d2 := Decompose(rt.q)
			if d2.Key != d.Key {
				t.Fatalf("%s round-trip changed canonical key\n was %s\n now %s\n doc:\n%s", rt.via, d.Key, d2.Key, doc)
			}
			if !sameNodeKeys(d, d2) {
				t.Fatalf("%s round-trip changed decomposition node keys\n doc:\n%s", rt.via, doc)
			}
		}
	})
}

func sameNodeKeys(a, b *Decomposition) bool {
	if len(a.Preds) != len(b.Preds) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Preds {
		if a.Preds[i].Key != b.Preds[i].Key {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i].Key != b.Edges[i].Key {
			return false
		}
	}
	return true
}
