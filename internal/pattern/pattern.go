// Package pattern implements the b-patterns of the paper: directed pattern
// graphs P = (Vp, Ep, fV, fE) whose nodes carry search-condition predicates
// (conjunctions of atoms "A op a") and whose edges carry a hop bound — a
// positive integer k or * (unbounded). A normal pattern has every bound
// equal to 1; traditional graph simulation and subgraph isomorphism are
// defined on normal patterns.
package pattern

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"gpm/internal/graph"
)

// NodeID identifies a pattern node. IDs are dense: 0..Np-1.
type NodeID = int

// Unbounded is the edge bound written * in the paper: the pattern edge maps
// to a nonempty path of arbitrary length.
const Unbounded = graph.Unreachable

// WithinBound reports whether a nonempty path of length dist satisfies an
// edge bound: 1 <= dist <= bound, with unreachable pairs never satisfying.
func WithinBound(dist, bound int) bool {
	return dist >= 1 && dist < graph.Unreachable && dist <= bound
}

// Edge is a directed pattern edge with its bound fE and optional color: a
// colored edge maps only to paths whose every data edge carries the same
// label (the relationship-typed extension of Section 2.2's remark).
type Edge struct {
	From, To NodeID
	Bound    int    // >= 1, or Unbounded
	Color    string // "" = any edges
}

// Pattern is a b-pattern. The zero value is not usable; construct with New.
type Pattern struct {
	preds  []Predicate
	out    [][]NodeID
	in     [][]NodeID
	bounds map[[2]NodeID]int
	colors map[[2]NodeID]string // sparse: only colored edges
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{bounds: make(map[[2]NodeID]int)}
}

// NumNodes returns |Vp|.
func (p *Pattern) NumNodes() int { return len(p.preds) }

// NumEdges returns |Ep|.
func (p *Pattern) NumEdges() int { return len(p.bounds) }

// AddNode appends a pattern node with predicate fV(u) and returns its id.
func (p *Pattern) AddNode(pred Predicate) NodeID {
	id := len(p.preds)
	p.preds = append(p.preds, pred)
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	return id
}

// AddEdge inserts a pattern edge (u, u') with the given bound (>= 1, or
// Unbounded). Re-adding an existing edge overwrites its bound.
func (p *Pattern) AddEdge(u, v NodeID, bound int) error {
	if u < 0 || u >= len(p.preds) || v < 0 || v >= len(p.preds) {
		return fmt.Errorf("pattern: AddEdge(%d, %d): node out of range [0, %d)", u, v, len(p.preds))
	}
	if bound < 1 {
		return fmt.Errorf("pattern: AddEdge(%d, %d): bound %d < 1", u, v, bound)
	}
	key := [2]NodeID{u, v}
	if _, ok := p.bounds[key]; !ok {
		p.out[u] = append(p.out[u], v)
		p.in[v] = append(p.in[v], u)
	}
	p.bounds[key] = bound
	return nil
}

// AddColoredEdge inserts a pattern edge whose image paths must consist of
// data edges labeled color throughout. An empty color is a plain edge. A
// color may not contain whitespace or control characters — the text format
// writes it as one whitespace-separated field, so such a color could never
// round-trip.
func (p *Pattern) AddColoredEdge(u, v NodeID, bound int, color string) error {
	if strings.ContainsAny(color, " \t") || graph.HasControl(color) || !utf8.ValidString(color) {
		return fmt.Errorf("pattern: AddColoredEdge(%d, %d): color %q contains whitespace, control characters or invalid UTF-8", u, v, color)
	}
	if err := p.AddEdge(u, v, bound); err != nil {
		return err
	}
	if color != "" {
		if p.colors == nil {
			p.colors = make(map[[2]NodeID]string)
		}
		p.colors[[2]NodeID{u, v}] = color
	} else if p.colors != nil {
		delete(p.colors, [2]NodeID{u, v})
	}
	return nil
}

// Color returns the color of edge (u, v) ("" when plain or absent).
func (p *Pattern) Color(u, v NodeID) string { return p.colors[[2]NodeID{u, v}] }

// HasColors reports whether any edge is colored.
func (p *Pattern) HasColors() bool { return len(p.colors) > 0 }

// Pred returns the predicate of node u.
func (p *Pattern) Pred(u NodeID) Predicate { return p.preds[u] }

// Out returns the children of pattern node u.
func (p *Pattern) Out(u NodeID) []NodeID { return p.out[u] }

// In returns the parents of pattern node u.
func (p *Pattern) In(u NodeID) []NodeID { return p.in[u] }

// OutDegree returns the number of children of u.
func (p *Pattern) OutDegree(u NodeID) int { return len(p.out[u]) }

// Bound returns fE(u, u') and whether the edge exists.
func (p *Pattern) Bound(u, v NodeID) (int, bool) {
	b, ok := p.bounds[[2]NodeID{u, v}]
	return b, ok
}

// Edges returns all pattern edges sorted lexicographically.
func (p *Pattern) Edges() []Edge {
	es := make([]Edge, 0, len(p.bounds))
	for k, b := range p.bounds {
		es = append(es, Edge{From: k[0], To: k[1], Bound: b, Color: p.colors[k]})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// IsNormal reports whether every edge bound is 1 (a normal pattern).
func (p *Pattern) IsNormal() bool {
	for _, b := range p.bounds {
		if b != 1 {
			return false
		}
	}
	return true
}

// MaxBound returns km, the maximum bound over all edges: the largest finite
// bound, or Unbounded if any edge is unbounded. A pattern without edges has
// MaxBound 0.
func (p *Pattern) MaxBound() int {
	km := 0
	for _, b := range p.bounds {
		if b == Unbounded {
			return Unbounded
		}
		if b > km {
			km = b
		}
	}
	return km
}

// MaxFiniteBound returns the largest finite bound (0 if none).
func (p *Pattern) MaxFiniteBound() int {
	km := 0
	for _, b := range p.bounds {
		if b != Unbounded && b > km {
			km = b
		}
	}
	return km
}

// HasUnbounded reports whether any edge carries *.
func (p *Pattern) HasUnbounded() bool {
	for _, b := range p.bounds {
		if b == Unbounded {
			return true
		}
	}
	return false
}

// AsGraph returns the pattern's topology as an (unattributed) data graph,
// which lets pattern analyses reuse the graph package's SCC, topological
// sorting and rank machinery.
func (p *Pattern) AsGraph() *graph.Graph {
	g := graph.NewWithCapacity(p.NumNodes(), p.NumEdges())
	for range p.preds {
		g.AddNode(nil)
	}
	for k := range p.bounds {
		if _, err := g.AddEdge(k[0], k[1]); err != nil {
			panic("pattern: AsGraph: " + err.Error()) // unreachable: same topology
		}
	}
	return g
}

// IsDAG reports whether the pattern is acyclic.
func (p *Pattern) IsDAG() bool { return p.AsGraph().IsDAG() }

// Clone returns a deep copy of p (predicates are shared: they are immutable).
func (p *Pattern) Clone() *Pattern {
	c := &Pattern{
		preds:  append([]Predicate(nil), p.preds...),
		out:    make([][]NodeID, len(p.out)),
		in:     make([][]NodeID, len(p.in)),
		bounds: make(map[[2]NodeID]int, len(p.bounds)),
	}
	for i := range p.out {
		c.out[i] = append([]NodeID(nil), p.out[i]...)
		c.in[i] = append([]NodeID(nil), p.in[i]...)
	}
	for k, v := range p.bounds {
		c.bounds[k] = v
	}
	if len(p.colors) > 0 {
		c.colors = make(map[[2]NodeID]string, len(p.colors))
		for k, v := range p.colors {
			c.colors[k] = v
		}
	}
	return c
}

// Normalized returns a copy of p with every bound set to 1 — the normal
// pattern with the same topology and predicates, used when comparing against
// simulation/isomorphism baselines.
func (p *Pattern) Normalized() *Pattern { return p.WithAllBounds(1) }

// WithAllBounds returns a copy of p with every edge bound set to k, keeping
// topology and predicates — used by bound-sensitivity experiments so that k
// is the only variable.
func (p *Pattern) WithAllBounds(k int) *Pattern {
	c := p.Clone()
	for key := range c.bounds {
		c.bounds[key] = k
	}
	return c
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation: the pattern must be nonempty and bounds positive.
func (p *Pattern) Validate() error {
	if p.NumNodes() == 0 {
		return fmt.Errorf("pattern: no nodes")
	}
	for k, b := range p.bounds {
		if b < 1 {
			return fmt.Errorf("pattern: edge (%d,%d) has bound %d < 1", k[0], k[1], b)
		}
	}
	return nil
}

func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern{|Vp|=%d |Ep|=%d", p.NumNodes(), p.NumEdges())
	if p.IsNormal() {
		b.WriteString(" normal")
	}
	b.WriteString("}")
	return b.String()
}
