package pattern

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the canonicalization/decomposition layer of the shared
// sub-pattern evaluation network (internal/gdn): it breaks a pattern into a
// DAG of sub-pattern nodes — vertex-predicate leaves, single-edge bounded-
// path nodes, and one join tip per pattern — and gives every node a
// deterministic canonical key, so structurally identical sub-patterns hash
// to the same key across patterns regardless of how their nodes are
// numbered. The keys are what lets the network maintain each shared node's
// match-state once per commit instead of once per standing pattern.
//
// Canonical labeling is graph canonization, so exact invariance under node
// renumbering is bought with a bounded search: Weisfeiler-Lehman color
// refinement partitions the nodes, and the lexicographically smallest
// encoding over the (usually singleton) color classes is chosen by
// enumerating within-class permutations. Patterns whose automorphism
// candidates exceed canonMaxPerms — pathological symmetric patterns far
// beyond anything the generators or the wire format produce — fall back to
// a deterministic but renumbering-sensitive order: their keys are still
// stable across serialization round-trips (node ids survive JSON/text),
// they just stop sharing with renumbered twins.

// canonMaxPerms caps the within-class permutation search (7! = 5040).
const canonMaxPerms = 5040

// PredKey returns the canonical key of a node predicate: the text-syntax
// conjunction, which the parser round-trips byte-identically.
func PredKey(p Predicate) string { return p.String() }

// EdgeKey returns the canonical key of the single-edge sub-pattern
// src --bound,color--> dst between two predicate keys. A self-loop (the
// pattern edge's endpoints carry the same node) is a distinct sub-pattern
// from a two-node edge with equal predicates, so it is keyed apart.
func EdgeKey(srcPred, dstPred string, bound int, color string, selfLoop bool) string {
	b := "*"
	if bound != Unbounded {
		b = strconv.Itoa(bound)
	}
	shape := "e"
	if selfLoop {
		shape = "l"
	}
	return shape + "|" + b + "|" + color + "|" + escapeKey(srcPred) + "|" + escapeKey(dstPred)
}

// escapeKey makes a predicate string safe for embedding in a '|'-separated
// key ('\' then '|' are escaped).
func escapeKey(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "|", `\|`)
}

// PredNode is one shared vertex-predicate leaf of a decomposition: the
// canonical predicate key and the canonical pattern nodes that carry it.
type PredNode struct {
	Key   string
	Pred  Predicate
	Nodes []NodeID // canonical node ids carrying this predicate, ascending
}

// EdgeNode is one shared single-edge sub-pattern of a decomposition: a
// bounded-path edge between two predicate leaves (or a self-loop on one).
type EdgeNode struct {
	Key      string
	SrcPred  string // PredKey of the edge's source predicate
	DstPred  string // PredKey of the edge's target predicate
	Bound    int
	Color    string
	SelfLoop bool
	// Edges lists the canonical pattern edges this node evaluates for —
	// several structurally identical pattern edges collapse onto one node.
	Edges [][2]NodeID
}

// Decomposition is a pattern broken into the network's node DAG: predicate
// leaves, single-edge nodes over them, and the join tip (the canonically
// relabeled whole pattern) that combines them.
type Decomposition struct {
	// Key is the canonical key of the whole pattern — the join node's key.
	// Structurally identical patterns (equal up to node renumbering, within
	// the canonMaxPerms search bound) share it.
	Key string
	// Canon is the pattern relabeled into canonical node order. Engines in
	// the shared network evaluate Canon; results map back through Perm.
	Canon *Pattern
	// Perm maps original node ids to canonical ones: Perm[u] is Canon's id
	// for p's node u.
	Perm []NodeID
	// Preds are the distinct predicate leaves, sorted by key.
	Preds []PredNode
	// Edges are the distinct single-edge sub-pattern nodes, sorted by key.
	Edges []EdgeNode
}

// Identity reports whether the canonical relabeling is the identity (the
// pattern was already in canonical order), letting callers skip remapping.
func (d *Decomposition) Identity() bool {
	for u, c := range d.Perm {
		if u != c {
			return false
		}
	}
	return true
}

// Decompose canonicalizes p and breaks it into the network's sub-pattern
// nodes. The decomposition is deterministic: the same pattern — including
// after any String()/JSON round-trip — yields byte-identical keys.
func Decompose(p *Pattern) *Decomposition {
	perm := canonicalPerm(p)
	np := p.NumNodes()
	inv := make([]NodeID, np) // canonical id -> original id
	for u, c := range perm {
		inv[c] = u
	}
	canon := New()
	for c := 0; c < np; c++ {
		canon.AddNode(p.Pred(inv[c]))
	}
	for _, e := range p.Edges() {
		if err := canon.AddColoredEdge(perm[e.From], perm[e.To], e.Bound, e.Color); err != nil {
			panic("pattern: Decompose relabel: " + err.Error()) // unreachable: same topology
		}
	}

	d := &Decomposition{Canon: canon, Perm: perm}
	predKeys := make([]string, np)
	predIx := make(map[string]int)
	for c := 0; c < np; c++ {
		key := PredKey(canon.Pred(c))
		predKeys[c] = key
		i, ok := predIx[key]
		if !ok {
			i = len(d.Preds)
			predIx[key] = i
			d.Preds = append(d.Preds, PredNode{Key: key, Pred: canon.Pred(c)})
		}
		d.Preds[i].Nodes = append(d.Preds[i].Nodes, c)
	}
	sort.Slice(d.Preds, func(i, j int) bool { return d.Preds[i].Key < d.Preds[j].Key })

	edgeIx := make(map[string]int)
	for _, e := range canon.Edges() {
		self := e.From == e.To
		key := EdgeKey(predKeys[e.From], predKeys[e.To], e.Bound, e.Color, self)
		i, ok := edgeIx[key]
		if !ok {
			i = len(d.Edges)
			edgeIx[key] = i
			d.Edges = append(d.Edges, EdgeNode{
				Key: key, SrcPred: predKeys[e.From], DstPred: predKeys[e.To],
				Bound: e.Bound, Color: e.Color, SelfLoop: self,
			})
		}
		d.Edges[i].Edges = append(d.Edges[i].Edges, [2]NodeID{e.From, e.To})
	}
	sort.Slice(d.Edges, func(i, j int) bool { return d.Edges[i].Key < d.Edges[j].Key })

	d.Key = encode(canon, identityPerm(np))
	return d
}

// CanonicalKey returns the whole-pattern canonical key without building the
// full decomposition.
func CanonicalKey(p *Pattern) string {
	perm := canonicalPerm(p)
	return encode(p, perm)
}

func identityPerm(n int) []NodeID {
	perm := make([]NodeID, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// encode serializes p under the node relabeling perm (perm[orig] = new id):
// one predicate line per new id, then the relabeled edges in sorted order.
func encode(p *Pattern, perm []NodeID) string {
	np := p.NumNodes()
	inv := make([]NodeID, np)
	for u, c := range perm {
		inv[c] = u
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p%d/%d", np, p.NumEdges())
	for c := 0; c < np; c++ {
		b.WriteString(";n")
		b.WriteString(escapeKey(PredKey(p.Pred(inv[c]))))
	}
	type edge struct {
		from, to, bound int
		color           string
	}
	edges := make([]edge, 0, p.NumEdges())
	for _, e := range p.Edges() {
		edges = append(edges, edge{perm[e.From], perm[e.To], e.Bound, e.Color})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		bound := "*"
		if e.bound != Unbounded {
			bound = strconv.Itoa(e.bound)
		}
		fmt.Fprintf(&b, ";e%d>%d/%s/%s", e.from, e.to, bound, e.color)
	}
	return b.String()
}

// canonicalPerm computes the canonical relabeling perm[orig] = canonical id:
// WL color refinement, then the lexicographically smallest encoding over
// within-class permutations (classes ordered by refined color), with the
// deterministic (color, original id) fallback past canonMaxPerms.
func canonicalPerm(p *Pattern) []NodeID {
	np := p.NumNodes()
	if np == 0 {
		return nil
	}
	colors := refine(p)

	// Group nodes by final color, classes in ascending color order.
	classOf := make(map[int][]NodeID)
	colorVals := make([]int, 0)
	for u, c := range colors {
		if _, ok := classOf[c]; !ok {
			colorVals = append(colorVals, c)
		}
		classOf[c] = append(classOf[c], u)
	}
	sort.Ints(colorVals)
	classes := make([][]NodeID, len(colorVals))
	for i, c := range colorVals {
		sort.Ints(classOf[c])
		classes[i] = classOf[c]
	}
	perms := 1
	capped := false
	for _, class := range classes {
		f := factorial(len(class))
		if perms > canonMaxPerms/f {
			capped = true
			break
		}
		perms *= f
	}

	if capped {
		// Deterministic fallback: class order then original id. Stable
		// across round-trips (ids survive serialization), but renumbered
		// twins of such patterns do not share.
		perm := make([]NodeID, np)
		pos := 0
		for _, class := range classes {
			for _, u := range class {
				perm[u] = pos
				pos++
			}
		}
		return perm
	}

	var best string
	var bestPerm []NodeID
	enumerate(classes, func(order []NodeID) {
		perm := make([]NodeID, np)
		for pos, u := range order {
			perm[u] = pos
		}
		enc := encode(p, perm)
		if bestPerm == nil || enc < best {
			best = enc
			bestPerm = perm
		}
	})
	return bestPerm
}

// refine runs Weisfeiler-Lehman color refinement: initial colors are the
// predicate keys; each round a node's color absorbs the sorted multiset of
// its incident (direction, bound, edge color, neighbor color) signatures.
// Colors are re-indexed to dense ints each round by sorted signature, so
// they stay intrinsic to the pattern's structure (renumbering-invariant).
func refine(p *Pattern) []int {
	np := p.NumNodes()
	sigs := make([]string, np)
	for u := 0; u < np; u++ {
		sigs[u] = PredKey(p.Pred(u))
	}
	colors := rank(sigs)
	edges := p.Edges()
	for round := 0; round < np; round++ {
		for u := 0; u < np; u++ {
			sigs[u] = strconv.Itoa(colors[u])
		}
		parts := make([][]string, np)
		for _, e := range edges {
			bound := "*"
			if e.Bound != Unbounded {
				bound = strconv.Itoa(e.Bound)
			}
			parts[e.From] = append(parts[e.From],
				fmt.Sprintf("o/%s/%s/%d", bound, e.Color, colors[e.To]))
			parts[e.To] = append(parts[e.To],
				fmt.Sprintf("i/%s/%s/%d", bound, e.Color, colors[e.From]))
		}
		for u := 0; u < np; u++ {
			sort.Strings(parts[u])
			sigs[u] += "#" + strings.Join(parts[u], "#")
		}
		next := rank(sigs)
		if same(colors, next) {
			return next
		}
		colors = next
	}
	return colors
}

// rank maps each signature to its index among the sorted distinct
// signatures.
func rank(sigs []string) []int {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	uniq = compact(uniq)
	ix := make(map[string]int, len(uniq))
	for i, s := range uniq {
		ix[s] = i
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = ix[s]
	}
	return out
}

func compact(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func same(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		if f > canonMaxPerms {
			return canonMaxPerms + 1
		}
		f *= i
	}
	return f
}

// enumerate yields every node order that keeps each class contiguous and in
// class order, permuting only within classes.
func enumerate(classes [][]NodeID, visit func(order []NodeID)) {
	order := make([]NodeID, 0)
	var rec func(i int)
	rec = func(i int) {
		if i == len(classes) {
			visit(order)
			return
		}
		permute(append([]NodeID(nil), classes[i]...), 0, func(cl []NodeID) {
			order = append(order, cl...)
			rec(i + 1)
			order = order[:len(order)-len(cl)]
		})
	}
	rec(0)
}

// permute enumerates permutations of cl in place from position k.
func permute(cl []NodeID, k int, visit func([]NodeID)) {
	if k == len(cl) {
		visit(cl)
		return
	}
	for i := k; i < len(cl); i++ {
		cl[k], cl[i] = cl[i], cl[k]
		permute(cl, k+1, visit)
		cl[k], cl[i] = cl[i], cl[k]
	}
}
