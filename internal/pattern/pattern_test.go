package pattern

import (
	"bytes"
	"strings"
	"testing"

	"gpm/internal/graph"
)

func TestPredicateEval(t *testing.T) {
	tuple := graph.NewTuple("label", `"DM"`, "age", "30", "rating", "4.5")
	cases := []struct {
		pred string
		want bool
	}{
		{`label = "DM"`, true},
		{`label != "DM"`, false},
		{`label = "SE"`, false},
		{`age >= 30`, true},
		{`age > 30`, false},
		{`age < 31 && rating > 4`, true},
		{`age < 31 && rating > 5`, false},
		{`missing = 1`, false},
		{`missing != 1`, false}, // absent attribute fails every atom
		{`label = 30`, false},   // kind mismatch fails
		{`true`, true},
		{``, true},
	}
	for _, c := range cases {
		pred, err := ParsePredicate(c.pred)
		if err != nil {
			t.Fatalf("ParsePredicate(%q): %v", c.pred, err)
		}
		if got := pred.Eval(tuple); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestParsePredicateOperators(t *testing.T) {
	// "<=" must not parse as "<" with a stray "=".
	pred, err := ParsePredicate("age <= 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 1 || pred[0].Op != OpLE {
		t.Fatalf("parsed %v, want single <= atom", pred)
	}
	if _, err := ParsePredicate("age ~ 30"); err == nil {
		t.Fatal("want error for unknown operator")
	}
	if _, err := ParsePredicate("= 30"); err == nil {
		t.Fatal("want error for missing attribute")
	}
}

func TestPatternConstruction(t *testing.T) {
	p := New()
	u := p.AddNode(Label("A"))
	v := p.AddNode(Label("B"))
	if err := p.AddEdge(u, v, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(u, 9, 1); err == nil {
		t.Fatal("want error for out-of-range node")
	}
	if err := p.AddEdge(u, v, 0); err == nil {
		t.Fatal("want error for bound < 1")
	}
	if b, ok := p.Bound(u, v); !ok || b != 3 {
		t.Fatalf("Bound = (%d, %v), want (3, true)", b, ok)
	}
	if p.IsNormal() {
		t.Fatal("bound-3 pattern reported normal")
	}
	if p.MaxBound() != 3 || p.MaxFiniteBound() != 3 {
		t.Fatalf("MaxBound = %d", p.MaxBound())
	}
}

func TestPatternUnbounded(t *testing.T) {
	p := New()
	u := p.AddNode(Label("A"))
	v := p.AddNode(Label("B"))
	if err := p.AddEdge(u, v, Unbounded); err != nil {
		t.Fatal(err)
	}
	if !p.HasUnbounded() || p.MaxBound() != Unbounded || p.MaxFiniteBound() != 0 {
		t.Fatal("unbounded edge not reflected in bounds")
	}
}

func TestNormalizedAndClone(t *testing.T) {
	p := New()
	u := p.AddNode(Label("A"))
	v := p.AddNode(Label("B"))
	p.AddEdge(u, v, 5)
	n := p.Normalized()
	if !n.IsNormal() {
		t.Fatal("Normalized not normal")
	}
	if b, _ := p.Bound(u, v); b != 5 {
		t.Fatal("Normalized mutated the original")
	}
	c := p.Clone()
	c.AddEdge(v, u, 2)
	if _, ok := p.Bound(v, u); ok {
		t.Fatal("Clone shares edge state")
	}
}

func TestWithinBound(t *testing.T) {
	cases := []struct {
		dist, bound int
		want        bool
	}{
		{1, 1, true},
		{2, 1, false},
		{0, 1, false}, // empty paths never satisfy
		{3, Unbounded, true},
		{graph.Unreachable, Unbounded, false},
		{graph.Unreachable, 5, false},
	}
	for _, c := range cases {
		if got := WithinBound(c.dist, c.bound); got != c.want {
			t.Errorf("WithinBound(%d, %d) = %v, want %v", c.dist, c.bound, got, c.want)
		}
	}
}

func TestIsDAGAndAsGraph(t *testing.T) {
	p := New()
	a := p.AddNode(Label("a"))
	b := p.AddNode(Label("b"))
	p.AddEdge(a, b, 1)
	if !p.IsDAG() {
		t.Fatal("acyclic pattern reported cyclic")
	}
	p.AddEdge(b, a, 1)
	if p.IsDAG() {
		t.Fatal("cyclic pattern reported acyclic")
	}
	g := p.AsGraph()
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("AsGraph = %v", g)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	src := `# sample
node 0 label = "B"
node 1 label = "AM" && contacts >= 10
node 2 true
edge 0 1 1
edge 1 2 3
edge 0 2 *
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.NumNodes() != 3 || p.NumEdges() != 3 {
		t.Fatalf("parsed %v", p)
	}
	if b, _ := p.Bound(0, 2); b != Unbounded {
		t.Fatalf("bound(0,2) = %d, want Unbounded", b)
	}
	if b, _ := p.Bound(1, 2); b != 3 {
		t.Fatalf("bound(1,2) = %d, want 3", b)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	q, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if q.NumNodes() != p.NumNodes() || q.NumEdges() != p.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	for _, e := range p.Edges() {
		if b, ok := q.Bound(e.From, e.To); !ok || b != e.Bound {
			t.Errorf("edge (%d,%d): bound %d != %d", e.From, e.To, b, e.Bound)
		}
	}
}

func TestParseEdgeDefaultBound(t *testing.T) {
	p, err := Parse(strings.NewReader("node 0 true\nnode 1 true\nedge 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := p.Bound(0, 1); b != 1 {
		t.Fatalf("default bound = %d, want 1", b)
	}
	if !p.IsNormal() {
		t.Fatal("default-bound pattern should be normal")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"node x true",
		"edge 0 1 0",
		"edge 0",
		"bogus",
		"node 0 true\nnode 0 true",
		"node 3 true",
		"node 0 label >",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestValidate(t *testing.T) {
	p := New()
	if p.Validate() == nil {
		t.Fatal("empty pattern should not validate")
	}
	p.AddNode(Label("a"))
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
