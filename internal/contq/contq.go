// Package contq implements the continuous-query layer that turns the
// incremental engines into a serving system: a Registry owns ONE shared
// canonical data graph and any number of standing patterns, each backed by
// the incremental engine matching its kind (incsim for normal patterns,
// incbsim for b-patterns, iso for subgraph isomorphism) reading that graph
// through a read-only graph.View. A single serialized writer ingests
// edge-update batches, coalesces queued batches into one commit, fans the
// effective updates out to all engines in parallel (internal/par), applies
// them to the canonical graph exactly once, and publishes per-pattern
// match deltas ΔM — not full results — to channel subscribers in commit
// order, the production shape of incremental view maintenance (standing
// queries registered once, update streams fanned out, deltas pushed).
//
// Memory model: engines never clone the graph. Each engine repairs through
// a private graph.Overlay — an O(|ΔG|-per-batch) diff over the shared base
// that absorbs the repair's own mutations and is discarded when the
// registry commits the batch to the canonical graph. Per-pattern memory is
// therefore O(pattern-state): the engine's match/candidate/counter
// structures, not O(|G|) replicas (the shared-host-graph organisation of
// RETE-style incremental query engines).
//
// Batch coalescing: Apply enqueues the caller's batch and the first
// enqueuer becomes the drainer — every batch queued while a commit is in
// flight is merged into the next commit. Within one drain, updates cancel
// at the edge level (an insert and a delete of the same edge annihilate;
// updates restating the graph's current state vanish), so the engines see
// only the net effective ΔG. Each caller still gets its own completion —
// its commit's sequence number or its own validation error — and
// subscribers see exactly one event per commit with consecutive sequence
// numbers, so snapshot ⊕ deltas still reproduces Result().
//
// Concurrency contract:
//
//   - Commits, Register, Unregister, Subscribe and Close serialize on one
//     writer lock, so every subscriber observes the same totally-ordered
//     commit sequence and a subscription's starting snapshot is atomic
//     with respect to commits.
//   - Readers (Result, Patterns, GraphInfo, Stats) never take the writer
//     lock: they read through the engines' lock-free cached snapshots, so
//     reads between updates are allocation-free and never block behind a
//     writer.
//   - During a commit's fan-out the canonical graph is immutable (engines
//     read it concurrently; their overlays are private), and it is mutated
//     only after every engine has returned.
package contq

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gpm/internal/gdn"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs"
	"gpm/internal/obs/trace"
	"gpm/internal/par"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Sentinel errors, so callers (e.g. the HTTP layer) can map failure
// classes to distinct responses.
var (
	// ErrClosed reports an operation on a closed registry.
	ErrClosed = errors.New("contq: registry closed")
	// ErrAlreadyRegistered reports a duplicate pattern id.
	ErrAlreadyRegistered = errors.New("contq: pattern already registered")
	// ErrNotRegistered reports an unknown pattern id.
	ErrNotRegistered = errors.New("contq: pattern not registered")
	// ErrNoJournal reports a replay/resume request on a registry built
	// without a journal.
	ErrNoJournal = errors.New("contq: registry has no journal")
	// ErrSeqFuture reports a replay/resume request from a sequence number
	// ahead of the registry's head (e.g. a client that outlived a server
	// which lost its journal tail); the client must re-snapshot.
	ErrSeqFuture = errors.New("contq: requested seq is ahead of the registry")
	// ErrBadKind reports a Register call whose kind is unknown or does not
	// fit the pattern (e.g. iso over a non-normal pattern) — a client
	// error, distinct from the conflict of a duplicate id.
	ErrBadKind = errors.New("contq: bad engine kind")
)

// Kind selects the engine backing a registered pattern.
type Kind string

const (
	// KindAuto picks KindSim for normal patterns and KindBSim otherwise.
	KindAuto Kind = "auto"
	// KindSim backs the pattern with incremental graph simulation
	// (incsim); the pattern must be normal.
	KindSim Kind = "sim"
	// KindBSim backs the pattern with incremental bounded simulation
	// (incbsim).
	KindBSim Kind = "bsim"
	// KindIso backs the pattern with incremental subgraph isomorphism
	// (iso); the pattern must be normal. The relation view is the union of
	// the embeddings' (u, v) pairs.
	KindIso Kind = "iso"
)

// Event is one commit's outcome for one pattern, delivered to subscribers
// in commit order. Delta may be empty (the batch did not move this
// pattern's match); Seq still advances so subscribers can track progress.
// At is the publish timestamp — delivery layers (SSE) subtract it from
// their send time to measure how stale an event was when the subscriber
// received it (zero for backfilled events, which are historical by
// definition).
type Event struct {
	Pattern string
	Seq     uint64
	Delta   rel.Delta
	At      time.Time
	// Trace is the W3C traceparent of the commit span that produced the
	// delta ("" when the commit was not sampled), so delivery layers can
	// close a delivery span on the same trace.
	Trace string
}

// Info describes one registered pattern.
type Info struct {
	ID          string
	Kind        Kind
	Nodes       int // pattern nodes
	Edges       int // pattern edges
	Subscribers int
	ResultSize  int // current |M|
}

// registration is one standing pattern: its matcher and its subscribers.
type registration struct {
	id     string
	p      *pattern.Pattern
	kind   Kind
	m      matcher
	regSeq uint64 // commit seq current when the pattern was registered

	mu   sync.Mutex
	subs map[*Subscription]struct{}
}

func (r *registration) publish(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for s := range r.subs {
		s.push(ev)
	}
}

func (r *registration) detach(s *Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, s)
}

func (r *registration) numSubs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Registry owns the canonical graph and the set of standing patterns.
// Construct with New; the Registry takes ownership of the graph (apply
// updates only through Apply).
type Registry struct {
	writeMu sync.Mutex   // serializes commits/Register/Unregister/Subscribe/Close
	mu      sync.RWMutex // guards pats, g, seq and counters for fast readers
	g       *graph.Graph // the ONE canonical graph all engines read through
	pats    map[string]*registration
	seq     uint64
	workers int // fan-out parallelism across engines (0 = default)
	engineW int // worker count handed to each engine's internal sweeps
	closed  bool

	// net, when non-nil, is the shared sub-pattern evaluation network:
	// sim/bsim patterns register into it instead of getting private
	// engines, so structurally overlapping standing patterns share
	// predicate satisfaction sets, single-edge match state and — for
	// patterns identical up to node renumbering — whole engines. The
	// writer repairs the network once per commit (before the matcher
	// fan-out); each pattern's matcher then just reads its remapped delta.
	// Iso patterns always stay private (embedding enumeration does not
	// decompose), as do the throwaway engines FromSeq backfill builds over
	// rewound graphs. Nil when WithoutNetwork was given.
	net   *gdn.Network
	noNet bool

	// journal, when set, records every commit (seq + net ΔG) and pattern
	// registration/unregistration, making the commit stream replayable:
	// Subscribe(FromSeq) backfills missed deltas, Replay serves raw ΔG
	// tails, and Recover rebuilds a registry after a crash. Appends happen
	// inside the writer's critical section, so the journal's record order
	// is the commit order.
	journal *journal.Journal

	// Writer queue: Apply enqueues and the first enqueuer drains, so
	// batches arriving while a commit is in flight coalesce into the next
	// commit. queue non-empty implies draining (the drainer only exits
	// once it sees an empty queue under qmu).
	qmu      sync.Mutex
	queue    []*applyReq
	draining bool

	// Commit subscribers: raw-ΔG tails (SubscribeCommits, the feed behind
	// GET /v1/commits/stream and follower replication). Published inside
	// the writer's critical section, guarded by their own lock so attach/
	// detach never contends with readers.
	cmu   sync.Mutex
	csubs map[*CommitSub]struct{}

	// Telemetry: met holds the commit pipeline's instruments (per-stage
	// histograms, queue-wait, subscription gauges), registered in obsReg —
	// obs.Default() unless WithMetrics injected one. commitObs, when set,
	// receives every committed drain's per-stage breakdown (the
	// slow-commit logging hook).
	obsReg    *obs.Registry
	met       *metrics
	commitObs func(CommitTiming)

	// tracer records per-commit span trees: one trace follows a batch
	// from the caller's ingest span through queue wait, every commit
	// stage, and publish — and, via the traceparent threaded onto the
	// journal record and commit/delta events, across the replication
	// topology. trace.Default() (off) unless WithTracer installs a
	// sampling tracer, so the untraced hot path costs one nil check per
	// span site.
	tracer *trace.Tracer

	// Resume-clone cache: one immutable graph clone per head sequence,
	// shared by every FromSeq resume at that head so a reconnect storm
	// pays a single O(|G|) copy under the writer lock instead of one per
	// client. Invalidated by each commit.
	resumeMu  sync.Mutex
	resumeSeq uint64
	resumeG   *graph.Graph

	// Cumulative writer counters, written inside the commit's r.mu
	// critical section and read by Stats.
	commits      uint64 // committed drains (each advanced seq by one)
	applies      uint64 // Apply calls admitted into commits
	upsSubmitted uint64 // updates admitted before coalescing
	upsApplied   uint64 // effective updates after coalescing
	evictions    uint64 // patterns evicted after a panicking repair
}

// applyReq is one caller's queued Apply: its batch on the way in, its
// commit seq or validation error on the way out. enq stamps the moment the
// batch entered the coalescing queue, so the commit can report how long
// callers waited behind the in-flight drain.
type applyReq struct {
	ups  []graph.Update
	enq  time.Time
	sc   trace.SpanContext // the caller's span (ApplyContext), zero when untraced
	seq  uint64
	err  error
	done chan struct{}
}

// Option configures a Registry.
type Option func(*Registry)

// WithWorkers bounds how many engines repair concurrently during one
// commit's fan-out (0 = par.DefaultWorkers).
func WithWorkers(n int) Option {
	return func(r *Registry) { r.workers = n }
}

// WithJournal attaches a commit journal: every commit's net ΔG and every
// pattern (un)registration is appended to j, which then serves
// Subscribe(..., FromSeq(n)) resumes and Replay tails, and — for durable
// journals — crash recovery via Recover. The journal must be empty or
// freshly Reset (its head sequence must match the registry's, which New
// starts at 0); to adopt a journal with history, use Recover instead.
// Registry.Close flushes and fsyncs the journal but does not close it
// (the journal may outlive the registry, e.g. across graph reloads).
func WithJournal(j *journal.Journal) Option {
	return func(r *Registry) { r.journal = j }
}

// WithEngineWorkers sets the worker count passed to each engine's internal
// parallel sweeps. The default is 1: with many engines repairing
// concurrently, per-engine parallelism would oversubscribe the cores, so
// intra-engine sweeps stay serial unless explicitly raised (useful for a
// registry serving a single heavy pattern).
func WithEngineWorkers(n int) Option {
	return func(r *Registry) { r.engineW = n }
}

// WithTracer directs the registry's commit spans into t instead of the
// process-wide trace.Default() (which is off). The commit pipeline opens
// one span per stage under the caller's trace — or a fresh root trace
// when the tracer's mode samples it — and the resulting traceparent
// rides the journal record and every published event.
func WithTracer(t *trace.Tracer) Option {
	return func(r *Registry) { r.tracer = t }
}

// WithoutNetwork disables the shared sub-pattern evaluation network:
// every pattern gets a private engine, the organisation the registry had
// before the network existed. Mainly for equivalence tests and A/B
// benchmarks; results and deltas are identical either way.
func WithoutNetwork() Option {
	return func(r *Registry) { r.noNet = true }
}

// New builds a registry over g, taking ownership of it. When a journal is
// attached (WithJournal) and it is brand new, it is seeded with a
// snapshot of g so crash recovery can replay commits over the starting
// state.
func New(g *graph.Graph, options ...Option) *Registry {
	r := &Registry{g: g, pats: make(map[string]*registration), csubs: make(map[*CommitSub]struct{}), engineW: 1}
	for _, o := range options {
		o(r)
	}
	if r.obsReg == nil {
		r.obsReg = obs.Default()
	}
	if r.tracer == nil {
		r.tracer = trace.Default()
	}
	r.met = newMetrics(r.obsReg)
	if !r.noNet {
		r.net = gdn.New(g, r.workers)
	}
	if r.journal != nil {
		r.journal.Bootstrap(g) //nolint:errcheck // failure lands in journal.Stats.LastError
	}
	return r
}

// Register installs a standing pattern under id, choosing the backing
// engine by kind. The engine computes its initial match over the current
// graph state; the call is atomic with respect to commits, so the new
// pattern sees every later batch exactly once.
func (r *Registry) Register(id string, p *pattern.Pattern, kind Kind) error {
	if id == "" {
		return fmt.Errorf("contq: empty pattern id")
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.pats[id]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, id)
	}
	if kind == "" || kind == KindAuto {
		if p.IsNormal() {
			kind = KindSim
		} else {
			kind = KindBSim
		}
	}
	// Engines share the canonical graph: each reads it through a private
	// update overlay, so registering P patterns costs P × pattern-state,
	// not P graph clones. Sim/bsim patterns go one step further and enter
	// the shared evaluation network, where structurally identical
	// sub-patterns (and whole patterns, up to renumbering) share state
	// with every other registered pattern.
	var m matcher
	if r.net != nil && (kind == KindSim || kind == KindBSim) {
		h, herr := r.net.Register(string(kind), p)
		if herr != nil {
			// The network only rejects patterns that do not fit the kind
			// (same contract as the private engines' constructors).
			return fmt.Errorf("%w: %w", ErrBadKind, herr)
		}
		m = netMatcher{h}
	} else {
		var err error
		m, err = newMatcher(kind, p, r.g, r.engineW)
		if err != nil {
			return err
		}
	}
	r.mu.RLock()
	seq := r.seq
	r.mu.RUnlock()
	// Journal the registration (with the resolved kind) before installing
	// it, so a pattern is never live without being recoverable. On failure
	// the matcher must give back any network state it acquired.
	if r.journal != nil {
		var def bytes.Buffer
		if err := p.Write(&def); err != nil {
			m.release()
			return fmt.Errorf("contq: serializing pattern %q: %w", id, err)
		}
		if err := r.journal.AppendRegister(seq, id, string(kind), def.Bytes()); err != nil {
			m.release()
			return fmt.Errorf("contq: journaling pattern %q: %w", id, err)
		}
	}
	reg := &registration{id: id, p: p, kind: kind, m: m, regSeq: seq, subs: make(map[*Subscription]struct{})}
	r.mu.Lock()
	r.pats[id] = reg
	r.mu.Unlock()
	return nil
}

// Unregister removes a standing pattern and cancels its subscriptions,
// reporting whether the id was registered.
func (r *Registry) Unregister(id string) bool {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.mu.Lock()
	reg, ok := r.pats[id]
	delete(r.pats, id)
	seq := r.seq
	r.mu.Unlock()
	if !ok {
		return false
	}
	if r.journal != nil {
		// Best-effort: an append failure is recorded in the journal's
		// stats (LastError); the unregistration itself stands.
		r.journal.AppendUnregister(seq, id) //nolint:errcheck // see above
	}
	reg.m.release()
	reg.mu.Lock()
	subs := make([]*Subscription, 0, len(reg.subs))
	for s := range reg.subs {
		subs = append(subs, s)
	}
	reg.subs = make(map[*Subscription]struct{})
	reg.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
	return true
}

// Apply submits one batch of edge updates and blocks until the commit
// containing it completes, returning that commit's sequence number. The
// batch is validated independently of any other caller's (an invalid
// batch gets its own error and poisons nothing). On error, a zero seq
// means the batch was never committed; a nonzero seq means it WAS
// committed and published but a post-commit step failed (e.g. the
// journal append — the state stands in memory but is not durable).
//
// Batches queued while a commit is in flight coalesce into the next
// commit: their updates are concatenated in arrival order and cancelled
// at the edge level (insert/delete pairs of the same edge annihilate;
// updates restating the graph's current state vanish), then the net
// effective ΔG is fanned out to every engine in parallel and applied to
// the canonical graph exactly once. Each commit — even one whose batch
// cancelled to nothing — advances the sequence by one and publishes one
// event per pattern, so subscribers see consecutive sequence numbers and
// snapshot ⊕ deltas keeps reproducing Result().
func (r *Registry) Apply(ups []graph.Update) (uint64, error) {
	req := &applyReq{ups: ups, enq: time.Now(), done: make(chan struct{})}
	r.qmu.Lock()
	if r.draining {
		// A drainer is active; it (or its successor) picks this up.
		r.queue = append(r.queue, req)
		r.qmu.Unlock()
	} else {
		r.queue = append(r.queue, req)
		r.draining = true
		r.qmu.Unlock()
		// The first enqueuer commits the batch containing its own request
		// synchronously; work queued behind that commit continues on a
		// background drainer, so no caller is ever held past its own
		// commit.
		r.drainStep(true)
	}
	<-req.done
	return req.seq, req.err
}

// ApplyContext is Apply with real cancellation: it returns as soon as ctx
// is done instead of waiting for the commit. The commit itself is never
// torn — a batch the writer has already picked up still commits whole —
// but a batch still waiting in the queue is withdrawn, so a zero sequence
// with ctx's error means the batch was definitely not (queue-withdrawn)
// or not observably (abandoned mid-drain) committed; callers that must
// know re-sync via Seq/Replay. Unlike Apply, the drain always runs on a
// background goroutine, so a canceled caller never abandons the drainer
// role with batches queued.
func (r *Registry) ApplyContext(ctx context.Context, ups []graph.Update) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	req := &applyReq{ups: ups, enq: time.Now(), sc: trace.FromContext(ctx), done: make(chan struct{})}
	r.qmu.Lock()
	r.queue = append(r.queue, req)
	drain := !r.draining
	if drain {
		r.draining = true
	}
	r.qmu.Unlock()
	if drain {
		go r.drainStep(false)
	}
	select {
	case <-req.done:
		return req.seq, req.err
	case <-ctx.Done():
	}
	// Canceled: withdraw the batch if the drainer has not taken it yet, so
	// it provably never commits. Once in a drain, the outcome is decided
	// without us — report the cancellation and let the commit stand.
	r.qmu.Lock()
	for i, q := range r.queue {
		if q == req {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			r.qmu.Unlock()
			return 0, ctx.Err()
		}
	}
	r.qmu.Unlock()
	// Not in the queue: the drainer took it. The commit may have finished
	// in the same instant the context fired — prefer the real outcome over
	// an "unknown" report when it is already knowable.
	select {
	case <-req.done:
		return req.seq, req.err
	default:
	}
	return 0, fmt.Errorf("contq: apply abandoned mid-commit: %w", ctx.Err())
}

// Closed reports whether the registry has been shut down (readiness
// probes use it; writes would fail with ErrClosed).
func (r *Registry) Closed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// drainStep commits one drained batch. Call with r.draining already true
// and r.qmu released. If more batches queued up during the commit, the
// drain continues on a background goroutine (bounding every caller's
// latency at one commit); otherwise the draining flag clears. A panicking
// commit must not wedge the writer: queued requests are failed, the flag
// clears, and the panic propagates to the synchronous caller (propagate
// true) or is converted into the waiters' errors on a background drainer
// (propagate false), where re-panicking would kill the process.
func (r *Registry) drainStep(propagate bool) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		err := fmt.Errorf("contq: commit panicked: %v", rec)
		r.qmu.Lock()
		pending := r.queue
		r.queue = nil
		r.draining = false
		r.qmu.Unlock()
		for _, q := range pending {
			q.err = err
			close(q.done)
		}
		if propagate {
			panic(rec)
		}
	}()
	r.qmu.Lock()
	batch := r.queue
	r.queue = nil
	r.qmu.Unlock()
	r.commit(batch)
	r.qmu.Lock()
	if len(r.queue) == 0 {
		r.draining = false
		r.qmu.Unlock()
		return
	}
	r.qmu.Unlock()
	go r.drainStep(false)
}

// validate checks one caller's batch against the canonical graph. Called
// under writeMu (node ids are append-only, so a batch valid now stays
// valid for the rest of the commit).
func (r *Registry) validate(ups []graph.Update) error {
	for _, up := range ups {
		if up.Op != graph.InsertEdge && up.Op != graph.DeleteEdge {
			return fmt.Errorf("contq: update %v has unknown op %d", up, up.Op)
		}
		if !r.g.HasNode(up.From) || !r.g.HasNode(up.To) {
			return fmt.Errorf("contq: update %v references a node outside the graph", up)
		}
	}
	return nil
}

// commit validates, coalesces and commits one drained batch of Apply
// requests under the writer lock, then reports each caller's outcome. The
// edge-level cancellation (insert/delete pairs of the same edge inside
// one drain annihilate; restatements of the current graph state vanish)
// is graph.NetUpdates — the same minDelta reduction the engines use.
func (r *Registry) commit(batch []*applyReq) {
	defer func() {
		rec := recover()
		if rec != nil {
			// An engine repair panicked mid-fan-out: no sequence number was
			// assigned, so tell every caller still in flight what happened
			// before unblocking it.
			err := fmt.Errorf("contq: commit panicked: %v", rec)
			for _, req := range batch {
				if req.err == nil && req.seq == 0 {
					req.err = err
				}
			}
		}
		for _, req := range batch {
			close(req.done)
		}
		if rec != nil {
			panic(rec)
		}
	}()
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		for _, req := range batch {
			req.err = ErrClosed
		}
		return
	}
	// Telemetry: the commit clock starts once the writer lock is held (the
	// wait for it is the callers' queue-wait, observed per request below),
	// and each pipeline stage is stamped as it completes.
	start := time.Now()
	var ct CommitTiming
	for _, req := range batch {
		if !req.enq.IsZero() {
			r.met.queueWait.ObserveDuration(start.Sub(req.enq))
			// A traced caller's queue wait becomes a span under its own
			// ingest span: the time its batch sat behind the in-flight
			// commit before this drain picked it up.
			if qs := r.tracer.StartSpanAt(req.sc, "queue.wait", req.enq); qs != nil {
				qs.EndAt(start)
			}
		}
	}
	r.met.drainSize.Observe(float64(len(batch)))
	// Per-caller validation: a bad batch fails alone, the rest commit.
	// A rejected request keeps seq 0 — callers (and the HTTP layer) use a
	// nonzero seq with an error to distinguish "committed but a later
	// step failed" from "never committed".
	valid := make([]*applyReq, 0, len(batch))
	var combined []graph.Update
	for _, req := range batch {
		if err := r.validate(req.ups); err != nil {
			req.err = err
			continue
		}
		valid = append(valid, req)
		combined = append(combined, req.ups...)
	}
	if len(valid) == 0 {
		return
	}
	effective := graph.NetUpdates(r.g, combined)
	ct.Validate = time.Since(start)
	r.met.validate.ObserveDuration(ct.Validate)
	r.met.drainUps.Observe(float64(len(effective)))
	ct.Batches, ct.Updates = len(valid), len(effective)

	// The commit span continues the first traced caller's trace; every
	// other traced caller coalesced into this drain becomes a span link,
	// so a merged batch still connects back to each origin. With no
	// traced caller the tracer's own mode decides (a fresh root trace,
	// or nil — the no-op span — when unsampled).
	var parent trace.SpanContext
	for _, req := range valid {
		if req.sc.Valid() && req.sc.Sampled {
			parent = req.sc
			break
		}
	}
	var cspan *trace.Span
	if parent.Valid() {
		cspan = r.tracer.StartSpanAt(parent, "commit", start)
		for _, req := range valid {
			if req.sc.Valid() && req.sc != parent {
				cspan.AddLink(req.sc)
			}
		}
	} else {
		cspan = r.tracer.StartRootAt("commit", start)
	}
	cspan.SetAttr("batches", len(valid))
	cspan.SetAttr("submitted_updates", len(combined))

	// The committed callback stamps every caller's seq the instant it is
	// assigned — before journaling and publishing — so a failure (or panic)
	// in any later step surfaces as "committed at seq N but X failed",
	// never as the seq-0 signal that means the batch was rejected.
	_, jerr, err := r.commitEffective(effective, len(valid), len(combined), &ct, start, cspan, func(seq uint64) {
		for _, req := range valid {
			req.seq = seq
		}
	})
	if err != nil {
		// No seq was assigned: callers see seq 0 with the error.
		for _, req := range valid {
			req.err = err
		}
		return
	}
	if jerr != nil {
		for _, req := range valid {
			req.err = jerr
		}
	}
}

// commitEffective runs the committed half of the pipeline for one net
// effective batch, under writeMu: shared-network repair, engine fan-out,
// canonical graph mutation, sequence assignment, journaling, publishes
// (pattern deltas and raw-ΔG commit subscribers) and evictions. Both the
// coalescing writer (commit) and the replication path (ApplyReplicated)
// funnel through here, so leader and follower commits are byte-for-byte
// the same pipeline.
//
// applies and submitted are the caller-side counts for Stats (Apply calls
// admitted, unit updates before coalescing). committed, if non-nil, runs
// the instant the sequence is assigned — before journaling and publishing
// — so callers can record the seq even if a later step panics. The
// returned jerr is a journal append failure — the commit still stands in
// memory and was published; err means the commit did not happen (the
// canonical graph rejected the batch) and no sequence was consumed.
//
// cspan is the commit's span (nil when unsampled); commitEffective owns
// it from here: it hangs one child span per stage off it, stamps the
// sequence, threads its traceparent onto the journal record and every
// published event, and ends it.
func (r *Registry) commitEffective(effective []graph.Update, applies, submitted int, ct *CommitTiming, start time.Time, cspan *trace.Span, committed func(seq uint64)) (seq uint64, jerr, err error) {
	cspan.SetAttr("effective_updates", len(effective))
	if ct.Validate > 0 {
		// Validation ran in the caller before the span existed; backdate
		// its stage span so the tree covers the whole pipeline.
		if vs := r.tracer.StartSpanAt(cspan.Context(), "stage.validate", start); vs != nil {
			vs.EndAt(start.Add(ct.Validate))
		}
	}
	// Repair the shared evaluation network once for the whole commit,
	// before the per-pattern fan-out: every network-backed matcher's apply
	// below just reads its pattern's cached (remapped) delta. A shared node
	// whose repair panicked marks itself broken; the affected patterns'
	// matchers then panic inside the fan-out and are evicted individually,
	// exactly like a private engine that panicked.
	if r.net != nil && len(effective) > 0 {
		netStart := time.Now()
		nspan := r.tracer.StartSpanAt(cspan.Context(), "stage.network", netStart)
		var savedBefore int64
		if nspan != nil {
			savedBefore = r.net.Stats().RepairsSaved
		}
		r.net.Apply(effective)
		ct.Network = time.Since(netStart)
		r.met.network.ObserveDuration(ct.Network)
		if nspan != nil {
			st := r.net.Stats()
			nspan.SetAttr("repairs_saved", st.RepairsSaved-savedBefore)
			nspan.SetAttr("join_nodes", st.JoinNodes)
			nspan.EndAt(netStart.Add(ct.Network))
		}
	}

	// Fan the effective ΔG out to every engine: they read the canonical
	// graph (immutable until below) through private overlays, so repairs
	// run in parallel without sharing mutable state. A panicking repair is
	// contained to its own engine — the other engines have already
	// absorbed the batch, so the commit must proceed (graph mutation,
	// seq, journal, publishes) or every surviving engine would be
	// permanently desynced from the canonical graph. The broken pattern's
	// state is undefined, so it is evicted below.
	regs := r.snapshotRegs()
	deltas := make([]rel.Delta, len(regs))
	repairErr := make([]error, len(regs))
	repairDur := make([]time.Duration, len(regs))
	ct.Patterns = len(regs)
	if len(effective) > 0 {
		repairStart := time.Now()
		rspan := r.tracer.StartSpanAt(cspan.Context(), "stage.repair", repairStart)
		par.For(len(regs), r.workers, func(_, i int) {
			defer func() {
				if rec := recover(); rec != nil {
					repairErr[i] = fmt.Errorf("contq: pattern %q repair panicked: %v", regs[i].id, rec)
				}
			}()
			engStart := time.Now()
			deltas[i] = regs[i].m.apply(effective)
			repairDur[i] = time.Since(engStart)
		})
		ct.Repair = time.Since(repairStart)
		r.met.repair.ObserveDuration(ct.Repair)
		for i, reg := range regs {
			if h := r.met.repairKind[reg.kind]; h != nil && repairErr[i] == nil {
				h.ObserveDuration(repairDur[i])
			}
			if repairDur[i] > ct.SlowestRepair {
				ct.SlowestRepair, ct.SlowestPattern = repairDur[i], reg.id
			}
		}
		if rspan != nil {
			rspan.SetAttr("patterns_repaired", len(regs))
			if ct.SlowestPattern != "" {
				rspan.SetAttr("slowest_pattern", ct.SlowestPattern)
				rspan.SetAttr("slowest_repair_ms", float64(ct.SlowestRepair)/float64(time.Millisecond))
			}
			rspan.EndAt(repairStart.Add(ct.Repair))
		}
	}

	r.mu.Lock()
	if len(effective) > 0 {
		if _, aerr := r.g.ApplyAll(effective); aerr != nil {
			// Unreachable after validation + coalescing on the writer path;
			// on the replication path it means the replica diverged.
			r.mu.Unlock()
			cspan.SetAttr("error", aerr.Error())
			cspan.End()
			return 0, nil, fmt.Errorf("contq: canonical graph diverged: %w", aerr)
		}
	}
	r.seq++
	seq = r.seq
	r.commits++
	r.applies += uint64(applies)
	r.upsSubmitted += uint64(submitted)
	r.upsApplied += uint64(len(effective))
	r.mu.Unlock()
	cspan.SetSeq(seq)
	tp := cspan.Traceparent()
	if committed != nil {
		committed(seq)
	}
	// The graph (and head) moved on: drop the resume-clone cache so no
	// later resume reuses a stale copy (also frees its memory).
	r.resumeMu.Lock()
	r.resumeG = nil
	r.resumeMu.Unlock()
	// Journal the commit before publishing it, so no subscriber ever holds
	// a sequence number the journal cannot replay. An append failure (disk
	// full) surfaces to every caller in the commit — the state change
	// stands in memory but is not durable — and the registry keeps serving.
	if r.journal != nil {
		jStart := time.Now()
		jspan := r.tracer.StartSpanAt(cspan.Context(), "stage.journal", jStart)
		if aerr := r.journal.AppendCommitTrace(seq, effective, tp); aerr != nil {
			jerr = fmt.Errorf("contq: commit %d applied but not journaled: %w", seq, aerr)
			jspan.SetAttr("error", aerr.Error())
		} else if r.journal.SnapshotDue() {
			// Checkpoint under the writer lock: the canonical graph is
			// stable here, and blocking the next commit bounds how far the
			// snapshot can lag the head. Failures land in journal stats.
			r.journal.WriteSnapshot(seq, r.g, r.patternDefs()) //nolint:errcheck // recorded in journal.Stats
		}
		ct.Journal = time.Since(jStart)
		r.met.journal.ObserveDuration(ct.Journal)
		if jspan != nil {
			jspan.EndAt(jStart.Add(ct.Journal))
		}
	}
	pubStart := time.Now()
	pspan := r.tracer.StartSpanAt(cspan.Context(), "stage.publish", pubStart)
	r.publishCommit(CommitEvent{Seq: seq, Updates: effective, At: pubStart, Trace: tp})
	for i, reg := range regs {
		if repairErr[i] != nil {
			continue
		}
		reg.publish(Event{Pattern: reg.id, Seq: seq, Delta: deltas[i], At: pubStart, Trace: tp})
	}
	ct.Publish = time.Since(pubStart)
	r.met.publish.ObserveDuration(ct.Publish)
	if pspan != nil {
		pspan.EndAt(pubStart.Add(ct.Publish))
	}
	// Evict patterns whose repair panicked: their match state is
	// undefined, so they must not serve another result or delta. Their
	// subscribers' channels close (the unregistered signal) and the
	// eviction is journaled so recovery agrees.
	for i, reg := range regs {
		if repairErr[i] != nil {
			r.evictLocked(reg, seq)
		}
	}
	ct.Seq, ct.Total = seq, time.Since(start)
	ct.Trace = tp
	r.met.total.ObserveDuration(ct.Total)
	r.met.commits.Inc()
	r.met.applies.Add(uint64(applies))
	cspan.End()
	if r.commitObs != nil {
		r.commitObs(*ct)
	}
	return seq, jerr, nil
}

// Tracer returns the tracer recording this registry's commit spans —
// trace.Default() (off) unless WithTracer installed one. Servers render
// its retained traces (see GET /v1/tracez).
func (r *Registry) Tracer() *trace.Tracer {
	return r.tracer
}

// evictLocked removes a pattern whose engine is no longer trustworthy.
// Called under writeMu (from inside a commit).
func (r *Registry) evictLocked(reg *registration, seq uint64) {
	r.mu.Lock()
	cur, ok := r.pats[reg.id]
	if !ok || cur != reg {
		r.mu.Unlock()
		return
	}
	delete(r.pats, reg.id)
	r.evictions++
	r.mu.Unlock()
	if r.journal != nil {
		r.journal.AppendUnregister(seq, reg.id) //nolint:errcheck // recorded in journal.Stats
	}
	reg.m.release()
	reg.mu.Lock()
	subs := make([]*Subscription, 0, len(reg.subs))
	for s := range reg.subs {
		subs = append(subs, s)
	}
	reg.subs = make(map[*Subscription]struct{})
	reg.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// patternDefs serializes the registered patterns for a journal snapshot.
func (r *Registry) patternDefs() []journal.PatternDef {
	r.mu.RLock()
	regs := make([]*registration, 0, len(r.pats))
	for _, reg := range r.pats {
		regs = append(regs, reg)
	}
	r.mu.RUnlock()
	defs := make([]journal.PatternDef, 0, len(regs))
	for _, reg := range regs {
		var def bytes.Buffer
		if err := reg.p.Write(&def); err != nil {
			continue // unserializable patterns were rejected at Register
		}
		defs = append(defs, journal.PatternDef{ID: reg.id, Kind: string(reg.kind), Def: def.Bytes(), RegSeq: reg.regSeq})
	}
	return defs
}

func (r *Registry) snapshotRegs() []*registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	regs := make([]*registration, 0, len(r.pats))
	for _, reg := range r.pats {
		regs = append(regs, reg)
	}
	return regs
}

// SubscribeOption configures a Subscribe call.
type SubscribeOption func(*subscribeOpts)

type subscribeOpts struct {
	fromSeq uint64
	hasFrom bool
}

// FromSeq resumes a subscription from commit sequence n: the subscriber
// already holds the pattern's match relation as of n (from an earlier
// snapshot plus deltas), and the subscription's events begin at n+1 with
// the missed deltas backfilled from the journal — no snapshot re-send.
// The returned subscription has Snapshot nil and Seq n.
//
// Backfill replays the journal's net update batches for (n, head] through
// a fresh engine (the same *Delta paths live commits use), so the deltas
// are exactly what a connected subscriber would have seen. Requires a
// journal that still retains the range: the call fails with ErrNoJournal,
// ErrSeqFuture, or an error wrapping journal.ErrCompacted when resumption
// is impossible, and the caller must fall back to a fresh Subscribe.
func FromSeq(n uint64) SubscribeOption {
	return func(o *subscribeOpts) { o.fromSeq = n; o.hasFrom = true }
}

// Subscribe opens a match-delta subscription for pattern id. The returned
// subscription carries the pattern's current result snapshot and the
// commit sequence it reflects, atomically with respect to commits: the
// first event on C is the first commit after Seq, so Snapshot plus the
// accumulated deltas always reproduces the live result. The snapshot is
// shared and must not be mutated (Clone it to accumulate). With FromSeq,
// the snapshot is skipped and missed deltas are backfilled instead.
//
// Delivery never blocks the writer: events queue in an unbounded per-
// subscriber mailbox and drain in commit order.
func (r *Registry) Subscribe(id string, options ...SubscribeOption) (*Subscription, error) {
	return r.SubscribeContext(context.Background(), id, options...) //gpmvet:ignore legacy non-ctx API: this wrapper is the documented detachment point
}

// SubscribeContext is Subscribe with cancellation: a FromSeq resume's
// journal scan and delta backfill — the potentially slow parts — stop and
// the call fails with ctx's error as soon as ctx is done, detaching the
// half-built subscription.
func (r *Registry) SubscribeContext(ctx context.Context, id string, options ...SubscribeOption) (*Subscription, error) {
	var o subscribeOpts
	for _, opt := range options {
		opt(&o)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.hasFrom {
		return r.subscribeFrom(ctx, id, o.fromSeq)
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	r.mu.RLock()
	reg, ok := r.pats[id]
	seq := r.seq
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, id)
	}
	s := newSubscription(id, reg.m.result(), seq, reg, r.met, false)
	reg.mu.Lock()
	reg.subs[s] = struct{}{}
	reg.mu.Unlock()
	return s, nil
}

// Kind reports the engine kind backing pattern id — the resolved kind,
// never KindAuto — and whether the id is registered.
func (r *Registry) Kind(id string) (Kind, bool) {
	r.mu.RLock()
	reg, ok := r.pats[id]
	r.mu.RUnlock()
	if !ok {
		return "", false
	}
	return reg.kind, true
}

// Result returns pattern id's current match relation (a shared immutable
// snapshot — do not mutate) without blocking behind writers.
func (r *Registry) Result(id string) (rel.Relation, bool) {
	r.mu.RLock()
	reg, ok := r.pats[id]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return reg.m.result(), true
}

// Patterns lists the registered patterns.
func (r *Registry) Patterns() []Info {
	r.mu.RLock()
	regs := make([]*registration, 0, len(r.pats))
	for _, reg := range r.pats {
		regs = append(regs, reg)
	}
	r.mu.RUnlock()
	infos := make([]Info, 0, len(regs))
	for _, reg := range regs {
		infos = append(infos, Info{
			ID:          reg.id,
			Kind:        reg.kind,
			Nodes:       reg.p.NumNodes(),
			Edges:       reg.p.NumEdges(),
			Subscribers: reg.numSubs(),
			ResultSize:  reg.m.result().Size(),
		})
	}
	return infos
}

// GraphInfo reports the canonical graph's size and the current commit
// sequence.
func (r *Registry) GraphInfo() (nodes, edges int, seq uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.g.NumNodes(), r.g.NumEdges(), r.seq
}

// Seq returns the current commit sequence number.
func (r *Registry) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// Stats is a point-in-time snapshot of the registry: the shared canonical
// graph's size, the commit sequence, and the writer's cumulative
// coalescing counters.
type Stats struct {
	Patterns int    `json:"patterns"`
	Seq      uint64 `json:"seq"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Commits counts committed drains; each advanced Seq by one.
	Commits uint64 `json:"commits"`
	// Applies counts Apply calls admitted into commits; Applies - Commits
	// is the number of Apply calls absorbed by coalescing.
	Applies uint64 `json:"applies"`
	// CoalescedApplies = Applies - Commits: Apply calls that shared a
	// commit with another caller instead of paying their own fan-out.
	CoalescedApplies uint64 `json:"coalesced_applies"`
	// UpdatesSubmitted / UpdatesApplied count unit updates before and
	// after edge-level cancellation; the difference is UpdatesCancelled.
	UpdatesSubmitted uint64 `json:"updates_submitted"`
	UpdatesApplied   uint64 `json:"updates_applied"`
	UpdatesCancelled uint64 `json:"updates_cancelled"`
	// PatternsEvicted counts patterns dropped because their engine
	// panicked during a repair (their match state became undefined); a
	// nonzero value means subscribers saw their streams close.
	PatternsEvicted uint64 `json:"patterns_evicted"`
	// Network, when the registry runs the shared sub-pattern evaluation
	// network (the default), reports its shape and sharing counters: how
	// many shared nodes back the registered patterns, how many
	// registrations reused an existing join, and how many per-pattern
	// repairs sharing plus relevance filtering saved. Nil when the
	// registry was built WithoutNetwork.
	Network *gdn.Stats `json:"network,omitempty"`
	// Journal, when the registry has one, reports the commit log's
	// retention and footprint (appended commits, segments, bytes, oldest
	// retained seq).
	Journal *journal.Stats `json:"journal,omitempty"`
	// Timings is the commit pipeline's latency telemetry: per-stage
	// histograms (queue wait, validate, network, repair fan-out, journal,
	// publish, total) summarized as count/sum/max/quantiles, plus the
	// subscription gauges. The same instruments back GET /v1/metricz; this
	// block is their typed JSON face — the observation stream the adaptive
	// execution policy consumes.
	Timings *TimingStats `json:"timings,omitempty"`
}

// Metrics returns the obs registry holding this registry's instruments —
// obs.Default() unless WithMetrics injected one. Servers render it (see
// GET /v1/metricz); tests read it back directly.
func (r *Registry) Metrics() *obs.Registry {
	return r.obsReg
}

// Stats returns the registry's current statistics without blocking behind
// writers.
func (r *Registry) Stats() Stats {
	var js *journal.Stats
	if r.journal != nil {
		s := r.journal.Stats()
		js = &s
	}
	var ns *gdn.Stats
	if r.net != nil {
		s := r.net.Stats()
		ns = &s
	}
	ts := r.met.timingStats()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Journal:          js,
		Network:          ns,
		Timings:          ts,
		Patterns:         len(r.pats),
		Seq:              r.seq,
		Nodes:            r.g.NumNodes(),
		Edges:            r.g.NumEdges(),
		Commits:          r.commits,
		Applies:          r.applies,
		CoalescedApplies: r.applies - r.commits,
		UpdatesSubmitted: r.upsSubmitted,
		UpdatesApplied:   r.upsApplied,
		UpdatesCancelled: r.upsSubmitted - r.upsApplied,
		PatternsEvicted:  r.evictions,
	}
}

// Close unregisters every pattern and cancels all subscriptions; further
// writes fail. Any in-flight commit drains first, and a journaled
// registry's journal is flushed and fsynced before Close returns (the
// journal itself stays open — its owner closes it).
func (r *Registry) Close() {
	r.writeMu.Lock()
	r.mu.Lock()
	// closed is written under BOTH locks: the write paths read it under
	// writeMu, the lock-free Closed() accessor under mu.
	r.closed = true
	pats := r.pats
	r.pats = make(map[string]*registration)
	r.mu.Unlock()
	if r.journal != nil {
		// Under writeMu: every commit that ever got a seq is already
		// appended, and no new one can start.
		r.journal.Sync() //nolint:errcheck // recorded in journal.Stats
	}
	r.writeMu.Unlock()
	// Safe without writeMu: closed is set, so no commit can publish again.
	r.closeCommitSubs()
	for _, reg := range pats {
		// Safe without writeMu: closed is set, so no commit, Register or
		// Unregister can touch these matchers again.
		reg.m.release()
		reg.mu.Lock()
		subs := make([]*Subscription, 0, len(reg.subs))
		for s := range reg.subs {
			subs = append(subs, s)
		}
		reg.subs = make(map[*Subscription]struct{})
		reg.mu.Unlock()
		for _, s := range subs {
			s.close()
		}
	}
}
