// Package contq implements the continuous-query layer that turns the
// incremental engines into a serving system: a Registry owns a canonical
// data graph and any number of standing patterns, each backed by the
// incremental engine matching its kind (incsim for normal patterns,
// incbsim for b-patterns, iso for subgraph isomorphism) over a private
// replica of the graph. A single serialized writer ingests edge-update
// batches, fans each batch out to all engines in parallel (internal/par),
// and publishes per-pattern match deltas ΔM — not full results — to
// channel subscribers in commit order, the production shape of incremental
// view maintenance (standing queries registered once, update streams
// fanned out, deltas pushed).
//
// Concurrency contract:
//
//   - Apply, Register, Unregister, Subscribe and Close serialize on one
//     writer lock, so every subscriber observes the same totally-ordered
//     commit sequence and a subscription's starting snapshot is atomic
//     with respect to commits.
//   - Readers (Result, Patterns, GraphInfo) never take the writer lock:
//     they read through the engines' lock-free cached snapshots, so reads
//     between updates are allocation-free and never block behind a writer.
//   - Each engine repairs a private clone of the graph, which is what
//     makes the per-batch fan-out embarrassingly parallel: engines never
//     share mutable state. The memory price is one graph replica per
//     registered pattern.
package contq

import (
	"errors"
	"fmt"
	"sync"

	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Sentinel errors, so callers (e.g. the HTTP layer) can map failure
// classes to distinct responses.
var (
	// ErrClosed reports an operation on a closed registry.
	ErrClosed = errors.New("contq: registry closed")
	// ErrAlreadyRegistered reports a duplicate pattern id.
	ErrAlreadyRegistered = errors.New("contq: pattern already registered")
	// ErrNotRegistered reports an unknown pattern id.
	ErrNotRegistered = errors.New("contq: pattern not registered")
)

// Kind selects the engine backing a registered pattern.
type Kind string

const (
	// KindAuto picks KindSim for normal patterns and KindBSim otherwise.
	KindAuto Kind = "auto"
	// KindSim backs the pattern with incremental graph simulation
	// (incsim); the pattern must be normal.
	KindSim Kind = "sim"
	// KindBSim backs the pattern with incremental bounded simulation
	// (incbsim).
	KindBSim Kind = "bsim"
	// KindIso backs the pattern with incremental subgraph isomorphism
	// (iso); the pattern must be normal. The relation view is the union of
	// the embeddings' (u, v) pairs.
	KindIso Kind = "iso"
)

// Event is one commit's outcome for one pattern, delivered to subscribers
// in commit order. Delta may be empty (the batch did not move this
// pattern's match); Seq still advances so subscribers can track progress.
type Event struct {
	Pattern string
	Seq     uint64
	Delta   rel.Delta
}

// Info describes one registered pattern.
type Info struct {
	ID          string
	Kind        Kind
	Nodes       int // pattern nodes
	Edges       int // pattern edges
	Subscribers int
	ResultSize  int // current |M|
}

// registration is one standing pattern: its matcher and its subscribers.
type registration struct {
	id   string
	p    *pattern.Pattern
	kind Kind
	m    matcher

	mu   sync.Mutex
	subs map[*Subscription]struct{}
}

func (r *registration) publish(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for s := range r.subs {
		s.push(ev)
	}
}

func (r *registration) detach(s *Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, s)
}

func (r *registration) numSubs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Registry owns the canonical graph and the set of standing patterns.
// Construct with New; the Registry takes ownership of the graph (apply
// updates only through Apply).
type Registry struct {
	writeMu sync.Mutex   // serializes Apply/Register/Unregister/Subscribe/Close
	mu      sync.RWMutex // guards pats, g and seq for fast readers
	g       *graph.Graph
	pats    map[string]*registration
	seq     uint64
	workers int // fan-out parallelism across engines (0 = default)
	engineW int // worker count handed to each engine's internal sweeps
	closed  bool
}

// Option configures a Registry.
type Option func(*Registry)

// WithWorkers bounds how many engines repair concurrently during one
// commit's fan-out (0 = par.DefaultWorkers).
func WithWorkers(n int) Option {
	return func(r *Registry) { r.workers = n }
}

// WithEngineWorkers sets the worker count passed to each engine's internal
// parallel sweeps. The default is 1: with many engines repairing
// concurrently, per-engine parallelism would oversubscribe the cores, so
// intra-engine sweeps stay serial unless explicitly raised (useful for a
// registry serving a single heavy pattern).
func WithEngineWorkers(n int) Option {
	return func(r *Registry) { r.engineW = n }
}

// New builds a registry over g, taking ownership of it.
func New(g *graph.Graph, options ...Option) *Registry {
	r := &Registry{g: g, pats: make(map[string]*registration), engineW: 1}
	for _, o := range options {
		o(r)
	}
	return r
}

// Register installs a standing pattern under id, choosing the backing
// engine by kind. The engine computes its initial match over the current
// graph state; the call is atomic with respect to commits, so the new
// pattern sees every later batch exactly once.
func (r *Registry) Register(id string, p *pattern.Pattern, kind Kind) error {
	if id == "" {
		return fmt.Errorf("contq: empty pattern id")
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.pats[id]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, id)
	}
	if kind == "" || kind == KindAuto {
		if p.IsNormal() {
			kind = KindSim
		} else {
			kind = KindBSim
		}
	}
	// Each engine owns a private replica of the canonical graph: replicas
	// are what let one commit repair all engines in parallel.
	m, err := newMatcher(kind, p, r.g.Clone(), r.engineW)
	if err != nil {
		return err
	}
	reg := &registration{id: id, p: p, kind: kind, m: m, subs: make(map[*Subscription]struct{})}
	r.mu.Lock()
	r.pats[id] = reg
	r.mu.Unlock()
	return nil
}

// Unregister removes a standing pattern and cancels its subscriptions,
// reporting whether the id was registered.
func (r *Registry) Unregister(id string) bool {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.mu.Lock()
	reg, ok := r.pats[id]
	delete(r.pats, id)
	r.mu.Unlock()
	if !ok {
		return false
	}
	reg.mu.Lock()
	subs := make([]*Subscription, 0, len(reg.subs))
	for s := range reg.subs {
		subs = append(subs, s)
	}
	reg.subs = make(map[*Subscription]struct{})
	reg.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
	return true
}

// Apply commits one batch of edge updates: it validates the endpoints,
// fans the batch out to every engine in parallel, applies it to the
// canonical graph, and publishes each pattern's ΔM to its subscribers
// under the new commit sequence number. Batches are serialized — there is
// exactly one commit order, and every subscriber sees it.
func (r *Registry) Apply(ups []graph.Update) (uint64, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	for _, up := range ups {
		if up.Op != graph.InsertEdge && up.Op != graph.DeleteEdge {
			return r.seq, fmt.Errorf("contq: update %v has unknown op %d", up, up.Op)
		}
		if !r.g.HasNode(up.From) || !r.g.HasNode(up.To) {
			return r.seq, fmt.Errorf("contq: update %v references a node outside the graph", up)
		}
	}
	regs := r.snapshotRegs()
	deltas := make([]rel.Delta, len(regs))
	par.For(len(regs), r.workers, func(_, i int) {
		deltas[i] = regs[i].m.apply(ups)
	})
	r.mu.Lock()
	if _, err := r.g.ApplyAll(ups); err != nil {
		// Unreachable after validation; restore nothing (replicas already
		// advanced) but surface the error loudly.
		r.mu.Unlock()
		return r.seq, fmt.Errorf("contq: canonical graph diverged: %w", err)
	}
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	for i, reg := range regs {
		reg.publish(Event{Pattern: reg.id, Seq: seq, Delta: deltas[i]})
	}
	return seq, nil
}

func (r *Registry) snapshotRegs() []*registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	regs := make([]*registration, 0, len(r.pats))
	for _, reg := range r.pats {
		regs = append(regs, reg)
	}
	return regs
}

// Subscribe opens a match-delta subscription for pattern id. The returned
// subscription carries the pattern's current result snapshot and the
// commit sequence it reflects, atomically with respect to commits: the
// first event on C is the first commit after Seq, so Snapshot plus the
// accumulated deltas always reproduces the live result. The snapshot is
// shared and must not be mutated (Clone it to accumulate).
//
// Delivery never blocks the writer: events queue in an unbounded per-
// subscriber mailbox and drain in commit order.
func (r *Registry) Subscribe(id string) (*Subscription, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	r.mu.RLock()
	reg, ok := r.pats[id]
	seq := r.seq
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, id)
	}
	s := newSubscription(id, reg.m.result(), seq, reg)
	reg.mu.Lock()
	reg.subs[s] = struct{}{}
	reg.mu.Unlock()
	return s, nil
}

// Result returns pattern id's current match relation (a shared immutable
// snapshot — do not mutate) without blocking behind writers.
func (r *Registry) Result(id string) (rel.Relation, bool) {
	r.mu.RLock()
	reg, ok := r.pats[id]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return reg.m.result(), true
}

// Patterns lists the registered patterns.
func (r *Registry) Patterns() []Info {
	r.mu.RLock()
	regs := make([]*registration, 0, len(r.pats))
	for _, reg := range r.pats {
		regs = append(regs, reg)
	}
	r.mu.RUnlock()
	infos := make([]Info, 0, len(regs))
	for _, reg := range regs {
		infos = append(infos, Info{
			ID:          reg.id,
			Kind:        reg.kind,
			Nodes:       reg.p.NumNodes(),
			Edges:       reg.p.NumEdges(),
			Subscribers: reg.numSubs(),
			ResultSize:  reg.m.result().Size(),
		})
	}
	return infos
}

// GraphInfo reports the canonical graph's size and the current commit
// sequence.
func (r *Registry) GraphInfo() (nodes, edges int, seq uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.g.NumNodes(), r.g.NumEdges(), r.seq
}

// Seq returns the current commit sequence number.
func (r *Registry) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// Close unregisters every pattern and cancels all subscriptions; further
// writes fail.
func (r *Registry) Close() {
	r.writeMu.Lock()
	r.closed = true
	r.mu.Lock()
	pats := r.pats
	r.pats = make(map[string]*registration)
	r.mu.Unlock()
	r.writeMu.Unlock()
	for _, reg := range pats {
		reg.mu.Lock()
		subs := make([]*Subscription, 0, len(reg.subs))
		for s := range reg.subs {
			subs = append(subs, s)
		}
		reg.subs = make(map[*Subscription]struct{})
		reg.mu.Unlock()
		for _, s := range subs {
			s.close()
		}
	}
}
