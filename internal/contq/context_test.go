package contq

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/rel"
)

// blockMatcher stalls every repair until released — a stand-in for an
// expensive engine, letting tests observe the writer mid-commit.
type blockMatcher struct {
	entered chan struct{} // closed when a repair starts
	unblock chan struct{} // the repair returns when this closes
}

func (m *blockMatcher) apply(ups []graph.Update) rel.Delta {
	close(m.entered)
	<-m.unblock
	return rel.Delta{}
}

func (m *blockMatcher) result() rel.Relation { return rel.NewRelation(1) }

func (m *blockMatcher) release() {}

// TestApplyContextCanceledBeforeCall: a dead context fails fast without
// touching the queue.
func TestApplyContextCanceledBeforeCall(t *testing.T) {
	g := generator.Synthetic(20, 60, generator.DefaultSchema(3), 1)
	reg := New(g)
	defer reg.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reg.ApplyContext(ctx, []graph.Update{graph.Insert(0, 1)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyContext on a dead ctx: %v", err)
	}
	if got := reg.Seq(); got != 0 {
		t.Fatalf("seq %d after a canceled Apply, want 0", got)
	}
}

// TestApplyContextWithdrawsQueuedBatch: while one commit blocks the
// writer, a second ApplyContext that gets canceled must return promptly,
// and its batch — still queued — must be withdrawn so it never commits.
func TestApplyContextWithdrawsQueuedBatch(t *testing.T) {
	seed := int64(2)
	g := generator.Synthetic(20, 60, generator.DefaultSchema(3), seed)
	reg := New(g)
	bm := &blockMatcher{entered: make(chan struct{}), unblock: make(chan struct{})}
	reg.mu.Lock()
	reg.pats["slow"] = &registration{id: "slow", kind: KindSim, m: bm, subs: make(map[*Subscription]struct{})}
	reg.mu.Unlock()

	ups := generator.Updates(g, 4, 0, seed+7)
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if _, err := reg.Apply(ups[:1]); err != nil {
			t.Error(err)
		}
	}()
	<-bm.entered // the writer is mid-commit and will stay there

	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan struct{})
	var seq uint64
	var err error
	go func() {
		defer close(canceled)
		seq, err = reg.ApplyContext(ctx, ups[1:2])
	}()
	time.Sleep(10 * time.Millisecond) // let the second batch enqueue
	cancel()
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("ApplyContext did not return after cancellation")
	}
	if seq != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ApplyContext: seq=%d err=%v", seq, err)
	}

	close(bm.unblock)
	<-firstDone
	// Only the first batch committed: the withdrawn one advanced nothing.
	if got := reg.Seq(); got != 1 {
		t.Fatalf("seq %d after withdrawal, want 1", got)
	}
	reg.Close()
}

// TestApplyContextBackgroundCompletes: an uncanceled ApplyContext behaves
// exactly like Apply — the commit lands and the seq comes back.
func TestApplyContextBackgroundCompletes(t *testing.T) {
	seed := int64(3)
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), seed)
	reg := New(g)
	defer reg.Close()
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	ups := generator.Updates(g, 6, 0, seed+7)
	for i, up := range ups[:3] {
		seq, err := reg.ApplyContext(context.Background(), []graph.Update{up})
		if err != nil || seq != uint64(i+1) {
			t.Fatalf("ApplyContext %d: seq=%d err=%v", i, seq, err)
		}
	}
}

// TestSubscribeContextCanceled: both subscribe paths fail fast on a dead
// context — including the FromSeq resume, whose backfill is the slow part.
func TestSubscribeContextCanceled(t *testing.T) {
	seed := int64(4)
	g := generator.Synthetic(40, 160, generator.DefaultSchema(3), seed)
	reg := New(g, WithJournal(journal.New()))
	defer reg.Close()
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	for _, up := range generator.Updates(g, 6, 0, seed+7) {
		if _, err := reg.Apply([]graph.Update{up}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reg.SubscribeContext(ctx, "q"); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubscribeContext on a dead ctx: %v", err)
	}
	if _, err := reg.SubscribeContext(ctx, "q", FromSeq(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("FromSeq resume on a dead ctx: %v", err)
	}
	// The failed resume must not leave a zombie subscriber attached.
	reg.mu.RLock()
	n := reg.pats["q"].numSubs()
	reg.mu.RUnlock()
	if n != 0 {
		t.Fatalf("%d subscribers left behind by canceled subscribes", n)
	}
	// A live context still works and sees the full history.
	sub, err := reg.SubscribeContext(context.Background(), "q", FromSeq(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	for want := uint64(2); want <= 6; want++ {
		ev := <-sub.C
		if ev.Seq != want {
			t.Fatalf("backfilled seq %d, want %d", ev.Seq, want)
		}
	}
}
