package contq

import (
	"runtime"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

// TestRegistrySharesCanonicalStorage asserts the tentpole structurally:
// every registered engine reads through the registry's ONE canonical
// graph and owns no replica.
func TestRegistrySharesCanonicalStorage(t *testing.T) {
	seed := int64(1)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	reg := New(g)
	for id, kind := range map[string]Kind{"sim": KindSim, "bsim": KindBSim, "iso": KindIso} {
		if err := reg.Register(id, testPattern(g, kind, seed), kind); err != nil {
			t.Fatal(err)
		}
	}
	canon := graph.View(reg.g)
	for id, r := range reg.pats {
		var base graph.View
		switch m := r.m.(type) {
		case simMatcher:
			if m.eng.Graph() != nil {
				t.Fatalf("%s: engine owns a graph replica", id)
			}
			base = m.eng.SharedBase()
		case bsimMatcher:
			if m.eng.Graph() != nil {
				t.Fatalf("%s: engine owns a graph replica", id)
			}
			base = m.eng.SharedBase()
		case *isoMatcher:
			base = m.eng.SharedBase()
		case netMatcher:
			base = reg.net.Base()
		default:
			t.Fatalf("%s: unknown matcher type %T", id, r.m)
		}
		if base != canon {
			t.Fatalf("%s: engine base is not the canonical graph", id)
		}
	}
	// The shared storage must keep serving correct updates.
	ups := generator.Updates(g, 20, 20, seed+5)
	if _, err := reg.Apply(ups); err != nil {
		t.Fatal(err)
	}
	reg.Close()
}

// heapInUse forces two GCs and reports live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestRegistryMemoryScalesWithPatternState is the acceptance check for the
// memory model: registering P patterns must NOT allocate P graph clones.
// The bar: total growth for P registrations stays under P/2 graph-clone
// footprints (the replica design paid a full clone each, so it could not
// possibly pass), while still leaving generous room for genuine
// per-pattern engine state.
func TestRegistryMemoryScalesWithPatternState(t *testing.T) {
	const nodes, edges, patterns = 20000, 80000, 6
	g := generator.Synthetic(nodes, edges, generator.DefaultSchema(6), 3)

	// Footprint of one graph replica, measured directly.
	before := heapInUse()
	clone := g.Clone()
	cloneBytes := heapInUse() - before
	runtime.KeepAlive(clone)
	clone = nil
	if cloneBytes == 0 {
		t.Skip("GC accounting too coarse on this platform")
	}

	reg := New(g)
	before = heapInUse()
	for i := 0; i < patterns; i++ {
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 2, K: 1}, int64(10+i))
		if err := reg.Register(ids(i), p, KindSim); err != nil {
			t.Fatal(err)
		}
	}
	growth := heapInUse() - before
	t.Logf("clone=%d bytes, growth for %d patterns=%d bytes (%.2f clones)",
		cloneBytes, patterns, growth, float64(growth)/float64(cloneBytes))
	if growth > cloneBytes*patterns/2 {
		t.Fatalf("registering %d patterns grew the heap by %d bytes (> %d = %d/2 graph clones): storage is not shared",
			patterns, growth, cloneBytes*patterns/2, patterns)
	}
	reg.Close()
	runtime.KeepAlive(g)
}

func ids(i int) string { return string(rune('a' + i)) }
