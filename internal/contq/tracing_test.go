package contq

import (
	"context"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs"
	"gpm/internal/obs/trace"
)

// alwaysTracer builds a tracer that samples every commit.
func alwaysTracer() *trace.Tracer {
	return trace.New(trace.Config{Mode: trace.ModeAlways})
}

// spanNames collects the set of span names in a trace snapshot.
func spanNames(snap trace.TraceSnapshot) map[string]bool {
	names := make(map[string]bool, len(snap.Spans))
	for _, s := range snap.Spans {
		names[s.Name] = true
	}
	return names
}

// TestCommitTracePropagation threads one trace from a caller's context
// through the whole commit pipeline and asserts every observable output
// carries it: the registry's trace ring (commit + stage spans, indexed by
// seq), the CommitTiming observer, the journal record, the commit stream,
// and the per-pattern match event.
func TestCommitTracePropagation(t *testing.T) {
	seed := int64(17)
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), seed)
	tr := alwaysTracer()
	var observed CommitTiming
	r := New(g,
		WithTracer(tr),
		WithJournal(journal.New()),
		WithMetrics(obs.NewRegistry()),
		WithCommitObserver(func(ct CommitTiming) { observed = ct }))
	defer r.Close()
	if err := r.Register("p", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	sub, err := r.Subscribe("p")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	csub, err := r.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer csub.Cancel()

	root := tr.StartRoot("test.client")
	ctx := trace.NewContext(context.Background(), root.Context())
	ups := generator.Updates(leaderGraph(r), 3, 0, seed+1)
	seq, err := r.ApplyContext(ctx, ups)
	root.End()
	if err != nil {
		t.Fatalf("ApplyContext: %v", err)
	}
	want := root.Context().TraceID.String()

	snap, ok := tr.BySeq(seq)
	if !ok {
		t.Fatalf("no trace retained for seq %d", seq)
	}
	if snap.TraceID != want {
		t.Fatalf("commit trace %s, want the caller's %s", snap.TraceID, want)
	}
	names := spanNames(snap)
	for _, n := range []string{"test.client", "queue.wait", "commit",
		"stage.validate", "stage.repair", "stage.journal", "stage.publish"} {
		if !names[n] {
			t.Fatalf("trace missing span %q (have %v)", n, names)
		}
	}

	if sc, ok := trace.Parse(observed.Trace); !ok || sc.TraceID.String() != want {
		t.Fatalf("CommitTiming.Trace = %q, want traceparent of %s", observed.Trace, want)
	}
	recs, err := r.Replay(seq - 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc, ok := trace.Parse(recs[len(recs)-1].Trace); !ok || sc.TraceID.String() != want {
		t.Fatalf("journal record trace = %q, want trace %s", recs[len(recs)-1].Trace, want)
	}
	cev := <-csub.C
	if sc, ok := trace.Parse(cev.Trace); !ok || sc.TraceID.String() != want {
		t.Fatalf("commit event trace = %q, want trace %s", cev.Trace, want)
	}
	mev := <-sub.C
	if sc, ok := trace.Parse(mev.Trace); !ok || sc.TraceID.String() != want {
		t.Fatalf("match event trace = %q, want trace %s", mev.Trace, want)
	}
}

// TestUntracedApplyStaysUntraced is the default-off contract: a registry
// without a tracer (or a plain Apply) must publish events with no trace
// and retain nothing — the path gpbench measures with sampling off.
func TestUntracedApplyStaysUntraced(t *testing.T) {
	seed := int64(19)
	g := generator.Synthetic(20, 60, generator.DefaultSchema(3), seed)
	r := New(g, WithJournal(journal.New()), WithMetrics(obs.NewRegistry()))
	defer r.Close()
	csub, err := r.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer csub.Cancel()
	seq, err := r.Apply(generator.Updates(leaderGraph(r), 2, 0, seed+1))
	if err != nil {
		t.Fatal(err)
	}
	if ev := <-csub.C; ev.Trace != "" {
		t.Fatalf("untraced commit published trace %q", ev.Trace)
	}
	if _, ok := r.Tracer().BySeq(seq); ok {
		t.Fatal("default tracer retained a trace")
	}
}

// TestReplicatedTraceContinuity is the cross-node half of the tentpole:
// a follower that applies the leader's commit with its traceparent must
// record its replica-side spans under the SAME trace ID, so one lookup
// finds both halves of the commit.
func TestReplicatedTraceContinuity(t *testing.T) {
	seed := int64(23)
	g := generator.Synthetic(25, 80, generator.DefaultSchema(3), seed)
	ltr, ftr := alwaysTracer(), alwaysTracer()
	leader := New(g, WithTracer(ltr), WithJournal(journal.New()), WithMetrics(obs.NewRegistry()))
	defer leader.Close()

	snapG, snapSeq, pats := leader.Export()
	follower, err := NewAt(snapG.Clone(), snapSeq, pats,
		WithTracer(ftr), WithJournal(journal.New()), WithMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	csub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer csub.Cancel()

	root := ltr.StartRoot("test.client")
	ctx := trace.NewContext(context.Background(), root.Context())
	seq, err := leader.ApplyContext(ctx, generator.Updates(leaderGraph(leader), 3, 0, seed+1))
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	want := root.Context().TraceID.String()

	ev := <-csub.C
	if err := follower.ApplyReplicatedTrace(ev.Seq, ev.Updates, ev.Trace); err != nil {
		t.Fatalf("ApplyReplicatedTrace: %v", err)
	}
	snap, ok := ftr.BySeq(seq)
	if !ok {
		t.Fatalf("follower retained no trace for seq %d", seq)
	}
	if snap.TraceID != want {
		t.Fatalf("follower trace %s, want the leader's %s", snap.TraceID, want)
	}
	if names := spanNames(snap); !names["replica.apply"] || !names["stage.publish"] {
		t.Fatalf("follower trace missing replica spans (have %v)", names)
	}
	// An untraced replicated commit must not fabricate a trace.
	if err := follower.ApplyReplicated(seq+1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := ftr.BySeq(seq + 1); ok {
		t.Fatal("untraced replicated commit recorded a trace")
	}
}

// TestCoalescedBatchesBecomeSpanLinks: when several traced Apply calls
// coalesce into one commit, the commit span parents on one caller and
// links the rest, so no caller's trace dangles.
func TestCoalescedBatchesBecomeSpanLinks(t *testing.T) {
	seed := int64(29)
	g := generator.Synthetic(20, 60, generator.DefaultSchema(3), seed)
	tr := alwaysTracer()
	r := New(g, WithTracer(tr), WithJournal(journal.New()), WithMetrics(obs.NewRegistry()))
	defer r.Close()

	// Coalescing needs concurrent Apply calls; drive a few and then check
	// that every caller's trace ID appears either as a commit trace or as
	// a link on some commit span.
	// Generate every batch up front: the generator reads the live graph,
	// which must not happen concurrently with commits.
	const callers = 4
	ids := make([]string, callers)
	batches := make([][]graph.Update, callers)
	for i := range callers {
		batches[i] = generator.Updates(leaderGraph(r), 1, 0, seed+int64(i)+1)
	}
	done := make(chan uint64, callers)
	for i := range callers {
		root := tr.StartRoot("test.caller")
		ids[i] = root.Context().TraceID.String()
		ctx := trace.NewContext(context.Background(), root.Context())
		go func(ctx context.Context, ups []graph.Update, root *trace.Span) {
			seq, err := r.ApplyContext(ctx, ups)
			root.End()
			if err != nil {
				t.Errorf("ApplyContext: %v", err)
			}
			done <- seq
		}(ctx, batches[i], root)
	}
	for range callers {
		<-done
	}

	// Collect every trace ID reachable from the retained commits: own IDs
	// plus linked span contexts.
	covered := make(map[string]bool)
	for _, snap := range tr.Traces(0) {
		covered[snap.TraceID] = true
		for _, sp := range snap.Spans {
			for _, l := range sp.Links {
				if sc, ok := trace.Parse(l); ok {
					covered[sc.TraceID.String()] = true
				}
			}
		}
	}
	for i, id := range ids {
		if !covered[id] {
			t.Fatalf("caller %d trace %s neither owns a commit nor is linked", i, id)
		}
	}
}
