package contq

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gpm/internal/graph"
	"gpm/internal/journal"
)

// This file is the raw-ΔG tail subscription: the commit-level analogue of
// the per-pattern Subscription. A CommitSub receives every committed net
// update batch — not match deltas — in commit order with consecutive
// sequence numbers, which is exactly the stream a follower replica applies
// through its own registry (GET /v1/commits/stream serves it over SSE).

// CommitEvent is one committed net update batch ΔG. Updates is shared
// with the registry's journal — subscribers must not mutate it. At is the
// publish timestamp (zero for backfilled events, which are historical by
// definition). Trace is the W3C traceparent of the commit span that
// produced the batch ("" when unsampled) — the thread a follower's
// ApplyReplicatedTrace continues, so one trace spans the topology.
type CommitEvent struct {
	Seq     uint64
	Updates []graph.Update
	At      time.Time
	Trace   string
}

// CommitSub is one subscriber's view of the commit stream. Every commit
// with sequence greater than Seq arrives on C exactly once, in order, with
// consecutive sequence numbers — including commits whose batch cancelled
// to nothing (Seq still advances, so a follower tracking the stream stays
// seq-aligned with the leader). Events queue in an unbounded mailbox, so
// a slow subscriber never blocks the writer. C closes after Cancel or
// when the registry closes.
type CommitSub struct {
	C <-chan CommitEvent
	// Seq is the sequence the subscription starts after: the first event
	// on C carries Seq+1.
	Seq uint64

	r    *Registry
	done chan struct{}
	out  chan CommitEvent

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []CommitEvent
	closed  bool
	started bool
}

// newCommitSub builds a commit subscription; a paused one collects events
// in its mailbox but does not deliver until start — the window in which a
// FromSeq tail backfills the missed commits ahead of the live feed.
func newCommitSub(r *Registry, seq uint64, paused bool) *CommitSub {
	s := &CommitSub{Seq: seq, r: r, done: make(chan struct{}), out: make(chan CommitEvent)}
	s.C = s.out
	s.cond = sync.NewCond(&s.mu)
	if r.met != nil {
		r.met.csubsActive.Add(1)
	}
	if !paused {
		s.start()
	}
	return s
}

// start launches the delivery pump (idempotent). Starting a subscription
// that was cancelled while paused just closes C.
func (s *CommitSub) start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	if s.closed {
		s.mu.Unlock()
		close(s.out)
		return
	}
	s.mu.Unlock()
	go s.pump()
}

// prepend queues events ahead of everything already in the mailbox; only
// valid before start.
func (s *CommitSub) prepend(evs []CommitEvent) {
	s.mu.Lock()
	if !s.closed && len(evs) > 0 {
		s.queue = append(append(make([]CommitEvent, 0, len(evs)+len(s.queue)), evs...), s.queue...)
	}
	s.mu.Unlock()
}

// push enqueues one event; called by the registry's publisher under the
// commit-subscriber lock. Never blocks beyond the mailbox lock.
func (s *CommitSub) push(ev CommitEvent) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ev)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// pump drains the mailbox to the consumer channel in order, ending (and
// closing the channel) on cancellation.
func (s *CommitSub) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			close(s.out)
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.out <- ev:
		case <-s.done:
			close(s.out)
			return
		}
	}
}

// Cancel detaches the subscription: the registry stops delivering to it,
// queued-but-unread events are discarded, and C closes. Safe to call more
// than once and concurrently with delivery.
func (s *CommitSub) Cancel() {
	s.r.detachCommitSub(s)
	s.close()
	s.start() // closes C when the pump never ran (cancelled while paused)
}

// close shuts the mailbox down without detaching.
func (s *CommitSub) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queue = nil
	close(s.done)
	s.cond.Signal()
	s.mu.Unlock()
	if s.r.met != nil {
		s.r.met.csubsActive.Add(-1)
	}
}

func (r *Registry) detachCommitSub(s *CommitSub) {
	r.cmu.Lock()
	delete(r.csubs, s)
	r.cmu.Unlock()
}

// publishCommit fans one committed batch out to every commit subscriber's
// mailbox. Called inside the writer's critical section, so subscribers
// observe the same total commit order the journal records.
func (r *Registry) publishCommit(ev CommitEvent) {
	r.cmu.Lock()
	for s := range r.csubs {
		s.push(ev)
	}
	r.cmu.Unlock()
}

// closeCommitSubs ends every commit subscription (registry shutdown).
func (r *Registry) closeCommitSubs() {
	r.cmu.Lock()
	subs := r.csubs
	r.csubs = make(map[*CommitSub]struct{})
	r.cmu.Unlock()
	for s := range subs {
		s.close()
		s.start() // closes C when the pump never ran
	}
}

// SubscribeCommits opens a raw-ΔG subscription to the commit stream. By
// default it starts at the current head (live tail only); with FromSeq(n)
// the commits in (n, head] are backfilled from the journal first, so the
// subscriber sees one seq-contiguous stream. Fails with ErrSeqFuture when
// n is ahead of the head, ErrNoJournal when backfill is requested on a
// journal-less registry, and an error wrapping journal.ErrCompacted when
// the journal no longer retains the range — the subscriber must re-sync
// from a snapshot (Export) instead.
func (r *Registry) SubscribeCommits(options ...SubscribeOption) (*CommitSub, error) {
	return r.SubscribeCommitsContext(context.Background(), options...) //gpmvet:ignore legacy non-ctx API: this wrapper is the documented detachment point
}

// SubscribeCommitsContext is SubscribeCommits with cancellation: the
// journal backfill — the potentially slow part — stops and the call fails
// with ctx's error as soon as ctx is done.
func (r *Registry) SubscribeCommitsContext(ctx context.Context, options ...SubscribeOption) (*CommitSub, error) {
	var o subscribeOpts
	for _, opt := range options {
		opt(&o)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.writeMu.Lock()
	if r.closed {
		r.writeMu.Unlock()
		return nil, ErrClosed
	}
	r.mu.RLock()
	head := r.seq
	r.mu.RUnlock()
	from := head
	if o.hasFrom {
		from = o.fromSeq
	}
	if from > head {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("%w: %d > %d", ErrSeqFuture, from, head)
	}
	if from < head {
		if r.journal == nil {
			r.writeMu.Unlock()
			return nil, ErrNoJournal
		}
		// Under writeMu no commit is mid-append, so a journal head behind
		// the registry head is a real stop (failed append): error loudly
		// rather than hand out a silently truncated tail.
		if jhead := r.journal.HeadSeq(); jhead < head {
			r.writeMu.Unlock()
			return nil, fmt.Errorf("contq: journal stopped at seq %d behind head %d: %w",
				jhead, head, journal.ErrCompacted)
		}
	}
	// Attach under writeMu so the mailbox sees every commit > head; the
	// backfill below fills (from, head] ahead of it.
	s := newCommitSub(r, from, from != head)
	r.cmu.Lock()
	r.csubs[s] = struct{}{}
	r.cmu.Unlock()
	r.writeMu.Unlock()
	if from == head {
		return s, nil
	}
	fail := func(err error) (*CommitSub, error) {
		s.Cancel()
		return nil, err
	}
	recs, err := r.journal.Commits(from)
	if err != nil {
		return fail(fmt.Errorf("contq: commit tail from %d: %w", from, err))
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	// Commits that landed after head are already queued in the paused
	// mailbox as live events; backfill must stop exactly at head.
	for len(recs) > 0 && recs[len(recs)-1].Seq > head {
		recs = recs[:len(recs)-1]
	}
	if uint64(len(recs)) != head-from || recs[0].Seq != from+1 || recs[len(recs)-1].Seq != head {
		return fail(fmt.Errorf("contq: journal gap tailing (%d, %d]: %w", from, head, journal.ErrCompacted))
	}
	evs := make([]CommitEvent, 0, len(recs))
	for _, rec := range recs {
		evs = append(evs, CommitEvent{Seq: rec.Seq, Updates: rec.Updates, Trace: rec.Trace})
	}
	s.prepend(evs)
	s.start()
	return s, nil
}
