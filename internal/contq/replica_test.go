package contq

import (
	"errors"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/journal"
)

// TestReplicaLockstep is the replication property the follower relies on:
// a replica built from Export and fed every leader commit through
// ApplyReplicated ends at the same head with identical results for every
// pattern kind.
func TestReplicaLockstep(t *testing.T) {
	seed := int64(41)
	g := generator.Synthetic(40, 120, generator.DefaultSchema(3), seed)
	leader := New(g, WithJournal(journal.New()))
	defer leader.Close()
	for _, k := range []Kind{KindSim, KindBSim, KindIso} {
		if err := leader.Register("p-"+string(k), testPattern(g, k, seed), k); err != nil {
			t.Fatal(err)
		}
	}
	// Some pre-bootstrap history so the snapshot is mid-stream.
	pre := generator.Updates(g, 6, 0, seed+1)
	for _, u := range pre {
		if _, err := leader.Apply([]graph.Update{u}); err != nil {
			t.Fatal(err)
		}
	}

	// Bootstrap the follower from the leader's snapshot.
	snapG, snapSeq, pats := leader.Export()
	follower, err := NewAt(snapG.Clone(), snapSeq, pats)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if got := follower.Seq(); got != snapSeq {
		t.Fatalf("follower head = %d, want snapshot seq %d", got, snapSeq)
	}

	// Tail the leader's commit stream and replay it on the follower.
	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	post := generator.Updates(leaderGraph(leader), 8, 0, seed+2)
	for _, u := range post {
		if _, err := leader.Apply([]graph.Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	head := leader.Seq()
	for follower.Seq() < head {
		ev := <-sub.C
		if err := follower.ApplyReplicated(ev.Seq, ev.Updates); err != nil {
			t.Fatalf("ApplyReplicated(%d): %v", ev.Seq, err)
		}
	}

	if follower.Seq() != head {
		t.Fatalf("follower head = %d, leader head = %d", follower.Seq(), head)
	}
	for _, k := range []Kind{KindSim, KindBSim, KindIso} {
		id := "p-" + string(k)
		lr, ok := leader.Result(id)
		if !ok {
			t.Fatalf("leader lost pattern %s", id)
		}
		fr, ok := follower.Result(id)
		if !ok {
			t.Fatalf("follower missing pattern %s", id)
		}
		if !lr.Equal(fr) {
			t.Fatalf("kind %s: follower result diverged from leader at seq %d", k, head)
		}
	}
}

// leaderGraph peeks at the canonical graph for update generation only.
func leaderGraph(r *Registry) *graph.Graph {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.g
}

// TestApplyReplicatedSeqGap: a commit that does not directly follow the
// head is refused with ErrReplicaGap and changes nothing.
func TestApplyReplicatedSeqGap(t *testing.T) {
	seed := int64(42)
	g := generator.Synthetic(20, 50, generator.DefaultSchema(2), seed)
	ups := generator.Updates(g, 3, 0, seed)
	reg := New(g)
	defer reg.Close()
	if err := reg.ApplyReplicated(2, ups[:1]); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("seq 2 against head 0: got %v, want ErrReplicaGap", err)
	}
	if err := reg.ApplyReplicated(1, ups[:1]); err != nil {
		t.Fatal(err)
	}
	if err := reg.ApplyReplicated(1, ups[1:2]); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("replayed seq 1: got %v, want ErrReplicaGap", err)
	}
	if got := reg.Seq(); got != 1 {
		t.Fatalf("head = %d after rejected commits, want 1", got)
	}
}

// TestApplyReplicatedEmptyCommit: leader commits that cancelled to nothing
// still advance the follower's sequence, keeping the streams aligned.
func TestApplyReplicatedEmptyCommit(t *testing.T) {
	g := generator.Synthetic(10, 20, generator.DefaultSchema(2), 7)
	reg := New(g)
	defer reg.Close()
	if err := reg.ApplyReplicated(1, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Seq(); got != 1 {
		t.Fatalf("head = %d after empty replicated commit, want 1", got)
	}
}

// TestSubscribeCommitsBackfill: a FromSeq commit tail stitches the journal
// backfill and the live feed into one seq-contiguous stream.
func TestSubscribeCommitsBackfill(t *testing.T) {
	seed := int64(43)
	g := generator.Synthetic(30, 80, generator.DefaultSchema(3), seed)
	reg := New(g, WithJournal(journal.New()))
	defer reg.Close()
	ups := generator.Updates(g, 10, 0, seed+5)
	for _, u := range ups[:6] {
		if _, err := reg.Apply([]graph.Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := reg.SubscribeCommits(FromSeq(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	for _, u := range ups[6:] {
		if _, err := reg.Apply([]graph.Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	want := uint64(3)
	for want <= reg.Seq() {
		ev := <-sub.C
		if ev.Seq != want {
			t.Fatalf("commit stream seq = %d, want %d (must be contiguous)", ev.Seq, want)
		}
		want++
	}
}

// TestSubscribeCommitsErrors: future seqs, journal-less backfills and
// compacted ranges fail with their typed errors.
func TestSubscribeCommitsErrors(t *testing.T) {
	seed := int64(44)
	g := generator.Synthetic(20, 50, generator.DefaultSchema(2), seed)
	ups := generator.Updates(g, 6, 0, seed)

	bare := New(g.Clone())
	defer bare.Close()
	if _, err := bare.SubscribeCommits(FromSeq(5)); !errors.Is(err, ErrSeqFuture) {
		t.Fatalf("future seq: got %v, want ErrSeqFuture", err)
	}
	if _, err := bare.Apply(ups[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.SubscribeCommits(FromSeq(0)); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("journal-less backfill: got %v, want ErrNoJournal", err)
	}

	ringed := New(g.Clone(), WithJournal(journal.New(journal.WithRing(2))))
	defer ringed.Close()
	for _, u := range ups {
		if _, err := ringed.Apply([]graph.Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ringed.SubscribeCommits(FromSeq(1)); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("compacted backfill: got %v, want journal.ErrCompacted", err)
	}
}

// TestCommitSubCloseOnRegistryClose: closing the registry ends every
// commit subscription by closing its channel.
func TestCommitSubCloseOnRegistryClose(t *testing.T) {
	g := generator.Synthetic(10, 20, generator.DefaultSchema(2), 9)
	reg := New(g)
	sub, err := reg.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("commit subscription channel must close when the registry closes")
	}
}
