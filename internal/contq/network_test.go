package contq

import (
	"math/rand"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/journal"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// These tests pin the shared evaluation network's registry-level contract:
// a registry routing sim/bsim patterns through internal/gdn must be
// observationally identical to one built WithoutNetwork — same Result,
// same per-commit ΔM on subscriptions, same FromSeq backfill — while its
// sharing counters prove the marginal cost of overlapping patterns drops.

// renumberPattern relabels p by the permutation m (m[orig] = new id).
func renumberPattern(t *testing.T, p *pattern.Pattern, m []int) *pattern.Pattern {
	t.Helper()
	inv := make([]int, len(m))
	for u, c := range m {
		inv[c] = u
	}
	q := pattern.New()
	for c := range inv {
		q.AddNode(p.Pred(inv[c]))
	}
	for _, e := range p.Edges() {
		if err := q.AddColoredEdge(m[e.From], m[e.To], e.Bound, e.Color); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

func sameDelta(a, b rel.Delta) bool {
	a.Sort()
	b.Sort()
	if len(a.Removed) != len(b.Removed) || len(a.Added) != len(b.Added) {
		return false
	}
	for i := range a.Removed {
		if a.Removed[i] != b.Removed[i] {
			return false
		}
	}
	for i := range a.Added {
		if a.Added[i] != b.Added[i] {
			return false
		}
	}
	return true
}

// TestNetworkRegistryEquivalence drives a networked registry and a
// WithoutNetwork twin with the same patterns and the same update stream,
// asserting every subscriber event and every Result snapshot agree.
func TestNetworkRegistryEquivalence(t *testing.T) {
	seed := int64(31)
	g := generator.RandomGraph(50, 120, 3, seed)
	netReg := New(g.Clone())
	defer netReg.Close()
	privReg := New(g.Clone(), WithoutNetwork())
	defer privReg.Close()
	if netReg.net == nil || privReg.net != nil {
		t.Fatalf("network default wrong: net=%v priv=%v", netReg.net, privReg.net)
	}

	sim := generator.RandomPattern(3, 3, 3, 1, seed+1)
	bsim := generator.RandomPattern(3, 3, 3, 3, seed+2)
	pats := map[string]struct {
		p    *pattern.Pattern
		kind Kind
	}{
		"sim":       {sim, KindSim},
		"sim-twin":  {renumberPattern(t, sim, []int{2, 0, 1}), KindSim},
		"bsim":      {bsim, KindBSim},
		"bsim-twin": {renumberPattern(t, bsim, []int{1, 2, 0}), KindBSim},
		"auto":      {generator.RandomPattern(2, 2, 3, 1, seed+3), KindAuto},
		"iso":       {generator.RandomPattern(2, 1, 3, 1, seed+4), KindIso},
	}
	subs := make(map[string][2]*Subscription)
	for id, pk := range pats {
		for i, reg := range []*Registry{netReg, privReg} {
			if err := reg.Register(id, pk.p.Clone(), pk.kind); err != nil {
				t.Fatalf("%s on registry %d: %v", id, i, err)
			}
			s, err := reg.Subscribe(id)
			if err != nil {
				t.Fatal(err)
			}
			pair := subs[id]
			pair[i] = s
			subs[id] = pair
		}
		if !subs[id][0].Snapshot.Equal(subs[id][1].Snapshot) {
			t.Fatalf("%s: initial snapshots differ", id)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 30; round++ {
		ups := generator.Updates(netReg.g, 1+rng.Intn(4), rng.Intn(3), seed+int64(100+round))
		s1, err := netReg.Apply(ups)
		if err != nil {
			t.Fatalf("round %d net apply: %v", round, err)
		}
		s2, err := privReg.Apply(ups)
		if err != nil {
			t.Fatalf("round %d private apply: %v", round, err)
		}
		if s1 != s2 {
			t.Fatalf("round %d: seqs diverged %d vs %d", round, s1, s2)
		}
		for id, pair := range subs {
			evN, evP := <-pair[0].C, <-pair[1].C
			if evN.Seq != s1 || evP.Seq != s1 {
				t.Fatalf("round %d %s: event seqs %d/%d want %d", round, id, evN.Seq, evP.Seq, s1)
			}
			if !sameDelta(evN.Delta, evP.Delta) {
				t.Fatalf("round %d %s: delta mismatch\n net  %+v\n priv %+v", round, id, evN.Delta, evP.Delta)
			}
			rN, _ := netReg.Result(id)
			rP, _ := privReg.Result(id)
			if !rN.Equal(rP) {
				t.Fatalf("round %d %s: results diverged", round, id)
			}
		}
	}

	// The networked registry must expose sharing evidence; the private one
	// must not expose a network block at all.
	ns := netReg.Stats().Network
	if ns == nil {
		t.Fatal("networked registry has no network stats")
	}
	if ns.Patterns != 5 { // iso stays outside the network
		t.Fatalf("want 5 network patterns, got %+v", ns)
	}
	if ns.RegisterReused < 2 || ns.JoinNodes > 3 {
		t.Fatalf("renumbered twins did not share joins: %+v", ns)
	}
	if ns.RepairsSaved == 0 {
		t.Fatalf("no repairs saved over 30 commits: %+v", ns)
	}
	if privReg.Stats().Network != nil {
		t.Fatal("WithoutNetwork registry exposes network stats")
	}
}

// TestNetworkFromSeqBackfillEquivalence: a FromSeq resume backfills deltas
// through a private replay engine, so its events must reproduce exactly
// what the network-backed live feed delivered for the same commits.
func TestNetworkFromSeqBackfillEquivalence(t *testing.T) {
	seed := int64(47)
	g := generator.RandomGraph(40, 100, 3, seed)
	reg := New(g, WithJournal(journal.New()))
	defer reg.Close()

	sim := generator.RandomPattern(3, 3, 3, 1, seed+1)
	bsim := generator.RandomPattern(3, 2, 3, 3, seed+2)
	for id, pk := range map[string]struct {
		p    *pattern.Pattern
		kind Kind
	}{"sim": {sim, KindSim}, "sim-twin": {renumberPattern(t, sim, []int{1, 2, 0}), KindSim}, "bsim": {bsim, KindBSim}} {
		if err := reg.Register(id, pk.p, pk.kind); err != nil {
			t.Fatal(err)
		}
	}
	live := make(map[string]*Subscription)
	for id := range map[string]bool{"sim": true, "sim-twin": true, "bsim": true} {
		s, err := reg.Subscribe(id)
		if err != nil {
			t.Fatal(err)
		}
		live[id] = s
	}

	const commits = 12
	liveEvents := make(map[string][]Event)
	for i := 0; i < commits; i++ {
		ups := generator.Updates(reg.g, 2, 1, seed+int64(10+i))
		if _, err := reg.Apply(ups); err != nil {
			t.Fatal(err)
		}
		for id, s := range live {
			liveEvents[id] = append(liveEvents[id], <-s.C)
		}
	}

	for id, evs := range liveEvents {
		from := uint64(commits / 3)
		s, err := reg.Subscribe(id, FromSeq(from))
		if err != nil {
			t.Fatalf("%s FromSeq(%d): %v", id, from, err)
		}
		for _, want := range evs[from:] {
			got := <-s.C
			if got.Seq != want.Seq || !sameDelta(got.Delta, want.Delta) {
				t.Fatalf("%s: backfilled seq %d diverged from live feed\n got  %+v\n want %+v",
					id, want.Seq, got, want)
			}
		}
		s.Cancel()
	}
}

// TestNetworkSublinearity is the headline sharing property: registering
// 100 structurally-overlapping patterns collapses to a handful of shared
// join nodes, and each commit repairs those joins once instead of 100
// private engines.
func TestNetworkSublinearity(t *testing.T) {
	seed := int64(53)
	g := generator.RandomGraph(60, 150, 3, seed)
	reg := New(g)
	defer reg.Close()

	// 5 structural families × 20 renumberings each = 100 patterns.
	const families, perFamily = 5, 20
	rng := rand.New(rand.NewSource(seed))
	ids := make([]string, 0, families*perFamily)
	for f := 0; f < families; f++ {
		base := generator.RandomPattern(4, 4, 3, 1, seed+int64(f))
		for k := 0; k < perFamily; k++ {
			perm := rng.Perm(base.NumNodes())
			id := string(rune('a'+f)) + "-" + string(rune('0'+k/10)) + string(rune('0'+k%10))
			if err := reg.Register(id, renumberPattern(t, base, perm), KindSim); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	ns := reg.Stats().Network
	if ns == nil || ns.Patterns != families*perFamily {
		t.Fatalf("want %d network patterns, got %+v", families*perFamily, ns)
	}
	if ns.JoinNodes > families {
		t.Fatalf("100 overlapping patterns need ≤%d joins, got %+v", families, ns)
	}
	if ns.RegisterReused < families*(perFamily-1) {
		t.Fatalf("want ≥%d reused registrations, got %+v", families*(perFamily-1), ns)
	}

	const commits = 10
	for i := 0; i < commits; i++ {
		ups := generator.Updates(reg.g, 3, 1, seed+int64(100+i))
		if _, err := reg.Apply(ups); err != nil {
			t.Fatal(err)
		}
	}
	ns = reg.Stats().Network
	// Each commit repairs at most one join per family instead of 100
	// engines, so ≥95 of every 100 per-pattern repairs are saved.
	if ns.JoinRepairs > int64(commits*families) {
		t.Fatalf("joins repaired more often than once per family per commit: %+v", ns)
	}
	minSaved := int64(commits * (families*perFamily - families))
	if ns.RepairsSaved < minSaved {
		t.Fatalf("want ≥%d repairs saved over %d commits, got %+v", minSaved, commits, ns)
	}

	// Unregistering everything tears the shared state down.
	for _, id := range ids {
		if !reg.Unregister(id) {
			t.Fatalf("unregister %s failed", id)
		}
	}
	ns = reg.Stats().Network
	if ns.Patterns != 0 || ns.JoinNodes != 0 || ns.EdgeNodes != 0 || ns.PredNodes != 0 {
		t.Fatalf("network not empty after unregistering all: %+v", ns)
	}
}
