package contq

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/rel"
)

// applyInBatches commits ups in fixed-size batches, returning the number
// of commits (Apply is serial here, so commits == batches).
func applyInBatches(t *testing.T, reg *Registry, ups []graph.Update, size int) int {
	t.Helper()
	n := 0
	for i := 0; i < len(ups); i += size {
		end := i + size
		if end > len(ups) {
			end = len(ups)
		}
		if _, err := reg.Apply(ups[i:end]); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

// drainTo reads events until seq reaches head, asserting consecutive
// sequence numbers, and applies every delta to acc.
func drainTo(t *testing.T, sub *Subscription, acc rel.Relation, from, head uint64) {
	t.Helper()
	last := from
	for last < head {
		ev, ok := <-sub.C
		if !ok {
			t.Fatalf("stream closed at seq %d, want %d", last, head)
		}
		if ev.Seq != last+1 {
			t.Fatalf("seq %d after %d: gap or duplicate", ev.Seq, last)
		}
		last = ev.Seq
		ev.Delta.Apply(acc)
	}
}

// TestResumeFromSeqEquivalence is the replay-equivalence acceptance
// property: for every engine kind, the relation captured at seq s plus
// the deltas backfilled by Subscribe(FromSeq(s)) — and the live deltas
// spliced after them — equals Result() at the head.
func TestResumeFromSeqEquivalence(t *testing.T) {
	for _, kind := range []Kind{KindSim, KindBSim, KindIso} {
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				g := generator.Synthetic(80, 320, generator.DefaultSchema(3), seed)
				ups := generator.Updates(g, 40, 40, seed+20)
				reg := New(g, WithJournal(journal.New()))
				p := testPattern(g, kind, seed)
				if err := reg.Register("q", p, kind); err != nil {
					t.Fatal(err)
				}

				// Commit a prefix, capture the relation at s.
				pre := ups[:32]
				applyInBatches(t, reg, pre, 4)
				s := reg.Seq()
				snap, _ := reg.Result("q")
				acc := snap.Clone()

				// Miss a middle stretch of commits.
				mid := ups[32:64]
				applyInBatches(t, reg, mid, 4)
				head := reg.Seq()

				sub, err := reg.Subscribe("q", FromSeq(s))
				if err != nil {
					t.Fatalf("%s seed %d: resume: %v", kind, seed, err)
				}
				if sub.Snapshot != nil || sub.Seq != s {
					t.Fatalf("resumed subscription has snapshot %v seq %d", sub.Snapshot, sub.Seq)
				}
				// Backfilled deltas bring acc to head...
				drainTo(t, sub, acc, s, head)
				want, _ := reg.Result("q")
				if !acc.Equal(want) {
					t.Fatalf("%s seed %d: backfilled deltas diverge from Result()", kind, seed)
				}

				// ...and the live feed splices in seamlessly after them.
				applyInBatches(t, reg, ups[64:], 4)
				newHead := reg.Seq()
				drainTo(t, sub, acc, head, newHead)
				want, _ = reg.Result("q")
				if !acc.Equal(want) {
					t.Fatalf("%s seed %d: spliced live deltas diverge from Result()", kind, seed)
				}
				sub.Cancel()
				reg.Close()
			}
		})
	}
}

// TestResumeFromHeadSkipsBackfill covers FromSeq(head): a live
// subscription without snapshot or backfill.
func TestResumeFromHeadSkipsBackfill(t *testing.T) {
	g := generator.Synthetic(40, 160, generator.DefaultSchema(3), 1)
	ups := generator.Updates(g, 20, 20, 9)
	reg := New(g, WithJournal(journal.New()))
	if err := reg.Register("q", testPattern(g, KindSim, 1), KindSim); err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, reg, ups[:10], 5)
	head := reg.Seq()
	res, _ := reg.Result("q")
	acc := res.Clone()
	sub, err := reg.Subscribe("q", FromSeq(head))
	if err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, reg, ups[10:], 5)
	drainTo(t, sub, acc, head, reg.Seq())
	want, _ := reg.Result("q")
	if !acc.Equal(want) {
		t.Fatal("FromSeq(head) subscription diverges")
	}
	sub.Cancel()
	reg.Close()
}

// TestResumeErrors maps the failure modes: no journal, future seq,
// compacted history, and a seq predating the pattern's registration.
func TestResumeErrors(t *testing.T) {
	g := generator.Synthetic(40, 160, generator.DefaultSchema(3), 2)
	ups := generator.Updates(g, 30, 30, 3)

	bare := New(g.Clone())
	if err := bare.Register("q", testPattern(g, KindSim, 2), KindSim); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Apply(ups[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Subscribe("q", FromSeq(0)); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("no journal: %v", err)
	}
	if _, err := bare.Subscribe("q", FromSeq(99)); !errors.Is(err, ErrSeqFuture) {
		t.Fatalf("future seq: %v", err)
	}
	if _, err := bare.Replay(0); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("Replay without journal: %v", err)
	}
	bare.Close()

	// A 2-commit ring: resumes further back are compacted.
	reg := New(g, WithJournal(journal.New(journal.WithRing(2))))
	if err := reg.Register("q", testPattern(g, KindSim, 2), KindSim); err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, reg, ups, 5)
	if _, err := reg.Subscribe("q", FromSeq(1)); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("compacted resume: %v", err)
	}
	if _, err := reg.Replay(1); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("compacted Replay: %v", err)
	}

	// A pattern registered at seq k cannot resume from before k.
	if err := reg.Register("late", testPattern(g, KindSim, 3), KindSim); err != nil {
		t.Fatal(err)
	}
	late := reg.Seq()
	if late == 0 {
		t.Fatal("want a nonzero registration seq")
	}
	if _, err := reg.Subscribe("late", FromSeq(late-1)); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("pre-registration resume: %v", err)
	}
	reg.Close()
}

// TestReplayRawCommits checks Registry.Replay returns the journaled net
// batches, and that re-applying them to the starting graph reproduces
// the canonical graph (the ΔG-tailing contract of GET /commits).
func TestReplayRawCommits(t *testing.T) {
	g := generator.Synthetic(50, 200, generator.DefaultSchema(3), 4)
	start := g.Clone()
	ups := generator.Updates(g, 25, 25, 6)
	reg := New(g, WithJournal(journal.New()))
	n := applyInBatches(t, reg, ups, 10)
	recs, err := reg.Replay(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("%d commits, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("commit %d has seq %d", i, rec.Seq)
		}
		if _, err := start.ApplyAll(rec.Updates); err != nil {
			t.Fatal(err)
		}
	}
	if start.NumEdges() != g.NumEdges() {
		t.Fatalf("replayed graph has %d edges, canonical %d", start.NumEdges(), g.NumEdges())
	}
	g.Edges(func(u, v graph.NodeID) bool {
		if !start.HasEdge(u, v) {
			t.Fatalf("replayed graph missing edge (%d,%d)", u, v)
		}
		return true
	})
	reg.Close()
}

// TestRecoverFromJournal is the crash-recovery acceptance path: a
// journaled registry with all three engine kinds is closed; Recover on a
// reopened journal reproduces graph, seq and every pattern's result, and
// both new commits and FromSeq resumes spanning the restart work.
func TestRecoverFromJournal(t *testing.T) {
	dir := t.TempDir()
	seed := int64(5)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	ups := generator.Updates(g, 40, 40, seed+30)
	pats := map[string]Kind{"s": KindSim, "b": KindBSim, "i": KindIso}
	built := map[string]*rel.Relation{}

	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := New(g, WithJournal(j))
	for id, kind := range pats {
		if err := reg.Register(id, testPattern(g, kind, seed), kind); err != nil {
			t.Fatal(err)
		}
	}
	applyInBatches(t, reg, ups[:32], 4)
	preSeq := reg.Seq()
	resumeAt := uint64(4) // a subscriber's last-seen seq, resumed below after the restart
	preNodes, preEdges, _ := reg.GraphInfo()
	for id := range pats {
		res, _ := reg.Result(id)
		c := res.Clone()
		built[id] = &c
	}
	reg.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2, err := Recover(j2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Seq(); got != preSeq {
		t.Fatalf("recovered seq %d, want %d", got, preSeq)
	}
	nodes, edges, _ := reg2.GraphInfo()
	if nodes != preNodes || edges != preEdges {
		t.Fatalf("recovered graph %d/%d, want %d/%d", nodes, edges, preNodes, preEdges)
	}
	infos := reg2.Patterns()
	if len(infos) != len(pats) {
		t.Fatalf("recovered %d patterns, want %d", len(infos), len(pats))
	}
	for id := range pats {
		got, ok := reg2.Result(id)
		if !ok {
			t.Fatalf("pattern %q missing after recovery", id)
		}
		if !got.Equal(*built[id]) {
			t.Fatalf("pattern %q result diverges after recovery", id)
		}
	}

	// A subscriber that last saw seq resumeAt before the restart resumes
	// against the recovered registry and converges on the live result.
	{
		// Rebuild its relation at resumeAt from the journaled history.
		recs, err := reg2.Replay(0)
		if err != nil {
			t.Fatal(err)
		}
		g0 := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
		m, err := newMatcher(KindSim, testPattern(g0, KindSim, seed), g0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs[:resumeAt] {
			m.apply(rec.Updates)
			if _, err := g0.ApplyAll(rec.Updates); err != nil {
				t.Fatal(err)
			}
		}
		acc := m.result().Clone()
		sub, err := reg2.Subscribe("s", FromSeq(resumeAt))
		if err != nil {
			t.Fatal(err)
		}
		drainTo(t, sub, acc, resumeAt, reg2.Seq())
		want, _ := reg2.Result("s")
		if !acc.Equal(want) {
			t.Fatal("cross-restart resume diverges from recovered Result()")
		}
		sub.Cancel()
	}

	// The recovered registry accepts new commits from the recovered head.
	if _, err := reg2.Apply(ups[32:36]); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Seq(); got != preSeq+1 {
		t.Fatalf("post-recovery seq %d, want %d", got, preSeq+1)
	}
	reg2.Close()
}

// TestRecoverAfterSnapshotAndUnregister exercises recovery across a
// checkpoint boundary: patterns registered before the snapshot, one
// unregistered after it, commits on both sides.
func TestRecoverAfterSnapshotAndUnregister(t *testing.T) {
	dir := t.TempDir()
	seed := int64(7)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	ups := generator.Updates(g, 40, 40, seed+40)

	j, err := journal.Open(dir, journal.WithSnapshotEvery(4), journal.WithRing(4))
	if err != nil {
		t.Fatal(err)
	}
	reg := New(g, WithJournal(j))
	if err := reg.Register("keep", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("drop", testPattern(g, KindBSim, seed), KindBSim); err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, reg, ups[:24], 4) // crosses the snapshot-every-4 boundary
	if !reg.Unregister("drop") {
		t.Fatal("unregister failed")
	}
	applyInBatches(t, reg, ups[24:], 4)
	preSeq := reg.Seq()
	want, _ := reg.Result("keep")
	wantClone := want.Clone()
	st := reg.Stats()
	if st.Journal == nil || st.Journal.SnapshotSeq == 0 {
		t.Fatalf("expected an automatic snapshot, stats %+v", st.Journal)
	}
	reg.Close()
	j.Close()

	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2, err := Recover(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if reg2.Seq() != preSeq {
		t.Fatalf("recovered seq %d, want %d", reg2.Seq(), preSeq)
	}
	if _, ok := reg2.Result("drop"); ok {
		t.Fatal("unregistered pattern resurrected by recovery")
	}
	got, ok := reg2.Result("keep")
	if !ok || !got.Equal(wantClone) {
		t.Fatal("surviving pattern's result diverges after snapshot recovery")
	}
	// The snapshot preserves the original registration seq, so resumes
	// into retained pre-snapshot history are not rejected after restart.
	reg2.mu.RLock()
	regSeq := reg2.pats["keep"].regSeq
	reg2.mu.RUnlock()
	if regSeq != 0 {
		t.Fatalf("recovered regSeq %d, want the original 0", regSeq)
	}
}

// TestReplayCommitContainsEnginePanic: recovery replays may carry the
// very batch that made an engine panic before the crash; replayCommit
// must evict that pattern and keep going — same semantics as the live
// commit path — instead of turning recovery into a crash loop.
func TestReplayCommitContainsEnginePanic(t *testing.T) {
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), 1)
	reg := New(g)
	if err := reg.Register("good", testPattern(g, KindSim, 1), KindSim); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	reg.pats["bad"] = &registration{id: "bad", kind: KindSim, m: panicMatcher{}, subs: make(map[*Subscription]struct{})}
	reg.mu.Unlock()

	ups := generator.Updates(g, 3, 0, 2)
	if err := reg.replayCommit(1, ups); err != nil {
		t.Fatal(err)
	}
	if reg.Seq() != 1 {
		t.Fatalf("replayed seq %d, want 1", reg.Seq())
	}
	if _, ok := reg.Result("bad"); ok {
		t.Fatal("panicking pattern must be evicted during replay")
	}
	if _, ok := reg.Result("good"); !ok {
		t.Fatal("surviving pattern lost during replay")
	}
	reg.Close()
}

// TestRecoverTornJournalTail is the contq half of the crash-recovery
// satellite: recovery over a journal whose final record was torn stops at
// the last valid seq and accepts new commits from there.
func TestRecoverTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	seed := int64(9)
	g := generator.Synthetic(50, 200, generator.DefaultSchema(3), seed)
	ups := generator.Updates(g, 30, 30, seed+50)

	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := New(g, WithJournal(j))
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, reg, ups, 5)
	head := reg.Seq()
	reg.Close()
	j.Close()

	// Tear the final record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.gpwal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	var last string
	var lastSize int64
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil && fi.Size() > 0 {
			last, lastSize = s, fi.Size()
		}
	}
	if err := os.Truncate(last, lastSize-2); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2, err := Recover(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if got := reg2.Seq(); got != head-1 {
		t.Fatalf("recovered seq %d, want %d (head %d minus the torn commit)", got, head-1, head)
	}
	// The recovered state equals an independent replay of the surviving
	// prefix, and the registry commits new batches from there.
	g0 := generator.Synthetic(50, 200, generator.DefaultSchema(3), seed)
	m, err := newMatcher(KindSim, testPattern(g0, KindSim, seed), g0, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := reg2.Replay(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		m.apply(rec.Updates)
		if _, err := g0.ApplyAll(rec.Updates); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := reg2.Result("q")
	if !got.Equal(m.result()) {
		t.Fatal("recovered result diverges from independent replay")
	}
	if _, err := reg2.Apply(ups[:3]); err != nil {
		t.Fatal(err)
	}
	if reg2.Seq() != head {
		t.Fatalf("post-recovery commit got seq %d, want %d", reg2.Seq(), head)
	}
}
