package contq

import (
	"strings"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/obs"
)

// TestCommitTelemetry drives real commits through an isolated obs registry
// and checks the whole observability surface at once: the commit observer
// fires with a consistent per-stage breakdown, Stats().Timings reflects the
// same instruments, the subscription gauges track attach/detach, and the
// Prometheus exposition carries the stage series.
func TestCommitTelemetry(t *testing.T) {
	seed := int64(3)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	ups := generator.Updates(g, 20, 20, seed+9)

	mreg := obs.NewRegistry()
	var timings []CommitTiming
	reg := New(g, WithMetrics(mreg), WithCommitObserver(func(ct CommitTiming) {
		timings = append(timings, ct)
	}))
	defer reg.Close()
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	sub, err := reg.Subscribe("q")
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Stats().Timings.SubscriptionsActive; got != 1 {
		t.Fatalf("subscriptions_active = %d after Subscribe, want 1", got)
	}

	const commits = 5
	for i := 0; i < commits; i++ {
		if _, err := reg.Apply(ups[i*4 : (i+1)*4]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < commits; i++ {
		<-sub.C
	}

	// The observer saw every commit, in order, with a sane breakdown.
	if len(timings) != commits {
		t.Fatalf("observer fired %d times, want %d", len(timings), commits)
	}
	for i, ct := range timings {
		if ct.Seq != uint64(i+1) {
			t.Fatalf("observer timing %d has seq %d, want %d", i, ct.Seq, i+1)
		}
		if ct.Total <= 0 {
			t.Fatalf("commit %d: non-positive total %v", ct.Seq, ct.Total)
		}
		if ct.Validate <= 0 {
			t.Fatalf("commit %d: validate stage not timed", ct.Seq)
		}
		if ct.Patterns != 1 || ct.SlowestPattern != "q" {
			t.Fatalf("commit %d: patterns=%d slowest=%q, want 1/%q", ct.Seq, ct.Patterns, ct.SlowestPattern, "q")
		}
		if sum := ct.Validate + ct.Network + ct.Repair + ct.Journal + ct.Publish; sum > ct.Total {
			t.Fatalf("commit %d: stages sum %v exceeds total %v", ct.Seq, sum, ct.Total)
		}
	}

	ts := reg.Stats().Timings
	if ts == nil {
		t.Fatal("Stats().Timings is nil")
	}
	if ts.TotalMS.Count != commits {
		t.Fatalf("total histogram count = %d, want %d", ts.TotalMS.Count, commits)
	}
	if ts.ValidateMS.Count != commits || ts.RepairMS.Count != commits || ts.PublishMS.Count != commits {
		t.Fatalf("stage counts = validate %d repair %d publish %d, want all %d",
			ts.ValidateMS.Count, ts.RepairMS.Count, ts.PublishMS.Count, commits)
	}
	if ts.QueueWaitMS.Count != commits || ts.DrainBatches.Count != commits {
		t.Fatalf("queue telemetry counts = wait %d drain %d, want %d", ts.QueueWaitMS.Count, ts.DrainBatches.Count, commits)
	}
	if got := ts.RepairByKindMS["sim"].Count; got != commits {
		t.Fatalf("repair_by_kind[sim] count = %d, want %d", got, commits)
	}
	if ts.TotalMS.Sum <= 0 || ts.TotalMS.Max <= 0 {
		t.Fatalf("total snapshot sum/max not positive: %+v", ts.TotalMS)
	}

	// CommitStageSums reads the same registry — the gpbench contract.
	sums := CommitStageSums(mreg)
	if sums["total"] <= 0 || sums["validate"] <= 0 {
		t.Fatalf("CommitStageSums missing stages: %v", sums)
	}

	// The exposition carries the stage series with the stage label.
	var b strings.Builder
	if err := mreg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gpm_commit_stage_ms_count{stage="validate"} 5`,
		`gpm_commit_ms_count 5`,
		`gpm_commits_total 5`,
		`gpm_subscriptions_active 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}

	sub.Cancel()
	if got := reg.Stats().Timings.SubscriptionsActive; got != 0 {
		t.Fatalf("subscriptions_active = %d after Cancel, want 0", got)
	}
	if hw := ts.MailboxHighWater; hw < 1 {
		t.Fatalf("mailbox high-water = %d, want >= 1", hw)
	}
}

// TestStatsTimingsIsolated ensures WithMetrics keeps registries from
// cross-talking: a second registry on its own obs.Registry starts at zero.
func TestStatsTimingsIsolated(t *testing.T) {
	seed := int64(4)
	g := generator.Synthetic(30, 90, generator.DefaultSchema(2), seed)
	ups := generator.Updates(g, 4, 4, seed)

	a := New(g.Clone(), WithMetrics(obs.NewRegistry()))
	defer a.Close()
	if _, err := a.Apply(ups); err != nil {
		t.Fatal(err)
	}
	b := New(g.Clone(), WithMetrics(obs.NewRegistry()))
	defer b.Close()
	if got := b.Stats().Timings.TotalMS.Count; got != 0 {
		t.Fatalf("fresh registry shows %d commits in its timings", got)
	}
	if got := a.Stats().Timings.TotalMS.Count; got != 1 {
		t.Fatalf("first registry timings count = %d, want 1", got)
	}
}
