package contq

import (
	"fmt"
	"sync"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// testPattern builds a generator pattern suited to a kind: normal for
// sim/iso, bounded for bsim.
func testPattern(g *graph.Graph, kind Kind, seed int64) *pattern.Pattern {
	k := 1
	if kind == KindBSim {
		k = 2
	}
	nodes, edges := 3, 3
	if kind == KindIso {
		nodes, edges = 3, 2 // keep the embedding search cheap
	}
	return generator.EmbeddedPattern(g, generator.PatternParams{Nodes: nodes, Edges: edges, Preds: 1, K: k}, seed)
}

// TestSubscriberDeltaEquivalence is the acceptance property: for random
// update sequences on generator graphs, the subscriber's accumulated
// deltas reproduce Result() exactly, for all three engine kinds.
func TestSubscriberDeltaEquivalence(t *testing.T) {
	for _, kind := range []Kind{KindSim, KindBSim, KindIso} {
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				g := generator.Synthetic(80, 320, generator.DefaultSchema(3), seed)
				ups := generator.Updates(g, 40, 40, seed+50)
				reg := New(g)
				p := testPattern(g, kind, seed)
				if err := reg.Register("q", p, kind); err != nil {
					t.Fatal(err)
				}
				sub, err := reg.Subscribe("q")
				if err != nil {
					t.Fatal(err)
				}
				acc := sub.Snapshot.Clone()
				nBatches := 0
				for i := 0; i < len(ups); i += 8 {
					end := i + 8
					if end > len(ups) {
						end = len(ups)
					}
					if _, err := reg.Apply(ups[i:end]); err != nil {
						t.Fatal(err)
					}
					nBatches++
				}
				lastSeq := sub.Seq
				for i := 0; i < nBatches; i++ {
					ev := <-sub.C
					if ev.Seq != lastSeq+1 {
						t.Fatalf("%s seed %d: commit order broken: got seq %d after %d", kind, seed, ev.Seq, lastSeq)
					}
					lastSeq = ev.Seq
					ev.Delta.Apply(acc)
				}
				want, ok := reg.Result("q")
				if !ok {
					t.Fatal("pattern vanished")
				}
				if !acc.Equal(want) {
					t.Fatalf("%s seed %d: accumulated deltas diverge from Result()", kind, seed)
				}
				sub.Cancel()
				reg.Close()
			}
		})
	}
}

// TestRegistryFanOutMatchesSoloEngines registers all three kinds at once
// and checks each pattern's registry result equals a standalone engine fed
// the same stream — the fan-out must not cross-contaminate replicas.
func TestRegistryFanOutMatchesSoloEngines(t *testing.T) {
	seed := int64(2)
	g := generator.Synthetic(80, 320, generator.DefaultSchema(3), seed)
	solo := g.Clone()
	ups := generator.Updates(g, 30, 30, seed+60)

	reg := New(g, WithWorkers(4))
	pats := map[string]Kind{"sim": KindSim, "bsim": KindBSim, "iso": KindIso}
	built := map[string]*pattern.Pattern{}
	for id, kind := range pats {
		p := testPattern(solo, kind, seed)
		built[id] = p
		if err := reg.Register(id, p, kind); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Apply(ups); err != nil {
		t.Fatal(err)
	}

	for id, kind := range pats {
		got, ok := reg.Result(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		g2 := solo.Clone()
		m, err := newMatcher(kind, built[id], g2, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.apply(ups)
		if !got.Equal(m.result()) {
			t.Fatalf("%s: registry result diverges from solo engine", id)
		}
	}
}

// TestConcurrentSubscribersAndWriters exercises the registry under the
// race detector: one serialized writer stream, several subscribers
// consuming concurrently, and readers hammering Result/Patterns/GraphInfo.
func TestConcurrentSubscribersAndWriters(t *testing.T) {
	seed := int64(3)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	ups := generator.Updates(g, 60, 60, seed+70)
	reg := New(g)
	if err := reg.Register("sim", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("bsim", testPattern(g, KindBSim, seed), KindBSim); err != nil {
		t.Fatal(err)
	}

	const nSubs = 4
	const nBatches = 12
	var wg sync.WaitGroup
	errs := make(chan error, nSubs+2)

	// Racing writers may coalesce into fewer commits than Apply calls, so
	// subscribers cannot count events; they read until the final sequence
	// number, published here once all writers are done.
	finalSeq := make(chan uint64)

	for i := 0; i < nSubs; i++ {
		id := "sim"
		if i%2 == 1 {
			id = "bsim"
		}
		sub, err := reg.Subscribe(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sub *Subscription) {
			defer wg.Done()
			acc := sub.Snapshot.Clone()
			last := sub.Seq
			end := <-finalSeq
			for last < end {
				ev, ok := <-sub.C
				if !ok {
					errs <- fmt.Errorf("stream closed early")
					return
				}
				if ev.Seq != last+1 {
					errs <- fmt.Errorf("out-of-order: %d after %d", ev.Seq, last)
					return
				}
				last = ev.Seq
				ev.Delta.Apply(acc)
			}
			want, _ := reg.Result(sub.Pattern)
			if !acc.Equal(want) {
				errs <- fmt.Errorf("%s: accumulated deltas diverge under concurrency", sub.Pattern)
			}
			sub.Cancel()
		}(sub)
	}

	// Concurrent readers.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Result("sim")
				reg.Patterns()
				reg.GraphInfo()
			}
		}
	}()

	// Two writer goroutines race on Apply; the registry serializes them.
	chunk := len(ups) / nBatches
	var wwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for n := w; n < nBatches; n += 2 {
				batch := ups[n*chunk : (n+1)*chunk]
				if _, err := reg.Apply(batch); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	end := reg.Seq()
	for i := 0; i < nSubs; i++ {
		finalSeq <- end
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := reg.Stats()
	if st.Applies != nBatches || st.Commits == 0 || st.Commits > st.Applies || st.Seq != st.Commits {
		t.Fatalf("writer stats inconsistent: %+v", st)
	}
	reg.Close()
}

// TestRegisterUnregisterLifecycle covers duplicate ids, unknown lookups,
// unregister closing streams, and writes after Close failing.
func TestRegisterUnregisterLifecycle(t *testing.T) {
	g := generator.Synthetic(40, 160, generator.DefaultSchema(3), 1)
	reg := New(g)
	p := testPattern(g, KindSim, 1)
	if err := reg.Register("a", p, KindAuto); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("a", p, KindSim); err == nil {
		t.Fatal("duplicate register must fail")
	}
	if _, err := reg.Subscribe("nope"); err == nil {
		t.Fatal("subscribing to unknown pattern must fail")
	}
	if _, ok := reg.Result("nope"); ok {
		t.Fatal("Result for unknown pattern must report !ok")
	}
	infos := reg.Patterns()
	if len(infos) != 1 || infos[0].ID != "a" || infos[0].Kind != KindSim {
		t.Fatalf("Patterns() = %+v", infos)
	}

	sub, err := reg.Subscribe("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Unregister("a") {
		t.Fatal("unregister reported missing")
	}
	if reg.Unregister("a") {
		t.Fatal("double unregister reported present")
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("unregister must close subscriber streams")
	}

	reg.Close()
	if _, err := reg.Apply(nil); err == nil {
		t.Fatal("Apply after Close must fail")
	}
	if err := reg.Register("b", p, KindSim); err == nil {
		t.Fatal("Register after Close must fail")
	}
}

// TestApplyValidatesEndpoints rejects updates naming nodes outside the
// graph before any engine sees them.
func TestApplyValidatesEndpoints(t *testing.T) {
	g := generator.Synthetic(20, 60, generator.DefaultSchema(3), 1)
	reg := New(g)
	if err := reg.Register("q", testPattern(g, KindSim, 1), KindSim); err != nil {
		t.Fatal(err)
	}
	before, _ := reg.Result("q")
	snapshot := before.Clone()
	if _, err := reg.Apply([]graph.Update{graph.Insert(0, 9999)}); err == nil {
		t.Fatal("out-of-range update must be rejected")
	}
	if _, err := reg.Apply([]graph.Update{{Op: 9, From: 0, To: 1}}); err == nil {
		t.Fatal("unknown op must be rejected before any engine sees it")
	}
	after, _ := reg.Result("q")
	if !after.Equal(snapshot) {
		t.Fatal("rejected batch must not change results")
	}
	if _, _, seq := func() (int, int, uint64) { return reg.GraphInfo() }(); seq != 0 {
		t.Fatalf("rejected batch advanced seq to %d", seq)
	}
}

// TestLaggingSubscriberDoesNotBlockCommits verifies the unbounded mailbox:
// commits proceed while no one reads, and the lagging consumer still sees
// every event in order afterwards.
func TestLaggingSubscriberDoesNotBlockCommits(t *testing.T) {
	g := generator.Synthetic(40, 160, generator.DefaultSchema(3), 1)
	ups := generator.Updates(g, 30, 30, 5)
	reg := New(g)
	if err := reg.Register("q", testPattern(g, KindSim, 1), KindSim); err != nil {
		t.Fatal(err)
	}
	sub, err := reg.Subscribe("q")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := reg.Apply(ups[i*3 : i*3+3]); err != nil {
			t.Fatal(err) // would deadlock here if delivery blocked commits
		}
	}
	acc := sub.Snapshot.Clone()
	for i := 0; i < n; i++ {
		ev := <-sub.C
		if ev.Seq != sub.Seq+uint64(i)+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		ev.Delta.Apply(acc)
	}
	want, _ := reg.Result("q")
	if !acc.Equal(want) {
		t.Fatal("lagging subscriber's accumulation diverges")
	}
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Fatal("Cancel must close the stream")
	}
}

// TestRelationViewOfIsoMatchesEnumeration cross-checks the iso matcher's
// refcounted relation against a fresh engine's embedding enumeration.
func TestRelationViewOfIsoMatchesEnumeration(t *testing.T) {
	seed := int64(4)
	g := generator.Synthetic(50, 150, generator.DefaultSchema(3), seed)
	p := testPattern(g, KindIso, seed)
	reg := New(g)
	if err := reg.Register("iso", p, KindIso); err != nil {
		t.Fatal(err)
	}
	ups := generator.Updates(g, 20, 20, seed+80)
	if _, err := reg.Apply(ups); err != nil {
		t.Fatal(err)
	}
	got, _ := reg.Result("iso")

	// Rebuild from scratch on an identical graph.
	g2 := generator.Synthetic(50, 150, generator.DefaultSchema(3), seed)
	m, err := newMatcher(KindIso, p, g2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.apply(ups)
	if !got.Equal(m.result()) {
		t.Fatal("iso relation view diverges from fresh engine")
	}
}
