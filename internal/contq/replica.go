package contq

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs/trace"
)

// This file is the replica side of follower mode (internal/follow): a
// follower registry is built from a leader snapshot (NewAt over Export's
// output), then kept in lockstep by applying the leader's commit stream at
// the leader's own sequence numbers (ApplyReplicated). Because both sides
// assign identical (seq, ΔG) pairs, everything keyed by sequence — SSE
// Last-Event-ID resume, Replay tails, FromSeq subscriptions — works the
// same against a follower as against the leader.

// ErrReplicaGap reports an ApplyReplicated commit whose sequence does not
// directly follow the registry head: the replica missed (or replayed) a
// commit and must re-sync from the leader — catch-up via the commit tail,
// or snapshot re-bootstrap when the tail is compacted.
var ErrReplicaGap = errors.New("contq: replicated commit does not follow head")

// NewAt builds a registry over g with the commit sequence already at seq
// and the given standing patterns registered — the shape of a follower
// bootstrapping from a leader snapshot (Export on the leader side). The
// registry takes ownership of g. Each pattern's initial match is computed
// over g, so results are immediately correct at seq; later leader commits
// are applied with ApplyReplicated.
func NewAt(g *graph.Graph, seq uint64, pats []journal.PatternDef, options ...Option) (*Registry, error) {
	r := New(g, options...)
	r.mu.Lock()
	r.seq = seq
	r.mu.Unlock()
	for _, pd := range pats {
		if err := r.recoverPattern(pd.ID, pd.Kind, pd.Def, pd.RegSeq); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Export returns a consistent full-state snapshot: an immutable shared
// clone of the canonical graph, the commit sequence it reflects, and the
// registered pattern definitions — what GET /v1/snapshot serves and what
// a follower hands to NewAt. The graph is shared across callers at the
// same head (the resume-clone cache), so a bootstrap storm pays one O(|G|)
// copy; callers must not mutate it.
func (r *Registry) Export() (*graph.Graph, uint64, []journal.PatternDef) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.mu.RLock()
	head := r.seq
	r.mu.RUnlock()
	return r.resumeClone(head), head, r.patternDefs()
}

// PatternDef returns one registered pattern's portable definition — id,
// resolved kind, serialized pattern text and registration sequence — the
// document GET /v1/patterns/{id} serves and a follower's reconciler feeds
// to recoverPattern. ok is false when id is not registered.
func (r *Registry) PatternDef(id string) (journal.PatternDef, bool) {
	r.mu.RLock()
	reg, ok := r.pats[id]
	r.mu.RUnlock()
	if !ok {
		return journal.PatternDef{}, false
	}
	var def bytes.Buffer
	if err := reg.p.Write(&def); err != nil {
		return journal.PatternDef{}, false // unserializable patterns were rejected at Register
	}
	return journal.PatternDef{ID: reg.id, Kind: string(reg.kind), Def: def.Bytes(), RegSeq: reg.regSeq}, true
}

// RegisterDef registers a pattern from its portable definition (the
// PatternDef wire document) at an explicit registration sequence — how a
// follower's reconciler mirrors a leader-side Register it learned about
// after the fact.
func (r *Registry) RegisterDef(pd journal.PatternDef) error {
	return r.recoverPattern(pd.ID, pd.Kind, pd.Def, pd.RegSeq)
}

// ApplyReplicated applies one leader commit at exactly the given sequence
// number, running the full commit pipeline — shared-network repair, engine
// fan-out, canonical graph mutation, local journaling, and publishes to
// both pattern and commit subscribers. Unlike Apply, nothing is coalesced
// and no sequence is assigned: the leader already did both, and the
// follower replays its decisions so both sides' streams carry identical
// (seq, ΔG) pairs.
//
// seq must be head+1 (ErrReplicaGap otherwise — re-sync). The updates must
// apply cleanly to the canonical graph; a failure there means the replica
// diverged from the leader and the error says so (re-bootstrap). A nil
// return means the commit stands and is published; a journal append
// failure is returned but the commit still stands in memory, exactly as on
// the leader's write path.
func (r *Registry) ApplyReplicated(seq uint64, ups []graph.Update) error {
	return r.ApplyReplicatedTrace(seq, ups, "")
}

// ApplyReplicatedTrace is ApplyReplicated carrying the leader commit
// span's W3C traceparent (from the commit-stream frame or journal
// record). When the replica's tracer samples, the replicated commit's
// span tree parents onto the leader's commit span, so a single trace ID
// links leader ingest, leader commit, and the follower's apply — "" (or
// a tracer that is off) replicates untraced, byte-for-byte the same
// pipeline.
func (r *Registry) ApplyReplicatedTrace(seq uint64, ups []graph.Update, traceparent string) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.mu.RLock()
	head := r.seq
	r.mu.RUnlock()
	if seq != head+1 {
		return fmt.Errorf("%w: commit %d against head %d", ErrReplicaGap, seq, head)
	}
	start := time.Now()
	var ct CommitTiming
	if err := r.validate(ups); err != nil {
		return fmt.Errorf("contq: replica diverged from leader at seq %d: %w", seq, err)
	}
	ct.Validate = time.Since(start)
	r.met.validate.ObserveDuration(ct.Validate)
	ct.Batches, ct.Updates = 1, len(ups)
	var cspan *trace.Span
	if sc, ok := trace.Parse(traceparent); ok {
		cspan = r.tracer.StartSpanAt(sc, "replica.apply", start)
		cspan.SetAttr("updates", len(ups))
	}
	_, jerr, err := r.commitEffective(ups, 1, len(ups), &ct, start, cspan, nil)
	if err != nil {
		return fmt.Errorf("contq: replica diverged from leader at seq %d: %w", seq, err)
	}
	return jerr
}
