package contq

import (
	"sync"

	"gpm/internal/rel"
)

// Subscription is one subscriber's view of a pattern's match-delta stream.
// Snapshot is the result at subscription time and Seq the commit it
// reflects; every commit after Seq arrives on C exactly once, in commit
// order. Snapshot ⊕ (all deltas received so far) always equals the live
// result as of the last received event.
//
// Events queue in an unbounded mailbox between the registry's writer and
// the consumer, so a slow consumer never blocks a commit (the memory held
// is proportional to its lag). C closes after Cancel or when the pattern
// is unregistered.
type Subscription struct {
	C        <-chan Event
	Snapshot rel.Relation // shared immutable snapshot — Clone before mutating
	Seq      uint64
	Pattern  string

	reg  *registration
	met  *metrics
	done chan struct{}
	out  chan Event

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Event
	closed  bool
	started bool
}

// newSubscription builds a subscription. A paused subscription collects
// events in its mailbox but does not deliver until start — the window in
// which a FromSeq resume backfills missed deltas ahead of the live feed.
func newSubscription(id string, snapshot rel.Relation, seq uint64, reg *registration, met *metrics, paused bool) *Subscription {
	s := &Subscription{
		Snapshot: snapshot,
		Seq:      seq,
		Pattern:  id,
		reg:      reg,
		met:      met,
		done:     make(chan struct{}),
		out:      make(chan Event),
	}
	s.C = s.out
	s.cond = sync.NewCond(&s.mu)
	if met != nil {
		met.subsActive.Add(1)
	}
	if !paused {
		s.start()
	}
	return s
}

// start launches the delivery pump (idempotent). Starting a subscription
// that was cancelled while paused just closes C.
func (s *Subscription) start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	if s.closed {
		s.mu.Unlock()
		close(s.out)
		return
	}
	s.mu.Unlock()
	go s.pump(s.out)
}

// prepend queues events ahead of everything already in the mailbox; only
// valid before start (the pump may already have taken the queue's head
// otherwise).
func (s *Subscription) prepend(evs []Event) {
	s.mu.Lock()
	if !s.closed && len(evs) > 0 {
		s.queue = append(append(make([]Event, 0, len(evs)+len(s.queue)), evs...), s.queue...)
	}
	s.mu.Unlock()
}

// push enqueues one event; called by the registry's publisher. Never
// blocks beyond the mailbox lock.
func (s *Subscription) push(ev Event) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ev)
		if s.met != nil {
			s.met.mailboxHW.SetMax(int64(len(s.queue)))
		}
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// pump drains the mailbox to the consumer channel in order, ending (and
// closing the channel) on cancellation.
func (s *Subscription) pump(out chan<- Event) {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			close(out)
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case out <- ev:
		case <-s.done:
			close(out)
			return
		}
	}
}

// Cancel detaches the subscription: the registry stops delivering to it,
// queued-but-unread events are discarded, and C closes. Safe to call more
// than once and concurrently with delivery.
func (s *Subscription) Cancel() {
	if s.reg != nil {
		s.reg.detach(s)
	}
	s.close()
}

// close shuts the mailbox down without detaching (used by Unregister and
// Close, which already removed the subscription from the registration).
func (s *Subscription) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queue = nil
	close(s.done)
	s.cond.Signal()
	s.mu.Unlock()
	if s.met != nil {
		s.met.subsActive.Add(-1)
	}
}
