package contq

import (
	"bytes"
	"context"
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/par"
	"gpm/internal/pattern"
)

// This file is the replay side of the journal integration: serving raw ΔG
// tails (Replay), resuming subscriptions from a past sequence number
// (subscribeFrom), and rebuilding a registry from a durable journal after
// a restart (Recover).

// Replay returns the committed net update batches with sequence numbers
// in (fromSeq, head] — everything a consumer that saw commit fromSeq has
// missed. Fails with ErrNoJournal, ErrSeqFuture, or an error wrapping
// journal.ErrCompacted when the range is not retained — including when
// the journal stopped behind the registry head after an append failure:
// a silently truncated tail would let a follower believe it is caught up
// while commits are missing, so that case errors loudly instead. The
// returned Updates slices are shared with the journal — do not mutate.
func (r *Registry) Replay(fromSeq uint64) ([]journal.Commit, error) {
	if r.journal == nil {
		return nil, ErrNoJournal
	}
	// Under writeMu no commit is mid-append, so a journal head behind the
	// registry head is a real stop (failed append), not a transient.
	r.writeMu.Lock()
	head := r.Seq()
	jhead := r.journal.HeadSeq()
	r.writeMu.Unlock()
	if fromSeq > head {
		return nil, fmt.Errorf("%w: %d > %d", ErrSeqFuture, fromSeq, head)
	}
	if jhead < head {
		return nil, fmt.Errorf("contq: journal stopped at seq %d behind head %d: %w",
			jhead, head, journal.ErrCompacted)
	}
	return r.journal.Commits(fromSeq)
}

// subscribeFrom implements Subscribe(id, FromSeq(from)): attach a live
// subscription at the current head, then backfill the deltas for
// (from, head] by replaying the journaled net batches through a fresh
// engine of the pattern's kind — the same *Delta paths live commits use —
// against a reconstruction of the graph as of from.
//
// The reconstruction needs no graph snapshot: journaled batches are net
// effective updates (every one changed the graph), so applying their
// inverses to a clone of the current graph, newest first, rewinds it
// exactly. The backfill runs outside the writer lock; commits that land
// meanwhile queue in the subscription's paused mailbox and are delivered
// after the backfilled events, preserving consecutive sequence order.
func (r *Registry) subscribeFrom(ctx context.Context, id string, from uint64) (*Subscription, error) {
	r.writeMu.Lock()
	if r.closed {
		r.writeMu.Unlock()
		return nil, ErrClosed
	}
	r.mu.RLock()
	reg, ok := r.pats[id]
	head := r.seq
	r.mu.RUnlock()
	if !ok {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, id)
	}
	if from > head {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("%w: %d > %d", ErrSeqFuture, from, head)
	}
	if from == head {
		// Nothing missed: a live subscription without a snapshot.
		s := newSubscription(id, nil, head, reg, r.met, false)
		reg.mu.Lock()
		reg.subs[s] = struct{}{}
		reg.mu.Unlock()
		r.writeMu.Unlock()
		return s, nil
	}
	if r.journal == nil {
		r.writeMu.Unlock()
		return nil, ErrNoJournal
	}
	if from < reg.regSeq {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("%w: seq %d predates pattern %q (registered at seq %d)",
			journal.ErrCompacted, from, id, reg.regSeq)
	}
	// Snapshot the graph at head under the writer lock — a reconnect
	// storm shares one cached clone per head, so the lock is held for one
	// O(|G|) copy at most — and attach the paused subscription atomically
	// with it, so the mailbox sees every commit > head. The journal scan
	// and the private working copy happen after the lock is released: a
	// cold resume that misses the memory ring reads disk segments, and
	// that must not stall every writer behind one reconnecting client.
	shared := r.resumeClone(head)
	s := newSubscription(id, nil, from, reg, r.met, true)
	reg.mu.Lock()
	reg.subs[s] = struct{}{}
	reg.mu.Unlock()
	r.writeMu.Unlock()
	base := shared.Clone() // private: backfill rewinds and replays in place

	fail := func(err error) (*Subscription, error) {
		reg.detach(s)
		s.close()
		s.start() // closes C for any racing reader
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	recs, err := r.journal.Commits(from)
	if err != nil {
		return fail(fmt.Errorf("contq: replay from %d: %w", from, err))
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	// Commits that landed after head are already queued in the paused
	// mailbox as live events; backfill must stop exactly at head.
	for len(recs) > 0 && recs[len(recs)-1].Seq > head {
		recs = recs[:len(recs)-1]
	}
	if uint64(len(recs)) != head-from || recs[0].Seq != from+1 || recs[len(recs)-1].Seq != head {
		return fail(fmt.Errorf("contq: journal gap replaying (%d, %d]: %w", from, head, journal.ErrCompacted))
	}
	events, err := r.backfill(ctx, reg, base, recs)
	if err != nil {
		return fail(err)
	}
	s.prepend(events)
	s.start()
	return s, nil
}

// resumeClone returns the shared immutable clone of the canonical graph
// at head, building it on first use. Called under writeMu (the graph is
// stable); the cache is invalidated by every commit.
func (r *Registry) resumeClone(head uint64) *graph.Graph {
	r.resumeMu.Lock()
	defer r.resumeMu.Unlock()
	if r.resumeG == nil || r.resumeSeq != head {
		r.resumeG = r.g.Clone()
		r.resumeSeq = head
	}
	return r.resumeG
}

// backfill rewinds base (the graph at the newest replayed seq) to the
// state before recs[0], then replays the batches forward through a fresh
// matcher, collecting one event per commit. It stops early with ctx's
// error when the caller gives up (the replay can span thousands of
// commits; an abandoned resume must not keep burning a core).
func (r *Registry) backfill(ctx context.Context, reg *registration, base *graph.Graph, recs []journal.Commit) ([]Event, error) {
	for i := len(recs) - 1; i >= 0; i-- {
		ups := recs[i].Updates
		for k := len(ups) - 1; k >= 0; k-- {
			if _, err := base.Apply(ups[k].Inverse()); err != nil {
				return nil, fmt.Errorf("contq: rewinding to seq %d: %w", recs[0].Seq-1, err)
			}
		}
	}
	m, err := newMatcher(reg.kind, reg.p, base, r.engineW)
	if err != nil {
		return nil, fmt.Errorf("contq: rebuilding %q engine for replay: %w", reg.id, err)
	}
	events := make([]Event, 0, len(recs))
	for _, rec := range recs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev := Event{Pattern: reg.id, Seq: rec.Seq, Trace: rec.Trace}
		if len(rec.Updates) > 0 {
			ev.Delta = m.apply(rec.Updates)
			// The shared-storage protocol: the engine dropped its overlay,
			// so commit the batch to the replay base before the next one.
			if _, err := base.ApplyAll(rec.Updates); err != nil {
				return nil, fmt.Errorf("contq: replaying seq %d: %w", rec.Seq, err)
			}
		}
		events = append(events, ev)
	}
	return events, nil
}

// Recover rebuilds a registry from a durable journal: load the latest
// snapshot (graph + standing patterns at a past seq), replay the record
// tail — commits through the engines' *Delta paths, registrations and
// unregistrations in order — and attach the journal for future appends.
// The recovered registry serves results at the journal's head sequence
// and accepts new commits from there.
//
// Do not pass WithJournal in options; the journal argument is attached
// once replay completes (so replayed records are not re-appended).
func Recover(j *journal.Journal, options ...Option) (*Registry, error) {
	snap, tail := j.RecoveredState()
	g := graph.New()
	var seq uint64
	var pats []journal.PatternDef
	if snap != nil {
		g, seq, pats = snap.Graph, snap.Seq, snap.Patterns
	}
	r := New(g, options...)
	r.seq = seq
	for _, pd := range pats {
		// The snapshot preserves the original registration seq, so resumes
		// reaching back before the snapshot (into journal history the
		// compactor retained) are not wrongly rejected after a restart.
		if err := r.recoverPattern(pd.ID, pd.Kind, pd.Def, pd.RegSeq); err != nil {
			return nil, err
		}
	}
	for _, rec := range tail {
		switch rec.Type {
		case journal.RecCommit:
			if err := r.replayCommit(rec.Seq, rec.Updates); err != nil {
				return nil, err
			}
		case journal.RecRegister:
			if err := r.recoverPattern(rec.ID, rec.Kind, rec.Def, rec.Seq); err != nil {
				return nil, err
			}
		case journal.RecUnregister:
			r.Unregister(rec.ID)
		}
	}
	r.journal = j
	return r, nil
}

// recoverPattern re-registers a journaled pattern definition.
func (r *Registry) recoverPattern(id, kind string, def []byte, regSeq uint64) error {
	p, err := pattern.Parse(bytes.NewReader(def))
	if err != nil {
		return fmt.Errorf("contq: recovering pattern %q: %w", id, err)
	}
	if err := r.Register(id, p, Kind(kind)); err != nil {
		return fmt.Errorf("contq: recovering pattern %q: %w", id, err)
	}
	r.mu.Lock()
	r.pats[id].regSeq = regSeq
	r.mu.Unlock()
	return nil
}

// replayCommit re-applies one journaled commit during recovery: fan the
// net batch out to the engines, mutate the canonical graph once, and set
// the sequence — the live commit path minus callers, journaling and
// subscribers (none exist yet). Engine panics are contained exactly as
// on the live path (the pattern is evicted, recovery continues): the
// journal may hold the very batch that made an engine panic before the
// crash, and replaying it must not turn into a permanent startup crash
// loop.
func (r *Registry) replayCommit(seq uint64, ups []graph.Update) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	// The shared evaluation network repairs once per replayed commit, just
	// like the live path; network-backed matchers below then read their
	// cached deltas (and panic, hence evict, if their shared join broke).
	if r.net != nil && len(ups) > 0 {
		r.net.Apply(ups)
	}
	regs := r.snapshotRegs()
	repairErr := make([]error, len(regs))
	if len(ups) > 0 {
		par.For(len(regs), r.workers, func(_, i int) {
			defer func() {
				if rec := recover(); rec != nil {
					repairErr[i] = fmt.Errorf("contq: pattern %q replay panicked: %v", regs[i].id, rec)
				}
			}()
			regs[i].m.apply(ups)
		})
	}
	r.mu.Lock()
	if len(ups) > 0 {
		if _, err := r.g.ApplyAll(ups); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("contq: replaying commit %d: %w", seq, err)
		}
	}
	r.seq = seq
	// A replayed commit counts as one apply whose updates were already
	// net (no coalescing visible), keeping Stats' Applies-Commits and
	// Submitted-Applied differences from underflowing after Recover.
	r.commits++
	r.applies++
	r.upsSubmitted += uint64(len(ups))
	r.upsApplied += uint64(len(ups))
	r.mu.Unlock()
	for i, reg := range regs {
		if repairErr[i] != nil {
			r.evictLocked(reg, seq)
		}
	}
	return nil
}
