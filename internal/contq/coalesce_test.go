package contq

import (
	"sync"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/rel"
)

func queued(ups ...graph.Update) *applyReq {
	return &applyReq{ups: ups, done: make(chan struct{})}
}

func mustDone(t *testing.T, req *applyReq) {
	t.Helper()
	select {
	case <-req.done:
	default:
		t.Fatal("request not completed by the drain")
	}
}

// TestCoalescedInsertDeleteCancel drives the drain directly with an
// insert and a delete of the same edge queued by two callers: the pair
// must annihilate before any engine runs, the graph must be untouched,
// and the commit must still happen — seq advances by one and the
// subscriber sees exactly one (empty) event, so delta/seq semantics
// survive an empty-after-cancellation batch.
func TestCoalescedInsertDeleteCancel(t *testing.T) {
	seed := int64(1)
	g := generator.Synthetic(40, 160, generator.DefaultSchema(3), seed)
	reg := New(g)
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	sub, err := reg.Subscribe("q")
	if err != nil {
		t.Fatal(err)
	}
	// Pick a currently-absent edge.
	var u, v graph.NodeID = -1, -1
	for a := 0; a < g.NumNodes() && u < 0; a++ {
		for b := 0; b < g.NumNodes(); b++ {
			if a != b && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	edgesBefore := g.NumEdges()

	req1 := queued(graph.Insert(u, v))
	req2 := queued(graph.Delete(u, v))
	reg.commit([]*applyReq{req1, req2})
	mustDone(t, req1)
	mustDone(t, req2)
	if req1.err != nil || req2.err != nil {
		t.Fatalf("errors: %v, %v", req1.err, req2.err)
	}
	if req1.seq != 1 || req2.seq != 1 {
		t.Fatalf("both callers must share commit 1, got %d and %d", req1.seq, req2.seq)
	}
	if g.HasEdge(u, v) || g.NumEdges() != edgesBefore {
		t.Fatal("cancelled pair reached the canonical graph")
	}
	ev := <-sub.C
	if ev.Seq != 1 || !ev.Delta.Empty() {
		t.Fatalf("want one empty event with seq 1, got seq %d delta %v", ev.Seq, ev.Delta)
	}
	st := reg.Stats()
	if st.Commits != 1 || st.Applies != 2 || st.CoalescedApplies != 1 ||
		st.UpdatesSubmitted != 2 || st.UpdatesApplied != 0 || st.UpdatesCancelled != 2 {
		t.Fatalf("stats after cancellation drain: %+v", st)
	}
	reg.Close()
}

// TestCoalescedDrainSeqContinuity queues N Apply batches into one drain:
// they must commit as ONE sequence number whose single per-pattern event
// carries the net delta, and a subscriber's snapshot ⊕ deltas must still
// equal Result() afterwards.
func TestCoalescedDrainSeqContinuity(t *testing.T) {
	seed := int64(2)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	ups := generator.Updates(g, 25, 25, seed+9)
	reg := New(g)
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	sub, err := reg.Subscribe("q")
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	reqs := make([]*applyReq, n)
	per := len(ups) / n
	for i := range reqs {
		reqs[i] = queued(ups[i*per : (i+1)*per]...)
	}
	reg.commit(reqs)
	for _, req := range reqs {
		mustDone(t, req)
		if req.err != nil {
			t.Fatal(req.err)
		}
		if req.seq != 1 {
			t.Fatalf("all %d callers must share commit 1, got %d", n, req.seq)
		}
	}
	if got := reg.Seq(); got != 1 {
		t.Fatalf("drain of %d applies advanced seq to %d, want 1", n, got)
	}

	// One more (uncoalesced) commit: the subscriber must see seq 1 then 2
	// with no gap, and accumulate to Result().
	if _, err := reg.Apply(ups[n*per:]); err != nil {
		t.Fatal(err)
	}
	acc := sub.Snapshot.Clone()
	for want := uint64(1); want <= 2; want++ {
		ev := <-sub.C
		if ev.Seq != want {
			t.Fatalf("subscriber saw seq %d, want %d", ev.Seq, want)
		}
		ev.Delta.Apply(acc)
	}
	res, _ := reg.Result("q")
	if !acc.Equal(res) {
		t.Fatal("snapshot ⊕ coalesced deltas diverges from Result()")
	}
	st := reg.Stats()
	if st.Commits != 2 || st.Applies != n+1 || st.CoalescedApplies != n-1 {
		t.Fatalf("stats: %+v", st)
	}
	reg.Close()
}

// TestCoalescedDrainValidationIsolation: an invalid batch inside a drain
// fails alone; the other callers' updates commit.
func TestCoalescedDrainValidationIsolation(t *testing.T) {
	seed := int64(3)
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), seed)
	reg := New(g)
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	var u, v graph.NodeID = -1, -1
	for a := 0; a < g.NumNodes() && u < 0; a++ {
		for b := 0; b < g.NumNodes(); b++ {
			if a != b && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	good := queued(graph.Insert(u, v))
	bad := queued(graph.Insert(0, 99999))
	badOp := queued(graph.Update{Op: 7, From: 0, To: 1})
	reg.commit([]*applyReq{good, bad, badOp})
	mustDone(t, good)
	mustDone(t, bad)
	mustDone(t, badOp)
	if good.err != nil || good.seq != 1 {
		t.Fatalf("valid caller: seq=%d err=%v", good.seq, good.err)
	}
	if bad.err == nil || badOp.err == nil {
		t.Fatal("invalid batches must fail individually")
	}
	if !g.HasEdge(u, v) {
		t.Fatal("valid caller's update did not commit")
	}
	reg.Close()
}

// TestConcurrentAppliesCoalesce hammers Apply from many goroutines and
// checks the writer really does merge batches: every call is admitted,
// commits never exceed applies, seq equals commits, and the canonical
// graph equals a serial replay of the same net updates.
func TestConcurrentAppliesCoalesce(t *testing.T) {
	seed := int64(4)
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	mirror := g.Clone()
	ups := generator.Updates(g, 60, 0, seed+11) // insertions only: order-independent net effect
	reg := New(g)
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < len(ups); i++ {
		wg.Add(1)
		go func(up graph.Update) {
			defer wg.Done()
			if _, err := reg.Apply([]graph.Update{up}); err != nil {
				t.Error(err)
			}
		}(ups[i])
	}
	wg.Wait()

	st := reg.Stats()
	if st.Applies != uint64(len(ups)) {
		t.Fatalf("admitted %d of %d applies", st.Applies, len(ups))
	}
	if st.Commits > st.Applies || st.Seq != st.Commits {
		t.Fatalf("inconsistent writer stats: %+v", st)
	}
	t.Logf("%d applies coalesced into %d commits", st.Applies, st.Commits)

	if _, err := mirror.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != mirror.NumEdges() {
		t.Fatalf("canonical graph diverged: %d edges vs %d", g.NumEdges(), mirror.NumEdges())
	}
	reg.Close()
}

// panicMatcher simulates an engine whose repair blows up mid-fan-out.
type panicMatcher struct{}

func (panicMatcher) apply(ups []graph.Update) rel.Delta { panic("boom") }
func (panicMatcher) result() rel.Relation               { return rel.NewRelation(1) }
func (panicMatcher) release()                           {}

// TestPanickingEngineIsEvicted: a panic inside one engine's repair is
// contained to that pattern — the commit itself proceeds (the other
// engines already absorbed the batch, so the canonical graph must too),
// the broken pattern is evicted with its subscriber streams closed, and
// the surviving pattern's result stays exactly in sync.
func TestPanickingEngineIsEvicted(t *testing.T) {
	seed := int64(6)
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), seed)
	solo := g.Clone()
	p := testPattern(g, KindSim, seed)
	reg := New(g)
	if err := reg.Register("good", p, KindSim); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	reg.pats["bad"] = &registration{id: "bad", kind: KindSim, m: panicMatcher{}, subs: make(map[*Subscription]struct{})}
	reg.mu.Unlock()
	badSub, err := reg.Subscribe("bad")
	if err != nil {
		t.Fatal(err)
	}

	ups := generator.Updates(g, 4, 0, seed+7)
	seq, err := reg.Apply(ups[:2])
	if err != nil || seq != 1 {
		t.Fatalf("commit with a panicking engine: seq=%d err=%v", seq, err)
	}
	if _, ok := reg.Result("bad"); ok {
		t.Fatal("panicked pattern must be evicted")
	}
	if _, ok := <-badSub.C; ok {
		t.Fatal("evicted pattern's subscriber stream must close")
	}
	if st := reg.Stats(); st.PatternsEvicted != 1 {
		t.Fatalf("PatternsEvicted = %d, want 1", st.PatternsEvicted)
	}

	// The survivor is still in lockstep with the canonical graph: its
	// result equals a solo engine fed the same stream, before and after
	// another commit.
	check := func(applied []graph.Update) {
		t.Helper()
		g2 := solo.Clone()
		m, err := newMatcher(KindSim, p, g2, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.apply(applied)
		got, _ := reg.Result("good")
		if !got.Equal(m.result()) {
			t.Fatal("surviving pattern diverged after an engine panic")
		}
	}
	check(ups[:2])
	if seq, err := reg.Apply(ups[2:4]); err != nil || seq != 2 {
		t.Fatalf("registry wedged after eviction: seq=%d err=%v", seq, err)
	}
	check(ups[:4])
	reg.Close()
}

// TestPanickingPublishDoesNotWedgeWriter: the drain's outer panic guard
// still protects the writer from panics outside the engine fan-out —
// queued callers get errors, the flag resets, and the registry stays
// writable. (Engine-repair panics no longer reach it; see above.)
func TestPanickingPublishDoesNotWedgeWriter(t *testing.T) {
	seed := int64(6)
	g := generator.Synthetic(30, 90, generator.DefaultSchema(3), seed)
	reg := New(g)
	ups := generator.Updates(g, 4, 0, seed+7)

	// A nil subscription in the set makes publish panic — a stand-in for
	// any post-fan-out bug.
	if err := reg.Register("q", testPattern(g, KindSim, seed), KindSim); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	reg.pats["q"].subs[nil] = struct{}{}
	reg.mu.Unlock()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Apply must propagate a non-engine panic to the synchronous drainer")
			}
		}()
		reg.Apply(ups[:1]) //nolint:errcheck // panics
	}()

	// Background-drainer path: queued requests must complete, not hang.
	// Their commit finished (seq assigned, graph mutated) before the
	// publish panic, so under Apply's contract they report success with a
	// nonzero seq — seq 0 with an error is reserved for never-committed.
	r1, r2 := queued(ups[1]), queued(ups[2])
	reg.qmu.Lock()
	reg.queue = append(reg.queue, r1, r2)
	reg.draining = true
	reg.qmu.Unlock()
	reg.drainStep(false) // must recover, not crash the process
	mustDone(t, r1)
	mustDone(t, r2)
	if r1.seq == 0 || r2.seq == 0 || r1.err != nil || r2.err != nil {
		t.Fatalf("committed callers must get their seq despite the publish panic: %d/%v %d/%v",
			r1.seq, r1.err, r2.seq, r2.err)
	}

	// The writer must be fully usable once the faulty subscriber is gone.
	reg.mu.Lock()
	delete(reg.pats["q"].subs, nil)
	reg.mu.Unlock()
	if _, err := reg.Apply(ups[3:4]); err != nil {
		t.Fatalf("registry wedged after panic: %v", err)
	}
	reg.Close()
}
