package contq

import (
	"time"

	"gpm/internal/obs"
)

// This file is the registry's telemetry: every commit is split into stages
// (validate → network → repair fan-out → graph mutation → journal →
// publish) and each stage's wall time lands in a fixed-bucket histogram,
// alongside queue-wait and coalescing-size distributions and the
// subscription-side gauges. The instruments live in an obs.Registry
// (obs.Default() unless WithMetrics injects one), which gpserve exposes at
// GET /v1/metricz; Stats().Timings carries JSON snapshots of the same
// data. These per-stage costs are the observation stream the ROADMAP's
// adaptive execution policy (incremental repair vs batch recompute per
// commit) learns its thresholds from.

// Metric names of the commit pipeline — also the contract gpbench reads
// when emitting its commit_stage_ms summaries.
const (
	// MetricCommitStage is the per-stage commit wall-time histogram,
	// labeled stage=validate|network|repair|journal|publish.
	MetricCommitStage = "gpm_commit_stage_ms"
	// MetricCommitTotal is the whole-commit wall-time histogram (writer
	// lock acquired → publishes done).
	MetricCommitTotal = "gpm_commit_ms"
)

// CommitStages lists the stage label values of MetricCommitStage, in
// pipeline order.
var CommitStages = []string{"validate", "network", "repair", "journal", "publish"}

// metrics bundles the registry's instruments. One instance per Registry;
// instruments with the same identity are shared through the obs registry,
// so several contq registries in one process aggregate into the same
// series (the obs get-or-create contract).
type metrics struct {
	queueWait   *obs.Histogram // Apply enqueue → drain pickup
	drainSize   *obs.Histogram // Apply calls coalesced per commit
	drainUps    *obs.Histogram // effective updates per commit
	validate    *obs.Histogram
	network     *obs.Histogram
	repair      *obs.Histogram // fan-out wall time (the max across engines bounds it)
	journal     *obs.Histogram
	publish     *obs.Histogram
	total       *obs.Histogram
	repairKind  map[Kind]*obs.Histogram // per-engine repair time by kind
	commits     *obs.Counter
	applies     *obs.Counter
	subsActive  *obs.Gauge // open subscriptions across all patterns
	csubsActive *obs.Gauge // open raw-ΔG commit subscriptions
	mailboxHW   *obs.Gauge // deepest subscriber mailbox ever observed
}

func newMetrics(reg *obs.Registry) *metrics {
	stage := func(s string) *obs.Histogram {
		return reg.Histogram(MetricCommitStage,
			"Per-stage commit wall time in milliseconds (validate, network, repair, journal, publish).",
			nil, obs.L("stage", s))
	}
	m := &metrics{
		queueWait: reg.Histogram("gpm_commit_queue_wait_ms",
			"Time an Apply call waited in the coalescing queue before its commit started, in milliseconds.", nil),
		drainSize: reg.Histogram("gpm_commit_drain_batches",
			"Apply calls coalesced into one commit.", obs.SizeBuckets),
		drainUps: reg.Histogram("gpm_commit_effective_updates",
			"Net effective updates per commit, after edge-level cancellation.", obs.SizeBuckets),
		validate: stage("validate"),
		network:  stage("network"),
		repair:   stage("repair"),
		journal:  stage("journal"),
		publish:  stage("publish"),
		total: reg.Histogram(MetricCommitTotal,
			"Whole-commit wall time in milliseconds, writer lock acquired through publishes done.", nil),
		commits: reg.Counter("gpm_commits_total", "Committed drains (each advanced the sequence by one)."),
		applies: reg.Counter("gpm_applies_total", "Apply calls admitted into commits."),
		subsActive: reg.Gauge("gpm_subscriptions_active",
			"Open match-delta subscriptions across all standing patterns."),
		csubsActive: reg.Gauge("gpm_commit_subscriptions_active",
			"Open raw-ΔG commit subscriptions (followers and commit-stream tails)."),
		mailboxHW: reg.Gauge("gpm_subscription_mailbox_highwater",
			"Deepest per-subscriber mailbox observed since start (events queued behind a slow consumer)."),
		repairKind: make(map[Kind]*obs.Histogram, 3),
	}
	for _, k := range []Kind{KindSim, KindBSim, KindIso} {
		m.repairKind[k] = reg.Histogram("gpm_commit_repair_ms",
			"Per-engine repair wall time by kind within one commit's fan-out, in milliseconds.",
			nil, obs.L("kind", string(k)))
	}
	return m
}

// CommitTiming is the per-stage breakdown of one committed drain, handed
// to the WithCommitObserver callback right after the commit publishes —
// the hook gpserve's -slow-commit warning and any adaptive policy hang off.
// Durations are zero for stages that did not run (e.g. Network with no
// effective updates).
type CommitTiming struct {
	Seq      uint64 // the commit's sequence number
	Batches  int    // Apply calls coalesced into this commit
	Updates  int    // net effective updates fanned out
	Patterns int    // engines repaired

	Validate time.Duration
	Network  time.Duration
	Repair   time.Duration // fan-out wall time
	Journal  time.Duration
	Publish  time.Duration
	Total    time.Duration

	// SlowestPattern identifies the pattern whose engine repair took
	// longest this commit (empty when nothing was repaired).
	SlowestPattern string
	SlowestRepair  time.Duration

	// Trace is the W3C traceparent of the commit's span ("" when the
	// commit was not sampled) — the key a slow-commit logger uses to pull
	// the full span tree out of the registry's tracer.
	Trace string
}

// WithMetrics directs the registry's instruments into reg instead of the
// process-wide obs.Default() — mainly for tests that need isolated
// metrics, and for servers exposing one registry per instance.
func WithMetrics(reg *obs.Registry) Option {
	return func(r *Registry) { r.obsReg = reg }
}

// WithCommitObserver installs fn, called synchronously after every
// committed drain with its per-stage timing breakdown. The callback runs
// inside the writer's critical section — keep it cheap (log, enqueue);
// blocking in it stalls the commit pipeline.
func WithCommitObserver(fn func(CommitTiming)) Option {
	return func(r *Registry) { r.commitObs = fn }
}

// TimingStats is the Stats().Timings block: JSON snapshots of the commit
// pipeline's histograms plus the subscription gauges. All durations are
// milliseconds.
type TimingStats struct {
	QueueWaitMS      obs.HistSnapshot `json:"queue_wait_ms"`
	DrainBatches     obs.HistSnapshot `json:"drain_batches"`
	EffectiveUpdates obs.HistSnapshot `json:"effective_updates"`
	ValidateMS       obs.HistSnapshot `json:"validate_ms"`
	NetworkMS        obs.HistSnapshot `json:"network_ms"`
	RepairMS         obs.HistSnapshot `json:"repair_ms"`
	JournalMS        obs.HistSnapshot `json:"journal_ms"`
	PublishMS        obs.HistSnapshot `json:"publish_ms"`
	TotalMS          obs.HistSnapshot `json:"total_ms"`
	// RepairByKindMS breaks the fan-out down by engine kind; kinds that
	// never repaired are omitted.
	RepairByKindMS map[string]obs.HistSnapshot `json:"repair_by_kind_ms,omitempty"`
	// SubscriptionsActive and MailboxHighWater are the live SSE-side
	// gauges: open subscriptions, and the deepest mailbox ever seen.
	SubscriptionsActive int64 `json:"subscriptions_active"`
	MailboxHighWater    int64 `json:"mailbox_high_water"`
}

// timingStats snapshots the instruments for Stats().
func (m *metrics) timingStats() *TimingStats {
	ts := &TimingStats{
		QueueWaitMS:         m.queueWait.Snapshot(),
		DrainBatches:        m.drainSize.Snapshot(),
		EffectiveUpdates:    m.drainUps.Snapshot(),
		ValidateMS:          m.validate.Snapshot(),
		NetworkMS:           m.network.Snapshot(),
		RepairMS:            m.repair.Snapshot(),
		JournalMS:           m.journal.Snapshot(),
		PublishMS:           m.publish.Snapshot(),
		TotalMS:             m.total.Snapshot(),
		SubscriptionsActive: m.subsActive.Value(),
		MailboxHighWater:    m.mailboxHW.Value(),
	}
	for k, h := range m.repairKind {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if ts.RepairByKindMS == nil {
			ts.RepairByKindMS = make(map[string]obs.HistSnapshot, len(m.repairKind))
		}
		ts.RepairByKindMS[string(k)] = s
	}
	return ts
}

// CommitStageSums reads the cumulative per-stage commit time out of reg —
// the summary gpbench emits as commit_stage_ms next to each figure's
// elapsed time. Stages with no observations are omitted; "total" carries
// the whole-commit histogram's sum.
func CommitStageSums(reg *obs.Registry) map[string]float64 {
	out := make(map[string]float64, len(CommitStages)+1)
	for _, s := range CommitStages {
		snap := reg.Histogram(MetricCommitStage, "", nil, obs.L("stage", s)).Snapshot()
		if snap.Count > 0 {
			out[s] = snap.Sum
		}
	}
	if snap := reg.Histogram(MetricCommitTotal, "", nil).Snapshot(); snap.Count > 0 {
		out["total"] = snap.Sum
	}
	return out
}
