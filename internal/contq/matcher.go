package contq

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpm/internal/gdn"
	"gpm/internal/graph"
	"gpm/internal/incbsim"
	"gpm/internal/incsim"
	"gpm/internal/iso"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// matcher adapts one engine kind to the registry: apply repairs the
// engine's match against base ⊕ ups — reading the shared canonical graph
// through the engine's private update overlay — and reports the visible
// ΔM; result returns the current match as a shared immutable snapshot.
// After apply returns, the engine has discarded its overlay diff, so the
// registry must commit the same updates to the canonical graph before the
// next apply (the shared-storage protocol). apply calls are serialized by
// the registry's writer lock (one in flight per matcher) but run
// concurrently with result on other goroutines, so every matcher must
// support that overlap. release frees any shared evaluation-network state
// behind the matcher (a no-op for private engines) and is called exactly
// once, under the writer lock, when the pattern leaves the registry.
type matcher interface {
	apply(ups []graph.Update) rel.Delta
	result() rel.Relation
	release()
}

// newMatcher builds the engine for a kind over the shared base view. No
// graph replica is allocated: per-pattern memory is the engine's auxiliary
// state plus an empty O(|ΔG|-per-batch) overlay.
func newMatcher(kind Kind, p *pattern.Pattern, base graph.View, workers int) (matcher, error) {
	switch kind {
	case KindSim:
		eng, err := incsim.NewShared(p, base, incsim.WithWorkers(workers))
		if err != nil {
			// A sim engine only rejects patterns that do not fit the kind.
			return nil, fmt.Errorf("%w: %w", ErrBadKind, err)
		}
		return simMatcher{eng}, nil
	case KindBSim:
		eng, err := incbsim.NewShared(p, base, incbsim.WithWorkers(workers))
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadKind, err)
		}
		return bsimMatcher{eng}, nil
	case KindIso:
		if !p.IsNormal() {
			return nil, fmt.Errorf("%w: iso patterns must be normal", ErrBadKind)
		}
		if p.HasColors() {
			return nil, fmt.Errorf("%w: iso patterns cannot be colored", ErrBadKind)
		}
		return newIsoMatcher(p, base), nil
	default:
		return nil, fmt.Errorf("%w: unknown engine kind %q", ErrBadKind, kind)
	}
}

// simMatcher backs a normal pattern with incremental graph simulation.
type simMatcher struct{ eng *incsim.Engine }

func (m simMatcher) apply(ups []graph.Update) rel.Delta {
	_, d := m.eng.BatchDelta(ups)
	return d
}

func (m simMatcher) result() rel.Relation { return m.eng.Result() }

func (m simMatcher) release() {}

// bsimMatcher backs a b-pattern with incremental bounded simulation.
type bsimMatcher struct{ eng *incbsim.Engine }

func (m bsimMatcher) apply(ups []graph.Update) rel.Delta {
	return m.eng.BatchDelta(ups)
}

func (m bsimMatcher) result() rel.Relation { return m.eng.Result() }

func (m bsimMatcher) release() {}

// isoMatcher backs a normal pattern with incremental subgraph isomorphism.
// The relation view is the union of embeddings projected to (u, v) pairs,
// maintained by reference counting: a pair appears when its first
// embedding does and vanishes with its last. The iso engine has no
// internal synchronization, so the adapter serializes apply with its own
// lock; result reads an always-present atomic snapshot refreshed at the
// end of each changing batch, so readers never block behind a repair (the
// contract the other engines implement internally).
type isoMatcher struct {
	mu   sync.Mutex
	eng  *iso.Engine
	np   int
	ref  map[rel.Pair]int
	snap atomic.Pointer[rel.Relation]
}

func newIsoMatcher(p *pattern.Pattern, base graph.View) *isoMatcher {
	m := &isoMatcher{eng: iso.NewEngineShared(p, base), np: p.NumNodes(), ref: make(map[rel.Pair]int)}
	for _, em := range m.eng.Embeddings() {
		for u, v := range em {
			m.ref[rel.Pair{U: u, V: v}]++
		}
	}
	m.storeSnapshot()
	return m
}

// storeSnapshot publishes the current refcounted relation. Callers must
// hold m.mu (or be the constructor).
func (m *isoMatcher) storeSnapshot() {
	r := rel.NewRelation(m.np)
	for pr := range m.ref {
		r[pr.U].Add(pr.V)
	}
	m.snap.Store(&r)
}

func (m *isoMatcher) apply(ups []graph.Update) rel.Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Record each touched pair's refcount at first touch; comparing against
	// the final count below yields the net delta with intra-batch
	// cancellation (a pair dropped and re-established emits nothing).
	before := make(map[rel.Pair]int)
	touch := func(em iso.Embedding, delta int) {
		for u, v := range em {
			pr := rel.Pair{U: u, V: v}
			if _, seen := before[pr]; !seen {
				before[pr] = m.ref[pr]
			}
			m.ref[pr] += delta
			if m.ref[pr] == 0 {
				delete(m.ref, pr)
			}
		}
	}
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			_, added := m.eng.InsertDelta(up.From, up.To)
			for _, em := range added {
				touch(em, 1)
			}
		} else {
			_, removed := m.eng.DeleteDelta(up.From, up.To)
			for _, em := range removed {
				touch(em, -1)
			}
		}
	}
	// End of batch: discard the engine's overlay diff (the registry commits
	// the same updates to the canonical graph once all engines return).
	m.eng.Commit()
	var d rel.Delta
	for pr, b := range before {
		now := m.ref[pr]
		switch {
		case b == 0 && now > 0:
			d.Added = append(d.Added, pr)
		case b > 0 && now == 0:
			d.Removed = append(d.Removed, pr)
		}
	}
	if !d.Empty() {
		m.storeSnapshot()
	}
	d.Sort()
	return d
}

func (m *isoMatcher) result() rel.Relation { return *m.snap.Load() }

func (m *isoMatcher) release() {}

// netMatcher backs a sim/bsim pattern with its handle into the shared
// evaluation network (internal/gdn). The registry repairs the network once
// per commit (Registry.commit calls net.Apply before the matcher fan-out),
// so apply just reports the handle's cached per-commit delta, remapped into
// the pattern's own node numbering; ups is ignored — the network already
// consumed the same batch. A handle whose shared join broke panics inside
// apply, which is exactly the per-pattern eviction signal the registry's
// fan-out recovery expects.
type netMatcher struct{ h *gdn.Handle }

func (m netMatcher) apply(ups []graph.Update) rel.Delta { return m.h.Delta() }

func (m netMatcher) result() rel.Relation { return m.h.Result() }

func (m netMatcher) release() { m.h.Release() }
