package simulation

import (
	"testing"

	"gpm/internal/fixtures"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func TestMaximumSimpleChain(t *testing.T) {
	// Pattern a→b over graph a0→b0, a1→b1, a2 (no child).
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	a1 := g.AddNode(graph.NewTuple("label", `"a"`))
	b1 := g.AddNode(graph.NewTuple("label", `"b"`))
	a2 := g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddEdge(a0, b0)
	g.AddEdge(a1, b1)

	r := Maximum(p, g)
	if !r[a].Has(a0) || !r[a].Has(a1) || r[a].Has(a2) {
		t.Fatalf("sim(a) = %v", r[a])
	}
	if !r[b].Has(b0) || !r[b].Has(b1) {
		t.Fatalf("sim(b) = %v", r[b])
	}
}

func TestMaximumEmptyWhenNodeUnmatched(t *testing.T) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	c := p.AddNode(pattern.Label("missing"))
	p.AddEdge(a, c, 1)

	g := graph.New()
	g.AddNode(graph.NewTuple("label", `"a"`))
	r := Maximum(p, g)
	if !r.Empty() {
		t.Fatalf("match should be empty, got %v", r)
	}
}

func TestMaximumCyclePattern(t *testing.T) {
	// Cyclic pattern a⇄b; graph has a matching 2-cycle and a dead-end pair.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)
	p.AddEdge(b, a, 1)

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	a1 := g.AddNode(graph.NewTuple("label", `"a"`))
	b1 := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(a0, b0)
	g.AddEdge(b0, a0)
	g.AddEdge(a1, b1) // b1 has no edge back: neither a1 nor b1 matches

	r := Maximum(p, g)
	if !r[a].Has(a0) || !r[b].Has(b0) {
		t.Fatalf("cycle nodes should match: %v", r)
	}
	if r[a].Has(a1) || r[b].Has(b1) {
		t.Fatalf("dead-end nodes should not match: %v", r)
	}
}

func TestMaximumIsMaximal(t *testing.T) {
	// Proposition 2.1: the result contains every valid simulation pair.
	p, g, _ := fixtures.TeamFormation()
	np := p.Normalized() // bound semantics dropped; structure retained
	r := Maximum(np, g)
	if !Holds(np, g, r) {
		t.Fatal("Maximum result is not a simulation")
	}
	// Adding any non-member pair must break the simulation property.
	for u := 0; u < np.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if r.Empty() {
				continue
			}
			if r[u].Has(v) || !np.Pred(u).Eval(g.Attrs(v)) {
				continue
			}
			r2 := r.Clone()
			r2[u].Add(v)
			if Holds(np, g, r2) {
				t.Fatalf("pair (%d,%d) could be added: Maximum was not maximal", u, v)
			}
		}
	}
}

func TestMaximumMatchesNaiveOnRandomInputs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := generator.RandomGraph(14, 28, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 1, seed+1000)
		got := Maximum(p, g)
		want := NaiveMaximum(p, g)
		if !got.Equal(want) {
			t.Fatalf("seed %d: Maximum=%v NaiveMaximum=%v", seed, got, want)
		}
		if !Holds(p, g, got) {
			t.Fatalf("seed %d: result is not a simulation", seed)
		}
	}
}

func TestMaximumSelfLoopPattern(t *testing.T) {
	// Fig. 6 family: self-loop pattern matches exactly the nodes on cycles.
	p, g, ups := fixtures.SimWitness(5)
	if !Maximum(p, g).Empty() {
		t.Fatal("chains contain no cycle: match should be empty")
	}
	g.Apply(ups.E1)
	if !Maximum(p, g).Empty() {
		t.Fatal("still acyclic after e1: match should be empty")
	}
	g.Apply(ups.E2)
	r := Maximum(p, g)
	if r.Size() != 10 {
		t.Fatalf("after closing the cycle: %d matches, want 10", r.Size())
	}
}

func TestHoldsRejectsBogusRelation(t *testing.T) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)
	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb := g.AddNode(graph.NewTuple("label", `"b"`))
	// No edge in g: {a→ga, b→gb} is not a simulation.
	r := Maximum(p, g)
	if !r.Empty() {
		t.Fatal("expected empty max match")
	}
	bogus := r.Clone()
	bogus[a].Add(ga)
	bogus[b].Add(gb)
	if Holds(p, g, bogus) {
		t.Fatal("Holds accepted a non-simulation")
	}
}
