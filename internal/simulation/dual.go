package simulation

// Dual simulation (Ma et al. 2011), the topology-preserving variant the
// paper's Section 2.3 remark points to: a match must satisfy both the child
// condition of plain simulation and the symmetric parent condition — for
// each pattern edge (u', u) and match v of u there must be a parent v' of v
// matching u'. Dual simulation prunes the "dangling ancestors" plain
// simulation admits and approximates isomorphic subgraphs more closely.

import (
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// DualMaximum computes the unique maximum dual-simulation match for a
// normal pattern, by the same counting fixpoint as Maximum extended with
// parent-support counters.
func DualMaximum(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	np, n := p.NumNodes(), g.NumNodes()
	sim := rel.NewRelation(np)
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		needChild := p.OutDegree(u) > 0
		needParent := len(p.In(u)) > 0
		for v := 0; v < n; v++ {
			if needChild && g.OutDegree(v) == 0 {
				continue
			}
			if needParent && g.InDegree(v) == 0 {
				continue
			}
			if pred.Eval(g.Attrs(v)) {
				sim[u].Add(v)
			}
		}
		if sim[u].Len() == 0 {
			return rel.NewRelation(np)
		}
	}

	edges := p.Edges()
	// fwd[e][v]: children of v matching the target (v a source match);
	// bwd[e][v]: parents of v matching the source (v a target match).
	fwd := make([][]int32, len(edges))
	bwd := make([][]int32, len(edges))
	type removal struct {
		u int
		v graph.NodeID
	}
	var queue []removal
	removeMatch := func(u int, v graph.NodeID) {
		if sim[u].Remove(v) {
			queue = append(queue, removal{u, v})
		}
	}
	for e, pe := range edges {
		fwd[e] = make([]int32, n)
		bwd[e] = make([]int32, n)
		for v := range sim[pe.From] {
			c := int32(0)
			for _, w := range g.Out(v) {
				if sim[pe.To].Has(w) {
					c++
				}
			}
			fwd[e][v] = c
		}
		for v := range sim[pe.To] {
			c := int32(0)
			for _, w := range g.In(v) {
				if sim[pe.From].Has(w) {
					c++
				}
			}
			bwd[e][v] = c
		}
	}
	for e, pe := range edges {
		for v := range sim[pe.From] {
			if fwd[e][v] == 0 {
				removeMatch(pe.From, v)
			}
		}
		for v := range sim[pe.To] {
			if bwd[e][v] == 0 {
				removeMatch(pe.To, v)
			}
		}
	}

	outEdges := make([][]int, np)
	inEdges := make([][]int, np)
	for e, pe := range edges {
		outEdges[pe.From] = append(outEdges[pe.From], e)
		inEdges[pe.To] = append(inEdges[pe.To], e)
	}
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Removing a target match starves the forward support of its
		// parents; removing a source match starves the backward support of
		// its children.
		for _, e := range inEdges[rm.u] {
			src := edges[e].From
			for _, w := range g.In(rm.v) {
				if !sim[src].Has(w) {
					continue
				}
				fwd[e][w]--
				if fwd[e][w] == 0 {
					removeMatch(src, w)
				}
			}
		}
		for _, e := range outEdges[rm.u] {
			tgt := edges[e].To
			for _, w := range g.Out(rm.v) {
				if !sim[tgt].Has(w) {
					continue
				}
				bwd[e][w]--
				if bwd[e][w] == 0 {
					removeMatch(tgt, w)
				}
			}
		}
	}

	if !sim.Total() {
		return rel.NewRelation(np)
	}
	return sim
}

// DualHolds verifies both directions of the dual-simulation conditions.
func DualHolds(p *pattern.Pattern, g *graph.Graph, r rel.Relation) bool {
	if !Holds(p, g, r) {
		return false
	}
	for u := range r {
		for v := range r[u] {
			for _, u1 := range p.In(u) {
				found := false
				for _, w := range g.In(v) {
					if r[u1].Has(w) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}
