package simulation

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func TestDualSubsetOfSimulation(t *testing.T) {
	// Dual simulation refines plain simulation: every dual match pair is a
	// simulation match pair.
	for seed := int64(0); seed < 30; seed++ {
		g := generator.RandomGraph(14, 28, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 1, seed+100)
		dual := DualMaximum(p, g)
		plain := Maximum(p, g)
		for u := range dual {
			for v := range dual[u] {
				if !plain[u].Has(v) {
					t.Fatalf("seed %d: dual pair (%d,%d) not in simulation", seed, u, v)
				}
			}
		}
		if !DualHolds(p, g, dual) {
			t.Fatalf("seed %d: result is not a dual simulation", seed)
		}
	}
}

func TestDualPrunesDanglingAncestors(t *testing.T) {
	// Pattern a→b. Graph: a0→b0 and a1→b0. Plain simulation matches both
	// a-nodes and b0; dual simulation does too (b0 has parents). Now a
	// childless b1: never a match for b under either. The dual-only case:
	// b2 with NO parent matching a — reachable only from a c-node.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	c0 := g.AddNode(graph.NewTuple("label", `"c"`))
	b2 := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(a0, b0)
	g.AddEdge(c0, b2) // b2's only parent is a c-node

	plain := Maximum(p, g)
	dual := DualMaximum(p, g)
	if !plain[b].Has(b2) {
		t.Fatal("plain simulation should admit b2 (no parent condition)")
	}
	if dual[b].Has(b2) {
		t.Fatal("dual simulation must prune b2 (no matching parent)")
	}
	if !dual[a].Has(a0) || !dual[b].Has(b0) {
		t.Fatalf("dual lost the witness: %v", dual)
	}
}

func TestDualMaximumIsMaximal(t *testing.T) {
	for seed := int64(50); seed < 70; seed++ {
		g := generator.RandomGraph(12, 22, 2, seed)
		p := generator.RandomPattern(3, 4, 2, 1, seed+100)
		dual := DualMaximum(p, g)
		if dual.Empty() {
			continue
		}
		for u := 0; u < p.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if dual[u].Has(v) || !p.Pred(u).Eval(g.Attrs(v)) {
					continue
				}
				r2 := dual.Clone()
				r2[u].Add(v)
				if DualHolds(p, g, r2) {
					t.Fatalf("seed %d: (%d,%d) could be added — not maximal", seed, u, v)
				}
			}
		}
	}
}

func TestDualEmptyWhenNoParentSupport(t *testing.T) {
	// Cycle pattern over an acyclic graph: parents cannot be supplied.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	p.AddEdge(a, a, 1)
	g := graph.New()
	g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddEdge(0, 1)
	if r := DualMaximum(p, g); !r.Empty() {
		t.Fatalf("want empty: %v", r)
	}
}
