// Package simulation implements graph simulation (Milner 1989) for normal
// patterns: the batch algorithm Matchs the paper benchmarks against, a
// counting-based maximum-simulation fixpoint in the style of Henzinger,
// Henzinger & Kopke (FOCS 1995), running in O((|V|+|Vp|)(|E|+|Ep|)) time.
//
// Graph simulation is the special case of bounded simulation on normal
// patterns (every edge bound 1); this package is both a baseline in its own
// right and the engine the incremental bounded-simulation matcher runs over
// the pair graph (Proposition 6.1).
package simulation

import (
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Maximum computes the unique maximum simulation match Msim(P, G) for a
// normal pattern P. Following the paper's convention, if some pattern node
// has no match (P does not simulate into G) the returned relation is empty.
// Bounds on pattern edges are ignored (treated as 1); callers wanting
// bounded semantics should use the core package.
func Maximum(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	np, n := p.NumNodes(), g.NumNodes()
	sim := rel.NewRelation(np)

	// Initialization: candidates satisfying the predicate, with the
	// out-degree guard of algorithm Match (line 6).
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		needChild := p.OutDegree(u) > 0
		for v := 0; v < n; v++ {
			if needChild && g.OutDegree(v) == 0 {
				continue
			}
			if pred.Eval(g.Attrs(v)) {
				sim[u].Add(v)
			}
		}
		if sim[u].Len() == 0 {
			return rel.NewRelation(np)
		}
	}

	edges := p.Edges()
	// cnt[e][v] = number of children of v that are current matches of the
	// target of pattern edge e, for v a current match of the source.
	cnt := make([][]int32, len(edges))
	type removal struct {
		u int
		v graph.NodeID
	}
	var queue []removal
	removeMatch := func(u int, v graph.NodeID) {
		if sim[u].Remove(v) {
			queue = append(queue, removal{u, v})
		}
	}
	// All counters are initialized from the same snapshot of the candidate
	// sets before any removal is applied; otherwise a removal during
	// initialization would be double-counted (once by the shrunken set, once
	// by the queue).
	for e, pe := range edges {
		cnt[e] = make([]int32, n)
		for v := range sim[pe.From] {
			c := int32(0)
			for _, w := range g.Out(v) {
				if sim[pe.To].Has(w) {
					c++
				}
			}
			cnt[e][v] = c
		}
	}
	for e, pe := range edges {
		for v := range sim[pe.From] {
			if cnt[e][v] == 0 {
				removeMatch(pe.From, v)
			}
		}
	}

	// Refinement: each removal of (u', v') decrements the support counters of
	// v's parents for every pattern edge into u'.
	inEdges := make([][]int, np) // pattern edges indexed by target node
	for e, pe := range edges {
		inEdges[pe.To] = append(inEdges[pe.To], e)
	}
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range inEdges[rm.u] {
			src := edges[e].From
			for _, v := range g.In(rm.v) {
				if !sim[src].Has(v) {
					continue
				}
				cnt[e][v]--
				if cnt[e][v] == 0 {
					removeMatch(src, v)
				}
			}
		}
	}

	if !sim.Total() {
		return rel.NewRelation(np)
	}
	return sim
}

// NaiveMaximum computes the maximum simulation by iterating the definition
// to a fixpoint. It is the reference implementation used by tests; it runs
// in O(|Vp||V| · |Ep||E|) time.
func NaiveMaximum(p *pattern.Pattern, g *graph.Graph) rel.Relation {
	np, n := p.NumNodes(), g.NumNodes()
	sim := rel.NewRelation(np)
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		for v := 0; v < n; v++ {
			if pred.Eval(g.Attrs(v)) {
				sim[u].Add(v)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < np; u++ {
			for _, v := range sim[u].Sorted() {
				ok := true
				for _, u2 := range p.Out(u) {
					found := false
					for _, w := range g.Out(v) {
						if sim[u2].Has(w) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					sim[u].Remove(v)
					changed = true
				}
			}
		}
	}
	if !sim.Total() {
		return rel.NewRelation(np)
	}
	return sim
}

// Holds verifies that r is a simulation of P in G: every pair satisfies the
// predicate and the child condition, and every pattern node is matched.
// It is used by property tests; an empty relation trivially holds.
func Holds(p *pattern.Pattern, g *graph.Graph, r rel.Relation) bool {
	if r.Empty() {
		return true
	}
	if !r.Total() {
		return false
	}
	for u := range r {
		for v := range r[u] {
			if !p.Pred(u).Eval(g.Attrs(v)) {
				return false
			}
			for _, u2 := range p.Out(u) {
				found := false
				for _, w := range g.Out(v) {
					if r[u2].Has(w) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}
