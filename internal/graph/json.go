package graph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The JSON wire format of the v1 HTTP API. It carries exactly the
// information of the text format, as one document instead of a line
// protocol:
//
//	{
//	  "nodes": [{"id": 0, "attrs": {"name": "Ann", "contacts": 12}}, ...],
//	  "edges": [{"from": 0, "to": 1, "label": "friend"}, ...]
//	}
//
// Attribute values keep their dynamic kind across a round trip: strings
// are JSON strings, ints are JSON integers, and floats always carry a
// decimal point or exponent (5.0 marshals as "5.0", never "5") so they do
// not read back as ints. Node ids must be dense 0..N-1, in any order.
// Marshaling is deterministic: nodes ascend by id, attribute keys sort,
// edges sort lexicographically — so equal graphs produce equal bytes.

// MarshalJSON renders v as a JSON string or number, kind preserved: ints
// have no fractional syntax, floats always do. Non-finite floats have no
// JSON representation and error.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindString:
		return json.Marshal(v.str)
	case KindInt:
		return []byte(strconv.FormatInt(v.num, 10)), nil
	default:
		if math.IsNaN(v.flt) || math.IsInf(v.flt, 0) {
			return nil, fmt.Errorf("graph: float attribute %v has no JSON representation", v.flt)
		}
		s := strconv.FormatFloat(v.flt, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return []byte(s), nil
	}
}

// UnmarshalJSON parses a JSON string or number into a Value, mapping
// integer syntax to KindInt and fractional/exponent syntax to KindFloat.
func (v *Value) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) == 0 {
		return fmt.Errorf("graph: empty attribute value")
	}
	if b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		*v = String(s)
		return nil
	}
	var n json.Number
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("graph: attribute value must be a JSON string or number: %w", err)
	}
	s := n.String()
	if !strings.ContainsAny(s, ".eE") {
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			*v = Int(i)
			return nil
		}
		// Out of int64 range: fall through to float.
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("graph: bad numeric attribute %q: %w", s, err)
	}
	*v = Float(f)
	return nil
}

// nodeJSON is one node of the wire document.
type nodeJSON struct {
	ID    int   `json:"id"`
	Attrs Tuple `json:"attrs,omitempty"`
}

// edgeJSON is one edge of the wire document.
type edgeJSON struct {
	From  NodeID `json:"from"`
	To    NodeID `json:"to"`
	Label string `json:"label,omitempty"`
}

// graphJSON is the wire document.
type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

// MarshalJSON renders g as the JSON wire document (deterministically:
// nodes by id, sorted attribute keys, sorted edges).
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := graphJSON{
		Nodes: make([]nodeJSON, 0, g.NumNodes()),
		Edges: make([]edgeJSON, 0, g.NumEdges()),
	}
	for v := 0; v < g.NumNodes(); v++ {
		n := nodeJSON{ID: v}
		if len(g.attrs[v]) > 0 {
			n.Attrs = g.attrs[v]
		}
		doc.Nodes = append(doc.Nodes, n)
	}
	for _, e := range g.EdgeList() {
		doc.Edges = append(doc.Edges, edgeJSON{From: e[0], To: e[1], Label: g.EdgeLabel(e[0], e[1])})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON replaces g with the graph described by the wire document,
// enforcing the same invariants as the text reader: dense node ids
// (0..N-1, any order, no duplicates) and edges between declared nodes.
// Duplicate edges collapse, as in the text format.
func (g *Graph) UnmarshalJSON(b []byte) error {
	var doc graphJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("graph: bad JSON document: %w", err)
	}
	fresh := NewWithCapacity(len(doc.Nodes), len(doc.Edges))
	byID := make([]Tuple, len(doc.Nodes))
	seen := make([]bool, len(doc.Nodes))
	for _, n := range doc.Nodes {
		if n.ID < 0 || n.ID >= len(doc.Nodes) {
			return fmt.Errorf("graph: node id %d out of dense range [0,%d)", n.ID, len(doc.Nodes))
		}
		if seen[n.ID] {
			return fmt.Errorf("graph: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		byID[n.ID] = n.Attrs
	}
	for _, t := range byID {
		fresh.AddNode(t)
	}
	for _, e := range doc.Edges {
		if _, err := fresh.AddEdge(e.From, e.To); err != nil {
			return err
		}
		if e.Label != "" {
			if err := fresh.SetEdgeLabel(e.From, e.To, e.Label); err != nil {
				return err
			}
		}
	}
	*g = *fresh
	return nil
}

// updateJSON is one unit update of the wire format:
// {"op": "insert"|"delete", "from": 3, "to": 7}.
type updateJSON struct {
	Op   string `json:"op"`
	From NodeID `json:"from"`
	To   NodeID `json:"to"`
}

// MarshalJSON renders u in the update wire format.
func (u Update) MarshalJSON() ([]byte, error) {
	op := "insert"
	if u.Op == DeleteEdge {
		op = "delete"
	}
	return json.Marshal(updateJSON{Op: op, From: u.From, To: u.To})
}

// UnmarshalJSON parses the update wire format, rejecting unknown ops and
// negative node ids (the same checks as the text reader).
func (u *Update) UnmarshalJSON(b []byte) error {
	var doc updateJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("graph: bad update document: %w", err)
	}
	var op Op
	switch doc.Op {
	case "insert":
		op = InsertEdge
	case "delete":
		op = DeleteEdge
	default:
		return fmt.Errorf("graph: update has unknown op %q", doc.Op)
	}
	if doc.From < 0 || doc.To < 0 {
		return fmt.Errorf("graph: update (%d,%d) has a negative node id", doc.From, doc.To)
	}
	*u = Update{Op: op, From: doc.From, To: doc.To}
	return nil
}
