package graph

import "fmt"

// Overlay is a Mutable view over a shared read-only base: edge insertions
// and deletions land in a private diff of size O(|ΔG|) while every read
// sees base ⊕ diff. It is the mechanism that lets an incremental engine
// run its repair algorithm — which interleaves reads of old and new graph
// states with the mutations themselves — against a canonical graph it does
// not own: the engine writes into its overlay during the repair, and once
// the owner commits the same updates to the base, Reset discards the diff.
//
// Contract with the base owner: after every repair call that mutated the
// overlay, the owner must apply exactly those effective updates to the
// base before the next repair (contq's Registry commits the batch right
// after the engine fan-out). The overlay itself is not safe for concurrent
// mutation; concurrent reads are safe while no one is writing to either
// the overlay or the base.
type Overlay struct {
	base    View
	added   map[[2]NodeID]struct{}
	removed map[[2]NodeID]struct{}
	// unlabeled records base edges removed at some point in this
	// generation: like Graph.RemoveEdge, removal drops the label, so a
	// re-added edge comes back unlabeled even though reads otherwise fall
	// through to the base.
	unlabeled map[[2]NodeID]struct{}
	// out/in memoize the adjusted adjacency of nodes the diff touches;
	// untouched nodes read straight through to the base. Slices are built
	// once per touched node (copy of the base slice) and patched in place.
	out map[NodeID][]NodeID
	in  map[NodeID][]NodeID
	dm  int // NumEdges delta
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base View) *Overlay {
	return &Overlay{
		base:      base,
		added:     make(map[[2]NodeID]struct{}),
		removed:   make(map[[2]NodeID]struct{}),
		unlabeled: make(map[[2]NodeID]struct{}),
		out:       make(map[NodeID][]NodeID),
		in:        make(map[NodeID][]NodeID),
	}
}

// Base returns the view the overlay reads through.
func (o *Overlay) Base() View { return o.base }

// Pending returns the number of edge changes the diff currently holds.
func (o *Overlay) Pending() int { return len(o.added) + len(o.removed) }

// Reset discards the diff: the overlay becomes a transparent view of the
// base again. Call it after the base owner has committed the updates the
// overlay absorbed.
func (o *Overlay) Reset() {
	clear(o.added)
	clear(o.removed)
	clear(o.unlabeled)
	clear(o.out)
	clear(o.in)
	o.dm = 0
}

// NumNodes returns |V| (nodes are append-only and owned by the base).
func (o *Overlay) NumNodes() int { return o.base.NumNodes() }

// NumEdges returns |E| of base ⊕ diff.
func (o *Overlay) NumEdges() int { return o.base.NumEdges() + o.dm }

// HasNode reports whether v is a valid node identifier.
func (o *Overlay) HasNode(v NodeID) bool { return o.base.HasNode(v) }

// Attrs returns the attribute tuple of node v.
func (o *Overlay) Attrs(v NodeID) Tuple { return o.base.Attrs(v) }

// HasEdge reports whether (u, v) is present in base ⊕ diff.
func (o *Overlay) HasEdge(u, v NodeID) bool {
	key := [2]NodeID{u, v}
	if _, ok := o.added[key]; ok {
		return true
	}
	if _, ok := o.removed[key]; ok {
		return false
	}
	return o.base.HasEdge(u, v)
}

// EdgeLabel returns the label of (u, v): overlay-added edges are
// unlabeled, and an edge that was removed in this generation — even one
// later re-added — masks the base's label, mirroring Graph.RemoveEdge
// dropping labels.
func (o *Overlay) EdgeLabel(u, v NodeID) string {
	key := [2]NodeID{u, v}
	if _, ok := o.added[key]; ok {
		return ""
	}
	if _, ok := o.removed[key]; ok {
		return ""
	}
	if _, ok := o.unlabeled[key]; ok {
		return ""
	}
	return o.base.EdgeLabel(u, v)
}

// outFor returns the memoized out-adjacency of v, materializing it from
// the base on first touch.
func (o *Overlay) outFor(v NodeID) []NodeID {
	if s, ok := o.out[v]; ok {
		return s
	}
	s := append([]NodeID(nil), o.base.Out(v)...)
	o.out[v] = s
	return s
}

func (o *Overlay) inFor(v NodeID) []NodeID {
	if s, ok := o.in[v]; ok {
		return s
	}
	s := append([]NodeID(nil), o.base.In(v)...)
	o.in[v] = s
	return s
}

// Out returns the out-neighbours of v in base ⊕ diff. The slice is owned
// by the overlay (or the base when v is untouched): do not mutate or
// retain it across updates.
func (o *Overlay) Out(v NodeID) []NodeID {
	if s, ok := o.out[v]; ok {
		return s
	}
	return o.base.Out(v)
}

// In returns the in-neighbours of v in base ⊕ diff. Same ownership rules
// as Out.
func (o *Overlay) In(v NodeID) []NodeID {
	if s, ok := o.in[v]; ok {
		return s
	}
	return o.base.In(v)
}

// OutDegree returns the number of children of v.
func (o *Overlay) OutDegree(v NodeID) int { return len(o.Out(v)) }

// InDegree returns the number of parents of v.
func (o *Overlay) InDegree(v NodeID) int { return len(o.In(v)) }

// Degree returns in-degree + out-degree of v.
func (o *Overlay) Degree(v NodeID) int { return len(o.Out(v)) + len(o.In(v)) }

// AddEdge inserts (u, v) into the diff, mirroring Graph.AddEdge semantics.
func (o *Overlay) AddEdge(u, v NodeID) (added bool, err error) {
	if !o.HasNode(u) || !o.HasNode(v) {
		return false, fmt.Errorf("graph: overlay AddEdge(%d, %d): node out of range [0, %d)", u, v, o.NumNodes())
	}
	if o.HasEdge(u, v) {
		return false, nil
	}
	key := [2]NodeID{u, v}
	if _, wasRemoved := o.removed[key]; wasRemoved {
		delete(o.removed, key)
	} else {
		o.added[key] = struct{}{}
	}
	o.out[u] = append(o.outFor(u), v)
	o.in[v] = append(o.inFor(v), u)
	o.dm++
	return true, nil
}

// RemoveEdge deletes (u, v) from the diff, reporting whether it existed in
// base ⊕ diff.
func (o *Overlay) RemoveEdge(u, v NodeID) bool {
	if !o.HasEdge(u, v) {
		return false
	}
	key := [2]NodeID{u, v}
	if _, wasAdded := o.added[key]; wasAdded {
		delete(o.added, key)
	} else {
		o.removed[key] = struct{}{}
		o.unlabeled[key] = struct{}{}
	}
	o.out[u] = removeOne(o.outFor(u), v)
	o.in[v] = removeOne(o.inFor(v), u)
	o.dm--
	return true
}

// Apply executes a single update, mirroring Graph.Apply.
func (o *Overlay) Apply(u Update) (changed bool, err error) {
	switch u.Op {
	case InsertEdge:
		return o.AddEdge(u.From, u.To)
	case DeleteEdge:
		return o.RemoveEdge(u.From, u.To), nil
	default:
		return false, fmt.Errorf("graph: unknown update op %d", u.Op)
	}
}

var _ Mutable = (*Overlay)(nil)
