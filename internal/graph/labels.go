package graph

import "fmt"

// Edge labels ("colors") model typed relationships — the extension the
// paper's Section 2.2 remark sketches: pattern edges can then require that
// a relationship chain in the data graph carries one relationship type
// throughout (e.g., a chain of "friend" edges, not a mix of "friend" and
// "cites"). Unlabeled edges carry the empty label.

// SetEdgeLabel attaches a label to the existing edge (u, v).
func (g *Graph) SetEdgeLabel(u, v NodeID, label string) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: SetEdgeLabel(%d, %d): no such edge", u, v)
	}
	if g.elabels == nil {
		g.elabels = make(map[[2]NodeID]string)
	}
	if label == "" {
		delete(g.elabels, [2]NodeID{u, v})
	} else {
		g.elabels[[2]NodeID{u, v}] = label
	}
	return nil
}

// EdgeLabel returns the label of edge (u, v) ("" when unlabeled or absent).
func (g *Graph) EdgeLabel(u, v NodeID) string {
	return g.elabels[[2]NodeID{u, v}]
}

// AddLabeledEdge inserts the edge and sets its label in one step.
func (g *Graph) AddLabeledEdge(u, v NodeID, label string) (added bool, err error) {
	added, err = g.AddEdge(u, v)
	if err != nil {
		return false, err
	}
	return added, g.SetEdgeLabel(u, v, label)
}
