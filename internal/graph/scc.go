package graph

// SCC computes the strongly connected components of g with an iterative
// Tarjan algorithm. It returns comp, mapping each node to its component
// index, and the number of components. Component indices are in reverse
// topological order of the condensation (a component's index is greater than
// those of components it can reach... Tarjan emits components in reverse
// topological order, i.e. comp[u] >= comp[v] whenever there is a path u→v).
func (g *Graph) SCC() (comp []int, n int) {
	nv := g.NumNodes()
	comp = make([]int, nv)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, nv)
	lowlink := make([]int, nv)
	onStack := make([]bool, nv)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	next := 0

	// Explicit DFS stack: each frame tracks the node and the position in its
	// adjacency list.
	type frame struct {
		v  NodeID
		ai int
	}
	var dfs []frame
	for root := 0; root < nv; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.ai < len(g.out[v]) {
				w := g.out[v][f.ai]
				f.ai++
				if index[w] == -1 {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// Post-order for v.
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = n
					if w == v {
						break
					}
				}
				n++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
	return comp, n
}

// SCCSizes returns, for the given comp labeling, the size of each component.
func SCCSizes(comp []int, n int) []int {
	sizes := make([]int, n)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// NontrivialSCC reports, per component, whether it is nontrivial: it has at
// least two nodes, or consists of a single node with a self-loop.
func (g *Graph) NontrivialSCC(comp []int, n int) []bool {
	sizes := SCCSizes(comp, n)
	nt := make([]bool, n)
	for c, s := range sizes {
		if s >= 2 {
			nt[c] = true
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.HasEdge(v, v) {
			nt[comp[v]] = true
		}
	}
	return nt
}

// RankInfinite marks nodes whose topological rank is ∞ (Section 5.2).
const RankInfinite = int(^uint(0) >> 2)

// TopologicalRanks computes the topological rank r(v) of every node,
// following Section 5.2: r(v) = 0 if [v] is a trivial leaf SCC, r(v) = ∞ if v
// reaches a nontrivial SCC, and r(v) = max{1 + r(w) : edge [v]→[w]} otherwise.
func (g *Graph) TopologicalRanks() []int {
	comp, n := g.SCC()
	nt := g.NontrivialSCC(comp, n)
	// Condensation adjacency: component c's out-neighbour components.
	// Tarjan numbering is reverse-topological: edges go from higher comp
	// index to lower or equal (equal only within a component). So processing
	// components in increasing index order processes successors first.
	compRank := make([]int, n)
	for c := 0; c < n; c++ {
		if nt[c] {
			compRank[c] = RankInfinite
		}
	}
	// Gather per-component out-edges lazily while walking nodes grouped by
	// component. Build buckets first.
	buckets := make([][]NodeID, n)
	for v := 0; v < g.NumNodes(); v++ {
		c := comp[v]
		buckets[c] = append(buckets[c], v)
	}
	for c := 0; c < n; c++ {
		r := compRank[c]
		for _, v := range buckets[c] {
			for _, w := range g.out[v] {
				cw := comp[w]
				if cw == c {
					continue
				}
				rw := compRank[cw]
				if rw == RankInfinite {
					r = RankInfinite
				} else if r != RankInfinite && rw+1 > r {
					r = rw + 1
				}
			}
		}
		compRank[c] = r
	}
	ranks := make([]int, g.NumNodes())
	for v := range ranks {
		ranks[v] = compRank[comp[v]]
	}
	return ranks
}

// IsDAG reports whether the graph has no directed cycles (including
// self-loops).
func (g *Graph) IsDAG() bool {
	comp, n := g.SCC()
	for _, nt := range g.NontrivialSCC(comp, n) {
		if nt {
			return false
		}
	}
	return true
}

// TopoOrder returns a topological order of the nodes if the graph is a DAG
// (children after parents), and ok=false otherwise.
func (g *Graph) TopoOrder() (order []NodeID, ok bool) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for range g.in[v] {
			indeg[v]++
		}
	}
	queue := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]NodeID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == n
}
