package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format used by the CLI tools:
//
//	# comment
//	node 0 name="Ann" job="CTO"
//	node 1 name="Pat" job="DB"
//	edge 0 1
//
// Node ids must be declared densely starting at 0 (any order); attribute
// values follow ParseValue rules.

// maxLineBytes is the longest input line any text reader in this
// repository accepts — large enough for nodes with very long attribute
// values, shared so graph, update and pattern files all obey one limit.
const maxLineBytes = 16 * 1024 * 1024

// NewLineScanner returns a line scanner with the shared token limit used
// by every text reader (graph, update and pattern files). Callers outside
// this package (e.g. the pattern parser) use it so no reader is stuck at
// bufio.Scanner's 64 KB default.
func NewLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return sc
}

// Write serializes g in the text format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(bw, "node %d", v); err != nil {
			return err
		}
		t := g.attrs[v]
		for _, k := range t.Keys() {
			if _, err := fmt.Fprintf(bw, " %s=%s", k, t[k].Quote()); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	for _, e := range g.EdgeList() {
		if _, err := fmt.Fprintf(bw, "edge %d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := NewLineScanner(r)
	type nodeDecl struct {
		id    int
		attrs Tuple
	}
	var nodes []nodeDecl
	var edges [][2]int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: node needs an id", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			attrs := Tuple{}
			for _, kv := range fields[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					return nil, fmt.Errorf("graph: line %d: bad attribute %q", lineNo, kv)
				}
				attrs[kv[:eq]] = ParseValue(kv[eq+1:])
			}
			nodes = append(nodes, nodeDecl{id, attrs})
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs two endpoints", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", lineNo)
			}
			edges = append(edges, [2]int{u, v})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := NewWithCapacity(len(nodes), len(edges))
	byID := make([]Tuple, len(nodes))
	for _, nd := range nodes {
		if nd.id < 0 || nd.id >= len(nodes) {
			return nil, fmt.Errorf("graph: node id %d out of dense range [0,%d)", nd.id, len(nodes))
		}
		if byID[nd.id] != nil {
			return nil, fmt.Errorf("graph: duplicate node id %d", nd.id)
		}
		byID[nd.id] = nd.attrs
	}
	for _, t := range byID {
		g.AddNode(t)
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// splitFields splits on spaces but keeps quoted segments (containing spaces)
// intact within key="..." attributes.
func splitFields(line string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ' ' && !inQuote:
			if cur.Len() > 0 {
				fields = append(fields, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		fields = append(fields, cur.String())
	}
	return fields
}
