package graph

// Unreachable is the distance reported for unreachable node pairs. It is
// larger than any path length in any graph this library can hold.
const Unreachable = int(^uint(0) >> 2)

// Dir selects a traversal direction.
type Dir uint8

const (
	// Forward follows out-edges (descendants).
	Forward Dir = iota
	// Reverse follows in-edges (ancestors).
	Reverse
)

func (g *Graph) adj(d Dir, v NodeID) []NodeID {
	if d == Forward {
		return g.out[v]
	}
	return g.in[v]
}

// BFSFrom computes single-source shortest-path (hop) distances from src in
// direction d, writing them into dist, which must have length NumNodes().
// Entries for unreachable nodes are set to Unreachable.
func (g *Graph) BFSFrom(src NodeID, d Dir, dist []int) {
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		nd := dist[v] + 1
		for _, w := range g.adj(d, v) {
			if dist[w] == Unreachable {
				dist[w] = nd
				queue = append(queue, w)
			}
		}
	}
}

// BFSWithin visits every node within the given hop bound of src (excluding
// src itself unless it lies on a cycle back to itself — src is reported with
// distance 0 first), calling fn(node, dist). bound may be Unreachable for an
// unbounded traversal. Returning false stops the walk.
func (g *Graph) BFSWithin(src NodeID, d Dir, bound int, fn func(v NodeID, dist int) bool) {
	if bound < 0 {
		return
	}
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	if !fn(src, 0) {
		return
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		nd := dist[v] + 1
		if nd > bound {
			continue
		}
		for _, w := range g.adj(d, v) {
			if _, seen := dist[w]; !seen {
				dist[w] = nd
				if !fn(w, nd) {
					return
				}
				queue = append(queue, w)
			}
		}
	}
}

// Dist returns the hop distance from u to v, or Unreachable. It runs a BFS
// bounded by the target — convenient for tests and small graphs; algorithms
// use the distance oracles in internal/distance instead.
func (g *Graph) Dist(u, v NodeID) int {
	if u == v {
		return 0
	}
	found := Unreachable
	g.BFSWithin(u, Forward, Unreachable, func(w NodeID, d int) bool {
		if w == v {
			found = d
			return false
		}
		return true
	})
	return found
}

// ReachableWithin reports whether v is reachable from u by a path of length
// at least 1 and at most bound (use Unreachable for "any length"). Note the
// nonempty-path semantics of the paper: an edge (u, u) requirement maps to a
// cycle through u, not to the trivial empty path.
func (g *Graph) ReachableWithin(u, v NodeID, bound int) bool {
	if bound < 1 {
		return false
	}
	ok := false
	dist := map[NodeID]int{u: 0}
	queue := []NodeID{u}
	for len(queue) > 0 && !ok {
		x := queue[0]
		queue = queue[1:]
		nd := dist[x] + 1
		if nd > bound {
			continue
		}
		for _, w := range g.adj(Forward, x) {
			if w == v {
				ok = true
				break
			}
			if _, seen := dist[w]; !seen {
				dist[w] = nd
				queue = append(queue, w)
			}
		}
	}
	return ok
}
