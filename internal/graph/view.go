package graph

// View is the read-only face of a data graph: adjacency in both
// directions, node attributes and edge labels. Every matching engine reads
// the graph exclusively through this interface, which is what lets many
// standing patterns share one canonical *Graph instead of each owning a
// replica — the shared-storage model of RETE-style incremental query
// engines.
//
// Guarantees a View implementation must provide:
//
//   - Node identifiers are dense ints 0..NumNodes()-1 and never disappear
//     (the substrate supports edge updates only; nodes are append-only).
//   - Out/In return slices owned by the view: callers must not mutate or
//     retain them across updates to the underlying storage.
//   - Concurrent reads are safe as long as no writer is mutating the
//     underlying storage at the same time. Serializing writers against
//     readers is the owner's job (contq's Registry does exactly that).
type View interface {
	NumNodes() int
	NumEdges() int
	HasNode(v NodeID) bool
	HasEdge(u, v NodeID) bool
	Attrs(v NodeID) Tuple
	Out(v NodeID) []NodeID
	In(v NodeID) []NodeID
	OutDegree(v NodeID) int
	InDegree(v NodeID) int
	Degree(v NodeID) int
	EdgeLabel(u, v NodeID) string
}

// Mutable is a View that also accepts edge updates. *Graph implements it
// for owned storage; *Overlay implements it for engines that borrow a
// shared base View and must keep their writes private.
type Mutable interface {
	View
	AddEdge(u, v NodeID) (added bool, err error)
	RemoveEdge(u, v NodeID) bool
	Apply(u Update) (changed bool, err error)
}

var (
	_ View    = (*Graph)(nil)
	_ Mutable = (*Graph)(nil)
)

// CloneView materializes any View into an owned *Graph (attribute tuples
// and label strings are shared structurally, as in Clone).
func CloneView(v View) *Graph {
	n := v.NumNodes()
	g := NewWithCapacity(n, v.NumEdges())
	for i := 0; i < n; i++ {
		g.AddNode(v.Attrs(i))
	}
	for u := 0; u < n; u++ {
		for _, w := range v.Out(u) {
			g.AddEdge(u, w) //nolint:errcheck // endpoints exist by construction
			if l := v.EdgeLabel(u, w); l != "" {
				g.SetEdgeLabel(u, w, l) //nolint:errcheck // edge just added
			}
		}
	}
	return g
}
