package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraphFrom builds a small graph from fuzz bytes: each byte pair is
// an edge between nodes mod n.
func randomGraphFrom(edges []byte, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(nil)
	}
	for i := 0; i+1 < len(edges); i += 2 {
		g.AddEdge(int(edges[i])%n, int(edges[i+1])%n) //nolint:errcheck
	}
	return g
}

// Property: BFS distances satisfy the triangle inequality over edges:
// dist[w] <= dist[v] + 1 for every edge (v, w), and dist is 0 only at the
// source (unless on a cycle... dist[src] is defined as 0).
func TestQuickBFSTriangle(t *testing.T) {
	f := func(edges []byte) bool {
		const n = 10
		g := randomGraphFrom(edges, n)
		dist := make([]int, n)
		g.BFSFrom(0, Forward, dist)
		ok := dist[0] == 0
		g.Edges(func(v, w NodeID) bool {
			if dist[v] != Unreachable && dist[w] > dist[v]+1 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: forward distance from u to v equals reverse distance from v to
// u (BFS direction symmetry).
func TestQuickBFSDirectionSymmetry(t *testing.T) {
	f := func(edges []byte, a, b uint8) bool {
		const n = 9
		g := randomGraphFrom(edges, n)
		u, v := int(a)%n, int(b)%n
		fwd := make([]int, n)
		rev := make([]int, n)
		g.BFSFrom(u, Forward, fwd)
		g.BFSFrom(v, Reverse, rev)
		return fwd[v] == rev[u]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying a batch of updates and then their inverses in reverse
// order restores the exact edge set.
func TestQuickUpdateInverseRoundTrip(t *testing.T) {
	f := func(edges []byte, ops []byte) bool {
		const n = 8
		g := randomGraphFrom(edges, n)
		before := g.Clone()
		var applied []Update
		for i := 0; i+2 < len(ops); i += 3 {
			up := Update{Op: Op(ops[i] % 2), From: int(ops[i+1]) % n, To: int(ops[i+2]) % n}
			changed, err := g.Apply(up)
			if err != nil {
				return false
			}
			if changed {
				applied = append(applied, up)
			}
		}
		for i := len(applied) - 1; i >= 0; i-- {
			if changed, _ := g.Apply(applied[i].Inverse()); !changed {
				return false
			}
		}
		if g.NumEdges() != before.NumEdges() {
			return false
		}
		same := true
		before.Edges(func(u, v NodeID) bool {
			if !g.HasEdge(u, v) {
				same = false
				return false
			}
			return true
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: topological ranks are monotone along edges — r(u) >= r(v)+1 for
// an edge u→v with finite ranks, and ∞ propagates backwards.
func TestQuickRankMonotonicity(t *testing.T) {
	f := func(edges []byte) bool {
		const n = 10
		g := randomGraphFrom(edges, n)
		r := g.TopologicalRanks()
		ok := true
		g.Edges(func(u, v NodeID) bool {
			if u == v {
				return true
			}
			if r[v] == RankInfinite {
				if r[u] != RankInfinite {
					ok = false
				}
			} else if r[u] != RankInfinite && r[u] < r[v]+1 {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary attributed graphs.
func TestQuickIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		g := New()
		for i := 0; i < n; i++ {
			t := Tuple{}
			for a := 0; a < rng.Intn(3); a++ {
				switch rng.Intn(3) {
				case 0:
					t["s"] = String("v w") // embedded space
				case 1:
					t["i"] = Int(int64(rng.Intn(100) - 50))
				default:
					t["f"] = Float(float64(rng.Intn(100)) / 4)
				}
			}
			g.AddNode(t)
		}
		for e := 0; e < rng.Intn(12); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n)) //nolint:errcheck
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: shape changed", trial)
		}
		for v := 0; v < n; v++ {
			want, have := g.Attrs(v), got.Attrs(v)
			if len(want) != len(have) {
				t.Fatalf("trial %d: node %d attrs differ", trial, v)
			}
			for k, wv := range want {
				if hv, ok := have[k]; !ok || !hv.Equal(wv) || hv.Kind() != wv.Kind() {
					t.Fatalf("trial %d: node %d attr %s: %v != %v", trial, v, k, hv, wv)
				}
			}
		}
	}
}
