package graph

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenGraph builds the graph serialized in testdata/graph.golden.json:
// every value kind, an unattributed node, and a labeled edge.
func goldenGraph() *Graph {
	g := New()
	g.AddNode(NewTuple("name", `"Ann"`, "job", `"CTO"`, "contacts", "12"))
	g.AddNode(NewTuple("name", `"Pat"`, "score", "2.5"))
	g.AddNode(nil)
	g.AddEdge(0, 1)                //nolint:errcheck // test fixture
	g.AddEdge(1, 2)                //nolint:errcheck // test fixture
	g.AddEdge(2, 0)                //nolint:errcheck // test fixture
	g.SetEdgeLabel(1, 2, "friend") //nolint:errcheck // test fixture
	return g
}

// checkGolden compares got against the named golden file (or rewrites it
// under -update-golden).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(bytes.TrimRight(want, "\n"), got) {
		t.Fatalf("golden mismatch for %s:\n got %s\nwant %s", name, got, bytes.TrimRight(want, "\n"))
	}
}

func TestGraphJSONGolden(t *testing.T) {
	g := goldenGraph()
	got, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "graph.golden.json", got)

	back := New()
	if err := json.Unmarshal(got, back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatalf("round trip diverged:\n first %s\nsecond %s", got, again)
	}
	// Kind preservation: the float attribute survives as a float, the int
	// as an int.
	if v, _ := back.Attrs(1).Get("score"); v.Kind() != KindFloat {
		t.Fatalf("score kind %v after round trip", v.Kind())
	}
	if v, _ := back.Attrs(0).Get("contacts"); v.Kind() != KindInt {
		t.Fatalf("contacts kind %v after round trip", v.Kind())
	}
	if back.EdgeLabel(1, 2) != "friend" {
		t.Fatal("edge label lost in round trip")
	}
}

func TestGraphJSONErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"sparse ids":     `{"nodes":[{"id":0},{"id":2}],"edges":[]}`,
		"duplicate id":   `{"nodes":[{"id":0},{"id":0}],"edges":[]}`,
		"edge off graph": `{"nodes":[{"id":0}],"edges":[{"from":0,"to":5}]}`,
		"unknown field":  `{"nodes":[],"edges":[],"bogus":1}`,
		"bad attr value": `{"nodes":[{"id":0,"attrs":{"x":true}}],"edges":[]}`,
		"not a document": `[1,2,3]`,
	} {
		g := New()
		if err := json.Unmarshal([]byte(doc), g); err == nil {
			t.Errorf("%s: unmarshal accepted %s", name, doc)
		}
	}
}

func TestUpdatesJSONRoundTrip(t *testing.T) {
	ups := []Update{Insert(3, 7), Delete(7, 3), Insert(0, 1)}
	b, err := json.Marshal(ups)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"op":"insert","from":3,"to":7},{"op":"delete","from":7,"to":3},{"op":"insert","from":0,"to":1}]`
	if string(b) != want {
		t.Fatalf("updates JSON %s, want %s", b, want)
	}
	var back []Update
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ups) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range ups {
		if back[i] != ups[i] {
			t.Fatalf("update %d: %v != %v", i, back[i], ups[i])
		}
	}
	for _, bad := range []string{
		`{"op":"upsert","from":0,"to":1}`,
		`{"op":"insert","from":-1,"to":1}`,
		`{"op":"insert","from":0,"to":1,"bogus":2}`,
	} {
		var u Update
		if err := json.Unmarshal([]byte(bad), &u); err == nil {
			t.Errorf("unmarshal accepted %s", bad)
		}
	}
}

func TestValueJSONKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("hi"), `"hi"`},
		{String("5"), `"5"`},
		{Int(5), `5`},
		{Int(-3), `-3`},
		{Float(2.5), `2.5`},
		{Float(5), `5.0`},      // whole floats keep fractional syntax
		{Float(1e21), `1e+21`}, // exponent syntax also reads back as float
	}
	for _, c := range cases {
		b, err := json.Marshal(c.v)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != c.want {
			t.Fatalf("marshal %v: %s, want %s", c.v, b, c.want)
		}
		var back Value
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Kind() != c.v.Kind() || !back.Equal(c.v) {
			t.Fatalf("round trip %v → %s → %v (kind %v)", c.v, b, back, back.Kind())
		}
	}
}

// FuzzGraphJSON checks that any accepted graph document has a stable
// canonical form: unmarshal → marshal → unmarshal → marshal must converge
// after the first encoding.
func FuzzGraphJSON(f *testing.F) {
	seed, err := json.Marshal(goldenGraph())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"nodes":[],"edges":[]}`)
	f.Add(`{"nodes":[{"id":0,"attrs":{"a":1,"b":"x","c":2.5}}],"edges":[]}`)
	f.Add(`{"nodes":[{"id":1},{"id":0}],"edges":[{"from":0,"to":1,"label":"l"},{"from":0,"to":1}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		g := New()
		if err := json.Unmarshal([]byte(doc), g); err != nil {
			return // rejected inputs are out of scope
		}
		m1, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		g2 := New()
		if err := json.Unmarshal(m1, g2); err != nil {
			t.Fatalf("own marshaling rejected: %v\n%s", err, m1)
		}
		m2, err := json.Marshal(g2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("canonical form unstable:\n m1 %s\n m2 %s", m1, m2)
		}
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("size changed: %v vs %v", g, g2)
		}
	})
}

// FuzzUpdatesJSON: same canonical-stability property for update batches.
func FuzzUpdatesJSON(f *testing.F) {
	f.Add(`[{"op":"insert","from":3,"to":7},{"op":"delete","from":7,"to":3}]`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, doc string) {
		var ups []Update
		if err := json.Unmarshal([]byte(doc), &ups); err != nil {
			return
		}
		m1, err := json.Marshal(ups)
		if err != nil {
			t.Fatal(err)
		}
		var back []Update
		if err := json.Unmarshal(m1, &back); err != nil {
			t.Fatalf("own marshaling rejected: %v\n%s", err, m1)
		}
		m2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("canonical form unstable:\n m1 %s\n m2 %s", m1, m2)
		}
	})
}
