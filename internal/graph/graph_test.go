package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddNode(NewTuple("label", `"a"`))
	b := g.AddNode(NewTuple("label", `"b"`))
	c := g.AddNode(NewTuple("label", `"c"`))
	for _, e := range [][2]NodeID{{a, b}, {b, c}, {c, a}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for want := 0; want < 5; want++ {
		if got := g.AddNode(nil); got != want {
			t.Fatalf("AddNode = %d, want %d", got, want)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeRejectsUnknownNodes(t *testing.T) {
	g := New()
	g.AddNode(nil)
	if _, err := g.AddEdge(0, 7); err == nil {
		t.Fatal("AddEdge(0, 7) on a 1-node graph: want error")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("AddEdge(-1, 0): want error")
	}
}

func TestAddEdgeIsIdempotent(t *testing.T) {
	g := New()
	g.AddNode(nil)
	g.AddNode(nil)
	added, err := g.AddEdge(0, 1)
	if err != nil || !added {
		t.Fatalf("first AddEdge = (%v, %v), want (true, nil)", added, err)
	}
	added, err = g.AddEdge(0, 1)
	if err != nil || added {
		t.Fatalf("second AddEdge = (%v, %v), want (false, nil)", added, err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveEdgeUpdatesAdjacency(t *testing.T) {
	g := buildTriangle(t)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) = false, want true")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("second RemoveEdge(0,1) = true, want false")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) after removal")
	}
	if g.OutDegree(0) != 0 || g.InDegree(1) != 0 {
		t.Fatalf("degrees after removal: out(0)=%d in(1)=%d, want 0, 0", g.OutDegree(0), g.InDegree(1))
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	v := g.AddNode(nil)
	if _, err := g.AddEdge(v, v); err != nil {
		t.Fatalf("AddEdge self-loop: %v", err)
	}
	if !g.HasEdge(v, v) || g.OutDegree(v) != 1 || g.InDegree(v) != 1 {
		t.Fatal("self-loop not reflected in adjacency")
	}
	if !g.RemoveEdge(v, v) || g.OutDegree(v) != 0 || g.InDegree(v) != 0 {
		t.Fatal("self-loop removal broken")
	}
}

func TestBFSFromDistances(t *testing.T) {
	g := buildTriangle(t)
	dist := make([]int, g.NumNodes())
	g.BFSFrom(0, Forward, dist)
	want := []int{0, 1, 2}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	g.BFSFrom(0, Reverse, dist)
	want = []int{0, 2, 1}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("reverse dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
}

func TestBFSFromUnreachable(t *testing.T) {
	g := New()
	g.AddNode(nil)
	g.AddNode(nil)
	dist := make([]int, 2)
	g.BFSFrom(0, Forward, dist)
	if dist[1] != Unreachable {
		t.Fatalf("dist[1] = %d, want Unreachable", dist[1])
	}
}

func TestBFSWithinRespectsBound(t *testing.T) {
	g := New()
	ids := make([]NodeID, 5)
	for i := range ids {
		ids[i] = g.AddNode(nil)
		if i > 0 {
			g.AddEdge(ids[i-1], ids[i])
		}
	}
	var seen []NodeID
	g.BFSWithin(ids[0], Forward, 2, func(v NodeID, d int) bool {
		seen = append(seen, v)
		return true
	})
	if len(seen) != 3 { // src + 2 hops
		t.Fatalf("visited %v, want 3 nodes", seen)
	}
}

func TestDistAndReachableWithin(t *testing.T) {
	g := buildTriangle(t)
	if d := g.Dist(0, 2); d != 2 {
		t.Fatalf("Dist(0,2) = %d, want 2", d)
	}
	if d := g.Dist(0, 0); d != 0 {
		t.Fatalf("Dist(0,0) = %d, want 0", d)
	}
	// Nonempty-path semantics: the cycle back to 0 has length 3.
	if g.ReachableWithin(0, 0, 2) {
		t.Fatal("ReachableWithin(0,0,2) = true, want false (cycle is length 3)")
	}
	if !g.ReachableWithin(0, 0, 3) {
		t.Fatal("ReachableWithin(0,0,3) = false, want true")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("removing from clone affected original")
	}
	c.AddNode(nil)
	if g.NumNodes() != 3 {
		t.Fatal("adding node to clone affected original")
	}
}

func TestSCCTriangle(t *testing.T) {
	g := buildTriangle(t)
	comp, n := g.SCC()
	if n != 1 {
		t.Fatalf("SCC count = %d, want 1", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("comp = %v, want all equal", comp)
	}
}

func TestSCCChainAndCycle(t *testing.T) {
	// 0→1→2→1 : nodes 1,2 form a cycle, 0 is its own component.
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode(nil)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("SCC count = %d, want 2", n)
	}
	if comp[1] != comp[2] || comp[0] == comp[1] {
		t.Fatalf("comp = %v, want {1,2} together, 0 apart", comp)
	}
	nt := g.NontrivialSCC(comp, n)
	if !nt[comp[1]] || nt[comp[0]] {
		t.Fatalf("NontrivialSCC = %v", nt)
	}
}

func TestSCCReverseTopologicalNumbering(t *testing.T) {
	// Tarjan numbering: comp[u] >= comp[v] for every edge u→v across components.
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode(nil)
	}
	edges := [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	comp, _ := g.SCC()
	g.Edges(func(u, v NodeID) bool {
		if comp[u] < comp[v] {
			t.Errorf("edge %d→%d: comp[u]=%d < comp[v]=%d", u, v, comp[u], comp[v])
		}
		return true
	})
}

func TestTopologicalRanks(t *testing.T) {
	// 0→1→2 (chain), 3→4→3 (cycle), 5→3 (reaches cycle).
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode(nil)
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 3}, {5, 3}} {
		g.AddEdge(e[0], e[1])
	}
	r := g.TopologicalRanks()
	if r[2] != 0 {
		t.Errorf("rank(2) = %d, want 0 (leaf)", r[2])
	}
	if r[1] != 1 || r[0] != 2 {
		t.Errorf("rank(1)=%d rank(0)=%d, want 1, 2", r[1], r[0])
	}
	for _, v := range []NodeID{3, 4, 5} {
		if r[v] != RankInfinite {
			t.Errorf("rank(%d) = %d, want RankInfinite", v, r[v])
		}
	}
}

func TestIsDAGAndTopoOrder(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(nil)
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if !g.IsDAG() {
		t.Fatal("diamond DAG reported cyclic")
	}
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("TopoOrder failed on a DAG")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	g.Edges(func(u, v NodeID) bool {
		if pos[u] >= pos[v] {
			t.Errorf("topo order violates edge %d→%d", u, v)
		}
		return true
	})
	g.AddEdge(3, 0)
	if g.IsDAG() {
		t.Fatal("cyclic graph reported as DAG")
	}
	if _, ok := g.TopoOrder(); ok {
		t.Fatal("TopoOrder succeeded on a cyclic graph")
	}
}

func TestUpdateApplyAndInverse(t *testing.T) {
	g := New()
	g.AddNode(nil)
	g.AddNode(nil)
	up := Insert(0, 1)
	changed, err := g.Apply(up)
	if err != nil || !changed {
		t.Fatalf("Apply insert = (%v, %v)", changed, err)
	}
	changed, err = g.Apply(up)
	if err != nil || changed {
		t.Fatalf("re-Apply insert = (%v, %v), want no-op", changed, err)
	}
	changed, err = g.Apply(up.Inverse())
	if err != nil || !changed {
		t.Fatalf("Apply inverse = (%v, %v)", changed, err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after undo, want 0", g.NumEdges())
	}
}

func TestApplyAllReportsEffectiveUpdates(t *testing.T) {
	g := New()
	g.AddNode(nil)
	g.AddNode(nil)
	ups := []Update{Insert(0, 1), Insert(0, 1), Delete(1, 0), Delete(0, 1)}
	eff, err := g.ApplyAll(ups)
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	if len(eff) != 2 {
		t.Fatalf("effective updates = %v, want 2 entries", eff)
	}
}

func TestIORoundTrip(t *testing.T) {
	g := New()
	g.AddNode(NewTuple("label", `"CTO"`, "name", `"Ann Lee"`, "age", "41"))
	g.AddNode(NewTuple("label", `"DB"`, "rating", "4.5"))
	g.AddNode(nil)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 3 {
		t.Fatalf("round trip: %v", got)
	}
	if v, ok := got.Attrs(0).Get("name"); !ok || v.Str() != "Ann Lee" {
		t.Fatalf("quoted attribute with space lost: %v", got.Attrs(0))
	}
	if v, ok := got.Attrs(1).Get("rating"); !ok || v.Kind() != KindFloat || v.Num() != 4.5 {
		t.Fatalf("float attribute lost: %v", got.Attrs(1))
	}
	if !got.HasEdge(2, 0) {
		t.Fatal("edge (2,0) lost in round trip")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"node x",
		"node 0 label",
		"edge 0",
		"frob 1 2",
		"node 0\nnode 0",
		"node 5",
		"node 0\nedge 0 9",
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q): want error", src)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Float(2.5), Int(2), 1, true},
		{Int(2), Float(2.0), 0, true},
		{String("a"), String("b"), -1, true},
		{String("a"), Int(1), 0, false},
		{Int(1), String("1"), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	for _, s := range []string{"42", "-7", "3.25", `"hello"`, `"12"`} {
		v := ParseValue(s)
		if got := ParseValue(v.Quote()); !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %q -> %v -> %q -> %v", s, v, v.Quote(), got)
		}
	}
	if ParseValue("12").Kind() != KindInt {
		t.Error(`ParseValue("12") should be int`)
	}
	if ParseValue(`"12"`).Kind() != KindString {
		t.Error(`ParseValue("\"12\"") should be string`)
	}
}

func TestRandomSCCMatchesReachability(t *testing.T) {
	// Property: u, v share an SCC iff u reaches v and v reaches u.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 8
		for i := 0; i < n; i++ {
			g.AddNode(nil)
		}
		for e := 0; e < 14; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC()
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = make([]bool, n)
			dist := make([]int, n)
			g.BFSFrom(u, Forward, dist)
			for v := 0; v < n; v++ {
				reach[u][v] = dist[v] != Unreachable
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					t.Fatalf("trial %d: comp[%d]==comp[%d] is %v but mutual reach is %v", trial, u, v, same, mutual)
				}
			}
		}
	}
}
