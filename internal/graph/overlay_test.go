package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// sortedCopy returns a sorted copy of an adjacency slice for comparison.
func sortedCopy(s []NodeID) []NodeID {
	c := append([]NodeID(nil), s...)
	sort.Ints(c)
	return c
}

func equalAdj(a, b []NodeID) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameView checks every View observation agrees between got and want.
func assertSameView(t *testing.T, got, want View) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes: %d != %d", got.NumNodes(), want.NumNodes())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges: %d != %d", got.NumEdges(), want.NumEdges())
	}
	n := want.NumNodes()
	for v := 0; v < n; v++ {
		if !equalAdj(got.Out(v), want.Out(v)) {
			t.Fatalf("Out(%d): %v != %v", v, got.Out(v), want.Out(v))
		}
		if !equalAdj(got.In(v), want.In(v)) {
			t.Fatalf("In(%d): %v != %v", v, got.In(v), want.In(v))
		}
		if got.OutDegree(v) != want.OutDegree(v) || got.InDegree(v) != want.InDegree(v) || got.Degree(v) != want.Degree(v) {
			t.Fatalf("degrees of %d disagree", v)
		}
		for w := 0; w < n; w++ {
			if got.HasEdge(v, w) != want.HasEdge(v, w) {
				t.Fatalf("HasEdge(%d,%d): %v != %v", v, w, got.HasEdge(v, w), want.HasEdge(v, w))
			}
			if got.EdgeLabel(v, w) != want.EdgeLabel(v, w) {
				t.Fatalf("EdgeLabel(%d,%d): %q != %q", v, w, got.EdgeLabel(v, w), want.EdgeLabel(v, w))
			}
		}
	}
}

// TestOverlayEquivalence drives an overlay and a mutable clone with the
// same random update stream and checks every View observation agrees, then
// that Reset restores transparency over the (unchanged) base.
func TestOverlayEquivalence(t *testing.T) {
	const n = 12
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := New()
		for i := 0; i < n; i++ {
			base.AddNode(nil)
		}
		for i := 0; i < 3*n; i++ {
			base.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		base.SetEdgeLabel(base.EdgeList()[0][0], base.EdgeList()[0][1], "seedlabel")
		frozen := base.Clone() // the base must never change under overlay writes

		ov := NewOverlay(base)
		mirror := base.Clone()
		for i := 0; i < 6*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				a1, err1 := ov.AddEdge(u, v)
				a2, err2 := mirror.AddEdge(u, v)
				if a1 != a2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("AddEdge(%d,%d) outcome diverged", u, v)
				}
			} else {
				if ov.RemoveEdge(u, v) != mirror.RemoveEdge(u, v) {
					t.Fatalf("RemoveEdge(%d,%d) outcome diverged", u, v)
				}
			}
		}
		// Overlay-added edges are unlabeled; mirror labels stay only on
		// surviving base edges, which the overlay reads through — compare
		// everything except labels of edges the overlay re-added.
		if got, want := ov.NumEdges(), mirror.NumEdges(); got != want {
			t.Fatalf("seed %d: NumEdges %d != %d", seed, got, want)
		}
		for v := 0; v < n; v++ {
			if !equalAdj(ov.Out(v), mirror.Out(v)) || !equalAdj(ov.In(v), mirror.In(v)) {
				t.Fatalf("seed %d: adjacency of %d diverged", seed, v)
			}
		}
		assertSameView(t, base, frozen) // writes never leak into the base

		ov.Reset()
		if ov.Pending() != 0 {
			t.Fatalf("Pending after Reset = %d", ov.Pending())
		}
		assertSameView(t, ov, base)
	}
}

// TestOverlayMasksRemovedLabels checks a removed base edge hides its label
// and a re-added one comes back unlabeled.
func TestOverlayMasksRemovedLabels(t *testing.T) {
	g := New()
	a, b := g.AddNode(nil), g.AddNode(nil)
	if _, err := g.AddLabeledEdge(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	ov := NewOverlay(g)
	if got := ov.EdgeLabel(a, b); got != "friend" {
		t.Fatalf("label before removal = %q", got)
	}
	if !ov.RemoveEdge(a, b) {
		t.Fatal("RemoveEdge failed")
	}
	if got := ov.EdgeLabel(a, b); got != "" {
		t.Fatalf("label after overlay removal = %q", got)
	}
	if added, _ := ov.AddEdge(a, b); !added {
		t.Fatal("re-AddEdge failed")
	}
	if got := ov.EdgeLabel(a, b); got != "" {
		t.Fatalf("overlay re-added edge must be unlabeled, got %q", got)
	}
	if g.EdgeLabel(a, b) != "friend" {
		t.Fatal("base label must survive overlay writes")
	}
}

// TestOverlayInsertDeleteCancel checks a same-edge insert/delete pair
// inside one overlay generation leaves no diff behind.
func TestOverlayInsertDeleteCancel(t *testing.T) {
	g := New()
	a, b := g.AddNode(nil), g.AddNode(nil)
	ov := NewOverlay(g)
	if added, _ := ov.AddEdge(a, b); !added {
		t.Fatal("AddEdge failed")
	}
	if !ov.RemoveEdge(a, b) {
		t.Fatal("RemoveEdge failed")
	}
	if ov.Pending() != 0 {
		t.Fatalf("insert/delete pair left %d pending changes", ov.Pending())
	}
	if ov.HasEdge(a, b) || ov.NumEdges() != 0 {
		t.Fatal("cancelled pair still visible")
	}
}

// TestOverlayRejectsUnknownNodes mirrors Graph.AddEdge's range check.
func TestOverlayRejectsUnknownNodes(t *testing.T) {
	g := New()
	g.AddNode(nil)
	ov := NewOverlay(g)
	if _, err := ov.AddEdge(0, 7); err == nil {
		t.Fatal("AddEdge with out-of-range endpoint must fail")
	}
	if _, err := ov.Apply(Update{Op: 9}); err == nil {
		t.Fatal("unknown op must fail")
	}
}

// TestCloneViewRoundTrip materializes an overlay-composed view and checks
// the clone observes identically.
func TestCloneViewRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	const n = 10
	for i := 0; i < n; i++ {
		g.AddNode(NewTuple("x", "1"))
	}
	for i := 0; i < 25; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	e := g.EdgeList()[0]
	g.SetEdgeLabel(e[0], e[1], "l")
	ov := NewOverlay(g)
	ov.AddEdge(rng.Intn(n), rng.Intn(n))
	ov.RemoveEdge(e[0], e[1])
	assertSameView(t, CloneView(ov), ov)
}
