// Package graph implements the data-graph substrate of the paper: directed
// graphs G = (V, E, fA) whose nodes carry attribute tuples, with support for
// dynamic edge insertions and deletions, traversals, strongly connected
// components and topological ranks.
//
// Node identifiers are dense ints assigned by AddNode, which keeps adjacency
// in flat slices and makes per-node auxiliary arrays cheap — the access
// pattern every algorithm in this repository relies on.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of a data graph. IDs are dense: 0..N-1.
type NodeID = int

// Graph is a directed data graph with attributed nodes. It is not safe for
// concurrent mutation; concurrent reads are safe.
type Graph struct {
	attrs   []Tuple    // attribute tuple per node
	out     [][]NodeID // out-adjacency, unordered
	in      [][]NodeID // in-adjacency, unordered
	edges   map[[2]NodeID]struct{}
	elabels map[[2]NodeID]string // edge labels (relationship colors); sparse
	m       int                  // number of edges
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{edges: make(map[[2]NodeID]struct{})}
}

// NewWithCapacity returns an empty graph with room pre-allocated for n nodes
// and m edges.
func NewWithCapacity(n, m int) *Graph {
	return &Graph{
		attrs: make([]Tuple, 0, n),
		out:   make([][]NodeID, 0, n),
		in:    make([][]NodeID, 0, n),
		edges: make(map[[2]NodeID]struct{}, m),
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.attrs) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.m }

// AddNode appends a node carrying the given attribute tuple and returns its
// identifier. A nil tuple is stored as an empty tuple.
func (g *Graph) AddNode(attrs Tuple) NodeID {
	if attrs == nil {
		attrs = Tuple{}
	}
	id := len(g.attrs)
	g.attrs = append(g.attrs, attrs)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// Attrs returns the attribute tuple of node v. The caller must not mutate it
// while algorithms hold references to the graph.
func (g *Graph) Attrs(v NodeID) Tuple { return g.attrs[v] }

// SetAttrs replaces the attribute tuple of node v.
func (g *Graph) SetAttrs(v NodeID, attrs Tuple) {
	if attrs == nil {
		attrs = Tuple{}
	}
	g.attrs[v] = attrs
}

// HasNode reports whether v is a valid node identifier.
func (g *Graph) HasNode(v NodeID) bool { return v >= 0 && v < len(g.attrs) }

// HasEdge reports whether the edge (u, v) is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.edges[[2]NodeID{u, v}]
	return ok
}

// AddEdge inserts the directed edge (u, v). It returns an error if either
// endpoint does not exist, and reports added=false if the edge was already
// present (the graph is a simple digraph; parallel edges collapse).
func (g *Graph) AddEdge(u, v NodeID) (added bool, err error) {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false, fmt.Errorf("graph: AddEdge(%d, %d): node out of range [0, %d)", u, v, len(g.attrs))
	}
	key := [2]NodeID{u, v}
	if _, ok := g.edges[key]; ok {
		return false, nil
	}
	g.edges[key] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
	return true, nil
}

// RemoveEdge deletes the directed edge (u, v), reporting whether it existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	key := [2]NodeID{u, v}
	if _, ok := g.edges[key]; !ok {
		return false
	}
	delete(g.edges, key)
	delete(g.elabels, key)
	g.out[u] = removeOne(g.out[u], v)
	g.in[v] = removeOne(g.in[v], u)
	g.m--
	return true
}

func removeOne(s []NodeID, x NodeID) []NodeID {
	for i, y := range s {
		if y == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Out returns the out-neighbours (children) of v. The slice is owned by the
// graph and must not be mutated or retained across updates.
func (g *Graph) Out(v NodeID) []NodeID { return g.out[v] }

// In returns the in-neighbours (parents) of v. Same ownership rules as Out.
func (g *Graph) In(v NodeID) []NodeID { return g.in[v] }

// OutDegree returns the number of children of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of parents of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Degree returns in-degree + out-degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.out[v]) + len(g.in[v]) }

// Edges calls fn for every edge (u, v) in an unspecified but deterministic
// order (by source, then insertion order). Returning false stops iteration.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := range g.out {
		for _, v := range g.out[u] {
			if !fn(u, v) {
				return
			}
		}
	}
}

// EdgeList returns all edges sorted lexicographically.
func (g *Graph) EdgeList() [][2]NodeID {
	es := make([][2]NodeID, 0, g.m)
	for e := range g.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Clone returns a deep copy of the graph (attribute tuples are shared
// structurally — they are copied shallowly since algorithms treat them as
// immutable).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		attrs: make([]Tuple, len(g.attrs)),
		out:   make([][]NodeID, len(g.out)),
		in:    make([][]NodeID, len(g.in)),
		edges: make(map[[2]NodeID]struct{}, len(g.edges)),
		m:     g.m,
	}
	copy(c.attrs, g.attrs)
	for v := range g.out {
		c.out[v] = append([]NodeID(nil), g.out[v]...)
		c.in[v] = append([]NodeID(nil), g.in[v]...)
	}
	for e := range g.edges {
		c.edges[e] = struct{}{}
	}
	if len(g.elabels) > 0 {
		c.elabels = make(map[[2]NodeID]string, len(g.elabels))
		for e, l := range g.elabels {
			c.elabels[e] = l
		}
	}
	return c
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d}", g.NumNodes(), g.NumEdges())
}
