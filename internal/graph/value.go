package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Kind discriminates the dynamic type of an attribute Value.
type Kind uint8

const (
	// KindString is a textual attribute value.
	KindString Kind = iota
	// KindInt is a 64-bit signed integer attribute value.
	KindInt
	// KindFloat is a 64-bit floating-point attribute value.
	KindFloat
)

// Value is an attribute value attached to a data-graph node. The paper models
// node content as a tuple (A1=a1, ..., An=an) of constants; Value is one such
// constant. Values of different kinds never compare equal, except that ints
// and floats compare numerically.
type Value struct {
	kind Kind
	str  string
	num  int64
	flt  float64
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float constructs a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// ParseValue interprets s as an int, then a float, then a string. Quoted
// strings ("...") always parse as strings: Go escape sequences (\", \\,
// \n, ...) are decoded, and a quoted token that is not a valid Go string
// literal falls back to stripping the outer quotes verbatim.
func ParseValue(s string) Value {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return String(u)
		}
		return String(s[1 : len(s)-1])
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	return String(s)
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string content (valid for KindString).
func (v Value) Str() string { return v.str }

// Num returns the numeric content as a float64 (valid for KindInt/KindFloat).
func (v Value) Num() float64 {
	if v.kind == KindInt {
		return float64(v.num)
	}
	return v.flt
}

// IntVal returns the integer content (valid for KindInt).
func (v Value) IntVal() int64 { return v.num }

func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	default:
		return v.str
	}
}

// Quote renders v so that ParseValue round-trips it, kind included: strings
// are quoted (with Go escaping when they hold quotes, backslashes, control
// characters or invalid UTF-8, so the quoted form scans unambiguously and
// decodes back to the same bytes), and
// whole-number floats keep a decimal point so they do not read back as
// ints. Non-finite floats (NaN, ±Inf) print bare — ParseFloat reads them
// back as floats.
func (v Value) Quote() string {
	switch v.kind {
	case KindString:
		if strings.ContainsAny(v.str, "\"\\") || HasControl(v.str) || !utf8.ValidString(v.str) {
			return strconv.Quote(v.str)
		}
		return `"` + v.str + `"`
	case KindFloat:
		s := v.String()
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

// HasControl reports whether s contains a control character (below 0x20, or
// DEL) — the characters that would break the line-based text formats.
func HasControl(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return true
		}
	}
	return false
}

// Compare returns -1, 0 or +1 ordering v against w, and ok=false when the two
// kinds are not comparable (string vs numeric).
func (v Value) Compare(w Value) (cmp int, ok bool) {
	vs, ws := v.kind == KindString, w.kind == KindString
	switch {
	case vs && ws:
		return strings.Compare(v.str, w.str), true
	case vs != ws:
		return 0, false
	case v.kind == KindInt && w.kind == KindInt:
		switch {
		case v.num < w.num:
			return -1, true
		case v.num > w.num:
			return 1, true
		}
		return 0, true
	default:
		a, b := v.Num(), w.Num()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
}

// Equal reports whether two values are equal under Compare semantics.
func (v Value) Equal(w Value) bool {
	c, ok := v.Compare(w)
	return ok && c == 0
}

// Tuple is the attribute tuple fA(v) of a node: a set of named constants.
// The zero value is an empty tuple ready to use.
type Tuple map[string]Value

// NewTuple builds a tuple from alternating key, value pairs where values are
// parsed with ParseValue. It panics on an odd number of arguments (programmer
// error in literals).
func NewTuple(kv ...string) Tuple {
	if len(kv)%2 != 0 {
		panic("graph.NewTuple: odd number of key/value arguments")
	}
	t := make(Tuple, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		t[kv[i]] = ParseValue(kv[i+1])
	}
	return t
}

// Get returns the value of attribute a and whether it is present.
func (t Tuple) Get(a string) (Value, bool) {
	v, ok := t[a]
	return v, ok
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Keys returns the attribute names in sorted order.
func (t Tuple) Keys() []string {
	ks := make([]string, 0, len(t))
	for k := range t {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func (t Tuple) String() string {
	var b strings.Builder
	for i, k := range t.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, t[k].Quote())
	}
	return b.String()
}
