package graph

import "fmt"

// Op is the kind of a unit update.
type Op uint8

const (
	// InsertEdge adds an edge.
	InsertEdge Op = iota
	// DeleteEdge removes an edge.
	DeleteEdge
)

func (o Op) String() string {
	if o == InsertEdge {
		return "+"
	}
	return "-"
}

// Update is a unit update: a single edge insertion or deletion, the ΔG unit
// of Section 4. Batch updates are []Update (insertions and deletions mixed).
type Update struct {
	Op       Op
	From, To NodeID
}

func (u Update) String() string { return fmt.Sprintf("%s(%d,%d)", u.Op, u.From, u.To) }

// Inverse returns the update that undoes u.
func (u Update) Inverse() Update {
	inv := u
	if u.Op == InsertEdge {
		inv.Op = DeleteEdge
	} else {
		inv.Op = InsertEdge
	}
	return inv
}

// Apply executes a single update against g, reporting whether the graph
// changed (inserting an existing edge or deleting a missing one is a no-op).
func (g *Graph) Apply(u Update) (changed bool, err error) {
	switch u.Op {
	case InsertEdge:
		return g.AddEdge(u.From, u.To)
	case DeleteEdge:
		return g.RemoveEdge(u.From, u.To), nil
	default:
		return false, fmt.Errorf("graph: unknown update op %d", u.Op)
	}
}

// ApplyAll executes a batch of updates in order and returns the updates that
// actually changed the graph (the effective ΔG).
func (g *Graph) ApplyAll(us []Update) ([]Update, error) {
	eff := make([]Update, 0, len(us))
	for _, u := range us {
		changed, err := g.Apply(u)
		if err != nil {
			return eff, err
		}
		if changed {
			eff = append(eff, u)
		}
	}
	return eff, nil
}

// NetUpdates collapses a list of updates to its net effect against the
// current state of g: per edge only the final operation matters, and
// operations restating the graph's current state vanish — so an insert
// and a delete of the same edge inside one list annihilate entirely. This
// is the cancellation step of the paper's minDelta reduction; the
// incremental engines and the continuous-query writer both use it.
func NetUpdates(g View, ups []Update) []Update {
	final := make(map[[2]NodeID]Op, len(ups))
	order := make([][2]NodeID, 0, len(ups))
	for _, up := range ups {
		key := [2]NodeID{up.From, up.To}
		if _, seen := final[key]; !seen {
			order = append(order, key)
		}
		final[key] = up.Op
	}
	net := make([]Update, 0, len(order))
	for _, key := range order {
		op := final[key]
		if (op == InsertEdge) == g.HasEdge(key[0], key[1]) {
			continue // restates current state: cancelled
		}
		net = append(net, Update{Op: op, From: key[0], To: key[1]})
	}
	return net
}

// Insert is shorthand for an edge-insertion update.
func Insert(u, v NodeID) Update { return Update{Op: InsertEdge, From: u, To: v} }

// Delete is shorthand for an edge-deletion update.
func Delete(u, v NodeID) Update { return Update{Op: DeleteEdge, From: u, To: v} }
