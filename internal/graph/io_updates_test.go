package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestUpdatesRoundTrip(t *testing.T) {
	ups := []Update{Insert(0, 1), Delete(2, 3), Insert(4, 5)}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("got %d updates, want %d", len(got), len(ups))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("update %d: %v != %v", i, got[i], ups[i])
		}
	}
}

func TestReadUpdatesSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\ninsert 1 2\n# mid\ndelete 2 1\n"
	got, err := ReadUpdates(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d updates", len(got))
	}
}

func TestReadUpdatesRejectsMalformed(t *testing.T) {
	for _, src := range []string{
		"insert 1",
		"frob 1 2",
		"insert x 2",
		"delete 1 y",
	} {
		if _, err := ReadUpdates(strings.NewReader(src)); err == nil {
			t.Errorf("ReadUpdates(%q): want error", src)
		}
	}
}
