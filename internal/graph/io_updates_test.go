package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestUpdatesRoundTrip(t *testing.T) {
	ups := []Update{Insert(0, 1), Delete(2, 3), Insert(4, 5)}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("got %d updates, want %d", len(got), len(ups))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("update %d: %v != %v", i, got[i], ups[i])
		}
	}
}

func TestReadUpdatesSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\ninsert 1 2\n# mid\ndelete 2 1\n"
	got, err := ReadUpdates(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d updates", len(got))
	}
}

func TestReadUpdatesRejectsMalformed(t *testing.T) {
	for _, src := range []string{
		"insert 1",
		"frob 1 2",
		"insert x 2",
		"delete 1 y",
	} {
		if _, err := ReadUpdates(strings.NewReader(src)); err == nil {
			t.Errorf("ReadUpdates(%q): want error", src)
		}
	}
}

func TestReadUpdatesRejectsNegativeIDs(t *testing.T) {
	for _, src := range []string{
		"insert -1 2",
		"insert 1 -2",
		"delete -3 -4",
		"insert 0 1\ndelete -1 0",
	} {
		_, err := ReadUpdates(strings.NewReader(src))
		if err == nil {
			t.Errorf("ReadUpdates(%q): want error for negative node id", src)
			continue
		}
		if !strings.Contains(err.Error(), "line") {
			t.Errorf("ReadUpdates(%q): error %q does not name the line", src, err)
		}
	}
}

// TestReadUpdatesLongLines checks that update files share the 16 MB line
// limit of graph files instead of bufio.Scanner's 64 KB default.
func TestReadUpdatesLongLines(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# ")
	sb.WriteString(strings.Repeat("x", 1<<20)) // a 1 MB comment line
	sb.WriteString("\ninsert 5 6\n")
	got, err := ReadUpdates(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != Insert(5, 6) {
		t.Fatalf("got %v", got)
	}
}
