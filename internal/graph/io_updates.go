package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Update text format, one update per line:
//
//	insert 3 7
//	delete 7 3

// WriteUpdates serializes a batch of updates.
func WriteUpdates(w io.Writer, ups []Update) error {
	bw := bufio.NewWriter(w)
	for _, up := range ups {
		op := "insert"
		if up.Op == DeleteEdge {
			op = "delete"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", op, up.From, up.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadUpdates parses a batch of updates.
func ReadUpdates(r io.Reader) ([]Update, error) {
	sc := NewLineScanner(r)
	var ups []Update
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: updates line %d: want 'insert|delete from to'", lineNo)
		}
		var op Op
		switch fields[0] {
		case "insert":
			op = InsertEdge
		case "delete":
			op = DeleteEdge
		default:
			return nil, fmt.Errorf("graph: updates line %d: unknown op %q", lineNo, fields[0])
		}
		from, err1 := strconv.Atoi(fields[1])
		to, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: updates line %d: bad endpoints", lineNo)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: updates line %d: node id %d out of range [0,∞)", lineNo, min(from, to))
		}
		ups = append(ups, Update{Op: op, From: from, To: to})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ups, nil
}
