package incsim

// IncMatch⁺ (Fig. 9) and IncMatch⁺dag: single-edge insertion. By
// Proposition 5.2 only cs and cc edges — from a candidate to a match or
// candidate of a pattern edge's endpoints — can create new matches, and cc
// edges only matter inside pattern SCCs. The general algorithm computes the
// affected candidate closure (the propCS/propCC propagation) and promotes
// it with a greatest-fixpoint refinement, which is both sound and complete:
// the result provably equals batch recomputation (property-tested).

import (
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/rel"
)

// Insert adds the edge (v0, v1) to the data graph and incrementally repairs
// the match (general, possibly cyclic patterns). It reports whether the
// edge was new.
func (e *Engine) Insert(v0, v1 graph.NodeID) bool {
	ok, _ := e.InsertDelta(v0, v1)
	return ok
}

// InsertDelta is Insert additionally reporting the visible match delta ΔM
// of the update.
func (e *Engine) InsertDelta(v0, v1 graph.NodeID) (bool, rel.Delta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	ok := e.insertLocked(v0, v1)
	return ok, e.endChanges()
}

func (e *Engine) insertLocked(v0, v1 graph.NodeID) bool {
	added, err := e.g.AddEdge(v0, v1)
	if err != nil || !added {
		return false
	}
	// ss insertions only add support: bump the counters (needed so later
	// deletions see the correct support), no new matches possible.
	for ei, pe := range e.edges {
		if e.match[pe.From].Has(v0) && e.match[pe.To].Has(v1) {
			e.cnt[ei][v0]++
			e.stats.CounterUpdates++
		}
	}
	// cs / cc seeds: v0 a candidate of the source, v1 satisfying the target.
	// v0 may be a candidate of several pattern nodes; seed each of them.
	var seeds []pair
	seen := make(map[int]bool)
	for _, pe := range e.edges {
		if !seen[pe.From] && e.isCandidate(pe.From, v0) && e.sat[pe.To].Has(v1) {
			seen[pe.From] = true
			seeds = append(seeds, pair{pe.From, v0})
		}
	}
	if len(seeds) > 0 {
		e.promote(seeds)
	}
	return true
}

// InsertDAG is IncMatch⁺dag: the optimal O(|AFF|) insertion for DAG
// patterns, which needs no SCC fixpoint — new matches propagate strictly
// from pattern leaves towards roots. It returns an error if the pattern is
// cyclic.
func (e *Engine) InsertDAG(v0, v1 graph.NodeID) (bool, error) {
	ok, _, err := e.InsertDAGDelta(v0, v1)
	return ok, err
}

// InsertDAGDelta is InsertDAG additionally reporting the visible ΔM.
func (e *Engine) InsertDAGDelta(v0, v1 graph.NodeID) (bool, rel.Delta, error) {
	if !e.p.IsDAG() {
		return false, rel.Delta{}, fmt.Errorf("incsim: InsertDAG requires a DAG pattern")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	ok, err := e.insertDAGLocked(v0, v1)
	return ok, e.endChanges(), err
}

func (e *Engine) insertDAGLocked(v0, v1 graph.NodeID) (bool, error) {
	added, err := e.g.AddEdge(v0, v1)
	if err != nil || !added {
		return false, err
	}
	for ei, pe := range e.edges {
		if e.match[pe.From].Has(v0) && e.match[pe.To].Has(v1) {
			e.cnt[ei][v0]++
			e.stats.CounterUpdates++
		}
	}
	// Worklist of candidate pairs to re-examine, seeded at v0. On a DAG
	// pattern a candidate can only be enabled by already-promoted children,
	// so direct re-checking converges without a tentative fixpoint.
	var work []pair
	seen := make(map[pair]bool)
	push := func(u int, v graph.NodeID) {
		pr := pair{u, v}
		if !seen[pr] && e.isCandidate(u, v) {
			seen[pr] = true
			work = append(work, pr)
		}
	}
	for _, pe := range e.edges {
		if e.sat[pe.To].Has(v1) {
			push(pe.From, v0)
		}
	}
	for len(work) > 0 {
		pr := work[len(work)-1]
		work = work[:len(work)-1]
		delete(seen, pr) // allow re-examination if another child promotes later
		e.stats.ClosureSize++
		if !e.isCandidate(pr.u, pr.v) || !e.supported(pr.u, pr.v) {
			continue
		}
		e.addMatch(pr.u, pr.v)
		// The new match may enable candidate parents.
		for _, ei := range e.inEdges[pr.u] {
			src := e.edges[ei].From
			for _, w := range e.g.In(pr.v) {
				push(src, w)
			}
		}
	}
	return true, nil
}

// supported reports whether candidate (u, v) has, for every pattern edge
// out of u, a child in the current match of the edge's target.
func (e *Engine) supported(u int, v graph.NodeID) bool {
	for _, ei := range e.outEdges[u] {
		tgt := e.edges[ei].To
		ok := false
		for _, w := range e.g.Out(v) {
			if e.match[tgt].Has(w) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// addMatch promotes (u, v) into match(u), installing its own counters and
// bumping the counters of its match parents.
func (e *Engine) addMatch(u int, v graph.NodeID) {
	e.match[u].Add(v)
	e.stats.Promotions++
	e.cs.NoteAdded(u, v)
	for _, ei := range e.outEdges[u] {
		tgt := e.edges[ei].To
		c := int32(0)
		for _, w := range e.g.Out(v) {
			if e.match[tgt].Has(w) {
				c++
			}
		}
		e.cnt[ei][v] = c
		e.stats.CounterUpdates++
	}
	for _, ei := range e.inEdges[u] {
		src := e.edges[ei].From
		for _, w := range e.g.In(v) {
			if e.match[src].Has(w) {
				e.cnt[ei][w]++
				e.stats.CounterUpdates++
			}
		}
	}
}

// promote runs the general-pattern promotion: the affected candidate
// closure (propCS + propCC of Fig. 9) followed by a greatest-fixpoint
// refinement over the tentative pairs. Seeds are candidate pairs adjacent
// to inserted cs/cc edges.
func (e *Engine) promote(seeds []pair) {
	// Phase 1: backward closure over candidate pairs. A candidate (u2, w)
	// can only flip if some G'-child x of w is a closure member for a child
	// pattern node — chase parents transitively.
	closure := make(map[pair]bool)
	var stack []pair
	push := func(pr pair) {
		if !closure[pr] {
			closure[pr] = true
			stack = append(stack, pr)
		}
	}
	for _, s := range seeds {
		if e.isCandidate(s.u, s.v) {
			push(s)
		}
	}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e.stats.ClosureSize++
		for _, ei := range e.inEdges[pr.u] {
			src := e.edges[ei].From
			for _, w := range e.g.In(pr.v) {
				if e.isCandidate(src, w) {
					push(pair{src, w})
				}
			}
		}
	}
	if len(closure) == 0 {
		return
	}

	// Phase 2: tentative promotion refined to the greatest fixpoint.
	// tentative[u] holds closure members per pattern node; support counts
	// include both current matches and tentative members, then members
	// without support are peeled off (match members are never affected —
	// their support cannot shrink during an insertion).
	np := e.p.NumNodes()
	tentative := make([]map[graph.NodeID]bool, np)
	for u := range tentative {
		tentative[u] = make(map[graph.NodeID]bool)
	}
	for pr := range closure {
		tentative[pr.u][pr.v] = true
	}
	tcnt := make(map[int]map[graph.NodeID]int32, len(e.edges))
	var queue []pair
	for pr := range closure {
		for _, ei := range e.outEdges[pr.u] {
			tgt := e.edges[ei].To
			c := int32(0)
			for _, w := range e.g.Out(pr.v) {
				if e.match[tgt].Has(w) || tentative[tgt][w] {
					c++
				}
			}
			if tcnt[ei] == nil {
				tcnt[ei] = make(map[graph.NodeID]int32)
			}
			tcnt[ei][pr.v] = c
		}
	}
	for pr := range closure {
		for _, ei := range e.outEdges[pr.u] {
			if tcnt[ei][pr.v] == 0 && tentative[pr.u][pr.v] {
				delete(tentative[pr.u], pr.v)
				queue = append(queue, pr)
			}
		}
	}
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ei := range e.inEdges[rm.u] {
			src := e.edges[ei].From
			for _, w := range e.g.In(rm.v) {
				if !tentative[src][w] {
					continue
				}
				tcnt[ei][w]--
				if tcnt[ei][w] == 0 {
					delete(tentative[src], w)
					queue = append(queue, pair{src, w})
				}
			}
		}
	}

	// Phase 3: integrate survivors as new matches and repair counters. New
	// pairs get fresh counters; old match parents of new pairs get
	// incremented once per new child.
	var newPairs []pair
	for u := range tentative {
		for v := range tentative[u] {
			e.match[u].Add(v)
			e.stats.Promotions++
			e.cs.NoteAdded(u, v)
			newPairs = append(newPairs, pair{u, v})
		}
	}
	isNew := func(u int, v graph.NodeID) bool { return tentative[u][v] }
	for _, pr := range newPairs {
		for _, ei := range e.outEdges[pr.u] {
			tgt := e.edges[ei].To
			c := int32(0)
			for _, w := range e.g.Out(pr.v) {
				if e.match[tgt].Has(w) {
					c++
				}
			}
			e.cnt[ei][pr.v] = c
			e.stats.CounterUpdates++
		}
		for _, ei := range e.inEdges[pr.u] {
			src := e.edges[ei].From
			for _, w := range e.g.In(pr.v) {
				if e.match[src].Has(w) && !isNew(src, w) {
					e.cnt[ei][w]++
					e.stats.CounterUpdates++
				}
			}
		}
	}
}
