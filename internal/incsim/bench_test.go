package incsim

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/simulation"
)

// Ablation: the batch IncMatch versus the naive unit loop versus full
// recomputation, at a fixed update volume — the core claim of Theorem 5.1.

func benchSetup(b *testing.B) (*graph.Graph, *Engine, []graph.Update) {
	b.Helper()
	g := generator.Synthetic(2000, 9000, generator.DefaultSchema(8), 1)
	p := generator.Pattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 2, K: 1}, 3)
	e, err := New(p, g)
	if err != nil {
		b.Fatal(err)
	}
	ups := generator.Updates(g, 100, 100, 5)
	return g, e, ups
}

func BenchmarkBatchIncMatch(b *testing.B) {
	_, e, ups := benchSetup(b)
	inverse := invert(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Batch(ups)
		e.Batch(inverse) // restore, so every iteration sees the same state
	}
}

func BenchmarkNaiveIncMatchn(b *testing.B) {
	_, e, ups := benchSetup(b)
	inverse := invert(ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(ups)
		e.Apply(inverse)
	}
}

func BenchmarkBatchRecomputeMatchs(b *testing.B) {
	g, e, ups := benchSetup(b)
	inverse := invert(ups)
	p := e.Pattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApplyAll(ups) //nolint:errcheck
		simulation.Maximum(p, g)
		g.ApplyAll(inverse) //nolint:errcheck
		simulation.Maximum(p, g)
	}
}

func BenchmarkUnitDelete(b *testing.B) {
	_, e, _ := benchSetup(b)
	// Pick an existing edge and toggle it.
	var u, v graph.NodeID = -1, -1
	e.Graph().Edges(func(a, c graph.NodeID) bool { u, v = a, c; return false })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Delete(u, v)
		e.Insert(u, v)
	}
}

func BenchmarkMinDeltaReduction(b *testing.B) {
	_, e, ups := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MinDelta(ups)
	}
}

func invert(ups []graph.Update) []graph.Update {
	inv := make([]graph.Update, len(ups))
	for i, up := range ups {
		inv[len(ups)-1-i] = up.Inverse()
	}
	return inv
}
