package incsim

// IncMatch (Fig. 10): batch updates. The algorithm first reduces ΔG with
// minDelta — same-edge insert/delete cancellation, relevance filtering
// against match()/candt(), and topological-rank redundancy elimination
// (Lemma 5.1) — then handles all deletions simultaneously (one counter
// sweep + one cascade) and all insertions simultaneously (one promotion
// closure), rather than one update at a time.

import (
	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/rel"
)

// BatchResult reports what a batch application did — the minDelta reduction
// statistics of Fig. 20(a) plus the affected-area outcome.
type BatchResult struct {
	Original  int // updates submitted
	Effective int // after same-edge cancellation against the graph state
	Relevant  int // after relevance + rank filtering (updates actually processed)
	Removed   int // match pairs removed
	Added     int // match pairs added
}

// Batch applies a mixed list of edge insertions and deletions, repairing
// the match incrementally while processing the updates together.
func (e *Engine) Batch(ups []graph.Update) BatchResult {
	res, _ := e.BatchDelta(ups)
	return res
}

// BatchDelta is Batch additionally reporting the visible match delta ΔM of
// the whole batch (with intra-batch remove/add cancellation).
func (e *Engine) BatchDelta(ups []graph.Update) (BatchResult, rel.Delta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	res := e.batchLocked(ups)
	return res, e.endChanges()
}

func (e *Engine) batchLocked(ups []graph.Update) BatchResult {
	res := BatchResult{Original: len(ups)}
	before := int(e.stats.Removals)
	beforeAdd := int(e.stats.Promotions)

	net := graph.NetUpdates(e.g, ups)
	res.Effective = len(net)
	// The hot path uses the cancellation + relevance reductions only; the
	// topological-rank filter (Lemma 5.1) costs an O(|G|) pass, which pays
	// off for reporting (MinDelta) but not inside the repair loop.

	// Apply everything to the graph first so cascades and closures see the
	// final adjacency.
	var relevant []graph.Update
	for _, up := range net {
		if up.Op == graph.InsertEdge {
			if _, err := e.g.AddEdge(up.From, up.To); err != nil {
				continue
			}
		} else {
			e.g.RemoveEdge(up.From, up.To)
		}
		if e.isRelevant(up, nil) {
			relevant = append(relevant, up)
		}
	}
	res.Relevant = len(relevant)

	// Counter sweep: all deletions and ss insertions adjust support counters
	// in one pass, so an insert and a delete hitting the same (pattern edge,
	// source) pair cancel without triggering a spurious removal cascade.
	// The scan phase only reads match(), so it fans out across the worker
	// pool; the counter mutations are applied serially from the per-worker
	// op lists (map writes may not race even on distinct keys).
	var queue []pair
	touched := make(map[int]map[graph.NodeID]bool)
	type cop struct {
		ei int
		v  graph.NodeID
		d  int32
	}
	w := par.Resolve(e.workers, len(relevant))
	ops := make([][]cop, w)
	par.For(len(relevant), w, func(worker, i int) {
		up := relevant[i]
		for ei, pe := range e.edges {
			if !e.match[pe.From].Has(up.From) || !e.match[pe.To].Has(up.To) {
				continue
			}
			d := int32(1)
			if up.Op == graph.DeleteEdge {
				d = -1
			}
			ops[worker] = append(ops[worker], cop{ei, up.From, d})
		}
	})
	for _, list := range ops {
		for _, o := range list {
			e.cnt[o.ei][o.v] += o.d
			e.stats.CounterUpdates++
			if touched[o.ei] == nil {
				touched[o.ei] = make(map[graph.NodeID]bool)
			}
			touched[o.ei][o.v] = true
		}
	}
	for ei, nodes := range touched {
		src := e.edges[ei].From
		for v := range nodes {
			if e.cnt[ei][v] == 0 && e.match[src].Has(v) {
				e.match[src].Remove(v)
				queue = append(queue, pair{src, v})
			}
		}
	}
	e.cascade(queue)

	// Promotion: seed from all inserted edges at once, against the
	// post-cascade candidate sets.
	var seeds []pair
	seen := make(map[pair]bool)
	for _, up := range relevant {
		if up.Op != graph.InsertEdge {
			continue
		}
		for _, pe := range e.edges {
			pr := pair{pe.From, up.From}
			if !seen[pr] && e.isCandidate(pe.From, up.From) && e.sat[pe.To].Has(up.To) {
				seen[pr] = true
				seeds = append(seeds, pr)
			}
		}
	}
	if len(seeds) > 0 {
		e.promote(seeds)
	}

	res.Removed = int(e.stats.Removals) - before
	res.Added = int(e.stats.Promotions) - beforeAdd
	return res
}

// Apply is the naive IncMatchn baseline: it processes the batch one unit
// update at a time through IncMatch⁺/IncMatch⁻, with no minDelta reduction.
func (e *Engine) Apply(ups []graph.Update) {
	e.ApplyDelta(ups)
}

// ApplyDelta is Apply additionally reporting the visible match delta ΔM of
// the whole batch.
func (e *Engine) ApplyDelta(ups []graph.Update) rel.Delta {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			e.insertLocked(up.From, up.To)
		} else {
			e.deleteLocked(up.From, up.To)
		}
	}
	return e.endChanges()
}

// relevanceRanks computes the topological ranks used by the Lemma 5.1
// filter: pattern-node ranks over P and data-node ranks over G ⊕ ΔG (the
// full graph bounds the candidate-induced GI from above, which keeps the
// filter sound). Returns nil when the pattern has an infinite-rank node
// everywhere (no filtering power).
type rankInfo struct {
	pat  []int
	data []int
}

func (e *Engine) relevanceRanks(net []graph.Update) *rankInfo {
	// Rank filtering needs the post-update graph; simulate it on a clone of
	// the adjacency (cheap relative to a batch run, O(|G| + |ΔG|)). Owned
	// engines take the bulk structural Clone; only shared engines pay the
	// generic per-edge materialization of their overlay view.
	var g2 *graph.Graph
	if e.own != nil {
		g2 = e.own.Clone()
	} else {
		g2 = graph.CloneView(e.g)
	}
	for _, up := range net {
		g2.Apply(up) //nolint:errcheck // net updates are in-range
	}
	return &rankInfo{pat: e.p.AsGraph().TopologicalRanks(), data: g2.TopologicalRanks()}
}

// isRelevant reports whether an update can possibly change the match or the
// auxiliary counters (the filtering of minDelta, lines 1-6 of Fig. 10, plus
// the rank rule of Lemma 5.1).
func (e *Engine) isRelevant(up graph.Update, ranks *rankInfo) bool {
	for _, pe := range e.edges {
		if up.Op == graph.DeleteEdge {
			// Only ss deletions matter (Prop. 5.1).
			if e.match[pe.From].Has(up.From) && e.match[pe.To].Has(up.To) {
				return true
			}
			continue
		}
		// Insertions: endpoints must satisfy the pattern edge's predicates…
		if !e.sat[pe.From].Has(up.From) || !e.sat[pe.To].Has(up.To) {
			continue
		}
		// …and by Lemma 5.1 a node whose rank is below the pattern node's
		// can never match it, so such an edge can never contribute.
		if ranks != nil {
			if !rankLE(ranks.pat[pe.From], ranks.data[up.From]) ||
				!rankLE(ranks.pat[pe.To], ranks.data[up.To]) {
				continue
			}
		}
		return true
	}
	return false
}

// rankLE compares topological ranks with ∞ handling: r(u) ≤ r(v).
func rankLE(ru, rv int) bool {
	if ru == graph.RankInfinite {
		return rv == graph.RankInfinite
	}
	return rv == graph.RankInfinite || ru <= rv
}

// MinDelta exposes the update-reduction statistics without applying
// anything: it reports how many of the submitted updates survive
// cancellation and relevance/rank filtering (Fig. 20(a)). The engine and
// graph are left untouched.
func (e *Engine) MinDelta(ups []graph.Update) BatchResult {
	e.mu.RLock()
	defer e.mu.RUnlock()
	res := BatchResult{Original: len(ups)}
	net := graph.NetUpdates(e.g, ups)
	res.Effective = len(net)
	ranks := e.relevanceRanks(net)
	for _, up := range net {
		if e.isRelevant(up, ranks) {
			res.Relevant++
		}
	}
	return res
}
