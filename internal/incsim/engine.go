// Package incsim implements incremental graph simulation (Section 5): the
// unit-update algorithms IncMatch⁻ (edge deletion, Fig. 8) and IncMatch⁺ /
// IncMatch⁺dag (edge insertion, Fig. 9), and the batch algorithm IncMatch
// with the minDelta update reduction (Fig. 10).
//
// The Engine maintains the paper's auxiliary structures: match(u) — the
// per-pattern-node maximum simulation sets — and candt(u), nodes satisfying
// the predicate of u but not currently matching (sat(u) \ match(u)),
// together with per-pattern-edge support counters (how many children of a
// match support each pattern edge). The affected area AFF is exactly the
// set of match()/candt()/counter entries an update touches, and the engine
// tallies it in Stats.
//
// Internally match(u) holds the greatest simulation relation per node even
// when some pattern node has no match — that is the "partial matches"
// auxiliary information the paper's semi-boundedness analysis relies on
// (Example 4.3). Result() applies the totality convention: if any pattern
// node is unmatched the user-visible match is the empty relation.
package incsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
	"gpm/internal/resultgraph"
)

// Stats tallies the affected area AFF touched by incremental maintenance.
type Stats struct {
	Removals       int64 // match pairs invalidated
	Promotions     int64 // candidate pairs promoted to matches
	CounterUpdates int64 // support counter adjustments
	ClosureSize    int64 // candidate pairs examined by insertion closures
}

// Total returns a scalar |AFF| measure.
func (s Stats) Total() int64 {
	return s.Removals + s.Promotions + s.CounterUpdates + s.ClosureSize
}

// Engine maintains the maximum simulation of a normal pattern over a
// mutable data graph. The engine owns the graph: all edge updates must go
// through the engine's methods so the auxiliary structures stay consistent.
//
// The engine is safe for concurrent use: writers (Insert/InsertDAG/Delete/
// Batch/Apply) are serialized by an internal mutex, and readers (Result,
// ResultGraph, IsMatch, IsCandidate, Stats, MinDelta) may run concurrently
// with each other and block only while a writer is applying an update.
type Engine struct {
	mu sync.RWMutex
	p  *pattern.Pattern
	// g is the graph every algorithm reads and writes. In owned mode it is
	// the *graph.Graph passed to New; in shared mode (NewShared) it is a
	// private overlay over a base View the engine does not own, so repairs
	// see their own mutations while the base stays untouched.
	g        graph.Mutable
	own      *graph.Graph   // the owned graph (nil in shared mode)
	ov       *graph.Overlay // the private overlay (nil in owned mode)
	edges    []pattern.Edge
	outEdges [][]int // pattern-edge indices by source pattern node
	inEdges  [][]int // pattern-edge indices by target pattern node

	sat   rel.Relation // sat(u): nodes satisfying fV(u); static under edge updates
	match rel.Relation // match(u): greatest simulation per pattern node
	// cnt[e][v]: for v ∈ match(src(e)), the number of children of v in
	// match(tgt(e)) — the support that keeps v alive for pattern edge e.
	cnt []map[graph.NodeID]int32

	workers int          // parallelism of the batch counter sweep (0 = default)
	presat  rel.Relation // injected sat sets (WithSat), nil to scan the graph

	// Per-write change-set: armed by beginChanges, recorded by cascade and
	// the promotion paths, converted to a user-visible ΔM by endChanges.
	// Nil outside a write (and during the initial rebuild).
	cs *rel.ChangeSet

	// snap caches the user-visible Result() snapshot between writes; any
	// write that changes match() invalidates it, so repeated reads are
	// allocation-free and never block behind each other.
	snap atomic.Pointer[rel.Relation]

	stats Stats
}

// Option configures the engine.
type Option func(*Engine)

// WithWorkers bounds the parallelism of the batch counter sweep: 0 selects
// the default (par.DefaultWorkers), 1 keeps the sweep serial.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithSat injects precomputed satisfaction sets instead of scanning the
// graph at build time: sat[u] must equal {v : fV(u) holds on v's attributes}
// over the engine's graph, with len(sat) == the pattern's node count. The
// engine reads the given sets but never mutates them, so one sat relation
// may be shared across many engines — the shared evaluation network injects
// each predicate node's set into every engine that uses the predicate.
func WithSat(sat rel.Relation) Option {
	return func(e *Engine) { e.presat = sat }
}

// New builds an engine for pattern p over graph g, computing the initial
// maximum simulation with the batch algorithm. The pattern must be normal
// (every bound 1); a non-normal pattern is rejected since incremental
// simulation is defined on normal patterns (use incbsim for b-patterns).
func New(p *pattern.Pattern, g *graph.Graph, options ...Option) (*Engine, error) {
	return build(p, g, g, nil, options)
}

// NewShared builds an engine that reads base through a private update
// overlay instead of owning a graph replica: per-pattern memory is the
// engine's auxiliary structures only, O(pattern-state) instead of O(|G|).
//
// Contract: every write call (Insert/Delete/Batch/Apply and their *Delta
// forms) repairs the match against base ⊕ updates and then discards the
// overlay, so the caller must commit exactly those effective updates to
// the base before the next write — contq's Registry applies the batch to
// the canonical graph right after the engine fan-out returns.
func NewShared(p *pattern.Pattern, base graph.View, options ...Option) (*Engine, error) {
	ov := graph.NewOverlay(base)
	return build(p, ov, nil, ov, options)
}

func build(p *pattern.Pattern, g graph.Mutable, own *graph.Graph, ov *graph.Overlay, options []Option) (*Engine, error) {
	if !p.IsNormal() {
		return nil, fmt.Errorf("incsim: pattern is not normal; bounded patterns need incbsim")
	}
	if p.HasColors() {
		return nil, fmt.Errorf("incsim: colored patterns are batch-only (use core.MatchColored)")
	}
	e := &Engine{p: p, g: g, own: own, ov: ov, edges: p.Edges()}
	for _, o := range options {
		o(e)
	}
	np := p.NumNodes()
	e.outEdges = make([][]int, np)
	e.inEdges = make([][]int, np)
	for i, pe := range e.edges {
		e.outEdges[pe.From] = append(e.outEdges[pe.From], i)
		e.inEdges[pe.To] = append(e.inEdges[pe.To], i)
	}
	if e.presat != nil {
		if len(e.presat) != np {
			return nil, fmt.Errorf("incsim: WithSat: %d sets for %d pattern nodes", len(e.presat), np)
		}
		e.sat = e.presat
	} else {
		e.sat = rel.NewRelation(np)
		for u := 0; u < np; u++ {
			pred := p.Pred(u)
			for v := 0; v < g.NumNodes(); v++ {
				if pred.Eval(g.Attrs(v)) {
					e.sat[u].Add(v)
				}
			}
		}
	}
	e.rebuild()
	return e, nil
}

// rebuild recomputes match() and all counters from scratch (batch
// computation of the per-node greatest simulation).
func (e *Engine) rebuild() {
	np := e.p.NumNodes()
	e.match = make(rel.Relation, np)
	for u := 0; u < np; u++ {
		e.match[u] = e.sat[u].Clone()
	}
	e.cnt = make([]map[graph.NodeID]int32, len(e.edges))
	var queue []pair
	for i, pe := range e.edges {
		e.cnt[i] = make(map[graph.NodeID]int32, e.match[pe.From].Len())
		for v := range e.match[pe.From] {
			c := int32(0)
			for _, w := range e.g.Out(v) {
				if e.match[pe.To].Has(w) {
					c++
				}
			}
			e.cnt[i][v] = c
		}
	}
	for i, pe := range e.edges {
		for v, c := range e.cnt[i] {
			if c == 0 && e.match[pe.From].Has(v) {
				e.match[pe.From].Remove(v)
				queue = append(queue, pair{pe.From, v})
			}
		}
	}
	e.cascade(queue)
}

// pair is a (pattern node, data node) entry.
type pair struct {
	u int
	v graph.NodeID
}

// beginChanges arms the per-write change-set: until endChanges, every
// match() mutation is recorded (with add/remove cancellation) so the write
// can report its visible ΔM. Callers must hold the write lock.
func (e *Engine) beginChanges() { e.cs = rel.NewChangeSet(e.match) }

// endChanges disarms the change-set and converts it to the user-visible
// delta under the totality convention. A visible change invalidates the
// cached Result() snapshot. In shared mode it also discards the write's
// overlay diff: the repair is done, and the base owner commits the same
// updates before the next write (the NewShared contract).
func (e *Engine) endChanges() rel.Delta {
	d := e.cs.End(e.match)
	e.cs = nil
	if !d.Empty() {
		e.snap.Store(nil)
	}
	if e.ov != nil {
		e.ov.Reset()
	}
	return d
}

// cascade propagates a queue of match removals (the worklist of IncMatch⁻):
// each removal decrements the support counters of its match parents, and
// counters hitting zero enqueue further removals. Runs in O(|AFF|).
func (e *Engine) cascade(queue []pair) {
	for len(queue) > 0 {
		rm := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		e.stats.Removals++
		e.cs.NoteRemoved(rm.u, rm.v)
		// Drop the removed pair's own stale counters.
		for _, ei := range e.outEdges[rm.u] {
			delete(e.cnt[ei], rm.v)
		}
		for _, ei := range e.inEdges[rm.u] {
			src := e.edges[ei].From
			for _, w := range e.g.In(rm.v) {
				if !e.match[src].Has(w) {
					continue
				}
				e.cnt[ei][w]--
				e.stats.CounterUpdates++
				if e.cnt[ei][w] == 0 {
					e.match[src].Remove(w)
					queue = append(queue, pair{src, w})
				}
			}
		}
	}
}

// Pattern returns the engine's pattern.
func (e *Engine) Pattern() *pattern.Pattern { return e.p }

// Graph returns the engine's owned data graph, nil for a shared engine
// (NewShared). Callers must not mutate it directly; use Insert/Delete/
// Batch.
func (e *Engine) Graph() *graph.Graph { return e.own }

// SharedBase returns the base view a shared engine reads through, nil for
// an owned engine. It exists so owners (and tests) can assert that storage
// really is shared rather than cloned.
func (e *Engine) SharedBase() graph.View {
	if e.ov == nil {
		return nil
	}
	return e.ov.Base()
}

// Stats returns the cumulative affected-area statistics.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// ResetStats clears the cumulative statistics.
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// MatchSets exposes the internal per-node greatest simulation sets (the
// match() auxiliary structure). The caller must not mutate them; the sets
// are live, so do not use them while writers may run.
func (e *Engine) MatchSets() rel.Relation { return e.match }

// IsMatch reports whether (u, v) is in the current match() structure.
func (e *Engine) IsMatch(u int, v graph.NodeID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.match[u].Has(v)
}

// IsCandidate reports whether v ∈ candt(u): it satisfies fV(u) but does not
// currently match u.
func (e *Engine) IsCandidate(u int, v graph.NodeID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.isCandidate(u, v)
}

func (e *Engine) isCandidate(u int, v graph.NodeID) bool {
	return e.sat[u].Has(v) && !e.match[u].Has(v)
}

// Result returns the maximum simulation Msim(P, G) under the totality
// convention: empty when some pattern node has no match.
//
// The returned relation is a shared immutable snapshot: callers must not
// mutate it. The snapshot is cached until the next write invalidates it,
// so repeated reads between updates are allocation-free and the fast path
// takes no lock at all.
func (e *Engine) Result() rel.Relation {
	if p := e.snap.Load(); p != nil {
		return *p
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if p := e.snap.Load(); p != nil {
		return *p
	}
	r := e.result()
	e.snap.Store(&r)
	return r
}

func (e *Engine) result() rel.Relation {
	for _, s := range e.match {
		if s.Len() == 0 {
			return rel.NewRelation(len(e.match))
		}
	}
	return e.match.Clone()
}

// ResultGraph builds the result graph Gr of the current match.
func (e *Engine) ResultGraph() *resultgraph.Graph {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return resultgraph.FromSimulation(e.p, e.g, e.result())
}

// checkInvariants verifies internal consistency (used by tests): counters
// equal recounts, match ⊆ sat, and every match pair has support.
func (e *Engine) checkInvariants() error {
	for u := range e.match {
		for v := range e.match[u] {
			if !e.sat[u].Has(v) {
				return fmt.Errorf("match(%d) contains %d not in sat", u, v)
			}
		}
	}
	for i, pe := range e.edges {
		for v := range e.match[pe.From] {
			c := int32(0)
			for _, w := range e.g.Out(v) {
				if e.match[pe.To].Has(w) {
					c++
				}
			}
			if e.cnt[i][v] != c {
				return fmt.Errorf("cnt[%d][%d] = %d, recount = %d", i, v, e.cnt[i][v], c)
			}
			if c == 0 {
				return fmt.Errorf("match pair (%d,%d) has no support for edge %d", pe.From, v, i)
			}
		}
	}
	return nil
}
