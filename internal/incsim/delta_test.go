package incsim

import (
	"reflect"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// TestDeltaEquivalence replays random update streams and checks, after
// every unit update and batch, that the reported ΔM applied to the old
// visible result reproduces the new visible result exactly.
func TestDeltaEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := generator.Synthetic(100, 400, generator.DefaultSchema(3), seed)
		p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
		e, err := New(p, g)
		if err != nil {
			t.Fatal(err)
		}
		acc := e.Result().Clone()
		for _, up := range generator.Updates(g, 50, 50, seed+10) {
			if up.Op == graph.InsertEdge {
				_, delta := e.InsertDelta(up.From, up.To)
				delta.Apply(acc)
			} else {
				_, delta := e.DeleteDelta(up.From, up.To)
				delta.Apply(acc)
			}
			if !acc.Equal(e.Result()) {
				t.Fatalf("seed %d: accumulated deltas diverge from Result() after %v", seed, up)
			}
		}
	}
}

// TestBatchDeltaEquivalence checks the batch path: the batch's single ΔM
// applied to the pre-batch result equals the post-batch result.
func TestBatchDeltaEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := generator.Synthetic(100, 400, generator.DefaultSchema(3), seed)
		p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
		e, err := New(p, g)
		if err != nil {
			t.Fatal(err)
		}
		ups := generator.Updates(g, 40, 40, seed+20)
		for i := 0; i < len(ups); i += 10 {
			end := i + 10
			if end > len(ups) {
				end = len(ups)
			}
			before := e.Result().Clone()
			_, delta := e.BatchDelta(ups[i:end])
			delta.Apply(before)
			if !before.Equal(e.Result()) {
				t.Fatalf("seed %d: batch delta diverges from Result() at chunk %d", seed, i)
			}
		}
	}
}

// TestDeltaTotalityCollapse drives the match through both totality
// transitions: deleting the last support of a pattern node must emit the
// entire old relation as removed, and restoring it must emit the entire
// new relation as added.
func TestDeltaTotalityCollapse(t *testing.T) {
	g := graph.New()
	a := g.AddNode(graph.NewTuple("label", `"A"`))
	b := g.AddNode(graph.NewTuple("label", `"B"`))
	b2 := g.AddNode(graph.NewTuple("label", `"B"`))
	g.AddEdge(a, b)
	g.AddEdge(a, b2)

	p := pattern.New()
	pa := p.AddNode(pattern.Label("A"))
	pb := p.AddNode(pattern.Label("B"))
	if err := p.AddEdge(pa, pb, 1); err != nil {
		t.Fatal(err)
	}

	e, err := New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Result().Size() != 3 {
		t.Fatalf("initial result = %v", e.Result())
	}

	// Removing one of two children leaves every pair alive (simulation has
	// no parent condition, so b2 keeps matching pb): the delta is empty.
	_, d := e.DeleteDelta(a, b2)
	if !d.Empty() {
		t.Fatalf("delta after first delete = %+v", d)
	}
	// Removing the final child collapses totality: a no longer matches pa,
	// so the visible result goes from {(pa,a),(pb,b)} to ∅.
	before := e.Result().Clone()
	_, d = e.DeleteDelta(a, b)
	if len(d.Removed) != before.Size() || len(d.Added) != 0 {
		t.Fatalf("collapse delta = %+v, want %d removals", d, before.Size())
	}
	acc := before
	d.Apply(acc)
	if !acc.Equal(e.Result()) || !e.Result().Empty() {
		t.Fatalf("post-collapse accumulation = %v, result = %v", acc, e.Result())
	}
	// Restoring the edge flips ∅ → total: everything appears as added.
	_, d = e.InsertDelta(a, b)
	if len(d.Added) == 0 || len(d.Removed) != 0 {
		t.Fatalf("restore delta = %+v", d)
	}
	d.Apply(acc)
	if !acc.Equal(e.Result()) {
		t.Fatalf("post-restore accumulation diverges: %v vs %v", acc, e.Result())
	}
}

// TestResultSnapshotCached verifies that repeated Result() calls between
// writes return the same cached snapshot (no re-clone), and that a write
// invalidates it.
func TestResultSnapshotCached(t *testing.T) {
	g := generator.Synthetic(50, 200, generator.DefaultSchema(3), 1)
	p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, 1)
	e, err := New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	r1 := e.Result()
	r2 := e.Result()
	if reflect.ValueOf(r1).Pointer() != reflect.ValueOf(r2).Pointer() {
		t.Fatal("Result() re-allocated between writes")
	}
	ups := generator.Updates(g, 5, 5, 2)
	e.Batch(ups)
	r3 := e.Result()
	if !r3.Equal(e.Result()) {
		t.Fatal("post-write snapshot unstable")
	}
}

// TestParallelBatchSweepEquivalence runs the same batches through a serial
// and a parallel engine and demands identical results and invariants.
func TestParallelBatchSweepEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g1 := generator.Synthetic(120, 480, generator.DefaultSchema(3), seed)
		g2 := g1.Clone()
		p := generator.Pattern(g1, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
		serial, err := New(p, g1, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := New(p, g2, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		ups := generator.Updates(g1, 60, 60, seed+30)
		for i := 0; i < len(ups); i += 15 {
			end := i + 15
			if end > len(ups) {
				end = len(ups)
			}
			serial.Batch(ups[i:end])
			parallel.Batch(ups[i:end])
			if !serial.Result().Equal(parallel.Result()) {
				t.Fatalf("seed %d: parallel batch diverges at chunk %d", seed, i)
			}
			if err := parallel.checkInvariants(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}
