package incsim

// IncMatch⁻ (Fig. 8): single-edge deletion. By Proposition 5.1 only the
// deletion of an ss edge — one connecting two current matches of a pattern
// edge's endpoints — can shrink the match. The deletion decrements the
// source's support counter; a counter hitting zero invalidates the match
// and the invalidation cascades through the result graph, touching only the
// affected area.

import (
	"gpm/internal/graph"
	"gpm/internal/rel"
)

// Delete removes the edge (v0, v1) from the data graph and incrementally
// repairs the match. It reports whether the edge existed.
func (e *Engine) Delete(v0, v1 graph.NodeID) bool {
	ok, _ := e.DeleteDelta(v0, v1)
	return ok
}

// DeleteDelta is Delete additionally reporting the visible match delta ΔM
// of the update.
func (e *Engine) DeleteDelta(v0, v1 graph.NodeID) (bool, rel.Delta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.beginChanges()
	ok := e.deleteLocked(v0, v1)
	return ok, e.endChanges()
}

func (e *Engine) deleteLocked(v0, v1 graph.NodeID) bool {
	if !e.g.RemoveEdge(v0, v1) {
		return false
	}
	var queue []pair
	for ei, pe := range e.edges {
		// Only ss edges matter (Prop. 5.1): v0 a match of the source and v1
		// a match of the target.
		if !e.match[pe.From].Has(v0) || !e.match[pe.To].Has(v1) {
			continue
		}
		e.cnt[ei][v0]--
		e.stats.CounterUpdates++
		if e.cnt[ei][v0] == 0 {
			e.match[pe.From].Remove(v0)
			queue = append(queue, pair{pe.From, v0})
		}
	}
	e.cascade(queue)
	return true
}
