package incsim

import (
	"reflect"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/rel"
	"gpm/internal/simulation"
)

// TestSharedEngineMatchesOwned drives an owned engine and a shared engine
// (base + overlay) with identical batch streams, committing each batch to
// the shared base after the repair as the NewShared contract requires, and
// checks deltas, results and the batch recomputation all agree.
func TestSharedEngineMatchesOwned(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := generator.Synthetic(80, 320, generator.DefaultSchema(3), seed)
		p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
		base := g.Clone()
		owned, err := New(p, g.Clone())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewShared(p, base)
		if err != nil {
			t.Fatal(err)
		}
		if shared.Graph() != nil {
			t.Fatal("shared engine must not own a graph")
		}
		if shared.SharedBase() != graph.View(base) {
			t.Fatal("shared engine must read through the base it was given")
		}
		if !owned.Result().Equal(shared.Result()) {
			t.Fatalf("seed %d: initial results diverge", seed)
		}

		ups := generator.Updates(g, 40, 40, seed+10)
		for i := 0; i < len(ups); i += 7 {
			end := min(i+7, len(ups))
			batch := ups[i:end]
			_, d1 := owned.BatchDelta(batch)
			_, d2 := shared.BatchDelta(batch)
			if !reflect.DeepEqual(d1, d2) {
				t.Fatalf("seed %d batch %d: deltas diverge: %v vs %v", seed, i, d1, d2)
			}
			// The shared contract: the base owner commits the batch before
			// the next write.
			if _, err := base.ApplyAll(batch); err != nil {
				t.Fatal(err)
			}
			if !owned.Result().Equal(shared.Result()) {
				t.Fatalf("seed %d batch %d: results diverge", seed, i)
			}
		}
		if want := simulation.Maximum(p, base); !shared.Result().Equal(want) {
			t.Fatalf("seed %d: shared engine diverges from batch recomputation", seed)
		}
	}
}

// TestSharedEngineUnitUpdates exercises the unit Insert/Delete paths in
// shared mode: every unit write is immediately committed to the base, and
// the accumulated deltas must keep reproducing Result().
func TestSharedEngineUnitUpdates(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
		p := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: 1}, seed)
		base := g.Clone()
		owned, err := New(p, g.Clone())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewShared(p, base)
		if err != nil {
			t.Fatal(err)
		}
		acc := shared.Result().Clone()
		for _, up := range generator.Updates(g, 30, 30, seed+20) {
			var da, db rel.Delta
			if up.Op == graph.InsertEdge {
				_, da = owned.InsertDelta(up.From, up.To)
				_, db = shared.InsertDelta(up.From, up.To)
			} else {
				_, da = owned.DeleteDelta(up.From, up.To)
				_, db = shared.DeleteDelta(up.From, up.To)
			}
			if !reflect.DeepEqual(da, db) {
				t.Fatalf("seed %d: unit deltas diverge after %v", seed, up)
			}
			if _, err := base.Apply(up); err != nil {
				t.Fatal(err)
			}
			db.Apply(acc)
			if !acc.Equal(shared.Result()) {
				t.Fatalf("seed %d: accumulated shared deltas diverge after %v", seed, up)
			}
		}
		if !owned.Result().Equal(shared.Result()) {
			t.Fatalf("seed %d: final results diverge", seed)
		}
	}
}
