package incsim

import (
	"math/rand"
	"testing"

	"gpm/internal/fixtures"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
)

// mustEngine builds an engine or fails the test.
func mustEngine(t *testing.T, p *pattern.Pattern, g *graph.Graph) *Engine {
	t.Helper()
	e, err := New(p, g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// assertMatchesBatch verifies the engine result against batch recomputation
// and the internal invariants.
func assertMatchesBatch(t *testing.T, e *Engine, context string) {
	t.Helper()
	want := simulation.Maximum(e.Pattern(), e.Graph())
	if got := e.Result(); !got.Equal(want) {
		t.Fatalf("%s: incremental=%v batch=%v", context, got, want)
	}
	if err := e.checkInvariants(); err != nil {
		t.Fatalf("%s: invariant violated: %v", context, err)
	}
}

func TestNewRejectsBoundedPattern(t *testing.T) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 3)
	if _, err := New(p, graph.New()); err == nil {
		t.Fatal("want error for non-normal pattern")
	}
}

func TestInitialStateMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := generator.RandomGraph(15, 30, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 1, seed+100)
		e := mustEngine(t, p, g)
		assertMatchesBatch(t, e, "initial")
	}
}

func TestDeleteSSEdgeInvalidatesMatch(t *testing.T) {
	// Example 5.2 flavour: under the normalized FriendFeed pattern (every
	// bound 1), inserting Pat→Ann first gives Pat/Ann/Dan their matches;
	// deleting the ss edge Pat→Bill then strips Pat of its only biologist
	// and the invalidation cascades.
	p, g, ids, _ := fixtures.FriendFeed()
	e := mustEngine(t, p.Normalized(), g)
	e.Insert(ids["Pat"], ids["Ann"])
	assertMatchesBatch(t, e, "after enabling Pat")
	if !e.IsMatch(1, ids["Pat"]) {
		t.Fatalf("Pat should match DB: %v", e.MatchSets())
	}
	e.Delete(ids["Pat"], ids["Bill"])
	assertMatchesBatch(t, e, "after deleting (Pat, Bill)")
	if e.IsMatch(1, ids["Pat"]) {
		t.Fatal("Pat should no longer match DB")
	}
}

func TestDeleteIrrelevantEdgeTouchesNothing(t *testing.T) {
	p, g, ids, _ := fixtures.FriendFeed()
	e := mustEngine(t, p.Normalized(), g)
	e.ResetStats()
	// Tom→Ross connects a (leaf) biologist to a Med node: not an ss edge
	// for any pattern edge whose source has requirements. Removal must not
	// remove any matches.
	e.Delete(ids["Tom"], ids["Ross"])
	if got := e.Stats().Removals; got != 0 {
		t.Fatalf("irrelevant deletion removed %d matches", got)
	}
	assertMatchesBatch(t, e, "after irrelevant deletion")
}

func TestDeleteCascades(t *testing.T) {
	// Chain pattern a→b→c over a chain graph: deleting the last edge must
	// cascade the invalidation up the whole chain.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	c := p.AddNode(pattern.Label("c"))
	p.AddEdge(a, b, 1)
	p.AddEdge(b, c, 1)

	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb := g.AddNode(graph.NewTuple("label", `"b"`))
	gc := g.AddNode(graph.NewTuple("label", `"c"`))
	g.AddEdge(ga, gb)
	g.AddEdge(gb, gc)

	e := mustEngine(t, p, g)
	if e.Result().Empty() {
		t.Fatal("initial match should be nonempty")
	}
	e.Delete(gb, gc)
	if !e.Result().Empty() {
		t.Fatalf("after cutting b→c: %v, want empty", e.Result())
	}
	// Internal structure: both gb (no c child) and ga (no valid b child)
	// must have been invalidated.
	if e.IsMatch(a, ga) || e.IsMatch(b, gb) {
		t.Fatal("cascade failed to invalidate ancestors")
	}
	assertMatchesBatch(t, e, "after cascade")
}

func TestInsertPromotesCandidate(t *testing.T) {
	// Under the normalized FriendFeed pattern the CTO/DB sets start empty
	// (no 1-hop DB→CTO edge exists). Inserting Pat→Ann promotes the whole
	// mutually-recursive {Ann, Pat, Dan} group — a cyclic-pattern promotion
	// — and inserting Don→Pat then promotes Don alone.
	p, g, ids, _ := fixtures.FriendFeed()
	e := mustEngine(t, p.Normalized(), g)
	if e.IsMatch(0, ids["Ann"]) {
		t.Fatal("Ann should not match CTO initially (no 1-hop DB support)")
	}
	e.Insert(ids["Pat"], ids["Ann"])
	assertMatchesBatch(t, e, "after inserting (Pat, Ann)")
	if !e.IsMatch(0, ids["Ann"]) || !e.IsMatch(1, ids["Pat"]) || !e.IsMatch(1, ids["Dan"]) {
		t.Fatalf("mutual promotion failed: %v", e.MatchSets())
	}
	if e.IsMatch(0, ids["Don"]) {
		t.Fatal("Don should not match CTO yet")
	}
	e.Insert(ids["Don"], ids["Pat"]) // e2 of Example 4.2
	assertMatchesBatch(t, e, "after inserting (Don, Pat)")
	if !e.IsMatch(0, ids["Don"]) {
		t.Fatalf("Don should match CTO after insertion: %v", e.MatchSets())
	}
}

func TestInsertCCEdgesFormSCC(t *testing.T) {
	// Proposition 5.2(3): cc edges alone add matches only inside pattern
	// SCCs. Pattern a⇄b; graph candidates a0, b0 with only one direction.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)
	p.AddEdge(b, a, 1)

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(a0, b0)

	e := mustEngine(t, p, g)
	if !e.Result().Empty() {
		t.Fatal("one-directional pair should not match a cycle pattern")
	}
	// Inserting the cc edge (b0, a0) completes the mutual support: both
	// candidates must be promoted together (the propCC case).
	e.Insert(b0, a0)
	assertMatchesBatch(t, e, "after closing the 2-cycle")
	if !e.IsMatch(a, a0) || !e.IsMatch(b, b0) {
		t.Fatalf("SCC promotion failed: %v", e.MatchSets())
	}
}

func TestUnitUpdatesMatchBatchRandomized(t *testing.T) {
	// The central property: after any update sequence, the incremental
	// result equals batch recomputation, for cyclic and acyclic patterns.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := generator.RandomGraph(14, 20, 3, int64(trial))
		p := generator.RandomPattern(4, 5, 3, 1, int64(trial)+300)
		e := mustEngine(t, p, g)
		n := g.NumNodes()
		for step := 0; step < 40; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				e.Insert(u, v)
			} else {
				e.Delete(u, v)
			}
			assertMatchesBatch(t, e, "randomized step")
		}
	}
}

func TestInsertDAGMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := generator.RandomGraph(14, 20, 3, int64(trial)+50)
		p := generator.DAGPattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 1, K: 1}, int64(trial)+400)
		e := mustEngine(t, p, g)
		n := g.NumNodes()
		for step := 0; step < 30; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if _, err := e.InsertDAG(u, v); err != nil {
				t.Fatalf("InsertDAG: %v", err)
			}
			assertMatchesBatch(t, e, "dag insertion step")
		}
	}
}

func TestInsertDAGRejectsCyclicPattern(t *testing.T) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	p.AddEdge(a, a, 1)
	g := graph.New()
	g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddNode(graph.NewTuple("label", `"a"`))
	e := mustEngine(t, p, g)
	if _, err := e.InsertDAG(0, 1); err == nil {
		t.Fatal("want error for cyclic pattern")
	}
}

func TestSimWitnessUnboundedJump(t *testing.T) {
	// Theorem 5.1(1) witness: two unit insertions, the first changes
	// nothing, the second flips the entire graph into the match.
	p, g, ups := fixtures.SimWitness(8)
	e := mustEngine(t, p, g)
	e.Insert(ups.E1.From, ups.E1.To)
	if !e.Result().Empty() {
		t.Fatal("after e1: match should still be empty")
	}
	e.Insert(ups.E2.From, ups.E2.To)
	assertMatchesBatch(t, e, "after e2")
	if got := e.Result().Size(); got != 16 {
		t.Fatalf("after e2: %d matches, want 16", got)
	}
}

func TestBatchMatchesBatchRecomputation(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		g := generator.RandomGraph(20, 40, 3, trial)
		p := generator.RandomPattern(4, 5, 3, 1, trial+700)
		e := mustEngine(t, p, g)
		ups := generator.Updates(g, 10, 10, trial+900)
		res := e.Batch(ups)
		assertMatchesBatch(t, e, "after batch")
		if res.Original != len(ups) {
			t.Fatalf("Original = %d, want %d", res.Original, len(ups))
		}
		if res.Effective > res.Original || res.Relevant > res.Effective {
			t.Fatalf("reduction not monotone: %+v", res)
		}
	}
}

func TestBatchCancellation(t *testing.T) {
	// Insert+delete of the same edge must cancel to zero effective updates.
	g := generator.RandomGraph(10, 15, 2, 3)
	p := generator.RandomPattern(3, 3, 2, 1, 4)
	e := mustEngine(t, p, g)
	// Choose a non-edge (u, v).
	var u, v graph.NodeID = -1, -1
	for i := 0; i < 10 && u < 0; i++ {
		for j := 0; j < 10; j++ {
			if i != j && !g.HasEdge(i, j) {
				u, v = i, j
				break
			}
		}
	}
	res := e.Batch([]graph.Update{graph.Insert(u, v), graph.Delete(u, v)})
	if res.Effective != 0 {
		t.Fatalf("Effective = %d, want 0 (cancelled)", res.Effective)
	}
	assertMatchesBatch(t, e, "after cancelling batch")
}

func TestBatchMixedInsertDeleteSameSupport(t *testing.T) {
	// The minDelta cancellation case of Example 5.5: deleting one support
	// edge while inserting another for the same (pattern edge, source) must
	// keep the match stable, with no removal/re-promotion churn.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)

	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb1 := g.AddNode(graph.NewTuple("label", `"b"`))
	gb2 := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(ga, gb1)

	e := mustEngine(t, p, g)
	e.ResetStats()
	res := e.Batch([]graph.Update{graph.Delete(ga, gb1), graph.Insert(ga, gb2)})
	assertMatchesBatch(t, e, "after swap batch")
	if res.Removed != 0 || res.Added != 0 {
		t.Fatalf("swap batch churned the match: %+v", res)
	}
	if !e.IsMatch(a, ga) {
		t.Fatal("ga should remain a match")
	}
}

func TestApplyNaiveMatchesBatch(t *testing.T) {
	for trial := int64(30); trial < 45; trial++ {
		g := generator.RandomGraph(16, 30, 3, trial)
		p := generator.RandomPattern(4, 5, 3, 1, trial+700)
		gBatch := g.Clone()
		eNaive := mustEngine(t, p, g)
		eBatch := mustEngine(t, p, gBatch)
		ups := generator.Updates(g, 8, 8, trial+900)
		eNaive.Apply(ups)
		eBatch.Batch(ups)
		if !eNaive.Result().Equal(eBatch.Result()) {
			t.Fatalf("trial %d: naive=%v batch=%v", trial, eNaive.Result(), eBatch.Result())
		}
		assertMatchesBatch(t, eNaive, "naive")
		assertMatchesBatch(t, eBatch, "batch")
	}
}

func TestMinDeltaDoesNotMutate(t *testing.T) {
	g := generator.RandomGraph(15, 30, 3, 5)
	p := generator.RandomPattern(4, 5, 3, 1, 6)
	e := mustEngine(t, p, g)
	edgesBefore := g.NumEdges()
	matchBefore := e.Result()
	ups := generator.Updates(g, 5, 5, 7)
	res := e.MinDelta(ups)
	if g.NumEdges() != edgesBefore {
		t.Fatal("MinDelta mutated the graph")
	}
	if !e.Result().Equal(matchBefore) {
		t.Fatal("MinDelta mutated the match")
	}
	if res.Relevant > res.Effective || res.Effective > res.Original {
		t.Fatalf("reduction not monotone: %+v", res)
	}
}

func TestMinDeltaFiltersIrrelevantLabels(t *testing.T) {
	// Updates among nodes whose labels appear nowhere in the pattern must
	// all be filtered out.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)

	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb := g.AddNode(graph.NewTuple("label", `"b"`))
	z1 := g.AddNode(graph.NewTuple("label", `"z"`))
	z2 := g.AddNode(graph.NewTuple("label", `"z"`))
	g.AddEdge(ga, gb)

	e := mustEngine(t, p, g)
	res := e.MinDelta([]graph.Update{graph.Insert(z1, z2), graph.Insert(z2, z1), graph.Insert(gb, z1)})
	if res.Relevant != 0 {
		t.Fatalf("Relevant = %d, want 0", res.Relevant)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	p, g, ids, _ := fixtures.FriendFeed()
	e := mustEngine(t, p.Normalized(), g)
	e.ResetStats()
	e.Insert(ids["Pat"], ids["Ann"]) // promotes Ann, Pat, Dan
	if e.Stats().Promotions == 0 {
		t.Fatal("stats should have recorded promotions")
	}
	e.ResetStats()
	if e.Stats().Total() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestResultGraphReflectsMatch(t *testing.T) {
	p, g, ids, _ := fixtures.FriendFeed()
	e := mustEngine(t, p.Normalized(), g)
	e.Insert(ids["Pat"], ids["Ann"])
	rg := e.ResultGraph()
	if !rg.Nodes.Has(ids["Ann"]) {
		t.Fatal("result graph missing Ann")
	}
	if rg.Nodes.Has(ids["Ross"]) {
		t.Fatal("result graph contains non-match Ross")
	}
	if !rg.HasEdge(ids["Ann"], ids["Pat"]) {
		t.Fatal("result graph missing projected edge Ann→Pat")
	}
}
