package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %d, want 9", got)
	}
}

func TestLabeledInstrumentsAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("req_total", "requests", L("code", "200"))
	b := r.Counter("req_total", "requests", L("code", "500"))
	if a == b {
		t.Fatalf("distinct label sets share an instrument")
	}
	// Label order must not matter for identity.
	h1 := r.Histogram("h_ms", "h", nil, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h_ms", "h", nil, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatalf("label order changed instrument identity")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering %q as both counter and gauge did not panic", "x")
		}
	}()
	r.Gauge("x", "x")
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.5, 5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if want := 0.5 + 0.5 + 5 + 5 + 5 + 50 + 500; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 500 {
		t.Fatalf("max = %v, want 500", s.Max)
	}
	// The median (rank 3.5 of 7) lands in the (1, 10] bucket.
	if s.P50 <= 1 || s.P50 > 10 {
		t.Fatalf("p50 = %v, want in (1, 10]", s.P50)
	}
	// The p99 lands in the overflow bucket and clamps to the max.
	if s.P99 != 500 {
		t.Fatalf("p99 = %v, want 500 (observed max)", s.P99)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_ms", "durations", nil)
	h.ObserveDuration(1500 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 1.5 {
		t.Fatalf("snapshot = %+v, want count 1 sum 1.5ms", s)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("e_ms", "empty", nil).Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
}

// TestHistogramConcurrency drives many goroutines through one histogram
// under -race and checks that (a) mid-flight snapshots are internally
// consistent — Count equals the sum of the bucket copy by construction,
// and never exceeds the number of observations started — and (b) the final
// merged totals are exact.
func TestHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_ms", "concurrent", []float64{1, 2, 4, 8, 16})
	const (
		goroutines = 8
		perG       = 10000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A snapshotting reader races the writers; every snapshot it takes
	// must satisfy the invariants.
	var snapErr error
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count > goroutines*perG {
				snapErr = &overErr{s.Count}
				return
			}
			if s.Count > 0 && (s.P50 < 0 || s.P99 > 16 && s.P99 != s.Max) {
				snapErr = &overErr{s.Count}
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%20) + 0.5)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWg.Wait()
	if snapErr != nil {
		t.Fatalf("mid-flight snapshot violated invariants: %v", snapErr)
	}
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("final count = %d, want %d", s.Count, goroutines*perG)
	}
	// Each goroutine observes 0.5..19.5 cyclically: exact expected sum.
	var want float64
	for i := 0; i < perG; i++ {
		want += float64(i%20) + 0.5
	}
	want *= goroutines
	if diff := s.Sum - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("final sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 19.5 {
		t.Fatalf("final max = %v, want 19.5", s.Max)
	}
}

type overErr struct{ n uint64 }

func (e *overErr) Error() string { return "bad snapshot" }

// TestConcurrentRegistration races get-or-create against itself: every
// caller must end up with the same instrument.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const n = 16
	got := make([]*Counter, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = r.Counter("same_total", "same", L("k", "v"))
			got[i].Inc()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different instrument", i)
		}
	}
	if v := got[0].Value(); v != n {
		t.Fatalf("counter = %d, want %d", v, n)
	}
}
