// Package trace is a dependency-free span tracer for the commit
// lifecycle. One trace follows a ΔG batch from HTTP ingest through the
// coalescing queue, every commit stage (validate, network repair,
// per-engine repair, journal, publish), SSE delivery, and — via the
// W3C traceparent carried on journal records and commit/delta frames —
// a follower's replicated apply, so a single trace ID spans the whole
// replication topology.
//
// Like internal/obs, this package must import nothing beyond the
// standard library (the CI gate enforces it): it sits on the commit hot
// path of every registry. The unsampled path is a nil *Span whose
// methods are no-ops, so tracing that is off costs one predictable
// branch per call site.
//
// Completed traces land in a bounded FIFO ring queryable by trace ID or
// commit sequence; gpserve exposes it at GET /v1/tracez.
package trace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier shared by every span of
// one trace, across processes.
type TraceID [16]byte

// SpanID is the 8-byte identifier of one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: enough to parent a
// remote child and to decide sampling, nothing more.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00), or "" for an invalid context — so the zero value can be
// dropped into an optional JSON field directly.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// Parse decodes a W3C traceparent header value. It accepts version 00
// (and, per spec, forward-parses unknown versions with the same layout),
// rejecting zero IDs and malformed fields.
func Parse(s string) (SpanContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" {
		return SpanContext{}, false
	}
	if len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) < 2 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, false
	}
	flags, err := hex.DecodeString(parts[3][:2])
	if err != nil || !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 == 1
	return sc, true
}

// Mode selects which traces a Tracer records.
type Mode int

const (
	// ModeOff records nothing and ignores upstream sampling decisions.
	ModeOff Mode = iota
	// ModeAlways records every trace.
	ModeAlways
	// ModeRatio records a deterministic fraction of root traces, hashed
	// from the trace ID so every node in a topology makes the same
	// decision for the same trace.
	ModeRatio
	// ModeSlow records every trace but prefers evicting traces that
	// never crossed the slow threshold, so the ring retains the stories
	// worth reading.
	ModeSlow
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAlways:
		return "always"
	case ModeRatio:
		return "ratio"
	case ModeSlow:
		return "slow"
	}
	return "unknown"
}

// Config sizes and samples a Tracer. The zero value is ModeOff.
type Config struct {
	Mode Mode
	// Ratio is the ModeRatio sampling fraction in [0,1].
	Ratio float64
	// SlowThreshold marks a trace slow (retained preferentially in
	// ModeSlow, flagged in snapshots) once any span meets it.
	SlowThreshold time.Duration
	// MaxTraces bounds the ring of retained traces (default 256).
	MaxTraces int
	// MaxSpans bounds spans recorded per trace (default 128); excess
	// spans are counted but dropped.
	MaxSpans int
}

// ParseSampling parses the gpserve -trace-sample flag syntax:
// "off", "always", "ratio:F" (F in [0,1]), or "slow:DUR" (a
// time.ParseDuration threshold, e.g. slow:250ms).
func ParseSampling(s string) (Config, error) {
	switch {
	case s == "off":
		return Config{Mode: ModeOff}, nil
	case s == "always":
		return Config{Mode: ModeAlways}, nil
	case strings.HasPrefix(s, "ratio:"):
		f, err := strconv.ParseFloat(s[len("ratio:"):], 64)
		if err != nil || f < 0 || f > 1 {
			return Config{}, fmt.Errorf("trace sampling %q: ratio must be a number in [0,1]", s)
		}
		return Config{Mode: ModeRatio, Ratio: f}, nil
	case strings.HasPrefix(s, "slow:"):
		d, err := time.ParseDuration(s[len("slow:"):])
		if err != nil || d <= 0 {
			return Config{}, fmt.Errorf("trace sampling %q: want slow:<duration>, e.g. slow:250ms", s)
		}
		return Config{Mode: ModeSlow, SlowThreshold: d}, nil
	}
	return Config{}, fmt.Errorf("trace sampling %q: want off, always, ratio:F, or slow:DUR", s)
}

// Tracer records spans into a bounded ring of traces. All methods are
// safe for concurrent use; a nil *Tracer is a valid always-off tracer.
type Tracer struct {
	cfg Config

	mu     sync.Mutex
	traces map[TraceID]*traceRec
	order  []TraceID // FIFO insertion order, oldest first
	bySeq  map[uint64]TraceID
}

type traceRec struct {
	id      TraceID
	start   time.Time
	slow    bool
	seqs    []uint64
	spans   []*spanRec
	dropped int
}

type spanRec struct {
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	dur    time.Duration
	seq    uint64
	attrs  map[string]any
	links  []SpanContext
	done   bool
}

// New builds a Tracer from cfg, applying defaults for zero bounds.
func New(cfg Config) *Tracer {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 128
	}
	return &Tracer{
		cfg:    cfg,
		traces: make(map[TraceID]*traceRec),
		bySeq:  make(map[uint64]TraceID),
	}
}

var defaultTracer = New(Config{Mode: ModeOff})

// Default returns the process-wide tracer. It is off: libraries pay the
// nil-span fast path unless a server installs a sampling tracer of its
// own (contq.WithTracer).
func Default() *Tracer { return defaultTracer }

// Enabled reports whether the tracer can record anything at all.
func (t *Tracer) Enabled() bool { return t != nil && t.cfg.Mode != ModeOff }

// Mode returns the tracer's sampling mode (ModeOff for nil).
func (t *Tracer) Mode() Mode {
	if t == nil {
		return ModeOff
	}
	return t.cfg.Mode
}

// sampleRatio decides deterministically from the trace ID, so a leader
// and its followers keep or drop the same traces without coordination.
func (t *Tracer) sampleRatio(id TraceID) bool {
	x := binary.BigEndian.Uint64(id[:8])
	return float64(x>>11)/(1<<53) < t.cfg.Ratio
}

func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], rand.Uint64())
	binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// StartRoot opens a new trace with a fresh trace ID, letting the
// tracer's mode decide sampling. It returns nil — the no-op span — when
// the trace is not sampled.
func (t *Tracer) StartRoot(name string) *Span { return t.StartRootAt(name, time.Now()) }

// StartRootAt is StartRoot with an explicit start time, for callers that
// stamped the operation's beginning before deciding to trace it.
func (t *Tracer) StartRootAt(name string, start time.Time) *Span {
	if !t.Enabled() {
		return nil
	}
	id := newTraceID()
	if t.cfg.Mode == ModeRatio && !t.sampleRatio(id) {
		return nil
	}
	return t.record(SpanContext{TraceID: id, SpanID: newSpanID(), Sampled: true}, SpanID{}, name, start)
}

// StartSpan opens a child span under parent. It returns nil unless the
// parent is a valid, sampled context and the tracer is enabled — an
// unsampled or absent parent never spawns recording downstream.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	return t.StartSpanAt(parent, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time — the delivery
// spans use the commit's publish instant so the span's duration reads
// as event age.
func (t *Tracer) StartSpanAt(parent SpanContext, name string, start time.Time) *Span {
	if !t.Enabled() || !parent.Valid() || !parent.Sampled {
		return nil
	}
	return t.record(SpanContext{TraceID: parent.TraceID, SpanID: newSpanID(), Sampled: true}, parent.SpanID, name, start)
}

func (t *Tracer) record(sc SpanContext, parent SpanID, name string, start time.Time) *Span {
	rec := &spanRec{name: name, id: sc.SpanID, parent: parent, start: start}
	t.mu.Lock()
	tr, ok := t.traces[sc.TraceID]
	if !ok {
		tr = &traceRec{id: sc.TraceID, start: start}
		t.traces[sc.TraceID] = tr
		t.order = append(t.order, sc.TraceID)
		t.evictLocked()
	}
	if len(tr.spans) >= t.cfg.MaxSpans {
		tr.dropped++
		t.mu.Unlock()
		return &Span{t: t, tr: tr, sc: sc} // still propagates IDs downstream
	}
	tr.spans = append(tr.spans, rec)
	t.mu.Unlock()
	return &Span{t: t, tr: tr, rec: rec, sc: sc}
}

// evictLocked drops the oldest trace over capacity; in ModeSlow it
// prefers the oldest trace that never crossed the threshold.
func (t *Tracer) evictLocked() {
	for len(t.order) > t.cfg.MaxTraces {
		victim := 0
		if t.cfg.Mode == ModeSlow {
			for i, id := range t.order {
				if tr := t.traces[id]; tr != nil && !tr.slow {
					victim = i
					break
				}
			}
		}
		id := t.order[victim]
		t.order = append(t.order[:victim], t.order[victim+1:]...)
		if tr := t.traces[id]; tr != nil {
			for _, seq := range tr.seqs {
				if t.bySeq[seq] == id {
					delete(t.bySeq, seq)
				}
			}
		}
		delete(t.traces, id)
	}
}

// Span is one timed operation within a trace. The nil span is the
// unsampled fast path: every method is a no-op and Context() is the
// zero (invalid) context, so call sites never branch on sampling.
type Span struct {
	t   *Tracer
	tr  *traceRec
	rec *spanRec
	sc  SpanContext
}

// Context returns the span's propagation context (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Traceparent is shorthand for Context().Traceparent().
func (s *Span) Traceparent() string { return s.Context().Traceparent() }

// SetAttr records one key/value on the span. Values should be strings
// or numbers — they are serialized as-is into the tracez snapshot.
func (s *Span) SetAttr(key string, v any) {
	if s == nil || s.rec == nil {
		return
	}
	s.t.mu.Lock()
	if s.rec.attrs == nil {
		s.rec.attrs = make(map[string]any, 4)
	}
	s.rec.attrs[key] = v
	s.t.mu.Unlock()
}

// AddLink attaches another trace's context to this span — the commit
// span links every coalesced Apply call whose batch it merged.
func (s *Span) AddLink(sc SpanContext) {
	if s == nil || s.rec == nil || !sc.Valid() {
		return
	}
	s.t.mu.Lock()
	s.rec.links = append(s.rec.links, sc)
	s.t.mu.Unlock()
}

// SetSeq stamps the commit sequence on the span and indexes the whole
// trace for /v1/tracez?seq= lookup.
func (s *Span) SetSeq(seq uint64) {
	if s == nil || seq == 0 {
		return
	}
	s.t.mu.Lock()
	if s.rec != nil {
		s.rec.seq = seq
	}
	s.tr.seqs = append(s.tr.seqs, seq)
	s.t.bySeq[seq] = s.tr.id
	s.t.mu.Unlock()
}

// End closes the span at time.Now.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt closes the span at a caller-chosen instant.
func (s *Span) EndAt(at time.Time) {
	if s == nil || s.rec == nil {
		return
	}
	d := at.Sub(s.rec.start)
	if d < 0 {
		d = 0
	}
	s.t.mu.Lock()
	s.rec.dur = d
	s.rec.done = true
	if s.t.cfg.SlowThreshold > 0 && d >= s.t.cfg.SlowThreshold {
		s.tr.slow = true
	}
	s.t.mu.Unlock()
}

// SpanSnapshot is the JSON form of one recorded span.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_span_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	InFlight   bool           `json:"in_flight,omitempty"`
	Seq        uint64         `json:"seq,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Links      []string       `json:"links,omitempty"`
}

// TraceSnapshot is the JSON form of one trace: its spans in start
// order, the commit sequences it covers, and whether it crossed the
// slow threshold.
type TraceSnapshot struct {
	TraceID string         `json:"trace_id"`
	Start   time.Time      `json:"start"`
	Slow    bool           `json:"slow,omitempty"`
	Seqs    []uint64       `json:"seqs,omitempty"`
	Dropped int            `json:"dropped_spans,omitempty"`
	Spans   []SpanSnapshot `json:"spans"`
}

func (t *Tracer) snapshotLocked(tr *traceRec) TraceSnapshot {
	snap := TraceSnapshot{
		TraceID: tr.id.String(),
		Start:   tr.start,
		Slow:    tr.slow,
		Seqs:    append([]uint64(nil), tr.seqs...),
		Dropped: tr.dropped,
		Spans:   make([]SpanSnapshot, 0, len(tr.spans)),
	}
	for _, r := range tr.spans {
		ss := SpanSnapshot{
			Name:       r.name,
			SpanID:     r.id.String(),
			Start:      r.start,
			DurationMS: float64(r.dur) / float64(time.Millisecond),
			InFlight:   !r.done,
			Seq:        r.seq,
		}
		if !r.parent.IsZero() {
			ss.ParentID = r.parent.String()
		}
		if len(r.attrs) > 0 {
			ss.Attrs = make(map[string]any, len(r.attrs))
			for k, v := range r.attrs {
				ss.Attrs[k] = v
			}
		}
		for _, l := range r.links {
			ss.Links = append(ss.Links, l.Traceparent())
		}
		snap.Spans = append(snap.Spans, ss)
	}
	sort.SliceStable(snap.Spans, func(i, j int) bool { return snap.Spans[i].Start.Before(snap.Spans[j].Start) })
	return snap
}

// Traces snapshots the retained traces, most recent first, up to max
// (all when max <= 0).
func (t *Tracer) Traces(max int) []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.order)
	if max > 0 && max < n {
		n = max
	}
	out := make([]TraceSnapshot, 0, n)
	for i := len(t.order) - 1; i >= 0 && len(out) < n; i-- {
		if tr := t.traces[t.order[i]]; tr != nil {
			out = append(out, t.snapshotLocked(tr))
		}
	}
	return out
}

// Lookup returns the trace with the given hex trace ID.
func (t *Tracer) Lookup(traceID string) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	var id TraceID
	b, err := hex.DecodeString(traceID)
	if err != nil || len(b) != len(id) {
		return TraceSnapshot{}, false
	}
	copy(id[:], b)
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	if !ok {
		return TraceSnapshot{}, false
	}
	return t.snapshotLocked(tr), true
}

// BySeq returns the trace that committed the given sequence, if it is
// still retained.
func (t *Tracer) BySeq(seq uint64) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.bySeq[seq]
	if !ok {
		return TraceSnapshot{}, false
	}
	tr, ok := t.traces[id]
	if !ok {
		return TraceSnapshot{}, false
	}
	return t.snapshotLocked(tr), true
}

// Len reports how many traces the ring currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

type ctxKey struct{}

// NewContext returns ctx carrying sc; invalid contexts pass through
// unchanged so callers can thread unconditionally.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context threaded by NewContext (zero
// when absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
