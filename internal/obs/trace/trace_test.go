package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Mode: ModeAlways})
	sp := tr.StartRoot("root")
	if sp == nil {
		t.Fatal("always-mode tracer returned nil root span")
	}
	tp := sp.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q: want 00-…-01", tp)
	}
	sc, ok := Parse(tp)
	if !ok {
		t.Fatalf("Parse(%q) failed", tp)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip mismatch: %+v != %+v", sc, sp.Context())
	}
	if got := sc.Traceparent(); got != tp {
		t.Fatalf("re-encode mismatch: %q != %q", got, tp)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc-def-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff reserved
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0x",
	}
	for _, s := range bad {
		if _, ok := Parse(s); ok {
			t.Errorf("Parse(%q) accepted malformed input", s)
		}
	}
	sc, ok := Parse("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if !ok || sc.Sampled {
		t.Fatalf("flags 00 should parse as unsampled, got ok=%v sampled=%v", ok, sc.Sampled)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", 1)
	sp.AddLink(SpanContext{})
	sp.SetSeq(7)
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if sp.Traceparent() != "" {
		t.Fatal("nil span renders a traceparent")
	}
	var tr *Tracer
	if tr.Enabled() || tr.StartRoot("x") != nil || tr.Len() != 0 {
		t.Fatal("nil tracer is not inert")
	}
	if got := New(Config{Mode: ModeOff}).StartRoot("x"); got != nil {
		t.Fatal("off tracer returned a recording span")
	}
}

func TestChildSpansShareTraceAndParentLinks(t *testing.T) {
	tr := New(Config{Mode: ModeAlways})
	root := tr.StartRoot("commit")
	child := tr.StartSpan(root.Context(), "stage.validate")
	child.End()
	root.SetSeq(42)
	root.End()
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child did not inherit trace ID")
	}
	snap, ok := tr.BySeq(42)
	if !ok {
		t.Fatal("BySeq(42) missed")
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(snap.Spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["stage.validate"].ParentID != byName["commit"].SpanID {
		t.Fatal("child parent_span_id does not point at root")
	}
	if byName["commit"].Seq != 42 {
		t.Fatalf("root span seq = %d, want 42", byName["commit"].Seq)
	}
	if _, ok := tr.Lookup(snap.TraceID); !ok {
		t.Fatal("Lookup by trace ID missed")
	}
}

func TestUnsampledParentSpawnsNothing(t *testing.T) {
	tr := New(Config{Mode: ModeAlways})
	sc, _ := Parse("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if sp := tr.StartSpan(sc, "x"); sp != nil {
		t.Fatal("unsampled parent spawned a recording span")
	}
	if sp := tr.StartSpan(SpanContext{}, "x"); sp != nil {
		t.Fatal("invalid parent spawned a recording span")
	}
}

func TestRemoteContinuationSharesTraceID(t *testing.T) {
	leader := New(Config{Mode: ModeAlways})
	follower := New(Config{Mode: ModeAlways})
	commit := leader.StartRoot("commit")
	commit.SetSeq(9)
	commit.End()
	tp := commit.Traceparent()

	sc, ok := Parse(tp)
	if !ok {
		t.Fatal("follower could not parse leader traceparent")
	}
	rep := follower.StartSpan(sc, "replica.commit")
	rep.SetSeq(9)
	rep.End()

	ls, _ := leader.BySeq(9)
	fs, ok := follower.BySeq(9)
	if !ok {
		t.Fatal("follower BySeq missed")
	}
	if ls.TraceID != fs.TraceID {
		t.Fatalf("trace ID diverged across nodes: %s vs %s", ls.TraceID, fs.TraceID)
	}
	if fs.Spans[0].ParentID != ls.Spans[0].SpanID {
		t.Fatal("replica span does not parent onto the leader commit span")
	}
}

func TestRatioSamplingIsDeterministicByTraceID(t *testing.T) {
	a := New(Config{Mode: ModeRatio, Ratio: 0.5})
	b := New(Config{Mode: ModeRatio, Ratio: 0.5})
	sampled, total := 0, 2000
	for i := 0; i < total; i++ {
		id := newTraceID()
		if a.sampleRatio(id) != b.sampleRatio(id) {
			t.Fatal("two tracers disagreed on the same trace ID")
		}
		if a.sampleRatio(id) {
			sampled++
		}
	}
	if sampled < total/4 || sampled > 3*total/4 {
		t.Fatalf("ratio 0.5 sampled %d/%d — far off", sampled, total)
	}
	if New(Config{Mode: ModeRatio, Ratio: 0}).StartRoot("x") != nil {
		t.Fatal("ratio 0 sampled a trace")
	}
	if New(Config{Mode: ModeRatio, Ratio: 1}).StartRoot("x") == nil {
		t.Fatal("ratio 1 dropped a trace")
	}
}

func TestRingEvictionPrefersFastTracesInSlowMode(t *testing.T) {
	tr := New(Config{Mode: ModeSlow, SlowThreshold: time.Millisecond, MaxTraces: 2})
	slow := tr.StartRoot("slow")
	slow.EndAt(slow.rec.start.Add(5 * time.Millisecond))
	slowID := slow.Context().TraceID.String()

	fast1 := tr.StartRoot("fast1")
	fast1.EndAt(fast1.rec.start)
	// Third trace overflows the ring; the unkept fast1 goes, not slow.
	tr.StartRoot("fast2").End()

	if tr.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", tr.Len())
	}
	if _, ok := tr.Lookup(slowID); !ok {
		t.Fatal("slow trace was evicted before a fast one")
	}
	if _, ok := tr.Lookup(fast1.Context().TraceID.String()); ok {
		t.Fatal("fast trace survived eviction")
	}
	snap, _ := tr.Lookup(slowID)
	if !snap.Slow {
		t.Fatal("trace over threshold not flagged slow")
	}
}

func TestFIFOEvictionDropsSeqIndex(t *testing.T) {
	tr := New(Config{Mode: ModeAlways, MaxTraces: 3})
	for i := 1; i <= 10; i++ {
		sp := tr.StartRoot("commit")
		sp.SetSeq(uint64(i))
		sp.End()
	}
	if tr.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", tr.Len())
	}
	if _, ok := tr.BySeq(1); ok {
		t.Fatal("evicted trace still indexed by seq")
	}
	if _, ok := tr.BySeq(10); !ok {
		t.Fatal("latest trace lost its seq index")
	}
	got := tr.Traces(0)
	if len(got) != 3 || got[0].Seqs[0] != 10 || got[2].Seqs[0] != 8 {
		t.Fatalf("Traces not most-recent-first: %+v", got)
	}
	if n := len(tr.Traces(2)); n != 2 {
		t.Fatalf("Traces(2) returned %d", n)
	}
}

func TestMaxSpansDropsButKeepsPropagating(t *testing.T) {
	tr := New(Config{Mode: ModeAlways, MaxSpans: 2})
	root := tr.StartRoot("root")
	a := tr.StartSpan(root.Context(), "a")
	b := tr.StartSpan(root.Context(), "b") // over cap: dropped, but usable
	if b == nil || !b.Context().Valid() {
		t.Fatal("over-cap span lost its propagation context")
	}
	b.SetAttr("k", "v")
	b.End()
	a.End()
	root.End()
	snap, _ := tr.Lookup(root.Context().TraceID.String())
	if len(snap.Spans) != 2 || snap.Dropped != 1 {
		t.Fatalf("want 2 spans + 1 dropped, got %d + %d", len(snap.Spans), snap.Dropped)
	}
}

func TestSpanLinksAndAttrs(t *testing.T) {
	tr := New(Config{Mode: ModeAlways})
	other := tr.StartRoot("other")
	sp := tr.StartRoot("commit")
	sp.SetAttr("batches", 3)
	sp.AddLink(other.Context())
	sp.End()
	snap, _ := tr.Lookup(sp.Context().TraceID.String())
	s := snap.Spans[0]
	if s.Attrs["batches"] != 3 {
		t.Fatalf("attr lost: %+v", s.Attrs)
	}
	if len(s.Links) != 1 || s.Links[0] != other.Traceparent() {
		t.Fatalf("link lost: %+v", s.Links)
	}
}

func TestParseSampling(t *testing.T) {
	cases := []struct {
		in   string
		mode Mode
		ok   bool
	}{
		{"off", ModeOff, true},
		{"always", ModeAlways, true},
		{"ratio:0.25", ModeRatio, true},
		{"slow:250ms", ModeSlow, true},
		{"ratio:2", 0, false},
		{"ratio:x", 0, false},
		{"slow:-1s", 0, false},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		cfg, err := ParseSampling(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseSampling(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && cfg.Mode != c.mode {
			t.Errorf("ParseSampling(%q) mode=%v, want %v", c.in, cfg.Mode, c.mode)
		}
	}
	if cfg, _ := ParseSampling("slow:250ms"); cfg.SlowThreshold != 250*time.Millisecond {
		t.Fatalf("slow threshold = %v", cfg.SlowThreshold)
	}
	if cfg, _ := ParseSampling("ratio:0.25"); cfg.Ratio != 0.25 {
		t.Fatalf("ratio = %v", cfg.Ratio)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx).Valid() {
		t.Fatal("empty ctx yields a valid span context")
	}
	sc, _ := Parse("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	ctx2 := NewContext(ctx, sc)
	if got := FromContext(ctx2); got != sc {
		t.Fatalf("ctx round trip: %+v != %+v", got, sc)
	}
	if NewContext(ctx, SpanContext{}) != ctx {
		t.Fatal("invalid context allocated a ctx value")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Mode: ModeAlways, MaxTraces: 16})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				root := tr.StartRoot("commit")
				ch := tr.StartSpan(root.Context(), "stage")
				ch.SetAttr("i", n)
				ch.End()
				root.SetSeq(uint64(n*1000 + j + 1))
				root.End()
				tr.Traces(4)
			}
		}(i)
	}
	wg.Wait()
	if tr.Len() != 16 {
		t.Fatalf("ring len = %d, want 16", tr.Len())
	}
}
