package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE lines per family, then one sample per
// instrument — counters and gauges as single samples, histograms as
// cumulative _bucket{le=...} samples plus _sum and _count. Families render
// sorted by name and children in registration order, so successive scrapes
// diff cleanly. No client library is involved; the format is simple enough
// to emit (and parse, see the tests) directly.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Copy the family/child structure under the lock; the instruments
	// themselves are read lock-free afterwards (they are atomics).
	type renderChild struct {
		labels []Label
		c      *Counter
		g      *Gauge
		h      *Histogram
	}
	type renderFamily struct {
		name, help string
		kind       metricKind
		children   []renderChild
	}
	fams := make([]renderFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		rf := renderFamily{name: f.name, help: f.help, kind: f.kind}
		for _, key := range f.order {
			ch := f.children[key]
			rf.children = append(rf.children, renderChild{labels: ch.labels, c: ch.c, g: ch.g, h: ch.h})
		}
		fams = append(fams, rf)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, ch := range f.children {
			switch {
			case ch.c != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(ch.labels, ""), formatFloat(float64(ch.c.Value()))); err != nil {
					return err
				}
			case ch.g != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(ch.labels, ""), formatFloat(float64(ch.g.Value()))); err != nil {
					return err
				}
			case ch.h != nil:
				if err := writeHistogram(w, f.name, ch.labels, ch.h); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeHistogram emits the cumulative bucket series, sum and count for one
// histogram instrument.
func writeHistogram(w io.Writer, name string, labels []Label, h *Histogram) error {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, le), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	total = cum
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, "+Inf"), total); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sum.Load())
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, ""), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, ""), total)
	return err
}

// labelString renders a label set as {k="v",...}; le, when non-empty, is
// appended as the histogram bucket bound label. Empty sets render as "".
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
