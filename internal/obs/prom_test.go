package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition output for a small registry so
// format drift is caught, byte for byte.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpm_commits_total", "Committed drains.").Add(3)
	r.Gauge("gpm_subscriptions_active", "Open match-delta subscriptions.").Set(2)
	h := r.Histogram("gpm_commit_stage_ms", "Per-stage commit wall time in milliseconds.",
		[]float64{1, 10}, L("stage", "repair"))
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP gpm_commit_stage_ms Per-stage commit wall time in milliseconds.`,
		`# TYPE gpm_commit_stage_ms histogram`,
		`gpm_commit_stage_ms_bucket{stage="repair",le="1"} 1`,
		`gpm_commit_stage_ms_bucket{stage="repair",le="10"} 2`,
		`gpm_commit_stage_ms_bucket{stage="repair",le="+Inf"} 3`,
		`gpm_commit_stage_ms_sum{stage="repair"} 55.5`,
		`gpm_commit_stage_ms_count{stage="repair"} 3`,
		`# HELP gpm_commits_total Committed drains.`,
		`# TYPE gpm_commits_total counter`,
		`gpm_commits_total 3`,
		`# HELP gpm_subscriptions_active Open match-delta subscriptions.`,
		`# TYPE gpm_subscriptions_active gauge`,
		`gpm_subscriptions_active 2`,
	}, "\n") + "\n"
	if b.String() != want {
		t.Fatalf("exposition drifted.\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", L("path", `a\b"c`+"\n")).Set(1)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `g{path="a\\b\"c\n"} 1` + "\n" + `# TYPE g gauge` + "\n"
	if !strings.Contains(b.String(), `g{path="a\\b\"c\n"} 1`) {
		t.Fatalf("label not escaped: %q (want it to contain %q)", b.String(), want)
	}
}

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a minimal parser for the Prometheus text exposition format:
// enough to validate structure (TYPE lines, label syntax, float values)
// without a client library. It errors on anything malformed.
func parseProm(input string) (types map[string]string, samples []promSample, err error) {
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(input))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)) < 1 {
				return nil, nil, fmt.Errorf("bad HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				return nil, nil, fmt.Errorf("bad TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, nil, fmt.Errorf("unknown type %q in %q", parts[1], line)
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, perr := parseSample(line)
		if perr != nil {
			return nil, nil, perr
		}
		samples = append(samples, s)
	}
	return types, samples, sc.Err()
}

func parseSample(line string) (promSample, error) {
	s := promSample{labels: make(map[string]string)}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return s, fmt.Errorf("no value in sample %q", line)
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.value = v
	ident := line[:sp]
	if i := strings.IndexByte(ident, '{'); i >= 0 {
		if !strings.HasSuffix(ident, "}") {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		s.name = ident[:i]
		inner := ident[i+1 : len(ident)-1]
		for len(inner) > 0 {
			eq := strings.IndexByte(inner, '=')
			if eq < 0 || len(inner) < eq+2 || inner[eq+1] != '"' {
				return s, fmt.Errorf("bad label in %q", line)
			}
			key := inner[:eq]
			rest := inner[eq+2:]
			var val strings.Builder
			j := 0
			for ; j < len(rest); j++ {
				if rest[j] == '\\' && j+1 < len(rest) {
					j++
					switch rest[j] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[j])
					}
					continue
				}
				if rest[j] == '"' {
					break
				}
				val.WriteByte(rest[j])
			}
			if j == len(rest) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.labels[key] = val.String()
			inner = rest[j+1:]
			inner = strings.TrimPrefix(inner, ",")
		}
	} else {
		s.name = ident
	}
	if s.name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	return s, nil
}

// TestExpositionParses round-trips a fully loaded registry through the
// minimal parser and validates the histogram contract: every declared
// family has samples, bucket counts are cumulative (monotone in le), the
// +Inf bucket equals _count, and _sum is consistent.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "as", L("k", "x")).Add(7)
	r.Gauge("b", "bs").Set(-3)
	h := r.Histogram("c_ms", "cs", []float64{0.5, 1, 2, 4}, L("stage", "validate"))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 20)
	}
	h2 := r.Histogram("c_ms", "cs", []float64{0.5, 1, 2, 4}, L("stage", "publish"))
	h2.Observe(3)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	types, samples, err := parseProm(b.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	if types["a_total"] != "counter" || types["b"] != "gauge" || types["c_ms"] != "histogram" {
		t.Fatalf("TYPE lines missing or wrong: %v", types)
	}

	// Histogram contract per label set.
	for _, stage := range []string{"validate", "publish"} {
		var buckets []promSample
		var sum, count float64
		var haveSum, haveCount bool
		for _, s := range samples {
			if s.labels["stage"] != stage {
				continue
			}
			switch s.name {
			case "c_ms_bucket":
				buckets = append(buckets, s)
			case "c_ms_sum":
				sum, haveSum = s.value, true
			case "c_ms_count":
				count, haveCount = s.value, true
			}
		}
		if !haveSum || !haveCount {
			t.Fatalf("stage %s: missing _sum or _count", stage)
		}
		if len(buckets) != 5 {
			t.Fatalf("stage %s: %d buckets, want 5 (4 bounds + +Inf)", stage, len(buckets))
		}
		// Buckets must be sorted by le with +Inf last and cumulative counts.
		sort.SliceStable(buckets, func(i, j int) bool {
			return leValue(buckets[i].labels["le"]) < leValue(buckets[j].labels["le"])
		})
		prev := -1.0
		for _, bk := range buckets {
			if bk.value < prev {
				t.Fatalf("stage %s: bucket counts not cumulative: %v", stage, buckets)
			}
			prev = bk.value
		}
		if inf := buckets[len(buckets)-1]; inf.labels["le"] != "+Inf" || inf.value != count {
			t.Fatalf("stage %s: +Inf bucket %v != count %v", stage, inf.value, count)
		}
		if sum < 0 {
			t.Fatalf("stage %s: negative sum", stage)
		}
	}
}

func leValue(le string) float64 {
	if le == "+Inf" {
		return 1e308
	}
	v, _ := strconv.ParseFloat(le, 64)
	return v
}
