// Package obs is the repository's dependency-free telemetry layer: atomic
// counters, gauges and fixed-bucket histograms collected into a named
// Registry that renders itself as Prometheus text exposition (prom.go) and
// as JSON-able snapshots with quantile estimates. It exists so the commit
// pipeline (contq), the journal, and the HTTP layer can measure per-stage
// costs — the observations the adaptive execution policy needs as input —
// without pulling a metrics client library into the module.
//
// Design constraints:
//
//   - Standard library only. CI enforces that this package never grows a
//     dependency outside std.
//   - Write paths are lock-free: Counter/Gauge are single atomics,
//     Histogram.Observe is one atomic add into a fixed bucket plus CAS
//     loops for the float sum and max. Hot paths (one observation per
//     commit stage) cost nanoseconds.
//   - Reads are snapshots: Histogram.Snapshot copies the bucket array and
//     derives its count from that copy, so a snapshot taken mid-traffic is
//     internally consistent (count == Σ buckets) even though it may lag
//     the writers by a few observations.
//
// Instruments are get-or-create through the Registry, keyed by metric name
// plus label set, so independent components observing the same logical
// metric share one instrument. Default() is the process-wide registry most
// components fall back to when none is injected.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "stage", Value: "repair"}.
// Keep value sets small and bounded (stage names, engine kinds) — every
// distinct combination is a separate time series for the scraper.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LatencyBuckets is the default bucket layout for duration histograms, in
// milliseconds: roughly logarithmic from 50µs to 10s, the span between a
// no-op commit stage and a pathological full-graph repair.
var LatencyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// SizeBuckets is the default bucket layout for count-valued histograms
// (batch sizes, queue depths): powers of two from 1 to 1024.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Counter is a monotonically increasing value (events, requests, bytes).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (active
// subscriptions, queue depth) or track a high-water mark via SetMax.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation (e.g. deepest mailbox ever seen).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf overflow
// bucket. Bounds are fixed at creation (LatencyBuckets / SizeBuckets or
// custom), so Observe is one atomic add — no resizing, no locking.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	max    atomic.Uint64   // float64 bits, CAS-raised
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value (for duration histograms, in milliseconds —
// see ObserveSince for the common case).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	maxFloat(&h.max, v)
}

// ObserveDuration records d in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// ObserveSince records the elapsed time since start, in milliseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// addFloat accumulates v into an atomic float64 (stored as bits).
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, nw) {
			return
		}
	}
}

// maxFloat raises an atomic float64 to v if larger. Observations are
// non-negative (durations, sizes), so the zero bit pattern (0.0) is a
// valid floor.
func maxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Bounds returns the histogram's upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistSnapshot is a point-in-time summary of a histogram, shaped for JSON
// (the Stats().Timings block): total count, sum, max, and interpolated
// quantiles. Count is derived from one consistent copy of the buckets, so
// Count == the number of observations those quantiles describe.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram now. Quantiles are estimated by linear
// interpolation inside the winning bucket (the standard fixed-bucket
// estimate); observations in the +Inf bucket clamp to the observed max.
func (h *Histogram) Snapshot() HistSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count: total,
		Sum:   math.Float64frombits(h.sum.Load()),
		Max:   math.Float64frombits(h.max.Load()),
	}
	if total == 0 {
		return s
	}
	s.P50 = h.quantile(counts, total, 0.50, s.Max)
	s.P90 = h.quantile(counts, total, 0.90, s.Max)
	s.P99 = h.quantile(counts, total, 0.99, s.Max)
	return s
}

// quantile estimates the q-quantile from one consistent bucket copy.
func (h *Histogram) quantile(counts []uint64, total uint64, q, max float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			return max // overflow bucket: the best bound we have
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Linear interpolation of the rank's position within the bucket.
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		v := lo + (hi-lo)*frac
		if v > max && max > 0 {
			v = max
		}
		return v
	}
	return max
}

// metricKind discriminates a family's instrument type.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one instrument inside a family: its label set plus exactly one
// of the typed instruments.
type child struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all instruments sharing one metric name (and therefore one
// type and help string).
type family struct {
	name     string
	help     string
	kind     metricKind
	children map[string]*child // keyed by canonical label string
	order    []string          // registration order of label keys, for stable render
}

// Registry holds named instruments and renders them (WriteProm). The zero
// value is not usable; construct with NewRegistry or use Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry components fall back to when no
// registry is injected. Sharing it is the point: gpserve's /v1/metricz
// exposes every component's instruments through one scrape.
func Default() *Registry { return defaultRegistry }

// labelKey canonicalizes a label set (sorted by key) for map lookup.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// getFamily get-or-creates the family for name, checking type agreement.
// Registering one name as two different instrument types is a programming
// error and panics loudly rather than silently corrupting the exposition.
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

// getChild get-or-creates the instrument for a label set within a family.
func (f *family) getChild(labels []Label) *child {
	key := labelKey(labels)
	ch, ok := f.children[key]
	if !ok {
		ls := make([]Label, len(labels))
		copy(ls, labels)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		ch = &child{labels: ls}
		f.children[key] = ch
		f.order = append(f.order, key)
	}
	return ch
}

// Counter get-or-creates the counter name{labels}. Callers across
// components receive the same instrument for the same identity.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.getFamily(name, help, kindCounter).getChild(labels)
	if ch.c == nil {
		ch.c = &Counter{}
	}
	return ch.c
}

// Gauge get-or-creates the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.getFamily(name, help, kindGauge).getChild(labels)
	if ch.g == nil {
		ch.g = &Gauge{}
	}
	return ch.g
}

// Histogram get-or-creates the histogram name{labels} with the given
// bucket upper bounds (nil = LatencyBuckets). Bounds are fixed by the
// first registration; later calls with different bounds receive the
// existing instrument unchanged.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.getFamily(name, help, kindHistogram).getChild(labels)
	if ch.h == nil {
		ch.h = newHistogram(bounds)
	}
	return ch.h
}
