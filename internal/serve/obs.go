package serve

import (
	"log/slog"
	"net/http"
	"time"
)

// metricz serves the process's telemetry in the Prometheus text exposition
// format, rendered straight from the obs registry backing the current
// contq registry (obs.Default() unless the server was built with
// contq.WithMetrics). One scrape covers the whole pipeline: commit stage
// histograms, journal disk timings, subscription gauges, request counters.
func (s *Server) metricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry().Metrics().WriteProm(w) //nolint:errcheck // client gone mid-scrape
}

// statusRecorder captures the status code a handler writes, for access
// logging. WriteHeader may never be called (implicit 200), so status starts
// there.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming keeps working
// behind the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps h with structured request logging: one slog line per
// request with method, path, status, duration and remote address. Long-
// lived SSE streams log on disconnect, so their duration is the stream's
// lifetime. A nil logger returns h unchanged.
func AccessLog(h http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}
