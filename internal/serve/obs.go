package serve

import (
	"log/slog"
	"net/http"
	"time"

	"gpm/internal/obs/trace"
)

// metricz serves the process's telemetry in the Prometheus text exposition
// format, rendered straight from the obs registry backing the current
// contq registry (obs.Default() unless the server was built with
// contq.WithMetrics). One scrape covers the whole pipeline: commit stage
// histograms, journal disk timings, subscription gauges, request counters.
func (s *Server) metricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry().Metrics().WriteProm(w) //nolint:errcheck // client gone mid-scrape
}

// statusRecorder captures the status code a handler writes and counts the
// response bytes, for access logging. WriteHeader may never be called
// (implicit 200), so status starts there.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so SSE streaming keeps working
// behind the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps h with structured request logging: one slog line per
// request with method, path, status, response bytes, duration, remote
// address, and — when the request carried a traceparent — the trace ID
// that joins the line to /v1/tracez. Long-lived SSE streams log on
// disconnect, so their duration is the stream's lifetime and their bytes
// the whole feed. A nil logger returns h unchanged.
func AccessLog(h http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
			"remote", r.RemoteAddr,
		}
		if sc, ok := trace.Parse(r.Header.Get("traceparent")); ok {
			attrs = append(attrs, "trace_id", sc.TraceID.String())
		}
		logger.Info("request", attrs...)
	})
}
