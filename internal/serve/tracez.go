package serve

import (
	"fmt"
	"net/http"
	"strconv"
)

// tracez serves the registry tracer's bounded ring of recent commit
// traces — the repository's answer to "what happened inside commit N".
// It is mounted on leaders and followers alike, so a trace that spans
// the replication topology can be pulled from either end by its ID.
//
//	GET /v1/tracez              most recent traces (?limit=N, default 50)
//	GET /v1/tracez?trace=<hex>  one trace by its 32-hex trace ID
//	GET /v1/tracez?seq=<N>      the trace that committed sequence N
//
// The list form wraps the snapshots with the tracer's sampling mode and
// retained-count, so a client can tell "no traces" apart from "sampling
// is off". Lookups answer 404 not_found when the ring no longer retains
// the trace (it is a bounded in-memory buffer, not a store).
func (s *Server) tracez(w http.ResponseWriter, r *http.Request) {
	tr := s.registry().Tracer()
	q := r.URL.Query()
	if hex := q.Get("trace"); hex != "" {
		snap, ok := tr.Lookup(hex)
		if !ok {
			writeError(w, r, http.StatusNotFound, CodeNotFound,
				fmt.Errorf("trace %q not retained", hex))
			return
		}
		writeJSON(w, http.StatusOK, snap)
		return
	}
	if raw := q.Get("seq"); raw != "" {
		seq, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeInvalidSeq,
				fmt.Errorf("bad seq %q: %w", raw, err))
			return
		}
		snap, ok := tr.BySeq(seq)
		if !ok {
			writeError(w, r, http.StatusNotFound, CodeNotFound,
				fmt.Errorf("no retained trace for seq %d", seq))
			return
		}
		writeJSON(w, http.StatusOK, snap)
		return
	}
	limit := 50
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, r, http.StatusBadRequest, CodeInvalidSeq,
				fmt.Errorf("bad limit %q", raw))
			return
		}
		limit = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":     tr.Mode().String(),
		"retained": tr.Len(),
		"traces":   tr.Traces(limit),
	})
}
