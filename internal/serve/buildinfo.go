package serve

import (
	"runtime/debug"
	"sync"

	"gpm/internal/obs"
)

// BuildInfo identifies the running binary: the main module's version, the
// Go toolchain that built it, and the VCS revision (with a "+dirty"
// suffix for uncommitted builds) when the build embedded one. It appears
// as the "build" block of /v1/stats and as the constant gpm_build_info
// gauge in /v1/metricz — the standard trick for joining every scraped
// series to the exact binary that produced it.
type BuildInfo struct {
	Version  string `json:"version"`
	Go       string `json:"go"`
	Revision string `json:"revision,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuildInfo reads the binary's embedded build metadata once (it is
// immutable for the process lifetime) via runtime/debug.
func ReadBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", Go: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Go = bi.GoVersion
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty && rev != "" {
			rev += "+dirty"
		}
		buildInfo.Revision = rev
	})
	return buildInfo
}

// registerBuildInfo publishes the gpm_build_info gauge (constant 1, build
// identity in the labels) into reg. Idempotent through the obs registry's
// get-or-create contract, so registry swaps re-register harmlessly.
func registerBuildInfo(reg *obs.Registry) {
	bi := ReadBuildInfo()
	labels := []obs.Label{
		obs.L("version", bi.Version),
		obs.L("go", bi.Go),
	}
	if bi.Revision != "" {
		labels = append(labels, obs.L("revision", bi.Revision))
	}
	reg.Gauge("gpm_build_info",
		"Build identity of the running binary; constant 1, the identity lives in the labels.",
		labels...).Set(1)
}
