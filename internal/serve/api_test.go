package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// loadedServer returns a test server with a graph and one registered
// sim pattern "q".
func loadedServer(t *testing.T) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	srv := New()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client := ts.Client()
	g, gtext := testGraphText(t, 11)
	if code, _ := do(t, client, "POST", ts.URL+"/v1/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/v1/patterns/q?kind=sim", testPatternText(t, g, 1, 11)); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	return srv, ts, client
}

// TestStatusConsistency is the failure-status contract, table-driven over
// every route: wrong methods are 405 envelopes with an Allow header,
// unknown pattern ids are 404 everywhere, bad kinds and bad documents are
// 400 envelopes with their distinct codes, unknown routes are 404.
func TestStatusConsistency(t *testing.T) {
	_, ts, client := loadedServer(t)

	cases := []struct {
		name         string
		method, path string
		body         string
		wantStatus   int
		wantCode     string
		wantAllow    string
	}{
		// Wrong method on every route, both API versions.
		{"graph wrong method", "DELETE", "/v1/graph", "", 405, CodeMethodNotAllowed, "GET, POST"},
		{"patterns wrong method", "POST", "/v1/patterns", "", 405, CodeMethodNotAllowed, "GET"},
		{"pattern wrong method", "POST", "/v1/patterns/q", "", 405, CodeMethodNotAllowed, "DELETE, GET, PUT"},
		{"result wrong method", "POST", "/v1/patterns/q/result", "", 405, CodeMethodNotAllowed, "GET"},
		{"stream wrong method", "PUT", "/v1/patterns/q/stream", "", 405, CodeMethodNotAllowed, "GET"},
		{"updates wrong method", "GET", "/v1/updates", "", 405, CodeMethodNotAllowed, "POST"},
		{"commits wrong method", "DELETE", "/v1/commits", "", 405, CodeMethodNotAllowed, "GET"},
		{"stats wrong method", "PUT", "/v1/stats", "", 405, CodeMethodNotAllowed, "GET"},
		{"healthz wrong method", "POST", "/v1/healthz", "", 405, CodeMethodNotAllowed, "GET"},
		{"readyz wrong method", "POST", "/v1/readyz", "", 405, CodeMethodNotAllowed, "GET"},
		{"legacy wrong method", "DELETE", "/graph", "", 405, CodeMethodNotAllowed, "GET, POST"},

		// Unknown pattern id: 404 with not_found on every id-taking route.
		{"result unknown id", "GET", "/v1/patterns/none/result", "", 404, CodeNotFound, ""},
		{"unregister unknown id", "DELETE", "/v1/patterns/none", "", 404, CodeNotFound, ""},
		{"stream unknown id", "GET", "/v1/patterns/none/stream", "", 404, CodeNotFound, ""},

		// Bad request documents: 400 with the per-document code.
		{"bad graph", "POST", "/v1/graph", "node 0 bogus", 400, CodeInvalidGraph, ""},
		{"bad pattern", "PUT", "/v1/patterns/p2", "noise", 400, CodeInvalidPattern, ""},
		{"bad updates", "POST", "/v1/updates", "garbage", 400, CodeInvalidUpdates, ""},
		{"out-of-graph update", "POST", "/v1/updates", "insert 0 999999", 400, CodeInvalidUpdates, ""},

		// Bad kind and duplicate id.
		{"unknown kind", "PUT", "/v1/patterns/p3?kind=bogus", "node 0 true", 400, CodeInvalidKind, ""},
		{"duplicate id", "PUT", "/v1/patterns/q?kind=sim", "node 0 true", 409, CodeAlreadyRegistered, ""},

		// Bad resume sequences.
		{"bad from", "GET", "/v1/commits?from=x", "", 400, CodeInvalidSeq, ""},
		{"bad stream from", "GET", "/v1/patterns/q/stream?from=x", "", 400, CodeInvalidSeq, ""},
		{"future from", "GET", "/v1/commits?from=99", "", 400, CodeSeqFuture, ""},

		// Unknown routes.
		{"unknown route", "GET", "/v1/bogus", "", 404, CodeNotFound, ""},
		{"unknown root", "GET", "/nope", "", 404, CodeNotFound, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
			}
			var body ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error response is not an envelope: %v", err)
			}
			if body.Code != c.wantCode {
				t.Fatalf("code %q, want %q (message %q)", body.Code, c.wantCode, body.Message)
			}
			if body.Message == "" {
				t.Fatal("envelope without a message")
			}
			if c.wantAllow != "" && resp.Header.Get("Allow") != c.wantAllow {
				t.Fatalf("Allow %q, want %q", resp.Header.Get("Allow"), c.wantAllow)
			}
		})
	}

	// The iso-over-bounded mismatch is also invalid_kind, not a generic 400.
	g, _ := testGraphText(t, 11)
	code, body := do(t, client, "PUT", ts.URL+"/v1/patterns/p4?kind=iso", testPatternText(t, g, 2, 12))
	if code != 400 || body["code"] != CodeInvalidKind {
		t.Fatalf("iso over bounded pattern: code %d body %v", code, body)
	}
}

// TestLegacyAliases: every unversioned route still works, carries the
// Deprecation header and a successor-version Link; /v1 routes carry
// neither.
func TestLegacyAliases(t *testing.T) {
	_, ts, client := loadedServer(t)
	if code, _ := do(t, client, "POST", ts.URL+"/updates", "insert 0 1"); code != http.StatusOK {
		t.Fatal("legacy updates failed")
	}

	legacy := []struct{ method, path string }{
		{"GET", "/graph"},
		{"GET", "/patterns"},
		{"GET", "/patterns/q/result"},
		{"GET", "/commits"},
		{"GET", "/stats"},
		{"POST", "/updates"},
	}
	for _, c := range legacy {
		body := ""
		if c.method == "POST" {
			body = "delete 0 1\ninsert 0 1"
		}
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: status %d", c.method, c.path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("%s %s: missing Deprecation header", c.method, c.path)
		}
		wantLink := `</v1` + c.path + `>; rel="successor-version"`
		if resp.Header.Get("Link") != wantLink {
			t.Fatalf("%s %s: Link %q, want %q", c.method, c.path, resp.Header.Get("Link"), wantLink)
		}
	}

	// Canonical routes are not deprecated.
	resp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}

	// The legacy SSE stream also resumes (the PR 4 contract): it is the
	// same handler behind the alias.
	resp, err = client.Get(ts.URL + "/patterns/q/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("legacy stream: Deprecation %q, Content-Type %q",
			resp.Header.Get("Deprecation"), resp.Header.Get("Content-Type"))
	}

	// healthz/readyz are v1-only: no deprecated alias exists.
	if code, _ := do(t, client, "GET", ts.URL+"/healthz", ""); code != http.StatusNotFound {
		t.Fatal("/healthz must not exist unversioned")
	}
}

// TestHealthAndReadiness: healthz is unconditional liveness; readyz flips
// to 503 when the journal stops accepting appends and when the registry
// closes.
func TestHealthAndReadiness(t *testing.T) {
	srv, ts, client := loadedServer(t)

	if code, body := do(t, client, "GET", ts.URL+"/v1/healthz", ""); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	code, body := do(t, client, "GET", ts.URL+"/v1/readyz", "")
	if code != 200 || body["status"] != "ready" {
		t.Fatalf("readyz: %d %v", code, body)
	}

	// Kill the journal: commits keep applying in memory but are no longer
	// durable/replayable — the instance must stop reporting ready.
	if err := srv.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	code, body = do(t, client, "GET", ts.URL+"/v1/readyz", "")
	if code != http.StatusServiceUnavailable || body["code"] != CodeNotReady {
		t.Fatalf("readyz with dead journal: %d %v", code, body)
	}
	// Liveness is unaffected.
	if code, _ := do(t, client, "GET", ts.URL+"/v1/healthz", ""); code != 200 {
		t.Fatal("healthz must stay 200")
	}

	// A closed registry is equally not ready.
	srv.Close()
	code, body = do(t, client, "GET", ts.URL+"/v1/readyz", "")
	if code != http.StatusServiceUnavailable || body["code"] != CodeNotReady {
		t.Fatalf("readyz after Close: %d %v", code, body)
	}
}

// TestJSONContentNegotiation drives the full session with JSON documents:
// graph load, pattern registration and update batches under Content-Type
// application/json, interleaved with text bodies — both formats feed the
// same registry.
func TestJSONContentNegotiation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	doJSON := func(method, url string, doc any) (int, map[string]any) {
		t.Helper()
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(method, url, strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck // some bodies are empty
		return resp.StatusCode, out
	}

	// Build a small graph and pattern programmatically; ship them as JSON.
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode(graph.NewTuple("label", `"N`+string(rune('0'+i))+`"`))
	}
	g.AddEdge(0, 1) //nolint:errcheck // fresh nodes
	code, body := doJSON("POST", ts.URL+"/v1/graph", g)
	if code != http.StatusOK || body["nodes"].(float64) != 4 {
		t.Fatalf("JSON graph load: %d %v", code, body)
	}

	p := pattern.New()
	p.AddNode(pattern.Label("N0"))
	p.AddNode(pattern.Label("N1"))
	if err := p.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	code, body = doJSON("PUT", ts.URL+"/v1/patterns/j?kind=sim", p)
	if code != http.StatusCreated {
		t.Fatalf("JSON pattern register: %d %v", code, body)
	}

	// The initial result matches the one edge.
	code, body = do(t, client, "GET", ts.URL+"/v1/patterns/j/result", "")
	if code != http.StatusOK || body["size"].(float64) != 2 {
		t.Fatalf("result after JSON setup: %d %v", code, body)
	}

	// JSON updates: remove the matched edge, add another.
	code, body = doJSON("POST", ts.URL+"/v1/updates", []graph.Update{
		graph.Delete(0, 1), graph.Insert(2, 3),
	})
	if code != http.StatusOK || body["seq"].(float64) != 1 {
		t.Fatalf("JSON updates: %d %v", code, body)
	}
	_, body = do(t, client, "GET", ts.URL+"/v1/patterns/j/result", "")
	if body["size"].(float64) != 0 {
		t.Fatalf("result after JSON delete: %v", body)
	}

	// Text still works against the same state (curl compatibility).
	if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "insert 0 1\n"); code != http.StatusOK {
		t.Fatal("text updates after JSON session failed")
	}
	_, body = do(t, client, "GET", ts.URL+"/v1/patterns/j/result", "")
	if body["size"].(float64) != 2 {
		t.Fatalf("result after text insert: %v", body)
	}

	// Malformed JSON bodies get the per-document envelope codes.
	for _, c := range []struct {
		path, doc, wantCode string
	}{
		{"/v1/graph", `{"nodes":[{"id":5}],"edges":[]}`, CodeInvalidGraph},
		{"/v1/updates", `[{"op":"frobnicate","from":0,"to":1}]`, CodeInvalidUpdates},
	} {
		req, _ := http.NewRequest("POST", ts.URL+c.path, strings.NewReader(c.doc))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorBody
		json.NewDecoder(resp.Body).Decode(&env) //nolint:errcheck // envelope expected
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Code != c.wantCode {
			t.Fatalf("%s: %d %+v", c.path, resp.StatusCode, env)
		}
	}
	bad := `{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1,"bound":0}]}`
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/patterns/x", strings.NewReader(bad))
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorBody
	json.NewDecoder(resp.Body).Decode(&env) //nolint:errcheck // envelope expected
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Code != CodeInvalidPattern {
		t.Fatalf("bad JSON pattern: %d %+v", resp.StatusCode, env)
	}
}
