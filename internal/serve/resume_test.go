package serve

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/rel"
)

// postUpdates commits one batch over HTTP and returns its seq.
func postUpdates(t *testing.T, client *http.Client, url string, ups []graph.Update) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, client, "POST", url+"/updates", buf.String())
	if code != http.StatusOK {
		t.Fatalf("updates: code %d body %v", code, body)
	}
	return uint64(body["seq"].(float64))
}

// openStream opens an SSE stream, optionally resuming via Last-Event-ID.
func openStream(t *testing.T, client *http.Client, url, id string, lastEventID string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/patterns/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: code %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return resp, sc
}

// applyFrame folds one delta frame into acc and returns its seq.
func applyFrame(t *testing.T, frame sseFrame, acc rel.Relation, np int) uint64 {
	t.Helper()
	if frame.event != "delta" {
		t.Fatalf("event %q, want delta", frame.event)
	}
	for _, p := range pairsOf(t, frame.data["removed"], np).Pairs() {
		acc[p.U].Remove(p.V)
	}
	for _, p := range pairsOf(t, frame.data["added"], np).Pairs() {
		acc[p.U].Add(p.V)
	}
	return uint64(frame.data["seq"].(float64))
}

// TestStreamResumeAfterDisconnect is the SSE-resume satellite: a stream
// killed mid-feed reconnects with Last-Event-ID and observes exactly the
// missed deltas — no gaps, no duplicates, no snapshot re-send.
func TestStreamResumeAfterDisconnect(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 11)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/watch?kind=sim", testPatternText(t, g, 1, 11)); code != http.StatusCreated {
		t.Fatal("register failed")
	}

	const np = 3
	ups := generator.Updates(g, 40, 40, 13)

	// Phase 1: live stream sees the snapshot and the first two commits.
	resp, sc := openStream(t, client, ts.URL, "watch", "")
	snap := readSSE(t, sc, 1)[0]
	if snap.event != "snapshot" {
		t.Fatalf("first event %q", snap.event)
	}
	acc := pairsOf(t, snap.data["pairs"], np)
	last := uint64(snap.data["seq"].(float64))
	for i := 0; i < 2; i++ {
		postUpdates(t, client, ts.URL, ups[i*10:(i+1)*10])
	}
	for _, frame := range readSSE(t, sc, 2) {
		seq := applyFrame(t, frame, acc, np)
		if seq != last+1 {
			t.Fatalf("live phase: seq %d after %d", seq, last)
		}
		last = seq
	}
	resp.Body.Close() // kill the stream mid-feed

	// Phase 2: commits the client misses while disconnected.
	for i := 2; i < 4; i++ {
		postUpdates(t, client, ts.URL, ups[i*10:(i+1)*10])
	}

	// Phase 3: reconnect with Last-Event-ID; the first frame must be the
	// delta for last+1 — not a snapshot, not a repeat, not a skip.
	resp2, sc2 := openStream(t, client, ts.URL, "watch", strconv.FormatUint(last, 10))
	defer resp2.Body.Close()
	for _, frame := range readSSE(t, sc2, 2) {
		seq := applyFrame(t, frame, acc, np)
		if seq != last+1 {
			t.Fatalf("resume phase: seq %d after %d (gap or duplicate)", seq, last)
		}
		last = seq
	}
	// The resumed accumulation equals the live result.
	_, body := do(t, client, "GET", ts.URL+"/patterns/watch/result", "")
	if !acc.Equal(pairsOf(t, body["pairs"], np)) {
		t.Fatal("snapshot + pre-disconnect deltas + resumed deltas diverge from /result")
	}
	// And the stream stays live: one more commit arrives in order.
	postUpdates(t, client, ts.URL, ups[:5])
	if seq := applyFrame(t, readSSE(t, sc2, 1)[0], acc, np); seq != last+1 {
		t.Fatalf("post-resume live delta has seq %d, want %d", seq, last+1)
	}
	_, body = do(t, client, "GET", ts.URL+"/patterns/watch/result", "")
	if !acc.Equal(pairsOf(t, body["pairs"], np)) {
		t.Fatal("post-resume accumulation diverges from /result")
	}
}

// TestResumeHeaderBeatsQuery: an EventSource opened with ?from=N keeps
// the stale query on every auto-reconnect but sends a current
// Last-Event-ID — the header must win or deltas replay twice.
func TestResumeHeaderBeatsQuery(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 43)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q?kind=sim", testPatternText(t, g, 1, 43)); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	ups := generator.Updates(g, 30, 30, 47)
	for i := 0; i < 3; i++ {
		postUpdates(t, client, ts.URL, ups[i*10:(i+1)*10])
	}
	// Stale ?from=0 on the URL, current Last-Event-ID: 2 in the header.
	req, err := http.NewRequest("GET", ts.URL+"/patterns/q/stream?from=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "2")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	frame := readSSE(t, sc, 1)[0]
	if frame.event != "delta" || frame.data["seq"].(float64) != 3 {
		t.Fatalf("first frame %s seq %v, want delta seq 3 (header must beat ?from)", frame.event, frame.data["seq"])
	}
}

// TestStreamResumeFallbackToSnapshot: when the journal no longer retains
// the requested range, the reconnect falls back to a snapshot frame.
func TestStreamResumeFallbackToSnapshot(t *testing.T) {
	// A 2-commit ring: anything older is compacted away.
	srv, err := NewWithJournal(journal.New(journal.WithRing(2)))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 17)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q?kind=sim", testPatternText(t, g, 1, 17)); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	ups := generator.Updates(g, 30, 30, 19)
	for i := 0; i < 6; i++ {
		postUpdates(t, client, ts.URL, ups[i*10:(i+1)*10])
	}
	resp, sc := openStream(t, client, ts.URL, "q", "1") // seq 1 is long gone
	defer resp.Body.Close()
	frame := readSSE(t, sc, 1)[0]
	if frame.event != "snapshot" {
		t.Fatalf("fallback event %q, want snapshot", frame.event)
	}
	const np = 3
	_, body := do(t, client, "GET", ts.URL+"/patterns/q/result", "")
	if !pairsOf(t, frame.data["pairs"], np).Equal(pairsOf(t, body["pairs"], np)) {
		t.Fatal("fallback snapshot diverges from /result")
	}
}

// TestResumeAtHeadSendsHeadersImmediately: a resumed stream has no
// snapshot frame to force the first flush, so the handler must flush the
// headers itself — otherwise a caught-up client hangs in CONNECTING
// until the next commit.
func TestResumeAtHeadSendsHeadersImmediately(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 53)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q?kind=sim", testPatternText(t, g, 1, 53)); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	head := postUpdates(t, client, ts.URL, generator.Updates(g, 10, 10, 53))

	req, err := http.NewRequest("GET", ts.URL+"/patterns/q/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(head, 10))
	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := client.Do(req)
		done <- result{resp, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		defer r.resp.Body.Close()
		if r.resp.StatusCode != http.StatusOK || r.resp.Header.Get("Content-Type") != "text/event-stream" {
			t.Fatalf("resume-at-head response: %d %q", r.resp.StatusCode, r.resp.Header.Get("Content-Type"))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resume-at-head stream never sent response headers (missing flush)")
	}
}

// TestJournalFailureSurfaces: once the journal stops accepting appends,
// a commit that succeeded in memory must surface as a 5xx carrying its
// assigned seq (not a 4xx), and GET /commits must return 410 rather than
// a silently truncated tail.
func TestJournalFailureSurfaces(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 59)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	ups := generator.Updates(g, 20, 20, 59)
	postUpdates(t, client, ts.URL, ups[:10])

	// Simulate the journal dying under the live registry.
	if err := srv.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, client, "POST", ts.URL+"/updates", updatesText(t, ups[10:20]))
	if code != http.StatusInternalServerError {
		t.Fatalf("journaled-commit failure: code %d body %v (must be 500, not 4xx)", code, body)
	}
	if body["seq"].(float64) != 2 || body["code"] != CodeJournalFailed || body["message"] == nil {
		t.Fatalf("500 body must carry the assigned seq and the journal_failed envelope: %v", body)
	}
	// The commit stands in memory: head advanced.
	_, info := do(t, client, "GET", ts.URL+"/graph", "")
	if info["seq"].(float64) != 2 {
		t.Fatalf("graph seq %v, want 2", info["seq"])
	}
	// The raw tail is no longer complete: 410, not a silent truncation.
	if code, _ := do(t, client, "GET", ts.URL+"/commits", ""); code != http.StatusGone {
		t.Fatalf("/commits with stopped journal: code %d, want 410", code)
	}
	// A malformed batch is still a plain 400 with no seq.
	code, body = do(t, client, "POST", ts.URL+"/updates", "insert 0 999999\n")
	if code != http.StatusBadRequest || body["seq"] != nil {
		t.Fatalf("validation failure: code %d body %v", code, body)
	}
}

// updatesText renders a batch in the wire format.
func updatesText(t *testing.T, ups []graph.Update) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCommitsEndpoint covers GET /commits: the raw ΔG tail, bad and
// future from= values, and the 410 for compacted history.
func TestCommitsEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 23)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	ups := generator.Updates(g, 20, 20, 29)
	seq1 := postUpdates(t, client, ts.URL, ups[:10])
	postUpdates(t, client, ts.URL, ups[10:])

	code, body := do(t, client, "GET", ts.URL+"/commits", "")
	if code != http.StatusOK {
		t.Fatalf("/commits: code %d", code)
	}
	commits := body["commits"].([]any)
	if len(commits) != 2 || body["head"].(float64) != 2 {
		t.Fatalf("/commits body %v", body)
	}
	first := commits[0].(map[string]any)
	if uint64(first["seq"].(float64)) != seq1 {
		t.Fatalf("first commit seq %v, want %d", first["seq"], seq1)
	}
	if len(first["updates"].([]any)) == 0 {
		t.Fatal("first commit has no updates")
	}
	up := first["updates"].([]any)[0].(map[string]any)
	if op := up["op"].(string); op != "insert" && op != "delete" {
		t.Fatalf("update op %q", op)
	}

	code, body = do(t, client, "GET", ts.URL+"/commits?from=1", "")
	if code != http.StatusOK || len(body["commits"].([]any)) != 1 {
		t.Fatalf("/commits?from=1: code %d body %v", code, body)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/commits?from=99", ""); code != http.StatusBadRequest {
		t.Fatalf("future from: code %d", code)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/commits?from=bogus", ""); code != http.StatusBadRequest {
		t.Fatalf("bad from: code %d", code)
	}

	// Compacted history is 410 Gone.
	srv2, err := NewWithJournal(journal.New(journal.WithRing(1)))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	g2, gtext2 := testGraphText(t, 31)
	if code, _ := do(t, ts2.Client(), "POST", ts2.URL+"/graph", gtext2); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	ups2 := generator.Updates(g2, 20, 20, 31)
	postUpdates(t, ts2.Client(), ts2.URL, ups2[:10])
	postUpdates(t, ts2.Client(), ts2.URL, ups2[10:])
	if code, _ := do(t, ts2.Client(), "GET", ts2.URL+"/commits", ""); code != http.StatusGone {
		t.Fatalf("compacted /commits: code %d", code)
	}
}

// TestStatsIncludeJournal: GET /stats carries the journal counters the
// operators satellite asks for.
func TestStatsIncludeJournal(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 37)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	postUpdates(t, client, ts.URL, generator.Updates(g, 10, 10, 37))

	_, stats := do(t, client, "GET", ts.URL+"/stats", "")
	jn, ok := stats["journal"].(map[string]any)
	if !ok {
		t.Fatalf("stats have no journal section: %v", stats)
	}
	if jn["commits"].(float64) != 1 || jn["head_seq"].(float64) != 1 || jn["oldest_seq"].(float64) != 1 {
		t.Fatalf("journal stats %v", jn)
	}
	if jn["durable"].(bool) {
		t.Fatal("default server journal must be memory-only")
	}
}

// TestServerRestartRecovery is the crash-recovery acceptance e2e: a
// server with a durable journal is shut down and rebuilt from disk; the
// graph, patterns, sequence and results survive, a subscriber who last
// saw a pre-restart seq resumes with no gaps, and new commits flow.
func TestServerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	const np = 3

	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithJournal(j)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	client := ts.Client()

	g, gtext := testGraphText(t, 41)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	for id, kind := range map[string]string{"s": "sim", "b": "bsim", "i": "iso"} {
		k := 1
		if kind == "bsim" {
			k = 2
		}
		if code, _ := do(t, client, "PUT", ts.URL+"/patterns/"+id+"?kind="+kind, testPatternText(t, g, k, 41)); code != http.StatusCreated {
			t.Fatalf("register %s failed", id)
		}
	}
	ups := generator.Updates(g, 40, 40, 43)

	// A streaming client follows the first two commits, then disconnects.
	resp, sc := openStream(t, client, ts.URL, "s", "")
	snap := readSSE(t, sc, 1)[0]
	acc := pairsOf(t, snap.data["pairs"], np)
	last := uint64(snap.data["seq"].(float64))
	postUpdates(t, client, ts.URL, ups[:10])
	postUpdates(t, client, ts.URL, ups[10:20])
	for _, frame := range readSSE(t, sc, 2) {
		last = applyFrame(t, frame, acc, np)
	}
	resp.Body.Close()

	// One more commit the client never sees before the "crash".
	postUpdates(t, client, ts.URL, ups[20:30])
	preSeq := uint64(3)
	want := map[string]rel.Relation{}
	for _, id := range []string{"s", "b", "i"} {
		_, body := do(t, client, "GET", ts.URL+"/patterns/"+id+"/result", "")
		want[id] = pairsOf(t, body["pairs"], np)
	}

	// Shut down: registry close flushes the journal, then the owner
	// closes it after the HTTP server drains — the gpserve SIGTERM order.
	srv.Close()
	ts.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from disk.
	j2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	srv2, err := NewWithJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	client2 := ts2.Client()

	code, body := do(t, client2, "GET", ts2.URL+"/graph", "")
	if code != http.StatusOK || uint64(body["seq"].(float64)) != preSeq {
		t.Fatalf("recovered /graph: code %d body %v", code, body)
	}
	if int(body["patterns"].(float64)) != 3 {
		t.Fatalf("recovered %v patterns, want 3", body["patterns"])
	}
	for id, w := range want {
		_, body := do(t, client2, "GET", ts2.URL+"/patterns/"+id+"/result", "")
		if !w.Equal(pairsOf(t, body["pairs"], np)) {
			t.Fatalf("pattern %q result diverges after restart", id)
		}
	}

	// The disconnected client resumes across the restart: its next frame
	// is the pre-restart commit it missed, then post-restart commits.
	resp2, sc2 := openStream(t, client2, ts2.URL, "s", strconv.FormatUint(last, 10))
	defer resp2.Body.Close()
	if seq := applyFrame(t, readSSE(t, sc2, 1)[0], acc, np); seq != last+1 {
		t.Fatalf("cross-restart resume: seq %d after %d", seq, last)
	}
	newSeq := postUpdates(t, client2, ts2.URL, ups[30:])
	if newSeq != preSeq+1 {
		t.Fatalf("post-restart commit seq %d, want %d", newSeq, preSeq+1)
	}
	if seq := applyFrame(t, readSSE(t, sc2, 1)[0], acc, np); seq != newSeq {
		t.Fatalf("post-restart delta seq %d, want %d", seq, newSeq)
	}
	_, body = do(t, client2, "GET", ts2.URL+"/patterns/s/result", "")
	if !acc.Equal(pairsOf(t, body["pairs"], np)) {
		t.Fatal("cross-restart accumulation diverges from /result")
	}
}
