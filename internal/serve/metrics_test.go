package serve

import (
	"bufio"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpm/internal/contq"
	"gpm/internal/obs"
)

// newTestLogger builds a text slog writing to w, timestamps stripped so
// assertions stay simple.
func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// TestMetricsEndToEnd drives real commits through a live server and checks
// the two read surfaces agree: GET /v1/stats carries the timings block and
// GET /v1/metricz the Prometheus exposition, both showing the commits that
// actually ran (and the SSE event-age series once a stream consumed them).
func TestMetricsEndToEnd(t *testing.T) {
	mreg := obs.NewRegistry()
	srv := New(contq.WithMetrics(mreg))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client := ts.Client()

	g, gtext := testGraphText(t, 7)
	if code, _ := do(t, client, "POST", ts.URL+"/v1/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/v1/patterns/q?kind=sim", testPatternText(t, g, 1, 7)); code != http.StatusCreated {
		t.Fatal("register failed")
	}

	// A live stream so delivery-side series get observations too.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/patterns/q/stream", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	readSSE(t, sc, 1) // snapshot

	const commits = 3
	for i := 0; i < commits; i++ {
		if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "insert 1 2"); code != http.StatusOK {
			t.Fatal("update failed")
		}
		if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "delete 1 2"); code != http.StatusOK {
			t.Fatal("update failed")
		}
	}
	readSSE(t, sc, 2*commits)

	// Surface 1: /v1/stats carries the timings block.
	code, stats := do(t, client, "GET", ts.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	timings, ok := stats["timings"].(map[string]any)
	if !ok {
		t.Fatalf("stats response has no timings block: %v", stats)
	}
	total, ok := timings["total_ms"].(map[string]any)
	if !ok {
		t.Fatalf("timings has no total_ms: %v", timings)
	}
	if n := total["count"].(float64); n != 2*commits {
		t.Fatalf("stats total_ms count = %v, want %d", n, 2*commits)
	}
	if total["sum"].(float64) <= 0 {
		t.Fatalf("stats total_ms sum not positive: %v", total)
	}
	if v, ok := timings["validate_ms"].(map[string]any); !ok || v["count"].(float64) != 2*commits {
		t.Fatalf("stats validate_ms missing or wrong: %v", timings["validate_ms"])
	}

	// Surface 2: /v1/metricz serves the exposition from the same registry.
	mresp, err := client.Get(ts.URL + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metricz status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metricz content type %q", ct)
	}
	var b strings.Builder
	msc := bufio.NewScanner(mresp.Body)
	for msc.Scan() {
		b.WriteString(msc.Text())
		b.WriteByte('\n')
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE gpm_commit_stage_ms histogram",
		`gpm_commit_stage_ms_count{stage="validate"} 6`,
		`gpm_commit_stage_ms_count{stage="publish"} 6`,
		"gpm_commit_ms_count 6",
		"gpm_commits_total 6",
		"gpm_subscriptions_active 1",
		"# TYPE gpm_sse_event_age_ms histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metricz missing %q:\n%s", want, body)
		}
	}

	// The stream consumed 6 deltas; the age series must have seen them.
	age := mreg.Histogram("gpm_sse_event_age_ms", "", nil).Snapshot()
	if age.Count != 2*commits {
		t.Fatalf("sse event age count = %d, want %d", age.Count, 2*commits)
	}
}

// TestMetriczIsV1Only ensures the scrape endpoint exists only under /v1 —
// no deprecated unversioned alias to keep alive forever.
func TestMetriczIsV1Only(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	resp, err := ts.Client().Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unversioned /metricz answered %d, want 404", resp.StatusCode)
	}
}

// TestAccessLogMiddleware checks the middleware records route, status and
// duration, and stays transparent to the wrapped handler.
func TestAccessLogMiddleware(t *testing.T) {
	srv := New()
	t.Cleanup(srv.Close)
	var lines strings.Builder
	logger := newTestLogger(&lines)
	ts := httptest.NewServer(AccessLog(srv, logger))
	t.Cleanup(ts.Close)

	if code, _ := do(t, ts.Client(), "GET", ts.URL+"/v1/healthz", ""); code != http.StatusOK {
		t.Fatal("healthz through middleware failed")
	}
	if code, _ := do(t, ts.Client(), "GET", ts.URL+"/v1/patterns/none/result", ""); code != http.StatusNotFound {
		t.Fatal("404 through middleware lost its status")
	}
	out := lines.String()
	if !strings.Contains(out, "path=/v1/healthz") || !strings.Contains(out, "status=200") {
		t.Fatalf("access log missing healthz line:\n%s", out)
	}
	if !strings.Contains(out, "path=/v1/patterns/none/result") || !strings.Contains(out, "status=404") {
		t.Fatalf("access log missing 404 line:\n%s", out)
	}
	if !strings.Contains(out, "duration_ms=") {
		t.Fatalf("access log missing duration:\n%s", out)
	}
}
