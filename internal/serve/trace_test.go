package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpm/internal/contq"
	"gpm/internal/obs"
	"gpm/internal/obs/trace"
)

const testTraceparent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
const testTraceID = "0123456789abcdef0123456789abcdef"

// tracedServer returns a test server sampling every commit, with a graph
// loaded and one sim pattern "q" registered.
func tracedServer(t *testing.T) (*httptest.Server, *http.Client, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Config{Mode: trace.ModeAlways})
	srv := New(contq.WithTracer(tr), contq.WithMetrics(obs.NewRegistry()))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client := ts.Client()
	g, gtext := testGraphText(t, 11)
	if code, _ := do(t, client, "POST", ts.URL+"/v1/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/v1/patterns/q?kind=sim", testPatternText(t, g, 1, 11)); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	return ts, client, tr
}

// doTraced is do with a sampled traceparent header attached.
func doTraced(t *testing.T, client *http.Client, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", testTraceparent)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// TestIngestTraceRetrievableFromTracez: a traced POST /v1/updates must
// land in the tracer under the CALLER's trace ID, with the HTTP ingest
// span and the full commit stage tree, retrievable from /v1/tracez by
// seq, by trace ID, and in the list form.
func TestIngestTraceRetrievableFromTracez(t *testing.T) {
	ts, client, _ := tracedServer(t)

	code, body := doTraced(t, client, "POST", ts.URL+"/v1/updates", "insert 1 2\n")
	if code != http.StatusOK {
		t.Fatalf("traced update: code %d body %v", code, body)
	}
	seq := int(body["seq"].(float64))

	code, doc := do(t, client, "GET", ts.URL+"/v1/tracez?seq=1", "")
	if code != http.StatusOK {
		t.Fatalf("tracez?seq=%d: code %d body %v", seq, code, doc)
	}
	if got := doc["trace_id"]; got != testTraceID {
		t.Fatalf("tracez seq lookup trace_id = %v, want caller's %s", got, testTraceID)
	}
	names := make(map[string]bool)
	for _, raw := range doc["spans"].([]any) {
		names[raw.(map[string]any)["name"].(string)] = true
	}
	for _, n := range []string{"http.ingest", "commit", "stage.validate", "stage.journal", "stage.publish"} {
		if !names[n] {
			t.Fatalf("trace missing span %q (have %v)", n, names)
		}
	}

	if code, doc = do(t, client, "GET", ts.URL+"/v1/tracez?trace="+testTraceID, ""); code != http.StatusOK || doc["trace_id"] != testTraceID {
		t.Fatalf("tracez by id: code %d body %v", code, doc)
	}
	if code, doc = do(t, client, "GET", ts.URL+"/v1/tracez", ""); code != http.StatusOK {
		t.Fatalf("tracez list: code %d", code)
	}
	if doc["mode"] != "always" || len(doc["traces"].([]any)) == 0 {
		t.Fatalf("tracez list: mode %v, %v traces", doc["mode"], doc["traces"])
	}

	// Misses are typed envelopes, not empty documents.
	if code, doc = do(t, client, "GET", ts.URL+"/v1/tracez?trace="+strings.Repeat("f", 32), ""); code != http.StatusNotFound || doc["code"] != CodeNotFound {
		t.Fatalf("tracez unknown id: code %d body %v", code, doc)
	}
	if code, doc = do(t, client, "GET", ts.URL+"/v1/tracez?seq=999", ""); code != http.StatusNotFound || doc["code"] != CodeNotFound {
		t.Fatalf("tracez unknown seq: code %d body %v", code, doc)
	}
	if code, _ = do(t, client, "GET", ts.URL+"/v1/tracez?seq=x", ""); code != http.StatusBadRequest {
		t.Fatalf("tracez bad seq: code %d", code)
	}
}

// TestErrorEnvelopeCarriesTraceID: a failing traced request must echo the
// trace ID in its error envelope, so the client can pull the server-side
// story of its own failure.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	ts, client, _ := tracedServer(t)
	code, body := doTraced(t, client, "POST", ts.URL+"/v1/updates", "garbage")
	if code != http.StatusBadRequest || body["code"] != CodeInvalidUpdates {
		t.Fatalf("bad updates: code %d body %v", code, body)
	}
	if body["trace_id"] != testTraceID {
		t.Fatalf("error envelope trace_id = %v, want %s", body["trace_id"], testTraceID)
	}
	// Untraced failures must not carry the field at all.
	if _, body = do(t, client, "POST", ts.URL+"/v1/updates", "garbage"); body["trace_id"] != nil {
		t.Fatalf("untraced error envelope has trace_id %v", body["trace_id"])
	}
}

// TestDeltaFrameCarriesTrace: the SSE delta produced by a traced commit
// must carry the commit's traceparent and publish timestamp, and the
// delivery must append an sse.deliver span to the same trace.
func TestDeltaFrameCarriesTrace(t *testing.T) {
	ts, client, tr := tracedServer(t)

	streamResp, err := client.Get(ts.URL + "/v1/patterns/q/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	readSSE(t, sc, 1) // snapshot

	if code, body := doTraced(t, client, "POST", ts.URL+"/v1/updates", "insert 1 2\n"); code != http.StatusOK {
		t.Fatalf("traced update: code %d body %v", code, body)
	}
	frames := readSSE(t, sc, 1)
	delta := frames[0]
	if delta.event != "delta" {
		t.Fatalf("frame event %q, want delta", delta.event)
	}
	tp, _ := delta.data["trace"].(string)
	psc, ok := trace.Parse(tp)
	if !ok || psc.TraceID.String() != testTraceID {
		t.Fatalf("delta frame trace %q, want traceparent of %s", tp, testTraceID)
	}
	if _, ok := delta.data["at"]; !ok {
		t.Fatal("delta frame missing publish timestamp at")
	}
	// The server records the delivery span onto the same trace.
	snap, ok := tr.Lookup(testTraceID)
	if !ok {
		t.Fatal("trace not retained")
	}
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == "sse.deliver" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace has no sse.deliver span")
	}
}

// TestStatsAndMetricsCarryBuildInfo is the build-identity satellite: the
// stats document has a build block and the metrics exposition the
// constant gpm_build_info gauge.
func TestStatsAndMetricsCarryBuildInfo(t *testing.T) {
	ts, client, _ := tracedServer(t)
	code, body := do(t, client, "GET", ts.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	build, ok := body["build"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no build block: %v", body)
	}
	if gov, _ := build["go"].(string); gov == "" || gov == "unknown" {
		t.Fatalf("build block go version = %v", build["go"])
	}
	resp, err := client.Get(ts.URL + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteByte('\n')
	}
	if !strings.Contains(buf.String(), "gpm_build_info{") {
		t.Fatal("metricz missing gpm_build_info")
	}
}
