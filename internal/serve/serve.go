// Package serve is the HTTP surface of the continuous-query subsystem:
// the handler behind cmd/gpserve. It wraps a contq.Registry with endpoints
// to load a graph, register/unregister standing patterns, ingest edge
// updates, read current results, and stream match deltas over Server-Sent
// Events. Request and response bodies reuse the repository's text formats
// (graph/pattern/update files) on the way in and JSON on the way out, so
// the server composes with the existing CLI tools and curl alike.
//
//	Method  Path                    Body (in)        Effect
//	------  ----------------------  ---------------  ------------------------------
//	POST    /graph                  graph text       load graph, reset registry
//	GET     /graph                  —                graph + registry stats
//	PUT     /patterns/{id}?kind=K   pattern text     register standing pattern
//	GET     /patterns               —                list registered patterns
//	GET     /patterns/{id}/result   —                current match relation
//	DELETE  /patterns/{id}          —                unregister, close streams
//	POST    /updates                update text      commit batch, fan out deltas
//	GET     /patterns/{id}/stream   —                SSE: snapshot, then deltas
//	GET     /stats                  —                registry + coalescing stats
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Server wraps a contq.Registry with the HTTP surface. Construct with New.
type Server struct {
	mu   sync.RWMutex // guards the registry pointer (swapped by POST /graph)
	reg  *contq.Registry
	opts []contq.Option // re-applied to every registry a graph swap creates
	mux  *http.ServeMux
}

// New builds a server over an initially empty graph. POST /graph installs
// a real one.
func New(options ...contq.Option) *Server {
	s := &Server{reg: contq.New(graph.New(), options...), opts: options}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graph", s.loadGraph)
	mux.HandleFunc("GET /graph", s.graphInfo)
	mux.HandleFunc("PUT /patterns/{id}", s.register)
	mux.HandleFunc("GET /patterns", s.listPatterns)
	mux.HandleFunc("GET /patterns/{id}/result", s.result)
	mux.HandleFunc("DELETE /patterns/{id}", s.unregister)
	mux.HandleFunc("POST /updates", s.updates)
	mux.HandleFunc("GET /patterns/{id}/stream", s.stream)
	mux.HandleFunc("GET /stats", s.stats)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// registry returns the current registry under the swap lock.
func (s *Server) registry() *contq.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg
}

// Close shuts the underlying registry down, ending all streams.
func (s *Server) Close() { s.registry().Close() }

// LoadGraph installs g behind a fresh registry — the in-process equivalent
// of POST /graph. The server takes ownership of g; all previously
// registered patterns and streams are dropped.
func (s *Server) LoadGraph(g *graph.Graph) {
	s.mu.Lock()
	old := s.reg
	s.reg = contq.New(g, s.opts...)
	s.mu.Unlock()
	old.Close()
}

// pairJSON is one (pattern node, data node) match pair on the wire.
type pairJSON struct {
	U int          `json:"u"`
	V graph.NodeID `json:"v"`
}

func pairsJSON(ps []rel.Pair) []pairJSON {
	out := make([]pairJSON, len(ps))
	for i, p := range ps {
		out[i] = pairJSON{U: p.U, V: p.V}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// loadGraph installs a freshly parsed graph behind a new registry,
// dropping all registered patterns and subscriptions (standing queries are
// defined against one graph; a new graph is a new world).
func (s *Server) loadGraph(w http.ResponseWriter, r *http.Request) {
	g, err := graph.Read(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.LoadGraph(g)
	writeJSON(w, http.StatusOK, map[string]any{"nodes": g.NumNodes(), "edges": g.NumEdges()})
}

func (s *Server) graphInfo(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	nodes, edges, seq := reg.GraphInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": nodes, "edges": edges, "seq": seq, "patterns": len(reg.Patterns()),
	})
}

// stats reports the registry snapshot: pattern count, committed sequence,
// shared-graph size and the writer's cumulative coalescing counters.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry().Stats())
}

func (s *Server) register(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p, err := pattern.Parse(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	kind := contq.Kind(r.URL.Query().Get("kind"))
	if kind == "" {
		kind = contq.KindAuto
	}
	if err := s.registry().Register(id, p, kind); err != nil {
		// Only a duplicate id is a conflict worth retrying under another
		// name; bad kinds or kind/pattern mismatches are client errors.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, contq.ErrAlreadyRegistered):
			status = http.StatusConflict
		case errors.Is(err, contq.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": id, "nodes": p.NumNodes(), "edges": p.NumEdges(),
	})
}

func (s *Server) listPatterns(w http.ResponseWriter, r *http.Request) {
	infos := s.registry().Patterns()
	out := make([]map[string]any, 0, len(infos))
	for _, in := range infos {
		out = append(out, map[string]any{
			"id": in.ID, "kind": in.Kind, "nodes": in.Nodes, "edges": in.Edges,
			"subscribers": in.Subscribers, "result_size": in.ResultSize,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out})
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	id := r.PathValue("id")
	res, ok := reg.Result(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "seq": reg.Seq(), "size": res.Size(), "pairs": pairsJSON(res.Pairs()),
	})
}

func (s *Server) unregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry().Unregister(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "unregistered": true})
}

func (s *Server) updates(w http.ResponseWriter, r *http.Request) {
	ups, err := graph.ReadUpdates(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	seq, err := s.registry().Apply(ups)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "updates": len(ups)})
}

// sseEvent writes one SSE frame and flushes it.
func sseEvent(w http.ResponseWriter, f http.Flusher, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// stream serves the match-delta subscription over SSE: one "snapshot"
// event carrying the full result and its commit sequence, then one
// "delta" event per commit, in commit order, until the client disconnects
// or the pattern is unregistered.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	sub, err := s.registry().Subscribe(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	snap := map[string]any{
		"id": id, "seq": sub.Seq, "size": sub.Snapshot.Size(), "pairs": pairsJSON(sub.Snapshot.Pairs()),
	}
	if err := sseEvent(w, flusher, "snapshot", snap); err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return // pattern unregistered or server closing
			}
			frame := map[string]any{
				"id": ev.Pattern, "seq": ev.Seq,
				"added": pairsJSON(ev.Delta.Added), "removed": pairsJSON(ev.Delta.Removed),
			}
			if err := sseEvent(w, flusher, "delta", frame); err != nil {
				return
			}
		}
	}
}
