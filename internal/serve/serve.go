// Package serve is the HTTP surface of the continuous-query subsystem:
// the handler behind cmd/gpserve. It wraps a contq.Registry with endpoints
// to load a graph, register/unregister standing patterns, ingest edge
// updates, read current results, and stream match deltas over Server-Sent
// Events. Request and response bodies reuse the repository's text formats
// (graph/pattern/update files) on the way in and JSON on the way out, so
// the server composes with the existing CLI tools and curl alike.
//
//	Method  Path                    Body (in)        Effect
//	------  ----------------------  ---------------  ------------------------------
//	POST    /graph                  graph text       load graph, reset registry
//	GET     /graph                  —                graph + registry stats
//	PUT     /patterns/{id}?kind=K   pattern text     register standing pattern
//	GET     /patterns               —                list registered patterns
//	GET     /patterns/{id}/result   —                current match relation
//	DELETE  /patterns/{id}          —                unregister, close streams
//	POST    /updates                update text      commit batch, fan out deltas
//	GET     /patterns/{id}/stream   —                SSE: snapshot, then deltas
//	GET     /commits?from=N         —                raw ΔG tail after seq N
//	GET     /stats                  —                registry + journal stats
//
// Streams resume: every SSE frame carries its commit sequence as the SSE
// id, so a dropped client reconnects with the standard Last-Event-ID
// header (or ?from=N) and receives exactly the deltas it missed — no
// snapshot re-send — as long as the registry's journal still retains the
// range; otherwise the server falls back to a fresh snapshot frame.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Server wraps a contq.Registry with the HTTP surface. Construct with New
// (in-memory journal: streams resume, nothing survives the process) or
// NewWithJournal (durable journal: crash recovery too).
type Server struct {
	mu      sync.RWMutex // guards the registry pointer (swapped by POST /graph)
	reg     *contq.Registry
	opts    []contq.Option // re-applied to every registry a graph swap creates
	journal *journal.Journal
	mux     *http.ServeMux
}

// New builds a server over an initially empty graph with a memory-only
// journal, so SSE streams are resumable out of the box. POST /graph
// installs a real graph.
func New(options ...contq.Option) *Server {
	s := &Server{opts: options, journal: journal.New()}
	s.reg = contq.New(graph.New(), s.registryOpts()...)
	s.initMux()
	return s
}

// NewWithJournal builds a server whose state is recovered from (and
// journaled to) j — typically a durable journal.Open directory: the
// graph, standing patterns and commit sequence are rebuilt from the
// latest snapshot plus the record tail, and every later commit is
// appended. The server does not close j; the caller does, after Close.
func NewWithJournal(j *journal.Journal, options ...contq.Option) (*Server, error) {
	reg, err := contq.Recover(j, options...)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, opts: options, journal: j}
	s.initMux()
	return s, nil
}

func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graph", s.loadGraph)
	mux.HandleFunc("GET /graph", s.graphInfo)
	mux.HandleFunc("PUT /patterns/{id}", s.register)
	mux.HandleFunc("GET /patterns", s.listPatterns)
	mux.HandleFunc("GET /patterns/{id}/result", s.result)
	mux.HandleFunc("DELETE /patterns/{id}", s.unregister)
	mux.HandleFunc("POST /updates", s.updates)
	mux.HandleFunc("GET /patterns/{id}/stream", s.stream)
	mux.HandleFunc("GET /commits", s.commits)
	mux.HandleFunc("GET /stats", s.stats)
	s.mux = mux
}

// registryOpts is the option set for a fresh registry: the caller's
// options plus the server's journal.
func (s *Server) registryOpts() []contq.Option {
	opts := make([]contq.Option, 0, len(s.opts)+1)
	opts = append(opts, s.opts...)
	return append(opts, contq.WithJournal(s.journal))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// registry returns the current registry under the swap lock.
func (s *Server) registry() *contq.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg
}

// Journal returns the server's journal (never nil; memory-only for New).
func (s *Server) Journal() *journal.Journal { return s.journal }

// Registry returns the server's current registry — for in-process
// embedding and startup introspection. POST /graph swaps it; re-read
// rather than retain.
func (s *Server) Registry() *contq.Registry { return s.registry() }

// Close shuts the underlying registry down, ending all streams and
// flushing the journal. The journal itself stays open — its owner closes
// it after the HTTP server has drained.
func (s *Server) Close() { s.registry().Close() }

// LoadGraph installs g behind a fresh registry — the in-process
// equivalent of POST /graph. The server takes ownership of g; all
// previously registered patterns and streams are dropped, and the
// journal is reset to a new world starting at g (for durable journals,
// the old history is deleted and g is checkpointed at seq 0).
func (s *Server) LoadGraph(g *graph.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Close the old registry first: it drains any in-flight commit, so no
	// stale append can land in the journal after the reset below.
	s.reg.Close()
	if err := s.journal.Reset(g); err != nil {
		// The old registry is gone; install the new one anyway so the
		// server stays consistent — the journal failure is surfaced.
		s.reg = contq.New(g, s.registryOpts()...)
		return err
	}
	s.reg = contq.New(g, s.registryOpts()...)
	return nil
}

// pairJSON is one (pattern node, data node) match pair on the wire.
type pairJSON struct {
	U int          `json:"u"`
	V graph.NodeID `json:"v"`
}

func pairsJSON(ps []rel.Pair) []pairJSON {
	out := make([]pairJSON, len(ps))
	for i, p := range ps {
		out[i] = pairJSON{U: p.U, V: p.V}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// loadGraph installs a freshly parsed graph behind a new registry,
// dropping all registered patterns and subscriptions (standing queries are
// defined against one graph; a new graph is a new world).
func (s *Server) loadGraph(w http.ResponseWriter, r *http.Request) {
	g, err := graph.Read(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.LoadGraph(g); err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("graph loaded but journal reset failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": g.NumNodes(), "edges": g.NumEdges()})
}

func (s *Server) graphInfo(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	nodes, edges, seq := reg.GraphInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": nodes, "edges": edges, "seq": seq, "patterns": len(reg.Patterns()),
	})
}

// stats reports the registry snapshot: pattern count, committed sequence,
// shared-graph size and the writer's cumulative coalescing counters.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry().Stats())
}

func (s *Server) register(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p, err := pattern.Parse(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	kind := contq.Kind(r.URL.Query().Get("kind"))
	if kind == "" {
		kind = contq.KindAuto
	}
	if err := s.registry().Register(id, p, kind); err != nil {
		// Only a duplicate id is a conflict worth retrying under another
		// name; bad kinds or kind/pattern mismatches are client errors.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, contq.ErrAlreadyRegistered):
			status = http.StatusConflict
		case errors.Is(err, contq.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": id, "nodes": p.NumNodes(), "edges": p.NumEdges(),
	})
}

func (s *Server) listPatterns(w http.ResponseWriter, r *http.Request) {
	infos := s.registry().Patterns()
	out := make([]map[string]any, 0, len(infos))
	for _, in := range infos {
		out = append(out, map[string]any{
			"id": in.ID, "kind": in.Kind, "nodes": in.Nodes, "edges": in.Edges,
			"subscribers": in.Subscribers, "result_size": in.ResultSize,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out})
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	id := r.PathValue("id")
	res, ok := reg.Result(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "seq": reg.Seq(), "size": res.Size(), "pairs": pairsJSON(res.Pairs()),
	})
}

func (s *Server) unregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry().Unregister(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "unregistered": true})
}

func (s *Server) updates(w http.ResponseWriter, r *http.Request) {
	ups, err := graph.ReadUpdates(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	seq, err := s.registry().Apply(ups)
	if err != nil {
		// seq != 0 means the batch WAS committed and published but a
		// server-side step after it failed (journal append): that is a
		// 5xx carrying the assigned seq, not a rejected request — a 4xx
		// would tell the client its state diverged when it did not.
		if seq != 0 {
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"seq": seq, "updates": len(ups), "error": err.Error(),
			})
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "updates": len(ups)})
}

// sseEvent writes one SSE frame — with its commit sequence as the SSE id,
// so clients can resume via Last-Event-ID — and flushes it.
func sseEvent(w http.ResponseWriter, f http.Flusher, event string, seq uint64, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, seq, data); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// resumeSeq extracts the client's resume point. The standard
// Last-Event-ID header wins over ?from=N: an EventSource opened with
// ?from= keeps the stale query parameter on every auto-reconnect but
// sends the up-to-date header, and honoring the query would replay
// already-delivered deltas. ok reports whether a resume was requested.
func resumeSeq(r *http.Request) (seq uint64, ok bool, err error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("from")
	}
	if raw == "" {
		return 0, false, nil
	}
	seq, err = strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad resume seq %q: %w", raw, err)
	}
	return seq, true, nil
}

// stream serves the match-delta subscription over SSE: one "snapshot"
// event carrying the full result and its commit sequence, then one
// "delta" event per commit, in commit order, until the client disconnects
// or the pattern is unregistered.
//
// A client reconnecting with Last-Event-ID: N (or ?from=N) resumes
// instead: no snapshot is re-sent, and delivery begins at seq N+1 with
// the missed deltas backfilled from the registry's journal. When the
// journal no longer retains the range (compacted, or the seq is ahead of
// a recovered head), the server falls back to the snapshot path — the
// client detects this by receiving a "snapshot" event and rebases.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	from, resume, err := resumeSeq(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	reg := s.registry()
	var sub *contq.Subscription
	if resume {
		sub, err = reg.Subscribe(id, contq.FromSeq(from))
		if err != nil && !errors.Is(err, contq.ErrNotRegistered) && !errors.Is(err, contq.ErrClosed) {
			// Unresumable (journal compacted, seq ahead of a recovered
			// head): fall back to a fresh snapshot subscription.
			resume = false
			sub, err = reg.Subscribe(id)
		}
	} else {
		sub, err = reg.Subscribe(id)
	}
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, contq.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: a resumed stream sends no snapshot frame,
	// and without this flush a reconnecting client would sit in
	// CONNECTING until the next commit produced its first event.
	flusher.Flush()
	if !resume {
		snap := map[string]any{
			"id": id, "seq": sub.Seq, "size": sub.Snapshot.Size(), "pairs": pairsJSON(sub.Snapshot.Pairs()),
		}
		if err := sseEvent(w, flusher, "snapshot", sub.Seq, snap); err != nil {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return // pattern unregistered or server closing
			}
			frame := map[string]any{
				"id": ev.Pattern, "seq": ev.Seq,
				"added": pairsJSON(ev.Delta.Added), "removed": pairsJSON(ev.Delta.Removed),
			}
			if err := sseEvent(w, flusher, "delta", ev.Seq, frame); err != nil {
				return
			}
		}
	}
}

// commits serves the raw ΔG tail: every committed net update batch with
// seq > from, for consumers that follow the graph itself rather than a
// pattern's match (bootstrapping a follower, audit, change-data capture).
func (s *Server) commits(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad from seq %q: %w", raw, err))
			return
		}
		from = v
	}
	reg := s.registry()
	recs, err := reg.Replay(from)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, journal.ErrCompacted):
			status = http.StatusGone // resync from a snapshot (GET /graph + /result)
		case errors.Is(err, contq.ErrSeqFuture):
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	out := make([]map[string]any, 0, len(recs))
	for _, rec := range recs {
		ups := make([]map[string]any, 0, len(rec.Updates))
		for _, up := range rec.Updates {
			op := "insert"
			if up.Op == graph.DeleteEdge {
				op = "delete"
			}
			ups = append(ups, map[string]any{"op": op, "from": up.From, "to": up.To})
		}
		out = append(out, map[string]any{"seq": rec.Seq, "updates": ups})
	}
	writeJSON(w, http.StatusOK, map[string]any{"from": from, "head": reg.Seq(), "commits": out})
}
