// Package serve is the HTTP surface of the continuous-query subsystem:
// the handler behind cmd/gpserve. It wraps a contq.Registry with a
// versioned wire API (all routes under /v1) to load a graph,
// register/unregister standing patterns, ingest edge updates, read
// current results, and stream match deltas over Server-Sent Events.
//
//	Method  Path                       Body (in)             Effect
//	------  -------------------------  --------------------  ------------------------------
//	POST    /v1/graph                  graph text | JSON     load graph, reset registry
//	GET     /v1/graph                  —                     graph + registry info
//	PUT     /v1/patterns/{id}?kind=K   pattern text | JSON   register standing pattern
//	GET     /v1/patterns               —                     list registered patterns
//	GET     /v1/patterns/{id}/result   —                     current match relation
//	DELETE  /v1/patterns/{id}          —                     unregister, close streams
//	POST    /v1/updates                update text | JSON    commit batch, fan out deltas
//	GET     /v1/patterns/{id}/stream   —                     SSE: snapshot, then deltas
//	GET     /v1/commits?from=N         —                     raw ΔG tail after seq N
//	GET     /v1/stats                  —                     registry + journal stats
//	GET     /v1/metricz                —                     Prometheus text exposition
//	GET     /v1/tracez                 —                     recent commit traces (JSON)
//	GET     /v1/healthz                —                     liveness (always 200)
//	GET     /v1/readyz                 —                     readiness (registry + journal)
//
// Request bodies are content-negotiated: Content-Type application/json
// selects the JSON wire documents (see the graph and pattern packages'
// MarshalJSON), anything else the repository's line-oriented text
// formats, so existing curl/CLI sessions keep working. Responses are
// always JSON, and every failure is one uniform envelope
// {"code", "message", "seq"?} with a stable machine-readable code (see
// wire.go).
//
// The original unversioned routes remain as deprecated aliases of their
// /v1 successors: same handlers, plus a "Deprecation: true" header and a
// Link header naming the successor. New consumers should use /v1 (or the
// typed client package, which does).
//
// Streams resume: every SSE frame carries its commit sequence as the SSE
// id, so a dropped client reconnects with the standard Last-Event-ID
// header (or ?from=N) and receives exactly the deltas it missed — no
// snapshot re-send — as long as the registry's journal still retains the
// range; otherwise the server falls back to a fresh snapshot frame.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs/trace"
)

// Server wraps a contq.Registry with the HTTP surface. Construct with New
// (in-memory journal: streams resume, nothing survives the process) or
// NewWithJournal (durable journal: crash recovery too).
type Server struct {
	mu      sync.RWMutex // guards reg/journal (swapped by POST /graph or SetRegistry)
	reg     *contq.Registry
	opts    []contq.Option // re-applied to every registry a graph swap creates
	journal *journal.Journal
	mux     *http.ServeMux

	// Follower mode (NewReadOnly): writes are rejected with a read_only
	// envelope naming leader; readyCheck and statsExtra are the follow
	// package's hooks into /v1/readyz and /v1/stats.
	readOnly   bool
	leader     string
	readyCheck func() error
	statsExtra func() any
}

// New builds a server over an initially empty graph with a memory-only
// journal, so SSE streams are resumable out of the box. POST /v1/graph
// installs a real graph.
func New(options ...contq.Option) *Server {
	s := &Server{opts: options, journal: journal.New()}
	s.reg = contq.New(graph.New(), s.registryOpts()...)
	registerBuildInfo(s.reg.Metrics())
	s.initMux()
	return s
}

// NewWithJournal builds a server whose state is recovered from (and
// journaled to) j — typically a durable journal.Open directory: the
// graph, standing patterns and commit sequence are rebuilt from the
// latest snapshot plus the record tail, and every later commit is
// appended. The server does not close j; the caller does, after Close.
func NewWithJournal(j *journal.Journal, options ...contq.Option) (*Server, error) {
	reg, err := contq.Recover(j, options...)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, opts: options, journal: j}
	registerBuildInfo(reg.Metrics())
	s.initMux()
	return s, nil
}

// NewReadOnly builds a follower-facing server: every read route serves
// from the local registry, every write is rejected with a read_only
// envelope naming leaderURL. The initial registry is an empty placeholder
// (readyz reports not ready until the follower installs its bootstrapped
// registry via SetRegistry) so the listener can come up — and answer
// health probes — while the bootstrap is still fetching the snapshot.
func NewReadOnly(leaderURL string, options ...contq.Option) *Server {
	s := &Server{opts: options, journal: journal.New(), readOnly: true, leader: leaderURL}
	s.reg = contq.New(graph.New(), s.registryOpts()...)
	registerBuildInfo(s.reg.Metrics())
	s.initMux()
	return s
}

// SetRegistry atomically installs a replacement registry and its journal —
// the follower's (re)bootstrap hook. The previous registry is closed, which
// ends its SSE subscriptions; because leader and follower assign identical
// sequence numbers, reconnecting clients resume against the new registry
// with their existing Last-Event-ID.
func (s *Server) SetRegistry(reg *contq.Registry, j *journal.Journal) {
	s.mu.Lock()
	old := s.reg
	s.reg = reg
	if j != nil {
		s.journal = j
	}
	s.mu.Unlock()
	// The replacement registry may carry its own metrics registry; make
	// sure the build gauge exists there too (get-or-create: no duplicate).
	registerBuildInfo(reg.Metrics())
	if old != nil && old != reg {
		old.Close()
	}
}

// SetReadyCheck installs an additional readiness gate consulted by
// /v1/readyz: a non-nil error answers 503 not_ready with the error text.
// The follower uses it to report bootstrapping and replication lag.
func (s *Server) SetReadyCheck(fn func() error) {
	s.mu.Lock()
	s.readyCheck = fn
	s.mu.Unlock()
}

// SetStatsExtra installs a provider whose value is attached to the
// /v1/stats document under "follower" — replication state next to the
// registry's own counters.
func (s *Server) SetStatsExtra(fn func() any) {
	s.mu.Lock()
	s.statsExtra = fn
	s.mu.Unlock()
}

// initMux builds the route table: every route once under /v1 (the
// canonical surface) and once at its original unversioned path as a
// deprecated alias. A known path with the wrong method gets a 405
// envelope with an Allow header; an unknown path a 404 envelope.
func (s *Server) initMux() {
	mux := http.NewServeMux()
	routes := []struct {
		path    string
		methods map[string]http.HandlerFunc
		v1Only  bool
	}{
		{path: "/graph", methods: map[string]http.HandlerFunc{"POST": s.writable(s.loadGraph), "GET": s.graphInfo}},
		{path: "/patterns", methods: map[string]http.HandlerFunc{"GET": s.listPatterns}},
		{path: "/patterns/{id}", methods: map[string]http.HandlerFunc{
			"PUT": s.writable(s.register), "GET": s.patternDef, "DELETE": s.writable(s.unregister)}},
		{path: "/patterns/{id}/result", methods: map[string]http.HandlerFunc{"GET": s.result}},
		{path: "/patterns/{id}/stream", methods: map[string]http.HandlerFunc{"GET": s.stream}},
		{path: "/updates", methods: map[string]http.HandlerFunc{"POST": s.writable(s.updates)}},
		{path: "/commits", methods: map[string]http.HandlerFunc{"GET": s.commits}},
		{path: "/commits/stream", methods: map[string]http.HandlerFunc{"GET": s.commitStream}, v1Only: true},
		{path: "/snapshot", methods: map[string]http.HandlerFunc{"GET": s.snapshot}, v1Only: true},
		{path: "/stats", methods: map[string]http.HandlerFunc{"GET": s.stats}},
		{path: "/metricz", methods: map[string]http.HandlerFunc{"GET": s.metricz}, v1Only: true},
		{path: "/tracez", methods: map[string]http.HandlerFunc{"GET": s.tracez}, v1Only: true},
		{path: "/healthz", methods: map[string]http.HandlerFunc{"GET": s.healthz}, v1Only: true},
		{path: "/readyz", methods: map[string]http.HandlerFunc{"GET": s.readyz}, v1Only: true},
	}
	for _, rt := range routes {
		for m, h := range rt.methods {
			mux.HandleFunc(m+" /v1"+rt.path, h)
		}
		mux.HandleFunc("/v1"+rt.path, methodNotAllowed(rt.methods))
		if rt.v1Only {
			continue
		}
		for m, h := range rt.methods {
			mux.HandleFunc(m+" "+rt.path, deprecated(h))
		}
		mux.HandleFunc(rt.path, deprecated(methodNotAllowed(rt.methods)))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Errorf("no route %s", r.URL.Path))
	})
	s.mux = mux
}

// writable guards a mutating route: on a read-only (follower) server the
// request is rejected with a 403 read_only envelope whose leader field
// names the instance that accepts writes — clients redirect mechanically.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	if !s.readOnly {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		body := ErrorBody{
			Code:    CodeReadOnly,
			Message: fmt.Sprintf("this instance is a read-only follower; write to the leader at %s", s.leader),
			Leader:  s.leader,
		}
		if sc := trace.FromContext(r.Context()); sc.Valid() {
			body.TraceID = sc.TraceID.String()
		}
		writeJSON(w, http.StatusForbidden, body)
	}
}

// deprecated marks a legacy unversioned route: the same handler, plus the
// RFC 8594-style Deprecation header and a Link to the /v1 successor, so
// clients can migrate mechanically.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// methodNotAllowed answers a known path with the wrong method: a 405
// envelope plus the Allow header (the mux only reaches this fallback when
// no method-specific pattern matched).
func methodNotAllowed(methods map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(methods))
	for m := range methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Errorf("method %s not allowed (allow: %s)", r.Method, allow))
	}
}

// registryOpts is the option set for a fresh registry: the caller's
// options plus the server's journal.
func (s *Server) registryOpts() []contq.Option {
	opts := make([]contq.Option, 0, len(s.opts)+1)
	opts = append(opts, s.opts...)
	return append(opts, contq.WithJournal(s.journal))
}

// ServeHTTP implements http.Handler. An incoming W3C traceparent header
// is parsed into the request context here, once, so every handler —
// ingest, streams, error envelopes — sees the caller's span context.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if sc, ok := trace.Parse(r.Header.Get("traceparent")); ok {
		r = r.WithContext(trace.NewContext(r.Context(), sc))
	}
	s.mux.ServeHTTP(w, r)
}

// registry returns the current registry under the swap lock.
func (s *Server) registry() *contq.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg
}

// Journal returns the server's journal (never nil; memory-only for New).
func (s *Server) Journal() *journal.Journal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.journal
}

// Registry returns the server's current registry — for in-process
// embedding and startup introspection. POST /v1/graph swaps it; re-read
// rather than retain.
func (s *Server) Registry() *contq.Registry { return s.registry() }

// Close shuts the underlying registry down, ending all streams and
// flushing the journal. The journal itself stays open — its owner closes
// it after the HTTP server has drained.
func (s *Server) Close() { s.registry().Close() }

// LoadGraph installs g behind a fresh registry — the in-process
// equivalent of POST /v1/graph. The server takes ownership of g; all
// previously registered patterns and streams are dropped, and the
// journal is reset to a new world starting at g (for durable journals,
// the old history is deleted and g is checkpointed at seq 0).
func (s *Server) LoadGraph(g *graph.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Close the old registry first: it drains any in-flight commit, so no
	// stale append can land in the journal after the reset below.
	s.reg.Close()
	if err := s.journal.Reset(g); err != nil {
		// The old registry is gone; install the new one anyway so the
		// server stays consistent — the journal failure is surfaced.
		s.reg = contq.New(g, s.registryOpts()...)
		return err
	}
	s.reg = contq.New(g, s.registryOpts()...)
	return nil
}

// loadGraph installs a freshly parsed graph behind a new registry,
// dropping all registered patterns and subscriptions (standing queries are
// defined against one graph; a new graph is a new world).
func (s *Server) loadGraph(w http.ResponseWriter, r *http.Request) {
	g, err := readGraphBody(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidGraph, err)
		return
	}
	if err := s.LoadGraph(g); err != nil {
		writeError(w, r, http.StatusInternalServerError, CodeInternal,
			fmt.Errorf("graph loaded but journal reset failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": g.NumNodes(), "edges": g.NumEdges()})
}

func (s *Server) graphInfo(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	nodes, edges, seq := reg.GraphInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": nodes, "edges": edges, "seq": seq, "patterns": len(reg.Patterns()),
	})
}

// stats reports the registry snapshot: pattern count, committed sequence,
// shared-graph size and the writer's cumulative coalescing counters. On a
// follower, the replication state rides along under "follower".
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	extra := s.statsExtra
	s.mu.RUnlock()
	doc := struct {
		contq.Stats
		Build    BuildInfo `json:"build"`
		Follower any       `json:"follower,omitempty"`
	}{Stats: s.registry().Stats(), Build: ReadBuildInfo()}
	if extra != nil {
		doc.Follower = extra()
	}
	writeJSON(w, http.StatusOK, doc)
}

// healthz is the liveness probe: the process is up and serving HTTP.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// readyz is the readiness probe: the registry accepts writes and the
// journal accepts appends. A closed registry (shutdown in progress), a
// broken journal (sticky append failure: commits would apply in memory
// but stop being durable or replayable), or a failing follower ready
// check (bootstrapping, or lag beyond the bound) answers 503, telling
// orchestrators and followers to route around this instance.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	check := s.readyCheck
	s.mu.RUnlock()
	if check != nil {
		if err := check(); err != nil {
			writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, err)
			return
		}
	}
	if s.registry().Closed() {
		writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, errors.New("registry closed"))
		return
	}
	if err := s.Journal().Broken(); err != nil {
		writeError(w, r, http.StatusServiceUnavailable, CodeNotReady,
			fmt.Errorf("journal not accepting appends: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "seq": s.registry().Seq()})
}

func (s *Server) register(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p, err := readPatternBody(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidPattern, err)
		return
	}
	kind := contq.Kind(r.URL.Query().Get("kind"))
	if kind == "" {
		kind = contq.KindAuto
	}
	reg := s.registry()
	if err := reg.Register(id, p, kind); err != nil {
		status, code := classify(err, http.StatusBadRequest, CodeInvalidPattern)
		writeError(w, r, status, code, err)
		return
	}
	// Echo the kind the registry resolved (auto → sim/bsim), so clients
	// learn the backing engine without a second round trip.
	if resolved, ok := reg.Kind(id); ok {
		kind = resolved
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": id, "kind": kind, "nodes": p.NumNodes(), "edges": p.NumEdges(),
	})
}

func (s *Server) listPatterns(w http.ResponseWriter, r *http.Request) {
	infos := s.registry().Patterns()
	out := make([]map[string]any, 0, len(infos))
	for _, in := range infos {
		out = append(out, map[string]any{
			"id": in.ID, "kind": in.Kind, "nodes": in.Nodes, "edges": in.Edges,
			"subscribers": in.Subscribers, "result_size": in.ResultSize,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out})
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	id := r.PathValue("id")
	res, ok := reg.Result(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "seq": reg.Seq(), "size": res.Size(), "pairs": pairsOrEmpty(res.Pairs()),
	})
}

func (s *Server) unregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry().Unregister(id) {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "unregistered": true})
}

func (s *Server) updates(w http.ResponseWriter, r *http.Request) {
	ups, err := readUpdatesBody(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidUpdates, err)
		return
	}
	reg := s.registry()
	// The ingest span covers the HTTP half of the write: body parsed →
	// response written. It continues the caller's trace when the request
	// carried a sampled traceparent, otherwise the tracer's mode decides
	// whether a fresh trace starts here.
	tr := reg.Tracer()
	var ingest *trace.Span
	if sc := trace.FromContext(r.Context()); sc.Valid() {
		ingest = tr.StartSpan(sc, "http.ingest")
	} else {
		ingest = tr.StartRoot("http.ingest")
	}
	ingest.SetAttr("updates", len(ups))
	defer ingest.End()
	ctx := trace.NewContext(r.Context(), ingest.Context())
	r = r.WithContext(ctx)
	seq, err := reg.ApplyContext(ctx, ups)
	if err != nil {
		ingest.SetAttr("error", err.Error())
		// seq != 0 means the batch WAS committed and published but a
		// server-side step after it failed (journal append): that is a
		// 5xx carrying the assigned seq, not a rejected request — a 4xx
		// would tell the client its state diverged when it did not.
		if seq != 0 {
			ingest.SetSeq(seq)
			body := ErrorBody{Code: CodeJournalFailed, Message: err.Error(), Seq: seq}
			if sc := trace.FromContext(ctx); sc.Valid() {
				body.TraceID = sc.TraceID.String()
			}
			writeJSON(w, http.StatusInternalServerError, body)
			return
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return // the client is gone; nobody reads this response
		}
		status, code := classify(err, http.StatusBadRequest, CodeInvalidUpdates)
		writeError(w, r, status, code, err)
		return
	}
	ingest.SetSeq(seq)
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "updates": len(ups)})
}

// sseEvent writes one SSE frame — with its commit sequence as the SSE id,
// so clients can resume via Last-Event-ID — and flushes it.
func sseEvent(w http.ResponseWriter, f http.Flusher, event string, seq uint64, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, seq, data); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// resumeSeq extracts the client's resume point. The standard
// Last-Event-ID header wins over ?from=N: an EventSource opened with
// ?from= keeps the stale query parameter on every auto-reconnect but
// sends the up-to-date header, and honoring the query would replay
// already-delivered deltas. ok reports whether a resume was requested.
func resumeSeq(r *http.Request) (seq uint64, ok bool, err error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("from")
	}
	if raw == "" {
		return 0, false, nil
	}
	seq, err = strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad resume seq %q: %w", raw, err)
	}
	return seq, true, nil
}

// stream serves the match-delta subscription over SSE: one "snapshot"
// event carrying the full result and its commit sequence, then one
// "delta" event per commit, in commit order, until the client disconnects
// or the pattern is unregistered.
//
// A client reconnecting with Last-Event-ID: N (or ?from=N) resumes
// instead: no snapshot is re-sent, and delivery begins at seq N+1 with
// the missed deltas backfilled from the registry's journal. When the
// journal no longer retains the range (compacted, or the seq is ahead of
// a recovered head), the server falls back to the snapshot path — the
// client detects this by receiving a "snapshot" event and rebases.
//
// The request context is honored end to end: a canceled client tears the
// subscription down even while the resume backfill is still replaying.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, fmt.Errorf("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	from, resume, err := resumeSeq(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidSeq, err)
		return
	}
	ctx := r.Context()
	reg := s.registry()
	var sub *contq.Subscription
	if resume {
		sub, err = reg.SubscribeContext(ctx, id, contq.FromSeq(from))
		if err != nil && !errors.Is(err, contq.ErrNotRegistered) &&
			!errors.Is(err, contq.ErrClosed) && ctx.Err() == nil {
			// Unresumable (journal compacted, seq ahead of a recovered
			// head): fall back to a fresh snapshot subscription.
			resume = false
			sub, err = reg.SubscribeContext(ctx, id)
		}
	} else {
		sub, err = reg.SubscribeContext(ctx, id)
	}
	if err != nil {
		status, code := classify(err, http.StatusInternalServerError, CodeInternal)
		writeError(w, r, status, code, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: a resumed stream sends no snapshot frame,
	// and without this flush a reconnecting client would sit in
	// CONNECTING until the next commit produced its first event.
	flusher.Flush()
	if !resume {
		snap := map[string]any{
			"id": id, "seq": sub.Seq, "size": sub.Snapshot.Size(), "pairs": pairsOrEmpty(sub.Snapshot.Pairs()),
		}
		if err := sseEvent(w, flusher, "snapshot", sub.Seq, snap); err != nil {
			return
		}
	}
	// Event age at delivery: publish timestamp → this handler draining it,
	// the lag a slow consumer (or a deep mailbox) adds on top of commit
	// latency. Backfilled events carry no timestamp and are skipped.
	eventAge := reg.Metrics().Histogram("gpm_sse_event_age_ms",
		"Age of a match-delta event when the SSE handler delivers it, publish to write, in milliseconds.", nil)
	tr := reg.Tracer()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return // pattern unregistered or server closing
			}
			if !ev.At.IsZero() {
				eventAge.ObserveSince(ev.At)
			}
			frame := map[string]any{
				"id": ev.Pattern, "seq": ev.Seq,
				"added": pairsOrEmpty(ev.Delta.Added), "removed": pairsOrEmpty(ev.Delta.Removed),
			}
			if ev.Trace != "" {
				frame["trace"] = ev.Trace
			}
			if !ev.At.IsZero() {
				frame["at"] = ev.At.UnixNano()
			}
			// The delivery span hangs the SSE write off the commit span that
			// produced the event: its start is the publish timestamp, so its
			// duration IS the event's age at delivery. Backfilled events
			// (zero At) are historical and get no span.
			var ds *trace.Span
			if sc, ok := trace.Parse(ev.Trace); ok && !ev.At.IsZero() {
				ds = tr.StartSpanAt(sc, "sse.deliver", ev.At)
				ds.SetAttr("pattern", ev.Pattern)
			}
			err := sseEvent(w, flusher, "delta", ev.Seq, frame)
			ds.End()
			if err != nil {
				return
			}
		}
	}
}

// commits serves the raw ΔG tail: every committed net update batch with
// seq > from, for consumers that follow the graph itself rather than a
// pattern's match (bootstrapping a follower, audit, change-data capture).
func (s *Server) commits(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeInvalidSeq, fmt.Errorf("bad from seq %q: %w", raw, err))
			return
		}
		from = v
	}
	reg := s.registry()
	recs, err := reg.Replay(from)
	if err != nil {
		status, code := classify(err, http.StatusInternalServerError, CodeInternal)
		writeError(w, r, status, code, err)
		return
	}
	out := make([]map[string]any, 0, len(recs))
	for _, rec := range recs {
		m := map[string]any{"seq": rec.Seq, "updates": updatesOrEmpty(rec.Updates)}
		if rec.Trace != "" {
			m["trace"] = rec.Trace
		}
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, map[string]any{"from": from, "head": reg.Seq(), "commits": out})
}

// snapshot serves a consistent full-state export: the canonical graph (as
// its JSON wire document), the commit sequence it reflects, and every
// registered pattern's portable definition — what a follower bootstraps
// from when the commit tail it needs is already compacted.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	g, seq, defs := s.registry().Export()
	pats := make([]map[string]any, 0, len(defs))
	for _, pd := range defs {
		pats = append(pats, map[string]any{
			"id": pd.ID, "kind": pd.Kind, "def": string(pd.Def), "reg_seq": pd.RegSeq,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "graph": g, "patterns": pats})
}

// patternDef serves one pattern's portable definition (its text-format
// source, kind, and registration sequence) — how a follower's reconciler
// mirrors a pattern it learned about from the leader's /v1/patterns list.
func (s *Server) patternDef(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pd, ok := s.registry().PatternDef(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeNotFound, fmt.Errorf("pattern %q not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": pd.ID, "kind": pd.Kind, "def": string(pd.Def), "reg_seq": pd.RegSeq,
	})
}

// commitStream serves the raw ΔG tail over SSE: one "head" frame naming
// the sequence the stream starts after, then one "commit" frame per
// committed batch — empty ones included, so the consumer's sequence stays
// aligned with the leader's. With Last-Event-ID: N (or ?from=N) the
// commits in (N, head] are backfilled from the journal ahead of the live
// feed, one seq-contiguous stream. A range the journal no longer retains
// answers 410 compacted before any frame is written — the signal to
// re-bootstrap from /v1/snapshot.
func (s *Server) commitStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, fmt.Errorf("streaming unsupported"))
		return
	}
	from, resume, err := resumeSeq(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidSeq, err)
		return
	}
	ctx := r.Context()
	reg := s.registry()
	var opts []contq.SubscribeOption
	if resume {
		opts = append(opts, contq.FromSeq(from))
	}
	sub, err := reg.SubscribeCommitsContext(ctx, opts...)
	if err != nil {
		status, code := classify(err, http.StatusInternalServerError, CodeInternal)
		writeError(w, r, status, code, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// The head frame tells a fresh consumer where the stream starts (its
	// id seeds Last-Event-ID, so even an eventless disconnect resumes
	// correctly) and doubles as the connection flush.
	if err := sseEvent(w, flusher, "head", sub.Seq, map[string]any{"seq": sub.Seq}); err != nil {
		return
	}
	tr := reg.Tracer()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return // registry swapped out or server closing
			}
			frame := map[string]any{"seq": ev.Seq, "updates": updatesOrEmpty(ev.Updates)}
			if ev.Trace != "" {
				frame["trace"] = ev.Trace
			}
			if !ev.At.IsZero() {
				frame["at"] = ev.At.UnixNano()
			}
			var ds *trace.Span
			if sc, ok := trace.Parse(ev.Trace); ok && !ev.At.IsZero() {
				ds = tr.StartSpanAt(sc, "sse.deliver", ev.At)
				ds.SetAttr("stream", "commits")
			}
			err := sseEvent(w, flusher, "commit", ev.Seq, frame)
			ds.End()
			if err != nil {
				return
			}
		}
	}
}
