package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/rel"
)

// testGraphText renders a generator graph in the wire format.
func testGraphText(t *testing.T, seed int64) (*graph.Graph, string) {
	t.Helper()
	g := generator.Synthetic(60, 240, generator.DefaultSchema(3), seed)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return g, buf.String()
}

// testPatternText renders a generator pattern in the wire format.
func testPatternText(t *testing.T, g *graph.Graph, k int, seed int64) string {
	t.Helper()
	p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 1, K: k}, seed)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func do(t *testing.T, client *http.Client, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// sseFrame is one parsed SSE event.
type sseFrame struct {
	event string
	data  map[string]any
}

// readSSE reads n frames from an open SSE stream.
func readSSE(t *testing.T, sc *bufio.Scanner, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for len(frames) < n && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatal(err)
			}
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		}
	}
	if len(frames) < n {
		t.Fatalf("SSE stream ended after %d frames, want %d (err %v)", len(frames), n, sc.Err())
	}
	return frames
}

// pairsOf converts a JSON pair list to a relation over np pattern nodes.
func pairsOf(t *testing.T, raw any, np int) rel.Relation {
	t.Helper()
	r := rel.NewRelation(np)
	if raw == nil {
		return r
	}
	list, ok := raw.([]any)
	if !ok {
		t.Fatalf("pairs payload is %T", raw)
	}
	for _, item := range list {
		m := item.(map[string]any)
		r[int(m["u"].(float64))].Add(int(m["v"].(float64)))
	}
	return r
}

// TestEndToEnd drives every endpoint over a live httptest server: graph
// load, registration (two kinds), results, updates, the SSE stream in
// commit order, unregistration, and the error paths.
func TestEndToEnd(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 1)

	// Error paths before a graph exists.
	if code, _ := do(t, client, "POST", ts.URL+"/graph", "node 0 bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad graph: code %d", code)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/patterns/none/result", ""); code != http.StatusNotFound {
		t.Fatalf("missing pattern result: code %d", code)
	}

	// Load the graph.
	code, body := do(t, client, "POST", ts.URL+"/graph", gtext)
	if code != http.StatusOK || int(body["nodes"].(float64)) != g.NumNodes() {
		t.Fatalf("load graph: code %d body %v", code, body)
	}

	// Register one normal (auto→sim) and one bounded pattern.
	simText := testPatternText(t, g, 1, 1)
	bsimText := testPatternText(t, g, 2, 2)
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/watch?kind=auto", simText); code != http.StatusCreated {
		t.Fatalf("register watch: code %d", code)
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/deep?kind=bsim", bsimText); code != http.StatusCreated {
		t.Fatalf("register deep: code %d", code)
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/watch", simText); code != http.StatusConflict {
		t.Fatalf("duplicate register: code %d", code)
	}
	// Validation failures are client errors (400), distinct from the 409
	// reserved for duplicate ids.
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/bad?kind=iso", bsimText); code != http.StatusBadRequest {
		t.Fatalf("iso over bounded pattern must be 400: code %d", code)
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/bad?kind=bogus", simText); code != http.StatusBadRequest {
		t.Fatalf("unknown kind must be 400: code %d", code)
	}

	code, body = do(t, client, "GET", ts.URL+"/patterns", "")
	if code != http.StatusOK || len(body["patterns"].([]any)) != 2 {
		t.Fatalf("list patterns: code %d body %v", code, body)
	}

	// Open the SSE stream before committing updates.
	streamResp, err := client.Get(ts.URL + "/patterns/watch/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	snap := readSSE(t, sc, 1)[0]
	if snap.event != "snapshot" {
		t.Fatalf("first SSE event %q", snap.event)
	}

	// Commit three update batches and check seq advances monotonically.
	ups := generator.Updates(g, 30, 30, 7)
	var lastSeq float64
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := graph.WriteUpdates(&buf, ups[i*20:(i+1)*20]); err != nil {
			t.Fatal(err)
		}
		code, body = do(t, client, "POST", ts.URL+"/updates", buf.String())
		if code != http.StatusOK {
			t.Fatalf("updates: code %d body %v", code, body)
		}
		if s := body["seq"].(float64); s != lastSeq+1 {
			t.Fatalf("seq %v after %v", s, lastSeq)
		}
		lastSeq = body["seq"].(float64)
	}

	// The stream must deliver the three deltas in commit order; snapshot
	// plus accumulated deltas must equal the live result.
	np := 3
	acc := pairsOf(t, snap.data["pairs"], np)
	want := snap.data["seq"].(float64)
	for _, frame := range readSSE(t, sc, 3) {
		if frame.event != "delta" {
			t.Fatalf("SSE event %q", frame.event)
		}
		want++
		if frame.data["seq"].(float64) != want {
			t.Fatalf("delta seq %v, want %v", frame.data["seq"], want)
		}
		for _, p := range pairsOf(t, frame.data["removed"], np).Pairs() {
			acc[p.U].Remove(p.V)
		}
		for _, p := range pairsOf(t, frame.data["added"], np).Pairs() {
			acc[p.U].Add(p.V)
		}
	}
	code, body = do(t, client, "GET", ts.URL+"/patterns/watch/result", "")
	if code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	live := pairsOf(t, body["pairs"], np)
	if !acc.Equal(live) {
		t.Fatal("SSE snapshot+deltas diverge from /result")
	}

	// Graph stats reflect the commits.
	code, body = do(t, client, "GET", ts.URL+"/graph", "")
	if code != http.StatusOK || body["seq"].(float64) != lastSeq {
		t.Fatalf("graph info: code %d body %v", code, body)
	}

	// Bad updates are rejected without advancing seq.
	if code, _ = do(t, client, "POST", ts.URL+"/updates", "insert 0 999999\n"); code != http.StatusBadRequest {
		t.Fatalf("out-of-range update: code %d", code)
	}
	if code, _ = do(t, client, "POST", ts.URL+"/updates", "garbage\n"); code != http.StatusBadRequest {
		t.Fatalf("malformed update: code %d", code)
	}

	// Unregister closes the live stream.
	if code, _ = do(t, client, "DELETE", ts.URL+"/patterns/watch", ""); code != http.StatusOK {
		t.Fatalf("unregister: code %d", code)
	}
	if code, _ = do(t, client, "DELETE", ts.URL+"/patterns/watch", ""); code != http.StatusNotFound {
		t.Fatalf("double unregister: code %d", code)
	}
	closed := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after unregister")
	}
}

// TestStreamOfIsoPattern covers the third engine kind end to end over SSE.
func TestStreamOfIsoPattern(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 3)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	ptext := testPatternText(t, g, 1, 3)
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/iso?kind=iso", ptext); code != http.StatusCreated {
		t.Fatal("register iso failed")
	}
	resp, err := client.Get(ts.URL + "/patterns/iso/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	snap := readSSE(t, sc, 1)[0]
	acc := pairsOf(t, snap.data["pairs"], 3)

	ups := generator.Updates(g, 15, 15, 9)
	var buf bytes.Buffer
	if err := graph.WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(t, client, "POST", ts.URL+"/updates", buf.String()); code != http.StatusOK {
		t.Fatal("updates failed")
	}
	frame := readSSE(t, sc, 1)[0]
	for _, p := range pairsOf(t, frame.data["removed"], 3).Pairs() {
		acc[p.U].Remove(p.V)
	}
	for _, p := range pairsOf(t, frame.data["added"], 3).Pairs() {
		acc[p.U].Add(p.V)
	}
	_, body := do(t, client, "GET", ts.URL+"/patterns/iso/result", "")
	if !acc.Equal(pairsOf(t, body["pairs"], 3)) {
		t.Fatal("iso SSE accumulation diverges from /result")
	}
}

// TestLoadGraphResetsPatterns verifies POST /graph drops standing queries.
func TestLoadGraphResetsPatterns(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 5)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q", testPatternText(t, g, 1, 5)); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("reload failed")
	}
	code, body := do(t, client, "GET", ts.URL+"/patterns", "")
	if code != http.StatusOK || len(body["patterns"].([]any)) != 0 {
		t.Fatalf("patterns after reload: %v", body)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/patterns/q/result", ""); code != http.StatusNotFound {
		t.Fatalf("stale pattern result: code %d", code)
	}
}

// TestStatsEndpoint checks GET /stats: graph size, pattern count, commit
// sequence and the writer's coalescing counters, before and after commits.
func TestStatsEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 5)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q?kind=sim", testPatternText(t, g, 1, 5)); code != http.StatusCreated {
		t.Fatal("register failed")
	}

	code, stats := do(t, client, "GET", ts.URL+"/stats", "")
	if code != http.StatusOK {
		t.Fatalf("GET /stats: code %d", code)
	}
	if int(stats["nodes"].(float64)) != g.NumNodes() || int(stats["edges"].(float64)) != g.NumEdges() {
		t.Fatalf("stats graph size: %v", stats)
	}
	if int(stats["patterns"].(float64)) != 1 || stats["seq"].(float64) != 0 || stats["commits"].(float64) != 0 {
		t.Fatalf("initial stats: %v", stats)
	}

	// One commit with an internally-cancelling pair plus a real update.
	var u, v graph.NodeID = -1, -1
	for a := 0; a < g.NumNodes() && u < 0; a++ {
		for b := 0; b < g.NumNodes(); b++ {
			if a != b && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	upText := "insert " + itoa(u) + " " + itoa(v) + "\ndelete " + itoa(u) + " " + itoa(v) + "\n"
	if code, _ := do(t, client, "POST", ts.URL+"/updates", upText); code != http.StatusOK {
		t.Fatal("updates failed")
	}

	_, stats = do(t, client, "GET", ts.URL+"/stats", "")
	if stats["seq"].(float64) != 1 || stats["commits"].(float64) != 1 || stats["applies"].(float64) != 1 {
		t.Fatalf("post-commit stats: %v", stats)
	}
	if stats["updates_submitted"].(float64) != 2 || stats["updates_applied"].(float64) != 0 ||
		stats["updates_cancelled"].(float64) != 2 {
		t.Fatalf("cancellation stats: %v", stats)
	}
}

// TestStatsNetworkBlock: GET /stats exposes the shared evaluation
// network's counters, and registering a structurally identical pattern
// under a second id shows up as a reused join rather than a new engine.
func TestStatsNetworkBlock(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	g, gtext := testGraphText(t, 9)
	if code, _ := do(t, client, "POST", ts.URL+"/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	ptext := testPatternText(t, g, 1, 9)
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q?kind=sim", ptext); code != http.StatusCreated {
		t.Fatal("register q failed")
	}
	_, stats := do(t, client, "GET", ts.URL+"/stats", "")
	net, ok := stats["network"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing network block: %v", stats)
	}
	if int(net["patterns"].(float64)) != 1 || int(net["join_nodes"].(float64)) != 1 {
		t.Fatalf("network stats after one pattern: %v", net)
	}

	// The same definition under a new id reuses the shared join outright.
	if code, _ := do(t, client, "PUT", ts.URL+"/patterns/q2?kind=sim", ptext); code != http.StatusCreated {
		t.Fatal("register q2 failed")
	}
	_, stats = do(t, client, "GET", ts.URL+"/stats", "")
	net = stats["network"].(map[string]any)
	if int(net["patterns"].(float64)) != 2 || int(net["join_nodes"].(float64)) != 1 {
		t.Fatalf("twin registration did not share the join: %v", net)
	}
	if int(net["register_reused"].(float64)) != 1 {
		t.Fatalf("want register_reused=1: %v", net)
	}

	// A committed update repairs the shared join once for both patterns.
	var u, v graph.NodeID = -1, -1
	for a := 0; a < g.NumNodes() && u < 0; a++ {
		for b := 0; b < g.NumNodes(); b++ {
			if a != b && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if code, _ := do(t, client, "POST", ts.URL+"/updates", "insert "+itoa(u)+" "+itoa(v)+"\n"); code != http.StatusOK {
		t.Fatal("updates failed")
	}
	_, stats = do(t, client, "GET", ts.URL+"/stats", "")
	net = stats["network"].(map[string]any)
	if int(net["repairs_saved"].(float64)) < 1 {
		t.Fatalf("shared join repair saved nothing: %v", net)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
