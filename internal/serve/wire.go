package serve

import (
	"encoding/json"
	"errors"
	"mime"
	"net/http"
	"strings"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs/trace"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// The v1 error contract: every failure is one JSON envelope
//
//	{"code": "<stable machine-readable code>", "message": "<human text>", "seq": N?}
//
// where seq appears only on the committed-but-not-durable failure (the
// batch holds sequence N in memory but the journal append failed). Codes
// are part of the wire contract — clients switch on them, never on
// message text.
const (
	// CodeInvalidGraph, CodeInvalidPattern and CodeInvalidUpdates report
	// an unparseable or invalid request document (text or JSON).
	CodeInvalidGraph   = "invalid_graph"
	CodeInvalidPattern = "invalid_pattern"
	CodeInvalidUpdates = "invalid_updates"
	// CodeInvalidKind reports an unknown ?kind= or a kind the pattern
	// cannot back (mapped from contq.ErrBadKind).
	CodeInvalidKind = "invalid_kind"
	// CodeInvalidSeq reports an unparseable ?from= or Last-Event-ID.
	CodeInvalidSeq = "invalid_seq"
	// CodeNotFound reports an unregistered pattern id (or unknown route).
	CodeNotFound = "not_found"
	// CodeAlreadyRegistered reports a duplicate pattern id (retry under
	// another name; mapped from contq.ErrAlreadyRegistered).
	CodeAlreadyRegistered = "already_registered"
	// CodeClosed reports a registry shutting down (mapped from
	// contq.ErrClosed); retry against a live instance.
	CodeClosed = "closed"
	// CodeCompacted reports a replay range the journal no longer retains
	// (mapped from journal.ErrCompacted); resync from a snapshot.
	CodeCompacted = "compacted"
	// CodeSeqFuture reports a resume sequence ahead of the head (mapped
	// from contq.ErrSeqFuture); the client's state diverged — resync.
	CodeSeqFuture = "seq_future"
	// CodeMethodNotAllowed reports a known route with the wrong method;
	// the Allow header lists the methods the route accepts.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotReady is /v1/readyz's failure: the registry is closed, the
	// journal stopped accepting appends, or a follower is bootstrapping or
	// lagging beyond its bound.
	CodeNotReady = "not_ready"
	// CodeReadOnly reports a write against a follower; the envelope's
	// leader field names the instance that accepts writes.
	CodeReadOnly = "read_only"
	// CodeJournalFailed reports a commit that was applied and published
	// but could not be journaled — the envelope's seq carries the
	// assigned sequence number; the state stands in memory but is not
	// durable.
	CodeJournalFailed = "journal_failed"
	// CodeInternal is the residual server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the v1 error envelope. Leader appears only on read_only
// failures: the base URL of the instance that accepts writes. TraceID
// appears when the failing request carried (or was assigned) a sampled
// trace — the key to pull the request's span tree from /v1/tracez.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Seq     uint64 `json:"seq,omitempty"`
	Leader  string `json:"leader,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

// writeError emits the error envelope, stamping the request's trace ID
// (threaded into the context by ServeHTTP) so failures join with traces.
func writeError(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	body := ErrorBody{Code: code, Message: err.Error()}
	if r != nil {
		if sc := trace.FromContext(r.Context()); sc.Valid() {
			body.TraceID = sc.TraceID.String()
		}
	}
	writeJSON(w, status, body)
}

// classify maps the contq/journal sentinel errors to their wire status
// and code; fallback is the caller's "bad input" classification.
func classify(err error, fallbackStatus int, fallbackCode string) (int, string) {
	switch {
	case errors.Is(err, contq.ErrNotRegistered):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, contq.ErrAlreadyRegistered):
		return http.StatusConflict, CodeAlreadyRegistered
	case errors.Is(err, contq.ErrClosed):
		return http.StatusServiceUnavailable, CodeClosed
	case errors.Is(err, contq.ErrBadKind):
		return http.StatusBadRequest, CodeInvalidKind
	case errors.Is(err, journal.ErrCompacted):
		return http.StatusGone, CodeCompacted
	case errors.Is(err, contq.ErrSeqFuture):
		return http.StatusBadRequest, CodeSeqFuture
	}
	return fallbackStatus, fallbackCode
}

// isJSON reports whether the request body is a JSON document (by
// Content-Type); anything else is read as the repository's text formats,
// keeping curl/CLI sessions working unchanged.
func isJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json" || strings.HasSuffix(mt, "+json")
}

// readGraphBody negotiates the graph request body: the JSON wire document
// under Content-Type application/json, the text format otherwise.
func readGraphBody(r *http.Request) (*graph.Graph, error) {
	if !isJSON(r) {
		return graph.Read(r.Body)
	}
	g := graph.New()
	if err := json.NewDecoder(r.Body).Decode(g); err != nil {
		return nil, err
	}
	return g, nil
}

// readPatternBody negotiates the pattern request body.
func readPatternBody(r *http.Request) (*pattern.Pattern, error) {
	if !isJSON(r) {
		return pattern.Parse(r.Body)
	}
	p := pattern.New()
	if err := json.NewDecoder(r.Body).Decode(p); err != nil {
		return nil, err
	}
	return p, nil
}

// readUpdatesBody negotiates the update-batch request body: a JSON array
// of {"op","from","to"} documents, or the one-update-per-line text format.
func readUpdatesBody(r *http.Request) ([]graph.Update, error) {
	if !isJSON(r) {
		return graph.ReadUpdates(r.Body)
	}
	var ups []graph.Update
	if err := json.NewDecoder(r.Body).Decode(&ups); err != nil {
		return nil, err
	}
	return ups, nil
}

// pairsOrEmpty keeps empty pair lists rendering as [] (never null) on the
// wire.
func pairsOrEmpty(ps []rel.Pair) []rel.Pair {
	if ps == nil {
		return []rel.Pair{}
	}
	return ps
}

// updatesOrEmpty keeps empty update batches rendering as [] on the wire.
func updatesOrEmpty(ups []graph.Update) []graph.Update {
	if ups == nil {
		return []graph.Update{}
	}
	return ups
}
