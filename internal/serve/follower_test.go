package serve

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpm/internal/contq"
	"gpm/internal/journal"
)

// TestSnapshotEndpoint: GET /v1/snapshot returns the graph document, the
// head sequence and every registered pattern's portable definition.
func TestSnapshotEndpoint(t *testing.T) {
	_, ts, client := loadedServer(t)
	if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "insert 0 1\ninsert 1 2\n"); code != http.StatusOK {
		t.Fatal("updates failed")
	}
	code, body := do(t, client, "GET", ts.URL+"/v1/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if body["seq"].(float64) != 1 {
		t.Fatalf("snapshot seq = %v, want 1", body["seq"])
	}
	if _, ok := body["graph"].(map[string]any); !ok {
		t.Fatalf("snapshot graph missing: %T", body["graph"])
	}
	pats := body["patterns"].([]any)
	if len(pats) != 1 {
		t.Fatalf("snapshot patterns = %d, want 1", len(pats))
	}
	pd := pats[0].(map[string]any)
	if pd["id"] != "q" || pd["kind"] != "sim" || pd["def"].(string) == "" {
		t.Fatalf("snapshot pattern doc malformed: %v", pd)
	}
}

// TestPatternDefEndpoint: GET /v1/patterns/{id} serves one pattern's
// definition; unknown ids are 404.
func TestPatternDefEndpoint(t *testing.T) {
	_, ts, client := loadedServer(t)
	code, body := do(t, client, "GET", ts.URL+"/v1/patterns/q", "")
	if code != http.StatusOK || body["def"].(string) == "" || body["kind"] != "sim" {
		t.Fatalf("pattern def: status %d body %v", code, body)
	}
	if code, body := do(t, client, "GET", ts.URL+"/v1/patterns/nope", ""); code != http.StatusNotFound || body["code"] != CodeNotFound {
		t.Fatalf("unknown pattern def: status %d body %v", code, body)
	}
}

// TestCommitStreamSSE: the commit tail serves a head frame, then one
// commit frame per committed batch, seq-contiguous, with resume via
// Last-Event-ID backfilling from the journal.
func TestCommitStreamSSE(t *testing.T) {
	_, ts, client := loadedServer(t)
	for i := 0; i < 3; i++ {
		if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "insert 0 1\ndelete 0 1\n"); code != http.StatusOK {
			t.Fatal("updates failed")
		}
	}

	// Resume from seq 1: commits 2 and 3 backfill, later ones arrive live.
	req, err := http.NewRequest("GET", ts.URL+"/v1/commits/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit stream: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	frames := readSSE(t, sc, 3)
	if frames[0].event != "head" || frames[0].data["seq"].(float64) != 1 {
		t.Fatalf("first frame = %v, want head at seq 1", frames[0])
	}
	for i, want := range []float64{2, 3} {
		fr := frames[i+1]
		if fr.event != "commit" || fr.data["seq"].(float64) != want {
			t.Fatalf("frame %d = %v %v, want commit seq %v", i+1, fr.event, fr.data, want)
		}
		if _, ok := fr.data["updates"].([]any); !ok {
			t.Fatalf("commit frame %d carries no updates array: %v", i+1, fr.data)
		}
	}
	// A live commit lands on the open stream.
	if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "insert 0 2\n"); code != http.StatusOK {
		t.Fatal("updates failed")
	}
	live := readSSE(t, sc, 1)
	if live[0].event != "commit" || live[0].data["seq"].(float64) != 4 {
		t.Fatalf("live frame = %v %v, want commit seq 4", live[0].event, live[0].data)
	}
}

// TestCommitStreamCompacted: a resume point the journal no longer retains
// answers 410 compacted before any frame — the re-bootstrap signal.
func TestCommitStreamCompacted(t *testing.T) {
	srv, err := NewWithJournal(journal.New(journal.WithRing(2)))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client := ts.Client()
	_, gtext := testGraphText(t, 11)
	if code, _ := do(t, client, "POST", ts.URL+"/v1/graph", gtext); code != http.StatusOK {
		t.Fatal("load graph failed")
	}
	for i := 0; i < 5; i++ {
		if code, _ := do(t, client, "POST", ts.URL+"/v1/updates", "insert 0 1\ndelete 0 1\n"); code != http.StatusOK {
			t.Fatal("updates failed")
		}
	}
	code, body := do(t, client, "GET", ts.URL+"/v1/commits/stream?from=1", "")
	if code != http.StatusGone || body["code"] != CodeCompacted {
		t.Fatalf("compacted tail: status %d body %v, want 410 %s", code, body, CodeCompacted)
	}
}

// TestReadOnlyRejectsWrites: every mutating route on a follower answers
// 403 read_only naming the leader; reads still serve.
func TestReadOnlyRejectsWrites(t *testing.T) {
	const leader = "http://leader.example:8080"
	srv := NewReadOnly(leader)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client := ts.Client()

	for _, c := range []struct{ method, path, body string }{
		{"POST", "/v1/graph", "node 0 true"},
		{"PUT", "/v1/patterns/p?kind=sim", "node 0 true"},
		{"DELETE", "/v1/patterns/p", ""},
		{"POST", "/v1/updates", "insert 0 1"},
		{"POST", "/updates", "insert 0 1"}, // deprecated alias guards too
	} {
		code, body := do(t, client, c.method, ts.URL+c.path, c.body)
		if code != http.StatusForbidden || body["code"] != CodeReadOnly {
			t.Fatalf("%s %s: status %d body %v, want 403 %s", c.method, c.path, code, body, CodeReadOnly)
		}
		if body["leader"] != leader {
			t.Fatalf("%s %s: envelope leader = %v, want %s", c.method, c.path, body["leader"], leader)
		}
	}
	if code, _ := do(t, client, "GET", ts.URL+"/v1/patterns", ""); code != http.StatusOK {
		t.Fatal("reads must serve on a follower")
	}
}

// TestSetRegistrySwapsState: installing a bootstrapped registry makes its
// state visible on the read routes, and the ready-check hook gates readyz.
func TestSetRegistrySwapsState(t *testing.T) {
	srv := NewReadOnly("http://leader.example")
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client := ts.Client()

	bootstrapping := true
	srv.SetReadyCheck(func() error {
		if bootstrapping {
			return errReadyNotBootstrapped
		}
		return nil
	})
	if code, body := do(t, client, "GET", ts.URL+"/v1/readyz", ""); code != http.StatusServiceUnavailable || body["code"] != CodeNotReady {
		t.Fatalf("bootstrapping readyz: status %d body %v, want 503 %s", code, body, CodeNotReady)
	}

	g, _ := testGraphText(t, 11)
	nodes := g.NumNodes()
	j := journal.New()
	reg := contq.New(g, contq.WithJournal(j))
	srv.SetRegistry(reg, j)
	bootstrapping = false

	if code, body := do(t, client, "GET", ts.URL+"/v1/readyz", ""); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("ready readyz: status %d body %v", code, body)
	}
	code, body := do(t, client, "GET", ts.URL+"/v1/graph", "")
	if code != http.StatusOK || int(body["nodes"].(float64)) != nodes {
		t.Fatalf("graph info after swap: status %d body %v, want %d nodes", code, body, nodes)
	}

	// Stats carry the follower block when a provider is installed.
	srv.SetStatsExtra(func() any { return map[string]any{"leader": "http://leader.example"} })
	code, body = do(t, client, "GET", ts.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if _, ok := body["follower"].(map[string]any); !ok {
		t.Fatalf("stats missing follower block: %v", body)
	}
}

var errReadyNotBootstrapped = &readyErr{"follower bootstrapping"}

type readyErr struct{ msg string }

func (e *readyErr) Error() string { return e.msg }

// TestSnapshotWrongMethod keeps the new routes on the uniform 405
// contract.
func TestSnapshotWrongMethod(t *testing.T) {
	_, ts, client := loadedServer(t)
	req, err := http.NewRequest("POST", ts.URL+"/v1/snapshot", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET" {
		t.Fatalf("POST /v1/snapshot: status %d allow %q, want 405 GET", resp.StatusCode, resp.Header.Get("Allow"))
	}
}
