package iso

import (
	"math/rand"
	"testing"

	"gpm/internal/fixtures"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func TestEnumerateTriangle(t *testing.T) {
	// Pattern: directed triangle a→b→c→a. Graph: one matching triangle.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	c := p.AddNode(pattern.Label("c"))
	p.AddEdge(a, b, 1)
	p.AddEdge(b, c, 1)
	p.AddEdge(c, a, 1)

	g := graph.New()
	ga := g.AddNode(graph.NewTuple("label", `"a"`))
	gb := g.AddNode(graph.NewTuple("label", `"b"`))
	gc := g.AddNode(graph.NewTuple("label", `"c"`))
	g.AddEdge(ga, gb)
	g.AddEdge(gb, gc)
	g.AddEdge(gc, ga)

	ems := Enumerate(p, g, 0)
	if len(ems) != 1 {
		t.Fatalf("found %d embeddings, want 1", len(ems))
	}
	if ems[0][a] != ga || ems[0][b] != gb || ems[0][c] != gc {
		t.Fatalf("embedding = %v", ems[0])
	}
}

func TestEnumerateInjective(t *testing.T) {
	// Pattern a→a (two distinct a-nodes): a single self-loop node must not
	// match (injectivity), but two distinct nodes with an edge must.
	p := pattern.New()
	u1 := p.AddNode(pattern.Label("a"))
	u2 := p.AddNode(pattern.Label("a"))
	p.AddEdge(u1, u2, 1)

	g := graph.New()
	x := g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddEdge(x, x)
	if Has(p, g) {
		t.Fatal("self-loop should not satisfy a 2-node pattern (bijection)")
	}
	y := g.AddNode(graph.NewTuple("label", `"a"`))
	g.AddEdge(x, y)
	if Count(p, g) != 1 {
		t.Fatalf("Count = %d, want 1", Count(p, g))
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := generator.RandomGraph(8, 14, 2, seed)
		p := generator.RandomPattern(3, 3, 2, 1, seed+100)
		got := Enumerate(p, g, 0)
		want := enumerateBrute(p, g)
		if len(got) != len(want) {
			t.Fatalf("seed %d: VF2 found %d, brute force %d", seed, len(got), len(want))
		}
		gotKeys := make(map[string]bool, len(got))
		for _, em := range got {
			gotKeys[em.Key()] = true
		}
		for _, em := range want {
			if !gotKeys[em.Key()] {
				t.Fatalf("seed %d: missing embedding %v", seed, em)
			}
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	g := generator.RandomGraph(10, 30, 1, 5)
	p := generator.RandomPattern(2, 1, 1, 1, 6)
	all := Enumerate(p, g, 0)
	if len(all) < 2 {
		t.Skip("workload too sparse for limit test")
	}
	if got := Enumerate(p, g, 1); len(got) != 1 {
		t.Fatalf("limit 1 returned %d", len(got))
	}
}

func TestDrugRingHasNoIsoMatch(t *testing.T) {
	// Example 1.1: subgraph isomorphism cannot identify the drug ring (AM
	// and S must share a node; AM→FW spans 3 hops).
	p, g := fixtures.DrugRing(3)
	if Has(p.Normalized(), g) {
		t.Fatal("VF2 should find no match for the drug-ring pattern")
	}
}

func TestIncIsoWitness(t *testing.T) {
	// Theorem 7.1(2) family: no embedding until both adversarial edges land.
	p, g, ups := fixtures.IsoWitness(3, 2)
	e := NewEngine(p, g)
	if e.Count() != 0 {
		t.Fatalf("initial count = %d, want 0", e.Count())
	}
	e.Insert(ups.E1.From, ups.E1.To)
	if e.Count() != 0 {
		t.Fatalf("after e1: count = %d, want 0", e.Count())
	}
	e.Insert(ups.E2.From, ups.E2.To)
	if e.Count() == 0 {
		t.Fatal("after e2: embeddings should exist")
	}
	if got, want := e.Count(), Count(p, g); got != want {
		t.Fatalf("incremental count = %d, batch = %d", got, want)
	}
}

func TestIncIsoRandomizedEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := generator.RandomGraph(9, 14, 2, int64(trial)+50)
		p := generator.RandomPattern(3, 3, 2, 1, int64(trial)+150)
		e := NewEngine(p, g)
		for step := 0; step < 20; step++ {
			u, v := rng.Intn(9), rng.Intn(9)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				e.Insert(u, v)
			} else {
				e.Delete(u, v)
			}
			if got, want := e.Count(), Count(p, g); got != want {
				t.Fatalf("trial %d step %d: incremental=%d batch=%d", trial, step, got, want)
			}
		}
	}
}

func TestDeleteDropsOnlyAffected(t *testing.T) {
	// Two disjoint matching pairs; deleting one leaves the other.
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 1)

	g := graph.New()
	a0 := g.AddNode(graph.NewTuple("label", `"a"`))
	b0 := g.AddNode(graph.NewTuple("label", `"b"`))
	a1 := g.AddNode(graph.NewTuple("label", `"a"`))
	b1 := g.AddNode(graph.NewTuple("label", `"b"`))
	g.AddEdge(a0, b0)
	g.AddEdge(a1, b1)

	e := NewEngine(p, g)
	if e.Count() != 2 {
		t.Fatalf("count = %d, want 2", e.Count())
	}
	e.Delete(a0, b0)
	if e.Count() != 1 {
		t.Fatalf("count after delete = %d, want 1", e.Count())
	}
	em := e.Embeddings()[0]
	if em[a] != a1 || em[b] != b1 {
		t.Fatalf("surviving embedding = %v", em)
	}
}

func TestEmbeddingKeyDistinct(t *testing.T) {
	e1 := Embedding{1, 2, 3}
	e2 := Embedding{1, 2, 4}
	if e1.Key() == e2.Key() {
		t.Fatal("distinct embeddings share a key")
	}
}
